// Package esu is the repo's second engine: a shared-memory motif census.
// Where the PSgL engine (internal/core) lists every embedding of one given
// pattern, this engine enumerates every connected k-vertex subgraph of the
// data graph exactly once — Wernicke's ESU algorithm — and classifies each by
// isomorphism class, producing the motif histogram ("how many triangles, how
// many 4-paths, ...") that graphlet and network-motif analyses consume.
//
// Parallelization follows the shared-memory subgraph-enumeration literature
// (arXiv:1705.09358): ESU's per-root subtrees are independent, so root
// vertices are dealt to a worker pool in chunks claimed off one atomic
// counter (work-stealing-friendly: a worker that drew cheap roots just
// claims the next chunk), and all workers share the BitGraph adjacency and a
// canonical-form memo cache. Each worker keeps its own scratch (subgraph
// slot array, per-depth extension/neighborhood bitsets, a local histogram),
// so the steady-state enumeration path allocates nothing and the only shared
// writes are the memo cache's first-sight inserts.
package esu

import (
	"context"
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"psgl/internal/graph"
	"psgl/internal/obs"
)

// Options tunes a census run. The zero value is ready to use.
type Options struct {
	// Workers is the worker-pool size; 0 means 4 (the PSgL engine's default).
	Workers int
	// ChunkSize is the number of root vertices a worker claims at once;
	// 0 picks one that yields ~32 claims per worker so stragglers rebalance.
	ChunkSize int
	// Cache is the canonical-form memo cache to use (shared across runs by a
	// resident server). nil builds a fresh cache for this run. Its K() must
	// equal the census k.
	Cache *CanonCache
	// Observer receives end-of-run census counters (subgraphs, cache
	// hits/misses). nil disables observability.
	Observer *obs.Observer
}

// MotifCount is one isomorphism class of the census histogram.
type MotifCount struct {
	// Code is the class's canonical adjacency code (upper-triangle bits).
	Code uint32 `json:"code"`
	// Motif is Code rendered in the pattern DSL's edges(...) form.
	Motif string `json:"motif"`
	// Count is the number of connected induced k-subgraphs in the class.
	Count int64 `json:"count"`
}

// Result is the outcome of a census run.
type Result struct {
	// K is the subgraph size counted.
	K int `json:"k"`
	// Subgraphs is the total number of connected k-subgraphs enumerated
	// (each exactly once; the sum of every class count).
	Subgraphs int64 `json:"subgraphs"`
	// Classes is the motif histogram, largest class first (ties by code).
	Classes []MotifCount `json:"classes"`
	// CacheHits and CacheMisses count canonical-form memo cache lookups
	// across all workers. On a fresh cache, misses is exactly the number of
	// distinct raw adjacency codes seen.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// Workers is the pool size used.
	Workers int `json:"workers"`
	// Wall is the enumeration wall time (excluding BitGraph construction
	// when the caller prebuilt one).
	Wall time.Duration `json:"wall_ns"`
}

// CacheHitRate returns the memo cache hit fraction, 0 when nothing was
// enumerated.
func (r *Result) CacheHitRate() float64 {
	total := r.CacheHits + r.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(r.CacheHits) / float64(total)
}

// Histogram returns the census as a canonical-code → count map.
func (r *Result) Histogram() map[uint32]int64 {
	h := make(map[uint32]int64, len(r.Classes))
	for _, c := range r.Classes {
		h[c.Code] = c.Count
	}
	return h
}

// Count runs a k-motif census of g with background context.
func Count(g *graph.Graph, k int, opts Options) (*Result, error) {
	return CountContext(context.Background(), g, k, opts)
}

// CountContext runs a k-motif census of g, honoring ctx cancellation between
// root subtrees.
func CountContext(ctx context.Context, g *graph.Graph, k int, opts Options) (*Result, error) {
	if k < MinK || k > MaxK {
		return nil, fmt.Errorf("esu: census size k=%d out of range [%d,%d]", k, MinK, MaxK)
	}
	b, err := NewBitGraph(g)
	if err != nil {
		return nil, err
	}
	return CountBitGraph(ctx, b, k, opts)
}

// CountBitGraph runs a k-motif census over a prebuilt BitGraph — the entry
// point for resident servers that amortize the dense adjacency across
// queries.
func CountBitGraph(ctx context.Context, b *BitGraph, k int, opts Options) (*Result, error) {
	if k < MinK || k > MaxK {
		return nil, fmt.Errorf("esu: census size k=%d out of range [%d,%d]", k, MinK, MaxK)
	}
	cache := opts.Cache
	if cache == nil {
		cache = NewCanonCache(k)
	} else if cache.K() != k {
		return nil, fmt.Errorf("esu: memo cache is for k=%d, census wants k=%d", cache.K(), k)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 4
	}
	n := b.N()
	if workers > n && n > 0 {
		workers = n
	}
	chunk := opts.ChunkSize
	if chunk <= 0 {
		// ~32 claims per worker keeps the claim counter cold while letting a
		// worker stuck on a hub's deep subtree shed the rest of the range.
		chunk = n / (workers * 32)
		if chunk < 1 {
			chunk = 1
		}
	}

	start := time.Now()
	var next atomic.Int64 // next unclaimed root; workers claim [lo, lo+chunk)
	ws := make([]*walker, workers)
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		w := newWalker(b, k, cache)
		ws[wi] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for v := lo; v < hi; v++ {
					if ctx.Err() != nil {
						return
					}
					w.root(graph.VertexID(v))
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	res := &Result{K: k, Workers: workers}
	merged := make(map[uint32]int64)
	for _, w := range ws {
		res.Subgraphs += w.total
		res.CacheHits += w.hits
		res.CacheMisses += w.misses
		for code, cnt := range w.counts {
			merged[code] += cnt
		}
	}
	res.Classes = make([]MotifCount, 0, len(merged))
	for code, cnt := range merged {
		res.Classes = append(res.Classes, MotifCount{Code: code, Motif: MotifDSL(k, code), Count: cnt})
	}
	sort.Slice(res.Classes, func(i, j int) bool {
		if res.Classes[i].Count != res.Classes[j].Count {
			return res.Classes[i].Count > res.Classes[j].Count
		}
		return res.Classes[i].Code < res.Classes[j].Code
	})
	res.Wall = time.Since(start)
	opts.Observer.AddCensus(res.Subgraphs, res.CacheHits, res.CacheMisses)
	return res, nil
}

// walker is one worker's enumeration state. All slices are preallocated at
// construction; the enumeration itself allocates nothing (pinned by
// TestCensusSteadyStateAllocs).
type walker struct {
	b     *BitGraph
	k     int
	cache *CanonCache

	sub [MaxK]graph.VertexID // the subgraph under construction
	// ext[d] / nbhd[d] are the extension set and closed neighborhood
	// (V_sub ∪ N(V_sub)) after the (d+1)-th vertex was placed; gt masks
	// vertices greater than the current root.
	ext  [][]uint64
	nbhd [][]uint64
	gt   []uint64

	counts              map[uint32]int64
	total, hits, misses int64
}

func newWalker(b *BitGraph, k int, cache *CanonCache) *walker {
	w := &walker{
		b:      b,
		k:      k,
		cache:  cache,
		ext:    make([][]uint64, k),
		nbhd:   make([][]uint64, k),
		gt:     make([]uint64, b.Words()),
		counts: make(map[uint32]int64, 32),
	}
	for d := 0; d < k; d++ {
		w.ext[d] = make([]uint64, b.Words())
		w.nbhd[d] = make([]uint64, b.Words())
	}
	return w
}

// root enumerates every connected k-subgraph whose minimum vertex is v —
// ESU's root rule: only vertices greater than v may ever join, so each
// subgraph is generated exactly once, from its minimum vertex.
func (w *walker) root(v graph.VertexID) {
	// gt = {u : u > v}.
	vi := int(v)
	word := vi / 64
	for i := range w.gt {
		switch {
		case i < word:
			w.gt[i] = 0
		case i == word:
			w.gt[i] = ^uint64(0) << (uint(vi)%64 + 1)
			if uint(vi)%64 == 63 {
				w.gt[i] = 0
			}
		default:
			w.gt[i] = ^uint64(0)
		}
	}
	w.sub[0] = v
	row := w.b.Row(v)
	ext, nbhd := w.ext[0], w.nbhd[0]
	any := false
	for i, r := range row {
		ext[i] = r & w.gt[i]
		nbhd[i] = r
		any = any || ext[i] != 0
	}
	nbhd[word] |= 1 << (uint(vi) % 64)
	if any {
		w.extend(1)
	}
}

// extend places the vertex at slot d (|sub| == d on entry), drawing from
// ext[d-1]. ESU: pop each candidate u in ascending order, removing it from
// the extension set before recursing, and extend the child's set with u's
// exclusive neighbors N(u) \ (V_sub ∪ N(V_sub)), root-filtered.
func (w *walker) extend(d int) {
	ext := w.ext[d-1]
	if d == w.k-1 {
		// Last slot: every remaining candidate completes one subgraph.
		for i, word := range ext {
			base := i * 64
			for word != 0 {
				w.sub[d] = graph.VertexID(base + bits.TrailingZeros64(word))
				word &= word - 1
				w.leaf()
			}
		}
		return
	}
	nbhd := w.nbhd[d-1]
	childExt, childNbhd := w.ext[d], w.nbhd[d]
	for i := 0; i < len(ext); i++ {
		word := ext[i]
		if word == 0 {
			continue
		}
		tz := bits.TrailingZeros64(word)
		u := graph.VertexID(i*64 + tz)
		ext[i] &^= 1 << uint(tz) // remove u: later siblings must not re-add it
		w.sub[d] = u
		rowU := w.b.Row(u)
		nonEmpty := false
		for j := range childExt {
			excl := rowU[j] &^ nbhd[j] & w.gt[j]
			childExt[j] = ext[j] | excl
			childNbhd[j] = nbhd[j] | rowU[j]
			nonEmpty = nonEmpty || childExt[j] != 0
		}
		childNbhd[int(u)/64] |= 1 << (uint(u) % 64)
		if nonEmpty {
			w.extend(d + 1)
		}
		i-- // re-scan this word: it may hold more candidates
	}
}

// leaf classifies the completed subgraph in sub[0:k]: extract its induced
// adjacency code (≤10 bit probes), canonicalize through the shared memo
// cache, and bump the worker-local histogram.
func (w *walker) leaf() {
	k := w.k
	var code uint32
	bit := 0
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if w.b.HasEdge(w.sub[i], w.sub[j]) {
				code |= 1 << uint(bit)
			}
			bit++
		}
	}
	canon, hit := w.cache.Lookup(code)
	if hit {
		w.hits++
	} else {
		w.misses++
	}
	w.counts[canon]++
	w.total++
}
