package esu

import (
	"fmt"
	"strings"
	"sync"
)

// Canonical forms for k-vertex subgraphs, k in [MinK, MaxK]. A subgraph on
// vertices labeled 0..k-1 is encoded as an upper-triangle adjacency code:
// bit pairIdx(i,j) is set iff {i,j} is an edge, with pairs numbered
// lexicographically — (0,1),(0,2),...,(0,k-1),(1,2),... For k=5 the code is
// 10 bits, so the entire raw-code space is at most 1024 values per k and the
// memo cache converges after a handful of misses per shape.
//
// The canonical form is exact (no hashing, no heuristics): the minimum code
// over every degree-respecting relabeling — permutations that list vertices
// in non-increasing degree order. Any isomorphism preserves degrees, so two
// graphs are isomorphic iff their canonical codes are equal; the degree-
// sequence refinement only prunes the permutation search (down to a single
// candidate when all degrees differ), it never changes the result. The
// exhaustive fallback — permuting freely inside equal-degree classes — costs
// at most 5! = 120 code evaluations for a degree-regular 5-vertex subgraph.

const (
	// MinK and MaxK bound the census subgraph size. k=2 degenerates to edge
	// counting; above 5 the motif space explodes (and the exhaustive
	// canonicalization with it), which is graphlet territory the paper's
	// workloads do not reach.
	MinK = 2
	MaxK = 5
)

// pairIdx[k][i][j] is the code bit of pair {i,j} (i != j) for subgraph size k.
var pairIdx [MaxK + 1][MaxK][MaxK]int

func init() {
	for k := MinK; k <= MaxK; k++ {
		bit := 0
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				pairIdx[k][i][j] = bit
				pairIdx[k][j][i] = bit
				bit++
			}
		}
	}
}

// codeBits returns the number of code bits for subgraph size k.
func codeBits(k int) int { return k * (k - 1) / 2 }

// CanonicalCode returns the canonical form of the k-vertex subgraph encoded
// by code: the minimum code over all degree-respecting relabelings. It is
// invariant under any relabeling of the input (the FuzzCanonicalForm
// property) and equal only for isomorphic subgraphs.
func CanonicalCode(k int, code uint32) uint32 {
	if k < MinK || k > MaxK {
		panic(fmt.Sprintf("esu: subgraph size %d out of range [%d,%d]", k, MinK, MaxK))
	}
	var deg [MaxK]int
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if code&(1<<uint(pairIdx[k][i][j])) != 0 {
				deg[i]++
				deg[j]++
			}
		}
	}
	// order lists vertices by degree descending (stable): the target labeling
	// every candidate permutation must respect.
	var order [MaxK]int
	for i := 0; i < k; i++ {
		order[i] = i
	}
	for i := 1; i < k; i++ { // insertion sort; k <= 5
		for j := i; j > 0 && deg[order[j]] > deg[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	perm := order
	best := ^uint32(0)
	eval := func() {
		var c uint32
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				if code&(1<<uint(pairIdx[k][perm[i]][perm[j]])) != 0 {
					c |= 1 << uint(pairIdx[k][i][j])
				}
			}
		}
		if c < best {
			best = c
		}
	}
	// Permute within each maximal run of equal degrees (the refinement
	// classes); positions across classes are fixed by the degree order.
	var rec func(pos int)
	rec = func(pos int) {
		if pos == k {
			eval()
			return
		}
		end := pos
		for end < k && deg[order[end]] == deg[order[pos]] {
			end++
		}
		var permuteClass func(i int)
		permuteClass = func(i int) {
			if i == end {
				rec(end)
				return
			}
			for j := i; j < end; j++ {
				perm[i], perm[j] = perm[j], perm[i]
				permuteClass(i + 1)
				perm[i], perm[j] = perm[j], perm[i]
			}
		}
		permuteClass(pos)
	}
	rec(0)
	return best
}

// CodeEdges decodes a subgraph code into its edge list (a < b, lexicographic).
func CodeEdges(k int, code uint32) [][2]int {
	var edges [][2]int
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if code&(1<<uint(pairIdx[k][i][j])) != 0 {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	return edges
}

// MotifDSL renders a subgraph code in the pattern DSL's explicit-edges form,
// e.g. "edges(0-1,0-2,1-2)" for the triangle — so a census class can be fed
// straight back into a /query listing for that motif.
func MotifDSL(k int, code uint32) string {
	edges := CodeEdges(k, code)
	if len(edges) == 0 {
		return "edges()"
	}
	var sb strings.Builder
	sb.WriteString("edges(")
	for i, e := range edges {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d-%d", e[0], e[1])
	}
	sb.WriteByte(')')
	return sb.String()
}

// canonShards is the shard count of the memo cache. Power of two; sized so
// that even MaxK's full 1024-code space spreads ~16 entries per shard.
const canonShards = 64

// CanonCache memoizes raw adjacency code → canonical code so every subgraph
// shape is canonicalized exactly once across all census workers (and, when
// the cache is shared by a resident server, across queries too). Lookups
// take a sharded read lock; the first worker to see a shape pays the
// permutation search, everyone else gets a read-mostly hit. Hit/miss
// accounting is the caller's: Lookup reports whether it hit so workers can
// keep contention-free local counters.
type CanonCache struct {
	k      int
	shards [canonShards]canonShard
}

type canonShard struct {
	mu sync.RWMutex
	m  map[uint32]uint32
	// pad spaces shards across cache lines so one shard's lock traffic does
	// not false-share with its neighbors.
	_ [40]byte
}

// NewCanonCache returns an empty memo cache for subgraph size k.
func NewCanonCache(k int) *CanonCache {
	if k < MinK || k > MaxK {
		panic(fmt.Sprintf("esu: subgraph size %d out of range [%d,%d]", k, MinK, MaxK))
	}
	c := &CanonCache{k: k}
	for i := range c.shards {
		c.shards[i].m = make(map[uint32]uint32, 8)
	}
	return c
}

// K returns the subgraph size the cache canonicalizes.
func (c *CanonCache) K() int { return c.k }

// Lookup returns the canonical code for code, computing and memoizing it on
// first sight. hit reports whether the value was already cached.
func (c *CanonCache) Lookup(code uint32) (canon uint32, hit bool) {
	s := &c.shards[(code*0x9e3779b1)>>26%canonShards]
	s.mu.RLock()
	canon, ok := s.m[code]
	s.mu.RUnlock()
	if ok {
		return canon, true
	}
	canon = CanonicalCode(c.k, code)
	s.mu.Lock()
	s.m[code] = canon
	s.mu.Unlock()
	return canon, false
}

// Size returns the number of memoized codes.
func (c *CanonCache) Size() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}
