package esu

import (
	"errors"
	"fmt"

	"psgl/internal/graph"
)

// ErrGraphTooLarge reports that a graph exceeds MaxBitGraphVertices — a
// permanent condition servers surface as a client error, not a retryable one.
var ErrGraphTooLarge = errors.New("graph exceeds the bitset census engine's vertex cap")

// MaxBitGraphVertices bounds the graphs the census engine accepts. BitGraph
// stores a dense |V|×|V| bit matrix (|V|²/8 bytes — 512 MiB at the cap), so
// unlike the CSR engine it cannot take arbitrarily large sparse graphs; the
// cap turns a would-be multi-gigabyte allocation into a typed error the
// server can answer with a 400.
const MaxBitGraphVertices = 1 << 16

// BitGraph is the census engine's adjacency representation: one bitset row
// per vertex over all vertices, so the ESU extension rule's neighborhood and
// exclusive-neighborhood sets reduce to word-wide AND / AND-NOT loops
// (graph.AndCount and friends operate on the same row layout). Rows are
// stored in one flat slice for locality; Row(v) is a subslice, never a copy.
type BitGraph struct {
	n     int
	words int
	rows  []uint64 // row v occupies rows[v*words : (v+1)*words]
	deg   []int32  // popcount of each row, precomputed
}

// NewBitGraph builds the bitset adjacency of g. It returns an error when g
// exceeds MaxBitGraphVertices (the dense rows would not fit memory).
func NewBitGraph(g *graph.Graph) (*BitGraph, error) {
	n := g.NumVertices()
	if n > MaxBitGraphVertices {
		return nil, fmt.Errorf("esu: graph has %d vertices, cap is %d: %w", n, MaxBitGraphVertices, ErrGraphTooLarge)
	}
	words := (n + 63) / 64
	b := &BitGraph{
		n:     n,
		words: words,
		rows:  make([]uint64, n*words),
		deg:   make([]int32, n),
	}
	for v := 0; v < n; v++ {
		row := b.rows[v*words : (v+1)*words]
		for _, u := range g.Neighbors(graph.VertexID(v)) {
			row[u/64] |= 1 << (uint(u) % 64)
		}
		b.deg[v] = int32(g.Degree(graph.VertexID(v)))
	}
	return b, nil
}

// N returns the number of vertices.
func (b *BitGraph) N() int { return b.n }

// Words returns the row width in 64-bit words.
func (b *BitGraph) Words() int { return b.words }

// Row returns v's adjacency bitset. The slice aliases the BitGraph's storage
// and must not be modified.
func (b *BitGraph) Row(v graph.VertexID) []uint64 {
	return b.rows[int(v)*b.words : (int(v)+1)*b.words]
}

// Degree returns v's degree (the popcount of its row, precomputed).
func (b *BitGraph) Degree(v graph.VertexID) int { return int(b.deg[v]) }

// HasEdge reports whether {u, v} is an edge: a single bit probe.
func (b *BitGraph) HasEdge(u, v graph.VertexID) bool {
	return b.rows[int(u)*b.words+int(v)/64]&(1<<(uint(v)%64)) != 0
}

// SizeBytes returns the memory footprint of the adjacency rows.
func (b *BitGraph) SizeBytes() int64 { return int64(len(b.rows)) * 8 }
