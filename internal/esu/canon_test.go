package esu

import (
	"math/rand"
	"testing"
)

// relabel applies permutation perm to a k-subgraph code: edge {i,j} becomes
// {perm[i], perm[j]}.
func relabel(k int, code uint32, perm []int) uint32 {
	var out uint32
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if code&(1<<uint(pairIdx[k][i][j])) != 0 {
				out |= 1 << uint(pairIdx[k][perm[i]][perm[j]])
			}
		}
	}
	return out
}

func TestCanonicalCodeKnownForms(t *testing.T) {
	// k=3: the three labelings of the 2-path must collapse to one canonical
	// code, distinct from the triangle's.
	paths := []uint32{
		1<<pairIdx[3][0][1] | 1<<pairIdx[3][1][2],
		1<<pairIdx[3][0][1] | 1<<pairIdx[3][0][2],
		1<<pairIdx[3][0][2] | 1<<pairIdx[3][1][2],
	}
	canon := CanonicalCode(3, paths[0])
	for _, p := range paths[1:] {
		if CanonicalCode(3, p) != canon {
			t.Fatalf("2-path labelings disagree: %#x vs %#x", CanonicalCode(3, p), canon)
		}
	}
	triangle := CanonicalCode(3, 1<<pairIdx[3][0][1]|1<<pairIdx[3][0][2]|1<<pairIdx[3][1][2])
	if triangle == canon {
		t.Fatal("triangle and 2-path canonicalize identically")
	}
	if triangle != 0b111 {
		t.Fatalf("triangle canonical code %#b, want 0b111", triangle)
	}
	// k=4: 4-path vs 4-star vs 4-cycle are three distinct classes with the
	// same edge count ± 0/1; all must separate.
	path4 := CanonicalCode(4, 1<<pairIdx[4][0][1]|1<<pairIdx[4][1][2]|1<<pairIdx[4][2][3])
	star4 := CanonicalCode(4, 1<<pairIdx[4][0][1]|1<<pairIdx[4][0][2]|1<<pairIdx[4][0][3])
	cyc4 := CanonicalCode(4, 1<<pairIdx[4][0][1]|1<<pairIdx[4][1][2]|1<<pairIdx[4][2][3]|1<<pairIdx[4][0][3])
	if path4 == star4 || path4 == cyc4 || star4 == cyc4 {
		t.Fatalf("k=4 classes collide: path=%#x star=%#x cycle=%#x", path4, star4, cyc4)
	}
}

func TestMotifDSLRoundTrip(t *testing.T) {
	code := uint32(1<<pairIdx[3][0][1] | 1<<pairIdx[3][1][2])
	if got := MotifDSL(3, code); got != "edges(0-1,1-2)" {
		t.Fatalf("MotifDSL = %q", got)
	}
	if got := MotifDSL(3, 0); got != "edges()" {
		t.Fatalf("MotifDSL(empty) = %q", got)
	}
	if got := len(CodeEdges(4, 0b111111)); got != 6 {
		t.Fatalf("K4 has %d edges in CodeEdges, want 6", got)
	}
}

func TestCanonCacheLookup(t *testing.T) {
	c := NewCanonCache(3)
	code := uint32(1<<pairIdx[3][0][1] | 1<<pairIdx[3][0][2])
	v1, hit := c.Lookup(code)
	if hit {
		t.Fatal("first lookup hit")
	}
	v2, hit := c.Lookup(code)
	if !hit || v1 != v2 {
		t.Fatalf("second lookup: hit=%v %#x vs %#x", hit, v2, v1)
	}
	if v1 != CanonicalCode(3, code) {
		t.Fatal("cached value differs from direct computation")
	}
	if c.Size() != 1 {
		t.Fatalf("cache size %d, want 1", c.Size())
	}
}

// FuzzCanonicalForm checks the canonical-form invariant: relabeling a
// subgraph's vertices by any permutation must not change its canonical code,
// and the canonical code must itself be a member of the relabeling orbit.
func FuzzCanonicalForm(f *testing.F) {
	f.Add(uint8(3), uint16(0b101), uint16(1))
	f.Add(uint8(4), uint16(0b111111), uint16(9))
	f.Add(uint8(5), uint16(0b1010101010), uint16(1234))
	f.Fuzz(func(t *testing.T, kRaw uint8, codeRaw uint16, permSeed uint16) {
		k := MinK + int(kRaw)%(MaxK-MinK+1)
		code := uint32(codeRaw) & (1<<uint(codeBits(k)) - 1)
		canon := CanonicalCode(k, code)
		rng := rand.New(rand.NewSource(int64(permSeed)))
		perm := rng.Perm(k)
		shuffled := relabel(k, code, perm)
		if got := CanonicalCode(k, shuffled); got != canon {
			t.Fatalf("k=%d code=%#x perm=%v: canonical %#x after relabel, %#x before",
				k, code, perm, got, canon)
		}
		// Idempotence: the canonical form is its own canonical form.
		if got := CanonicalCode(k, canon); got != canon {
			t.Fatalf("k=%d: canonical %#x re-canonicalizes to %#x", k, canon, got)
		}
		// Edge count is an isomorphism invariant the canonical form must keep.
		if len(CodeEdges(k, canon)) != len(CodeEdges(k, code)) {
			t.Fatalf("k=%d: canonical form changed edge count", k)
		}
	})
}
