package esu

import (
	"context"
	"testing"

	"psgl/internal/graph"
)

func lineGraph(n int) *graph.Graph {
	edges := make([][2]graph.VertexID, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, [2]graph.VertexID{graph.VertexID(i), graph.VertexID(i + 1)})
	}
	return graph.FromEdges(n, edges)
}

func cliqueGraph(n int) *graph.Graph {
	var edges [][2]graph.VertexID
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, [2]graph.VertexID{graph.VertexID(i), graph.VertexID(j)})
		}
	}
	return graph.FromEdges(n, edges)
}

func starGraph(leaves int) *graph.Graph {
	var edges [][2]graph.VertexID
	for i := 1; i <= leaves; i++ {
		edges = append(edges, [2]graph.VertexID{0, graph.VertexID(i)})
	}
	return graph.FromEdges(leaves+1, edges)
}

func TestCensusKnownCounts(t *testing.T) {
	cases := []struct {
		name    string
		g       *graph.Graph
		k       int
		total   int64
		classes int
	}{
		{"triangle-k3", cliqueGraph(3), 3, 1, 1},
		{"path5-k3", lineGraph(5), 3, 3, 1}, // three consecutive triples
		{"path5-k4", lineGraph(5), 4, 2, 1}, // two consecutive quadruples
		{"path5-k5", lineGraph(5), 5, 1, 1}, // the whole path
		{"k5-k3", cliqueGraph(5), 3, 10, 1}, // C(5,3) triangles
		{"k5-k4", cliqueGraph(5), 4, 5, 1},  // C(5,4) K4s
		{"k5-k5", cliqueGraph(5), 5, 1, 1},  // K5 itself
		{"star4-k3", starGraph(4), 3, 6, 1}, // C(4,2) 2-paths through the hub
		{"star4-k4", starGraph(4), 4, 4, 1}, // C(4,3) 3-stars
		{"path5-k2", lineGraph(5), 2, 4, 1}, // k=2 census = edge count
		{"two-classes", graph.FromEdges(4, [][2]graph.VertexID{{0, 1}, {1, 2}, {0, 2}, {2, 3}}), 3, 2, 2}, // one triangle + paw's two induced 2-paths... see below
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Count(tc.g, tc.k, Options{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			if tc.name == "two-classes" {
				// Paw graph {01,12,02,23}: triangles {0,1,2}; induced 2-paths
				// {0,2,3}, {1,2,3} — 3 subgraphs in 2 classes.
				if res.Subgraphs != 3 || len(res.Classes) != 2 {
					t.Fatalf("paw census: got %d subgraphs in %d classes, want 3 in 2: %+v",
						res.Subgraphs, len(res.Classes), res.Classes)
				}
				return
			}
			if res.Subgraphs != tc.total {
				t.Fatalf("got %d subgraphs, want %d (%+v)", res.Subgraphs, tc.total, res.Classes)
			}
			if len(res.Classes) != tc.classes {
				t.Fatalf("got %d classes, want %d (%+v)", len(res.Classes), tc.classes, res.Classes)
			}
			var sum int64
			for _, c := range res.Classes {
				sum += c.Count
			}
			if sum != res.Subgraphs {
				t.Fatalf("class sum %d != total %d", sum, res.Subgraphs)
			}
		})
	}
}

func TestCensusWorkerCountInvariance(t *testing.T) {
	g := testChungLu(t, 500, 1500, 2.0, 42)
	for _, k := range []int{3, 4} {
		base, err := Count(g, k, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 8} {
			res, err := Count(g, k, Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if res.Subgraphs != base.Subgraphs {
				t.Fatalf("k=%d workers=%d: %d subgraphs, serial found %d",
					k, workers, res.Subgraphs, base.Subgraphs)
			}
			bh, rh := base.Histogram(), res.Histogram()
			if len(bh) != len(rh) {
				t.Fatalf("k=%d workers=%d: %d classes vs serial %d", k, workers, len(rh), len(bh))
			}
			for code, cnt := range bh {
				if rh[code] != cnt {
					t.Fatalf("k=%d workers=%d: class %#x count %d, serial %d",
						k, workers, code, rh[code], cnt)
				}
			}
		}
	}
}

func TestCensusSharedCacheAcrossRuns(t *testing.T) {
	g := testChungLu(t, 300, 900, 2.0, 7)
	cache := NewCanonCache(4)
	first, err := Count(g, 4, Options{Workers: 2, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheMisses == 0 {
		t.Fatal("fresh cache saw no misses")
	}
	if first.CacheMisses != int64(cache.Size()) {
		t.Fatalf("misses %d != cache size %d (each distinct code must miss exactly once)",
			first.CacheMisses, cache.Size())
	}
	second, err := Count(g, 4, Options{Workers: 2, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if second.CacheMisses != 0 {
		t.Fatalf("warm cache missed %d times", second.CacheMisses)
	}
	if second.CacheHitRate() != 1.0 {
		t.Fatalf("warm hit rate %f, want 1.0", second.CacheHitRate())
	}
	if _, err := Count(g, 3, Options{Cache: cache}); err == nil {
		t.Fatal("k=3 census accepted a k=4 cache")
	}
}

func TestCensusCancellation(t *testing.T) {
	g := testChungLu(t, 2000, 12000, 1.8, 9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CountContext(ctx, g, 4, Options{Workers: 2}); err == nil {
		t.Fatal("canceled census returned no error")
	}
}

func TestCensusValidation(t *testing.T) {
	g := lineGraph(4)
	if _, err := Count(g, 1, Options{}); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := Count(g, 6, Options{}); err == nil {
		t.Fatal("k=6 accepted")
	}
}
