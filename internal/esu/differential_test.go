package esu

import (
	"testing"

	"psgl/internal/centralized"
	"psgl/internal/gen"
	"psgl/internal/graph"
	"psgl/internal/pattern"
)

func testChungLu(t testing.TB, n int, m int64, gamma float64, seed int64) *graph.Graph {
	t.Helper()
	return gen.ChungLu(n, m, gamma, seed)
}

// patternGraph turns a catalog pattern (pg1 = triangle, pg3 = diamond) into a
// tiny data graph — the fixed edge-case inputs of the differential suite.
func patternGraph(t *testing.T, name string) *graph.Graph {
	t.Helper()
	p, err := pattern.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	edges := make([][2]graph.VertexID, 0, p.NumEdges())
	for _, e := range p.Edges() {
		edges = append(edges, [2]graph.VertexID{graph.VertexID(e[0]), graph.VertexID(e[1])})
	}
	return graph.FromEdges(p.N(), edges)
}

// compareWithOracle checks the parallel census histogram against the naive
// centralized oracle bit for bit. The two engines canonicalize differently
// (degree-refined min vs all-permutations min), so each esu class
// representative is re-canonicalized through the oracle's function first;
// both keys name the same isomorphism class.
func compareWithOracle(t *testing.T, g *graph.Graph, k, workers int) {
	t.Helper()
	res, err := Count(g, k, Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[uint32]int64, len(res.Classes))
	for _, c := range res.Classes {
		got[centralized.CanonicalSubgraphCode(k, c.Code)] += c.Count
	}
	want, wantTotal := centralized.MotifCensus(g, k)
	if res.Subgraphs != wantTotal {
		t.Fatalf("k=%d: esu found %d subgraphs, oracle %d", k, res.Subgraphs, wantTotal)
	}
	if len(got) != len(want) {
		t.Fatalf("k=%d: esu %d classes, oracle %d (esu=%v oracle=%v)", k, len(got), len(want), got, want)
	}
	for code, cnt := range want {
		if got[code] != cnt {
			t.Fatalf("k=%d class %#x: esu %d, oracle %d", k, code, got[code], cnt)
		}
	}
}

// TestCensusDifferential is the differential acceptance suite: k=3,4 census
// on Chung-Lu graphs (3 seeds × 2 degree profiles) plus the pg1/pg3 pattern
// shapes as tiny data graphs, parallel esu vs the naive oracle. CI runs the
// package under -race, so this also exercises the shared memo cache and the
// chunked work claim concurrently.
func TestCensusDifferential(t *testing.T) {
	type config struct {
		name  string
		n     int
		m     int64
		gamma float64
	}
	configs := []config{
		{"skewed", 200, 400, 1.8},
		{"mild", 300, 600, 2.5},
	}
	seeds := []int64{1, 2, 3}
	for _, k := range []int{3, 4} {
		for _, cfg := range configs {
			for _, seed := range seeds {
				g := testChungLu(t, cfg.n, cfg.m, cfg.gamma, seed)
				compareWithOracle(t, g, k, 4)
			}
		}
	}
	// Pattern-shape edge cases: data graph == one motif instance.
	for _, name := range []string{"pg1", "pg3"} {
		g := patternGraph(t, name)
		for _, k := range []int{3, 4} {
			if k > g.NumVertices() {
				continue
			}
			compareWithOracle(t, g, k, 2)
		}
	}
}

// TestCensusSteadyStateAllocs pins the enumeration hot path: once a walker's
// scratch and the memo cache are warm, enumerating allocates nothing.
func TestCensusSteadyStateAllocs(t *testing.T) {
	g := testChungLu(t, 400, 1200, 2.0, 5)
	b, err := NewBitGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCanonCache(4)
	w := newWalker(b, 4, cache)
	for v := 0; v < b.N(); v++ {
		w.root(graph.VertexID(v)) // warm: local histogram map + memo cache
	}
	if w.total == 0 {
		t.Fatal("warmup enumerated nothing; graph too sparse for the pin")
	}
	allocs := testing.AllocsPerRun(10, func() {
		for v := 0; v < 50; v++ {
			w.root(graph.VertexID(v))
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state enumeration allocates %.1f times per pass, want 0", allocs)
	}
}
