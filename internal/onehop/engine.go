package onehop

import (
	"sync/atomic"
	"time"

	"psgl/internal/bsp"
	"psgl/internal/graph"
	"psgl/internal/pattern"
)

// ohEngine implements bsp.Program[message] for the fixed-order traversal.
type ohEngine struct {
	g       *graph.Graph
	ord     *graph.Ordered
	p       *pattern.Pattern
	order   []int // traversal order; order[0] is the start vertex
	anchors []int // anchors[i] = earlier pattern neighbor of order[i]
	part    graph.Partition
	budget  int64

	generated atomic.Int64
	oom       atomic.Bool
}

// Init seeds one match per admissible data vertex at order[0] and ships it to
// its own verification step (trivial) which immediately extends.
func (e *ohEngine) Init(ctx *bsp.Context[message]) {
	v0 := e.order[0]
	minDeg := e.p.Degree(v0)
	w := ctx.Worker()
	for v := 0; v < e.g.NumVertices(); v++ {
		vd := graph.VertexID(v)
		if e.part.Owner(vd) != w || e.g.Degree(vd) < minDeg {
			continue
		}
		m := message{Match: make([]graph.VertexID, e.p.N()), Pos: 0, Kind: kindVerify}
		for i := range m.Match {
			m.Match[i] = -1
		}
		m.Match[v0] = vd
		e.send(ctx, m.Match[v0], m)
	}
}

func (e *ohEngine) Process(ctx *bsp.Context[message], env bsp.Envelope[message]) {
	if e.oom.Load() {
		return
	}
	m := env.Msg
	switch m.Kind {
	case kindVerify:
		e.verify(ctx, m)
	case kindExtend:
		e.extend(ctx, m)
	}
}

// verify runs at the data vertex mapped to order[Pos]: all pattern edges from
// that vertex to earlier matched vertices are checked against the local
// adjacency (the one-hop index). This is where invalid intermediates finally
// die — after they were shipped.
func (e *ohEngine) verify(ctx *bsp.Context[message], m message) {
	pos := int(m.Pos)
	pv := e.order[pos]
	vd := m.Match[pv]
	for _, u := range e.p.Neighbors(pv) {
		if m.Match[u] < 0 {
			continue
		}
		if u == e.anchors[pos] {
			continue // the anchor edge holds by construction
		}
		if !e.g.HasEdge(vd, m.Match[u]) {
			ctx.AddCounter("pruned_verify", 1)
			return
		}
	}
	if pos == len(e.order)-1 {
		ctx.AddCounter("results", 1)
		return
	}
	// Route to the next vertex's anchor for extension.
	next := pos + 1
	m.Pos = int8(next)
	m.Kind = kindExtend
	e.send(ctx, m.Match[e.anchors[next]], m)
}

// extend runs at the anchor of order[Pos]: one candidate match per admissible
// neighbor. Degree, injectivity, and partial-order filters always apply.
// Additionally, a pattern edge (pv, u) is verifiable in place when map(u) is
// a data neighbor of the anchor: PowerGraph's gather along the data edge
// (anchor, map(u)) materializes N(map(u)) at the anchor's machine (the
// hopscotch one-hop index), so membership of the candidate is a local
// lookup. This is what makes the engine excellent at triangles — every
// closing edge is one hop from the anchor — while patterns whose closing
// edges span two hops still ship each candidate before it can die.
func (e *ohEngine) extend(ctx *bsp.Context[message], m message) {
	pos := int(m.Pos)
	pv := e.order[pos]
	anchorPV := e.anchors[pos]
	anchor := m.Match[anchorPV]
	minDeg := e.p.Degree(pv)

	// Split pv's mapped pattern neighbors into locally verifiable (one hop
	// from the anchor) and deferred (need shipping to the candidate).
	var localChecks []graph.VertexID
	deferred := false
	for _, u := range e.p.Neighbors(pv) {
		if u == anchorPV || m.Match[u] < 0 {
			continue
		}
		if e.g.HasEdge(anchor, m.Match[u]) {
			localChecks = append(localChecks, m.Match[u])
		} else {
			deferred = true
		}
	}
	last := pos == len(e.order)-1

	// Hopscotch-intersection trick: a candidate must be a common neighbor of
	// the anchor and every locally checkable vertex, so iterate the smallest
	// of those adjacency lists and membership-test the rest. On skewed
	// graphs this is what makes PowerGraph-style triangle counting fast.
	source := e.g.Neighbors(anchor)
	checks := localChecks
	if len(localChecks) > 0 {
		smallest, smallestIdx := anchor, -1
		for i, d := range localChecks {
			if e.g.Degree(d) < e.g.Degree(smallest) {
				smallest, smallestIdx = d, i
			}
		}
		if smallestIdx >= 0 {
			source = e.g.Neighbors(smallest)
			checks = make([]graph.VertexID, 0, len(localChecks))
			checks = append(checks, anchor)
			for i, d := range localChecks {
				if i != smallestIdx {
					checks = append(checks, d)
				}
			}
		}
	}

	for _, c := range source {
		if e.g.Degree(c) < minDeg || used(m.Match, c) {
			continue
		}
		ok := true
		for u := 0; u < e.p.N() && ok; u++ {
			if m.Match[u] < 0 || u == pv {
				continue
			}
			if e.p.MustPrecede(pv, u) && !e.ord.Less(c, m.Match[u]) {
				ok = false
			} else if e.p.MustPrecede(u, pv) && !e.ord.Less(m.Match[u], c) {
				ok = false
			}
		}
		if !ok {
			continue
		}
		for _, d := range checks {
			if !e.g.HasEdge(c, d) {
				ok = false
				break
			}
		}
		if !ok {
			ctx.AddCounter("pruned_local", 1)
			continue
		}
		if last && !deferred {
			// Fully verified in place: a complete instance, no shipping.
			ctx.AddCounter("results", 1)
			continue
		}
		child := message{
			Match: append([]graph.VertexID(nil), m.Match...),
			Pos:   m.Pos,
			Kind:  kindVerify,
		}
		child.Match[pv] = c
		e.send(ctx, c, child)
		if e.oom.Load() {
			return
		}
	}
}

func used(match []graph.VertexID, x graph.VertexID) bool {
	for _, v := range match {
		if v == x {
			return true
		}
	}
	return false
}

func (e *ohEngine) send(ctx *bsp.Context[message], dest graph.VertexID, m message) {
	ctx.Send(dest, m)
	ctx.AddCounter("generated", 1)
	if e.budget > 0 && e.generated.Add(1) > e.budget {
		e.oom.Store(true)
		ctx.Abort(ErrOutOfMemory)
	}
}

func (e *ohEngine) result(rs *bsp.RunStats, wall time.Duration) *Result {
	return &Result{
		Count: rs.Counters["results"],
		Stats: Stats{
			Supersteps:        rs.Supersteps,
			Generated:         rs.Counters["generated"],
			Results:           rs.Counters["results"],
			PrunedByVerify:    rs.Counters["pruned_verify"],
			PrunedLocally:     rs.Counters["pruned_local"],
			WorkerTime:        rs.WorkerTime,
			SimulatedMakespan: rs.SimulatedMakespan(),
			WallTime:          wall,
		},
	}
}
