// Package onehop is the PowerGraph comparison system of Tables 3 and 4: a
// graph-parallel subgraph lister with a manually fixed traversal order and a
// one-hop neighborhood index, re-implemented on this repository's BSP
// substrate.
//
// The engine walks the pattern vertices in the given order. Extending the
// match by the next pattern vertex draws candidates from the adjacency of
// its anchor (the most recent already-matched pattern neighbor) with only
// degree / injectivity / partial-order filters — edges to other matched
// vertices cannot be checked there, because the anchor's worker only holds
// the anchor's one-hop neighborhood. Each candidate match is therefore
// shipped to the candidate's owner first, where its incident pattern edges
// are verified against the local adjacency (the one-hop index); invalid
// intermediates die only after they have been materialized and communicated.
//
// That is precisely the failure mode Section 7.6 attributes to PowerGraph:
// competitive on triangles and squares (cheap verification, lean engine — no
// distribution strategy, no bloom index, single-vertex extension), but
// blowing up on denser patterns or badly chosen orders, where PSgL's global
// light-weight edge index prunes before communication.
package onehop

import (
	"fmt"
	"time"

	"psgl/internal/bsp"
	"psgl/internal/graph"
	"psgl/internal/pattern"
)

// ErrOutOfMemory mirrors the OOM rows of Table 4.
var ErrOutOfMemory = fmt.Errorf("onehop: intermediate result budget exceeded (OOM)")

// Options configures a run.
type Options struct {
	// Workers is the BSP worker count. 0 means 4.
	Workers int
	// Order is the fixed traversal order over pattern vertices (e.g.
	// 1->2->3->4 in the paper's notation is []int{0,1,2,3}). Every vertex
	// after the first must have an earlier pattern neighbor. Nil means a
	// BFS order from vertex 0.
	Order []int
	// MaxIntermediate aborts with ErrOutOfMemory once the engine has
	// generated this many intermediate matches. 0 means unlimited.
	MaxIntermediate int64
	// Seed drives the vertex partition.
	Seed int64
}

// Stats reports the run metrics shared with the PSgL engine.
type Stats struct {
	Supersteps        int
	Generated         int64
	Results           int64
	PrunedByVerify    int64
	PrunedLocally     int64
	WorkerTime        []time.Duration
	SimulatedMakespan time.Duration
	WallTime          time.Duration
}

// Result is the outcome of a run.
type Result struct {
	Count int64
	Stats Stats
}

// message is the in-flight partial match.
type message struct {
	Match []graph.VertexID
	// Pos indexes the traversal order. Kind 0 = verify the vertex at Pos
	// (routed to its mapped data vertex), kind 1 = extend to Pos (routed to
	// the anchor's data vertex).
	Pos  int8
	Kind int8
}

const (
	kindVerify = 0
	kindExtend = 1
)

// Run lists instances of p in g along the fixed traversal order.
func Run(g *graph.Graph, p *pattern.Pattern, opts Options) (*Result, error) {
	if g == nil || p == nil {
		return nil, fmt.Errorf("onehop: nil graph or pattern")
	}
	p = p.BreakAutomorphisms()
	workers := opts.Workers
	if workers <= 0 {
		workers = 4
	}
	order := opts.Order
	if order == nil {
		order = DefaultOrder(p)
	}
	if err := ValidateOrder(p, order); err != nil {
		return nil, err
	}
	anchors := make([]int, len(order))
	posOf := make([]int, p.N())
	for i, v := range order {
		posOf[v] = i
	}
	for i, v := range order {
		anchors[i] = -1
		best := -1
		for _, u := range p.Neighbors(v) {
			if posOf[u] < i && posOf[u] > best {
				best = posOf[u]
			}
		}
		if best >= 0 {
			anchors[i] = order[best]
		}
	}

	e := &ohEngine{
		g:       g,
		ord:     graph.NewOrdered(g),
		p:       p,
		order:   order,
		anchors: anchors,
		part:    graph.NewPartition(workers, opts.Seed),
		budget:  opts.MaxIntermediate,
	}
	cfg := bsp.Config{
		Workers: workers,
		Owner:   func(v graph.VertexID) int { return e.part.Owner(v) },
	}
	start := time.Now()
	rs, err := bsp.Run[message](cfg, e)
	wall := time.Since(start)
	if err != nil {
		if e.oom.Load() {
			return e.result(rs, wall), ErrOutOfMemory
		}
		return nil, err
	}
	return e.result(rs, wall), nil
}

// DefaultOrder returns a BFS traversal order from pattern vertex 0.
func DefaultOrder(p *pattern.Pattern) []int {
	order := []int{0}
	seen := make([]bool, p.N())
	seen[0] = true
	for i := 0; i < len(order); i++ {
		for _, u := range p.Neighbors(order[i]) {
			if !seen[u] {
				seen[u] = true
				order = append(order, u)
			}
		}
	}
	return order
}

// ValidateOrder checks that order is a permutation of the pattern vertices
// in which every vertex after the first has an earlier pattern neighbor.
func ValidateOrder(p *pattern.Pattern, order []int) error {
	if len(order) != p.N() {
		return fmt.Errorf("onehop: order has %d entries for a %d-vertex pattern", len(order), p.N())
	}
	seen := make([]bool, p.N())
	for i, v := range order {
		if v < 0 || v >= p.N() || seen[v] {
			return fmt.Errorf("onehop: order %v is not a permutation", order)
		}
		seen[v] = true
		if i == 0 {
			continue
		}
		hasAnchor := false
		for _, u := range p.Neighbors(v) {
			for j := 0; j < i; j++ {
				if order[j] == u {
					hasAnchor = true
				}
			}
		}
		if !hasAnchor {
			return fmt.Errorf("onehop: order %v: vertex %d has no earlier neighbor", order, v)
		}
	}
	return nil
}
