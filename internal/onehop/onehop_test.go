package onehop

import (
	"errors"
	"testing"

	"psgl/internal/centralized"
	"psgl/internal/gen"
	"psgl/internal/pattern"
)

func TestMatchesOracle(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := gen.ErdosRenyi(120, 700, seed)
		for _, p := range []*pattern.Pattern{pattern.PG1(), pattern.PG2(), pattern.PG3(), pattern.PG4(), pattern.PG5()} {
			want := centralized.CountInstances(p, g)
			res, err := Run(g, p, Options{Workers: 3, Seed: seed})
			if err != nil {
				t.Fatalf("%s seed=%d: %v", p.Name(), seed, err)
			}
			if res.Count != want {
				t.Errorf("%s seed=%d: onehop=%d oracle=%d", p.Name(), seed, res.Count, want)
			}
		}
	}
}

func TestMatchesOracleSkewed(t *testing.T) {
	g := gen.ChungLu(400, 1600, 1.7, 4)
	for _, p := range []*pattern.Pattern{pattern.PG1(), pattern.PG2()} {
		want := centralized.CountInstances(p, g)
		res, err := Run(g, p, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != want {
			t.Errorf("%s: onehop=%d oracle=%d", p.Name(), res.Count, want)
		}
	}
}

func TestAllValidOrdersAgree(t *testing.T) {
	g := gen.ErdosRenyi(100, 600, 9)
	p := pattern.PG3()
	want := centralized.CountInstances(p, g)
	orders := [][]int{
		{0, 1, 2, 3}, {1, 0, 2, 3}, {1, 3, 0, 2}, {3, 1, 2, 0}, {2, 1, 3, 0},
	}
	for _, order := range orders {
		if err := ValidateOrder(p, order); err != nil {
			t.Fatalf("order %v rejected: %v", order, err)
		}
		res, err := Run(g, p, Options{Workers: 3, Order: order})
		if err != nil {
			t.Fatalf("order %v: %v", order, err)
		}
		if res.Count != want {
			t.Errorf("order %v: count=%d want=%d", order, res.Count, want)
		}
	}
}

func TestOrderValidation(t *testing.T) {
	p := pattern.PG2() // square 0-1-2-3
	bad := [][]int{
		{0, 1, 2},     // wrong length
		{0, 0, 1, 2},  // not a permutation
		{0, 2, 1, 3},  // 2 is not adjacent to 0 in C4
		{-1, 0, 1, 2}, // out of range
	}
	for _, order := range bad {
		if err := ValidateOrder(p, order); err == nil {
			t.Errorf("order %v accepted", order)
		}
	}
	if err := ValidateOrder(p, []int{0, 1, 2, 3}); err != nil {
		t.Errorf("valid order rejected: %v", err)
	}
}

// TestOrderSensitivity reproduces the Table 4 observation: on a skewed graph,
// different fixed traversal orders generate very different intermediate
// volumes ("it is difficult for a non-expert to figure out a good traversal
// order").
func TestOrderSensitivity(t *testing.T) {
	g := gen.ChungLu(800, 3200, 1.6, 7)
	p := pattern.PG3()
	gen1, err := Run(g, p, Options{Workers: 3, Order: []int{1, 3, 0, 2}}) // start at the chord (deg-3) vertices
	if err != nil {
		t.Fatal(err)
	}
	gen2, err := Run(g, p, Options{Workers: 3, Order: []int{0, 1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("generated: order(1,3,0,2)=%d order(0,1,2,3)=%d", gen1.Stats.Generated, gen2.Stats.Generated)
	if gen1.Stats.Generated == gen2.Stats.Generated {
		t.Error("different orders produced identical intermediate volume — sensitivity not modeled")
	}
}

func TestOOMBudget(t *testing.T) {
	g := gen.ChungLu(800, 3200, 1.6, 8)
	_, err := Run(g, pattern.PG4(), Options{Workers: 2, MaxIntermediate: 200})
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

// TestShipsMoreIntermediatesThanItKeeps verifies the engine's defining cost:
// a pattern edge whose endpoints are two hops from the anchor (the square's
// closing edge) cannot be checked at extension time, so invalid candidates
// are shipped and die only at verification.
func TestShipsMoreIntermediatesThanItKeeps(t *testing.T) {
	g := gen.ChungLu(600, 2400, 1.7, 3)
	res, err := Run(g, pattern.PG2(), Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PrunedByVerify == 0 {
		t.Error("no post-shipping pruning observed; the one-hop limitation is not modeled")
	}
	if res.Stats.Generated <= res.Count {
		t.Errorf("generated=%d <= results=%d", res.Stats.Generated, res.Count)
	}
}

// TestTriangleClosesLocally verifies the one-hop gather fast path: every
// closing edge of a triangle is one hop from the anchor, so nothing is
// pruned post-shipping and the instance count is produced in place.
func TestTriangleClosesLocally(t *testing.T) {
	g := gen.ChungLu(600, 2400, 1.7, 5)
	res, err := Run(g, pattern.PG1(), Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PrunedByVerify != 0 {
		t.Errorf("triangle shipped %d candidates that died remotely; gather fast path inactive",
			res.Stats.PrunedByVerify)
	}
	if res.Stats.PrunedLocally == 0 {
		t.Error("no local pruning recorded")
	}
}

func TestDefaultOrderValid(t *testing.T) {
	for _, p := range []*pattern.Pattern{pattern.PG1(), pattern.PG2(), pattern.PG3(), pattern.PG4(), pattern.PG5(), pattern.Star(4), pattern.Cycle(6)} {
		if err := ValidateOrder(p, DefaultOrder(p)); err != nil {
			t.Errorf("%s: default order invalid: %v", p.Name(), err)
		}
	}
}

func TestInvalidInputs(t *testing.T) {
	g := gen.ErdosRenyi(10, 20, 1)
	if _, err := Run(nil, pattern.PG1(), Options{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := Run(g, nil, Options{}); err == nil {
		t.Error("nil pattern accepted")
	}
	if _, err := Run(g, pattern.PG1(), Options{Order: []int{0, 2, 1, 3}}); err == nil {
		t.Error("wrong-length order accepted")
	}
}

func BenchmarkOneHopTriangle(b *testing.B) {
	g := gen.ChungLu(5000, 25000, 1.8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, pattern.PG1(), Options{Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}
