package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"psgl/internal/bsp"
	"psgl/internal/core"
	"psgl/internal/esu"
	"psgl/internal/graph"
	"psgl/internal/pattern"
)

func postUpdate(t *testing.T, url, body string) (*updateResponse, int) {
	t.Helper()
	resp, err := http.Post(url+"/update", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode
	}
	var ur updateResponse
	if err := json.NewDecoder(resp.Body).Decode(&ur); err != nil {
		t.Fatalf("decoding update response: %v", err)
	}
	return &ur, resp.StatusCode
}

func countQuery(t *testing.T, url, pat string) int64 {
	t.Helper()
	var cr countResponse
	if code := getJSON(t, url+"/query?count_only=true&pattern="+pat, &cr); code != http.StatusOK {
		t.Fatalf("count query %s: status %d", pat, code)
	}
	return cr.Count
}

// oracleCount runs the batch engine over g for pattern src.
func oracleCount(t *testing.T, g *graph.Graph, src string) int64 {
	t.Helper()
	p, err := pattern.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(g, p, core.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return res.Count
}

// mutate applies batch to a throwaway overlay over g and returns the
// resulting graph — the test-side oracle for what the server should serve.
func mutate(t *testing.T, g *graph.Graph, b graph.Batch) *graph.Graph {
	t.Helper()
	ov := graph.NewOverlay(g)
	if _, err := ov.ApplyBatch(b); err != nil {
		t.Fatal(err)
	}
	return ov.Snapshot()
}

// TestUpdateServesNewGraphAndInvalidatesPlans is the plan-cache epoch
// satellite: a plan cached against the old graph must not answer queries
// over the new one. The count after /update must match a fresh batch run on
// the mutated graph, /stats must advance the epoch and fingerprint, and the
// plan cache must be a fresh, epoch-local one.
func TestUpdateServesNewGraphAndInvalidatesPlans(t *testing.T) {
	g := testGraph(t)
	s, ts := newTestServer(t, g, Config{Workers: 2, MaxInFlight: 2})

	before := countQuery(t, ts.URL, "triangle")
	if want := oracleCount(t, g, "triangle"); before != want {
		t.Fatalf("pre-update count %d, want %d", before, want)
	}
	st0 := s.Stats()
	if st0.Graph.Epoch != 0 || st0.Plans.Misses != 1 {
		t.Fatalf("fresh server: epoch %d, plan misses %d", st0.Graph.Epoch, st0.Plans.Misses)
	}

	batch := graph.Batch{Add: [][2]graph.VertexID{{0, 1}, {0, 2}, {1, 2}, {3, 4}}, Remove: [][2]graph.VertexID{{5, 6}}}
	body, _ := json.Marshal(map[string][][2]graph.VertexID{"add": batch.Add, "remove": batch.Remove})
	ur, code := postUpdate(t, ts.URL, string(body))
	if code != http.StatusOK {
		t.Fatalf("update status %d", code)
	}
	if ur.Epoch != 1 {
		t.Fatalf("update epoch %d, want 1", ur.Epoch)
	}
	want := mutate(t, g, batch)

	after := countQuery(t, ts.URL, "triangle")
	if wantN := oracleCount(t, want, "triangle"); after != wantN {
		t.Fatalf("post-update count %d, want %d (stale plan or graph served)", after, wantN)
	}
	st1 := s.Stats()
	if st1.Graph.Epoch != 1 {
		t.Fatalf("stats epoch %d, want 1", st1.Graph.Epoch)
	}
	if st1.Graph.Fingerprint == st0.Graph.Fingerprint {
		t.Fatal("fingerprint unchanged across an effective mutation")
	}
	if want := fmt.Sprintf("%016x", want.Fingerprint()); st1.Graph.Fingerprint != want {
		t.Fatalf("fingerprint %s, want %s", st1.Graph.Fingerprint, want)
	}
	// The post-update query was the fresh cache's first sight of the
	// pattern: a miss, not a hit against the stale entry.
	if st1.Plans.Misses != 1 || st1.Plans.Hits != 0 {
		t.Fatalf("post-update plan cache: %d misses %d hits, want a fresh cache (1 miss, 0 hits)",
			st1.Plans.Misses, st1.Plans.Hits)
	}
	if st1.Mutations.Batches != 1 || st1.Mutations.EdgesRemoved != 1 {
		t.Fatalf("mutation stats: %+v", st1.Mutations)
	}
	if want := fmt.Sprintf("%016x", s.overlay.Fingerprint()); st1.Mutations.EdgeFingerprint != want {
		t.Fatalf("edge fingerprint %s, want %s", st1.Mutations.EdgeFingerprint, want)
	}
}

// TestUpdateValidation: malformed bodies and batches are rejected before the
// overlay changes, and the epoch never advances for a rejected update.
func TestUpdateValidation(t *testing.T) {
	g := testGraph(t)
	s, ts := newTestServer(t, g, Config{})
	cases := []struct {
		name, body string
		status     int
	}{
		{"bad json", "{", http.StatusBadRequest},
		{"unknown field", `{"ad":[[0,1]]}`, http.StatusBadRequest},
		{"trailing content", `{"add":[[0,1]]}{"add":[[1,2]]}`, http.StatusBadRequest},
		{"wrong arity", `{"add":[[0,1,2]]}`, http.StatusBadRequest},
		{"one endpoint", `{"add":[[7]]}`, http.StatusBadRequest},
		{"negative id", `{"add":[[-1,2]]}`, http.StatusBadRequest},
		{"huge id", `{"add":[[0,4294967296]]}`, http.StatusBadRequest},
		{"string id", `{"add":[["a",2]]}`, http.StatusBadRequest},
		{"empty batch", `{"add":[],"remove":[]}`, http.StatusBadRequest},
		{"self-loop", `{"add":[[3,3]]}`, http.StatusBadRequest},
		{"out of range vertex", `{"add":[[0,100000]]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if _, code := postUpdate(t, ts.URL, tc.body); code != tc.status {
			t.Fatalf("%s: status %d, want %d", tc.name, code, tc.status)
		}
	}
	resp, err := http.Get(ts.URL + "/update")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /update: status %d, want 405", resp.StatusCode)
	}
	if st := s.Stats(); st.Graph.Epoch != 0 || st.Mutations.Batches != 0 {
		t.Fatalf("rejected updates advanced state: %+v", st.Mutations)
	}
}

// TestUpdateNoopBatch: an accepted all-noop batch advances the epoch but
// leaves the graph, fingerprint, and plan cache untouched.
func TestUpdateNoopBatch(t *testing.T) {
	g := graph.FromEdges(4, [][2]graph.VertexID{{0, 1}, {1, 2}})
	s, ts := newTestServer(t, g, Config{})
	countQuery(t, ts.URL, "triangle") // warm the plan cache
	st0 := s.Stats()

	ur, code := postUpdate(t, ts.URL, `{"add":[[0,1]],"remove":[[0,3]]}`)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if ur.Epoch != 1 || ur.Added != 0 || ur.Removed != 0 || ur.Noops != 2 {
		t.Fatalf("noop batch result: %+v", ur)
	}
	st1 := s.Stats()
	if st1.Graph.Epoch != 1 {
		t.Fatalf("epoch %d, want 1", st1.Graph.Epoch)
	}
	if st1.Graph.Fingerprint != st0.Graph.Fingerprint {
		t.Fatal("noop batch changed the fingerprint")
	}
	// The plan cache survives a noop epoch: same entry, now hit.
	countQuery(t, ts.URL, "triangle")
	if st := s.Stats(); st.Plans.Hits != 1 {
		t.Fatalf("plan hits %d, want 1 (cache should survive a noop epoch)", st.Plans.Hits)
	}
}

// TestUpdateCompaction: once the pending patch set reaches CompactThreshold
// the overlay folds it into a fresh base, with epoch and fingerprint intact.
func TestUpdateCompaction(t *testing.T) {
	g := graph.FromEdges(10, [][2]graph.VertexID{{0, 1}})
	s, ts := newTestServer(t, g, Config{CompactThreshold: 3})

	if ur, _ := postUpdate(t, ts.URL, `{"add":[[1,2],[2,3]]}`); ur.Compacted || ur.PatchEdges != 2 {
		t.Fatalf("below threshold: %+v", ur)
	}
	ur, _ := postUpdate(t, ts.URL, `{"add":[[3,4],[4,5]]}`)
	if !ur.Compacted || ur.PatchEdges != 0 {
		t.Fatalf("at threshold: compacted=%v patch=%d, want compaction to empty the patch", ur.Compacted, ur.PatchEdges)
	}
	st := s.Stats()
	if st.Mutations.Compactions != 1 || st.Mutations.PatchEdges != 0 {
		t.Fatalf("mutation stats after compaction: %+v", st.Mutations)
	}
	if got, want := countQuery(t, ts.URL, "edges(0-1)"), oracleCount(t, s.state.Load().g, "edges(0-1)"); got != want {
		t.Fatalf("post-compaction count %d, want %d", got, want)
	}
}

// readNDJSONLine reads one line from a subscription stream into out.
func readNDJSONLine(t *testing.T, br *bufio.Reader, out any) {
	t.Helper()
	line, err := br.ReadBytes('\n')
	if err != nil {
		t.Fatalf("reading subscription line: %v (got %q)", err, line)
	}
	if err := json.Unmarshal(line, out); err != nil {
		t.Fatalf("bad subscription line %q: %v", line, err)
	}
}

// TestSubscribeStreamsGainedAndLost is the standing-query acceptance test:
// a subscriber hears exactly the embeddings gained and lost by each /update
// batch, with a per-epoch summary, and the stream closes cleanly on Drain.
func TestSubscribeStreamsGainedAndLost(t *testing.T) {
	g := graph.FromEdges(5, [][2]graph.VertexID{{0, 1}, {1, 2}})
	s, ts := newTestServer(t, g, Config{Workers: 2})

	resp, err := http.Post(ts.URL+"/subscribe?pattern=triangle", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe status %d", resp.StatusCode)
	}
	br := bufio.NewReader(resp.Body)
	var hello subHello
	readNDJSONLine(t, br, &hello)
	if hello.Pattern != "triangle" || hello.Epoch != 0 {
		t.Fatalf("hello line: %+v", hello)
	}

	// Epoch 1: close the wedge 0-1-2 into a triangle.
	ur, code := postUpdate(t, ts.URL, `{"add":[[0,2]]}`)
	if code != http.StatusOK {
		t.Fatalf("update status %d", code)
	}
	if len(ur.Deltas) != 1 || ur.Deltas[0].Gained != 1 || ur.Deltas[0].Lost != 0 {
		t.Fatalf("update deltas: %+v", ur.Deltas)
	}
	var gain subEventLine
	readNDJSONLine(t, br, &gain)
	if gain.Op != "gain" || gain.Epoch != 1 || len(gain.Embedding) != 3 {
		t.Fatalf("gain line: %+v", gain)
	}
	seen := map[graph.VertexID]bool{}
	for _, v := range gain.Embedding {
		seen[v] = true
	}
	if !seen[0] || !seen[1] || !seen[2] {
		t.Fatalf("gained embedding %v, want the triangle {0,1,2}", gain.Embedding)
	}
	var sum1 subSummaryLine
	readNDJSONLine(t, br, &sum1)
	if !sum1.Done || sum1.Epoch != 1 || sum1.Gained != 1 || sum1.Lost != 0 {
		t.Fatalf("epoch 1 summary: %+v", sum1)
	}

	// Epoch 2: break the triangle again; the same embedding is lost.
	if _, code := postUpdate(t, ts.URL, `{"remove":[[1,2]]}`); code != http.StatusOK {
		t.Fatalf("update 2 status %d", code)
	}
	var lose subEventLine
	readNDJSONLine(t, br, &lose)
	if lose.Op != "lose" || lose.Epoch != 2 {
		t.Fatalf("lose line: %+v", lose)
	}
	var sum2 subSummaryLine
	readNDJSONLine(t, br, &sum2)
	if sum2.Gained != 0 || sum2.Lost != 1 {
		t.Fatalf("epoch 2 summary: %+v", sum2)
	}
	if st := s.Stats(); st.Mutations.Subscribers != 1 || st.Mutations.DeltaGained != 1 || st.Mutations.DeltaLost != 1 {
		t.Fatalf("mutation stats: %+v", st.Mutations)
	}

	// Drain closes the standing stream with a final line.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	var closed subClosed
	readNDJSONLine(t, br, &closed)
	if !closed.Done || closed.Reason != "draining" {
		t.Fatalf("close line: %+v", closed)
	}
	// Post-drain: new subscriptions and updates are refused.
	r2, err := http.Post(ts.URL+"/subscribe?pattern=triangle", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain subscribe: status %d, want 503", r2.StatusCode)
	}
	if _, code := postUpdate(t, ts.URL, `{"add":[[1,3]]}`); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain update: status %d, want 503", code)
	}
}

// TestSubscribeSharedDeltaAcrossSpellings: two subscribers spelling the same
// canonical pattern differently share one delta enumeration per epoch.
func TestSubscribeSharedDeltaAcrossSpellings(t *testing.T) {
	g := graph.FromEdges(5, [][2]graph.VertexID{{0, 1}, {1, 2}})
	s, ts := newTestServer(t, g, Config{Workers: 2})

	readers := make([]*bufio.Reader, 2)
	for i, src := range []string{"triangle", "cycle(3)"} {
		resp, err := http.Post(ts.URL+"/subscribe?pattern="+src, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		readers[i] = bufio.NewReader(resp.Body)
		var hello subHello
		readNDJSONLine(t, readers[i], &hello)
	}
	ur, code := postUpdate(t, ts.URL, `{"add":[[0,2]]}`)
	if code != http.StatusOK {
		t.Fatalf("update status %d", code)
	}
	if len(ur.Deltas) != 1 {
		t.Fatalf("distinct canonical patterns: %d delta entries, want 1 shared", len(ur.Deltas))
	}
	if ur.Deltas[0].Subscribers != 2 {
		t.Fatalf("delta subscribers %d, want 2", ur.Deltas[0].Subscribers)
	}
	for i, br := range readers {
		var gain subEventLine
		readNDJSONLine(t, br, &gain)
		var sum subSummaryLine
		readNDJSONLine(t, br, &sum)
		if gain.Op != "gain" || sum.Gained != 1 {
			t.Fatalf("reader %d: gain=%+v sum=%+v", i, gain, sum)
		}
	}
	if st := s.Stats(); st.Mutations.DeltaRuns != 1 {
		t.Fatalf("delta runs %d, want 1 (one anchored run for one changed edge)", st.Mutations.DeltaRuns)
	}
}

// TestCensusInvalidatedOnUpdate: the per-k census result cache must not
// answer for the previous epoch's graph.
func TestCensusInvalidatedOnUpdate(t *testing.T) {
	g := graph.FromEdges(6, [][2]graph.VertexID{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	_, ts := newTestServer(t, g, Config{Workers: 2})

	var c0 censusResponse
	if code := getJSON(t, ts.URL+"/query?pattern=census(3)", &c0); code != http.StatusOK {
		t.Fatalf("census status %d", code)
	}
	if _, code := postUpdate(t, ts.URL, `{"add":[[0,2],[4,5]]}`); code != http.StatusOK {
		t.Fatalf("update status %d", code)
	}
	var c1 censusResponse
	if code := getJSON(t, ts.URL+"/query?pattern=census(3)", &c1); code != http.StatusOK {
		t.Fatalf("census status %d", code)
	}
	if c1.Cached {
		t.Fatal("post-update census answered from the stale result cache")
	}
	want := mutate(t, g, graph.Batch{Add: [][2]graph.VertexID{{0, 2}, {4, 5}}})
	bg, err := esu.NewBitGraph(want)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := esu.CountBitGraph(context.Background(), bg, 3, esu.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if c1.Subgraphs != oracle.Subgraphs {
		t.Fatalf("post-update census %d subgraphs, oracle %d", c1.Subgraphs, oracle.Subgraphs)
	}
}

// TestWorkerPlaneEvictedOnUpdate: a graph mutation retires every worker
// incarnation — their resident graph is the previous epoch's. Heartbeats
// answer 409 (rejoin) and a rejoin with the stale fingerprint answers 412.
func TestWorkerPlaneEvictedOnUpdate(t *testing.T) {
	g := testGraph(t)
	s, ts := newTestServer(t, g, Config{Plane: &PlaneConfig{Quorum: 1, SweepInterval: -1}})

	oldFP := fmt.Sprintf("%016x", g.Fingerprint())
	join := func(fp string) (joinResponse, int) {
		body, _ := json.Marshal(joinRequest{ID: "w1", Addr: "127.0.0.1:1", Fingerprint: fp})
		resp, err := http.Post(ts.URL+"/workers/join", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var jr joinResponse
		json.NewDecoder(resp.Body).Decode(&jr)
		return jr, resp.StatusCode
	}
	jr, code := join(oldFP)
	if code != http.StatusOK {
		t.Fatalf("join status %d", code)
	}

	if _, code := postUpdate(t, ts.URL, `{"add":[[0,1],[0,2],[1,2]]}`); code != http.StatusOK {
		t.Fatalf("update status %d", code)
	}

	beat, _ := json.Marshal(beatRequest{ID: "w1", Gen: jr.Gen})
	resp, err := http.Post(ts.URL+"/workers/heartbeat", "application/json", bytes.NewReader(beat))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("post-update heartbeat: status %d, want 409 (evicted)", resp.StatusCode)
	}
	if _, code := join(oldFP); code != http.StatusPreconditionFailed {
		t.Fatalf("rejoin with stale fingerprint: status %d, want 412", code)
	}
	newFP := s.Stats().Graph.Fingerprint
	if _, code := join(newFP); code != http.StatusOK {
		t.Fatalf("rejoin with current fingerprint: status %d, want 200", code)
	}
}

// TestUpdateKillScheduleDelta: a scheduled worker kill inside the delta
// enumeration recovers from its barrier checkpoint and the standing query
// still hears the exact gained set — the serving face of the delta
// fault-tolerance differential.
func TestUpdateKillScheduleDelta(t *testing.T) {
	g := graph.FromEdges(5, [][2]graph.VertexID{{0, 1}, {1, 2}})
	s, ts := newTestServer(t, g, Config{Workers: 2, CheckpointEvery: 1, MaxRecoveries: 4})
	s.testExchange = bsp.NewScheduledFaultExchangeFactory(nil, []bsp.StepFault{
		{Step: 1, Kind: bsp.StepFaultKill, Worker: 0},
	})

	resp, err := http.Post(ts.URL+"/subscribe?pattern=triangle", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	var hello subHello
	readNDJSONLine(t, br, &hello)

	ur, code := postUpdate(t, ts.URL, `{"add":[[0,2]]}`)
	if code != http.StatusOK {
		t.Fatalf("update status %d", code)
	}
	if len(ur.Deltas) != 1 || ur.Deltas[0].Error != "" {
		t.Fatalf("update deltas under faults: %+v", ur.Deltas)
	}
	if ur.Deltas[0].Gained != 1 {
		t.Fatalf("gained %d under kill schedule, want 1", ur.Deltas[0].Gained)
	}
	var gain subEventLine
	readNDJSONLine(t, br, &gain)
	var sum subSummaryLine
	readNDJSONLine(t, br, &sum)
	if gain.Op != "gain" || sum.Gained != 1 {
		t.Fatalf("stream under faults: gain=%+v sum=%+v", gain, sum)
	}
}
