package serve

import (
	"sort"
	"sync"
	"sync/atomic"

	"psgl/internal/core"
	"psgl/internal/pattern"
	"psgl/internal/stats"
)

// Plan is everything the engine needs per pattern that is independent of the
// query: the symmetry-broken pattern (automorphism breaking is the expensive
// part of preprocessing), the Algorithm 4 / Theorem 5 initial-pattern-vertex
// selection against this server's data graph, and the cached pattern edge
// list. A Plan is immutable after construction and shared by every query
// that resolves to the same canonical pattern.
type Plan struct {
	// Key is the canonical pattern key (pattern.CanonicalKey) the plan is
	// cached under; spelling variants of one structure share it.
	Key string
	// Pattern carries the symmetry-breaking partial order.
	Pattern *pattern.Pattern
	// InitialVertex is the selected initial pattern vertex.
	InitialVertex int
	// Edges is the pattern's cached edge list (a < b, lexicographic).
	Edges [][2]int

	built sync.Once
	// ready flips once the build completed; snapshot readers that did not go
	// through built.Do use it to skip entries still being built.
	ready atomic.Bool
	// Hits counts queries served from this entry after it was built.
	Hits atomic.Int64
}

// planCache computes each canonical pattern's plan exactly once and reuses
// it across queries. Concurrent queries for the same new pattern share one
// build: the map entry is created under the mutex, the expensive work runs
// under the entry's sync.Once, so the cache never holds two entries — or
// runs two builds — for one canonical pattern.
type planCache struct {
	dist *stats.Distribution // data-graph degree distribution, computed once

	mu     sync.Mutex
	plans  map[string]*Plan
	hits   atomic.Int64
	misses atomic.Int64
}

func newPlanCache(dist *stats.Distribution) *planCache {
	return &planCache{dist: dist, plans: map[string]*Plan{}}
}

// get returns the plan for p, building it on first use. p is the parsed,
// unplanned pattern; its canonical key decides cache identity.
func (c *planCache) get(p *pattern.Pattern) *Plan {
	key := p.CanonicalKey()
	c.mu.Lock()
	pl, ok := c.plans[key]
	if !ok {
		pl = &Plan{Key: key}
		c.plans[key] = pl
		c.misses.Add(1)
	} else {
		c.hits.Add(1)
		pl.Hits.Add(1)
	}
	c.mu.Unlock()
	pl.built.Do(func() {
		broken := p.BreakAutomorphisms()
		pl.Pattern = broken
		pl.InitialVertex = core.SelectInitialVertex(broken, c.dist)
		pl.Edges = broken.Edges()
		pl.ready.Store(true)
	})
	return pl
}

// snapshot returns the cache counters and per-entry summaries for /stats.
// Entries whose first build is still in flight are counted but summarized
// as pending.
func (c *planCache) snapshot() (entries []PlanStats, hits, misses int64) {
	c.mu.Lock()
	for _, pl := range c.plans {
		ps := PlanStats{Key: pl.Key, Pattern: "(building)", Hits: pl.Hits.Load()}
		if pl.ready.Load() {
			ps.Pattern = pl.Pattern.String()
			ps.InitialVertex = pl.InitialVertex
			ps.Edges = len(pl.Edges)
			ps.Orders = len(pl.Pattern.Orders())
		}
		entries = append(entries, ps)
	}
	c.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	return entries, c.hits.Load(), c.misses.Load()
}

// PlanStats is one plan-cache entry as reported by /stats.
type PlanStats struct {
	Key           string `json:"key"`
	Pattern       string `json:"pattern"`
	InitialVertex int    `json:"initial_vertex"`
	Edges         int    `json:"edges"`
	Orders        int    `json:"orders"`
	Hits          int64  `json:"hits"`
}
