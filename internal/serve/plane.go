// The coordinator half of the remote worker plane. With Config.Plane set,
// the server stops executing queries in-process and becomes a control plane
// over a fleet of psgl-worker processes: workers join a bsp.Registry
// (fingerprint-checked, generation-numbered), prove liveness with heartbeats,
// and execute queries dispatched to their /exec endpoint. Worker death is
// detected two ways — a failed dispatch (fast path) and missed heartbeats
// (the sweeper) — and both end in eviction plus retry of the query on a
// surviving worker. Below quorum the server degrades loudly: 503 with
// Retry-After, never a hang and never a silently partial answer.
//
// Dispatch policy, mirroring hedged-request serving practice:
//
//   - count queries: hedged. After HedgeDelay with no reply, a second worker
//     gets the same query; first valid reply wins, the loser is canceled.
//   - streams: failover only before the first body byte. Once embeddings
//     have reached the client a retry would duplicate them, so a mid-stream
//     death surfaces as a truncated stream (no `done` trailer).
//
// Every reply is validated against the registry's current generation for the
// answering worker, so a worker that died, restarted, and rejoined cannot
// have a stale incarnation's reply trusted as current.

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"

	"psgl/internal/bsp"
	"psgl/internal/core"
	"psgl/internal/obs"
)

// PlaneConfig enables and tunes the remote worker plane.
type PlaneConfig struct {
	// Quorum is the minimum alive worker count required to serve queries;
	// below it /query answers 503 with Retry-After. 0 means 1.
	Quorum int
	// HeartbeatInterval is the beat cadence workers are told to keep at
	// join. 0 means 500ms.
	HeartbeatInterval time.Duration
	// MissLimit is how many consecutive missed intervals evict a worker.
	// 0 means 3.
	MissLimit int
	// HedgeDelay is how long a count dispatch waits before speculatively
	// sending the query to a second worker. 0 means 2s; negative disables
	// hedging.
	HedgeDelay time.Duration
	// RetryAfter is the Retry-After hint on degraded 503s. 0 means 1s.
	RetryAfter time.Duration
	// DispatchTimeout bounds one worker dispatch attempt. 0 means no extra
	// bound beyond the query deadline.
	DispatchTimeout time.Duration
	// Clock overrides time.Now for the registry (deterministic tests).
	Clock func() time.Time
	// SweepInterval is the liveness sweeper cadence. 0 means
	// HeartbeatInterval; negative disables the background sweeper (tests
	// drive Sweep directly).
	SweepInterval time.Duration
}

func (c PlaneConfig) withDefaults() PlaneConfig {
	if c.Quorum <= 0 {
		c.Quorum = 1
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 500 * time.Millisecond
	}
	if c.MissLimit <= 0 {
		c.MissLimit = 3
	}
	if c.HedgeDelay == 0 {
		c.HedgeDelay = 2 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.SweepInterval == 0 {
		c.SweepInterval = c.HeartbeatInterval
	}
	return c
}

// plane is the coordinator's runtime state for the worker tier.
type plane struct {
	cfg    PlaneConfig
	reg    *bsp.Registry
	obs    *obs.Observer
	client *http.Client

	stopSweep chan struct{}
	sweepDone chan struct{}

	// Dispatch counters for /stats.
	dispatched  atomic.Int64
	hedged      atomic.Int64
	failovers   atomic.Int64
	staleReject atomic.Int64
	degraded    atomic.Int64
}

func newPlane(cfg PlaneConfig, o *obs.Observer) *plane {
	cfg = cfg.withDefaults()
	pl := &plane{
		cfg:       cfg,
		obs:       o,
		client:    &http.Client{},
		stopSweep: make(chan struct{}),
		sweepDone: make(chan struct{}),
	}
	pl.reg = bsp.NewRegistry(bsp.RegistryConfig{
		HeartbeatInterval: cfg.HeartbeatInterval,
		MissLimit:         cfg.MissLimit,
		Clock:             cfg.Clock,
		Observer:          o,
	})
	if cfg.SweepInterval > 0 {
		go pl.sweeper()
	} else {
		close(pl.sweepDone)
	}
	return pl
}

func (pl *plane) sweeper() {
	defer close(pl.sweepDone)
	t := time.NewTicker(pl.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-pl.stopSweep:
			return
		case <-t.C:
			pl.reg.Sweep()
		}
	}
}

func (pl *plane) stop() {
	select {
	case <-pl.stopSweep:
	default:
		close(pl.stopSweep)
	}
	<-pl.sweepDone
}

// Join protocol bodies. The fingerprint travels as the same 16-hex-digit
// string /stats prints, so 64-bit values survive JSON exactly.
type joinRequest struct {
	ID          string `json:"id"`
	Addr        string `json:"addr"`
	Fingerprint string `json:"fingerprint"`
}

type joinResponse struct {
	Gen         uint64 `json:"gen"`
	HeartbeatMS int64  `json:"heartbeat_ms"`
	MissLimit   int    `json:"miss_limit"`
}

type beatRequest struct {
	ID  string `json:"id"`
	Gen uint64 `json:"gen"`
}

func (s *Server) handleWorkerJoin(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		jsonError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req joinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		jsonError(w, http.StatusBadRequest, "bad join body: %v", err)
		return
	}
	if req.Addr == "" {
		jsonError(w, http.StatusBadRequest, "join needs addr")
		return
	}
	fp := s.state.Load().fp
	if want := fmt.Sprintf("%016x", fp); req.Fingerprint != want {
		// A worker resident over a different graph — including the previous
		// mutation epoch of this one — can never answer this server's
		// queries; 412 tells it the mismatch is permanent until it reloads
		// (no rejoin loop over the same graph will fix it).
		jsonError(w, http.StatusPreconditionFailed,
			"graph fingerprint mismatch: worker %s, coordinator %s", req.Fingerprint, want)
		return
	}
	gen, err := s.plane.reg.Join(req.ID, req.Addr, fp)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(joinResponse{
		Gen:         gen,
		HeartbeatMS: s.plane.cfg.HeartbeatInterval.Milliseconds(),
		MissLimit:   s.plane.cfg.MissLimit,
	})
}

func (s *Server) handleWorkerBeat(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		jsonError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req beatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		jsonError(w, http.StatusBadRequest, "bad heartbeat body: %v", err)
		return
	}
	switch err := s.plane.reg.Heartbeat(req.ID, req.Gen); {
	case err == nil:
		w.WriteHeader(http.StatusNoContent)
	case errors.Is(err, bsp.ErrStaleGeneration), errors.Is(err, bsp.ErrEvicted):
		// 409: this incarnation is dead to the coordinator; rejoin.
		jsonError(w, http.StatusConflict, "%v", err)
	default:
		jsonError(w, http.StatusNotFound, "%v", err)
	}
}

func (s *Server) handleWorkerLeave(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		jsonError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req beatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		jsonError(w, http.StatusBadRequest, "bad leave body: %v", err)
		return
	}
	switch err := s.plane.reg.Leave(req.ID, req.Gen); {
	case err == nil:
		w.WriteHeader(http.StatusNoContent)
	case errors.Is(err, bsp.ErrStaleGeneration):
		jsonError(w, http.StatusConflict, "%v", err)
	default:
		jsonError(w, http.StatusNotFound, "%v", err)
	}
}

func (s *Server) handleWorkers(w http.ResponseWriter, _ *http.Request) {
	type workerDoc struct {
		ID     string `json:"id"`
		Addr   string `json:"addr"`
		Gen    uint64 `json:"gen"`
		State  string `json:"state"`
		Misses int    `json:"misses"`
	}
	var doc struct {
		Epoch   uint64      `json:"epoch"`
		Alive   int         `json:"alive"`
		Quorum  int         `json:"quorum"`
		Workers []workerDoc `json:"workers"`
	}
	doc.Epoch = s.plane.reg.Epoch()
	doc.Alive = s.plane.reg.NumAlive()
	doc.Quorum = s.plane.cfg.Quorum
	for _, m := range s.plane.reg.Members() {
		doc.Workers = append(doc.Workers, workerDoc{
			ID: m.ID, Addr: m.Addr, Gen: m.Gen, State: m.State.String(), Misses: m.Misses,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

// values re-encodes parsed query params for forwarding to a worker's /exec,
// with the deadline rewritten to the time remaining at dispatch.
func (q queryParams) values(remaining time.Duration) url.Values {
	v := url.Values{}
	v.Set("pattern", q.patternSrc)
	if q.limit > 0 {
		v.Set("limit", strconv.FormatInt(q.limit, 10))
	}
	if ms := remaining.Milliseconds(); ms > 0 {
		v.Set("deadline_ms", strconv.FormatInt(ms, 10))
	}
	if q.countOnly {
		v.Set("count_only", "true")
	}
	v.Set("workers", strconv.Itoa(q.workers))
	switch q.strategy {
	case core.StrategyRandom:
		v.Set("strategy", "random")
	case core.StrategyRoulette:
		v.Set("strategy", "roulette")
	default:
		v.Set("strategy", "wa")
	}
	return v
}

// workerReply is one worker's complete /exec response.
type workerReply struct {
	worker string
	status int
	body   []byte
}

// errStaleReply marks a reply from a retired incarnation — retryable, and
// never forwarded to the client.
var errStaleReply = errors.New("serve: reply from stale worker generation")

// execOnce sends one count dispatch to wk and validates the reply's
// generation. 4xx replies are returned as non-error workerReply values (the
// worker deterministically rejected the query; retrying elsewhere would
// yield the same answer); transport errors, 5xx, and stale generations
// return errors so the caller retries.
func (pl *plane) execOnce(ctx context.Context, wk bsp.WorkerInfo, vals url.Values) (workerReply, error) {
	if pl.cfg.DispatchTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, pl.cfg.DispatchTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+wk.Addr+"/exec",
		bytes.NewReader([]byte(vals.Encode())))
	if err != nil {
		return workerReply{}, err
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	resp, err := pl.client.Do(req)
	if err != nil {
		return workerReply{}, fmt.Errorf("dispatch to %s: %w", wk.ID, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return workerReply{}, fmt.Errorf("reading reply from %s: %w", wk.ID, err)
	}
	if err := pl.validateReply(wk.ID, resp); err != nil {
		return workerReply{}, err
	}
	if resp.StatusCode >= 500 {
		return workerReply{}, fmt.Errorf("worker %s: status %d: %s", wk.ID, resp.StatusCode, body)
	}
	return workerReply{worker: wk.ID, status: resp.StatusCode, body: body}, nil
}

// validateReply checks the reply's generation header against the registry.
func (pl *plane) validateReply(id string, resp *http.Response) error {
	gen, err := strconv.ParseUint(resp.Header.Get("X-PSGL-Gen"), 10, 64)
	if err != nil {
		return fmt.Errorf("worker %s: missing or bad X-PSGL-Gen header", id)
	}
	if err := pl.reg.ValidateGeneration(id, gen); err != nil {
		pl.staleReject.Add(1)
		return fmt.Errorf("%w: %v", errStaleReply, err)
	}
	return nil
}

// writeDegraded is the below-quorum answer: 503 with Retry-After, so clients
// and load balancers back off and retry once a replacement worker joins.
func (s *Server) writeDegraded(w http.ResponseWriter, alive int) {
	pl := s.plane
	pl.degraded.Add(1)
	// Retry-After is whole seconds; a sub-second hint must round up, not
	// down — "Retry-After: 0" tells aggressive clients to hammer a plane
	// that just told them it is degraded.
	secs := int(pl.cfg.RetryAfter.Seconds() + 0.5)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	jsonError(w, http.StatusServiceUnavailable,
		"worker plane degraded: %d alive, quorum %d; retry shortly", alive, pl.cfg.Quorum)
}

// remoteCount dispatches a count query to the worker tier with hedging and
// failover. The first valid reply wins; a dead worker costs one failover,
// not the query.
func (s *Server) remoteCount(ctx context.Context, w http.ResponseWriter, params queryParams, observer *obs.Observer) {
	pl := s.plane
	alive := pl.reg.Alive()
	if len(alive) < pl.cfg.Quorum {
		s.writeDegraded(w, len(alive))
		return
	}
	remaining := params.deadline
	if dl, ok := ctx.Deadline(); ok {
		remaining = time.Until(dl)
	}
	vals := params.values(remaining)

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		rep workerReply
		err error
	}
	results := make(chan outcome, len(alive))
	next := 0
	launch := func() bool {
		if next >= len(alive) {
			return false
		}
		wk := alive[next]
		next++
		pl.dispatched.Add(1)
		go func() {
			rep, err := pl.execOnce(cctx, wk, vals)
			results <- outcome{rep, err}
		}()
		return true
	}
	launch()
	outstanding := 1

	var hedgeC <-chan time.Time
	if pl.cfg.HedgeDelay > 0 {
		hedge := time.NewTimer(pl.cfg.HedgeDelay)
		defer hedge.Stop()
		hedgeC = hedge.C
	}

	var lastErr error
	for outstanding > 0 {
		select {
		case <-hedgeC:
			hedgeC = nil // hedge at most once per query
			if launch() {
				outstanding++
				pl.hedged.Add(1)
				observer.AddHedgedQuery()
			}
		case oc := <-results:
			outstanding--
			if oc.err == nil {
				s.completed.Add(1)
				w.Header().Set("Content-Type", "application/json")
				w.Header().Set("X-PSGL-Worker", oc.rep.worker)
				w.WriteHeader(oc.rep.status)
				w.Write(oc.rep.body)
				return
			}
			lastErr = oc.err
			if ctx.Err() == nil && launch() {
				outstanding++
				pl.failovers.Add(1)
				observer.AddQueryRetry()
			}
		case <-ctx.Done():
			s.deadlineExceeded.Add(1)
			jsonError(w, http.StatusGatewayTimeout, "query canceled: %v", ctx.Err())
			return
		}
	}
	// Every candidate failed. A canceled query is the client's deadline, not
	// an upstream fault — the last outcome can race ahead of ctx.Done() in
	// the select above, and reporting that race as 502 "all workers failed"
	// miscounts a timeout as a worker-tier outage. Then: if the failures took
	// us below quorum, say so with Retry-After; otherwise it's a plain
	// upstream failure.
	if ctx.Err() != nil {
		s.deadlineExceeded.Add(1)
		jsonError(w, http.StatusGatewayTimeout, "query canceled: %v", ctx.Err())
		return
	}
	s.failed.Add(1)
	if pl.reg.NumAlive() < pl.cfg.Quorum {
		s.writeDegraded(w, pl.reg.NumAlive())
		return
	}
	jsonError(w, http.StatusBadGateway, "all workers failed: %v", lastErr)
}

// remoteStream proxies a streaming query to one worker, failing over to the
// next only while zero body bytes have been written. After the first byte
// the stream is committed: a mid-stream worker death reaches the client as
// a truncated stream with no `done` trailer, which NDJSON consumers must
// treat as an incomplete result.
func (s *Server) remoteStream(ctx context.Context, w http.ResponseWriter, params queryParams, observer *obs.Observer) {
	pl := s.plane
	alive := pl.reg.Alive()
	if len(alive) < pl.cfg.Quorum {
		s.writeDegraded(w, len(alive))
		return
	}
	remaining := params.deadline
	if dl, ok := ctx.Deadline(); ok {
		remaining = time.Until(dl)
	}
	vals := params.values(remaining)

	var lastErr error
	for i, wk := range alive {
		if i > 0 {
			pl.failovers.Add(1)
			observer.AddQueryRetry()
		}
		pl.dispatched.Add(1)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+wk.Addr+"/exec",
			bytes.NewReader([]byte(vals.Encode())))
		if err != nil {
			jsonError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
		resp, err := pl.client.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				// The dispatch failed because the query was canceled, not
				// because the worker is unhealthy: stop failing over (each
				// further attempt would fail identically and be miscounted
				// as a worker failover) and answer 504.
				s.deadlineExceeded.Add(1)
				jsonError(w, http.StatusGatewayTimeout, "query canceled: %v", ctx.Err())
				return
			}
			lastErr = fmt.Errorf("dispatch to %s: %w", wk.ID, err)
			continue
		}
		if err := pl.validateReply(wk.ID, resp); err != nil {
			resp.Body.Close()
			lastErr = err
			continue
		}
		if resp.StatusCode >= 500 {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			lastErr = fmt.Errorf("worker %s: status %d: %s", wk.ID, resp.StatusCode, body)
			continue
		}
		// Committed: relay status, headers, and body.
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.Header().Set("X-PSGL-Worker", wk.ID)
		w.WriteHeader(resp.StatusCode)
		n, copyErr := io.Copy(&flushWriter{w: w}, resp.Body)
		resp.Body.Close()
		if copyErr != nil && n == 0 && resp.StatusCode == http.StatusOK {
			// Nothing reached the client; note the failure but the header is
			// already written, so report it in-band as an NDJSON error line.
			json.NewEncoder(w).Encode(map[string]string{"error": copyErr.Error()})
		}
		if copyErr != nil {
			s.failed.Add(1)
		} else {
			s.completed.Add(1)
		}
		return
	}
	if ctx.Err() != nil {
		s.deadlineExceeded.Add(1)
		jsonError(w, http.StatusGatewayTimeout, "query canceled: %v", ctx.Err())
		return
	}
	s.failed.Add(1)
	if pl.reg.NumAlive() < pl.cfg.Quorum {
		s.writeDegraded(w, pl.reg.NumAlive())
		return
	}
	jsonError(w, http.StatusBadGateway, "all workers failed: %v", lastErr)
}

// flushWriter flushes after every write so embeddings stream to the client
// as the worker produces them instead of buffering in the proxy.
type flushWriter struct{ w http.ResponseWriter }

func (f *flushWriter) Write(p []byte) (int, error) {
	n, err := f.w.Write(p)
	if fl, ok := f.w.(http.Flusher); ok {
		fl.Flush()
	}
	return n, err
}

// PlaneStats is the /stats worker-plane section.
type PlaneStats struct {
	Quorum   int               `json:"quorum"`
	Alive    int               `json:"alive"`
	Degraded bool              `json:"degraded"`
	Epoch    uint64            `json:"epoch"`
	Registry bsp.RegistryStats `json:"registry"`
	Dispatch struct {
		Dispatched   int64 `json:"dispatched"`
		Hedged       int64 `json:"hedged"`
		Failovers    int64 `json:"failovers"`
		StaleReplies int64 `json:"stale_replies"`
		Degraded503s int64 `json:"degraded_503s"`
	} `json:"dispatch"`
}

func (pl *plane) stats() *PlaneStats {
	ps := &PlaneStats{
		Quorum:   pl.cfg.Quorum,
		Alive:    pl.reg.NumAlive(),
		Epoch:    pl.reg.Epoch(),
		Registry: pl.reg.Stats(),
	}
	ps.Degraded = ps.Alive < ps.Quorum
	ps.Dispatch.Dispatched = pl.dispatched.Load()
	ps.Dispatch.Hedged = pl.hedged.Load()
	ps.Dispatch.Failovers = pl.failovers.Load()
	ps.Dispatch.StaleReplies = pl.staleReject.Load()
	ps.Dispatch.Degraded503s = pl.degraded.Load()
	return ps
}
