package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"psgl/internal/esu"
	"psgl/internal/graph"
	"psgl/internal/obs"
)

// The census(k) verb: where /query?pattern=<dsl> lists one pattern's
// embeddings through the PSgL engine, /query?pattern=census(k) routes to the
// ESU motif-census engine (internal/esu) and answers with the full k-motif
// histogram. Census queries pass through the same admission control as
// listing queries — a census is the heavier workload, so it must not bypass
// the in-flight cap — and always run in-process (the census engine is
// shared-memory; a worker plane does not distribute it).
//
// Three layers amortize repeat censuses on the resident graph:
//   - the BitGraph dense adjacency is built once, on the first census query;
//   - one canonical-form memo cache per k persists across queries, so a
//     repeat census runs at a 100% canon-cache hit rate;
//   - the Result itself is cached per k (the graph is immutable), so a
//     repeat census(k) answers without enumerating at all.

// censusState is the server's lazily built census machinery.
type censusState struct {
	mu      sync.Mutex
	bg      *esu.BitGraph
	bgErr   error // permanent (graph exceeds the BitGraph vertex cap)
	bgBuilt bool
	caches  map[int]*esu.CanonCache
	results map[int]*esu.Result
	// gen counts invalidations; a census run started under an older gen never
	// stores its (previous-graph) result into the current result cache.
	gen uint64

	// Cumulative counters for /stats.
	queries     atomic.Int64
	resultHits  atomic.Int64
	canonHits   atomic.Int64
	canonMisses atomic.Int64
}

// run executes (or answers from cache) a census of g at size k. cached
// reports a result-cache hit. Concurrent first censuses of the same k may
// both enumerate (results are identical; one store wins) — the result cache
// is filled only by completed runs, so a canceled run never poisons it.
func (cs *censusState) run(ctx context.Context, g *graph.Graph, k, workers int, observer *obs.Observer) (res *esu.Result, cached bool, err error) {
	cs.queries.Add(1)
	cs.mu.Lock()
	if r, ok := cs.results[k]; ok {
		cs.mu.Unlock()
		cs.resultHits.Add(1)
		return r, true, nil
	}
	if !cs.bgBuilt {
		cs.bg, cs.bgErr = esu.NewBitGraph(g)
		cs.bgBuilt = true
	}
	if cs.bgErr != nil {
		cs.mu.Unlock()
		return nil, false, cs.bgErr
	}
	if cs.caches == nil {
		cs.caches = make(map[int]*esu.CanonCache)
	}
	if cs.results == nil {
		cs.results = make(map[int]*esu.Result)
	}
	cache, ok := cs.caches[k]
	if !ok {
		cache = esu.NewCanonCache(k)
		cs.caches[k] = cache
	}
	bg := cs.bg
	gen := cs.gen
	cs.mu.Unlock()

	res, err = esu.CountBitGraph(ctx, bg, k, esu.Options{
		Workers:  workers,
		Cache:    cache,
		Observer: observer,
	})
	if err != nil {
		return nil, false, err
	}
	cs.canonHits.Add(res.CacheHits)
	cs.canonMisses.Add(res.CacheMisses)
	cs.mu.Lock()
	if cs.gen == gen && cs.results != nil {
		cs.results[k] = res
	}
	cs.mu.Unlock()
	return res, false, nil
}

// invalidate drops the graph-derived census caches after a mutation epoch:
// the BitGraph adjacency and the per-k result cache describe the previous
// graph. The canonical-form memo caches survive — a canonical form depends
// only on a k-subgraph's own structure, never on which resident graph it was
// found in, so the expensive memo keeps paying off across epochs.
func (cs *censusState) invalidate() {
	cs.mu.Lock()
	cs.bg, cs.bgErr, cs.bgBuilt = nil, nil, false
	cs.results = nil
	cs.gen++
	cs.mu.Unlock()
}

// CensusStats is the census section of /stats.
type CensusStats struct {
	// Queries counts census(k) queries admitted (result-cache hits included).
	Queries int64 `json:"queries"`
	// ResultCacheHits counts censuses answered from the per-k result cache
	// without enumerating.
	ResultCacheHits int64 `json:"result_cache_hits"`
	// CanonHits/CanonMisses aggregate the canonical-form memo cache lookups
	// across every census run on this server.
	CanonHits    int64   `json:"canon_hits"`
	CanonMisses  int64   `json:"canon_misses"`
	CanonHitRate float64 `json:"canon_hit_rate"`
	// BitGraphBytes is the dense adjacency footprint (0 until the first
	// census query builds it).
	BitGraphBytes int64 `json:"bitgraph_bytes"`
}

func (cs *censusState) stats() CensusStats {
	st := CensusStats{
		Queries:         cs.queries.Load(),
		ResultCacheHits: cs.resultHits.Load(),
		CanonHits:       cs.canonHits.Load(),
		CanonMisses:     cs.canonMisses.Load(),
	}
	if total := st.CanonHits + st.CanonMisses; total > 0 {
		st.CanonHitRate = float64(st.CanonHits) / float64(total)
	}
	cs.mu.Lock()
	if cs.bg != nil {
		st.BitGraphBytes = cs.bg.SizeBytes()
	}
	cs.mu.Unlock()
	return st
}

// censusResponse is the /query?pattern=census(k) response body.
type censusResponse struct {
	TraceID   string            `json:"trace_id"`
	K         int               `json:"k"`
	Subgraphs int64             `json:"subgraphs"`
	Classes   []esu.MotifCount  `json:"classes"`
	Cache     censusCacheReport `json:"canon_cache"`
	Cached    bool              `json:"cached,omitempty"`
	WallMS    float64           `json:"wall_ms"`
}

type censusCacheReport struct {
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// serveCensus answers a census(k) query. The caller already holds an
// admission slot and the query deadline context.
func (s *Server) serveCensus(ctx context.Context, w http.ResponseWriter, g *graph.Graph, k int, params queryParams, observer *obs.Observer, traceID string, start time.Time) {
	res, cached, err := s.census.run(ctx, g, k, params.workers, observer)
	if err != nil {
		if ctx.Err() != nil {
			s.deadlineExceeded.Add(1)
			jsonError(w, http.StatusGatewayTimeout, "census canceled: %v", ctx.Err())
			return
		}
		if errors.Is(err, esu.ErrGraphTooLarge) {
			// The graph permanently exceeds the dense-adjacency cap: the
			// client asked for something this server cannot ever do.
			s.failed.Add(1)
			jsonError(w, http.StatusBadRequest, "%v", err)
			return
		}
		s.failed.Add(1)
		jsonError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.completed.Add(1)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(censusResponse{
		TraceID:   traceID,
		K:         res.K,
		Subgraphs: res.Subgraphs,
		Classes:   res.Classes,
		Cache: censusCacheReport{
			Hits:    res.CacheHits,
			Misses:  res.CacheMisses,
			HitRate: res.CacheHitRate(),
		},
		Cached: cached,
		WallMS: float64(time.Since(start).Microseconds()) / 1000,
	})
}
