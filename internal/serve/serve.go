// Package serve is the resident query service of the PSgL stack: a
// long-lived server that loads the data graph once and answers concurrent
// subgraph-listing queries over HTTP/JSON, amortizing graph residency and
// per-pattern planning (automorphism breaking, initial-vertex selection)
// across queries the way serving-oriented successors of the paper (DDSL,
// Ren et al.) do.
//
// The pieces:
//
//   - Pattern DSL (internal/pattern): queries name patterns as `cycle(4)`,
//     `clique(4)`, `edges(0-1,1-2,2-0)`, or catalog names; the canonical
//     form keys the plan cache so spelling variants share one plan.
//   - Plan cache (plancache.go): symmetry breaking, initial-pattern-vertex
//     selection, and the pattern edge list are computed exactly once per
//     canonical pattern and reused by every later query.
//   - Admission control (admission.go): a configurable number of in-flight
//     queries, a bounded FIFO wait queue, 429 on overflow, per-query
//     deadlines threaded into the engine's RunContext, and graceful drain.
//   - Result streaming: embeddings stream as NDJSON with a `limit` that
//     terminates the enumeration early (Options.MaxResults), plus a
//     count-only fast path.
//
// Endpoints: POST/GET /query, /healthz, /stats, and the observability debug
// mux (/debug/obs, /debug/pprof/*, /debug/vars) following the most recent
// query's tagged Observer.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"psgl/internal/bsp"
	"psgl/internal/core"
	"psgl/internal/graph"
	"psgl/internal/obs"
	"psgl/internal/pattern"
	"psgl/internal/stats"
)

// Config tunes a Server. The zero value is valid; see the field defaults.
type Config struct {
	// Workers is the engine worker count per query. 0 means 4.
	Workers int
	// Strategy is the Gpsi distribution strategy for every query unless the
	// query overrides it with ?strategy=.
	Strategy core.Strategy
	// Alpha is the workload-aware penalty exponent. 0 means 0.5.
	Alpha float64
	// Seed drives partitioning and randomized strategies. Fixed per server
	// so repeated queries are reproducible.
	Seed int64
	// DisableEdgeIndex turns off the bloom edge index for all queries.
	DisableEdgeIndex bool
	// MaxInFlight is the number of queries executing concurrently. 0 means 2.
	MaxInFlight int
	// MaxQueue is the bounded FIFO wait queue behind the execution slots;
	// a query arriving with the queue full is rejected with 429. 0 means 8.
	// Negative means no queue (reject as soon as all slots are busy).
	MaxQueue int
	// DefaultDeadline bounds queries that do not pass deadline_ms. 0 means
	// 30s.
	DefaultDeadline time.Duration
	// MaxDeadline caps client-supplied deadlines. 0 means 5m.
	MaxDeadline time.Duration
	// TraceSink, when non-nil, receives every query's trace events; each
	// query runs under its own Observer tagged with the query's trace ID
	// (q1, q2, ...). Nil disables tracing.
	TraceSink obs.Sink
	// CheckpointEvery > 0 checkpoints every local query's BSP state at every
	// Nth barrier, enabling in-run recovery and checkpoint-resume retry.
	CheckpointEvery int
	// MaxRecoveries bounds in-run checkpoint restores per local query run.
	MaxRecoveries int
	// QueryRetries is how many times a failed local count query is re-run,
	// resuming from its last barrier checkpoint (CheckpointEvery > 0) or
	// from scratch. 0 disables.
	QueryRetries int
	// AsyncExchange runs local queries on the pipelined async BSP exchange
	// (credit-based termination instead of superstep barriers). Counts are
	// identical to strict mode; `limit`-truncated streams may cut at a
	// different prefix. Checkpoints, when enabled, snapshot at quiescence
	// points.
	AsyncExchange bool
	// CompressFrames front-codes Gpsi batches on local queries: sorted
	// prefix-compressed frames on the wire, grouped inboxes, and group-wise
	// expansion. Counts are identical to flat mode; the compression ratio
	// shows up in /stats under the observer's compressed_* counters.
	CompressFrames bool
	// Plane, when non-nil, turns the server into the coordinator of a
	// remote worker plane: queries are dispatched to registered psgl-worker
	// processes instead of running in-process, and below Plane.Quorum the
	// server answers 503 with Retry-After.
	Plane *PlaneConfig
	// CompactThreshold folds the mutation overlay's patch set into a fresh
	// CSR base once it holds this many edges, bounding the per-Snapshot
	// rebuild overhead of a long mutation history. 0 means 1024; negative
	// disables compaction.
	CompactThreshold int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.5
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 8
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 5 * time.Minute
	}
	if c.CompactThreshold == 0 {
		c.CompactThreshold = 1024
	}
	return c
}

// graphState is one epoch's immutable serving snapshot: the CSR graph, its
// fingerprint, and the plan cache built against it. /update publishes a new
// graphState atomically, so queries pin one consistent epoch for their whole
// run while mutations proceed — readers and the mutation path never hold a
// lock against each other. The plan cache rides inside because a plan's
// initial-vertex selection is computed against one graph's degree
// distribution: swapping the state swaps (and thereby invalidates) the cache.
type graphState struct {
	g     *graph.Graph
	fp    uint64
	plans *planCache
	epoch uint64
}

// Server is a resident subgraph-listing query service over one data graph.
// Create one with New, mount Handler on an http.Server, and Drain on
// shutdown.
type Server struct {
	cfg   Config
	adm   *admission
	start time.Time

	// state is the current serving epoch (graph + fingerprint + plan cache);
	// queries load it once and keep that snapshot for their whole run.
	state atomic.Pointer[graphState]

	// The mutation plane: overlay and its derived counters. mutMu serializes
	// /update batches end to end (overlay mutation, delta enumeration,
	// state publication); the mirrored atomics keep /stats from having to
	// take it.
	mutMu          sync.Mutex
	overlay        *graph.Overlay
	mutBatches     atomic.Int64
	mutAdded       atomic.Int64
	mutRemoved     atomic.Int64
	mutNoops       atomic.Int64
	mutPatch       atomic.Int64
	mutCompactions atomic.Int64
	mutEdgeFP      atomic.Uint64
	deltaGained    atomic.Int64
	deltaLost      atomic.Int64
	deltaRuns      atomic.Int64

	// Standing-query subscriptions (POST /subscribe), fanned out to by the
	// update path and closed on Drain.
	subMu  sync.Mutex
	subs   map[int64]*subscription
	subSeq int64

	drainMu  sync.Mutex
	draining bool
	inflight sync.WaitGroup

	qid     atomic.Int64
	lastObs atomic.Pointer[obs.Observer]

	// census holds the lazily built motif-census machinery (BitGraph,
	// per-k canonical caches, per-k result cache) behind census(k) queries.
	census censusState

	// plane is non-nil when this server coordinates a remote worker tier;
	// planeObs is its long-lived observer (heartbeat misses, evictions).
	plane    *plane
	planeObs *obs.Observer

	// Query outcome counters for /stats.
	completed        atomic.Int64
	rejected         atomic.Int64
	deadlineExceeded atomic.Int64
	failed           atomic.Int64
	embeddingsSent   atomic.Int64
	queryRetries     atomic.Int64

	// Cumulative compressed-frame counters across completed local queries
	// (zero unless CompressFrames is on), for the /stats compression ratio.
	compFrames    atomic.Int64
	compWireBytes atomic.Int64
	compRawBytes  atomic.Int64

	// hookQueryAdmitted, when non-nil, runs while the query holds an
	// execution slot, before the engine starts — a test seam for pinning
	// queries in flight deterministically.
	hookQueryAdmitted func()
	// testExchange, when non-nil, overrides the local engine's message
	// exchange — a test seam for injecting scheduled faults into locally
	// executed queries.
	testExchange bsp.ExchangeFactory
}

// New builds a Server over g. The graph's degree distribution (for
// initial-vertex selection) and fingerprint are computed once, here.
func New(g *graph.Graph, cfg Config) (*Server, error) {
	if g == nil {
		return nil, fmt.Errorf("serve: nil graph")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		adm:   newAdmission(cfg.MaxInFlight, cfg.MaxQueue),
		start: time.Now(),
		subs:  make(map[int64]*subscription),
	}
	s.state.Store(&graphState{
		g:     g,
		fp:    g.Fingerprint(),
		plans: newPlanCache(stats.FromHistogram(g.DegreeHistogram())),
	})
	s.overlay = graph.NewOverlay(g)
	s.mutEdgeFP.Store(s.overlay.Fingerprint())
	if cfg.Plane != nil {
		s.planeObs = obs.New(cfg.TraceSink)
		s.planeObs.SetTag("plane")
		s.plane = newPlane(*cfg.Plane, s.planeObs)
	}
	return s, nil
}

// Handler returns the server's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/update", s.handleUpdate)
	mux.HandleFunc("/subscribe", s.handleSubscribe)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	mux.Handle("/debug/", obs.HandlerProvider(func() *obs.Observer { return s.lastObs.Load() }))
	if s.plane != nil {
		mux.HandleFunc("/workers/join", s.handleWorkerJoin)
		mux.HandleFunc("/workers/heartbeat", s.handleWorkerBeat)
		mux.HandleFunc("/workers/leave", s.handleWorkerLeave)
		mux.HandleFunc("/workers", s.handleWorkers)
	}
	return mux
}

// Drain stops admitting queries (healthz turns 503, /query answers 503) and
// waits for in-flight queries to finish or ctx to expire — the SIGTERM path.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()
	s.closeSubscriptions()
	if s.plane != nil {
		s.plane.stop()
	}
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether Drain has been initiated.
func (s *Server) Draining() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	return s.draining
}

// beginQuery registers an in-flight query unless the server is draining.
func (s *Server) beginQuery() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	return true
}

func (s *Server) endQuery() { s.inflight.Done() }

// queryParams is one parsed /query request.
type queryParams struct {
	patternSrc string
	limit      int64
	deadline   time.Duration
	countOnly  bool
	strategy   core.Strategy
	workers    int
}

func (s *Server) parseQuery(r *http.Request) (queryParams, error) {
	q := queryParams{strategy: s.cfg.Strategy, workers: s.cfg.Workers, deadline: s.cfg.DefaultDeadline}
	q.patternSrc = r.FormValue("pattern")
	if q.patternSrc == "" {
		return q, fmt.Errorf("missing required parameter 'pattern'")
	}
	if v := r.FormValue("limit"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			return q, fmt.Errorf("bad limit %q (want a nonnegative integer)", v)
		}
		q.limit = n
	}
	if v := r.FormValue("deadline_ms"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil || ms <= 0 {
			return q, fmt.Errorf("bad deadline_ms %q (want a positive integer)", v)
		}
		q.deadline = time.Duration(ms) * time.Millisecond
		if q.deadline > s.cfg.MaxDeadline {
			q.deadline = s.cfg.MaxDeadline
		}
	}
	if v := r.FormValue("count_only"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return q, fmt.Errorf("bad count_only %q (want a boolean)", v)
		}
		q.countOnly = b
	}
	switch v := r.FormValue("strategy"); v {
	case "", "wa":
		// keep default (or the server's configured strategy for "")
		if v == "wa" {
			q.strategy = core.StrategyWorkloadAware
		}
	case "random":
		q.strategy = core.StrategyRandom
	case "roulette":
		q.strategy = core.StrategyRoulette
	default:
		return q, fmt.Errorf("bad strategy %q (want random, roulette, or wa)", v)
	}
	if v := r.FormValue("workers"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > 256 {
			return q, fmt.Errorf("bad workers %q (want 1..256)", v)
		}
		q.workers = n
	}
	return q, nil
}

// jsonError writes a one-object JSON error response.
func jsonError(w http.ResponseWriter, status int, format string, a ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, a...)})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		jsonError(w, http.StatusMethodNotAllowed, "use GET or POST")
		return
	}
	if !s.beginQuery() {
		jsonError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	defer s.endQuery()

	params, err := s.parseQuery(r)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	censusK, isCensus, err := pattern.ParseCensus(params.patternSrc)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Pin this query's serving epoch: graph, fingerprint, and plan cache stay
	// consistent for the whole run even if an /update lands mid-query.
	st := s.state.Load()
	var plan *Plan
	if !isCensus {
		p, err := pattern.Parse(params.patternSrc)
		if err != nil {
			jsonError(w, http.StatusBadRequest, "%v", err)
			return
		}
		plan = st.plans.get(p)
	}

	ctx, cancel := context.WithTimeout(r.Context(), params.deadline)
	defer cancel()

	// Admission: an execution slot now, a bounded FIFO wait, or a fast 429.
	if err := s.adm.acquire(ctx.Done()); err != nil {
		s.rejected.Add(1)
		if errors.Is(err, errQueueFull) {
			jsonError(w, http.StatusTooManyRequests, "%v", err)
			return
		}
		if ctx.Err() != nil && r.Context().Err() == nil {
			s.deadlineExceeded.Add(1)
			jsonError(w, http.StatusGatewayTimeout, "deadline expired while queued")
			return
		}
		jsonError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	defer s.adm.release()
	if s.hookQueryAdmitted != nil {
		s.hookQueryAdmitted()
	}

	traceID := fmt.Sprintf("q%d", s.qid.Add(1))
	observer := obs.New(s.cfg.TraceSink)
	observer.SetTag(traceID)
	s.lastObs.Store(observer)

	if isCensus {
		// The census engine is shared-memory: it always runs in-process, even
		// when this server coordinates a worker plane, and it holds its
		// admission slot like any other query.
		s.serveCensus(ctx, w, st.g, censusK, params, observer, traceID, time.Now())
		return
	}

	if s.plane != nil {
		// Worker-plane mode: this server coordinates; the engine runs on a
		// remote worker. Plan lookup above still gave us fast 400s and a
		// warm cache entry for the canonical pattern.
		if params.countOnly {
			s.remoteCount(ctx, w, params, observer)
		} else {
			s.remoteStream(ctx, w, params, observer)
		}
		return
	}

	opts := core.NewOptions()
	opts.Workers = params.workers
	opts.Strategy = params.strategy
	opts.Alpha = s.cfg.Alpha
	opts.Seed = s.cfg.Seed
	opts.DisableEdgeIndex = s.cfg.DisableEdgeIndex
	opts.Observer = observer
	// The plan-reuse path: the cached pattern already carries its
	// symmetry-breaking orders, and the initial vertex was selected once
	// against this graph.
	opts.PlannedPattern = true
	opts.InitialVertex = plan.InitialVertex
	opts.Exchange = s.testExchange
	opts.AsyncExchange = s.cfg.AsyncExchange
	opts.CompressFrames = s.cfg.CompressFrames
	if s.cfg.CheckpointEvery > 0 {
		opts.CheckpointEvery = s.cfg.CheckpointEvery
		opts.CheckpointStore = bsp.NewMemCheckpointStore()
		opts.MaxRecoveries = s.cfg.MaxRecoveries
	}

	start := time.Now()
	if params.countOnly {
		s.serveCount(ctx, w, st.g, plan, opts, traceID, start)
		return
	}
	s.serveStream(ctx, w, st.g, plan, opts, params.limit, traceID, start)
}

// countResponse is the count-only fast path's response body.
type countResponse struct {
	TraceID   string  `json:"trace_id"`
	Canonical string  `json:"canonical"`
	Pattern   string  `json:"pattern"`
	Count     int64   `json:"count"`
	Truncated bool    `json:"truncated,omitempty"`
	WallMS    float64 `json:"wall_ms"`
}

func (s *Server) serveCount(ctx context.Context, w http.ResponseWriter, g *graph.Graph, plan *Plan, opts core.Options, traceID string, start time.Time) {
	res, err := core.RunContext(ctx, g, plan.Pattern, opts)
	// Query-level retry: a failed count run re-admits, resuming from its
	// last barrier checkpoint when one exists (counts stay exact across a
	// resume — the engine's exactly-once accounting). Deadline expiry is
	// not retried; the client asked for the bound.
	for attempt := 0; err != nil && ctx.Err() == nil && attempt < s.cfg.QueryRetries; attempt++ {
		s.queryRetries.Add(1)
		if opts.Observer != nil {
			opts.Observer.AddQueryRetry()
		}
		opts.ResumeFrom = opts.CheckpointStore
		res, err = core.RunContext(ctx, g, plan.Pattern, opts)
	}
	if err != nil {
		if ctx.Err() != nil {
			s.deadlineExceeded.Add(1)
			jsonError(w, http.StatusGatewayTimeout, "query canceled: %v", ctx.Err())
			return
		}
		s.failed.Add(1)
		jsonError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.completed.Add(1)
	s.addCompression(&res.Stats)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(countResponse{
		TraceID:   traceID,
		Canonical: plan.Key,
		Pattern:   plan.Pattern.Name(),
		Count:     res.Count,
		Truncated: res.Truncated,
		WallMS:    float64(time.Since(start).Microseconds()) / 1000,
	})
}

// streamTrailer closes an NDJSON stream: the final line after the embedding
// lines.
type streamTrailer struct {
	Done      bool    `json:"done"`
	TraceID   string  `json:"trace_id"`
	Canonical string  `json:"canonical"`
	Count     int64   `json:"count"`
	Truncated bool    `json:"truncated,omitempty"`
	WallMS    float64 `json:"wall_ms"`
	Error     string  `json:"error,omitempty"`
}

func (s *Server) serveStream(ctx context.Context, w http.ResponseWriter, g *graph.Graph, plan *Plan, opts core.Options, limit int64, traceID string, start time.Time) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)

	var mu sync.Mutex // serializes writes from concurrent worker callbacks
	var emitted atomic.Int64
	type line struct {
		Embedding []graph.VertexID `json:"embedding"`
	}
	enc := json.NewEncoder(w)
	opts.MaxResults = limit
	opts.OnInstance = func(mapping []graph.VertexID) {
		if limit > 0 && emitted.Add(1) > limit {
			// Workers race past the cap before the engine's early stop
			// propagates; surplus instances are dropped here so the stream
			// honors the limit exactly.
			return
		} else if limit == 0 {
			emitted.Add(1)
		}
		mu.Lock()
		enc.Encode(line{Embedding: mapping})
		if flusher != nil {
			flusher.Flush()
		}
		mu.Unlock()
	}

	res, err := core.RunContext(ctx, g, plan.Pattern, opts)
	trailer := streamTrailer{
		Done:      true,
		TraceID:   traceID,
		Canonical: plan.Key,
		WallMS:    float64(time.Since(start).Microseconds()) / 1000,
	}
	n := emitted.Load()
	if limit > 0 && n > limit {
		n = limit
	}
	trailer.Count = n
	switch {
	case err != nil && ctx.Err() != nil:
		s.deadlineExceeded.Add(1)
		trailer.Truncated = true
		trailer.Error = fmt.Sprintf("query canceled: %v", ctx.Err())
	case err != nil:
		s.failed.Add(1)
		trailer.Error = err.Error()
	default:
		s.completed.Add(1)
		s.addCompression(&res.Stats)
		trailer.Truncated = res.Truncated
	}
	s.embeddingsSent.Add(n)
	mu.Lock()
	enc.Encode(trailer)
	if flusher != nil {
		flusher.Flush()
	}
	mu.Unlock()
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"status": "draining"})
		return
	}
	json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
}

// StatsResponse is the /stats document.
type StatsResponse struct {
	Graph struct {
		Vertices    int    `json:"vertices"`
		Edges       int64  `json:"edges"`
		Fingerprint string `json:"fingerprint"`
		// Epoch is the mutation epoch of the serving snapshot: the number of
		// accepted /update batches folded into the graph being served.
		Epoch uint64 `json:"epoch"`
	} `json:"graph"`
	UptimeS float64 `json:"uptime_s"`
	Plans   struct {
		Entries []PlanStats `json:"entries"`
		Hits    int64       `json:"hits"`
		Misses  int64       `json:"misses"`
	} `json:"plan_cache"`
	Admission struct {
		MaxInFlight int `json:"max_inflight"`
		MaxQueue    int `json:"max_queue"`
		InFlight    int `json:"inflight"`
		Waiting     int `json:"waiting"`
	} `json:"admission"`
	Queries struct {
		Completed        int64 `json:"completed"`
		Rejected         int64 `json:"rejected"`
		DeadlineExceeded int64 `json:"deadline_exceeded"`
		Failed           int64 `json:"failed"`
		EmbeddingsSent   int64 `json:"embeddings_sent"`
		Retries          int64 `json:"retries"`
	} `json:"queries"`
	// Compression aggregates the compressed-frame counters of completed
	// local queries (all zero unless Config.CompressFrames): Ratio is
	// raw-bytes / wire-bytes, i.e. how much the front-coding saved.
	Compression struct {
		Frames    int64   `json:"frames"`
		WireBytes int64   `json:"wire_bytes"`
		RawBytes  int64   `json:"raw_bytes"`
		Ratio     float64 `json:"ratio"`
	} `json:"compression"`
	// Census reports the motif-census verb's caches: queries served, per-k
	// result-cache hits, and the canonical-form memo cache hit rate.
	Census CensusStats `json:"census"`
	// Mutations reports the dynamic-graph plane: accepted /update batches,
	// effective edge changes, overlay patch/compaction state, standing-query
	// subscriptions, and the cumulative delta-enumeration totals.
	Mutations MutationStats `json:"mutations"`
	// Plane is present only when the server coordinates a worker plane.
	Plane    *PlaneStats `json:"worker_plane,omitempty"`
	Draining bool        `json:"draining"`
}

// Stats assembles the /stats document (also used by tests directly).
func (s *Server) Stats() StatsResponse {
	var sr StatsResponse
	st := s.state.Load()
	sr.Graph.Vertices = st.g.NumVertices()
	sr.Graph.Edges = st.g.NumEdges()
	sr.Graph.Fingerprint = fmt.Sprintf("%016x", st.fp)
	sr.Graph.Epoch = st.epoch
	sr.UptimeS = time.Since(s.start).Seconds()
	sr.Plans.Entries, sr.Plans.Hits, sr.Plans.Misses = st.plans.snapshot()
	sr.Admission.MaxInFlight = s.cfg.MaxInFlight
	sr.Admission.MaxQueue = s.cfg.MaxQueue
	sr.Admission.InFlight, sr.Admission.Waiting = s.adm.load()
	sr.Queries.Completed = s.completed.Load()
	sr.Queries.Rejected = s.rejected.Load()
	sr.Queries.DeadlineExceeded = s.deadlineExceeded.Load()
	sr.Queries.Failed = s.failed.Load()
	sr.Queries.EmbeddingsSent = s.embeddingsSent.Load()
	sr.Queries.Retries = s.queryRetries.Load()
	sr.Compression.Frames = s.compFrames.Load()
	sr.Compression.WireBytes = s.compWireBytes.Load()
	sr.Compression.RawBytes = s.compRawBytes.Load()
	if sr.Compression.WireBytes > 0 {
		sr.Compression.Ratio = float64(sr.Compression.RawBytes) / float64(sr.Compression.WireBytes)
	}
	sr.Census = s.census.stats()
	sr.Mutations = s.mutationStats(st.epoch)
	if s.plane != nil {
		sr.Plane = s.plane.stats()
	}
	sr.Draining = s.Draining()
	return sr
}

// addCompression folds one completed query's compressed-frame counters into
// the /stats aggregates (no-ops on flat-mode runs, whose counters are zero).
func (s *Server) addCompression(st *core.Stats) {
	if st.CompressedFrames == 0 {
		return
	}
	s.compFrames.Add(st.CompressedFrames)
	s.compWireBytes.Add(st.CompressedWireBytes)
	s.compRawBytes.Add(st.CompressedRawBytes)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Stats())
}
