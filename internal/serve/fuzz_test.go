package serve

import (
	"testing"

	"psgl/internal/graph"
)

// FuzzUpdateBatchDecode drives arbitrary bytes through the /update body
// decoder and, when a batch survives validation, through a real overlay.
// Invariants under fuzz:
//
//   - decodeUpdateBatch never panics and never returns an empty batch
//     without an error;
//   - every decoded edge has exactly two in-range endpoints (the decoder's
//     validation contract — ApplyBatch re-checks bounds against the graph);
//   - after a successful ApplyBatch, the overlay's incremental edge
//     fingerprint equals the fingerprint of the rebuilt snapshot — the
//     maintained and recomputed views of the mutated graph agree.
func FuzzUpdateBatchDecode(f *testing.F) {
	f.Add([]byte(`{"add":[[0,1]]}`))
	f.Add([]byte(`{"add":[[0,1],[0,1]],"remove":[[0,1]]}`))             // dup insert + delete of the same edge
	f.Add([]byte(`{"add":[[-1,2],[0,4294967296],["x",1],[3]]}`))        // malformed vertex ids and arity
	f.Add([]byte(`{"remove":[[1,0],[0,1]]}`))                           // same undirected edge, both spellings
	f.Add([]byte(`{"add":[[2,2]]}`))                                    // self-loop (overlay rejects)
	f.Add([]byte(`{"ad":[[0,1]]}`))                                     // unknown field
	f.Add([]byte(`{"add":[[0,1]]}{"add":[[1,2]]}`))                     // trailing content
	f.Add([]byte(`{"add":[],"remove":[]}`))                             // empty batch
	f.Add([]byte(`{"add":[[0,1],[1,2],[0,2]],"remove":[[0,1],[5,6]]}`)) // mixed effective + out-of-range

	base := graph.FromEdges(8, [][2]graph.VertexID{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	f.Fuzz(func(t *testing.T, body []byte) {
		batch, err := decodeUpdateBatch(body)
		if err != nil {
			return
		}
		if len(batch.Add)+len(batch.Remove) == 0 {
			t.Fatal("decoder accepted an empty batch")
		}
		for _, e := range append(append([][2]graph.VertexID{}, batch.Add...), batch.Remove...) {
			if e[0] < 0 || e[1] < 0 {
				t.Fatalf("decoder passed a negative vertex id: %v", e)
			}
		}
		ov := graph.NewOverlay(base)
		if _, err := ov.ApplyBatch(batch); err != nil {
			return // out-of-range vertex or self-loop; the overlay is unchanged
		}
		if got, want := ov.Fingerprint(), ov.Snapshot().EdgeFingerprint(); got != want {
			t.Fatalf("incremental fingerprint %016x, snapshot fingerprint %016x", got, want)
		}
	})
}
