package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"psgl/internal/bsp"
	"psgl/internal/core"
	"psgl/internal/gen"
	"psgl/internal/graph"
	"psgl/internal/pattern"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	return gen.ChungLu(800, 3200, 1.7, 11)
}

func newTestServer(t *testing.T, g *graph.Graph, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestConcurrentSamedPatternSharesOnePlan is the headline acceptance test:
// concurrent queries spelling the same canonical pattern differently
// (cycle(4) vs the catalog square vs a renumbered edge list) result in
// exactly one plan-cache entry, and /stats proves the cache hits.
func TestConcurrentSamePatternSharesOnePlan(t *testing.T) {
	g := testGraph(t)
	_, ts := newTestServer(t, g, Config{MaxInFlight: 4, MaxQueue: 8})

	spellings := []string{"cycle(4)", "square", "edges(2-3,0-3,1-2,0-1)", "cycle(4)"}
	var wg sync.WaitGroup
	counts := make([]int64, len(spellings))
	errs := make([]error, len(spellings))
	for i, sp := range spellings {
		wg.Add(1)
		go func(i int, sp string) {
			defer wg.Done()
			var cr countResponse
			code := 0
			resp, err := http.Get(ts.URL + "/query?count_only=1&pattern=" + sp)
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			code = resp.StatusCode
			if code != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", code)
				return
			}
			if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
				errs[i] = err
				return
			}
			counts[i] = cr.Count
		}(i, sp)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %q: %v", spellings[i], err)
		}
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] != counts[0] {
			t.Fatalf("spelling %q counted %d, %q counted %d", spellings[i], counts[i], spellings[0], counts[0])
		}
	}

	var st StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("/stats status %d", code)
	}
	if len(st.Plans.Entries) != 1 {
		t.Fatalf("plan cache has %d entries, want exactly 1: %+v", len(st.Plans.Entries), st.Plans.Entries)
	}
	if st.Plans.Misses != 1 {
		t.Fatalf("plan cache misses = %d, want 1", st.Plans.Misses)
	}
	if st.Plans.Hits != int64(len(spellings)-1) {
		t.Fatalf("plan cache hits = %d, want %d", st.Plans.Hits, len(spellings)-1)
	}
	if st.Queries.Completed != int64(len(spellings)) {
		t.Fatalf("completed = %d, want %d", st.Queries.Completed, len(spellings))
	}
}

// TestCountsMatchBatchEngine: the resident service must count bit-identically
// to a direct batch core.Run for the same graph, pattern, and strategy —
// plan reuse must not change results.
func TestCountsMatchBatchEngine(t *testing.T) {
	g := testGraph(t)
	_, ts := newTestServer(t, g, Config{MaxInFlight: 2})

	for _, tc := range []struct {
		dsl      string
		name     string
		strategy string
	}{
		{"pg1", "pg1", ""},
		{"triangle", "pg1", "random"},
		{"cycle(4)", "square", "roulette"},
		{"pg3", "pg3", "wa"},
	} {
		p, err := pattern.ByName(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		opts := core.NewOptions()
		switch tc.strategy {
		case "random":
			opts.Strategy = core.StrategyRandom
		case "roulette":
			opts.Strategy = core.StrategyRoulette
		}
		want, err := core.Run(g, p, opts)
		if err != nil {
			t.Fatal(err)
		}

		url := ts.URL + "/query?count_only=true&pattern=" + tc.dsl
		if tc.strategy != "" {
			url += "&strategy=" + tc.strategy
		}
		var cr countResponse
		if code := getJSON(t, url, &cr); code != http.StatusOK {
			t.Fatalf("%s: status %d", tc.dsl, code)
		}
		if cr.Count != want.Count {
			t.Fatalf("%s (%s): served count %d != batch count %d", tc.dsl, tc.strategy, cr.Count, want.Count)
		}
	}
}

// TestStreamingLimit: NDJSON stream honors limit exactly and reports the
// enumeration as truncated.
func TestStreamingLimit(t *testing.T) {
	g := testGraph(t)
	_, ts := newTestServer(t, g, Config{MaxInFlight: 2})

	p, err := pattern.ByName("pg1")
	if err != nil {
		t.Fatal(err)
	}
	full, err := core.Run(g, p, core.NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	if full.Count < 10 {
		t.Fatalf("test graph has only %d triangles; want >= 10", full.Count)
	}

	const limit = 3
	resp, err := http.Get(fmt.Sprintf("%s/query?pattern=triangle&limit=%d", ts.URL, limit))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}

	var embeddings [][]graph.VertexID
	var trailer streamTrailer
	sawTrailer := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if sawTrailer {
			t.Fatalf("line after trailer: %s", sc.Text())
		}
		if strings.Contains(sc.Text(), `"done"`) {
			if err := json.Unmarshal(sc.Bytes(), &trailer); err != nil {
				t.Fatal(err)
			}
			sawTrailer = true
			continue
		}
		var l struct {
			Embedding []graph.VertexID `json:"embedding"`
		}
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		embeddings = append(embeddings, l.Embedding)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawTrailer {
		t.Fatal("stream ended without a trailer")
	}
	if len(embeddings) != limit {
		t.Fatalf("streamed %d embeddings, want exactly %d", len(embeddings), limit)
	}
	if trailer.Count != limit || !trailer.Truncated || !trailer.Done {
		t.Fatalf("trailer = %+v, want done, truncated, count=%d", trailer, limit)
	}
	// Each streamed embedding must be a real triangle: 3 distinct vertices,
	// pairwise adjacent.
	for _, emb := range embeddings {
		if len(emb) != 3 {
			t.Fatalf("embedding %v has %d vertices, want 3", emb, len(emb))
		}
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				if emb[i] == emb[j] {
					t.Fatalf("embedding %v repeats a vertex", emb)
				}
				if !g.HasEdge(emb[i], emb[j]) {
					t.Fatalf("embedding %v: no edge %d-%d", emb, emb[i], emb[j])
				}
			}
		}
	}
}

// TestStreamingUnlimitedMatchesCount: without a limit the stream carries every
// embedding, and the trailer count equals the batch count.
func TestStreamingUnlimitedMatchesCount(t *testing.T) {
	g := gen.ChungLu(300, 1200, 1.7, 5)
	_, ts := newTestServer(t, g, Config{MaxInFlight: 2})

	p, err := pattern.ByName("pg1")
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Run(g, p, core.NewOptions())
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/query?pattern=pg1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	lines := 0
	var trailer streamTrailer
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.Contains(sc.Text(), `"done"`) {
			if err := json.Unmarshal(sc.Bytes(), &trailer); err != nil {
				t.Fatal(err)
			}
			continue
		}
		lines++
	}
	if int64(lines) != want.Count || trailer.Count != want.Count {
		t.Fatalf("streamed %d lines, trailer count %d, batch count %d", lines, trailer.Count, want.Count)
	}
	if trailer.Truncated {
		t.Fatal("unlimited stream reported truncated")
	}
}

// pinServer builds a server whose queries block until the returned release
// function is called — deterministic in-flight pinning for admission and
// drain tests.
func pinServer(t *testing.T, cfg Config) (*Server, *httptest.Server, func(), chan struct{}) {
	t.Helper()
	s, ts := newTestServer(t, testGraph(t), cfg)
	gate := make(chan struct{})
	admitted := make(chan struct{}, 64)
	s.hookQueryAdmitted = func() {
		admitted <- struct{}{}
		<-gate
	}
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	t.Cleanup(release)
	return s, ts, release, admitted
}

// TestQueueOverflowRejectedWith429: with one execution slot and one queue
// seat occupied, the next query is turned away immediately with 429.
func TestQueueOverflowRejectedWith429(t *testing.T) {
	_, ts, release, admitted := pinServer(t, Config{MaxInFlight: 1, MaxQueue: 1})

	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Get(ts.URL + "/query?count_only=1&pattern=pg1")
			if err != nil {
				results <- -1
				return
			}
			resp.Body.Close()
			results <- resp.StatusCode
		}()
	}
	// Wait until the first query holds the slot; the second parks in the
	// queue (it never reaches the hook).
	select {
	case <-admitted:
	case <-time.After(10 * time.Second):
		t.Fatal("no query admitted")
	}
	waitForWaiting(t, ts.URL, 1)

	// Slot busy + queue full: this one must bounce with 429, fast.
	var body map[string]string
	if code := getJSON(t, ts.URL+"/query?count_only=1&pattern=pg1", &body); code != http.StatusTooManyRequests {
		t.Fatalf("overflow query status %d, want 429 (%v)", code, body)
	}
	if !strings.Contains(body["error"], "queue") {
		t.Fatalf("429 body %v should mention the queue", body)
	}

	release()
	for i := 0; i < 2; i++ {
		if code := <-results; code != http.StatusOK {
			t.Fatalf("pinned query %d finished with %d, want 200", i, code)
		}
	}

	var st StatsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.Queries.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Queries.Rejected)
	}
}

// waitForWaiting polls /stats until the admission queue shows n waiters.
func waitForWaiting(t *testing.T, base string, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var st StatsResponse
		getJSON(t, base+"/stats", &st)
		if st.Admission.Waiting >= n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("admission queue never reached %d waiters", n)
}

// TestDeadlineWhileQueued: a query whose deadline_ms expires while it waits
// for a slot gets 504 Gateway Timeout.
func TestDeadlineWhileQueued(t *testing.T) {
	_, ts, release, admitted := pinServer(t, Config{MaxInFlight: 1, MaxQueue: 4})
	defer release()

	bg := make(chan int, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/query?count_only=1&pattern=pg1")
		if err != nil {
			bg <- -1
			return
		}
		resp.Body.Close()
		bg <- resp.StatusCode
	}()
	select {
	case <-admitted:
	case <-time.After(10 * time.Second):
		t.Fatal("no query admitted")
	}

	var body map[string]string
	code := getJSON(t, ts.URL+"/query?count_only=1&pattern=pg1&deadline_ms=50", &body)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("queued-past-deadline query status %d, want 504 (%v)", code, body)
	}

	release()
	if code := <-bg; code != http.StatusOK {
		t.Fatalf("pinned query finished with %d", code)
	}
}

// TestDeadlineDuringExecution: a deadline that expires while the engine runs
// cancels the query (504 on the count path).
func TestDeadlineDuringExecution(t *testing.T) {
	s, ts := newTestServer(t, testGraph(t), Config{MaxInFlight: 2})
	// Make the admitted query outlive its deadline before the engine starts;
	// RunContext then sees an expired context.
	s.hookQueryAdmitted = func() { time.Sleep(80 * time.Millisecond) }

	var body map[string]string
	code := getJSON(t, ts.URL+"/query?count_only=1&pattern=pg1&deadline_ms=20", &body)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%v)", code, body)
	}
	var st StatsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.Queries.DeadlineExceeded == 0 {
		t.Fatal("deadline_exceeded counter not bumped")
	}
}

// TestBadRequests: malformed queries are 400s with JSON errors.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, testGraph(t), Config{})
	for _, q := range []string{
		"",                              // missing pattern
		"?pattern=wheel(5)",             // unknown DSL form
		"?pattern=edges(0-0)",           // self loop
		"?pattern=pg1&limit=-2",         // bad limit
		"?pattern=pg1&deadline_ms=zero", // bad deadline
		"?pattern=pg1&strategy=psychic", // bad strategy
		"?pattern=pg1&workers=0",        // bad workers
		"?pattern=pg1&count_only=maybe", // bad bool
		"?pattern=edges(0-1,2-3)",       // disconnected
	} {
		var body map[string]string
		if code := getJSON(t, ts.URL+"/query"+q, &body); code != http.StatusBadRequest {
			t.Fatalf("query %q: status %d, want 400 (%v)", q, code, body)
		}
		if body["error"] == "" {
			t.Fatalf("query %q: empty error body", q)
		}
	}
}

// TestDrain: SIGTERM semantics — draining stops new queries (503 on /query
// and /healthz) but waits for in-flight queries to finish.
func TestDrain(t *testing.T) {
	s, ts, release, admitted := pinServer(t, Config{MaxInFlight: 2})

	done := make(chan int, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/query?count_only=1&pattern=pg1")
		if err != nil {
			done <- -1
			return
		}
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	select {
	case <-admitted:
	case <-time.After(10 * time.Second):
		t.Fatal("no query admitted")
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	// Drain is initiated; new work must bounce.
	waitForDraining(t, s)
	if code := getJSON(t, ts.URL+"/query?count_only=1&pattern=pg1", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("query during drain: status %d, want 503", code)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: status %d, want 503", code)
	}
	select {
	case err := <-drained:
		t.Fatalf("drain finished with %v while a query was still in flight", err)
	default:
	}

	release()
	if code := <-done; code != http.StatusOK {
		t.Fatalf("in-flight query finished with %d during drain, want 200", code)
	}
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("drain did not complete after the in-flight query finished")
	}
}

func waitForDraining(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if s.Draining() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("server never started draining")
}

// TestStatsShape: fingerprint, graph dimensions, and uptime are reported.
func TestStatsShape(t *testing.T) {
	g := testGraph(t)
	_, ts := newTestServer(t, g, Config{MaxInFlight: 3, MaxQueue: 5})
	var st StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("/stats status %d", code)
	}
	if st.Graph.Vertices != g.NumVertices() || st.Graph.Edges != g.NumEdges() {
		t.Fatalf("graph dims %d/%d, want %d/%d", st.Graph.Vertices, st.Graph.Edges, g.NumVertices(), g.NumEdges())
	}
	if want := fmt.Sprintf("%016x", g.Fingerprint()); st.Graph.Fingerprint != want {
		t.Fatalf("fingerprint %q, want %q", st.Graph.Fingerprint, want)
	}
	if st.Admission.MaxInFlight != 3 || st.Admission.MaxQueue != 5 {
		t.Fatalf("admission config %+v", st.Admission)
	}
	if st.Draining {
		t.Fatal("fresh server reports draining")
	}
}

// TestDebugEndpointsFollowQueries: /debug/obs serves the most recent query's
// tagged observer snapshot.
func TestDebugEndpointsFollowQueries(t *testing.T) {
	_, ts := newTestServer(t, testGraph(t), Config{})
	if code := getJSON(t, ts.URL+"/query?count_only=1&pattern=pg1", nil); code != http.StatusOK {
		t.Fatalf("query status %d", code)
	}
	var snap struct {
		Tag string `json:"tag"`
	}
	if code := getJSON(t, ts.URL+"/debug/obs", &snap); code != http.StatusOK {
		t.Fatalf("/debug/obs status %d", code)
	}
	if snap.Tag != "q1" {
		t.Fatalf("debug snapshot tag %q, want q1", snap.Tag)
	}
}

// TestMethodNotAllowed guards the mux.
func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, testGraph(t), Config{})
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/query?pattern=pg1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE /query: %d, want 405", resp.StatusCode)
	}
}

func TestNewRejectsNilGraph(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("New(nil) succeeded")
	}
}

// TestDrainRacingEvictedWorker is the SIGTERM-drain satellite: a coordinator
// draining while its last worker has just been evicted must answer every
// racing query with a well-formed 503 JSON body — whether the query loses to
// the drain gate or to the quorum gate — and Drain must still complete.
func TestDrainRacingEvictedWorker(t *testing.T) {
	g := testGraph(t)
	s, ts := newTestServer(t, g, Config{MaxInFlight: 4, Plane: &PlaneConfig{
		Quorum:            1,
		HeartbeatInterval: 20 * time.Millisecond,
		MissLimit:         3,
	}})
	w1, err := StartWorker(g, WorkerConfig{ID: "w1", Coordinator: ts.URL, Serve: Config{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	w1.Kill()
	deadline := time.Now().Add(10 * time.Second)
	for s.plane.reg.NumAlive() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("dead worker never evicted")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Race a burst of queries against the drain.
	var wg sync.WaitGroup
	codes := make(chan int, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/query?pattern=triangle&count_only=true")
			if err != nil {
				codes <- -1
				return
			}
			var body map[string]string
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body["error"] == "" {
				resp.Body.Close()
				codes <- -2 // malformed error body
				return
			}
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusServiceUnavailable {
			t.Fatalf("racing query got %d, want well-formed 503", code)
		}
	}
}

// TestLocalQueryRetryResumesFromCheckpoint: in local mode with QueryRetries
// and checkpointing on, a query whose exchange dies mid-run is re-admitted,
// resumes from its last barrier checkpoint, and answers the exact count.
func TestLocalQueryRetryResumesFromCheckpoint(t *testing.T) {
	g := testGraph(t)
	want := func() int64 {
		p, _ := pattern.Parse("triangle")
		res, err := core.Run(g, p, core.Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		return res.Count
	}()
	s, ts := newTestServer(t, g, Config{
		Workers:         2,
		CheckpointEvery: 1,
		QueryRetries:    2,
	})
	// One scheduled kill at superstep 1; no in-run recovery budget, so the
	// run fails and only the serve-layer retry (with ResumeFrom) saves it.
	s.testExchange = bsp.NewScheduledFaultExchangeFactory(nil, []bsp.StepFault{
		{Step: 1, Kind: bsp.StepFaultKill, Worker: 0},
	})
	var cr struct {
		Count int64 `json:"count"`
	}
	if code := getJSON(t, ts.URL+"/query?pattern=triangle&count_only=true", &cr); code != http.StatusOK {
		t.Fatalf("status %d, want 200 after retry", code)
	}
	if cr.Count != want {
		t.Fatalf("retried count %d, want %d", cr.Count, want)
	}
	st := s.Stats()
	if st.Queries.Retries != 1 {
		t.Fatalf("query retries = %d, want 1", st.Queries.Retries)
	}
	if st.Queries.Failed != 0 {
		t.Fatalf("failed = %d, want 0 (the retry succeeded)", st.Queries.Failed)
	}
}

// TestAsyncExchangeCountMatches: a server running local queries over the
// pipelined async exchange answers the exact same counts as the default
// strict-barrier server — the serving face of the async differential.
func TestAsyncExchangeCountMatches(t *testing.T) {
	g := testGraph(t)
	_, strictTS := newTestServer(t, g, Config{Workers: 3})
	_, asyncTS := newTestServer(t, g, Config{Workers: 3, AsyncExchange: true})
	for _, pat := range []string{"triangle", "cycle(4)"} {
		var strict, async countResponse
		if code := getJSON(t, strictTS.URL+"/query?pattern="+pat+"&count_only=true", &strict); code != http.StatusOK {
			t.Fatalf("%s strict: status %d", pat, code)
		}
		if code := getJSON(t, asyncTS.URL+"/query?pattern="+pat+"&count_only=true", &async); code != http.StatusOK {
			t.Fatalf("%s async: status %d", pat, code)
		}
		if strict.Count != async.Count {
			t.Fatalf("%s: async server count %d != strict %d", pat, async.Count, strict.Count)
		}
	}
}
