package serve

import (
	"fmt"
	"testing"

	"psgl/internal/esu"
	"psgl/internal/pattern"
)

func TestCensusQueryEndToEnd(t *testing.T) {
	g := testGraph(t)
	s, ts := newTestServer(t, g, Config{MaxInFlight: 2, MaxQueue: 4})

	var first censusResponse
	if code := getJSON(t, ts.URL+"/query?pattern=census(3)", &first); code != 200 {
		t.Fatalf("census(3) status %d", code)
	}
	// Cross-check against a direct engine run.
	direct, err := esu.Count(g, 3, esu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if first.Subgraphs != direct.Subgraphs {
		t.Fatalf("server census %d subgraphs, direct %d", first.Subgraphs, direct.Subgraphs)
	}
	if len(first.Classes) != len(direct.Classes) {
		t.Fatalf("server %d classes, direct %d", len(first.Classes), len(direct.Classes))
	}
	for i, c := range direct.Classes {
		if first.Classes[i].Code != c.Code || first.Classes[i].Count != c.Count {
			t.Fatalf("class %d: server %+v, direct %+v", i, first.Classes[i], c)
		}
	}
	if first.Cached {
		t.Fatal("first census claims a result-cache hit")
	}
	if first.Cache.Misses == 0 {
		t.Fatal("first census reports no canon-cache misses")
	}

	// Second identical census: answered from the result cache.
	var second censusResponse
	if code := getJSON(t, ts.URL+"/query?pattern=census(3)", &second); code != 200 {
		t.Fatalf("repeat census status %d", code)
	}
	if !second.Cached {
		t.Fatal("repeat census did not hit the result cache")
	}
	if second.Subgraphs != first.Subgraphs {
		t.Fatalf("cached census changed the count: %d vs %d", second.Subgraphs, first.Subgraphs)
	}

	// /stats carries the census section with the canon hit rate.
	st := s.Stats()
	if st.Census.Queries != 2 || st.Census.ResultCacheHits != 1 {
		t.Fatalf("census stats: %+v", st.Census)
	}
	if st.Census.CanonMisses == 0 {
		t.Fatalf("census stats report no canon misses: %+v", st.Census)
	}
	if st.Census.BitGraphBytes == 0 {
		t.Fatal("census stats missing the BitGraph footprint")
	}

	// The per-query observer carried the census counters into its snapshot.
	snap := s.lastObs.Load().Snapshot()
	if snap.CensusSubgraphs != 0 {
		t.Fatalf("cached census should not re-enumerate, observer saw %d subgraphs", snap.CensusSubgraphs)
	}
}

func TestCensusBadRequests(t *testing.T) {
	g := testGraph(t)
	_, ts := newTestServer(t, g, Config{})
	for _, q := range []string{"census(1)", "census(6)", "census(x)", "census(3"} {
		if code := getJSON(t, ts.URL+"/query?pattern="+q, nil); code != 400 {
			t.Fatalf("%s: status %d, want 400", q, code)
		}
	}
}

func TestCensusRangeMatchesEngine(t *testing.T) {
	// The DSL's census range must stay in lockstep with the engine's.
	if pattern.MinCensusK != esu.MinK || pattern.MaxCensusK != esu.MaxK {
		t.Fatalf("pattern census range [%d,%d] != esu range [%d,%d]",
			pattern.MinCensusK, pattern.MaxCensusK, esu.MinK, esu.MaxK)
	}
	g := testGraph(t)
	_, ts := newTestServer(t, g, Config{})
	for k := esu.MinK; k <= 4; k++ {
		var resp censusResponse
		if code := getJSON(t, ts.URL+fmt.Sprintf("/query?pattern=census(%d)", k), &resp); code != 200 {
			t.Fatalf("census(%d): status %d", k, code)
		}
		if resp.K != k {
			t.Fatalf("census(%d) answered k=%d", k, resp.K)
		}
	}
}
