package serve

// Serving-tier coverage for Config.CompressFrames: compressed local queries
// answer identically to flat ones, and /stats aggregates the compression
// ratio across completed queries.

import (
	"bufio"
	"net/http"
	"strings"
	"testing"
)

func TestCompressedQueriesMatchFlatAndReportStats(t *testing.T) {
	g := testGraph(t)

	var flat struct {
		Count int64 `json:"count"`
	}
	_, tsFlat := newTestServer(t, g, Config{MaxInFlight: 2})
	if code := getJSON(t, tsFlat.URL+"/query?pattern=pg3&count_only=1", &flat); code != 200 {
		t.Fatalf("flat query status %d", code)
	}

	s, ts := newTestServer(t, g, Config{MaxInFlight: 2, CompressFrames: true})
	var comp struct {
		Count int64 `json:"count"`
	}
	for i := 0; i < 2; i++ {
		if code := getJSON(t, ts.URL+"/query?pattern=pg3&count_only=1", &comp); code != 200 {
			t.Fatalf("compressed query %d status %d", i, code)
		}
		if comp.Count != flat.Count {
			t.Fatalf("compressed count %d, flat %d", comp.Count, flat.Count)
		}
	}

	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &stats); code != 200 {
		t.Fatalf("/stats status %d", code)
	}
	c := stats.Compression
	if c.Frames == 0 {
		t.Fatal("/stats compression.frames = 0 after compressed queries")
	}
	if c.RawBytes <= c.WireBytes {
		t.Fatalf("no savings reported: wire %d B, raw %d B", c.WireBytes, c.RawBytes)
	}
	if c.Ratio <= 1 {
		t.Fatalf("compression ratio %.3f, want > 1", c.Ratio)
	}
	// Two identical queries fold in twice — the aggregate is cumulative.
	if got := s.Stats().Compression.Frames; got != c.Frames || got%2 != 0 {
		t.Fatalf("cumulative frames %d (http saw %d), want an even total", got, c.Frames)
	}

	// Flat-mode servers must report all zeros.
	var flatStats StatsResponse
	if code := getJSON(t, tsFlat.URL+"/stats", &flatStats); code != 200 {
		t.Fatalf("flat /stats status %d", code)
	}
	if fc := flatStats.Compression; fc.Frames != 0 || fc.Ratio != 0 {
		t.Fatalf("flat server leaked compression stats: %+v", fc)
	}
}

func TestCompressedStreamQueryMatchesFlat(t *testing.T) {
	g := testGraph(t)
	count := func(url string) int {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("stream status %d", resp.StatusCode)
		}
		n := 0
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		sawDone := false
		for sc.Scan() {
			line := sc.Text()
			if strings.Contains(line, `"embedding"`) {
				n++
			}
			if strings.Contains(line, `"done":true`) {
				sawDone = true
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		if !sawDone {
			t.Fatal("stream ended without a done trailer")
		}
		return n
	}
	_, tsFlat := newTestServer(t, g, Config{MaxInFlight: 2})
	_, tsComp := newTestServer(t, g, Config{MaxInFlight: 2, CompressFrames: true})
	nf := count(tsFlat.URL + "/query?pattern=triangle")
	nc := count(tsComp.URL + "/query?pattern=triangle")
	if nf != nc || nf == 0 {
		t.Fatalf("stream embeddings: flat %d, compressed %d", nf, nc)
	}
}
