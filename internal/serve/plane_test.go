package serve

// Worker-plane tests: registration, dispatch, hedging, failover around a
// killed worker, generation validation of replies, degraded 503s below
// quorum, and recovery once a replacement joins. Workers here are real
// StartWorker runtimes over the same graph (in-process, separate listeners),
// except where a hand-rolled fake worker is needed to forge a stale reply.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"psgl/internal/core"
	"psgl/internal/gen"
	"psgl/internal/graph"
	"psgl/internal/obs"
	"psgl/internal/pattern"
)

// testGraphOther is a deliberately different graph (different fingerprint)
// for the mismatch test.
func testGraphOther(t *testing.T) *graph.Graph {
	t.Helper()
	return gen.ErdosRenyi(50, 200, 3)
}

// planeServer builds a coordinator with a worker plane and n real workers.
func planeServer(t *testing.T, cfg Config, n int) (*Server, *httptest.Server, []*Worker) {
	t.Helper()
	g := testGraph(t)
	if cfg.Plane == nil {
		cfg.Plane = &PlaneConfig{}
	}
	s, ts := newTestServer(t, g, cfg)
	workers := make([]*Worker, n)
	for i := range workers {
		w, err := StartWorker(g, WorkerConfig{
			ID:          fmt.Sprintf("w%d", i+1),
			Coordinator: ts.URL,
			Serve:       Config{Workers: 2, MaxInFlight: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		workers[i] = w
		t.Cleanup(w.Kill)
	}
	return s, ts, workers
}

func expectedCount(t *testing.T, pat string) int64 {
	t.Helper()
	p, err := pattern.Parse(pat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(testGraph(t), p, core.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return res.Count
}

func TestPlaneCountDispatch(t *testing.T) {
	_, ts, _ := planeServer(t, Config{}, 2)
	want := expectedCount(t, "triangle")

	resp, err := http.Get(ts.URL + "/query?pattern=triangle&count_only=true")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-PSGL-Worker") == "" {
		t.Fatal("reply missing X-PSGL-Worker attribution")
	}
	var cr countResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if cr.Count != want {
		t.Fatalf("remote count %d, local %d", cr.Count, want)
	}
}

func TestPlaneStreamDispatch(t *testing.T) {
	_, ts, _ := planeServer(t, Config{}, 1)
	resp, err := http.Get(ts.URL + "/query?pattern=triangle&limit=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	lines, done := 0, false
	for dec.More() {
		var m map[string]any
		if err := dec.Decode(&m); err != nil {
			t.Fatal(err)
		}
		if d, ok := m["done"].(bool); ok && d {
			done = true
			break
		}
		if _, ok := m["embedding"]; !ok {
			t.Fatalf("unexpected line %v", m)
		}
		lines++
	}
	if !done {
		t.Fatal("stream missing done trailer")
	}
	if lines != 5 {
		t.Fatalf("streamed %d embeddings, want 5", lines)
	}
}

// TestPlaneFailoverOnDeadWorker: kill one of two workers; the next query's
// dispatch to the corpse fails over to the survivor and still answers 200
// with the exact count.
func TestPlaneFailoverOnDeadWorker(t *testing.T) {
	s, ts, workers := planeServer(t, Config{}, 2)
	want := expectedCount(t, "triangle")
	// w1 sorts first, so killing it guarantees the first dispatch hits the
	// corpse and exercises failover.
	workers[0].Kill()

	resp, err := http.Get(ts.URL + "/query?pattern=triangle&count_only=true")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d after worker death", resp.StatusCode)
	}
	var cr countResponse
	json.NewDecoder(resp.Body).Decode(&cr)
	if cr.Count != want {
		t.Fatalf("failover count %d, want %d", cr.Count, want)
	}
	if got := resp.Header.Get("X-PSGL-Worker"); got != "w2" {
		t.Fatalf("answered by %q, want the survivor w2", got)
	}
	st := s.Stats()
	if st.Plane == nil || st.Plane.Dispatch.Failovers == 0 {
		t.Fatalf("failover not counted: %+v", st.Plane)
	}
}

// TestPlaneDegradedBelowQuorumAndRecovery is the ISSUE's serving acceptance
// path: below quorum the server answers 503 with Retry-After (never hangs,
// never 500s), and recovers to 200s once a replacement worker registers.
func TestPlaneDegradedBelowQuorumAndRecovery(t *testing.T) {
	g := testGraph(t)
	s, ts := newTestServer(t, g, Config{Plane: &PlaneConfig{
		Quorum:            2,
		HeartbeatInterval: 20 * time.Millisecond,
		MissLimit:         3,
	}})
	w1, err := StartWorker(g, WorkerConfig{ID: "w1", Coordinator: ts.URL, Serve: Config{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w1.Kill)

	// One worker < quorum 2: degraded.
	resp, err := http.Get(ts.URL + "/query?pattern=triangle&count_only=true")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("below quorum: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded 503 missing Retry-After")
	}

	// A second worker registers: recovered.
	w2, err := StartWorker(g, WorkerConfig{ID: "w2", Coordinator: ts.URL, Serve: Config{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w2.Kill)
	resp, err = http.Get(ts.URL + "/query?pattern=triangle&count_only=true")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("at quorum: status %d, want 200", resp.StatusCode)
	}

	// Kill w2 without a goodbye; the sweeper must evict it on missed beats
	// and the server must degrade again — with Retry-After, not a hang.
	w2.Kill()
	deadline := time.Now().Add(10 * time.Second)
	for s.plane.reg.NumAlive() > 1 {
		if time.Now().After(deadline) {
			t.Fatal("dead worker never evicted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err = http.Get(ts.URL + "/query?pattern=triangle&count_only=true")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("after eviction: status %d, want 503", resp.StatusCode)
	}

	// A replacement registers under the same ID (a restart): new generation,
	// service restored.
	w2b, err := StartWorker(g, WorkerConfig{ID: "w2", Coordinator: ts.URL, Serve: Config{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w2b.Kill)
	resp, err = http.Get(ts.URL + "/query?pattern=triangle&count_only=true")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after replacement: status %d, want 200", resp.StatusCode)
	}
	st := s.Stats()
	if st.Plane.Registry.Evictions == 0 {
		t.Fatalf("eviction not counted: %+v", st.Plane.Registry)
	}
	if st.Plane.Registry.Rejoins == 0 {
		t.Fatalf("rejoin not counted: %+v", st.Plane.Registry)
	}
	if st.Plane.Dispatch.Degraded503s < 2 {
		t.Fatalf("degraded 503s = %d, want >= 2", st.Plane.Dispatch.Degraded503s)
	}
}

// TestPlaneHedgedDispatch: with a slow first worker and a short hedge delay,
// the hedge wins and the hedged counter records the speculation.
func TestPlaneHedgedDispatch(t *testing.T) {
	g := testGraph(t)
	fp := fmt.Sprintf("%016x", g.Fingerprint())
	s, ts := newTestServer(t, g, Config{Plane: &PlaneConfig{HedgeDelay: 30 * time.Millisecond}})

	// Two fake workers: "a" stalls, "b" answers instantly. IDs sort a < b,
	// so the first dispatch always stalls and only the hedge completes.
	mkWorker := func(id string, delay time.Duration) string {
		var gen uint64
		fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			time.Sleep(delay)
			w.Header().Set("X-PSGL-Gen", fmt.Sprintf("%d", gen))
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"trace_id":"x","canonical":"c","pattern":"p","count":42,"wall_ms":1}`)
		}))
		t.Cleanup(fake.Close)
		addr := strings.TrimPrefix(fake.URL, "http://")
		body := fmt.Sprintf(`{"id":%q,"addr":%q,"fingerprint":%q}`, id, addr, fp)
		resp, err := http.Post(ts.URL+"/workers/join", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var jr joinResponse
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			t.Fatal(err)
		}
		gen = jr.Gen
		return addr
	}
	mkWorker("a", 2*time.Second)
	mkWorker("b", 0)

	start := time.Now()
	resp, err := http.Get(ts.URL + "/query?pattern=triangle&count_only=true")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-PSGL-Worker"); got != "b" {
		t.Fatalf("answered by %q, want the hedge b", got)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("hedge did not cut the tail: %v", elapsed)
	}
	if s.plane.hedged.Load() != 1 {
		t.Fatalf("hedged = %d, want 1", s.plane.hedged.Load())
	}
}

// TestPlaneStaleGenerationReplyRejected: a reply carrying a retired
// incarnation's generation must never be forwarded to the client.
func TestPlaneStaleGenerationReplyRejected(t *testing.T) {
	g := testGraph(t)
	fp := fmt.Sprintf("%016x", g.Fingerprint())
	s, ts := newTestServer(t, g, Config{Plane: &PlaneConfig{HedgeDelay: -1}})

	// A fake worker that always answers with its FIRST generation, even
	// after a restart re-registered it under a newer one.
	var staleGen uint64
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-PSGL-Gen", fmt.Sprintf("%d", staleGen))
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"count":999999}`)
	}))
	t.Cleanup(fake.Close)
	addr := strings.TrimPrefix(fake.URL, "http://")

	join := func() uint64 {
		body := fmt.Sprintf(`{"id":"wx","addr":%q,"fingerprint":%q}`, addr, fp)
		resp, err := http.Post(ts.URL+"/workers/join", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var jr joinResponse
		json.NewDecoder(resp.Body).Decode(&jr)
		return jr.Gen
	}
	staleGen = join() // first incarnation
	newGen := join()  // "restart": retires staleGen
	if newGen <= staleGen {
		t.Fatalf("rejoin gen %d not > %d", newGen, staleGen)
	}

	resp, err := http.Get(ts.URL + "/query?pattern=triangle&count_only=true")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("stale-generation reply was forwarded to the client")
	}
	if s.plane.staleReject.Load() == 0 {
		t.Fatal("stale reply not counted")
	}
}

// TestPlaneFingerprintMismatchRejected: a worker resident over a different
// graph is refused permanently (412), and StartWorker surfaces it.
func TestPlaneFingerprintMismatchRejected(t *testing.T) {
	g := testGraph(t)
	_, ts := newTestServer(t, g, Config{Plane: &PlaneConfig{}})
	other := testGraphOther(t)
	_, err := StartWorker(other, WorkerConfig{ID: "wz", Coordinator: ts.URL, Serve: Config{Workers: 2}})
	if err == nil || !strings.Contains(err.Error(), "fingerprint mismatch") {
		t.Fatalf("err = %v, want fingerprint mismatch", err)
	}
}

// TestPlaneWorkersEndpoint: /workers lists membership with states and gens.
func TestPlaneWorkersEndpoint(t *testing.T) {
	_, ts, workers := planeServer(t, Config{}, 2)
	var doc struct {
		Alive   int `json:"alive"`
		Workers []struct {
			ID    string `json:"id"`
			Gen   uint64 `json:"gen"`
			State string `json:"state"`
		} `json:"workers"`
	}
	if code := getJSON(t, ts.URL+"/workers", &doc); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if doc.Alive != 2 || len(doc.Workers) != 2 {
		t.Fatalf("listing %+v", doc)
	}
	if doc.Workers[0].ID != "w1" || doc.Workers[0].State != "alive" {
		t.Fatalf("worker[0] %+v", doc.Workers[0])
	}
	_ = workers
}

// TestWorkerGracefulStopLeaves: Stop leaves the registry cleanly — no
// eviction, no missed beats.
func TestWorkerGracefulStopLeaves(t *testing.T) {
	s, _, workers := planeServer(t, Config{}, 2)
	if err := workers[0].Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Plane.Registry.Leaves != 1 || st.Plane.Registry.Evictions != 0 {
		t.Fatalf("registry after graceful stop: %+v", st.Plane.Registry)
	}
	if st.Plane.Alive != 1 {
		t.Fatalf("alive = %d, want 1", st.Plane.Alive)
	}
}

// TestDegradedRetryAfterNeverZero: a sub-second RetryAfter hint must round UP
// to 1 second, never down to "Retry-After: 0" — zero tells well-behaved
// clients to retry immediately and turns a degraded plane into a hammered
// one. Table over the hint durations a deployment might plausibly configure.
func TestDegradedRetryAfterNeverZero(t *testing.T) {
	cases := []struct {
		hint time.Duration
		want string
	}{
		{200 * time.Millisecond, "1"},
		{499 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1500 * time.Millisecond, "2"},
		{3 * time.Second, "3"},
	}
	g := testGraph(t)
	for _, tc := range cases {
		s, _ := newTestServer(t, g, Config{Plane: &PlaneConfig{RetryAfter: tc.hint}})
		rec := httptest.NewRecorder()
		s.writeDegraded(rec, 0)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("hint %v: status %d, want 503", tc.hint, rec.Code)
		}
		if got := rec.Header().Get("Retry-After"); got != tc.want {
			t.Fatalf("hint %v: Retry-After %q, want %q", tc.hint, got, tc.want)
		}
	}
}

// TestDegradedQueryCarriesRetryAfter: the integration face of the same bug —
// a /query against an under-quorum plane configured with a sub-second hint
// must answer 503 with a non-zero Retry-After header.
func TestDegradedQueryCarriesRetryAfter(t *testing.T) {
	g := testGraph(t)
	_, ts := newTestServer(t, g, Config{Plane: &PlaneConfig{RetryAfter: 100 * time.Millisecond}})
	resp, err := http.Get(ts.URL + "/query?pattern=triangle&count_only=true")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got == "" || got == "0" {
		t.Fatalf("degraded 503 Retry-After = %q, want >= 1 second", got)
	}
}

// TestRemoteDispatchCanceledIs504Not502: a canceled query whose dispatches
// fail *because of the cancellation* must answer 504 gateway-timeout, not
// 502 "all workers failed" — cancellation is the client's deadline, not a
// worker-tier outage, and miscoding it poisons both the status-based alerts
// and the failed-query counter. Table-driven over both dispatch paths; the
// count path races its results channel against ctx.Done(), so it is run
// repeatedly to pin the post-loop exit too.
func TestRemoteDispatchCanceledIs504Not502(t *testing.T) {
	s, _, _ := planeServer(t, Config{}, 1)
	params := queryParams{patternSrc: "triangle", workers: 2, deadline: time.Second, countOnly: true}
	o := obs.New(nil)
	cases := []struct {
		name     string
		dispatch func(ctx context.Context, rec *httptest.ResponseRecorder)
		rounds   int
	}{
		{"count", func(ctx context.Context, rec *httptest.ResponseRecorder) {
			s.remoteCount(ctx, rec, params, o)
		}, 20},
		{"stream", func(ctx context.Context, rec *httptest.ResponseRecorder) {
			s.remoteStream(ctx, rec, params, o)
		}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for i := 0; i < tc.rounds; i++ {
				ctx, cancel := context.WithCancel(context.Background())
				cancel()
				rec := httptest.NewRecorder()
				tc.dispatch(ctx, rec)
				if rec.Code != http.StatusGatewayTimeout {
					t.Fatalf("round %d: canceled dispatch answered %d, want 504", i, rec.Code)
				}
			}
		})
	}
}
