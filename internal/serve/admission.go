package serve

import (
	"errors"
	"sync"
)

// errQueueFull reports that both the execution slots and the wait queue are
// occupied; the HTTP layer maps it to 429 Too Many Requests.
var errQueueFull = errors.New("serve: all execution slots busy and the wait queue is full")

// admission bounds concurrent query execution: at most maxInFlight queries
// run at once, at most maxQueue more wait in FIFO order (Go parks blocked
// channel senders in arrival order), and anything beyond that is rejected
// immediately with errQueueFull so overload surfaces as fast 429s instead of
// unbounded latency.
type admission struct {
	sem chan struct{} // buffered to maxInFlight; holding a token = executing

	mu          sync.Mutex
	waiting     int
	maxQueue    int
	maxInFlight int
}

func newAdmission(maxInFlight, maxQueue int) *admission {
	return &admission{
		sem:         make(chan struct{}, maxInFlight),
		maxInFlight: maxInFlight,
		maxQueue:    maxQueue,
	}
}

// acquire obtains an execution slot, waiting in the bounded queue if all
// slots are busy. It returns errQueueFull when the queue is at capacity, or
// done's value when the caller gives up (deadline, client disconnect, drain)
// before a slot frees up.
func (a *admission) acquire(done <-chan struct{}) error {
	select {
	case a.sem <- struct{}{}:
		return nil
	default:
	}
	a.mu.Lock()
	if a.waiting >= a.maxQueue {
		a.mu.Unlock()
		return errQueueFull
	}
	a.waiting++
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		a.waiting--
		a.mu.Unlock()
	}()
	select {
	case a.sem <- struct{}{}:
		return nil
	case <-done:
		return errors.New("serve: gave up waiting for an execution slot")
	}
}

// release returns an execution slot.
func (a *admission) release() { <-a.sem }

// load reports the current in-flight and queued query counts.
func (a *admission) load() (inFlight, waiting int) {
	a.mu.Lock()
	waiting = a.waiting
	a.mu.Unlock()
	return len(a.sem), waiting
}
