// The dynamic-graph plane: POST /update applies a batch of edge mutations to
// the resident graph, and POST /subscribe registers a standing query whose
// gained/lost embeddings stream to the client as each batch commits.
//
// Mutations go through a graph.Overlay serialized by mutMu: the batch is
// validated and applied, the new edge set is materialized as an immutable CSR
// snapshot, one delta enumeration per distinct subscribed pattern computes
// exactly the embeddings gained and lost (internal/delta — no full
// re-enumeration), and a fresh graphState is published atomically. Publishing
// invalidates everything keyed on the previous graph: the plan cache (rebuilt
// against the new degree distribution), the census caches (BitGraph and per-k
// results), and — when this server coordinates a worker plane — every
// registered worker, whose resident graph is now a stale epoch (their rejoin
// re-checks the fingerprint). Queries already in flight keep the graphState
// they loaded at admission, so they finish on a consistent snapshot.
//
// Past Config.CompactThreshold pending patch edges the overlay folds its
// patches into a fresh CSR base, bounding snapshot rebuild cost over a long
// mutation history.

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"time"

	"psgl/internal/delta"
	"psgl/internal/graph"
	"psgl/internal/obs"
	"psgl/internal/pattern"
	"psgl/internal/stats"
)

const (
	// maxUpdateBody bounds one /update request body.
	maxUpdateBody = 8 << 20
	// subscriptionBuffer is how many un-consumed epoch payloads a standing
	// query may fall behind before it is closed as lagged. Dropping epochs
	// silently would corrupt the subscriber's maintained embedding set, so
	// lagging ends the stream instead.
	subscriptionBuffer = 16
	// maxEventLinesPerEpoch caps the embedding lines in one epoch's payload;
	// past it the epoch summary carries truncated=true (totals stay exact).
	maxEventLinesPerEpoch = 10000
)

// updateRequest is the POST /update body: edge batches as two-element
// [u, v] arrays. Removals apply before additions.
type updateRequest struct {
	Add    [][]int64 `json:"add"`
	Remove [][]int64 `json:"remove"`
}

// decodeUpdateBatch strictly decodes one update batch: unknown fields,
// trailing content, wrong-arity edges, and out-of-int32 vertex ids are all
// rejected before anything touches the overlay.
func decodeUpdateBatch(body []byte) (graph.Batch, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req updateRequest
	if err := dec.Decode(&req); err != nil {
		return graph.Batch{}, fmt.Errorf("bad update body: %v", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return graph.Batch{}, fmt.Errorf("bad update body: trailing content after batch object")
	}
	var b graph.Batch
	var err error
	if b.Add, err = convertEdges("add", req.Add); err != nil {
		return graph.Batch{}, err
	}
	if b.Remove, err = convertEdges("remove", req.Remove); err != nil {
		return graph.Batch{}, err
	}
	if len(b.Add)+len(b.Remove) == 0 {
		return graph.Batch{}, fmt.Errorf("empty update batch: need add or remove edges")
	}
	return b, nil
}

func convertEdges(kind string, in [][]int64) ([][2]graph.VertexID, error) {
	if len(in) == 0 {
		return nil, nil
	}
	out := make([][2]graph.VertexID, 0, len(in))
	for i, e := range in {
		if len(e) != 2 {
			return nil, fmt.Errorf("%s[%d]: an edge is a two-element [u, v] array, got %d elements", kind, i, len(e))
		}
		for _, x := range e {
			if x < 0 || x > math.MaxInt32 {
				return nil, fmt.Errorf("%s[%d]: vertex id %d out of range", kind, i, x)
			}
		}
		out = append(out, [2]graph.VertexID{graph.VertexID(e[0]), graph.VertexID(e[1])})
	}
	return out, nil
}

// updateResponse is the POST /update response body.
type updateResponse struct {
	// Epoch is the mutation epoch after this batch; /stats reports the same
	// number until the next batch.
	Epoch uint64 `json:"epoch"`
	// Added/Removed/Noops report the batch's effective mutations (an edge
	// added while present, or removed while absent, is a noop).
	Added   int `json:"added"`
	Removed int `json:"removed"`
	Noops   int `json:"noops"`
	// Edges and Fingerprint describe the graph now being served.
	Edges       int64  `json:"edges"`
	Fingerprint string `json:"fingerprint"`
	// PatchEdges is the overlay's pending patch size after the batch (0 right
	// after a compaction); Compacted reports that this batch triggered one.
	PatchEdges int  `json:"patch_edges"`
	Compacted  bool `json:"compacted,omitempty"`
	// Deltas holds one entry per distinct subscribed pattern: the embeddings
	// gained and lost by this batch, as streamed to the standing queries.
	Deltas []updateDelta `json:"deltas,omitempty"`
	WallMS float64       `json:"wall_ms"`
}

// updateDelta is one subscribed pattern's gained/lost summary for one batch.
type updateDelta struct {
	Canonical   string `json:"canonical"`
	Pattern     string `json:"pattern"`
	Gained      int64  `json:"gained"`
	Lost        int64  `json:"lost"`
	Runs        int    `json:"runs"`
	Subscribers int    `json:"subscribers"`
	// Error reports a failed delta enumeration. The mutation itself is
	// committed; the affected standing queries were told their maintained
	// sets are stale (same message on their streams).
	Error string `json:"error,omitempty"`
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		jsonError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if !s.beginQuery() {
		jsonError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	defer s.endQuery()

	body, err := io.ReadAll(io.LimitReader(r.Body, maxUpdateBody+1))
	if err != nil {
		jsonError(w, http.StatusBadRequest, "reading update body: %v", err)
		return
	}
	if len(body) > maxUpdateBody {
		jsonError(w, http.StatusRequestEntityTooLarge, "update body over %d bytes", maxUpdateBody)
		return
	}
	batch, err := decodeUpdateBatch(body)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.DefaultDeadline)
	defer cancel()
	// An update is engine work — one delta enumeration per subscribed
	// pattern — so it passes the same admission gate as queries.
	if err := s.adm.acquire(ctx.Done()); err != nil {
		s.rejected.Add(1)
		if errors.Is(err, errQueueFull) {
			jsonError(w, http.StatusTooManyRequests, "%v", err)
			return
		}
		if ctx.Err() != nil && r.Context().Err() == nil {
			s.deadlineExceeded.Add(1)
			jsonError(w, http.StatusGatewayTimeout, "deadline expired while queued")
			return
		}
		jsonError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	defer s.adm.release()
	if s.hookQueryAdmitted != nil {
		s.hookQueryAdmitted()
	}

	resp, err := s.applyUpdate(ctx, batch)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// applyUpdate is the serialized mutation path: overlay batch, snapshot,
// standing-query deltas, compaction, state publication, invalidations.
func (s *Server) applyUpdate(ctx context.Context, batch graph.Batch) (*updateResponse, error) {
	start := time.Now()
	traceID := fmt.Sprintf("u%d", s.qid.Add(1))
	observer := obs.New(s.cfg.TraceSink)
	observer.SetTag(traceID)
	s.lastObs.Store(observer)

	s.mutMu.Lock()
	defer s.mutMu.Unlock()
	old := s.state.Load()
	res, err := s.overlay.ApplyBatch(batch)
	if err != nil {
		return nil, err
	}
	effective := len(res.Added) + len(res.Removed)
	observer.AddMutation(int64(effective))
	s.mutBatches.Add(1)
	s.mutAdded.Add(int64(len(res.Added)))
	s.mutRemoved.Add(int64(len(res.Removed)))
	s.mutNoops.Add(int64(res.Noops))

	resp := &updateResponse{
		Epoch:   res.Epoch,
		Added:   len(res.Added),
		Removed: len(res.Removed),
		Noops:   res.Noops,
	}

	if effective == 0 {
		// All-noop batch: the epoch advances (the batch was accepted), but
		// the edge set is unchanged — plans, census, and the worker plane all
		// stay current, and standing queries have nothing to hear.
		s.state.Store(&graphState{g: old.g, fp: old.fp, plans: old.plans, epoch: res.Epoch})
		s.finishUpdate(resp, old.fp, false, start)
		return resp, nil
	}

	snap := s.overlay.Snapshot()
	resp.Deltas = s.runDeltas(ctx, observer, old.g, snap, res)

	compacted := false
	if thr := s.cfg.CompactThreshold; thr > 0 && s.overlay.PatchSize() >= thr {
		s.overlay.Compact()
		compacted = true
	}

	// Publish the new epoch. The fresh plan cache is the plan invalidation:
	// a cached plan's initial vertex was selected against the old degree
	// distribution. Census caches describe the old graph. Worker-plane
	// workers are resident over the old graph, so every incarnation is
	// retired; the rejoin loop re-checks the fingerprint and keeps them out
	// until they reload.
	neu := &graphState{
		g:     snap,
		fp:    snap.Fingerprint(),
		plans: newPlanCache(stats.FromHistogram(snap.DegreeHistogram())),
		epoch: res.Epoch,
	}
	s.state.Store(neu)
	s.census.invalidate()
	if s.plane != nil {
		s.plane.reg.EvictAll()
	}
	s.finishUpdate(resp, neu.fp, compacted, start)
	return resp, nil
}

// finishUpdate fills the response's graph fields and refreshes the atomic
// mirrors /stats reads without taking mutMu. Called with mutMu held.
func (s *Server) finishUpdate(resp *updateResponse, fp uint64, compacted bool, start time.Time) {
	resp.Edges = s.overlay.NumEdges()
	resp.Fingerprint = fmt.Sprintf("%016x", fp)
	resp.PatchEdges = s.overlay.PatchSize()
	resp.Compacted = compacted
	resp.WallMS = float64(time.Since(start).Microseconds()) / 1000
	s.mutPatch.Store(int64(s.overlay.PatchSize()))
	s.mutCompactions.Store(s.overlay.Compactions())
	s.mutEdgeFP.Store(s.overlay.Fingerprint())
}

// runDeltas computes one delta enumeration per distinct subscribed canonical
// pattern and fans the epoch's payload out to that pattern's subscribers.
func (s *Server) runDeltas(ctx context.Context, observer *obs.Observer, old, neu *graph.Graph, res graph.BatchResult) []updateDelta {
	groups := s.subscriptionGroups()
	if len(groups) == 0 {
		return nil
	}
	out := make([]updateDelta, 0, len(groups))
	for _, grp := range groups {
		d, err := delta.Enumerate(ctx, old, neu, res.Added, res.Removed, grp.pattern, delta.Options{
			Workers:         s.cfg.Workers,
			Strategy:        s.cfg.Strategy,
			Seed:            s.cfg.Seed,
			Collect:         true,
			PrePlanned:      true,
			AsyncExchange:   s.cfg.AsyncExchange,
			CompressFrames:  s.cfg.CompressFrames,
			Exchange:        s.testExchange,
			CheckpointEvery: s.cfg.CheckpointEvery,
			MaxRecoveries:   s.cfg.MaxRecoveries,
		})
		ud := updateDelta{Canonical: grp.key, Pattern: grp.name, Subscribers: len(grp.subs)}
		var errMsg string
		if err != nil {
			// The mutation is already committed; this epoch's gained/lost
			// never reached the standing queries, so their maintained sets
			// are stale from here on. Say so on their streams — consumers
			// must resynchronize with a fresh full query.
			errMsg = fmt.Sprintf("delta enumeration failed; maintained sets are stale, resynchronize: %v", err)
			ud.Error = errMsg
		} else {
			ud.Gained, ud.Lost, ud.Runs = d.Gained, d.Lost, d.Runs
			s.deltaGained.Add(d.Gained)
			s.deltaLost.Add(d.Lost)
			s.deltaRuns.Add(int64(d.Runs))
			observer.AddDelta(d.Gained, d.Lost)
		}
		payload := encodeEpochPayload(res.Epoch, d, errMsg)
		for _, sub := range grp.subs {
			s.publish(sub, payload)
		}
		out = append(out, ud)
	}
	return out
}

// subEventLine is one embedding event on a subscription stream.
type subEventLine struct {
	Epoch     uint64           `json:"epoch"`
	Op        string           `json:"op"` // "gain" or "lose"
	Embedding []graph.VertexID `json:"embedding"`
}

// subSummaryLine closes one epoch on a subscription stream. Totals are exact
// even when the embedding lines were truncated.
type subSummaryLine struct {
	Epoch     uint64 `json:"epoch"`
	Done      bool   `json:"done"`
	Gained    int64  `json:"gained"`
	Lost      int64  `json:"lost"`
	Truncated bool   `json:"truncated,omitempty"`
	Error     string `json:"error,omitempty"`
}

// encodeEpochPayload renders one epoch's NDJSON: gain/lose embedding lines
// followed by the summary. One pre-encoded payload is shared by every
// subscriber of the pattern.
func encodeEpochPayload(epoch uint64, d *delta.Result, errMsg string) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	lines := 0
	truncated := false
	sum := subSummaryLine{Epoch: epoch, Done: true, Error: errMsg}
	if d != nil {
		for _, m := range d.GainedEmbeddings {
			if lines >= maxEventLinesPerEpoch {
				truncated = true
				break
			}
			enc.Encode(subEventLine{Epoch: epoch, Op: "gain", Embedding: m})
			lines++
		}
		for _, m := range d.LostEmbeddings {
			if lines >= maxEventLinesPerEpoch {
				truncated = true
				break
			}
			enc.Encode(subEventLine{Epoch: epoch, Op: "lose", Embedding: m})
			lines++
		}
		sum.Gained, sum.Lost = d.Gained, d.Lost
	}
	sum.Truncated = truncated
	enc.Encode(sum)
	return buf.Bytes()
}

// subscription is one standing /subscribe stream: a pattern maintained
// across mutation epochs, fed pre-encoded payloads by the update path.
type subscription struct {
	id      int64
	key     string // canonical pattern key; subscribers group per key
	name    string
	pattern *pattern.Pattern // symmetry-broken once, at subscribe time

	// events carries one payload per mutation epoch. closed/lagged are
	// guarded by the server's subMu, so the channel closes exactly once.
	events chan []byte
	closed bool
	lagged bool
}

// subGroup is every live subscription of one canonical pattern.
type subGroup struct {
	key     string
	name    string
	pattern *pattern.Pattern
	subs    []*subscription
}

// subscriptionGroups snapshots the live subscriptions grouped by canonical
// pattern, in deterministic key order.
func (s *Server) subscriptionGroups() []subGroup {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	byKey := map[string]*subGroup{}
	var keys []string
	for _, sub := range s.subs {
		if sub.closed {
			continue
		}
		g, ok := byKey[sub.key]
		if !ok {
			g = &subGroup{key: sub.key, name: sub.name, pattern: sub.pattern}
			byKey[sub.key] = g
			keys = append(keys, sub.key)
		}
		g.subs = append(g.subs, sub)
	}
	sort.Strings(keys)
	out := make([]subGroup, 0, len(keys))
	for _, k := range keys {
		out = append(out, *byKey[k])
	}
	return out
}

// publish hands one epoch payload to a subscriber. A subscriber that has
// fallen subscriptionBuffer epochs behind is closed as lagged rather than
// silently skipped — a gap would corrupt its maintained embedding set.
func (s *Server) publish(sub *subscription, payload []byte) {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if sub.closed {
		return
	}
	select {
	case sub.events <- payload:
	default:
		sub.lagged = true
		sub.closed = true
		close(sub.events)
	}
}

func (s *Server) addSubscription(sub *subscription) bool {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if s.Draining() {
		return false
	}
	s.subSeq++
	sub.id = s.subSeq
	s.subs[sub.id] = sub
	return true
}

func (s *Server) removeSubscription(sub *subscription) {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	delete(s.subs, sub.id)
}

// closeSubscriptions ends every standing stream — the Drain path.
func (s *Server) closeSubscriptions() {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	for _, sub := range s.subs {
		if !sub.closed {
			sub.closed = true
			close(sub.events)
		}
	}
}

// subHello confirms a subscription: the canonical pattern and the epoch the
// stream starts after (events begin with the next accepted batch).
type subHello struct {
	Subscribed string `json:"subscribed"`
	Pattern    string `json:"pattern"`
	Epoch      uint64 `json:"epoch"`
}

// subClosed is the final line of a subscription stream.
type subClosed struct {
	Done   bool   `json:"done"`
	Reason string `json:"reason"`
}

func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		jsonError(w, http.StatusMethodNotAllowed, "use GET or POST")
		return
	}
	src := r.FormValue("pattern")
	if src == "" {
		jsonError(w, http.StatusBadRequest, "missing required parameter 'pattern'")
		return
	}
	if _, isCensus, _ := pattern.ParseCensus(src); isCensus {
		jsonError(w, http.StatusBadRequest, "census queries cannot be subscribed; subscribe to a concrete pattern")
		return
	}
	p, err := pattern.Parse(src)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sub := &subscription{
		key:     p.CanonicalKey(),
		name:    p.Name(),
		pattern: p.BreakAutomorphisms(),
		events:  make(chan []byte, subscriptionBuffer),
	}
	if !s.addSubscription(sub) {
		jsonError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	defer s.removeSubscription(sub)

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.Encode(subHello{Subscribed: sub.key, Pattern: sub.name, Epoch: s.state.Load().epoch})
	if flusher != nil {
		flusher.Flush()
	}

	for {
		select {
		case payload, ok := <-sub.events:
			if !ok {
				reason := "draining"
				if sub.lagged {
					reason = "subscriber lagged; resynchronize with a full query"
				}
				enc.Encode(subClosed{Done: true, Reason: reason})
				if flusher != nil {
					flusher.Flush()
				}
				return
			}
			w.Write(payload)
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

// MutationStats is the /stats mutations section.
type MutationStats struct {
	// Epoch is the serving snapshot's mutation epoch (accepted batches).
	Epoch uint64 `json:"epoch"`
	// Batches counts accepted /update batches; EdgesAdded/EdgesRemoved count
	// effective changes, Noops the entries that changed nothing.
	Batches      int64 `json:"batches"`
	EdgesAdded   int64 `json:"edges_added"`
	EdgesRemoved int64 `json:"edges_removed"`
	Noops        int64 `json:"noops"`
	// PatchEdges is the overlay's pending patch size; Compactions counts
	// folds of the patch set into a fresh CSR base.
	PatchEdges       int64 `json:"patch_edges"`
	Compactions      int64 `json:"compactions"`
	CompactThreshold int   `json:"compact_threshold"`
	// EdgeFingerprint is the overlay's incrementally maintained
	// order-independent edge digest (graph.EdgeFingerprint of the served
	// snapshot).
	EdgeFingerprint string `json:"edge_fingerprint"`
	// Subscribers is the live standing-query count; DeltaGained/DeltaLost/
	// DeltaRuns aggregate their delta enumerations across all epochs.
	Subscribers int   `json:"subscribers"`
	DeltaGained int64 `json:"delta_gained"`
	DeltaLost   int64 `json:"delta_lost"`
	DeltaRuns   int64 `json:"delta_runs"`
}

func (s *Server) mutationStats(epoch uint64) MutationStats {
	s.subMu.Lock()
	nsubs := len(s.subs)
	s.subMu.Unlock()
	return MutationStats{
		Epoch:            epoch,
		Batches:          s.mutBatches.Load(),
		EdgesAdded:       s.mutAdded.Load(),
		EdgesRemoved:     s.mutRemoved.Load(),
		Noops:            s.mutNoops.Load(),
		PatchEdges:       s.mutPatch.Load(),
		Compactions:      s.mutCompactions.Load(),
		CompactThreshold: s.cfg.CompactThreshold,
		EdgeFingerprint:  fmt.Sprintf("%016x", s.mutEdgeFP.Load()),
		Subscribers:      nsubs,
		DeltaGained:      s.deltaGained.Load(),
		DeltaLost:        s.deltaLost.Load(),
		DeltaRuns:        s.deltaRuns.Load(),
	}
}
