// The worker half of the remote worker plane: a process that loads the same
// data graph as the coordinator, joins its registry, keeps a heartbeat, and
// executes queries POSTed to /exec. The execution path is the full resident
// Server (plan cache, admission, streaming) — a worker is a one-graph query
// server whose only client is the coordinator.
//
// Every /exec reply carries X-PSGL-Worker and X-PSGL-Gen headers naming the
// incarnation that produced it; the coordinator validates the generation
// against its registry before trusting the reply. A worker whose heartbeat
// is rejected as stale (the coordinator evicted it, or a restart raced an
// old beat) rejoins automatically and continues under its new generation.
//
// Two shutdown paths, for the chaos harness and tests:
//
//   - Stop: graceful — leave the registry, then close the listener.
//   - Kill: abrupt — close the listener mid-everything, no leave, and stop
//     beating. The coordinator finds out the hard way (failed dispatches,
//     missed beats, eviction) — exactly how a real worker dies.

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"psgl/internal/graph"
)

// WorkerConfig configures one remote worker.
type WorkerConfig struct {
	// ID is the worker's stable name; restarts keep the ID and get a new
	// generation. Required.
	ID string
	// Coordinator is the coordinator's base URL (e.g. http://127.0.0.1:8080).
	// Required.
	Coordinator string
	// ListenAddr is the execution endpoint's listen address. "" means
	// 127.0.0.1:0 (an ephemeral port, advertised to the coordinator).
	ListenAddr string
	// Serve configures the embedded query server (engine workers, admission,
	// deadlines). Serve.Plane must be nil — a worker doesn't nest planes.
	Serve Config
	// JoinAttempts bounds the initial join retry loop (the coordinator may
	// still be starting). 0 means 20, spaced JoinBackoff apart.
	JoinAttempts int
	// JoinBackoff is the delay between join attempts. 0 means 250ms.
	JoinBackoff time.Duration
}

// Worker is a running remote worker.
type Worker struct {
	cfg WorkerConfig
	srv *Server
	ln  net.Listener
	hs  *http.Server

	gen        atomic.Uint64
	hbInterval time.Duration
	client     *http.Client

	stopOnce sync.Once
	stopHB   chan struct{}
	wg       sync.WaitGroup

	// Counters for the worker's own /healthz and tests.
	beats   atomic.Int64
	rejoins atomic.Int64
}

// StartWorker builds the embedded server over g, starts the /exec listener,
// joins the coordinator, and begins heartbeating. It returns only after the
// first successful join, so a returned Worker is dispatchable.
func StartWorker(g *graph.Graph, cfg WorkerConfig) (*Worker, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("serve: worker needs an ID")
	}
	if cfg.Coordinator == "" {
		return nil, fmt.Errorf("serve: worker needs a coordinator URL")
	}
	if cfg.Serve.Plane != nil {
		return nil, fmt.Errorf("serve: a worker cannot itself run a worker plane")
	}
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	if cfg.JoinAttempts <= 0 {
		cfg.JoinAttempts = 20
	}
	if cfg.JoinBackoff <= 0 {
		cfg.JoinBackoff = 250 * time.Millisecond
	}
	srv, err := New(g, cfg.Serve)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("serve: worker listen: %w", err)
	}
	w := &Worker{
		cfg:    cfg,
		srv:    srv,
		ln:     ln,
		client: &http.Client{Timeout: 10 * time.Second},
		stopHB: make(chan struct{}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/exec", w.handleExec)
	mux.HandleFunc("/healthz", w.handleHealthz)
	w.hs = &http.Server{Handler: mux}
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		w.hs.Serve(ln)
	}()

	if err := w.join(); err != nil {
		w.hs.Close()
		w.wg.Wait()
		return nil, err
	}
	w.wg.Add(1)
	go w.heartbeatLoop()
	return w, nil
}

// Addr is the execution endpoint's host:port.
func (w *Worker) Addr() string { return w.ln.Addr().String() }

// Gen is the worker's current generation number.
func (w *Worker) Gen() uint64 { return w.gen.Load() }

// Rejoins counts generation bumps after the initial join.
func (w *Worker) Rejoins() int64 { return w.rejoins.Load() }

// join registers with the coordinator, retrying while it comes up.
func (w *Worker) join() error {
	body, _ := json.Marshal(joinRequest{
		ID:          w.cfg.ID,
		Addr:        w.Addr(),
		Fingerprint: fmt.Sprintf("%016x", w.srv.state.Load().fp),
	})
	var lastErr error
	for attempt := 0; attempt < w.cfg.JoinAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-w.stopHB:
				return fmt.Errorf("serve: worker stopped while joining")
			case <-time.After(w.cfg.JoinBackoff):
			}
		}
		resp, err := w.client.Post(w.cfg.Coordinator+"/workers/join", "application/json", bytes.NewReader(body))
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode == http.StatusPreconditionFailed {
			// Fingerprint mismatch is permanent: retrying cannot help.
			var e map[string]string
			json.NewDecoder(resp.Body).Decode(&e)
			resp.Body.Close()
			return fmt.Errorf("serve: worker rejected: %s", e["error"])
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			lastErr = fmt.Errorf("join status %d", resp.StatusCode)
			continue
		}
		var jr joinResponse
		err = json.NewDecoder(resp.Body).Decode(&jr)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		w.gen.Store(jr.Gen)
		w.hbInterval = time.Duration(jr.HeartbeatMS) * time.Millisecond
		if w.hbInterval <= 0 {
			w.hbInterval = 500 * time.Millisecond
		}
		return nil
	}
	return fmt.Errorf("serve: worker %s could not join %s after %d attempts: %v",
		w.cfg.ID, w.cfg.Coordinator, w.cfg.JoinAttempts, lastErr)
}

// heartbeatLoop beats every interval; a 409 (stale or evicted incarnation)
// triggers an automatic rejoin under a fresh generation.
func (w *Worker) heartbeatLoop() {
	defer w.wg.Done()
	t := time.NewTicker(w.hbInterval)
	defer t.Stop()
	for {
		select {
		case <-w.stopHB:
			return
		case <-t.C:
			body, _ := json.Marshal(beatRequest{ID: w.cfg.ID, Gen: w.gen.Load()})
			resp, err := w.client.Post(w.cfg.Coordinator+"/workers/heartbeat", "application/json", bytes.NewReader(body))
			if err != nil {
				continue // coordinator unreachable; keep trying
			}
			status := resp.StatusCode
			resp.Body.Close()
			if status == http.StatusNoContent {
				w.beats.Add(1)
				continue
			}
			if status == http.StatusConflict || status == http.StatusNotFound {
				if err := w.join(); err == nil {
					w.rejoins.Add(1)
				}
			}
		}
	}
}

// handleExec runs one dispatched query through the embedded server, tagging
// the reply with this incarnation's identity.
func (w *Worker) handleExec(rw http.ResponseWriter, r *http.Request) {
	rw.Header().Set("X-PSGL-Worker", w.cfg.ID)
	rw.Header().Set("X-PSGL-Gen", strconv.FormatUint(w.gen.Load(), 10))
	w.srv.handleQuery(rw, r)
}

func (w *Worker) handleHealthz(rw http.ResponseWriter, r *http.Request) {
	rw.Header().Set("X-PSGL-Worker", w.cfg.ID)
	rw.Header().Set("X-PSGL-Gen", strconv.FormatUint(w.gen.Load(), 10))
	w.srv.handleHealthz(rw, r)
}

// Stop shuts the worker down gracefully: stop beating, tell the coordinator
// goodbye, drain in-flight queries, close the listener.
func (w *Worker) Stop(ctx context.Context) error {
	var err error
	w.stopOnce.Do(func() {
		close(w.stopHB)
		body, _ := json.Marshal(beatRequest{ID: w.cfg.ID, Gen: w.gen.Load()})
		if resp, postErr := w.client.Post(w.cfg.Coordinator+"/workers/leave", "application/json", bytes.NewReader(body)); postErr == nil {
			resp.Body.Close()
		}
		w.srv.Drain(ctx)
		err = w.hs.Shutdown(ctx)
		w.wg.Wait()
	})
	return err
}

// Kill tears the worker down abruptly — no leave, no drain, connections
// severed. The process-level chaos path: the coordinator must discover the
// death via failed dispatches and missed heartbeats.
func (w *Worker) Kill() {
	w.stopOnce.Do(func() {
		close(w.stopHB)
		w.hs.Close()
		w.wg.Wait()
	})
}
