// Package datasets defines deterministic synthetic analogues of the graphs in
// Table 1 of the paper. The originals (SNAP/KONECT dumps up to 1.2B edges)
// cannot be shipped and would not fit a single-machine reproduction, so each
// analogue is generated with the degree-distribution shape the paper reports
// — the power-law exponent γ is the property its experiments actually exploit
// — at a scale where the full experiment suite runs on one machine.
//
// Substitution record (DESIGN.md Section 2): paper dataset → generator here.
//
//	WebGoogle  (0.9M/8.6M,  γ=1.66) → Chung-Lu γ=1.66
//	WikiTalk   (2.4M/9.3M,  γ=1.09) → Chung-Lu γ=1.20 (most skewed)
//	UsPatent   (3.8M/33M,   γ=3.13) → Chung-Lu γ=3.13 (mild skew)
//	LiveJournal(4.8M/85M)           → Chung-Lu γ=2.40 (social-network range)
//	Wikipedia  (26M/543M)           → Chung-Lu γ=2.20, larger scale
//	Twitter    (42M/1202M)          → R-MAT (0.57,0.19,0.19,0.05), largest
//	RandGraph  (4M/80M, ER)         → Erdős–Rényi
package datasets

import (
	"fmt"
	"sort"
	"sync"

	"psgl/internal/gen"
	"psgl/internal/graph"
)

// Spec describes one dataset analogue.
type Spec struct {
	Name        string
	Description string
	// Paper-reported metadata for EXPERIMENTS.md tables.
	PaperVertices string
	PaperEdges    string
	PaperGamma    float64 // 0 when the paper does not report it
	// Generator parameters.
	kind  string // "chunglu", "er", "rmat"
	N     int
	M     int64
	Gamma float64
	Scale int
	Seed  int64
}

var specs = map[string]Spec{
	"webgoogle": {
		Name: "webgoogle", Description: "web graph analogue, strongly skewed",
		PaperVertices: "0.9M", PaperEdges: "8.6M", PaperGamma: 1.66,
		kind: "chunglu", N: 12000, M: 60000, Gamma: 1.66, Seed: 1001,
	},
	"wikitalk": {
		Name: "wikitalk", Description: "communication graph analogue, extreme skew",
		PaperVertices: "2.4M", PaperEdges: "9.3M", PaperGamma: 1.09,
		kind: "chunglu", N: 20000, M: 50000, Gamma: 1.20, Seed: 1002,
	},
	"uspatent": {
		Name: "uspatent", Description: "citation graph analogue, mild skew",
		PaperVertices: "3.8M", PaperEdges: "33M", PaperGamma: 3.13,
		kind: "chunglu", N: 20000, M: 60000, Gamma: 3.13, Seed: 1003,
	},
	"livejournal": {
		Name: "livejournal", Description: "social graph analogue",
		PaperVertices: "4.8M", PaperEdges: "85M", PaperGamma: 2.40,
		kind: "chunglu", N: 15000, M: 90000, Gamma: 2.40, Seed: 1004,
	},
	"wikipedia": {
		Name: "wikipedia", Description: "large hyperlink graph analogue",
		PaperVertices: "26M", PaperEdges: "543M", PaperGamma: 2.20,
		kind: "chunglu", N: 40000, M: 200000, Gamma: 2.20, Seed: 1005,
	},
	"twitter": {
		Name: "twitter", Description: "largest graph analogue, R-MAT",
		PaperVertices: "42M", PaperEdges: "1202M", PaperGamma: 1.80,
		kind: "rmat", Scale: 16, M: 400000, Seed: 1006,
	},
	"randgraph": {
		Name: "randgraph", Description: "Erdős–Rényi random graph (NetworkX analogue)",
		PaperVertices: "4M", PaperEdges: "80M",
		kind: "er", N: 20000, M: 100000, Seed: 1007,
	},
}

// Names returns all dataset names in a stable order.
func Names() []string {
	out := make([]string, 0, len(specs))
	for name := range specs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Get returns the spec for a dataset name.
func Get(name string) (Spec, error) {
	s, ok := specs[name]
	if !ok {
		return Spec{}, fmt.Errorf("datasets: unknown dataset %q (have %v)", name, Names())
	}
	return s, nil
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*graph.Graph{}
)

// Load generates (or returns the cached) analogue graph for name. Generation
// is deterministic, so repeated calls across a process see the same graph.
func Load(name string) (*graph.Graph, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if g, ok := cache[name]; ok {
		return g, nil
	}
	s, err := Get(name)
	if err != nil {
		return nil, err
	}
	var g *graph.Graph
	switch s.kind {
	case "chunglu":
		g = gen.ChungLu(s.N, s.M, s.Gamma, s.Seed)
	case "er":
		g = gen.ErdosRenyi(s.N, s.M, s.Seed)
	case "rmat":
		g = gen.RMAT(s.Scale, s.M, 0.57, 0.19, 0.19, 0.05, s.Seed)
	default:
		return nil, fmt.Errorf("datasets: bad generator kind %q", s.kind)
	}
	cache[name] = g
	return g, nil
}

// MustLoad is Load for callers with static dataset names (benches, examples).
func MustLoad(name string) *graph.Graph {
	g, err := Load(name)
	if err != nil {
		panic(err)
	}
	return g
}
