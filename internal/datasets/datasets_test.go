package datasets

import (
	"testing"

	"psgl/internal/stats"
)

func TestNamesStable(t *testing.T) {
	n1, n2 := Names(), Names()
	if len(n1) != 7 {
		t.Fatalf("expected 7 datasets, got %d: %v", len(n1), n1)
	}
	for i := range n1 {
		if n1[i] != n2[i] {
			t.Fatal("Names order not stable")
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nope"); err == nil {
		t.Fatal("Get(nope) should fail")
	}
	if _, err := Load("nope"); err == nil {
		t.Fatal("Load(nope) should fail")
	}
}

func TestLoadCaches(t *testing.T) {
	g1, err := Load("webgoogle")
	if err != nil {
		t.Fatal(err)
	}
	g2 := MustLoad("webgoogle")
	if g1 != g2 {
		t.Fatal("Load should cache and return the identical graph")
	}
}

func TestAllDatasetsGenerate(t *testing.T) {
	for _, name := range Names() {
		g := MustLoad(name)
		s, _ := Get(name)
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Errorf("%s: empty graph", name)
		}
		if s.kind != "rmat" && g.NumVertices() != s.N {
			t.Errorf("%s: V=%d, want %d", name, g.NumVertices(), s.N)
		}
		t.Logf("%-12s V=%-6d E=%-7d maxdeg=%-5d", name, g.NumVertices(), g.NumEdges(), g.MaxDegree())
	}
}

func TestSkewOrdering(t *testing.T) {
	// The defining property of the suite: wikitalk is the most skewed,
	// uspatent and randgraph the least. Compare max-degree/avg-degree ratios.
	ratio := func(name string) float64 {
		g := MustLoad(name)
		avg := 2 * float64(g.NumEdges()) / float64(g.NumVertices())
		return float64(g.MaxDegree()) / avg
	}
	wikitalk, webgoogle := ratio("wikitalk"), ratio("webgoogle")
	uspatent, randgraph := ratio("uspatent"), ratio("randgraph")
	if wikitalk < webgoogle {
		t.Errorf("wikitalk (%.0f) should be at least as skewed as webgoogle (%.0f)", wikitalk, webgoogle)
	}
	if webgoogle < 3*uspatent {
		t.Errorf("webgoogle (%.0f) should be far more skewed than uspatent (%.0f)", webgoogle, uspatent)
	}
	if uspatent < randgraph {
		t.Errorf("uspatent (%.0f) should be more skewed than ER randgraph (%.0f)", uspatent, randgraph)
	}
}

func TestPowerLawDatasetsFitOrdering(t *testing.T) {
	// Fit the hub tail (well above the average degree); the generator's
	// uniform body would otherwise dominate the MLE.
	gamma := func(name string) float64 {
		g := MustLoad(name)
		avg := int(2 * g.NumEdges() / int64(g.NumVertices()))
		got, err := stats.FromHistogram(g.DegreeHistogram()).PowerLawGamma(5 * avg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return got
	}
	gw, gu := gamma("webgoogle"), gamma("uspatent")
	if gw >= gu {
		t.Errorf("fitted gamma ordering violated: webgoogle=%.2f >= uspatent=%.2f", gw, gu)
	}
}
