// Package sgia reimplements the second MapReduce baseline of the paper's
// evaluation, in the style of Plantenga's SGIA-MR ("inexact subgraph
// isomorphism in MapReduce", JPDC 2013): subgraph listing as an iterative
// sequence of joins along a pre-defined pattern-edge order. Each round joins
// the current set of partial matches with the data-edge relation — either an
// extension join (a pattern edge introducing a new vertex: partial matches
// meet the adjacency of a data vertex) or a closure join (a pattern edge
// between two already-matched vertices: partial matches meet the edge
// relation on an encoded vertex pair).
//
// The cost profile is the paper's core criticism of join-based listing: an
// extension round materializes and shuffles every unfiltered child before
// the next round's closure can reject it — for the square, literally all
// length-3 paths — so intermediate results balloon where PSgL's traversal
// would have pruned in place.
package sgia

import (
	"fmt"
	"time"

	"psgl/internal/graph"
	"psgl/internal/mr"
	"psgl/internal/pattern"
)

// Options configures a run.
type Options struct {
	// Reducers is R per round. 0 means 16.
	Reducers int
	// Parallelism bounds concurrent tasks. 0 means GOMAXPROCS.
	Parallelism int
	// MaxIntermediate aborts with mr.ErrShuffleBudget when a round's shuffle
	// exceeds it (the OOM / "did not finish in four hours" analogue).
	MaxIntermediate int64
}

// RoundStats records one join round.
type RoundStats struct {
	Edge         [2]int // pattern edge joined this round
	Closure      bool
	InputMatches int64
	ShufflePairs int64
	OutMatches   int64
	Skew         float64
}

// Stats reports the run's cost profile.
type Stats struct {
	Rounds           []RoundStats
	TotalShuffled    int64
	PeakIntermediate int64
	WallTime         time.Duration
}

// Result is the outcome of a run.
type Result struct {
	Count int64
	Stats Stats
}

// record is the unified map input/value: either a partial match or a data
// edge endpoint.
type record struct {
	Match  []graph.VertexID // nil for edge records
	Other  graph.VertexID   // extension: the neighbor across the data edge
	IsEdge bool
}

// Run counts instances of p in g with the iterative edge join.
func Run(g *graph.Graph, p *pattern.Pattern, opts Options) (*Result, error) {
	if g == nil || p == nil {
		return nil, fmt.Errorf("sgia: nil graph or pattern")
	}
	if p.N() < 2 {
		return nil, fmt.Errorf("sgia: pattern needs >= 2 vertices")
	}
	p = p.BreakAutomorphisms()
	ord := graph.NewOrdered(g)

	reducers := opts.Reducers
	if reducers <= 0 {
		reducers = 16
	}

	start := time.Now()
	plan := joinOrder(p)

	// Seed matches: map the first edge's endpoints over every data edge
	// (both orientations), honoring the partial order.
	first := plan[0]
	var matches [][]graph.VertexID
	seed := func(a, b int, u, v graph.VertexID) {
		if !orderOK(p, ord, a, u, b, v) {
			return
		}
		m := make([]graph.VertexID, p.N())
		for i := range m {
			m[i] = -1
		}
		m[a], m[b] = u, v
		matches = append(matches, m)
	}
	g.Edges(func(u, v graph.VertexID) bool {
		seed(first.edge[0], first.edge[1], u, v)
		seed(first.edge[0], first.edge[1], v, u)
		return true
	})

	var edges []record
	g.Edges(func(u, v graph.VertexID) bool {
		edges = append(edges, record{Other: v, IsEdge: true, Match: []graph.VertexID{u, v}})
		return true
	})

	st := Stats{}
	st.PeakIntermediate = int64(len(matches))
	for _, step := range plan[1:] {
		var out [][]graph.VertexID
		var roundStats *mr.Stats
		var err error
		if step.closure {
			out, roundStats, err = closureRound(p, step.edge, matches, edges, reducers, opts)
		} else {
			out, roundStats, err = extensionRound(p, ord, step.edge, matches, edges, reducers, opts)
		}
		if err != nil {
			return nil, err
		}
		st.Rounds = append(st.Rounds, RoundStats{
			Edge:         step.edge,
			Closure:      step.closure,
			InputMatches: int64(len(matches)),
			ShufflePairs: roundStats.ShufflePairs,
			OutMatches:   int64(len(out)),
			Skew:         roundStats.Skew(),
		})
		st.TotalShuffled += roundStats.ShufflePairs
		if n := int64(len(out)); n > st.PeakIntermediate {
			st.PeakIntermediate = n
		}
		matches = out
	}
	st.WallTime = time.Since(start)
	return &Result{Count: int64(len(matches)), Stats: st}, nil
}

type joinStep struct {
	edge    [2]int
	closure bool
}

// joinOrder produces the pre-defined edge order: a BFS spanning exploration
// from pattern vertex 0 where each newly covered vertex is followed
// immediately by the closure edges it completes.
func joinOrder(p *pattern.Pattern) []joinStep {
	n := p.N()
	mapped := make([]bool, n)
	var plan []joinStep
	cover := func(v int) {
		mapped[v] = true
	}
	// First edge: vertex 0 with its smallest neighbor.
	b0 := p.Neighbors(0)[0]
	plan = append(plan, joinStep{edge: [2]int{0, b0}})
	cover(0)
	cover(b0)
	// Closures completed by b0 (only 0 possible; already the edge itself).
	for len(plan) < p.NumEdges() {
		// Find an extension edge (mapped, unmapped).
		found := false
		for a := 0; a < n && !found; a++ {
			if !mapped[a] {
				continue
			}
			for _, b := range p.Neighbors(a) {
				if mapped[b] {
					continue
				}
				plan = append(plan, joinStep{edge: [2]int{a, b}})
				cover(b)
				// Closure edges b completes.
				for _, c := range p.Neighbors(b) {
					if c != a && mapped[c] {
						plan = append(plan, joinStep{edge: [2]int{b, c}, closure: true})
					}
				}
				found = true
				break
			}
		}
		if !found {
			break
		}
	}
	return plan
}

// orderOK checks the symmetry-breaking constraints between two pattern
// vertices under the data ordering.
func orderOK(p *pattern.Pattern, ord *graph.Ordered, a int, u graph.VertexID, b int, v graph.VertexID) bool {
	if p.MustPrecede(a, b) && !ord.Less(u, v) {
		return false
	}
	if p.MustPrecede(b, a) && !ord.Less(v, u) {
		return false
	}
	return true
}

func extensionRound(p *pattern.Pattern, ord *graph.Ordered, e [2]int, matches [][]graph.VertexID, edges []record, reducers int, opts Options) ([][]graph.VertexID, *mr.Stats, error) {
	a, b := e[0], e[1]
	inputs := make([]record, 0, len(matches)+len(edges))
	for _, m := range matches {
		inputs = append(inputs, record{Match: m})
	}
	inputs = append(inputs, edges...)
	job := mr.Job[record, record, []graph.VertexID]{
		Name: fmt.Sprintf("sgia-ext-%d-%d", a, b),
		Map: func(rec record, emit func(int64, record)) {
			if rec.IsEdge {
				u, v := rec.Match[0], rec.Match[1]
				emit(int64(u), record{Other: v, IsEdge: true})
				emit(int64(v), record{Other: u, IsEdge: true})
				return
			}
			emit(int64(rec.Match[a]), rec)
		},
		Reduce: func(key int64, values []record, emit func([]graph.VertexID)) {
			var neighbors []graph.VertexID
			var ms [][]graph.VertexID
			for _, rec := range values {
				if rec.IsEdge {
					neighbors = append(neighbors, rec.Other)
				} else {
					ms = append(ms, rec.Match)
				}
			}
			for _, m := range ms {
				for _, x := range neighbors {
					if used(m, x) {
						continue
					}
					ok := true
					for u := 0; u < p.N() && ok; u++ {
						if m[u] < 0 || u == b {
							continue
						}
						if !orderOK(p, ord, b, x, u, m[u]) {
							ok = false
						}
					}
					if !ok {
						continue
					}
					child := append([]graph.VertexID(nil), m...)
					child[b] = x
					emit(child)
				}
			}
		},
		Reducers:        reducers,
		Parallelism:     opts.Parallelism,
		MaxShufflePairs: opts.MaxIntermediate,
	}
	return mr.Run(job, inputs)
}

func closureRound(p *pattern.Pattern, e [2]int, matches [][]graph.VertexID, edges []record, reducers int, opts Options) ([][]graph.VertexID, *mr.Stats, error) {
	a, b := e[0], e[1]
	inputs := make([]record, 0, len(matches)+len(edges))
	for _, m := range matches {
		inputs = append(inputs, record{Match: m})
	}
	inputs = append(inputs, edges...)
	job := mr.Job[record, record, []graph.VertexID]{
		Name: fmt.Sprintf("sgia-close-%d-%d", a, b),
		Map: func(rec record, emit func(int64, record)) {
			if rec.IsEdge {
				emit(encodePair(rec.Match[0], rec.Match[1]), record{IsEdge: true})
				return
			}
			emit(encodePair(rec.Match[a], rec.Match[b]), rec)
		},
		Reduce: func(key int64, values []record, emit func([]graph.VertexID)) {
			hasEdge := false
			for _, rec := range values {
				if rec.IsEdge {
					hasEdge = true
					break
				}
			}
			if !hasEdge {
				return
			}
			for _, rec := range values {
				if !rec.IsEdge {
					emit(rec.Match)
				}
			}
		},
		Reducers:        reducers,
		Parallelism:     opts.Parallelism,
		MaxShufflePairs: opts.MaxIntermediate,
	}
	return mr.Run(job, inputs)
}

func used(m []graph.VertexID, x graph.VertexID) bool {
	for _, v := range m {
		if v == x {
			return true
		}
	}
	return false
}

// encodePair packs an unordered vertex pair into one int64 join key.
func encodePair(u, v graph.VertexID) int64 {
	if u > v {
		u, v = v, u
	}
	return int64(uint64(uint32(u))<<32 | uint64(uint32(v)))
}
