package sgia

import (
	"errors"
	"testing"

	"psgl/internal/centralized"
	"psgl/internal/gen"
	"psgl/internal/graph"
	"psgl/internal/mr"
	"psgl/internal/pattern"
)

func TestMatchesOracle(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := gen.ErdosRenyi(120, 700, seed)
		for _, p := range []*pattern.Pattern{pattern.PG1(), pattern.PG2(), pattern.PG3(), pattern.PG4(), pattern.PG5()} {
			want := centralized.CountInstances(p, g)
			res, err := Run(g, p, Options{})
			if err != nil {
				t.Fatalf("%s seed=%d: %v", p.Name(), seed, err)
			}
			if res.Count != want {
				t.Errorf("%s seed=%d: sgia=%d oracle=%d", p.Name(), seed, res.Count, want)
			}
		}
	}
}

func TestMatchesOracleSkewedGraph(t *testing.T) {
	g := gen.ChungLu(300, 1200, 1.7, 5)
	for _, p := range []*pattern.Pattern{pattern.PG1(), pattern.PG2()} {
		want := centralized.CountInstances(p, g)
		res, err := Run(g, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != want {
			t.Errorf("%s: sgia=%d oracle=%d", p.Name(), res.Count, want)
		}
	}
}

func TestJoinOrderCoversAllEdges(t *testing.T) {
	for _, p := range []*pattern.Pattern{pattern.PG1(), pattern.PG2(), pattern.PG3(), pattern.PG4(), pattern.PG5(), pattern.Cycle(6), pattern.Clique(5)} {
		plan := joinOrder(p)
		if len(plan) != p.NumEdges() {
			t.Errorf("%s: plan has %d steps, want %d", p.Name(), len(plan), p.NumEdges())
		}
		seen := map[[2]int]bool{}
		mapped := map[int]bool{}
		for i, step := range plan {
			a, b := step.edge[0], step.edge[1]
			if !p.HasEdge(a, b) {
				t.Errorf("%s: step %d joins non-edge %v", p.Name(), i, step.edge)
			}
			key := [2]int{min(a, b), max(a, b)}
			if seen[key] {
				t.Errorf("%s: edge %v joined twice", p.Name(), key)
			}
			seen[key] = true
			if i == 0 {
				mapped[a], mapped[b] = true, true
				continue
			}
			if step.closure {
				if !mapped[a] || !mapped[b] {
					t.Errorf("%s: closure step %d with unmapped endpoint", p.Name(), i)
				}
			} else {
				if !mapped[a] || mapped[b] {
					t.Errorf("%s: extension step %d expects mapped->new, got %v/%v",
						p.Name(), i, mapped[a], mapped[b])
				}
				mapped[b] = true
			}
		}
	}
}

// TestIntermediateBlowupVsClosure demonstrates the join-cost profile the
// paper criticizes: for the square, the extension rounds materialize path
// intermediates that the closure round then discards — peak intermediate
// count far exceeds the final result count.
func TestIntermediateBlowupVsClosure(t *testing.T) {
	g := gen.ChungLu(800, 3200, 1.7, 9)
	res, err := Run(g, pattern.PG2(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("squares=%d peak intermediate=%d shuffled=%d",
		res.Count, res.Stats.PeakIntermediate, res.Stats.TotalShuffled)
	if res.Stats.PeakIntermediate <= 2*res.Count {
		t.Errorf("expected intermediate blowup: peak=%d count=%d",
			res.Stats.PeakIntermediate, res.Count)
	}
}

func TestBudgetOOM(t *testing.T) {
	g := gen.ChungLu(800, 3200, 1.7, 9)
	_, err := Run(g, pattern.PG2(), Options{MaxIntermediate: 500})
	if !errors.Is(err, mr.ErrShuffleBudget) {
		t.Fatalf("err = %v, want ErrShuffleBudget", err)
	}
}

func TestRoundStatsRecorded(t *testing.T) {
	g := gen.ErdosRenyi(100, 500, 2)
	res, err := Run(g, pattern.PG4(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// K4 has 6 edges; first is the seed, so 5 rounds.
	if len(res.Stats.Rounds) != 5 {
		t.Fatalf("rounds = %d, want 5", len(res.Stats.Rounds))
	}
	for i, r := range res.Stats.Rounds {
		if r.ShufflePairs <= 0 {
			t.Errorf("round %d: no shuffle recorded", i)
		}
	}
	if res.Stats.WallTime <= 0 {
		t.Error("wall time missing")
	}
}

func TestInvalidInputs(t *testing.T) {
	g := gen.ErdosRenyi(10, 20, 1)
	if _, err := Run(nil, pattern.PG1(), Options{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := Run(g, nil, Options{}); err == nil {
		t.Error("nil pattern accepted")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(5).Build()
	res, err := Run(g, pattern.PG2(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 0 {
		t.Fatalf("count = %d on edgeless graph", res.Count)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func BenchmarkSGIASquare(b *testing.B) {
	g := gen.ChungLu(1500, 6000, 1.8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, pattern.PG2(), Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
