// Package stats provides the statistical tooling PSgL relies on: degree
// distributions of data graphs (used by the initial-pattern-vertex cost model
// of Section 5.2.2), discrete power-law exponent estimation (used to verify
// Property 1 and to characterize datasets, Table 1), and summary helpers for
// workload-balance reporting.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Distribution is an empirical discrete distribution over non-negative
// integer values (degrees, nb, ns, per-worker loads, ...).
type Distribution struct {
	counts []int64 // counts[d] = number of samples with value d
	total  int64
}

// NewDistribution builds a distribution from raw samples.
func NewDistribution(samples []int32) *Distribution {
	max := int32(0)
	for _, s := range samples {
		if s < 0 {
			panic("stats: negative sample")
		}
		if s > max {
			max = s
		}
	}
	d := &Distribution{counts: make([]int64, max+1)}
	for _, s := range samples {
		d.counts[s]++
		d.total++
	}
	return d
}

// FromHistogram builds a distribution from counts[d] = #samples of value d.
func FromHistogram(counts []int64) *Distribution {
	cp := make([]int64, len(counts))
	copy(cp, counts)
	d := &Distribution{counts: cp}
	for _, c := range cp {
		if c < 0 {
			panic("stats: negative histogram count")
		}
		d.total += c
	}
	return d
}

// Total returns the number of samples.
func (d *Distribution) Total() int64 { return d.total }

// Max returns the largest observed value.
func (d *Distribution) Max() int {
	for v := len(d.counts) - 1; v >= 0; v-- {
		if d.counts[v] > 0 {
			return v
		}
	}
	return 0
}

// P returns the empirical probability of value v.
func (d *Distribution) P(v int) float64 {
	if v < 0 || v >= len(d.counts) || d.total == 0 {
		return 0
	}
	return float64(d.counts[v]) / float64(d.total)
}

// Mean returns the sample mean.
func (d *Distribution) Mean() float64 {
	if d.total == 0 {
		return 0
	}
	var sum float64
	for v, c := range d.counts {
		sum += float64(v) * float64(c)
	}
	return sum / float64(d.total)
}

// CCDF returns P(X >= v).
func (d *Distribution) CCDF(v int) float64 {
	if d.total == 0 {
		return 0
	}
	var tail int64
	for x := v; x < len(d.counts); x++ {
		if x >= 0 {
			tail += d.counts[x]
		}
	}
	if v < 0 {
		tail = d.total
	}
	return float64(tail) / float64(d.total)
}

// PowerLawGamma estimates the exponent γ of p(d) ∝ d^-γ from all samples with
// value >= dmin, using the discrete maximum-likelihood approximation of
// Clauset, Shalizi & Newman: γ ≈ 1 + n / Σ ln(d_i / (dmin - 0.5)).
// It returns an error when fewer than two samples qualify.
func (d *Distribution) PowerLawGamma(dmin int) (float64, error) {
	if dmin < 1 {
		dmin = 1
	}
	var n int64
	var sum float64
	for v := dmin; v < len(d.counts); v++ {
		c := d.counts[v]
		if c == 0 {
			continue
		}
		n += c
		sum += float64(c) * math.Log(float64(v)/(float64(dmin)-0.5))
	}
	if n < 2 || sum <= 0 {
		return 0, fmt.Errorf("stats: need >=2 samples >= dmin=%d to fit power law (have %d)", dmin, n)
	}
	return 1 + float64(n)/sum, nil
}

// Summary holds order statistics of a sample set, used to report per-worker
// load balance (Figure 5-style output).
type Summary struct {
	N                int
	Min, Max         float64
	Mean             float64
	P50, P95         float64
	Stddev           float64
	ImbalanceFactor  float64 // Max / Mean; 1.0 = perfectly balanced
	CoeffOfVariation float64 // Stddev / Mean
}

// Summarize computes a Summary of xs. It returns the zero Summary for an
// empty slice.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	var sum, sumSq float64
	for _, x := range sorted {
		sum += x
		sumSq += x * x
	}
	mean := sum / float64(len(xs))
	variance := sumSq/float64(len(xs)) - mean*mean
	if variance < 0 {
		variance = 0
	}
	s := Summary{
		N:      len(xs),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   mean,
		P50:    quantile(sorted, 0.50),
		P95:    quantile(sorted, 0.95),
		Stddev: math.Sqrt(variance),
	}
	if mean > 0 {
		s.ImbalanceFactor = s.Max / mean
		s.CoeffOfVariation = s.Stddev / mean
	}
	return s
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Binomial returns C(n, k) as a float64, saturating at +Inf for large inputs.
// PSgL uses C(deg(vd), w) as the workload estimate of expanding a pattern
// vertex with w WHITE neighbors at data vertex vd (Section 5.1.1).
func Binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k == 0 || k == n {
		return 1
	}
	if k > n-k {
		k = n - k
	}
	res := 1.0
	for i := 1; i <= k; i++ {
		res = res * float64(n-k+i) / float64(i)
		if math.IsInf(res, 1) {
			return math.Inf(1)
		}
	}
	return res
}
