package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDistributionBasics(t *testing.T) {
	d := NewDistribution([]int32{1, 2, 2, 3, 3, 3})
	if d.Total() != 6 {
		t.Fatalf("Total = %d, want 6", d.Total())
	}
	if d.Max() != 3 {
		t.Fatalf("Max = %d, want 3", d.Max())
	}
	if got := d.P(2); math.Abs(got-2.0/6) > 1e-12 {
		t.Errorf("P(2) = %g, want 1/3", got)
	}
	if got := d.P(99); got != 0 {
		t.Errorf("P(99) = %g, want 0", got)
	}
	if got := d.Mean(); math.Abs(got-14.0/6) > 1e-12 {
		t.Errorf("Mean = %g, want %g", got, 14.0/6)
	}
	if got := d.CCDF(3); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("CCDF(3) = %g, want 0.5", got)
	}
	if got := d.CCDF(0); got != 1 {
		t.Errorf("CCDF(0) = %g, want 1", got)
	}
}

func TestFromHistogramMatchesSamples(t *testing.T) {
	samples := []int32{0, 0, 1, 5, 5, 5}
	d1 := NewDistribution(samples)
	d2 := FromHistogram([]int64{2, 1, 0, 0, 0, 3})
	if d1.Total() != d2.Total() || d1.Max() != d2.Max() {
		t.Fatal("histogram construction disagrees with sample construction")
	}
	for v := 0; v <= 5; v++ {
		if d1.P(v) != d2.P(v) {
			t.Errorf("P(%d) differs: %g vs %g", v, d1.P(v), d2.P(v))
		}
	}
}

func TestEmptyDistribution(t *testing.T) {
	d := NewDistribution(nil)
	if d.Total() != 0 || d.Max() != 0 || d.Mean() != 0 || d.P(0) != 0 || d.CCDF(0) != 0 {
		t.Fatal("empty distribution should return zeros")
	}
	if _, err := d.PowerLawGamma(1); err == nil {
		t.Fatal("PowerLawGamma on empty distribution should error")
	}
}

// TestPowerLawGammaRecovery draws from a discrete power law and checks the
// MLE recovers the exponent within tolerance.
func TestPowerLawGammaRecovery(t *testing.T) {
	for _, gamma := range []float64{1.5, 2.0, 2.5, 3.2} {
		rng := rand.New(rand.NewSource(7))
		// Discrete power-law generator from Clauset, Shalizi & Newman:
		// x = floor((xmin - 1/2)(1-u)^(-1/(γ-1)) + 1/2). Their MLE
		// approximation is reliable for xmin >= 6, so generate and fit there.
		const xmin = 6
		samples := make([]int32, 200000)
		for i := range samples {
			u := rng.Float64()
			x := (xmin-0.5)*math.Pow(1-u, -1/(gamma-1)) + 0.5
			if x > 1e7 {
				x = 1e7
			}
			samples[i] = int32(x)
		}
		d := NewDistribution(samples)
		got, err := d.PowerLawGamma(xmin)
		if err != nil {
			t.Fatalf("gamma=%g: %v", gamma, err)
		}
		if math.Abs(got-gamma) > 0.15 {
			t.Errorf("gamma=%g: MLE = %g, off by %g", gamma, got, math.Abs(got-gamma))
		}
	}
}

func TestPowerLawGammaOrdering(t *testing.T) {
	// A steeper distribution must fit a larger gamma.
	rng := rand.New(rand.NewSource(3))
	mk := func(gamma float64) *Distribution {
		samples := make([]int32, 50000)
		for i := range samples {
			u := rng.Float64()
			samples[i] = int32(math.Min(0.5*math.Pow(1-u, -1/(gamma-1))+0.5, 1e6))
		}
		return NewDistribution(samples)
	}
	flat, _ := mk(1.6).PowerLawGamma(1)
	steep, _ := mk(3.5).PowerLawGamma(1)
	if flat >= steep {
		t.Fatalf("gamma ordering violated: flat=%g steep=%g", flat, steep)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 10})
	if s.N != 5 || s.Min != 1 || s.Max != 10 {
		t.Fatalf("bad extremes: %+v", s)
	}
	if math.Abs(s.Mean-4) > 1e-12 {
		t.Errorf("Mean = %g, want 4", s.Mean)
	}
	if s.P50 != 3 {
		t.Errorf("P50 = %g, want 3", s.P50)
	}
	if math.Abs(s.ImbalanceFactor-2.5) > 1e-12 {
		t.Errorf("ImbalanceFactor = %g, want 2.5", s.ImbalanceFactor)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("Summarize(nil) = %+v, want zero", z)
	}
}

func TestSummarizeBalancedVsSkewed(t *testing.T) {
	balanced := Summarize([]float64{10, 10, 10, 10})
	skewed := Summarize([]float64{1, 1, 1, 37})
	if balanced.ImbalanceFactor != 1 {
		t.Errorf("balanced imbalance = %g, want 1", balanced.ImbalanceFactor)
	}
	if skewed.ImbalanceFactor <= balanced.ImbalanceFactor {
		t.Error("skewed load should have higher imbalance factor")
	}
}

func TestBinomialExactValues(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120},
		{52, 5, 2598960}, {5, 6, 0}, {5, -1, 0},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); math.Abs(got-c.want) > 1e-6*math.Max(1, c.want) {
			t.Errorf("Binomial(%d,%d) = %g, want %g", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialSymmetry(t *testing.T) {
	if err := quick.Check(func(nRaw, kRaw uint8) bool {
		n := int(nRaw % 60)
		k := int(kRaw) % (n + 1)
		a, b := Binomial(n, k), Binomial(n, n-k)
		return math.Abs(a-b) <= 1e-9*math.Max(1, a)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBinomialPascal(t *testing.T) {
	for n := 2; n < 40; n++ {
		for k := 1; k < n; k++ {
			lhs := Binomial(n, k)
			rhs := Binomial(n-1, k-1) + Binomial(n-1, k)
			if math.Abs(lhs-rhs) > 1e-6*lhs {
				t.Fatalf("Pascal identity fails at n=%d k=%d: %g vs %g", n, k, lhs, rhs)
			}
		}
	}
}

func TestQuantileInterpolation(t *testing.T) {
	s := Summarize([]float64{0, 100})
	if s.P50 != 50 {
		t.Errorf("P50 of {0,100} = %g, want 50", s.P50)
	}
}
