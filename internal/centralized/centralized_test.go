package centralized

import (
	"math/rand"
	"testing"

	"psgl/internal/gen"
	"psgl/internal/graph"
	"psgl/internal/pattern"
)

// figure1Graph is the data graph of Figure 1 (vertices 1..6 -> 0..5).
func figure1Graph() *graph.Graph {
	return graph.FromEdges(6, [][2]graph.VertexID{
		{0, 1}, {0, 4}, {0, 5}, {1, 2}, {1, 4}, {2, 3}, {2, 4}, {3, 4}, {4, 5},
	})
}

func TestSquareOnFigure1(t *testing.T) {
	// The paper lists exactly the squares 1235, 1256, 2345 in Figure 1.
	g := figure1Graph()
	if got := CountInstances(pattern.Square(), g); got != 3 {
		t.Fatalf("squares = %d, want 3", got)
	}
}

func TestSquareInstancesOnFigure1(t *testing.T) {
	g := figure1Graph()
	var found [][]graph.VertexID
	ListInstances(pattern.Square(), g, func(m []graph.VertexID) bool {
		found = append(found, append([]graph.VertexID(nil), m...))
		return true
	})
	if len(found) != 3 {
		t.Fatalf("found %d squares, want 3", len(found))
	}
	for _, m := range found {
		// Each instance must be a real 4-cycle under the pattern's edges.
		p := pattern.Square()
		for _, e := range p.Edges() {
			if !g.HasEdge(m[e[0]], m[e[1]]) {
				t.Fatalf("reported instance %v missing edge %v", m, e)
			}
		}
	}
}

func TestTrianglesKnownGraphs(t *testing.T) {
	// K4 has 4 triangles; C5 has none; K5 has 10.
	k4 := graph.FromEdges(4, [][2]graph.VertexID{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	if got := CountTriangles(k4); got != 4 {
		t.Errorf("K4 triangles = %d, want 4", got)
	}
	c5 := graph.FromEdges(5, [][2]graph.VertexID{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
	if got := CountTriangles(c5); got != 0 {
		t.Errorf("C5 triangles = %d, want 0", got)
	}
	var k5e [][2]graph.VertexID
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			k5e = append(k5e, [2]graph.VertexID{graph.VertexID(i), graph.VertexID(j)})
		}
	}
	k5 := graph.FromEdges(5, k5e)
	if got := CountTriangles(k5); got != 10 {
		t.Errorf("K5 triangles = %d, want 10", got)
	}
}

func TestTriangleListerMatchesGenericEnumerator(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := gen.ErdosRenyi(300, 2500, seed)
		fast := CountTriangles(g)
		slow := CountInstances(pattern.Triangle(), g)
		if fast != slow {
			t.Fatalf("seed=%d: CountTriangles=%d, enumerator=%d", seed, fast, slow)
		}
	}
}

func TestCliquesOnCompleteGraph(t *testing.T) {
	// K6 contains C(6,k) k-cliques.
	var edges [][2]graph.VertexID
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			edges = append(edges, [2]graph.VertexID{graph.VertexID(i), graph.VertexID(j)})
		}
	}
	k6 := graph.FromEdges(6, edges)
	wants := map[int]int64{3: 20, 4: 15, 5: 6}
	for k, want := range wants {
		if got := CountInstances(pattern.Clique(k), k6); got != want {
			t.Errorf("K6 %d-cliques = %d, want %d", k, got, want)
		}
	}
}

func TestCyclesOnCycleGraph(t *testing.T) {
	// C6 contains exactly one 6-cycle, no 4-cycles, no 5-cycles.
	c6 := graph.FromEdges(6, [][2]graph.VertexID{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})
	if got := CountInstances(pattern.Cycle(6), c6); got != 1 {
		t.Errorf("C6 6-cycles = %d, want 1", got)
	}
	if got := CountInstances(pattern.Cycle(4), c6); got != 0 {
		t.Errorf("C6 4-cycles = %d, want 0", got)
	}
	if got := CountInstances(pattern.Cycle(5), c6); got != 0 {
		t.Errorf("C6 5-cycles = %d, want 0", got)
	}
}

func TestEmbeddingCountIsAutTimesInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5; trial++ {
		b := graph.NewBuilder(12)
		for i := 0; i < 30; i++ {
			b.AddEdge(graph.VertexID(rng.Intn(12)), graph.VertexID(rng.Intn(12)))
		}
		g := b.Build()
		for _, p := range []*pattern.Pattern{pattern.PG1(), pattern.PG2(), pattern.PG3(), pattern.PG4(), pattern.PG5()} {
			inst := CountInstances(p, g)
			raw := EmbeddingCount(p, g)
			if raw != inst*int64(p.NumAutomorphisms()) {
				t.Errorf("%s trial=%d: raw=%d inst=%d aut=%d", p.Name(), trial, raw, inst, p.NumAutomorphisms())
			}
		}
	}
}

func TestListInstancesEarlyStop(t *testing.T) {
	g := gen.ErdosRenyi(100, 800, 1)
	visits := 0
	ListInstances(pattern.Triangle(), g, func([]graph.VertexID) bool {
		visits++
		return visits < 5
	})
	if visits != 5 {
		t.Fatalf("early stop after %d visits, want 5", visits)
	}
}

func TestSingleVertexPattern(t *testing.T) {
	p := pattern.MustNew("v", 1, nil)
	g := gen.ErdosRenyi(50, 100, 1)
	if got := CountInstances(p, g); got != 50 {
		t.Fatalf("single-vertex instances = %d, want |V|=50", got)
	}
}

func TestEdgePattern(t *testing.T) {
	g := figure1Graph()
	// Edge pattern instances = |E| exactly once each.
	if got := CountInstances(pattern.Clique(2), g); got != g.NumEdges() {
		t.Fatalf("edge instances = %d, want %d", got, g.NumEdges())
	}
}

func BenchmarkCountTriangles(b *testing.B) {
	g := gen.ChungLu(20000, 100000, 2.0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CountTriangles(g)
	}
}

func BenchmarkGenericTriangleEnumeration(b *testing.B) {
	g := gen.ErdosRenyi(2000, 10000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CountInstances(pattern.Triangle(), g)
	}
}
