package centralized

import (
	"fmt"
	"sort"

	"psgl/internal/graph"
)

// Motif census oracle: the naive centralized counterpart of internal/esu,
// deliberately built on different machinery so the differential suite checks
// the parallel engine against an independent derivation rather than a second
// copy of itself. Where ESU guarantees each connected k-subgraph is generated
// exactly once (exclusive-neighborhood rule, no dedup), this oracle grows
// connected sets greedily — reaching the same set along many orders — and
// dedupes through an explicit sorted-tuple map. Where ESU canonicalizes with
// degree-sequence refinement, this oracle takes the minimum over all k!
// permutations. Both must produce the same histogram.

// maxCensusK bounds the oracle's subgraph size (matches esu.MaxK; the [5]
// tuple key and the k! canonicalization assume it).
const maxCensusK = 5

// MotifCensus counts every connected induced k-vertex subgraph of g, grouped
// by isomorphism class. The returned histogram maps CanonicalSubgraphCode
// keys to class counts; total is the number of subgraphs (the histogram's
// sum). Intended for small graphs only: the set-growing enumeration revisits
// each subgraph once per connected build order and relies on a dedup map.
func MotifCensus(g *graph.Graph, k int) (hist map[uint32]int64, total int64) {
	if k < 2 || k > maxCensusK {
		panic(fmt.Sprintf("centralized: census size %d out of range [2,%d]", k, maxCensusK))
	}
	hist = make(map[uint32]int64)
	seen := make(map[[maxCensusK]graph.VertexID]struct{})
	n := g.NumVertices()
	set := make([]graph.VertexID, 0, k)
	inSet := make(map[graph.VertexID]bool, k)

	var grow func(root graph.VertexID)
	grow = func(root graph.VertexID) {
		if len(set) == k {
			var key [maxCensusK]graph.VertexID
			copy(key[:], set)
			sort.Slice(key[:k], func(i, j int) bool { return key[i] < key[j] })
			if _, dup := seen[key]; dup {
				return
			}
			seen[key] = struct{}{}
			var code uint32
			bit := 0
			for i := 0; i < k; i++ {
				for j := i + 1; j < k; j++ {
					if g.HasEdge(key[i], key[j]) {
						code |= 1 << uint(bit)
					}
					bit++
				}
			}
			hist[CanonicalSubgraphCode(k, code)]++
			total++
			return
		}
		// Extend by any neighbor of any set member, above the root (so every
		// subgraph is rooted at its minimum vertex, bounding the dedup map's
		// churn per root).
		for _, v := range set {
			for _, u := range g.Neighbors(v) {
				if u <= root || inSet[u] {
					continue
				}
				set = append(set, u)
				inSet[u] = true
				grow(root)
				set = set[:len(set)-1]
				inSet[u] = false
			}
		}
	}
	for v := 0; v < n; v++ {
		root := graph.VertexID(v)
		set = append(set[:0], root)
		inSet[root] = true
		grow(root)
		inSet[root] = false
	}
	return hist, total
}

// CanonicalSubgraphCode returns the minimum upper-triangle adjacency code of
// the k-vertex subgraph encoded by code over all k! vertex permutations —
// the oracle's brute-force canonical form. Pair {i,j} (i<j) occupies bit
// i's lexicographic pair index, matching internal/esu's encoding, so esu
// class representatives can be re-canonicalized through this function for
// histogram comparison.
func CanonicalSubgraphCode(k int, code uint32) uint32 {
	if k < 2 || k > maxCensusK {
		panic(fmt.Sprintf("centralized: census size %d out of range [2,%d]", k, maxCensusK))
	}
	// Pair-bit table for this k.
	var pairBit [maxCensusK][maxCensusK]int
	bit := 0
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			pairBit[i][j] = bit
			pairBit[j][i] = bit
			bit++
		}
	}
	perm := make([]int, k)
	for i := range perm {
		perm[i] = i
	}
	best := ^uint32(0)
	var rec func(i int)
	rec = func(i int) {
		if i == k {
			var c uint32
			for a := 0; a < k; a++ {
				for b := a + 1; b < k; b++ {
					if code&(1<<uint(pairBit[perm[a]][perm[b]])) != 0 {
						c |= 1 << uint(pairBit[a][b])
					}
				}
			}
			if c < best {
				best = c
			}
			return
		}
		for j := i; j < k; j++ {
			perm[i], perm[j] = perm[j], perm[i]
			rec(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	rec(0)
	return best
}
