// Package centralized implements single-machine subgraph listing: a generic
// ordered backtracking enumerator and a Chiba–Nishizeki-style triangle
// lister. These are the "centralized algorithms" of the paper's related work
// (Section 2) and serve three roles in this reproduction: the correctness
// oracle every parallel engine is checked against, the GraphChi stand-in of
// Table 3 (one machine, no parallelism), and the local enumeration kernel the
// Afrati reducers reuse.
package centralized

import (
	"fmt"

	"psgl/internal/graph"
	"psgl/internal/pattern"
)

// CountInstances enumerates the subgraph instances of p in g by backtracking
// and returns their number. The pattern's symmetry-breaking partial order is
// honored against g's degree ranking, so each instance is counted exactly
// once; for a pattern without constraints the count equals embeddings/|Aut|
// only if the pattern is asymmetric.
func CountInstances(p *pattern.Pattern, g *graph.Graph) int64 {
	var count int64
	ListInstances(p, g, func([]graph.VertexID) bool {
		count++
		return true
	})
	return count
}

// ListInstances enumerates instances and calls emit with the mapping
// (emit's slice is reused; copy to retain). Enumeration stops early when
// emit returns false.
//
// The search assigns pattern vertices in a connectivity-aware static order
// and, for every vertex after the first, draws candidates from the adjacency
// of an already-mapped neighbor — the same traversal-based candidate
// generation PSgL performs, minus the parallelism.
func ListInstances(p *pattern.Pattern, g *graph.Graph, emit func([]graph.VertexID) bool) {
	ListInstancesLabeled(p, g, nil, emit)
}

// ListInstancesLabeled is ListInstances for labeled subgraph matching:
// dataLabels carries one label per data vertex, and a data vertex only maps
// to a pattern vertex with the same label. A nil dataLabels means unlabeled
// listing.
func ListInstancesLabeled(p *pattern.Pattern, g *graph.Graph, dataLabels []int32, emit func([]graph.VertexID) bool) {
	ord := graph.NewOrdered(g)
	enum := newEnumerator(p, g, ord)
	enum.dataLabels = dataLabels
	enum.run(emit)
}

// CountInstancesLabeled counts labeled matches (see ListInstancesLabeled).
func CountInstancesLabeled(p *pattern.Pattern, g *graph.Graph, dataLabels []int32) int64 {
	var count int64
	ListInstancesLabeled(p, g, dataLabels, func([]graph.VertexID) bool {
		count++
		return true
	})
	return count
}

type enumerator struct {
	p          *pattern.Pattern
	g          *graph.Graph
	ord        *graph.Ordered
	dataLabels []int32 // nil = unlabeled
	order      []int   // pattern vertices in assignment order
	// anchor[i] is a pattern neighbor of order[i] that appears earlier in the
	// order (-1 for the first vertex); candidates come from its image.
	anchor  []int
	mapping []graph.VertexID
	mapped  []bool
	used    map[graph.VertexID]bool
}

func newEnumerator(p *pattern.Pattern, g *graph.Graph, ord *graph.Ordered) *enumerator {
	n := p.N()
	e := &enumerator{
		p:       p,
		g:       g,
		ord:     ord,
		mapping: make([]graph.VertexID, n),
		mapped:  make([]bool, n),
		used:    make(map[graph.VertexID]bool, n),
	}
	// Assignment order: start anywhere (vertex 0), then repeatedly take an
	// unordered vertex adjacent to the ordered prefix (pattern is connected).
	inOrder := make([]bool, n)
	e.order = append(e.order, 0)
	e.anchor = append(e.anchor, -1)
	inOrder[0] = true
	for len(e.order) < n {
		for v := 0; v < n; v++ {
			if inOrder[v] {
				continue
			}
			a := -1
			for _, u := range p.Neighbors(v) {
				if inOrder[u] {
					a = u
					break
				}
			}
			if a >= 0 {
				e.order = append(e.order, v)
				e.anchor = append(e.anchor, a)
				inOrder[v] = true
			}
		}
	}
	return e
}

func (e *enumerator) run(emit func([]graph.VertexID) bool) {
	e.rec(0, emit)
}

// rec assigns the i-th pattern vertex in the order; returns false to stop.
func (e *enumerator) rec(i int, emit func([]graph.VertexID) bool) bool {
	if i == e.p.N() {
		return emit(e.mapping)
	}
	v := e.order[i]
	try := func(d graph.VertexID) bool {
		if e.used[d] || e.g.Degree(d) < e.p.Degree(v) {
			return true
		}
		if e.dataLabels != nil && int(e.dataLabels[d]) != e.p.Label(v) {
			return true
		}
		for u := 0; u < e.p.N(); u++ {
			if !e.mapped[u] {
				continue
			}
			if e.p.HasEdge(v, u) && !e.g.HasEdge(d, e.mapping[u]) {
				return true
			}
			if e.p.MustPrecede(v, u) && !e.ord.Less(d, e.mapping[u]) {
				return true
			}
			if e.p.MustPrecede(u, v) && !e.ord.Less(e.mapping[u], d) {
				return true
			}
		}
		e.mapping[v] = d
		e.mapped[v] = true
		e.used[d] = true
		ok := e.rec(i+1, emit)
		e.used[d] = false
		e.mapped[v] = false
		return ok
	}
	if e.anchor[i] < 0 {
		for d := 0; d < e.g.NumVertices(); d++ {
			if !try(graph.VertexID(d)) {
				return false
			}
		}
		return true
	}
	for _, d := range e.g.Neighbors(e.mapping[e.anchor[i]]) {
		if !try(d) {
			return false
		}
	}
	return true
}

// CountTriangles lists triangles with the ordered-neighbor intersection
// method of Chiba–Nishizeki (as refined for power-law graphs): each triangle
// {a,b,c} is found exactly once at its lowest-ranked vertex. Runs in
// O(Σ_v nb(v)²) ⊆ O(α(G)·m).
func CountTriangles(g *graph.Graph) int64 {
	ord := graph.NewOrdered(g)
	n := g.NumVertices()
	// higher[v] = neighbors of v ranked above v, pre-filtered once.
	higher := make([][]graph.VertexID, n)
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(graph.VertexID(v)) {
			if ord.Less(graph.VertexID(v), u) {
				higher[v] = append(higher[v], u)
			}
		}
	}
	var count int64
	mark := make([]bool, n)
	for v := 0; v < n; v++ {
		for _, u := range higher[v] {
			mark[u] = true
		}
		for _, u := range higher[v] {
			for _, w := range higher[u] {
				if mark[w] {
					count++
				}
			}
		}
		for _, u := range higher[v] {
			mark[u] = false
		}
	}
	return count
}

// EmbeddingCount counts injective edge-preserving maps of p into g ignoring
// any partial order — the raw count, |instances| × |Aut(p)|. Exposed for
// cross-checks and the automorphism-breaking ablation.
func EmbeddingCount(p *pattern.Pattern, g *graph.Graph) int64 {
	stripped, err := pattern.New(p.Name()+"-raw", p.N(), p.Edges())
	if err != nil {
		panic(fmt.Sprintf("centralized: re-deriving pattern: %v", err))
	}
	return CountInstances(stripped, g)
}
