package stream

import (
	"math"
	"testing"

	"psgl/internal/centralized"
	"psgl/internal/gen"
	"psgl/internal/graph"
)

func TestEstimateWithinTolerance(t *testing.T) {
	g := gen.ChungLu(5000, 25000, 2.0, 3)
	exact := float64(centralized.CountTriangles(g))
	if exact < 100 {
		t.Fatalf("test graph too sparse: %v triangles", exact)
	}
	// Average several seeds: the estimator is unbiased, so the mean should
	// land within a loose relative band at 20k samples.
	var sum float64
	const runs = 8
	for seed := int64(0); seed < runs; seed++ {
		est, err := EstimateTriangles(g, 20000, seed)
		if err != nil {
			t.Fatal(err)
		}
		sum += est.Estimate
	}
	mean := sum / runs
	if rel := math.Abs(mean-exact) / exact; rel > 0.25 {
		t.Fatalf("mean estimate %.0f vs exact %.0f: off by %.0f%%", mean, exact, 100*rel)
	}
}

func TestAccuracyImprovesWithSamples(t *testing.T) {
	g := gen.ChungLu(4000, 20000, 1.9, 5)
	exact := float64(centralized.CountTriangles(g))
	spread := func(k int) float64 {
		var errSum float64
		const runs = 10
		for seed := int64(0); seed < runs; seed++ {
			est, err := EstimateTriangles(g, k, seed)
			if err != nil {
				t.Fatal(err)
			}
			errSum += math.Abs(est.Estimate - exact)
		}
		return errSum / runs
	}
	small, large := spread(300), spread(30000)
	t.Logf("mean abs error: k=300 -> %.0f, k=30000 -> %.0f (exact %.0f)", small, large, exact)
	if large >= small {
		t.Errorf("more samples did not improve accuracy: %.0f -> %.0f", small, large)
	}
}

func TestTriangleFreeGraphEstimatesZero(t *testing.T) {
	// A cycle has wedges but no triangles: every sampled wedge is open.
	n := 1000
	edges := make([][2]graph.VertexID, n)
	for i := 0; i < n; i++ {
		edges[i] = [2]graph.VertexID{graph.VertexID(i), graph.VertexID((i + 1) % n)}
	}
	g := graph.FromEdges(n, edges)
	est, err := EstimateTriangles(g, 5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if est.Estimate != 0 {
		t.Fatalf("estimate %f on a triangle-free graph", est.Estimate)
	}
	if est.Wedges != float64(n) { // each vertex centers exactly one wedge
		t.Fatalf("wedge total %f, want %d", est.Wedges, n)
	}
}

func TestInvalidInputs(t *testing.T) {
	if _, err := EstimateTriangles(nil, 10, 1); err == nil {
		t.Error("nil graph accepted")
	}
	g := gen.ErdosRenyi(10, 20, 1)
	if _, err := EstimateTriangles(g, 0, 1); err == nil {
		t.Error("zero samples accepted")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(5).Build()
	est, err := EstimateTriangles(g, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if est.Estimate != 0 || est.Samples != 0 || est.Wedges != 0 {
		t.Fatalf("empty graph produced %+v", est)
	}
}

func TestWedgeTotalMatchesDegreeSum(t *testing.T) {
	// Σ C(deg(v), 2) over all vertices must equal the streamed wedge total.
	g := gen.ErdosRenyi(500, 3000, 7)
	est, err := EstimateTriangles(g, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for v := 0; v < g.NumVertices(); v++ {
		d := float64(g.Degree(graph.VertexID(v)))
		want += d * (d - 1) / 2
	}
	if est.Wedges != want {
		t.Fatalf("wedge total %f, want %f", est.Wedges, want)
	}
}

func BenchmarkEstimateTriangles(b *testing.B) {
	g := gen.ChungLu(20000, 100000, 1.8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EstimateTriangles(g, 10000, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
