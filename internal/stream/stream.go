// Package stream implements the third family of the paper's related work
// (Section 2): streaming/approximate subgraph counting in the style of
// Buriol et al. ("Counting triangles in data streams", PODS 2006). These
// methods process the edge stream in one pass with bounded memory and return
// an *estimate* of the triangle count; the paper's criticism — which this
// package makes measurable — is that they "cannot list all the isomorphic
// subgraph instances" and that downstream work on approximate counts risks
// inaccurate conclusions. The accuracy/space trade-off is exercised in the
// tests against the exact listers.
package stream

import (
	"fmt"
	"math/rand"

	"psgl/internal/graph"
)

// TriangleEstimate is the outcome of one streaming pass.
type TriangleEstimate struct {
	// Estimate of the triangle count.
	Estimate float64
	// Samples is the number of wedge samples maintained (the memory bound).
	Samples int
	// Edges is the stream length |E|.
	Edges int64
	// Wedges is the total number of wedges (paths of length 2) implied by
	// the degree stream, the scaling denominator.
	Wedges float64
	// HitRate is the fraction of sampled wedges that were closed.
	HitRate float64
}

// EstimateTriangles runs a one-pass wedge-sampling estimator over the edge
// stream of g with a fixed budget of k wedge samples:
//
//  1. Pass over the stream, reservoir-sampling k uniform wedges (pairs of
//     adjacent edges) using per-vertex degree counts accumulated so far.
//  2. Check which sampled wedges are closed by a later (or earlier) edge.
//  3. Scale: triangles ≈ closed-fraction × total-wedges / 3, since each
//     triangle closes exactly three wedges.
//
// For determinism the check phase consults the finished graph (equivalent to
// buffering the wedge endpoints and matching them against the remainder of
// the stream). Accuracy improves with k roughly as 1/√k.
func EstimateTriangles(g *graph.Graph, k int, seed int64) (*TriangleEstimate, error) {
	if g == nil {
		return nil, fmt.Errorf("stream: nil graph")
	}
	if k < 1 {
		return nil, fmt.Errorf("stream: need at least one wedge sample, got %d", k)
	}
	rng := rand.New(rand.NewSource(seed))

	// First pass: stream edges; maintain per-vertex running degrees and
	// reservoir-sample wedges. When edge (u,v) arrives, it forms newWedges =
	// deg(u)+deg(v) wedges with the edges already seen; each is sampled with
	// the standard reservoir rule over the running wedge total.
	type wedge struct{ a, center, b graph.VertexID }
	reservoir := make([]wedge, 0, k)
	var wedgeTotal float64
	deg := make([]int32, g.NumVertices())
	// adjSoFar records, per vertex, the neighbors seen so far in stream
	// order so a sampled wedge can name its endpoints.
	adjSoFar := make([][]graph.VertexID, g.NumVertices())

	g.Edges(func(u, v graph.VertexID) bool {
		newWedges := int(deg[u]) + int(deg[v])
		for i := 0; i < newWedges; i++ {
			wedgeTotal++
			var w wedge
			if i < int(deg[u]) {
				w = wedge{a: adjSoFar[u][i], center: u, b: v}
			} else {
				w = wedge{a: adjSoFar[v][i-int(deg[u])], center: v, b: u}
			}
			if len(reservoir) < k {
				reservoir = append(reservoir, w)
			} else if rng.Float64() < float64(k)/wedgeTotal {
				reservoir[rng.Intn(k)] = w
			}
		}
		deg[u]++
		deg[v]++
		adjSoFar[u] = append(adjSoFar[u], v)
		adjSoFar[v] = append(adjSoFar[v], u)
		return true
	})

	est := &TriangleEstimate{
		Samples: len(reservoir),
		Edges:   g.NumEdges(),
		Wedges:  wedgeTotal,
	}
	if len(reservoir) == 0 {
		return est, nil
	}
	closed := 0
	for _, w := range reservoir {
		if g.HasEdge(w.a, w.b) {
			closed++
		}
	}
	est.HitRate = float64(closed) / float64(len(reservoir))
	est.Estimate = est.HitRate * wedgeTotal / 3
	return est, nil
}
