package core

import (
	"fmt"
	"sort"
	"testing"

	"psgl/internal/bsp"
	"psgl/internal/gen"
	"psgl/internal/pattern"
)

// TestAsyncDifferentialMatchesStrict pins the tentpole's core promise: the
// pipelined async exchange produces the exact same embedding multiset — not
// just the same count — as strict barriered BSP, across skewed Chung–Lu
// graphs, three patterns, all three distribution strategies, and both
// transports. Strict mode is the oracle.
func TestAsyncDifferentialMatchesStrict(t *testing.T) {
	patterns := []*pattern.Pattern{pattern.PG1(), pattern.PG3(), pattern.PG5()}
	strategies := []Strategy{StrategyRandom, StrategyRoulette, StrategyWorkloadAware}
	exchanges := []struct {
		name    string
		factory bsp.ExchangeFactory
		workers int
	}{
		{"local", nil, 4},
		{"tcp", bsp.NewTCPExchangeFactory(), 3},
	}

	seeds := []int64{1, 2}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		g := gen.ChungLu(70, 300, 2.3, seed)
		for _, p := range patterns {
			for _, strat := range strategies {
				for _, ex := range exchanges {
					if testing.Short() && ex.name == "tcp" && strat != StrategyWorkloadAware {
						continue
					}
					name := fmt.Sprintf("seed%d/%s/%s/%s", seed, p.Name(), strat, ex.name)
					t.Run(name, func(t *testing.T) {
						base := Options{
							Workers:  ex.workers,
							Strategy: strat,
							Seed:     seed,
							Collect:  true,
						}
						strictRes, err := Run(g, p, base)
						if err != nil {
							t.Fatal(err)
						}
						asyncOpts := base
						asyncOpts.Exchange = ex.factory
						asyncOpts.AsyncExchange = true
						asyncRes, err := Run(g, p, asyncOpts)
						if err != nil {
							t.Fatal(err)
						}
						if strictRes.Count != asyncRes.Count {
							t.Fatalf("counts diverge: strict=%d async=%d",
								strictRes.Count, asyncRes.Count)
						}
						want := make([]string, 0, len(strictRes.Instances))
						for _, inst := range strictRes.Instances {
							want = append(want, embeddingKey(inst))
						}
						got := make([]string, 0, len(asyncRes.Instances))
						for _, inst := range asyncRes.Instances {
							got = append(got, embeddingKey(inst))
						}
						sort.Strings(want)
						sort.Strings(got)
						if len(got) != len(want) {
							t.Fatalf("%d async embeddings, strict has %d", len(got), len(want))
						}
						for i := range want {
							if got[i] != want[i] {
								t.Fatalf("embedding multiset diverges at #%d: async %q, strict %q",
									i, got[i], want[i])
							}
						}
					})
				}
			}
		}
	}
}

// TestAsyncRecoveryCountsExact: an async run whose frames are killed by a
// schedule, recovered via quiescence checkpoints, must still report the
// strict run's exact count — the exactly-once guarantee carries over from
// barriers to quiescence points.
func TestAsyncRecoveryCountsExact(t *testing.T) {
	g := gen.ChungLu(70, 300, 2.3, 7)
	p := pattern.PG3()
	strictRes, err := Run(g, p, Options{Workers: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	factory := bsp.NewScheduledFaultExchangeFactory(nil, []bsp.StepFault{
		{Step: 2, Kind: bsp.StepFaultKill, Worker: 1},
		{Step: 2, Kind: bsp.StepFaultKill, Worker: 1},
		{Step: 3, Kind: bsp.StepFaultDrop},
		{Step: 3, Kind: bsp.StepFaultDrop},
	})
	asyncRes, err := Run(g, p, Options{
		Workers:         3,
		Seed:            7,
		Exchange:        factory,
		AsyncExchange:   true,
		Retry:           bsp.RetryPolicy{MaxAttempts: 2, BaseBackoff: 100e3, MaxBackoff: 2e6},
		CheckpointEvery: 1,
		CheckpointStore: bsp.NewMemCheckpointStore(),
		MaxRecoveries:   6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if strictRes.Count != asyncRes.Count {
		t.Fatalf("recovered async count %d != strict %d (recoveries=%d)",
			asyncRes.Count, strictRes.Count, asyncRes.Stats.Recoveries)
	}
}
