package core

import (
	"math"

	"psgl/internal/stats"
)

// chooseNext implements Algorithm 3: given the GRAY candidates of a freshly
// generated Gpsi, pick the next expanding pattern vertex (which fixes the
// destination worker, since the Gpsi travels to the owner of its mapped data
// vertex).
func (e *engine) chooseNext(worker int, m *gpsi, grays []int) int {
	if len(grays) == 1 {
		// Still account the load for the workload-aware view.
		if e.opts.Strategy == StrategyWorkloadAware {
			k := grays[0]
			w := e.expandCost(m, k)
			e.wviews[worker][e.part.Owner(m.Map[k])] += w
		}
		return grays[0]
	}
	switch e.opts.Strategy {
	case StrategyRoulette:
		return e.chooseRoulette(worker, m, grays)
	case StrategyWorkloadAware:
		return e.chooseWorkloadAware(worker, m, grays)
	default:
		return grays[e.rngs[worker].intn(len(grays))]
	}
}

// expandCost is the cost-model estimate of expanding GRAY vertex k:
// w = C(deg(v_d), #WHITE neighbors of k), the upper bound on the number of
// child Gpsis (Section 5.1.1). Capped to keep the arithmetic finite.
func (e *engine) expandCost(m *gpsi, k int) float64 {
	whiteCount := 0
	for _, u := range e.p.Neighbors(k) {
		if !m.isMapped(u) {
			whiteCount++
		}
	}
	c := stats.Binomial(e.g.Degree(m.Map[k]), whiteCount)
	if math.IsInf(c, 1) || c > 1e15 {
		c = 1e15
	}
	if c < 1 {
		c = 1
	}
	return c
}

// chooseRoulette implements the roulette-wheel strategy of Section 5.1.2:
// GRAY vertex k is chosen with probability
// p_k = Π_{j≠k} deg(v_dj) / Σ_i Π_{j≠i} deg(v_dj), which simplifies to
// weights 1/deg(v_dk) — smaller-degree data vertices expand more Gpsis
// (Heuristic 1).
func (e *engine) chooseRoulette(worker int, m *gpsi, grays []int) int {
	var total float64
	sc := &e.scratch[worker]
	weights := sc.weights[:0]
	for _, k := range grays {
		d := e.g.Degree(m.Map[k])
		if d < 1 {
			d = 1
		}
		w := 1 / float64(d)
		weights = append(weights, w)
		total += w
	}
	sc.weights = weights // keep the grown buffer for the next draw
	r := e.rngs[worker].float64v() * total
	for i, w := range weights {
		if r <= w {
			return grays[i]
		}
		r -= w
	}
	return grays[len(grays)-1]
}

// chooseWorkloadAware implements the workload-aware strategy of Section
// 5.1.1: pick argmin_k { W_j^α + w_ik } where j = owner(map(k)), using this
// worker's local view of every worker's accumulated load (the paper keeps
// the view local to avoid global synchronization, Section 6), then charge
// the chosen worker's view.
func (e *engine) chooseWorkloadAware(worker int, m *gpsi, grays []int) int {
	view := e.wviews[worker]
	alpha := e.opts.Alpha
	best, bestScore, bestCost := -1, math.Inf(1), 0.0
	for _, k := range grays {
		j := e.part.Owner(m.Map[k])
		cost := e.expandCost(m, k)
		score := math.Pow(view[j], alpha) + cost
		if score < bestScore {
			best, bestScore, bestCost = k, score, cost
		}
	}
	view[e.part.Owner(m.Map[best])] += bestCost
	return best
}
