package core

import (
	"errors"
	"fmt"
	"time"

	"psgl/internal/bsp"
	"psgl/internal/graph"
	"psgl/internal/obs"
)

// Strategy selects how new partial subgraph instances choose their next
// expanding vertex — and therefore which worker receives them (Section 5.1).
type Strategy int

const (
	// StrategyWorkloadAware picks the GRAY vertex minimizing W_j^α + w_ij
	// over each worker's local view of all workers' accumulated load, with
	// w_ij = C(deg(v_d), #WHITE neighbors) (Section 5.1.1). α = 0.5 is the
	// paper's recommended balance/greed trade-off (Theorem 3). This is the
	// zero value, i.e. the default.
	StrategyWorkloadAware Strategy = iota
	// StrategyRandom picks a GRAY vertex uniformly at random.
	StrategyRandom
	// StrategyRoulette picks GRAY vertex k with probability inversely
	// proportional to deg(map(k)) (Equation 6): high-degree data vertices
	// expand fewer Gpsis (Heuristic 1).
	StrategyRoulette
)

// String names the strategy the way the paper's figures do.
func (s Strategy) String() string {
	switch s {
	case StrategyRandom:
		return "Random"
	case StrategyRoulette:
		return "Roulette"
	case StrategyWorkloadAware:
		return "WA"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ErrOutOfMemory reports that the run exceeded Options.MaxIntermediate
// partial subgraph instances — the reproduction's deterministic analogue of
// the JVM OutOfMemory failures in Tables 2 and 4.
var ErrOutOfMemory = errors.New("psgl: intermediate result budget exceeded (OOM)")

// Options configures a PSgL run. The zero value is valid: 4 workers, the
// workload-aware strategy with α = 0.5, edge index enabled at 10 bits/edge,
// automatic initial-vertex selection, no memory budget.
type Options struct {
	// Workers is the number of BSP workers K. 0 means 4.
	Workers int
	// Strategy is the Gpsi distribution strategy.
	Strategy Strategy
	// Alpha is the workload-aware penalty exponent in (0, 1]. Zero or
	// negative means the default 0.5 (pass a small epsilon like 0.001 to
	// study the α→0 extreme). Ignored by other strategies.
	Alpha float64
	// DisableEdgeIndex turns off the bloom edge index (the "w/o index"
	// configuration of Table 2): candidates are not cross-checked against
	// GRAY neighbors at generation time, so every such edge stays pending
	// until an endpoint expands.
	DisableEdgeIndex bool
	// BloomBitsPerEdge sizes the edge index. 0 means 10.
	BloomBitsPerEdge int
	// DisableBitsetAnd turns off the bitset AND candidate fast path (the
	// "w/o bitset" benchmark configuration): candidate generation between hub
	// vertices always walks the adjacency merge path with approximate bloom
	// filtering. Counts are identical either way — the fast path is an exact
	// filter whose rejects the pending-edge verification would prune later.
	DisableBitsetAnd bool
	// BitmapMinDegree overrides the hub-degree threshold of the bitmap index
	// (exact edge verification and the bitset AND candidate fast path both
	// key off it). 0 keeps the default max(256, |V|/32); lower it to widen
	// the bitset fast path on dense graphs at the cost of index memory.
	BitmapMinDegree int
	// InitialVertex fixes the initial pattern vertex. Negative (or zero
	// value via NewOptions) selects automatically: the Theorem 5 rule for
	// cycles and cliques, the Algorithm 4 cost model otherwise.
	InitialVertex int
	// MaxIntermediate aborts with ErrOutOfMemory once the total number of
	// generated Gpsis exceeds it. 0 means unlimited.
	MaxIntermediate int64
	// Seed drives the partition and the randomized strategies.
	Seed int64
	// Collect retains the full instance mappings in Result.Instances (only
	// sensible for small result sets; counting is the default, as in the
	// paper's experiments).
	Collect bool
	// DataLabels, when non-nil, carries one label per data vertex and
	// switches the engine from subgraph listing to labeled subgraph
	// matching: a data vertex is only a candidate for a pattern vertex with
	// the same label. The pattern must carry labels too (Pattern.WithLabels)
	// and vice versa.
	DataLabels []int32
	// OnInstance, when non-nil, streams each found instance's mapping
	// (pattern vertex -> data vertex) as it is emitted, without retaining
	// it. The callback runs concurrently on worker goroutines and must be
	// safe for concurrent use; the slice is only valid during the call —
	// copy it to keep it.
	OnInstance func(mapping []graph.VertexID)
	// DisableAutomorphismBreaking skips symmetry breaking (ablation only:
	// every instance is then found |Aut| times).
	DisableAutomorphismBreaking bool
	// PlannedPattern declares that the pattern already carries its
	// symmetry-breaking partial order (i.e. it came from BreakAutomorphisms,
	// possibly via a plan cache): the engine uses it as-is instead of
	// recomputing the orders per run. Pair it with InitialVertex from the
	// same plan to skip per-run initial-vertex selection entirely — the
	// serving layer's plan-reuse path. Ignored when
	// DisableAutomorphismBreaking is set.
	PlannedPattern bool
	// Seeds, when non-empty, switches the run from whole-graph enumeration to
	// seeded enumeration: instead of every eligible data vertex hosting the
	// initial pattern vertex, each seed pins a set of pattern vertices to
	// concrete data vertices and expansion proceeds only from those partial
	// instances. Pinned-pinned pattern edges are verified eagerly at seeding
	// time; seeds violating a degree, label, order, or edge constraint are
	// dropped (counted in the pruning breakdown), while structurally malformed
	// seeds (out of range, non-injective) fail the run up front. Every
	// completion of every seed is found exactly once, but distinct seeds can
	// reach the same embedding — dedup across seeds is the caller's job (the
	// delta enumerator does it with EmitFilter). InitialVertex is ignored.
	// This is the anchored-enumeration primitive behind internal/delta.
	Seeds []Seed
	// EmitFilter, when non-nil, is consulted for every complete, fully
	// verified embedding just before it is counted: returning false drops the
	// embedding (counted as PrunedByFilter) from Count, Collect, OnInstance,
	// and MaxResults alike. The callback runs concurrently on worker
	// goroutines and must be safe for concurrent use; the mapping slice is
	// only valid during the call. The filter must be deterministic — it runs
	// again on replayed supersteps after a recovery.
	EmitFilter func(mapping []graph.VertexID) bool
	// IdentityOrder replaces the degree-based vertex total order of Section 3
	// with the vertex-id order. Counts are identical under any total order;
	// the canonical representative chosen per automorphism class is not.
	// Delta maintenance runs under this order because it is stable across
	// edge mutations, keeping standing embeddings byte-comparable between
	// epochs (the degree order can reshuffle after a single edge flip). It
	// also skips the O(V log V) ordering sort — per-run setup that matters
	// when small update batches spin up many short runs.
	IdentityOrder bool
	// MaxResults stops the run early once this many instances have been
	// found (0 = unlimited). The stop is cooperative: workers finish their
	// current message, so slightly more than MaxResults instances may be
	// counted before the run winds down. An early-stopped run returns
	// success with Result.Truncated set — the streaming `limit` fast path.
	MaxResults int64
	// LocalExpansion enables the non-level-synchronous mode Section 4.2
	// permits ("PSgL may not guarantee that each Gpsi is expanded in the
	// same pace"): a new Gpsi whose chosen expansion vertex is owned by the
	// current worker is expanded immediately, in the same superstep, instead
	// of being enqueued for the next one. Results are identical; supersteps
	// and message volume drop, at the cost of coarser balance feedback.
	LocalExpansion bool
	// MaxSupersteps bounds the BSP run. 0 means the bsp default.
	MaxSupersteps int
	// Exchange overrides the BSP message exchange (e.g.
	// bsp.NewTCPExchangeFactory() for loopback-TCP distribution,
	// bsp.NewFaultyExchangeFactory for fault-injected recovery testing).
	Exchange bsp.ExchangeFactory
	// AsyncExchange runs the BSP substrate in pipelined async mode: workers
	// flush fixed-size Gpsi frames as they are produced, receivers expand
	// them as they arrive, and termination is detected by credit/ack
	// accounting instead of barriers. Counts are bit-identical to strict
	// mode (the engine's enumeration is processing-order independent; the
	// differential suites pin it) — except under MaxResults, where the early
	// stop lands on a different processing prefix, so the truncated count
	// may differ between modes. StepTimeout does not apply in async mode,
	// and checkpoints snapshot at quiescence points instead of barriers.
	AsyncExchange bool
	// CompressFrames front-codes Gpsi batches: messages sharing a mapped-vertex
	// prefix are sorted and shipped as prefix-compressed frames, kept encoded
	// in the inbox until expansion, and expanded group-wise (candidate bases
	// hoisted across messages sharing an expansion point). Counts are
	// bit-identical to flat mode — the differential suites pin it — but the
	// pruning-counter breakdown may differ (shared work is counted once, and
	// group expansion always takes the merge path). In async mode only the TCP
	// wire format changes (batches are never held encoded); with an in-process
	// async exchange it is a no-op.
	CompressFrames bool

	// Fault tolerance (mirrors the Giraph substrate's barrier-aligned
	// checkpointing, Section 6). Counts and counters are exact across
	// retries, recoveries, and resumes; Collect and OnInstance, however, see
	// at-least-once delivery when a recovery replays supersteps (duplicate
	// instances possible) and a resumed run only observes post-resume
	// instances — use Result.Count, not len(Result.Instances), whenever
	// recovery is enabled.

	// StepTimeout bounds each superstep (compute plus exchange). 0 = none.
	StepTimeout time.Duration
	// Retry wraps every superstep exchange in bounded exponential backoff.
	Retry bsp.RetryPolicy
	// CheckpointEvery > 0 snapshots the BSP state into CheckpointStore at
	// every Nth superstep barrier.
	CheckpointEvery int
	// CheckpointStore receives the snapshots (e.g. bsp.NewMemCheckpointStore
	// or bsp.NewFileCheckpointStore); required when CheckpointEvery > 0.
	CheckpointStore bsp.CheckpointStore
	// ResumeFrom, when non-nil, resumes the run from the latest snapshot in
	// the store instead of starting from scratch (an empty store falls back
	// to a fresh start).
	ResumeFrom bsp.CheckpointStore
	// MaxRecoveries is how many failed supersteps may be recovered in-run by
	// rebuilding the exchange and restoring the latest checkpoint. 0
	// disables in-run recovery.
	MaxRecoveries int
	// Observer receives the run's metrics and trace events: superstep
	// timings, message and transport volume, checkpoint/recovery events, and
	// — at run end — the engine counters and per-worker loads that Stats is
	// built from, so the observer's logical view matches Stats bit-for-bit
	// on clean, recovered, and resumed runs alike. Nil disables observation
	// at zero cost.
	Observer *obs.Observer
}

// Seed pins pattern vertices to concrete data vertices before expansion
// begins — one partial instance the run grows instead of seeding from every
// data vertex. The two slices are parallel: PatternVertices[i] is mapped to
// DataVertices[i]. Both sides must be injective and in range.
type Seed struct {
	PatternVertices []int
	DataVertices    []graph.VertexID
}

// NewOptions returns the defaults spelled out explicitly.
func NewOptions() Options {
	return Options{
		Workers:          4,
		Strategy:         StrategyWorkloadAware,
		Alpha:            0.5,
		BloomBitsPerEdge: 10,
		InitialVertex:    -1,
	}
}

func (o Options) normalized() Options {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Alpha <= 0 {
		o.Alpha = 0.5
	}
	if o.Alpha > 1 {
		o.Alpha = 1
	}
	if o.BloomBitsPerEdge <= 0 {
		o.BloomBitsPerEdge = 10
	}
	return o
}

// Stats aggregates the run metrics the paper's evaluation reports.
type Stats struct {
	// Supersteps is S of Equation 3 (includes the initialization step).
	Supersteps int
	// GpsiGenerated counts every partial subgraph instance created — the
	// "Gpsi#" column of Table 2.
	GpsiGenerated int64
	// GpsiProcessed counts expansion calls.
	GpsiProcessed int64
	// InlineExpansions counts Gpsis expanded in place under LocalExpansion
	// (a subset of GpsiGenerated that never crossed a superstep barrier).
	InlineExpansions int64
	// Pruning breakdown (Algorithm 5 and GRAY verification).
	PrunedByDegree      int64
	PrunedByOrder       int64
	PrunedByIndex       int64
	PrunedByInjectivity int64
	PrunedByVerify      int64
	PrunedByLabel       int64
	// PrunedByFilter counts complete embeddings dropped by Options.EmitFilter.
	PrunedByFilter int64
	// EdgeIndexQueries counts bloom lookups.
	EdgeIndexQueries int64
	// BitsetAndCandidates counts candidate generations served by the bitset
	// AND fast path (hub × hub row intersections) instead of the merge path.
	BitsetAndCandidates int64
	// Compressed-mode counters (zero with CompressFrames off). Logical views
	// fed when frames are decoded: in strict mode they roll back with barrier
	// snapshots and come out exactly-once — bit-identical across clean,
	// recovered, and resumed runs. In async mode batches are never held
	// encoded, so these stay zero; the transport-level compression ratio is on
	// the Observer instead.
	CompressedFrames    int64
	CompressedWireBytes int64
	CompressedRawBytes  int64
	// GroupRuns counts group expansions (runs of ≥ 2 Gpsis sharing a hoisted
	// candidate base); GroupMembers counts the Gpsis they covered.
	GroupRuns    int64
	GroupMembers int64
	// Results is the number of instances found.
	Results int64
	// InitialVertex is the pattern vertex the run started from.
	InitialVertex int
	// Recoveries counts in-run checkpoint-restore recoveries (0 on a clean
	// run; retries that succeeded without a restore are not counted).
	Recoveries int
	// Per-worker metrics (Figure 5): compute time and cost-model load units.
	WorkerTime     []time.Duration
	WorkerMessages []int64
	LoadUnits      []float64
	// PerStepMessages[s] is the number of Gpsis produced in superstep s.
	PerStepMessages []int64
	// SimulatedMakespan is Σ_s max_k L_ks (Equation 3) over measured
	// per-worker compute times.
	SimulatedMakespan time.Duration
	// LoadMakespan is Σ_s max_k L_ks over cost-model load units instead of
	// measured times: deterministic, and meaningful even when the simulated
	// worker count exceeds the physical core count (Figures 5 and 8).
	LoadMakespan float64
	// WallTime is the physical elapsed time of the run.
	WallTime time.Duration
	// EdgeIndexBytes is the footprint of the bloom index (0 when disabled).
	EdgeIndexBytes int64
}

// Result is the outcome of a run.
type Result struct {
	// Count is the number of subgraph instances found. When Truncated is
	// set, Count reflects the instances found before the early stop took
	// effect (at least MaxResults; possibly a few more, see
	// Options.MaxResults).
	Count int64
	// Instances holds the mappings (pattern vertex -> data vertex) when
	// Options.Collect is set.
	Instances [][]graph.VertexID
	// Truncated reports that the run stopped early because
	// Options.MaxResults was reached; the enumeration is incomplete.
	Truncated bool
	Stats     Stats
}
