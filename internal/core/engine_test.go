package core

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"psgl/internal/bsp"
	"psgl/internal/centralized"
	"psgl/internal/gen"
	"psgl/internal/graph"
	"psgl/internal/pattern"
)

// figure1Graph is the data graph of Figure 1 (vertices 1..6 -> 0..5).
func figure1Graph() *graph.Graph {
	return graph.FromEdges(6, [][2]graph.VertexID{
		{0, 1}, {0, 4}, {0, 5}, {1, 2}, {1, 4}, {2, 3}, {2, 4}, {3, 4}, {4, 5},
	})
}

func TestSquareOnFigure1(t *testing.T) {
	// The paper's running example: exactly the squares 1235, 1256, 2345.
	res, err := Run(figure1Graph(), pattern.Square(), Options{Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 3 {
		t.Fatalf("Count = %d, want 3", res.Count)
	}
	var sets []string
	for _, inst := range res.Instances {
		vs := []int{int(inst[0]), int(inst[1]), int(inst[2]), int(inst[3])}
		sort.Ints(vs)
		sets = append(sets, instKey(vs))
	}
	sort.Strings(sets)
	wantSets := []string{"0-1-4-5", "0-1-2-4", "1-2-3-4"}
	sort.Strings(wantSets)
	for i := range wantSets {
		if sets[i] != wantSets[i] {
			t.Fatalf("instances %v, want %v", sets, wantSets)
		}
	}
}

func instKey(vs []int) string {
	s := ""
	for i, v := range vs {
		if i > 0 {
			s += "-"
		}
		s += string(rune('0' + v))
	}
	return s
}

// TestMatchesOracleAllPatterns is the load-bearing correctness test: PSgL's
// counts must equal the centralized oracle on every catalog pattern over
// several random graphs.
func TestMatchesOracleAllPatterns(t *testing.T) {
	patterns := []*pattern.Pattern{
		pattern.PG1(), pattern.PG2(), pattern.PG3(), pattern.PG4(), pattern.PG5(),
		pattern.Path(4), pattern.Star(3), pattern.Cycle(5), pattern.Clique(5),
	}
	for seed := int64(0); seed < 3; seed++ {
		g := gen.ErdosRenyi(80, 500, seed)
		for _, p := range patterns {
			want := centralized.CountInstances(p, g)
			res, err := Run(g, p, Options{Workers: 3, Seed: seed})
			if err != nil {
				t.Fatalf("%s seed=%d: %v", p.Name(), seed, err)
			}
			if res.Count != want {
				t.Errorf("%s seed=%d: PSgL=%d oracle=%d", p.Name(), seed, res.Count, want)
			}
		}
	}
}

func TestMatchesOracleOnSkewedGraph(t *testing.T) {
	g := gen.ChungLu(400, 1600, 1.7, 9)
	for _, p := range []*pattern.Pattern{pattern.PG1(), pattern.PG2(), pattern.PG3(), pattern.PG4()} {
		want := centralized.CountInstances(p, g)
		res, err := Run(g, p, Options{Workers: 4})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if res.Count != want {
			t.Errorf("%s: PSgL=%d oracle=%d", p.Name(), res.Count, want)
		}
	}
}

func TestAllStrategiesAgree(t *testing.T) {
	g := gen.ChungLu(300, 1200, 1.8, 4)
	want := centralized.CountInstances(pattern.PG2(), g)
	for _, s := range []Strategy{StrategyRandom, StrategyRoulette, StrategyWorkloadAware} {
		for _, alpha := range []float64{0, 0.5, 1} {
			res, err := Run(g, pattern.PG2(), Options{Workers: 4, Strategy: s, Alpha: alpha, Seed: 11})
			if err != nil {
				t.Fatalf("%v α=%g: %v", s, alpha, err)
			}
			if res.Count != want {
				t.Errorf("%v α=%g: count=%d want=%d", s, alpha, res.Count, want)
			}
		}
	}
}

func TestAllInitialVerticesAgree(t *testing.T) {
	g := gen.ErdosRenyi(120, 700, 2)
	for _, p := range []*pattern.Pattern{pattern.PG2(), pattern.PG4(), pattern.PG5()} {
		want := centralized.CountInstances(p, g)
		for v := 0; v < p.N(); v++ {
			res, err := Run(g, p, Options{Workers: 3, InitialVertex: v})
			if err != nil {
				t.Fatalf("%s init=%d: %v", p.Name(), v, err)
			}
			if res.Count != want {
				t.Errorf("%s init=%d: count=%d want=%d", p.Name(), v, res.Count, want)
			}
			if res.Stats.InitialVertex != v {
				t.Errorf("%s: InitialVertex stat = %d, want %d", p.Name(), res.Stats.InitialVertex, v)
			}
		}
	}
}

func TestWithoutEdgeIndexAgrees(t *testing.T) {
	g := gen.ChungLu(250, 1000, 1.9, 3)
	for _, p := range []*pattern.Pattern{pattern.PG2(), pattern.PG3(), pattern.PG4()} {
		want := centralized.CountInstances(p, g)
		withIx, err := Run(g, p, Options{Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		withoutIx, err := Run(g, p, Options{Workers: 3, DisableEdgeIndex: true})
		if err != nil {
			t.Fatal(err)
		}
		if withIx.Count != want || withoutIx.Count != want {
			t.Errorf("%s: with=%d without=%d want=%d", p.Name(), withIx.Count, withoutIx.Count, want)
		}
		// Table 2's claim: the index reduces the number of generated Gpsis
		// whenever invalid partial instances exist.
		if p.Name() != "square" && withoutIx.Stats.GpsiGenerated < withIx.Stats.GpsiGenerated {
			t.Errorf("%s: index increased Gpsi count: with=%d without=%d",
				p.Name(), withIx.Stats.GpsiGenerated, withoutIx.Stats.GpsiGenerated)
		}
	}
}

func TestWorkerCountsAgree(t *testing.T) {
	g := gen.ErdosRenyi(150, 900, 5)
	want := centralized.CountInstances(pattern.PG3(), g)
	for _, k := range []int{1, 2, 5, 9, 16} {
		res, err := Run(g, pattern.PG3(), Options{Workers: k})
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if res.Count != want {
			t.Errorf("K=%d: count=%d want=%d", k, res.Count, want)
		}
	}
}

func TestDeterministicForFixedSeed(t *testing.T) {
	g := gen.ChungLu(200, 800, 1.8, 7)
	run := func() *Result {
		res, err := Run(g, pattern.PG2(), Options{Workers: 4, Seed: 99, Strategy: StrategyRandom})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Count != b.Count || a.Stats.GpsiGenerated != b.Stats.GpsiGenerated {
		t.Fatalf("same seed diverged: count %d/%d gpsi %d/%d",
			a.Count, b.Count, a.Stats.GpsiGenerated, b.Stats.GpsiGenerated)
	}
}

func TestAutomorphismBreakingAblation(t *testing.T) {
	g := gen.ErdosRenyi(60, 350, 4)
	p := pattern.PG1()
	broken, err := Run(g, p, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := Run(g, p, Options{Workers: 2, DisableAutomorphismBreaking: true})
	if err != nil {
		t.Fatal(err)
	}
	if raw.Count != broken.Count*int64(p.NumAutomorphisms()) {
		t.Fatalf("raw=%d broken=%d aut=%d", raw.Count, broken.Count, p.NumAutomorphisms())
	}
}

func TestOOMBudget(t *testing.T) {
	g := gen.ChungLu(500, 2500, 1.8, 6)
	_, err := Run(g, pattern.PG2(), Options{Workers: 2, MaxIntermediate: 100})
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	// A generous budget must not trip.
	if _, err := Run(g, pattern.PG1(), Options{Workers: 2, MaxIntermediate: 10_000_000}); err != nil {
		t.Fatalf("generous budget tripped: %v", err)
	}
}

func TestTheorem1IterationBounds(t *testing.T) {
	// For a level-synchronous run, |MVC| <= S_expansion <= |Vp| - 1 where
	// S_expansion counts supersteps that processed Gpsis. Our supersteps =
	// 1 (init) + expansion steps, the last of which produces no messages.
	g := gen.ErdosRenyi(100, 600, 8)
	for _, p := range []*pattern.Pattern{pattern.PG1(), pattern.PG2(), pattern.PG3(), pattern.PG4(), pattern.PG5()} {
		res, err := Run(g, p, Options{Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		expansionSteps := res.Stats.Supersteps - 1
		if expansionSteps < p.MinVertexCoverSize() || expansionSteps > p.N()-1 {
			t.Errorf("%s: expansion steps=%d, want within [|MVC|=%d, |Vp|-1=%d]",
				p.Name(), expansionSteps, p.MinVertexCoverSize(), p.N()-1)
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	g := gen.ChungLu(300, 1500, 2.0, 2)
	res, err := Run(g, pattern.PG3(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.GpsiGenerated <= 0 || s.GpsiProcessed <= 0 {
		t.Error("Gpsi counters empty")
	}
	if s.GpsiProcessed != s.GpsiGenerated {
		t.Errorf("every generated Gpsi should be processed: gen=%d proc=%d", s.GpsiGenerated, s.GpsiProcessed)
	}
	if len(s.WorkerTime) != 4 || len(s.LoadUnits) != 4 || len(s.WorkerMessages) != 4 {
		t.Error("per-worker stats wrong length")
	}
	if s.EdgeIndexBytes <= 0 {
		t.Error("edge index bytes missing")
	}
	if s.EdgeIndexQueries <= 0 {
		t.Error("index never queried for PG3")
	}
	if s.SimulatedMakespan <= 0 || s.WallTime <= 0 {
		t.Error("time stats missing")
	}
	if s.Results != res.Count {
		t.Error("Results != Count")
	}
}

func TestTCPExchangeEndToEnd(t *testing.T) {
	g := gen.ErdosRenyi(100, 500, 12)
	want := centralized.CountInstances(pattern.PG1(), g)
	res, err := Run(g, pattern.PG1(), Options{Workers: 3, Exchange: bsp.NewTCPExchangeFactory()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want {
		t.Fatalf("TCP run count=%d want=%d", res.Count, want)
	}
}

func TestEdgeAndVertexPatterns(t *testing.T) {
	g := figure1Graph()
	res, err := Run(g, pattern.Clique(2), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != g.NumEdges() {
		t.Fatalf("edge pattern count=%d want |E|=%d", res.Count, g.NumEdges())
	}
	v1 := pattern.MustNew("vertex", 1, nil)
	res, err = Run(g, v1, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != int64(g.NumVertices()) {
		t.Fatalf("vertex pattern count=%d want |V|=%d", res.Count, g.NumVertices())
	}
}

func TestInvalidInputs(t *testing.T) {
	g := figure1Graph()
	if _, err := Run(nil, pattern.PG1(), Options{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := Run(g, nil, Options{}); err == nil {
		t.Error("nil pattern accepted")
	}
	if _, err := Run(g, pattern.PG1(), Options{InitialVertex: 7}); err == nil {
		t.Error("out-of-range initial vertex accepted")
	}
}

func TestCollectedInstancesAreValid(t *testing.T) {
	g := gen.ErdosRenyi(60, 400, 21)
	p := pattern.PG3()
	res, err := Run(g, p, Options{Workers: 3, Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(res.Instances)) != res.Count {
		t.Fatalf("collected %d, count %d", len(res.Instances), res.Count)
	}
	seen := map[string]bool{}
	for _, inst := range res.Instances {
		for _, e := range p.Edges() {
			if !g.HasEdge(inst[e[0]], inst[e[1]]) {
				t.Fatalf("instance %v missing edge %v", inst, e)
			}
		}
		key := ""
		for _, v := range inst {
			key += string(rune(v)) + ","
		}
		if seen[key] {
			t.Fatalf("duplicate instance %v", inst)
		}
		seen[key] = true
	}
}

func TestEmptyAndSparseGraphs(t *testing.T) {
	empty := graph.NewBuilder(10).Build()
	res, err := Run(empty, pattern.PG1(), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 0 {
		t.Fatalf("triangles in edgeless graph = %d", res.Count)
	}
	// A single edge has no triangles but one edge instance.
	one := graph.FromEdges(2, [][2]graph.VertexID{{0, 1}})
	res, err = Run(one, pattern.PG1(), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 0 {
		t.Fatalf("triangle in single edge = %d", res.Count)
	}
}

func TestRandomizedOracleProperty(t *testing.T) {
	// Property-style sweep: random graphs x random catalog patterns.
	rng := rand.New(rand.NewSource(500))
	patterns := []*pattern.Pattern{
		pattern.PG1(), pattern.PG2(), pattern.PG3(), pattern.PG4(),
		pattern.Path(3), pattern.Star(4), pattern.Cycle(6),
	}
	for trial := 0; trial < 10; trial++ {
		n := 30 + rng.Intn(60)
		m := int64(2*n + rng.Intn(4*n))
		g := gen.ErdosRenyi(n, m, rng.Int63())
		p := patterns[rng.Intn(len(patterns))]
		opts := Options{
			Workers:  1 + rng.Intn(5),
			Strategy: Strategy(rng.Intn(3)),
			Seed:     rng.Int63(),
		}
		want := centralized.CountInstances(p, g)
		res, err := Run(g, p, opts)
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, p.Name(), err)
		}
		if res.Count != want {
			t.Errorf("trial %d: %s on n=%d m=%d K=%d strat=%v: got %d want %d",
				trial, p.Name(), n, m, opts.Workers, opts.Strategy, res.Count, want)
		}
	}
}

func BenchmarkPSgLTriangle(b *testing.B) {
	g := gen.ChungLu(5000, 25000, 1.8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, pattern.PG1(), Options{Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPSgLSquare(b *testing.B) {
	g := gen.ChungLu(2000, 10000, 1.8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, pattern.PG2(), Options{Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}
