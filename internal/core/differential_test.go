package core

import (
	"fmt"
	"sort"
	"testing"

	"psgl/internal/bsp"
	"psgl/internal/centralized"
	"psgl/internal/gen"
	"psgl/internal/graph"
	"psgl/internal/pattern"
)

// embeddingKey renders one mapping (pattern vertex -> data vertex) as a
// comparable string. Mappings are compared position-by-position, not as
// vertex sets: both sides break automorphisms with the same canonical rule,
// so each instance must surface as the exact same tuple.
func embeddingKey(mapping []graph.VertexID) string {
	s := ""
	for i, v := range mapping {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprint(v)
	}
	return s
}

// oracleEmbeddings lists every instance via the centralized single-thread
// oracle, as a sorted multiset of embedding keys.
func oracleEmbeddings(p *pattern.Pattern, g *graph.Graph) []string {
	var keys []string
	centralized.ListInstances(p.BreakAutomorphisms(), g, func(m []graph.VertexID) bool {
		keys = append(keys, embeddingKey(m))
		return true
	})
	sort.Strings(keys)
	return keys
}

// TestDifferentialOracleEmbeddings is the differential property suite:
// randomized Chung–Lu graphs × every catalog pattern × all three
// distribution strategies × both exchange transports, with the full
// embedding multiset — not just the count — required to match the
// centralized oracle exactly.
func TestDifferentialOracleEmbeddings(t *testing.T) {
	patterns := []*pattern.Pattern{
		pattern.PG1(), pattern.PG2(), pattern.PG3(), pattern.PG4(), pattern.PG5(),
	}
	strategies := []Strategy{StrategyRandom, StrategyRoulette, StrategyWorkloadAware}
	exchanges := []struct {
		name    string
		factory bsp.ExchangeFactory
		workers int
	}{
		{"local", nil, 4},
		{"tcp", bsp.NewTCPExchangeFactory(), 3},
	}

	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		// Skewed Chung–Lu graphs exercise the load-balancing paths that
		// uniform Erdős–Rényi graphs (engine_test.go) do not.
		g := gen.ChungLu(70, 300, 2.3, seed)
		for _, p := range patterns {
			want := oracleEmbeddings(p, g)
			for _, strat := range strategies {
				for _, ex := range exchanges {
					if testing.Short() && ex.name == "tcp" && strat != StrategyWorkloadAware {
						continue
					}
					name := fmt.Sprintf("seed%d/%s/%s/%s", seed, p.Name(), strat, ex.name)
					t.Run(name, func(t *testing.T) {
						res, err := Run(g, p, Options{
							Workers:  ex.workers,
							Strategy: strat,
							Seed:     seed,
							Collect:  true,
							Exchange: ex.factory,
						})
						if err != nil {
							t.Fatal(err)
						}
						got := make([]string, 0, len(res.Instances))
						for _, inst := range res.Instances {
							got = append(got, embeddingKey(inst))
						}
						sort.Strings(got)
						if len(got) != len(want) {
							t.Fatalf("%d embeddings, oracle has %d", len(got), len(want))
						}
						for i := range want {
							if got[i] != want[i] {
								t.Fatalf("embedding multiset diverges at #%d: engine %q, oracle %q", i, got[i], want[i])
							}
						}
						if res.Count != int64(len(want)) {
							t.Fatalf("Count = %d, %d embeddings collected", res.Count, len(want))
						}
					})
				}
			}
		}
	}
}
