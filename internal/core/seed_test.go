package core

import (
	"sort"
	"strings"
	"testing"

	"psgl/internal/bsp"
	"psgl/internal/gen"
	"psgl/internal/graph"
	"psgl/internal/pattern"
)

// anchorSeeds pins every pattern edge, in both orientations, onto the data
// edge {u, v} — the seed set the delta enumerator uses, reproduced here to
// pin the primitive's contract: the seeded run must find exactly the
// embeddings whose image uses {u, v}, each exactly once (injectivity maps at
// most one pattern edge onto any one data edge).
func anchorSeeds(p *pattern.Pattern, u, v graph.VertexID) []Seed {
	var seeds []Seed
	for _, pe := range p.Edges() {
		seeds = append(seeds,
			Seed{PatternVertices: []int{pe[0], pe[1]}, DataVertices: []graph.VertexID{u, v}},
			Seed{PatternVertices: []int{pe[0], pe[1]}, DataVertices: []graph.VertexID{v, u}},
		)
	}
	return seeds
}

func collectSortedEmbeddings(t *testing.T, g *graph.Graph, p *pattern.Pattern, opts Options) []string {
	t.Helper()
	opts.Collect = true
	res, err := Run(g, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(res.Instances))
	for _, m := range res.Instances {
		keys = append(keys, embeddingKey(m))
	}
	sort.Strings(keys)
	return keys
}

// pickEdge returns a data edge incident to a reasonably connected vertex so
// the anchored enumeration has embeddings to find.
func pickEdge(t *testing.T, g *graph.Graph) (graph.VertexID, graph.VertexID) {
	t.Helper()
	best := graph.VertexID(-1)
	for v := 0; v < g.NumVertices(); v++ {
		if best < 0 || g.Degree(graph.VertexID(v)) > g.Degree(best) {
			best = graph.VertexID(v)
		}
	}
	if best < 0 || g.Degree(best) == 0 {
		t.Fatal("no edges in test graph")
	}
	return best, g.Neighbors(best)[0]
}

// TestSeededEnumerationMatchesFilteredFullRun: a run seeded on one data edge
// must return exactly the full run's embeddings that use that edge.
func TestSeededEnumerationMatchesFilteredFullRun(t *testing.T) {
	g := gen.ChungLu(300, 1200, 1.8, 3)
	u, v := pickEdge(t, g)
	for _, p := range []*pattern.Pattern{pattern.PG1(), pattern.PG2(), pattern.PG3(), pattern.PG5()} {
		full, err := Run(g, p, Options{Workers: 3, Seed: 1, Collect: true})
		if err != nil {
			t.Fatal(err)
		}
		// Filter the full multiset down to embeddings whose image uses {u,v}.
		var want []string
		bp := p.BreakAutomorphisms()
		pEdges := bp.Edges()
		for _, m := range full.Instances {
			for _, pe := range pEdges {
				a, b := m[pe[0]], m[pe[1]]
				if (a == u && b == v) || (a == v && b == u) {
					want = append(want, embeddingKey(m))
					break
				}
			}
		}
		sort.Strings(want)
		got := collectSortedEmbeddings(t, g, p, Options{
			Workers: 3, Seed: 1, Seeds: anchorSeeds(bp, u, v), PlannedPattern: true,
		})
		if !equalStrings(got, want) {
			t.Fatalf("%s: seeded run found %d embeddings, filtered full run %d",
				p.Name(), len(got), len(want))
		}
	}
}

// TestSeededModesBitIdentical: the seeded path returns the same embedding
// multiset across {strict, async} × {local, TCP} and compressed frames.
func TestSeededModesBitIdentical(t *testing.T) {
	g := gen.ChungLu(200, 800, 1.8, 5)
	u, v := pickEdge(t, g)
	p := pattern.PG3().BreakAutomorphisms()
	seeds := anchorSeeds(p, u, v)
	base := Options{Workers: 3, Seed: 2, Seeds: seeds, PlannedPattern: true}
	want := collectSortedEmbeddings(t, g, p, base)
	modes := []struct {
		name string
		mut  func(*Options)
	}{
		{"async-local", func(o *Options) { o.AsyncExchange = true }},
		{"strict-tcp", func(o *Options) { o.Exchange = bsp.NewTCPExchangeFactory() }},
		{"async-tcp", func(o *Options) { o.AsyncExchange = true; o.Exchange = bsp.NewTCPExchangeFactory() }},
		{"compressed", func(o *Options) { o.CompressFrames = true }},
		{"identity-order-roundtrip", func(o *Options) {}},
	}
	for _, mode := range modes {
		opts := base
		mode.mut(&opts)
		got := collectSortedEmbeddings(t, g, p, opts)
		if !equalStrings(got, want) {
			t.Fatalf("%s: %d embeddings, want %d", mode.name, len(got), len(want))
		}
	}
}

// TestEmitFilterDropsAndCounts: the filter removes embeddings from every
// output surface and shows up in the pruning breakdown.
func TestEmitFilterDropsAndCounts(t *testing.T) {
	g := gen.ChungLu(200, 800, 1.8, 7)
	p := pattern.PG2()
	all := collectSortedEmbeddings(t, g, p, Options{Workers: 3, Seed: 1})
	var want []string
	for _, key := range all {
		if !strings.HasPrefix(key, "0,") && !strings.Contains(key, ",0,") && !strings.HasSuffix(key, ",0") {
			want = append(want, key)
		}
	}
	filter := func(m []graph.VertexID) bool {
		for _, d := range m {
			if d == 0 {
				return false
			}
		}
		return true
	}
	opts := Options{Workers: 3, Seed: 1, Collect: true, EmitFilter: filter}
	res, err := Run(g, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, 0, len(res.Instances))
	for _, m := range res.Instances {
		got = append(got, embeddingKey(m))
	}
	sort.Strings(got)
	if !equalStrings(got, want) {
		t.Fatalf("filtered run found %d embeddings, want %d", len(got), len(want))
	}
	if res.Count != int64(len(want)) {
		t.Fatalf("Count = %d, want %d", res.Count, len(want))
	}
	if res.Stats.PrunedByFilter != int64(len(all)-len(want)) {
		t.Fatalf("PrunedByFilter = %d, want %d", res.Stats.PrunedByFilter, len(all)-len(want))
	}
}

// TestIdentityOrderCounts: instance counts are invariant to the total order.
func TestIdentityOrderCounts(t *testing.T) {
	g := gen.ChungLu(300, 1200, 1.8, 9)
	for _, p := range []*pattern.Pattern{pattern.PG1(), pattern.PG3(), pattern.PG4()} {
		deg, err := Run(g, p, Options{Workers: 3, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		id, err := Run(g, p, Options{Workers: 3, Seed: 1, IdentityOrder: true})
		if err != nil {
			t.Fatal(err)
		}
		if deg.Count != id.Count {
			t.Fatalf("%s: identity-order count %d != degree-order count %d",
				p.Name(), id.Count, deg.Count)
		}
	}
}

// TestSeedValidation: malformed seeds fail fast; constraint-violating seeds
// are pruned, not errors.
func TestSeedValidation(t *testing.T) {
	g := graph.FromEdges(4, [][2]graph.VertexID{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	p := pattern.Triangle()
	bad := []Options{
		{Seeds: []Seed{{PatternVertices: []int{0}, DataVertices: []graph.VertexID{0, 1}}}},
		{Seeds: []Seed{{PatternVertices: []int{}, DataVertices: []graph.VertexID{}}}},
		{Seeds: []Seed{{PatternVertices: []int{0, 3}, DataVertices: []graph.VertexID{0, 1}}}},
		{Seeds: []Seed{{PatternVertices: []int{0, 0}, DataVertices: []graph.VertexID{0, 1}}}},
		{Seeds: []Seed{{PatternVertices: []int{0, 1}, DataVertices: []graph.VertexID{0, 9}}}},
		{Seeds: []Seed{{PatternVertices: []int{0, 1}, DataVertices: []graph.VertexID{2, 2}}}},
	}
	for i, opts := range bad {
		opts.Workers = 2
		if _, err := Run(g, p, opts); err == nil {
			t.Fatalf("case %d: want validation error", i)
		}
	}
	// A seed pinning a non-edge of the data graph is a silent prune: the run
	// succeeds with zero results and the prune is counted.
	res, err := Run(g, p, Options{
		Workers: 2,
		Seeds:   []Seed{{PatternVertices: []int{0, 1}, DataVertices: []graph.VertexID{0, 2}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 0 {
		t.Fatalf("non-edge seed found %d instances", res.Count)
	}
	if res.Stats.PrunedByVerify != 1 {
		t.Fatalf("PrunedByVerify = %d, want 1", res.Stats.PrunedByVerify)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
