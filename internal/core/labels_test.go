package core

import (
	"math/rand"
	"testing"

	"psgl/internal/centralized"
	"psgl/internal/gen"
	"psgl/internal/pattern"
)

func randomLabels(n int, kinds int, seed int64) []int32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(rng.Intn(kinds))
	}
	return out
}

func TestLabeledMatchingMatchesOracle(t *testing.T) {
	g := gen.ErdosRenyi(150, 900, 41)
	labels := randomLabels(g.NumVertices(), 3, 5)
	base := []struct {
		p      *pattern.Pattern
		labels []int
	}{
		{pattern.PG1(), []int{0, 1, 2}},
		{pattern.PG1(), []int{1, 1, 1}},
		{pattern.PG2(), []int{0, 1, 0, 1}},
		{pattern.PG3(), []int{2, 0, 2, 1}},
	}
	for _, c := range base {
		lp, err := c.p.WithLabels(c.labels)
		if err != nil {
			t.Fatal(err)
		}
		want := centralized.CountInstancesLabeled(lp.BreakAutomorphisms(), g, labels)
		res, err := Run(g, lp, Options{Workers: 3, DataLabels: labels})
		if err != nil {
			t.Fatalf("%s %v: %v", c.p.Name(), c.labels, err)
		}
		if res.Count != want {
			t.Errorf("%s labels=%v: psgl=%d oracle=%d", c.p.Name(), c.labels, res.Count, want)
		}
		if res.Stats.PrunedByLabel == 0 {
			t.Errorf("%s: label filter never pruned on a 3-label graph", c.p.Name())
		}
	}
}

func TestLabeledSubsetOfUnlabeled(t *testing.T) {
	// Uniform labels on both sides must reproduce the unlabeled count; any
	// non-uniform labeling can only shrink it.
	g := gen.ErdosRenyi(120, 700, 7)
	unlabeled, err := Run(g, pattern.PG1(), Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	uniform := make([]int32, g.NumVertices())
	lp, err := pattern.PG1().WithLabels([]int{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	same, err := Run(g, lp, Options{Workers: 3, DataLabels: uniform})
	if err != nil {
		t.Fatal(err)
	}
	if same.Count != unlabeled.Count {
		t.Fatalf("uniform labels changed the count: %d vs %d", same.Count, unlabeled.Count)
	}
	mixed := randomLabels(g.NumVertices(), 2, 3)
	lp2, err := pattern.PG1().WithLabels([]int{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	fewer, err := Run(g, lp2, Options{Workers: 3, DataLabels: mixed})
	if err != nil {
		t.Fatal(err)
	}
	if fewer.Count > unlabeled.Count {
		t.Fatalf("labeled count %d exceeds unlabeled %d", fewer.Count, unlabeled.Count)
	}
}

func TestLabelsRestrictAutomorphisms(t *testing.T) {
	// A label-asymmetric triangle has |Aut| = 1 even though K3 has 6.
	lp, err := pattern.MustNew("k3", 3, [][2]int{{0, 1}, {1, 2}, {2, 0}}).WithLabels([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := lp.NumAutomorphisms(); got != 1 {
		t.Fatalf("|Aut| of fully labeled triangle = %d, want 1", got)
	}
	// Two equal labels leave exactly one swap.
	lp2, err := pattern.MustNew("k3", 3, [][2]int{{0, 1}, {1, 2}, {2, 0}}).WithLabels([]int{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := lp2.NumAutomorphisms(); got != 2 {
		t.Fatalf("|Aut| = %d, want 2", got)
	}
}

func TestLabelMismatchErrors(t *testing.T) {
	g := gen.ErdosRenyi(20, 60, 1)
	labels := make([]int32, g.NumVertices())
	// Labeled data, unlabeled pattern.
	if _, err := Run(g, pattern.PG1(), Options{DataLabels: labels}); err == nil {
		t.Error("labeled data with unlabeled pattern accepted")
	}
	// Labeled pattern, unlabeled data.
	lp, err := pattern.PG1().WithLabels([]int{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(g, lp, Options{}); err == nil {
		t.Error("labeled pattern with unlabeled data accepted")
	}
	// Wrong label count.
	if _, err := Run(g, lp, Options{DataLabels: labels[:5]}); err == nil {
		t.Error("short label slice accepted")
	}
	// Wrong pattern label count.
	if _, err := pattern.PG1().WithLabels([]int{0}); err == nil {
		t.Error("short pattern label slice accepted")
	}
}

func TestLabeledWithoutBreakingAblation(t *testing.T) {
	g := gen.ErdosRenyi(60, 350, 9)
	labels := randomLabels(g.NumVertices(), 2, 2)
	lp, err := pattern.PG1().WithLabels([]int{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	broken, err := Run(g, lp, Options{Workers: 2, DataLabels: labels})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := Run(g, lp, Options{Workers: 2, DataLabels: labels, DisableAutomorphismBreaking: true})
	if err != nil {
		t.Fatal(err)
	}
	if raw.Count != broken.Count*int64(lp.NumAutomorphisms()) {
		t.Fatalf("raw=%d broken=%d |Aut|=%d", raw.Count, broken.Count, lp.NumAutomorphisms())
	}
}
