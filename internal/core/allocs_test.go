package core

// Allocation-discipline regression tests for the expansion hot path and the
// gpsi wire codec. Kimmig et al. (shared-memory subgraph enumeration) show
// allocation behavior dominates enumeration throughput; these tests pin the
// steady state at zero allocations per processed message so it cannot
// silently regress.

import (
	"testing"

	"psgl/internal/pattern"
)

func TestExpandSteadyStateZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation profiling in -short mode")
	}
	for _, strategy := range []Strategy{StrategyWorkloadAware, StrategyRandom, StrategyRoulette} {
		t.Run(strategy.String(), func(t *testing.T) {
			e, ctx, inbox, err := newHotpathHarness(pattern.PG2(), strategy)
			if err != nil {
				t.Fatal(err)
			}
			// Warm up: grow scratch frames, counter map entries, send-buffer
			// capacity, and the per-step load slots.
			for _, env := range inbox {
				e.Process(ctx, env)
			}
			i := 0
			avg := testing.AllocsPerRun(200, func() {
				ctx.ResetSends()
				e.Process(ctx, inbox[i%len(inbox)])
				i++
			})
			if avg != 0 {
				t.Errorf("expand allocates %.1f/op in steady state, want 0", avg)
			}
		})
	}
}

func TestExpandLocalExpansionSteadyStateZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation profiling in -short mode")
	}
	// LocalExpansion recurses through finalize → expand, exercising the
	// scratch-frame stack; it must stay allocation-free too.
	e, ctx, inbox, err := newHotpathHarness(pattern.PG2(), StrategyWorkloadAware)
	if err != nil {
		t.Fatal(err)
	}
	e.opts.LocalExpansion = true
	for _, env := range inbox {
		e.Process(ctx, env)
	}
	i := 0
	avg := testing.AllocsPerRun(200, func() {
		ctx.ResetSends()
		e.Process(ctx, inbox[i%len(inbox)])
		i++
	})
	if avg != 0 {
		t.Errorf("inline expansion allocates %.1f/op in steady state, want 0", avg)
	}
}

func TestGpsiWireRoundTripZeroAllocs(t *testing.T) {
	m := gpsi{N: 5, Next: 3, Expanded: 0b10011, Pending: 0xbeef}
	for i := range m.Map {
		m.Map[i] = unmapped
	}
	m.Map[0], m.Map[1], m.Map[3] = 42, 7, 1<<30
	buf := make([]byte, 0, 64)
	var out gpsi
	avg := testing.AllocsPerRun(500, func() {
		buf = m.AppendWire(buf[:0])
		rest, err := out.DecodeWire(buf)
		if err != nil || len(rest) != 0 {
			t.Fatalf("round trip: rest=%d err=%v", len(rest), err)
		}
	})
	if avg != 0 {
		t.Errorf("gpsi codec allocates %.1f/op, want 0", avg)
	}
	if out != m {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", out, m)
	}
}
