package core

import (
	"sync"
	"testing"

	"psgl/internal/centralized"
	"psgl/internal/gen"
	"psgl/internal/graph"
	"psgl/internal/pattern"
)

func TestOnInstanceStreamsEveryResult(t *testing.T) {
	g := gen.ErdosRenyi(80, 500, 13)
	p := pattern.PG3()
	var mu sync.Mutex
	var streamed [][]graph.VertexID
	res, err := Run(g, p, Options{
		Workers: 3,
		OnInstance: func(m []graph.VertexID) {
			mu.Lock()
			streamed = append(streamed, append([]graph.VertexID(nil), m...))
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(streamed)) != res.Count {
		t.Fatalf("streamed %d, counted %d", len(streamed), res.Count)
	}
	for _, inst := range streamed {
		for _, e := range p.Edges() {
			if !g.HasEdge(inst[e[0]], inst[e[1]]) {
				t.Fatalf("streamed instance %v missing edge %v", inst, e)
			}
		}
	}
}

// TestTinyBloomStillExact floods the engine with bloom false positives (2
// bits/edge ≈ 40%+ FP rate) and checks the final counts are still exact —
// the pending-edge protocol must catch every false positive at a later
// exact verification.
func TestTinyBloomStillExact(t *testing.T) {
	g := gen.ChungLu(300, 1200, 1.8, 17)
	for _, p := range []*pattern.Pattern{pattern.PG1(), pattern.PG2(), pattern.PG3(), pattern.PG4(), pattern.PG5()} {
		want := centralized.CountInstances(p, g)
		res, err := Run(g, p, Options{Workers: 3, BloomBitsPerEdge: 2})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if res.Count != want {
			t.Errorf("%s: count=%d want=%d under heavy bloom FPs", p.Name(), res.Count, want)
		}
		if res.Stats.PrunedByVerify == 0 && p.NumEdges() > p.N()-1 {
			t.Logf("%s: no false positives caught (possible but unlikely)", p.Name())
		}
	}
}

func TestBloomSizeTradeoff(t *testing.T) {
	// Bigger filters prune more at generation time, so fewer Gpsis flow.
	g := gen.ChungLu(1000, 4000, 1.7, 23)
	run := func(bits int) int64 {
		res, err := Run(g, pattern.PG3(), Options{Workers: 3, BloomBitsPerEdge: bits})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.GpsiGenerated
	}
	small, big := run(2), run(16)
	if big > small {
		t.Errorf("16-bit filter generated more Gpsis (%d) than 2-bit (%d)", big, small)
	}
}

func TestPatternTooLargeRejected(t *testing.T) {
	var edges [][2]int
	for i := 0; i < 17; i++ {
		edges = append(edges, [2]int{i, (i + 1) % 17})
	}
	p := pattern.MustNew("c17", 17, edges)
	if _, err := Run(gen.ErdosRenyi(10, 20, 1), p, Options{}); err == nil {
		t.Fatal("17-vertex pattern accepted (engine supports <= 16)")
	}
}

func TestDisconnectedWorkersStillCount(t *testing.T) {
	// More workers than vertices: most workers own nothing.
	g := gen.ErdosRenyi(10, 30, 2)
	want := centralized.CountInstances(pattern.PG1(), g)
	res, err := Run(g, pattern.PG1(), Options{Workers: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want {
		t.Fatalf("count=%d want=%d with 64 workers on 10 vertices", res.Count, want)
	}
}

func TestSeedChangesPartitionNotCount(t *testing.T) {
	g := gen.ChungLu(400, 1600, 1.8, 31)
	var counts []int64
	var gpsi []int64
	for seed := int64(0); seed < 4; seed++ {
		res, err := Run(g, pattern.PG2(), Options{Workers: 4, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, res.Count)
		gpsi = append(gpsi, res.Stats.GpsiGenerated)
	}
	for _, c := range counts {
		if c != counts[0] {
			t.Fatalf("seed changed the instance count: %v", counts)
		}
	}
	// Partitioning/strategy randomness should change internals at least once.
	varies := false
	for _, n := range gpsi {
		if n != gpsi[0] {
			varies = true
		}
	}
	if !varies {
		t.Log("note: Gpsi totals identical across seeds (possible, not an error)")
	}
}

func TestHighWorkerCountsLevelSupersteps(t *testing.T) {
	// Worker count must not change the superstep structure (level-sync).
	g := gen.ErdosRenyi(100, 500, 3)
	var steps []int
	for _, k := range []int{1, 4, 16} {
		res, err := Run(g, pattern.PG5(), Options{Workers: k})
		if err != nil {
			t.Fatal(err)
		}
		steps = append(steps, res.Stats.Supersteps)
	}
	for _, s := range steps {
		if s != steps[0] {
			t.Fatalf("superstep count varies with workers: %v", steps)
		}
	}
}

func TestLoadMakespanBetweenBounds(t *testing.T) {
	// Σ_s max_w load is at least total/K and at most total.
	g := gen.ChungLu(500, 2000, 1.8, 37)
	res, err := Run(g, pattern.PG2(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, l := range res.Stats.LoadUnits {
		total += l
	}
	mk := res.Stats.LoadMakespan
	if mk < total/4-1e-9 || mk > total+1e-9 {
		t.Fatalf("LoadMakespan %.1f outside [total/K=%.1f, total=%.1f]", mk, total/4, total)
	}
}
