package core

// Differential battery for compressed frames (Options.CompressFrames): the
// prefix-compressed wire codec, the grouped inbox, and group expansion must
// be invisible to the enumeration — same embedding multisets as the
// centralized oracle, same counts as flat mode, across strict and async
// exchanges, local and TCP transports, and checkpoint recovery/resume.

import (
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"psgl/internal/bsp"
	"psgl/internal/gen"
	"psgl/internal/pattern"
)

// TestCompressedDifferentialOracleEmbeddings mirrors
// TestDifferentialOracleEmbeddings with CompressFrames on, adding the async
// axis: compressed × {strict, async} × {local, tcp} × every strategy × every
// catalog pattern, with the full embedding multiset required to match the
// centralized oracle exactly.
func TestCompressedDifferentialOracleEmbeddings(t *testing.T) {
	patterns := []*pattern.Pattern{
		pattern.PG1(), pattern.PG2(), pattern.PG3(), pattern.PG4(), pattern.PG5(),
	}
	strategies := []Strategy{StrategyRandom, StrategyRoulette, StrategyWorkloadAware}
	exchanges := []struct {
		name    string
		factory bsp.ExchangeFactory
		workers int
	}{
		{"local", nil, 4},
		{"tcp", bsp.NewTCPExchangeFactory(), 3},
	}
	modes := []struct {
		name  string
		async bool
	}{
		{"strict", false},
		{"async", true},
	}

	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		g := gen.ChungLu(70, 300, 2.3, seed)
		for _, p := range patterns {
			want := oracleEmbeddings(p, g)
			for _, strat := range strategies {
				for _, ex := range exchanges {
					for _, mode := range modes {
						// The non-default corners are transport/mode plumbing, not
						// strategy logic; in -short mode one strategy covers them.
						if testing.Short() && (ex.name == "tcp" || mode.async) && strat != StrategyWorkloadAware {
							continue
						}
						name := fmt.Sprintf("seed%d/%s/%s/%s/%s", seed, p.Name(), strat, ex.name, mode.name)
						t.Run(name, func(t *testing.T) {
							res, err := Run(g, p, Options{
								Workers:        ex.workers,
								Strategy:       strat,
								Seed:           seed,
								Collect:        true,
								Exchange:       ex.factory,
								AsyncExchange:  mode.async,
								CompressFrames: true,
							})
							if err != nil {
								t.Fatal(err)
							}
							got := make([]string, 0, len(res.Instances))
							for _, inst := range res.Instances {
								got = append(got, embeddingKey(inst))
							}
							sort.Strings(got)
							if len(got) != len(want) {
								t.Fatalf("%d embeddings, oracle has %d", len(got), len(want))
							}
							for i := range want {
								if got[i] != want[i] {
									t.Fatalf("embedding multiset diverges at #%d: engine %q, oracle %q", i, got[i], want[i])
								}
							}
							if res.Count != int64(len(want)) {
								t.Fatalf("Count = %d, %d embeddings collected", res.Count, len(want))
							}
						})
					}
				}
			}
		}
	}
}

// TestCompressedMatchesFlatStats pins the parts of Stats that compression
// must not disturb — count, generated/processed Gpsis, supersteps — against
// a flat-mode run, and proves the compressed machinery actually engaged:
// frames were compressed, group expansion fired, and the raw (flat-
// equivalent) byte count strictly exceeds the wire byte count on a dense
// pattern.
func TestCompressedMatchesFlatStats(t *testing.T) {
	g := gen.ChungLu(70, 300, 2.3, 1)
	for _, p := range []*pattern.Pattern{pattern.PG3(), pattern.PG5()} {
		t.Run(p.Name(), func(t *testing.T) {
			base := Options{Workers: 4, Seed: 1}
			flat, err := Run(g, p, base)
			if err != nil {
				t.Fatal(err)
			}
			opts := base
			opts.CompressFrames = true
			comp, err := Run(g, p, opts)
			if err != nil {
				t.Fatal(err)
			}
			if comp.Count != flat.Count {
				t.Fatalf("compressed counted %d, flat %d", comp.Count, flat.Count)
			}
			if comp.Stats.GpsiGenerated != flat.Stats.GpsiGenerated {
				t.Fatalf("GpsiGenerated = %d, flat %d", comp.Stats.GpsiGenerated, flat.Stats.GpsiGenerated)
			}
			if comp.Stats.GpsiProcessed != flat.Stats.GpsiProcessed {
				t.Fatalf("GpsiProcessed = %d, flat %d", comp.Stats.GpsiProcessed, flat.Stats.GpsiProcessed)
			}
			if comp.Stats.Supersteps != flat.Stats.Supersteps {
				t.Fatalf("Supersteps = %d, flat %d", comp.Stats.Supersteps, flat.Stats.Supersteps)
			}
			cs := comp.Stats
			if cs.CompressedFrames == 0 {
				t.Fatal("CompressedFrames = 0: compression never engaged")
			}
			if cs.CompressedRawBytes <= cs.CompressedWireBytes {
				t.Fatalf("no byte savings: wire %d B, raw %d B", cs.CompressedWireBytes, cs.CompressedRawBytes)
			}
			if cs.GroupRuns == 0 {
				t.Fatal("GroupRuns = 0: group expansion never fired")
			}
			if cs.GroupMembers < 2*cs.GroupRuns {
				t.Fatalf("GroupMembers = %d with %d runs: runs must cover ≥ 2 Gpsis each", cs.GroupMembers, cs.GroupRuns)
			}
			fs := flat.Stats
			if fs.CompressedFrames != 0 || fs.GroupRuns != 0 {
				t.Fatalf("flat run leaked compressed counters: %+v", fs)
			}
		})
	}
}

// compressedCounterView is the slice of Stats that must be bit-identical
// across clean, recovered, and resumed compressed runs: the logical
// compression counters ride the barrier snapshots, so replayed supersteps
// must not double-count.
type compressedCounterView struct {
	Count                                 int64
	Frames, WireBytes, RawBytes           int64
	GroupRuns, GroupMembers               int64
	GpsiGenerated, GpsiProcessed, Results int64
}

func viewOf(r *Result) compressedCounterView {
	return compressedCounterView{
		Count:         r.Count,
		Frames:        r.Stats.CompressedFrames,
		WireBytes:     r.Stats.CompressedWireBytes,
		RawBytes:      r.Stats.CompressedRawBytes,
		GroupRuns:     r.Stats.GroupRuns,
		GroupMembers:  r.Stats.GroupMembers,
		GpsiGenerated: r.Stats.GpsiGenerated,
		GpsiProcessed: r.Stats.GpsiProcessed,
		Results:       r.Stats.Results,
	}
}

// TestCompressedCountersMirrored reruns the recovery suite's scenarios with
// CompressFrames on: a fault-recovered run (drops + errors absorbed by retry
// and checkpoint restores) and a crash-then-resume pair must both reproduce
// the clean run's compression counters exactly — not just the count.
func TestCompressedCountersMirrored(t *testing.T) {
	g := gen.ChungLu(70, 300, 2.3, 1)
	p := pattern.PG3()
	base := Options{Workers: 3, Seed: 1, CompressFrames: true}
	clean, err := Run(g, p, base)
	if err != nil {
		t.Fatal(err)
	}
	want := viewOf(clean)
	if want.Frames == 0 || want.GroupRuns == 0 {
		t.Fatalf("scenario too sparse to exercise compression: %+v", want)
	}

	t.Run("recovered", func(t *testing.T) {
		opts := base
		opts.Exchange = bsp.NewFaultyExchangeFactory(nil, bsp.FaultConfig{
			Seed:      9,
			ErrorRate: 0.35,
			DropRate:  0.25,
			FromStep:  1,
		})
		opts.Retry = bsp.RetryPolicy{MaxAttempts: 3, BaseBackoff: 100 * time.Microsecond, MaxBackoff: time.Millisecond}
		opts.CheckpointEvery = 1
		opts.CheckpointStore = bsp.NewMemCheckpointStore()
		opts.MaxRecoveries = 100
		res, err := Run(g, p, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got := viewOf(res); got != want {
			t.Fatalf("recovered counters diverged:\n got %+v\nwant %+v", got, want)
		}
	})

	t.Run("resumed", func(t *testing.T) {
		failStep := clean.Stats.Supersteps - 2
		if failStep < 1 {
			t.Fatalf("run too short to test resume: %d supersteps", clean.Stats.Supersteps)
		}
		store := bsp.NewMemCheckpointStore()
		crashed := base
		crashed.Exchange = bsp.NewFaultyExchangeFactory(nil, bsp.FaultConfig{
			Seed: 5, ErrorRate: 1, FromStep: failStep, MaxFaults: 1,
		})
		crashed.CheckpointEvery = 1
		crashed.CheckpointStore = store
		if _, err := Run(g, p, crashed); !errors.Is(err, bsp.ErrInjectedFault) {
			t.Fatalf("crashed run err = %v, want ErrInjectedFault", err)
		}
		resumed := base
		resumed.ResumeFrom = store
		res, err := Run(g, p, resumed)
		if err != nil {
			t.Fatal(err)
		}
		if got := viewOf(res); got != want {
			t.Fatalf("resumed counters diverged:\n got %+v\nwant %+v", got, want)
		}
	})
}

// TestCompressedWithEngineVariants sweeps compression against the engine's
// other orthogonal modes — local expansion, disabled edge index, disabled
// bitset AND, labeled matching — to pin that group expansion composes with
// each (count parity with the same variant in flat mode).
func TestCompressedWithEngineVariants(t *testing.T) {
	g := gen.ChungLu(70, 300, 2.3, 2)
	p := pattern.PG3()
	variants := []struct {
		name string
		mut  func(*Options)
	}{
		{"local_expansion", func(o *Options) { o.LocalExpansion = true }},
		{"no_edge_index", func(o *Options) { o.DisableEdgeIndex = true }},
		{"no_bitset_and", func(o *Options) { o.DisableBitsetAnd = true }},
		{"max_intermediate_ok", func(o *Options) { o.MaxIntermediate = 1 << 30 }},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			base := Options{Workers: 4, Seed: 2}
			v.mut(&base)
			flat, err := Run(g, p, base)
			if err != nil {
				t.Fatal(err)
			}
			opts := base
			opts.CompressFrames = true
			comp, err := Run(g, p, opts)
			if err != nil {
				t.Fatal(err)
			}
			if comp.Count != flat.Count {
				t.Fatalf("compressed counted %d, flat %d", comp.Count, flat.Count)
			}
		})
	}
}
