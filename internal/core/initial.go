package core

import (
	"math"

	"psgl/internal/pattern"
	"psgl/internal/stats"
)

// SelectInitialVertex picks the initial pattern vertex (Section 5.2.2).
// For cycles and cliques it applies the deterministic rule of Theorem 5: the
// lowest-rank vertex after automorphism breaking, whose outgoing '<'
// constraints force candidates into the balanced ns side of the ordered data
// graph (Property 1). For general patterns it minimizes the Algorithm 4 cost
// estimate over all pattern vertices.
func SelectInitialVertex(p *pattern.Pattern, dist *stats.Distribution) int {
	if p.IsCycle() || p.IsClique() {
		return p.LowestRankVertex()
	}
	best, bestCost := 0, math.Inf(1)
	for v := 0; v < p.N(); v++ {
		if c := EstimateInitialVertexCost(p, dist, v); c < bestCost {
			best, bestCost = v, c
		}
	}
	return best
}

// EstimateInitialVertexCost simulates the expansion from initial vertex vp
// over partial pattern graphs (Algorithm 4) and returns the expected total
// number of generated partial subgraph instances — the quantity Theorem 4
// shows the best initial vertex minimizes. The random distribution strategy
// is assumed (each GRAY vertex expands an equal share), and the expected
// fan-out of expanding a vertex with w WHITE neighbors at an unknown data
// vertex is f(v) = Σ_{d ≥ deg_p(v)} p(d)·C(d, w) over the data graph's
// degree distribution.
func EstimateInitialVertexCost(p *pattern.Pattern, dist *stats.Distribution, vp int) float64 {
	const cap = 1e18
	type key struct {
		mapped   uint16
		expanded uint16
	}
	n0 := float64(dist.Total())
	level := map[key]float64{{mapped: 1 << uint(vp)}: n0}
	total := n0
	for round := 0; round < p.N() && len(level) > 0; round++ {
		next := map[key]float64{}
		for st, cnt := range level {
			var grays []int
			for v := 0; v < p.N(); v++ {
				if st.mapped&(1<<uint(v)) != 0 && st.expanded&(1<<uint(v)) == 0 {
					grays = append(grays, v)
				}
			}
			if len(grays) == 0 {
				continue
			}
			share := cnt / float64(len(grays))
			for _, v := range grays {
				child := st
				child.expanded |= 1 << uint(v)
				w := 0
				for _, u := range p.Neighbors(v) {
					if st.mapped&(1<<uint(u)) == 0 {
						w++
						child.mapped |= 1 << uint(u)
					}
				}
				produced := share * expectedFanout(p, dist, v, w)
				if produced > cap {
					produced = cap
				}
				total += produced
				if total > cap {
					total = cap
				}
				next[child] += produced
			}
		}
		level = next
	}
	return total
}

// expectedFanout is f(v) = Σ_{d ≥ deg_p(v)} p(d)·C(d, w).
func expectedFanout(p *pattern.Pattern, dist *stats.Distribution, v, w int) float64 {
	if w == 0 {
		// Verification-only expansion: at most one child survives.
		return 1
	}
	var f float64
	for d := p.Degree(v); d <= dist.Max(); d++ {
		pd := dist.P(d)
		if pd == 0 {
			continue
		}
		c := stats.Binomial(d, w)
		if math.IsInf(c, 1) {
			return 1e18
		}
		f += pd * c
		if f > 1e18 {
			return 1e18
		}
	}
	if f < 1 {
		f = 1
	}
	return f
}
