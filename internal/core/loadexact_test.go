package core

// Exactly-once load-accounting regression tests: the engine's cost-model
// accumulators (LoadUnits, per-step loads, and therefore the Equation 3
// LoadMakespan) ride barrier snapshots, so a run that recovered from faults —
// or resumed from another run's checkpoints — replays supersteps without
// double-charging them. These tests pin the bit-for-bit equality with a clean
// run of the same seed.

import (
	"errors"
	"testing"

	"psgl/internal/bsp"
	"psgl/internal/gen"
	"psgl/internal/pattern"
)

func assertLoadsEqual(t *testing.T, label string, got, want *Stats) {
	t.Helper()
	if len(got.LoadUnits) != len(want.LoadUnits) {
		t.Fatalf("%s: LoadUnits has %d workers, want %d", label, len(got.LoadUnits), len(want.LoadUnits))
	}
	for w := range want.LoadUnits {
		// Bit-for-bit: replayed supersteps must take identical routing
		// decisions and charge identical load, not merely close load.
		if got.LoadUnits[w] != want.LoadUnits[w] {
			t.Errorf("%s: LoadUnits[%d] = %v, want %v", label, w, got.LoadUnits[w], want.LoadUnits[w])
		}
	}
	if got.LoadMakespan != want.LoadMakespan {
		t.Errorf("%s: LoadMakespan = %v, want %v", label, got.LoadMakespan, want.LoadMakespan)
	}
	if got.GpsiGenerated != want.GpsiGenerated {
		t.Errorf("%s: GpsiGenerated = %d, want %d", label, got.GpsiGenerated, want.GpsiGenerated)
	}
}

func TestRecoveredRunLoadAccountingExact(t *testing.T) {
	// The headline bugfix: before engine state rode checkpoints, every
	// checkpoint-restore replayed supersteps whose load had already been
	// accumulated, inflating LoadUnits and LoadMakespan on recovered runs.
	for _, strategy := range []Strategy{StrategyWorkloadAware, StrategyRandom, StrategyRoulette} {
		t.Run(strategy.String(), func(t *testing.T) {
			g := gen.ErdosRenyi(80, 500, 1)
			p := pattern.PG2()
			base := Options{Workers: 3, Seed: 1, Strategy: strategy}
			clean, err := Run(g, p, base)
			if err != nil {
				t.Fatal(err)
			}

			// No retry policy: every injected fault forces a checkpoint
			// restore and a superstep replay — the exact double-charging
			// scenario. MaxFaults bounds the injection so the run terminates.
			faulty := base
			faulty.Exchange = bsp.NewFaultyExchangeFactory(nil, bsp.FaultConfig{
				Seed:      9,
				ErrorRate: 1,
				FromStep:  1,
				MaxFaults: 2,
			})
			faulty.CheckpointEvery = 1
			faulty.CheckpointStore = bsp.NewMemCheckpointStore()
			faulty.MaxRecoveries = 10
			res, err := Run(g, p, faulty)
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.Recoveries == 0 {
				t.Fatal("fault injection caused no recoveries; test exercises nothing")
			}
			if res.Count != clean.Count {
				t.Fatalf("recovered run counted %d, clean run %d", res.Count, clean.Count)
			}
			assertLoadsEqual(t, "recovered", &res.Stats, &clean.Stats)
		})
	}
}

func TestResumedRunLoadAccountingExact(t *testing.T) {
	g := gen.ErdosRenyi(60, 300, 2)
	p := pattern.PG2()
	base := Options{Workers: 3, Seed: 2}
	clean, err := Run(g, p, base)
	if err != nil {
		t.Fatal(err)
	}
	failStep := clean.Stats.Supersteps - 2
	if failStep < 1 {
		t.Fatalf("run too short to test resume: %d supersteps", clean.Stats.Supersteps)
	}

	store := bsp.NewMemCheckpointStore()
	crashed := base
	crashed.Exchange = bsp.NewFaultyExchangeFactory(nil, bsp.FaultConfig{
		Seed: 5, ErrorRate: 1, FromStep: failStep, MaxFaults: 1,
	})
	crashed.CheckpointEvery = 1
	crashed.CheckpointStore = store
	if _, err := Run(g, p, crashed); !errors.Is(err, bsp.ErrInjectedFault) {
		t.Fatalf("crashed run err = %v, want ErrInjectedFault", err)
	}

	// The resumed run starts from the last checkpoint of the crashed run; its
	// engine accumulators are restored from the same snapshot, so the final
	// books must match a run that never crashed.
	resumed := base
	resumed.ResumeFrom = store
	res, err := Run(g, p, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != clean.Count {
		t.Fatalf("resumed run counted %d, clean run %d", res.Count, clean.Count)
	}
	assertLoadsEqual(t, "resumed", &res.Stats, &clean.Stats)
}

func TestRestartFromScratchLoadAccountingExact(t *testing.T) {
	// With no checkpoint available (CheckpointEvery unset), recovery restarts
	// from superstep 0; RestoreState(nil) must zero the accumulators or the
	// pre-crash partial load would be double-counted.
	g := gen.ErdosRenyi(60, 300, 4)
	p := pattern.Triangle()
	base := Options{Workers: 3, Seed: 4}
	clean, err := Run(g, p, base)
	if err != nil {
		t.Fatal(err)
	}

	// A store with no checkpoints in it: recovery finds ErrNoCheckpoint and
	// restarts from superstep 0 (CheckpointEvery stays 0, so nothing is ever
	// saved).
	faulty := base
	faulty.Exchange = bsp.NewFaultyExchangeFactory(nil, bsp.FaultConfig{
		Seed: 11, ErrorRate: 1, FromStep: 1, MaxFaults: 1,
	})
	faulty.CheckpointStore = bsp.NewMemCheckpointStore()
	faulty.MaxRecoveries = 3
	res, err := Run(g, p, faulty)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Recoveries == 0 {
		t.Fatal("fault injection caused no recoveries; test exercises nothing")
	}
	if res.Count != clean.Count {
		t.Fatalf("restarted run counted %d, clean run %d", res.Count, clean.Count)
	}
	assertLoadsEqual(t, "restarted", &res.Stats, &clean.Stats)
}
