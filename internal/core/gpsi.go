// Package core implements PSgL, the paper's contribution: a parallel
// subgraph-listing engine that enumerates pattern instances by pure graph
// traversal over partial subgraph instances (Gpsi) in a BSP model — no join
// operator anywhere.
//
// A run has two phases (Section 4.2). Initialization: every data vertex whose
// degree admits the chosen initial pattern vertex creates a one-pair Gpsi.
// Expansion: each superstep, every in-flight Gpsi is expanded at one GRAY
// pattern vertex (Algorithm 1): edges to already-mapped neighbors are
// verified, candidates for WHITE neighbors are drawn from the local adjacency
// with degree/partial-order/edge-index pruning (Algorithm 5), new Gpsis are
// routed by a pluggable distribution strategy (Algorithm 3), and completed,
// fully verified Gpsis are emitted as results.
package core

import (
	"fmt"

	"psgl/internal/graph"
)

// unmapped marks a pattern vertex with no data-vertex image yet (WHITE).
const unmapped graph.VertexID = -1

// maxPatternVertices is the engine's pattern-size cap; it fixes the size of
// the inline Map array so a Gpsi is a pure value (no per-Gpsi heap
// allocation in Init, branching, or Send).
const maxPatternVertices = 16

// gpsi is the partial subgraph instance — the unit of work and the message
// type of the BSP computation. It is a pure value type: copying one (for
// branching or sending) allocates nothing. Fields are exported for gob
// (checkpoint snapshots); the TCP exchange uses the compact wire codec below
// instead of gob.
//
// Colors are implicit: pattern vertex v is BLACK if bit v of Expanded is set,
// GRAY if mapped but not expanded, WHITE if Map[v] == unmapped.
type gpsi struct {
	// Map[v] is the data vertex mapped to pattern vertex v, or unmapped.
	// Only Map[:N] is meaningful; the tail is kept at unmapped.
	Map [maxPatternVertices]graph.VertexID
	// Expanded is the BLACK bitmask (patterns have ≤ 16 vertices here).
	Expanded uint16
	// Pending is a bitmask over pattern edge ids of edges whose existence was
	// only established by the bloom edge index (or not checked at all when
	// the index is disabled) and still needs exact verification against a
	// local adjacency list.
	Pending uint32
	// Next is the GRAY pattern vertex this Gpsi will be expanded at; the
	// distribution strategy chose it, and the message was routed to the
	// worker owning Map[Next].
	Next int8
	// N is the pattern's vertex count: the used prefix of Map.
	N int8
}

func (m *gpsi) isMapped(v int) bool { return m.Map[v] != unmapped }
func (m *gpsi) isBlack(v int) bool  { return m.Expanded&(1<<uint(v)) != 0 }
func (m *gpsi) isGray(v int) bool   { return m.isMapped(v) && !m.isBlack(v) }
func (m *gpsi) isComplete() bool {
	for _, d := range m.Map[:m.N] {
		if d == unmapped {
			return false
		}
	}
	return true
}

// mappedMask is the bitmask of mapped pattern vertices (BLACK and GRAY).
func (m *gpsi) mappedMask() uint16 {
	mask := uint16(0)
	for v := 0; v < int(m.N); v++ {
		if m.Map[v] != unmapped {
			mask |= 1 << uint(v)
		}
	}
	return mask
}

// uses reports whether data vertex d already appears in the mapping
// (instances are injective).
func (m *gpsi) uses(d graph.VertexID) bool {
	for _, x := range m.Map[:m.N] {
		if x == d {
			return true
		}
	}
	return false
}

// Wire codec: gpsi implements bsp.WireMessage, so the TCP exchange frames
// batches with this fixed-layout little-endian encoding instead of
// reflective gob. Layout per message: N, Next, Expanded (2 bytes),
// Pending (4 bytes), then N 4-byte map entries — 8+4N bytes total.

const gpsiWireHeader = 8

// AppendWire implements bsp.WireMessage.
func (m *gpsi) AppendWire(dst []byte) []byte {
	dst = append(dst,
		byte(m.N), byte(m.Next),
		byte(m.Expanded), byte(m.Expanded>>8),
		byte(m.Pending), byte(m.Pending>>8), byte(m.Pending>>16), byte(m.Pending>>24),
	)
	for _, d := range m.Map[:m.N] {
		u := uint32(d)
		dst = append(dst, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
	}
	return dst
}

// DecodeWire implements bsp.WireMessage: it overwrites m from the front of
// src and returns the remainder.
func (m *gpsi) DecodeWire(src []byte) ([]byte, error) {
	if len(src) < gpsiWireHeader {
		return nil, fmt.Errorf("gpsi wire: truncated header (%d bytes)", len(src))
	}
	n := int(src[0])
	if n < 1 || n > maxPatternVertices {
		return nil, fmt.Errorf("gpsi wire: pattern size %d out of range", n)
	}
	need := gpsiWireHeader + 4*n
	if len(src) < need {
		return nil, fmt.Errorf("gpsi wire: truncated body (%d of %d bytes)", len(src), need)
	}
	m.N = int8(n)
	m.Next = int8(src[1])
	m.Expanded = uint16(src[2]) | uint16(src[3])<<8
	m.Pending = uint32(src[4]) | uint32(src[5])<<8 | uint32(src[6])<<16 | uint32(src[7])<<24
	for i := 0; i < n; i++ {
		o := gpsiWireHeader + 4*i
		m.Map[i] = graph.VertexID(uint32(src[o]) | uint32(src[o+1])<<8 | uint32(src[o+2])<<16 | uint32(src[o+3])<<24)
	}
	for i := n; i < maxPatternVertices; i++ {
		m.Map[i] = unmapped
	}
	return src[need:], nil
}

// Group codec: gpsi also implements bsp.GroupWireMessage, the grouping-friendly
// layout of compressed frames. The map goes first — Gpsis fanned out from one
// parent share their whole mapped prefix, so front coding against the sorted
// batch collapses it to a few suffix bytes — and the volatile trailer
// (Expanded, Pending, Next) goes last. Layout: N, then N 4-byte little-endian
// map entries, then Expanded (2), Pending (4), Next (1) — 8+4N bytes, the same
// size as the flat codec, and canonical: equal encodings iff equal messages.

// AppendGroupWire implements bsp.GroupWireMessage.
func (m *gpsi) AppendGroupWire(dst []byte) []byte {
	dst = append(dst, byte(m.N))
	for _, d := range m.Map[:m.N] {
		u := uint32(d)
		dst = append(dst, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
	}
	return append(dst,
		byte(m.Expanded), byte(m.Expanded>>8),
		byte(m.Pending), byte(m.Pending>>8), byte(m.Pending>>16), byte(m.Pending>>24),
		byte(m.Next),
	)
}

// DecodeGroupWire implements bsp.GroupWireMessage: src holds exactly one group
// encoding. When shared > 0 the receiver is pre-seeded with the previously
// decoded message whose encoding equals src[:shared], so map entries fully
// inside the shared prefix — and the unmapped tail — are inherited instead of
// re-parsed; the volatile trailer is always re-read.
func (m *gpsi) DecodeGroupWire(src []byte, shared int) error {
	if len(src) < 1 {
		return fmt.Errorf("gpsi group wire: empty encoding")
	}
	n := int(src[0])
	if n < 1 || n > maxPatternVertices {
		return fmt.Errorf("gpsi group wire: pattern size %d out of range", n)
	}
	if len(src) != 1+4*n+7 {
		return fmt.Errorf("gpsi group wire: %d bytes for pattern size %d (want %d)", len(src), n, 1+4*n+7)
	}
	m.N = int8(n)
	// Map entry i occupies bytes [1+4i, 5+4i): entries with 5+4i <= shared are
	// bit-identical in the seed, so re-parsing starts at (shared-1)/4.
	i0 := 0
	if shared > 0 {
		i0 = (shared - 1) / 4
		if i0 > n {
			i0 = n
		}
	}
	for i := i0; i < n; i++ {
		o := 1 + 4*i
		m.Map[i] = graph.VertexID(uint32(src[o]) | uint32(src[o+1])<<8 | uint32(src[o+2])<<16 | uint32(src[o+3])<<24)
	}
	if shared == 0 {
		for i := n; i < maxPatternVertices; i++ {
			m.Map[i] = unmapped
		}
	}
	o := 1 + 4*n
	m.Expanded = uint16(src[o]) | uint16(src[o+1])<<8
	m.Pending = uint32(src[o+2]) | uint32(src[o+3])<<8 | uint32(src[o+4])<<16 | uint32(src[o+5])<<24
	m.Next = int8(src[o+6])
	return nil
}
