// Package core implements PSgL, the paper's contribution: a parallel
// subgraph-listing engine that enumerates pattern instances by pure graph
// traversal over partial subgraph instances (Gpsi) in a BSP model — no join
// operator anywhere.
//
// A run has two phases (Section 4.2). Initialization: every data vertex whose
// degree admits the chosen initial pattern vertex creates a one-pair Gpsi.
// Expansion: each superstep, every in-flight Gpsi is expanded at one GRAY
// pattern vertex (Algorithm 1): edges to already-mapped neighbors are
// verified, candidates for WHITE neighbors are drawn from the local adjacency
// with degree/partial-order/edge-index pruning (Algorithm 5), new Gpsis are
// routed by a pluggable distribution strategy (Algorithm 3), and completed,
// fully verified Gpsis are emitted as results.
package core

import "psgl/internal/graph"

// unmapped marks a pattern vertex with no data-vertex image yet (WHITE).
const unmapped graph.VertexID = -1

// gpsi is the partial subgraph instance — the unit of work and the message
// type of the BSP computation. Fields are exported for gob (TCP exchange).
//
// Colors are implicit: pattern vertex v is BLACK if bit v of Expanded is set,
// GRAY if mapped but not expanded, WHITE if Map[v] == unmapped.
type gpsi struct {
	// Map[v] is the data vertex mapped to pattern vertex v, or unmapped.
	Map []graph.VertexID
	// Expanded is the BLACK bitmask (patterns have ≤ 16 vertices here).
	Expanded uint16
	// Pending is a bitmask over pattern edge ids of edges whose existence was
	// only established by the bloom edge index (or not checked at all when
	// the index is disabled) and still needs exact verification against a
	// local adjacency list.
	Pending uint32
	// Next is the GRAY pattern vertex this Gpsi will be expanded at; the
	// distribution strategy chose it, and the message was routed to the
	// worker owning Map[Next].
	Next int8
}

func (m *gpsi) isMapped(v int) bool { return m.Map[v] != unmapped }
func (m *gpsi) isBlack(v int) bool  { return m.Expanded&(1<<uint(v)) != 0 }
func (m *gpsi) isGray(v int) bool   { return m.isMapped(v) && !m.isBlack(v) }
func (m *gpsi) isComplete() bool {
	for _, d := range m.Map {
		if d == unmapped {
			return false
		}
	}
	return true
}

// clone deep-copies the Gpsi for branching during candidate combination.
func (m *gpsi) clone() gpsi {
	cp := *m
	cp.Map = append([]graph.VertexID(nil), m.Map...)
	return cp
}

// uses reports whether data vertex d already appears in the mapping
// (instances are injective).
func (m *gpsi) uses(d graph.VertexID) bool {
	for _, x := range m.Map {
		if x == d {
			return true
		}
	}
	return false
}
