package core

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"psgl/internal/bloom"
	"psgl/internal/bsp"
	"psgl/internal/graph"
	"psgl/internal/pattern"
	"psgl/internal/stats"
)

// Run lists all instances of p in g with the PSgL engine and returns the
// count (and instances when opts.Collect is set) together with run metrics.
//
// Unless opts.DisableAutomorphismBreaking is set, the pattern's automorphisms
// are broken first, so every instance is found exactly once regardless of how
// p was constructed.
func Run(g *graph.Graph, p *pattern.Pattern, opts Options) (*Result, error) {
	return RunContext(context.Background(), g, p, opts)
}

// RunContext is Run with cancellation and fault-tolerance plumbing: ctx
// cancellation stops the run at the next message boundary, and the Options
// checkpoint/retry/recovery fields configure the BSP engine's fault layer.
func RunContext(ctx context.Context, g *graph.Graph, p *pattern.Pattern, opts Options) (*Result, error) {
	if g == nil || p == nil {
		return nil, fmt.Errorf("psgl: nil graph or pattern")
	}
	if p.N() > maxPatternVertices {
		return nil, fmt.Errorf("psgl: pattern has %d vertices; engine supports up to %d", p.N(), maxPatternVertices)
	}
	opts = opts.normalized()
	if (opts.DataLabels != nil) != p.Labeled() {
		return nil, fmt.Errorf("psgl: labeled matching needs labels on both the pattern and the data graph")
	}
	if opts.DataLabels != nil && len(opts.DataLabels) != g.NumVertices() {
		return nil, fmt.Errorf("psgl: %d data labels for %d vertices", len(opts.DataLabels), g.NumVertices())
	}

	if err := validateSeeds(g, p, opts.Seeds); err != nil {
		return nil, err
	}

	if opts.DisableAutomorphismBreaking {
		p = p.StripOrders()
	} else if !opts.PlannedPattern {
		p = p.BreakAutomorphisms()
	}

	e, err := newEngine(g, p, opts)
	if err != nil {
		return nil, err
	}

	cfg := bsp.Config{
		Workers:         opts.Workers,
		Owner:           func(v graph.VertexID) int { return e.part.Owner(v) },
		MaxSupersteps:   opts.MaxSupersteps,
		Exchange:        opts.Exchange,
		AsyncExchange:   opts.AsyncExchange,
		CompressFrames:  opts.CompressFrames,
		StepTimeout:     opts.StepTimeout,
		Retry:           opts.Retry,
		CheckpointEvery: opts.CheckpointEvery,
		CheckpointStore: opts.CheckpointStore,
		ResumeFrom:      opts.ResumeFrom,
		MaxRecoveries:   opts.MaxRecoveries,
		Observer:        opts.Observer,
	}
	start := time.Now()
	runStats, err := bsp.RunContext[gpsi](ctx, cfg, e)
	wall := time.Since(start)
	if err != nil {
		if oom := e.oomErr.Load(); oom != nil {
			return e.buildResult(runStats, wall), ErrOutOfMemory
		}
		if e.stopped.Load() {
			// The MaxResults early stop aborts the BSP run on purpose; the
			// truncated enumeration is a success.
			return e.buildResult(runStats, wall), nil
		}
		return nil, err
	}
	return e.buildResult(runStats, wall), nil
}

// errEarlyStop is the sentinel the engine aborts with once MaxResults
// instances have been found; RunContext converts it back into a successful,
// truncated result.
var errEarlyStop = errors.New("psgl: result limit reached")

// engine implements bsp.Program[gpsi] (and bsp.Snapshotter, so its
// accumulators ride barrier snapshots and stay exactly-once under recovery).
type engine struct {
	g    *graph.Graph
	ord  *graph.Ordered
	p    *pattern.Pattern
	opts Options
	part graph.Partition
	ix   *bloom.EdgeIndex
	// bitmap accelerates exact edge verification against hub vertices
	// (Section 5.1.1: "costg ... can be done efficiently by a bitmap index").
	bitmap *graph.BitmapIndex

	initial int
	// proto is the blank Gpsi Init stamps per seed vertex: all WHITE, sized
	// and aimed at the initial pattern vertex.
	proto gpsi
	// edgeID[a][b] numbers the pattern edges for the Pending bitmask.
	edgeID [][]int
	// pEdges caches p.Edges() (which builds a fresh slice per call) for the
	// pending-edge scan in grayCandidates.
	pEdges [][2]int
	// owned[w] lists worker w's data vertices, bucketed once in newEngine so
	// Init is O(V) total instead of every worker filtering all vertices.
	owned [][]graph.VertexID

	// Per-worker state; index w is touched only by worker w's goroutine
	// (bsp guarantees one goroutine per worker per superstep, with barriers
	// establishing happens-before between supersteps).
	rngs    []*xorshift
	wviews  [][]float64     // workload-aware local views of all workers' loads
	loads   []float64       // actual accumulated cost-model load units
	scratch []workerScratch // reusable expansion buffers (zero-alloc hot path)
	// stepLoads[w][s] is worker w's load units in superstep s (grown only by
	// worker w), the basis of the Equation 3 load makespan.
	stepLoads [][]float64

	generated atomic.Int64
	oomErr    atomic.Pointer[error]
	// results counts emitted instances when MaxResults > 0; stopped latches
	// once the cap is hit so every worker short-circuits its remaining work.
	results atomic.Int64
	stopped atomic.Bool

	mu        sync.Mutex
	instances [][]graph.VertexID
}

// expandFrame is one depth level of a worker's expansion scratch: the WHITE
// vertices being combined and their candidate buffers. LocalExpansion inlines
// expansions recursively (depth bounded by the pattern size: each inline step
// blackens a vertex), so frames form a small stack; reusing them keeps
// steady-state expansion allocation-free.
type expandFrame struct {
	whites [maxPatternVertices]int
	nw     int
	cands  [maxPatternVertices][]graph.VertexID
}

// workerScratch is the per-worker reusable buffer set of the hot path. Only
// worker w's goroutine touches scratch[w].
type workerScratch struct {
	frames  []*expandFrame
	depth   int
	grays   []int
	weights []float64
	emit    []graph.VertexID
	// baseCands[k] is the hoisted candidate base for the k-th WHITE vertex of
	// the group-expansion run in flight (ProcessGroup). Valid only between
	// expandRun building it and the run's last member; nested inline
	// expansions never touch it.
	baseCands [maxPatternVertices][]graph.VertexID
}

func (s *workerScratch) push() *expandFrame {
	if s.depth == len(s.frames) {
		s.frames = append(s.frames, &expandFrame{})
	}
	f := s.frames[s.depth]
	s.depth++
	f.nw = 0
	return f
}

func (s *workerScratch) pop() { s.depth-- }

func newEngine(g *graph.Graph, p *pattern.Pattern, opts Options) (*engine, error) {
	ord := graph.NewOrdered
	if opts.IdentityOrder {
		ord = graph.NewIdentityOrdered
	}
	e := &engine{
		g:    g,
		ord:  ord(g),
		p:    p,
		opts: opts,
		part: graph.NewPartition(opts.Workers, opts.Seed),
	}
	if !opts.DisableEdgeIndex {
		e.ix = bloom.BuildEdgeIndex(g, opts.BloomBitsPerEdge)
	}
	e.bitmap = graph.NewBitmapIndex(g, opts.BitmapMinDegree)
	n := p.N()
	e.edgeID = make([][]int, n)
	for a := range e.edgeID {
		e.edgeID[a] = make([]int, n)
		for b := range e.edgeID[a] {
			e.edgeID[a][b] = -1
		}
	}
	e.pEdges = p.Edges()
	for i, edge := range e.pEdges {
		if i >= 32 {
			return nil, fmt.Errorf("psgl: pattern has more than 32 edges")
		}
		e.edgeID[edge[0]][edge[1]] = i
		e.edgeID[edge[1]][edge[0]] = i
	}
	switch {
	case opts.InitialVertex >= p.N():
		return nil, fmt.Errorf("psgl: initial vertex %d out of range [0,%d)", opts.InitialVertex, p.N())
	case opts.InitialVertex >= 0:
		e.initial = opts.InitialVertex
	default:
		e.initial = SelectInitialVertex(p, stats.FromHistogram(g.DegreeHistogram()))
	}
	e.proto = gpsi{Next: int8(e.initial), N: int8(n)}
	for i := range e.proto.Map {
		e.proto.Map[i] = unmapped
	}
	e.owned = make([][]graph.VertexID, opts.Workers)
	for v := 0; v < g.NumVertices(); v++ {
		w := e.part.Owner(graph.VertexID(v))
		e.owned[w] = append(e.owned[w], graph.VertexID(v))
	}
	e.rngs = make([]*xorshift, opts.Workers)
	e.wviews = make([][]float64, opts.Workers)
	e.loads = make([]float64, opts.Workers)
	e.scratch = make([]workerScratch, opts.Workers)
	e.stepLoads = make([][]float64, opts.Workers)
	for w := 0; w < opts.Workers; w++ {
		e.rngs[w] = newXorshift(workerRngSeed(opts.Seed, w))
		e.wviews[w] = make([]float64, opts.Workers)
	}
	return e, nil
}

func workerRngSeed(seed int64, w int) uint64 {
	return uint64(seed)*0x9e3779b97f4a7c15 + uint64(w) + 1
}

// validateSeeds rejects structurally malformed seeds up front: shape
// mismatches, out-of-range vertices, and non-injective pins are caller bugs,
// unlike constraint violations (degree, label, order, missing edge), which
// seedGpsi prunes silently at run time like any other dead-end Gpsi.
func validateSeeds(g *graph.Graph, p *pattern.Pattern, seeds []Seed) error {
	for i, s := range seeds {
		if len(s.PatternVertices) == 0 || len(s.PatternVertices) != len(s.DataVertices) {
			return fmt.Errorf("psgl: seed %d: %d pattern vertices pinned to %d data vertices",
				i, len(s.PatternVertices), len(s.DataVertices))
		}
		var pSeen uint32
		for j, pv := range s.PatternVertices {
			if pv < 0 || pv >= p.N() {
				return fmt.Errorf("psgl: seed %d: pattern vertex %d out of range [0,%d)", i, pv, p.N())
			}
			if pSeen&(1<<uint(pv)) != 0 {
				return fmt.Errorf("psgl: seed %d: pattern vertex %d pinned twice", i, pv)
			}
			pSeen |= 1 << uint(pv)
			dv := s.DataVertices[j]
			if int(dv) < 0 || int(dv) >= g.NumVertices() {
				return fmt.Errorf("psgl: seed %d: data vertex %d out of range [0,%d)", i, dv, g.NumVertices())
			}
			for k := 0; k < j; k++ {
				if s.DataVertices[k] == dv {
					return fmt.Errorf("psgl: seed %d: data vertex %d used twice", i, dv)
				}
			}
		}
	}
	return nil
}

// Init is the initialization phase: each data vertex that can host the
// initial pattern vertex emits a one-pair Gpsi to itself.
func (e *engine) Init(ctx *bsp.Context[gpsi]) {
	if len(e.opts.Seeds) > 0 {
		e.initSeeds(ctx)
		return
	}
	w := ctx.Worker()
	minDeg := e.p.Degree(e.initial)
	for _, vd := range e.owned[w] {
		if e.g.Degree(vd) < minDeg {
			ctx.AddCounter("pruned_degree", 1)
			continue
		}
		if e.opts.DataLabels != nil && int(e.opts.DataLabels[vd]) != e.p.Label(e.initial) {
			ctx.AddCounter("pruned_label", 1)
			continue
		}
		m := e.proto
		m.Map[e.initial] = vd
		e.send(ctx, m)
	}
}

// initSeeds is the seeded initialization phase: every worker walks the full
// seed list but only materializes the seeds whose expansion vertex (the
// first pin) it owns, so each seed is admitted — and its pruning counted —
// exactly once, deterministically, like Init's ownership split.
func (e *engine) initSeeds(ctx *bsp.Context[gpsi]) {
	w := ctx.Worker()
	for _, s := range e.opts.Seeds {
		if e.part.Owner(s.DataVertices[0]) != w {
			continue
		}
		if m, ok := e.seedGpsi(ctx, s); ok {
			e.send(ctx, m)
		}
	}
}

// seedGpsi builds the pinned Gpsi for one seed, applying the same admission
// filters the unseeded flow applies at candidate time — degree, label, and
// the symmetry-breaking partial order — plus eager exact verification of
// every pattern edge between two pinned vertices (so seeds start with no
// pending edges). ok=false means the seed provably anchors no instance.
func (e *engine) seedGpsi(ctx *bsp.Context[gpsi], s Seed) (gpsi, bool) {
	m := e.proto
	for i, pv := range s.PatternVertices {
		dv := s.DataVertices[i]
		if e.g.Degree(dv) < e.p.Degree(pv) {
			ctx.AddCounter("pruned_degree", 1)
			return m, false
		}
		if e.opts.DataLabels != nil && int(e.opts.DataLabels[dv]) != e.p.Label(pv) {
			ctx.AddCounter("pruned_label", 1)
			return m, false
		}
		m.Map[pv] = dv
	}
	for i, pv := range s.PatternVertices {
		du := m.Map[pv]
		for _, qv := range s.PatternVertices[i+1:] {
			dv := m.Map[qv]
			if e.p.MustPrecede(pv, qv) && !e.ord.Less(du, dv) {
				ctx.AddCounter("pruned_order", 1)
				return m, false
			}
			if e.p.MustPrecede(qv, pv) && !e.ord.Less(dv, du) {
				ctx.AddCounter("pruned_order", 1)
				return m, false
			}
			if e.p.HasEdge(pv, qv) && !e.g.HasEdge(du, dv) {
				ctx.AddCounter("pruned_verify", 1)
				return m, false
			}
		}
	}
	m.Next = int8(s.PatternVertices[0])
	return m, true
}

// Process expands one partial subgraph instance (Algorithm 1).
func (e *engine) Process(ctx *bsp.Context[gpsi], env bsp.Envelope[gpsi]) {
	e.expand(ctx, env.Msg)
}

// ProcessGroup implements bsp.GroupProgram: in compressed mode each decoded
// frame arrives whole, in the encoder's prefix-sorted order, so Gpsis
// expanding the same data vertex at the same pattern vertex sit adjacent.
// Maximal such runs share one hoisted candidate base (expandRun); singletons
// take the ordinary expand path. The embedding multiset depends only on the
// delivered messages — bit-identical to flat mode, which the compressed
// differential suite pins — while the pruning-counter breakdown may differ
// (shared pruning counts once per run, and runs never take the bitset path).
func (e *engine) ProcessGroup(ctx *bsp.Context[gpsi], batch []bsp.Envelope[gpsi]) {
	for i := 0; i < len(batch); {
		if e.oomErr.Load() != nil || e.stopped.Load() {
			return
		}
		j := i + 1
		for j < len(batch) && sameExpansionGroup(&batch[i].Msg, &batch[j].Msg) {
			j++
		}
		if j-i > 1 {
			e.expandRun(ctx, batch[i:j])
		} else {
			e.expand(ctx, batch[i].Msg)
		}
		i = j
	}
}

// sameExpansionGroup reports whether two Gpsis can share a candidate base:
// same pattern size, same expansion point mapped to the same data vertex, and
// the same set of mapped pattern vertices (hence the same WHITE neighbors).
func sameExpansionGroup(a, b *gpsi) bool {
	return a.N == b.N && a.Next == b.Next &&
		a.Map[a.Next] == b.Map[b.Next] &&
		a.mappedMask() == b.mappedMask()
}

// expandRun expands a run of Gpsis sharing an expansion group. The run-
// invariant part of candidate generation — the expansion vertex's adjacency
// filtered by degree and label — is computed once into the worker's baseCands
// scratch; each member then refines it with its own injectivity, partial-order,
// and edge-index filters (expandShared). Base construction stops at the first
// empty base: every member dead-ends there, and refinement never looks past it.
func (e *engine) expandRun(ctx *bsp.Context[gpsi], run []bsp.Envelope[gpsi]) {
	first := &run[0].Msg
	vp := int(first.Next)
	vd := first.Map[vp]
	sc := &e.scratch[ctx.Worker()]
	var whites [maxPatternVertices]int
	nw := 0
	for _, wv := range e.p.Neighbors(vp) {
		if !first.isMapped(wv) {
			whites[nw] = wv
			nw++
		}
	}
	ctx.AddCounter("group_runs", 1)
	ctx.AddCounter("group_members", int64(len(run)))
	for k := 0; k < nw; k++ {
		wv := whites[k]
		minDeg := e.p.Degree(wv)
		b := sc.baseCands[k][:0]
		for _, d := range e.g.Neighbors(vd) {
			if e.g.Degree(d) < minDeg {
				ctx.AddCounter("pruned_degree", 1)
				continue
			}
			if e.opts.DataLabels != nil && int(e.opts.DataLabels[d]) != e.p.Label(wv) {
				ctx.AddCounter("pruned_label", 1)
				continue
			}
			b = append(b, d)
		}
		sc.baseCands[k] = b
		if len(b) == 0 {
			break
		}
	}
	for i := range run {
		if e.oomErr.Load() != nil || e.stopped.Load() {
			return
		}
		e.expandShared(ctx, run[i].Msg, whites[:nw])
	}
}

// expandShared is expand with the degree/label candidate base hoisted by
// expandRun: per-member filtering runs over sc.baseCands via refineCandidates
// instead of re-walking the expansion vertex's adjacency. Always the merge
// path — never the bitset AND — so the refined sets equal the flat merge
// path's exactly.
func (e *engine) expandShared(ctx *bsp.Context[gpsi], m gpsi, whites []int) {
	ctx.AddCounter("processed", 1)
	w := ctx.Worker()
	vp := int(m.Next)
	vd := m.Map[vp]
	m.Expanded |= 1 << uint(vp)

	for _, u := range e.p.Neighbors(vp) {
		if !m.isMapped(u) {
			continue
		}
		eid := e.edgeID[vp][u]
		if m.Pending&(1<<uint(eid)) == 0 {
			continue
		}
		if !e.bitmap.HasEdge(vd, m.Map[u]) {
			ctx.AddCounter("pruned_verify", 1)
			return
		}
		m.Pending &^= 1 << uint(eid)
	}

	sc := &e.scratch[w]
	fr := sc.push()
	defer sc.pop()
	loadUnits := 1.0
	for k, wv := range whites {
		cand := e.refineCandidates(ctx, &m, vp, wv, sc.baseCands[k], fr.cands[fr.nw][:0])
		fr.cands[fr.nw] = cand
		if len(cand) == 0 {
			return // dead end: this Gpsi leads to no instance
		}
		fr.whites[fr.nw] = wv
		fr.nw++
		loadUnits *= float64(len(cand))
	}
	e.loads[w] += loadUnits
	for len(e.stepLoads[w]) <= ctx.Step() {
		e.stepLoads[w] = append(e.stepLoads[w], 0)
	}
	e.stepLoads[w][ctx.Step()] += loadUnits

	preMapped := uint16(0)
	for u := 0; u < e.p.N(); u++ {
		if m.isMapped(u) {
			preMapped |= 1 << uint(u)
		}
	}
	e.combine(ctx, &m, vp, preMapped, fr.whites[:fr.nw], fr.cands[:fr.nw], 0)
}

// refineCandidates applies the per-member half of Algorithm 5 — injectivity,
// the partial-order filter, and the light-weight edge index — to a hoisted
// base that already passed the degree and label filters. It mirrors the merge
// path of candidates exactly, minus the filters the base absorbed.
func (e *engine) refineCandidates(ctx *bsp.Context[gpsi], m *gpsi, vp, wv int, base []graph.VertexID, out []graph.VertexID) []graph.VertexID {
	for _, d := range base {
		if m.uses(d) {
			ctx.AddCounter("pruned_injective", 1)
			continue
		}
		ok := true
		for u := 0; u < e.p.N() && ok; u++ {
			if u == wv || !m.isMapped(u) {
				continue
			}
			if e.p.MustPrecede(wv, u) && !e.ord.Less(d, m.Map[u]) {
				ctx.AddCounter("pruned_order", 1)
				ok = false
			} else if e.p.MustPrecede(u, wv) && !e.ord.Less(m.Map[u], d) {
				ctx.AddCounter("pruned_order", 1)
				ok = false
			}
		}
		if !ok {
			continue
		}
		if e.ix != nil {
			for _, u := range e.p.Neighbors(wv) {
				if u == vp || !m.isMapped(u) {
					continue
				}
				ctx.AddCounter("index_queries", 1)
				if !e.ix.MayHaveEdge(d, m.Map[u]) {
					ctx.AddCounter("pruned_index", 1)
					ok = false
					break
				}
			}
		}
		if ok {
			out = append(out, d)
		}
	}
	return out
}

func (e *engine) expand(ctx *bsp.Context[gpsi], m gpsi) {
	if e.oomErr.Load() != nil || e.stopped.Load() {
		return
	}
	ctx.AddCounter("processed", 1)
	w := ctx.Worker()
	vp := int(m.Next)
	vd := m.Map[vp]
	m.Expanded |= 1 << uint(vp)

	// Verify pending edges incident to vp exactly against the local
	// adjacency (the "verification" role of later iterations; for cliques
	// this is all the later iterations do).
	for _, u := range e.p.Neighbors(vp) {
		if !m.isMapped(u) {
			continue
		}
		eid := e.edgeID[vp][u]
		if m.Pending&(1<<uint(eid)) == 0 {
			continue
		}
		if !e.bitmap.HasEdge(vd, m.Map[u]) {
			ctx.AddCounter("pruned_verify", 1)
			return
		}
		m.Pending &^= 1 << uint(eid)
	}

	// Candidate sets for WHITE neighbors (Algorithm 5), built in this
	// worker's reusable scratch frame.
	sc := &e.scratch[w]
	fr := sc.push()
	defer sc.pop()
	loadUnits := 1.0
	for _, wv := range e.p.Neighbors(vp) {
		if m.isMapped(wv) {
			continue
		}
		cand := e.candidates(ctx, &m, vp, vd, wv, fr.cands[fr.nw][:0])
		fr.cands[fr.nw] = cand
		if len(cand) == 0 {
			return // dead end: this Gpsi leads to no instance
		}
		fr.whites[fr.nw] = wv
		fr.nw++
		loadUnits *= float64(len(cand))
	}
	e.loads[w] += loadUnits
	for len(e.stepLoads[w]) <= ctx.Step() {
		e.stepLoads[w] = append(e.stepLoads[w], 0)
	}
	e.stepLoads[w][ctx.Step()] += loadUnits

	preMapped := uint16(0)
	for u := 0; u < e.p.N(); u++ {
		if m.isMapped(u) {
			preMapped |= 1 << uint(u)
		}
	}
	e.combine(ctx, &m, vp, preMapped, fr.whites[:fr.nw], fr.cands[:fr.nw], 0)
}

// candidates appends to out the admissible data vertices for WHITE pattern
// vertex wv while expanding vp at vd, applying the degree filter, the
// partial-order filter, injectivity, and the light-weight edge index against
// wv's already-mapped neighbors (other than vp). out is a reusable scratch
// buffer owned by the caller's expansion frame.
func (e *engine) candidates(ctx *bsp.Context[gpsi], m *gpsi, vp int, vd graph.VertexID, wv int, out []graph.VertexID) []graph.VertexID {
	minDeg := e.p.Degree(wv)
	// Bitset AND fast path (back-ported from the ESU engine's BitGraph
	// kernel): when vd is a hub and wv has other already-mapped pattern
	// neighbors that are hubs too, the candidate set is confined to the
	// word-wide AND of their adjacency rows — an exact intersection, so the
	// bloom check against those neighbors is subsumed. It is a strict filter:
	// every vertex it drops lacks a real edge to a mapped neighbor and would
	// have been pruned at pending-edge verification, so counts are identical
	// with the switch off (the BenchmarkHotpath "w/o bitset" configuration).
	if !e.opts.DisableBitsetAnd {
		if rowVd := e.bitmap.Row(vd); rowVd != nil {
			var hubRows [maxPatternVertices][]uint64
			nHub := 0
			hubMask := uint32(0)
			for _, u := range e.p.Neighbors(wv) {
				if u == vp || !m.isMapped(u) {
					continue
				}
				if r := e.bitmap.Row(m.Map[u]); r != nil {
					hubRows[nHub] = r
					nHub++
					hubMask |= 1 << uint(u)
				}
			}
			if nHub > 0 {
				ctx.AddCounter("bitset_and", 1)
				return e.candidatesBitset(ctx, m, vp, wv, minDeg, rowVd, hubRows[:nHub], hubMask, out)
			}
		}
	}
	for _, d := range e.g.Neighbors(vd) {
		if e.g.Degree(d) < minDeg {
			ctx.AddCounter("pruned_degree", 1)
			continue
		}
		if e.opts.DataLabels != nil && int(e.opts.DataLabels[d]) != e.p.Label(wv) {
			ctx.AddCounter("pruned_label", 1)
			continue
		}
		if m.uses(d) {
			ctx.AddCounter("pruned_injective", 1)
			continue
		}
		ok := true
		for u := 0; u < e.p.N() && ok; u++ {
			if u == wv || !m.isMapped(u) {
				continue
			}
			if e.p.MustPrecede(wv, u) && !e.ord.Less(d, m.Map[u]) {
				ctx.AddCounter("pruned_order", 1)
				ok = false
			} else if e.p.MustPrecede(u, wv) && !e.ord.Less(m.Map[u], d) {
				ctx.AddCounter("pruned_order", 1)
				ok = false
			}
		}
		if !ok {
			continue
		}
		if e.ix != nil {
			for _, u := range e.p.Neighbors(wv) {
				if u == vp || !m.isMapped(u) {
					continue
				}
				ctx.AddCounter("index_queries", 1)
				if !e.ix.MayHaveEdge(d, m.Map[u]) {
					ctx.AddCounter("pruned_index", 1)
					ok = false
					break
				}
			}
		}
		if ok {
			out = append(out, d)
		}
	}
	return out
}

// candidatesBitset is the hub-regime body of candidates: it walks the words
// of vd's bitmap row ANDed with every mapped hub neighbor's row, then applies
// the same degree/label/injectivity/order filters as the merge path. Bloom
// checks only remain for mapped neighbors outside hubMask (non-hub vertices
// have no row; their edges are still verified exactly later). The word loop
// is inlined — no IterateSet closure — to keep the hot path allocation-free.
func (e *engine) candidatesBitset(ctx *bsp.Context[gpsi], m *gpsi, vp, wv, minDeg int, rowVd []uint64, hubRows [][]uint64, hubMask uint32, out []graph.VertexID) []graph.VertexID {
	for i, word := range rowVd {
		for _, r := range hubRows {
			word &= r[i]
		}
		base := i * 64
		for word != 0 {
			d := graph.VertexID(base + bits.TrailingZeros64(word))
			word &= word - 1
			if e.g.Degree(d) < minDeg {
				ctx.AddCounter("pruned_degree", 1)
				continue
			}
			if e.opts.DataLabels != nil && int(e.opts.DataLabels[d]) != e.p.Label(wv) {
				ctx.AddCounter("pruned_label", 1)
				continue
			}
			if m.uses(d) {
				ctx.AddCounter("pruned_injective", 1)
				continue
			}
			ok := true
			for u := 0; u < e.p.N() && ok; u++ {
				if u == wv || !m.isMapped(u) {
					continue
				}
				if e.p.MustPrecede(wv, u) && !e.ord.Less(d, m.Map[u]) {
					ctx.AddCounter("pruned_order", 1)
					ok = false
				} else if e.p.MustPrecede(u, wv) && !e.ord.Less(m.Map[u], d) {
					ctx.AddCounter("pruned_order", 1)
					ok = false
				}
			}
			if !ok {
				continue
			}
			if e.ix != nil {
				for _, u := range e.p.Neighbors(wv) {
					if u == vp || !m.isMapped(u) || hubMask&(1<<uint(u)) != 0 {
						continue
					}
					ctx.AddCounter("index_queries", 1)
					if !e.ix.MayHaveEdge(d, m.Map[u]) {
						ctx.AddCounter("pruned_index", 1)
						ok = false
						break
					}
				}
			}
			if ok {
				out = append(out, d)
			}
		}
	}
	return out
}

// combine enumerates the cross product of the candidate sets, pruning
// combinations that reuse a data vertex, violate the partial order between
// two newly mapped vertices, or fail an edge-index check between two newly
// mapped vertices. Surviving children are finalized.
func (e *engine) combine(ctx *bsp.Context[gpsi], m *gpsi, vp int, preMapped uint16, whites []int, cands [][]graph.VertexID, i int) {
	if e.oomErr.Load() != nil {
		return
	}
	if i == len(whites) {
		e.finalize(ctx, m)
		return
	}
	wv := whites[i]
	for _, d := range cands[i] {
		if m.uses(d) {
			ctx.AddCounter("pruned_injective", 1)
			continue
		}
		// Checks against pattern vertices mapped earlier in this combine
		// (candidate filtering could not see them).
		ok := true
		var newPending uint32
		for j := 0; j < i && ok; j++ {
			u := whites[j]
			du := m.Map[u]
			if e.p.MustPrecede(wv, u) && !e.ord.Less(d, du) {
				ctx.AddCounter("pruned_order", 1)
				ok = false
			} else if e.p.MustPrecede(u, wv) && !e.ord.Less(du, d) {
				ctx.AddCounter("pruned_order", 1)
				ok = false
			} else if e.p.HasEdge(wv, u) {
				if e.ix != nil {
					ctx.AddCounter("index_queries", 1)
					if !e.ix.MayHaveEdge(d, du) {
						ctx.AddCounter("pruned_index", 1)
						ok = false
						continue
					}
				}
				newPending |= 1 << uint(e.edgeID[wv][u])
			}
		}
		if !ok {
			continue
		}
		// Edges from wv to vertices mapped before this expansion, other than
		// the expanding vertex itself, were only index-checked: mark pending.
		for _, u := range e.p.Neighbors(wv) {
			if u != vp && preMapped&(1<<uint(u)) != 0 {
				newPending |= 1 << uint(e.edgeID[wv][u])
			}
		}
		m.Map[wv] = d
		m.Pending |= newPending
		e.combine(ctx, m, vp, preMapped, whites, cands, i+1)
		m.Pending &^= newPending
		m.Map[wv] = unmapped
	}
}

// finalize either emits a completed, fully verified instance or routes the
// Gpsi to its next expanding vertex per the distribution strategy.
func (e *engine) finalize(ctx *bsp.Context[gpsi], m *gpsi) {
	if m.isComplete() && m.Pending == 0 {
		if e.opts.EmitFilter != nil {
			// Hand the filter the reused per-worker buffer, not a view of m: a
			// direct m.Map slice would make every Gpsi on this path escape to
			// the heap (same reasoning as the OnInstance buffer below).
			sc := &e.scratch[ctx.Worker()]
			sc.emit = append(sc.emit[:0], m.Map[:m.N]...)
			if !e.opts.EmitFilter(sc.emit) {
				ctx.AddCounter("pruned_filter", 1)
				return
			}
		}
		ctx.AddCounter("results", 1)
		if e.opts.OnInstance != nil {
			// Hand out a reused per-worker buffer, not a view of m: the
			// callback may leak its argument, and a view would force every
			// Gpsi on this path to the heap. The OnInstance contract already
			// limits the slice's validity to the call.
			sc := &e.scratch[ctx.Worker()]
			sc.emit = append(sc.emit[:0], m.Map[:m.N]...)
			e.opts.OnInstance(sc.emit)
		}
		if e.opts.Collect {
			e.mu.Lock()
			e.instances = append(e.instances, append([]graph.VertexID(nil), m.Map[:m.N]...))
			e.mu.Unlock()
		}
		if e.opts.MaxResults > 0 && e.results.Add(1) >= e.opts.MaxResults {
			// The cap-hitting instance was already delivered above; stop the
			// run at the next message boundary.
			if e.stopped.CompareAndSwap(false, true) {
				ctx.Abort(errEarlyStop)
			}
		}
		return
	}
	w := ctx.Worker()
	sc := &e.scratch[w]
	grays := e.grayCandidates(m, sc.grays[:0])
	sc.grays = grays // keep the grown buffer; dead before any nested expand
	if len(grays) == 0 {
		// Unreachable for connected patterns; guard against silent loss.
		err := fmt.Errorf("psgl: stuck Gpsi with no GRAY vertex")
		ctx.Abort(err)
		return
	}
	next := e.chooseNext(w, m, grays)
	child := *m
	child.Next = int8(next)
	if e.opts.LocalExpansion && e.part.Owner(child.Map[next]) == ctx.Worker() {
		// Non-level-synchronous mode: the destination is local, so expand
		// now instead of crossing a superstep barrier. Recursion depth is
		// bounded by the pattern size (each inline step blackens a vertex).
		ctx.AddCounter("generated", 1)
		ctx.AddCounter("inline", 1)
		if !e.chargeBudget(ctx) {
			return
		}
		e.expand(ctx, child)
		return
	}
	e.send(ctx, child)
}

// grayCandidates appends to buf the GRAY vertices eligible as the next
// expansion point. For a complete-but-unverified Gpsi only endpoints of
// pending edges make progress on verification, so the choice narrows to them.
func (e *engine) grayCandidates(m *gpsi, buf []int) []int {
	grays := buf
	if m.isComplete() && m.Pending != 0 {
		for _, edge := range e.pEdges {
			eid := e.edgeID[edge[0]][edge[1]]
			if m.Pending&(1<<uint(eid)) == 0 {
				continue
			}
			for _, v := range edge {
				if m.isGray(v) && !contains(grays, v) {
					grays = append(grays, v)
				}
			}
		}
		if len(grays) > 0 {
			return grays
		}
	}
	for v := 0; v < e.p.N(); v++ {
		if m.isGray(v) {
			grays = append(grays, v)
		}
	}
	return grays
}

func contains(xs []int, x int) bool {
	for _, y := range xs {
		if y == x {
			return true
		}
	}
	return false
}

// send routes a Gpsi to the worker owning its next expansion vertex and
// enforces the intermediate-result budget.
func (e *engine) send(ctx *bsp.Context[gpsi], m gpsi) {
	ctx.Send(m.Map[m.Next], m)
	ctx.AddCounter("generated", 1)
	e.chargeBudget(ctx)
}

// chargeBudget accounts one created Gpsi against MaxIntermediate and reports
// whether the run may continue.
func (e *engine) chargeBudget(ctx *bsp.Context[gpsi]) bool {
	total := e.generated.Add(1)
	if e.opts.MaxIntermediate > 0 && total > e.opts.MaxIntermediate {
		err := ErrOutOfMemory
		e.oomErr.CompareAndSwap(nil, &err)
		ctx.Abort(err)
		return false
	}
	return true
}

// engineState is the bsp.Snapshotter payload: every accumulator the engine
// keeps outside the BSP inboxes. Capturing the RNG streams and workload
// views along with the load accumulators makes a replayed superstep take
// bit-identical routing decisions, so LoadUnits and LoadMakespan come out
// exactly-once — equal to a clean run's — across recoveries and resumes.
type engineState struct {
	Loads     []float64
	StepLoads [][]float64
	WViews    [][]float64
	Rng       []uint64
	Generated int64
}

// SnapshotState implements bsp.Snapshotter; it is called at barriers only,
// never concurrently with Init/Process.
func (e *engine) SnapshotState() ([]byte, error) {
	st := engineState{
		Loads:     e.loads,
		StepLoads: e.stepLoads,
		WViews:    e.wviews,
		Rng:       make([]uint64, len(e.rngs)),
		Generated: e.generated.Load(),
	}
	for i, r := range e.rngs {
		st.Rng[i] = r.state
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
		return nil, fmt.Errorf("psgl: encode engine state: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreState implements bsp.Snapshotter. nil data resets the engine's
// accumulators to their initial values (restart from scratch).
func (e *engine) RestoreState(data []byte) error {
	if data == nil {
		for w := range e.loads {
			e.loads[w] = 0
			e.stepLoads[w] = nil
			for j := range e.wviews[w] {
				e.wviews[w][j] = 0
			}
			*e.rngs[w] = *newXorshift(workerRngSeed(e.opts.Seed, w))
		}
		e.generated.Store(0)
		return nil
	}
	var st engineState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("psgl: decode engine state: %w", err)
	}
	k := e.opts.Workers
	if len(st.Loads) != k || len(st.WViews) != k || len(st.Rng) != k || len(st.StepLoads) != k {
		return fmt.Errorf("psgl: engine snapshot worker count mismatch (have %d workers)", k)
	}
	e.loads = st.Loads
	e.stepLoads = st.StepLoads
	e.wviews = st.WViews
	for i := range e.rngs {
		e.rngs[i].state = st.Rng[i]
	}
	e.generated.Store(st.Generated)
	return nil
}

func (e *engine) buildResult(rs *bsp.RunStats, wall time.Duration) *Result {
	st := Stats{
		Supersteps:          rs.Supersteps,
		GpsiGenerated:       rs.Counters["generated"],
		GpsiProcessed:       rs.Counters["processed"],
		InlineExpansions:    rs.Counters["inline"],
		PrunedByDegree:      rs.Counters["pruned_degree"],
		PrunedByOrder:       rs.Counters["pruned_order"],
		PrunedByIndex:       rs.Counters["pruned_index"],
		PrunedByInjectivity: rs.Counters["pruned_injective"],
		PrunedByVerify:      rs.Counters["pruned_verify"],
		PrunedByLabel:       rs.Counters["pruned_label"],
		PrunedByFilter:      rs.Counters["pruned_filter"],
		EdgeIndexQueries:    rs.Counters["index_queries"],
		BitsetAndCandidates: rs.Counters["bitset_and"],
		CompressedFrames:    rs.Counters["compressed_frames"],
		CompressedWireBytes: rs.Counters["compressed_wire_bytes"],
		CompressedRawBytes:  rs.Counters["compressed_raw_bytes"],
		GroupRuns:           rs.Counters["group_runs"],
		GroupMembers:        rs.Counters["group_members"],
		Results:             rs.Counters["results"],
		InitialVertex:       e.initial,
		Recoveries:          rs.Recoveries,
		WorkerTime:          rs.WorkerTime,
		WorkerMessages:      rs.WorkerMessages,
		LoadUnits:           e.loads,
		PerStepMessages:     rs.PerStepMessages,
		SimulatedMakespan:   rs.SimulatedMakespan(),
		WallTime:            wall,
	}
	if e.ix != nil {
		st.EdgeIndexBytes = e.ix.SizeBytes()
	}
	// The observer's logical view mirrors the same exactly-once accumulators
	// Stats is built from (the loads ride barrier snapshots).
	e.opts.Observer.RecordWorkerLoads(e.loads)
	// Load makespan (Equation 3 with the cost-model load units): sum over
	// supersteps of the heaviest worker's load. Deterministic and
	// independent of the physical core count.
	steps := 0
	for _, sl := range e.stepLoads {
		if len(sl) > steps {
			steps = len(sl)
		}
	}
	for s := 0; s < steps; s++ {
		max := 0.0
		for _, sl := range e.stepLoads {
			if s < len(sl) && sl[s] > max {
				max = sl[s]
			}
		}
		st.LoadMakespan += max
	}
	return &Result{
		Count:     st.Results,
		Instances: e.instances,
		Truncated: e.stopped.Load(),
		Stats:     st,
	}
}

// xorshift is a tiny per-worker PRNG; math/rand would work but this keeps the
// hot strategy path allocation- and lock-free with reproducible streams.
type xorshift struct{ state uint64 }

func newXorshift(seed uint64) *xorshift {
	if seed == 0 {
		seed = 0x2545f4914f6cdd1d
	}
	return &xorshift{state: seed}
}

func (x *xorshift) next() uint64 {
	s := x.state
	s ^= s << 13
	s ^= s >> 7
	s ^= s << 17
	x.state = s
	return s
}

// intn returns a uniform value in [0, n) via Lemire's multiply-shift with
// rejection — unlike the naive next()%n, the distribution carries no modulo
// bias toward low indices for non-power-of-two n.
func (x *xorshift) intn(n int) int {
	v := uint64(n)
	hi, lo := bits.Mul64(x.next(), v)
	if lo < v {
		// Reject the draws that land in the short final interval.
		thresh := -v % v
		for lo < thresh {
			hi, lo = bits.Mul64(x.next(), v)
		}
	}
	return int(hi)
}

// float64v returns a uniform value in [0, 1).
func (x *xorshift) float64v() float64 {
	return float64(x.next()>>11) / float64(1<<53)
}
