package core

import (
	"sync/atomic"
	"testing"

	"psgl/internal/gen"
	"psgl/internal/pattern"
	"psgl/internal/stats"
)

// TestPlannedPatternMatchesUnplanned: running with a pre-broken pattern and
// pre-selected initial vertex (the plan-cache path) must be bit-identical to
// the per-run planning path for every strategy.
func TestPlannedPatternMatchesUnplanned(t *testing.T) {
	g := gen.ChungLu(2000, 8000, 1.8, 7)
	dist := stats.FromHistogram(g.DegreeHistogram())
	for _, p := range []*pattern.Pattern{pattern.PG1(), pattern.PG3()} {
		broken := p.BreakAutomorphisms()
		initial := SelectInitialVertex(broken, dist)
		for _, s := range []Strategy{StrategyWorkloadAware, StrategyRandom, StrategyRoulette} {
			opts := NewOptions()
			opts.Strategy = s
			opts.Seed = 42
			want, err := Run(g, p, opts)
			if err != nil {
				t.Fatalf("%s/%s unplanned: %v", p.Name(), s, err)
			}
			planned := opts
			planned.PlannedPattern = true
			planned.InitialVertex = initial
			got, err := Run(g, broken, planned)
			if err != nil {
				t.Fatalf("%s/%s planned: %v", p.Name(), s, err)
			}
			if got.Count != want.Count {
				t.Fatalf("%s/%s: planned count %d != unplanned %d", p.Name(), s, got.Count, want.Count)
			}
			if got.Stats.GpsiGenerated != want.Stats.GpsiGenerated {
				t.Fatalf("%s/%s: planned generated %d != unplanned %d",
					p.Name(), s, got.Stats.GpsiGenerated, want.Stats.GpsiGenerated)
			}
		}
	}
}

// TestMaxResultsEarlyTermination: a capped run stops early, reports success
// with Truncated set, and still delivers at least the cap.
func TestMaxResultsEarlyTermination(t *testing.T) {
	g := gen.ChungLu(2000, 8000, 1.8, 7)
	opts := NewOptions()
	opts.Seed = 3
	full, err := Run(g, pattern.PG1(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if full.Count < 50 {
		t.Fatalf("test graph too sparse: only %d triangles", full.Count)
	}

	var streamed atomic.Int64
	capped := opts
	capped.MaxResults = 5
	capped.OnInstance = func([]int32) { streamed.Add(1) }
	res, err := Run(g, pattern.PG1(), capped)
	if err != nil {
		t.Fatalf("capped run failed: %v", err)
	}
	if !res.Truncated {
		t.Fatal("capped run not marked Truncated")
	}
	if res.Count < 5 {
		t.Fatalf("capped run found %d < 5 instances", res.Count)
	}
	if res.Count >= full.Count {
		t.Fatalf("capped run did not stop early: %d of %d instances", res.Count, full.Count)
	}
	if streamed.Load() != res.Count {
		t.Fatalf("OnInstance saw %d instances, Count says %d", streamed.Load(), res.Count)
	}
}

// TestMaxResultsAboveTotal: a cap the run never reaches changes nothing.
func TestMaxResultsAboveTotal(t *testing.T) {
	g := gen.ChungLu(500, 2000, 1.8, 7)
	opts := NewOptions()
	want, err := Run(g, pattern.PG1(), opts)
	if err != nil {
		t.Fatal(err)
	}
	capped := opts
	capped.MaxResults = want.Count + 1
	res, err := Run(g, pattern.PG1(), capped)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatal("unreached cap marked the run Truncated")
	}
	if res.Count != want.Count {
		t.Fatalf("count %d != uncapped %d", res.Count, want.Count)
	}
}
