package core

import (
	"testing"

	"psgl/internal/gen"
	"psgl/internal/graph"
	"psgl/internal/pattern"
	"psgl/internal/stats"
)

func degDistOf(n int, m int64, gamma float64, seed int64) *stats.Distribution {
	g := gen.ChungLu(n, m, gamma, seed)
	return stats.FromHistogram(g.DegreeHistogram())
}

func TestSelectInitialVertexCyclesCliquesUseTheorem5(t *testing.T) {
	dist := degDistOf(2000, 10000, 1.8, 1)
	for _, p := range []*pattern.Pattern{pattern.PG1(), pattern.PG2(), pattern.PG4(), pattern.Cycle(5), pattern.Clique(5)} {
		got := SelectInitialVertex(p, dist)
		if want := p.LowestRankVertex(); got != want {
			t.Errorf("%s: initial vertex %d, want lowest-rank %d", p.Name(), got, want)
		}
	}
}

func TestEstimateCostPositiveAndFinite(t *testing.T) {
	dist := degDistOf(2000, 10000, 1.8, 2)
	for _, p := range []*pattern.Pattern{pattern.PG3(), pattern.PG5(), pattern.Path(4), pattern.Star(4)} {
		for v := 0; v < p.N(); v++ {
			c := EstimateInitialVertexCost(p, dist, v)
			if c <= 0 || c > 1e19 {
				t.Errorf("%s v=%d: cost %g out of range", p.Name(), v, c)
			}
		}
	}
}

func TestEstimateCostPrefersLowFanoutStart(t *testing.T) {
	// On the star pattern, starting at a leaf means the first expansion maps
	// only the center (fanout ~ degree), while starting at the center maps
	// all leaves at once (fanout ~ C(d, k)). The model must prefer a leaf.
	dist := degDistOf(5000, 50000, 2.0, 3)
	p := pattern.Star(4)
	center := EstimateInitialVertexCost(p, dist, 0)
	leaf := EstimateInitialVertexCost(p, dist, 1)
	if leaf >= center {
		t.Fatalf("leaf start (%g) should be cheaper than center start (%g)", leaf, center)
	}
	if got := SelectInitialVertex(p, dist); got == 0 {
		t.Fatalf("SelectInitialVertex picked the star center")
	}
}

func TestEstimateCostMonotoneInSkew(t *testing.T) {
	// A more skewed graph has larger expected C(d,2) fanout, so the same
	// pattern/vertex must cost at least as much as on a balanced graph of
	// the same size.
	skewed := degDistOf(3000, 15000, 1.6, 4)
	p := pattern.PG5()
	gER := gen.ErdosRenyi(3000, 15000, 4)
	er := stats.FromHistogram(gER.DegreeHistogram())
	v := 0
	if EstimateInitialVertexCost(p, skewed, v) <= EstimateInitialVertexCost(p, er, v) {
		t.Fatal("skewed graph should have higher estimated cost")
	}
}

// TestTheorem5RuleEffectiveOnPowerLaw verifies the experimental claim behind
// Figure 6: on a skewed graph, starting cycles/cliques from the lowest-rank
// pattern vertex generates far fewer partial instances than starting from
// the highest-rank vertex.
func TestTheorem5RuleEffectiveOnPowerLaw(t *testing.T) {
	g := gen.ChungLu(1500, 6000, 1.6, 5)
	for _, p := range []*pattern.Pattern{pattern.PG1(), pattern.PG2()} {
		best := p.LowestRankVertex()
		// Worst start: the vertex below the most '<' constraints, whose
		// candidates come from the polarized nb side of the ordering.
		worst, preds := -1, -1
		for v := 0; v < p.N(); v++ {
			c := 0
			for u := 0; u < p.N(); u++ {
				if u != v && p.MustPrecede(u, v) {
					c++
				}
			}
			if c > preds {
				worst, preds = v, c
			}
		}
		lo, hi := expansionWork(t, g, p, best), expansionWork(t, g, p, worst)
		if lo*2 > hi {
			t.Errorf("%s: lowest-rank start work %.0f vs highest-rank %.0f — Theorem 5 rule ineffective",
				p.Name(), lo, hi)
		}
	}
}

// TestInitialVertexMattersLessOnRandomGraph mirrors Figure 6(d): on an ER
// graph the gap between initial vertices is small.
func TestInitialVertexMattersLessOnRandomGraph(t *testing.T) {
	gER := gen.ErdosRenyi(1500, 6000, 6)
	gPL := gen.ChungLu(1500, 6000, 1.6, 6)
	p := pattern.PG1()
	// Compare Gpsi-generation ratio worst/best on each graph.
	ratioER := initialVertexGap(t, gER, p)
	ratioPL := initialVertexGap(t, gPL, p)
	if ratioPL < 2*ratioER {
		t.Errorf("power-law gap (%.2f) should dwarf ER gap (%.2f)", ratioPL, ratioER)
	}
}

// expansionWork measures a run's expansion effort in cost-model load units
// (the product of candidate-set sizes per expansion, summed) — the quantity
// the initial-vertex choice actually moves; generated-Gpsi counts barely
// differ because the edge index prunes invalid children before they are sent.
func expansionWork(t *testing.T, g *graph.Graph, p *pattern.Pattern, v int) float64 {
	t.Helper()
	res, err := Run(g, p, Options{Workers: 2, InitialVertex: v})
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, l := range res.Stats.LoadUnits {
		total += l
	}
	if total <= 0 {
		total = 1
	}
	return total
}

func initialVertexGap(t *testing.T, g *graph.Graph, p *pattern.Pattern) float64 {
	lo, hi := 1e18, 0.0
	for v := 0; v < p.N(); v++ {
		w := expansionWork(t, g, p, v)
		if w < lo {
			lo = w
		}
		if w > hi {
			hi = w
		}
	}
	return hi / lo
}
