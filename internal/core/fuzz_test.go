package core

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"psgl/internal/bsp"
	"psgl/internal/graph"
)

var updateCorpus = flag.Bool("update", false, "rewrite committed fuzz seed corpora")

// FuzzGpsiDecode drives the Gpsi wire codec with arbitrary bytes.
// Invariants:
//
//  1. DecodeWire never panics and never over-reads: the returned rest is
//     exactly the unconsumed suffix of the input.
//  2. A successful decode re-encodes byte-identically to the consumed
//     prefix, and that encoding decodes back to the same value with nothing
//     left over — valid inputs round-trip.
func FuzzGpsiDecode(f *testing.F) {
	valid := gpsi{N: 3, Next: 1, Expanded: 0b001, Pending: 0}
	valid.Map = [maxPatternVertices]graph.VertexID{5, 7, 9}
	for i := int(valid.N); i < maxPatternVertices; i++ {
		valid.Map[i] = unmapped
	}
	f.Add(valid.AppendWire(nil))

	full := gpsi{N: maxPatternVertices, Next: 15, Expanded: 0xffff, Pending: 0xdeadbeef}
	for i := range full.Map {
		full.Map[i] = graph.VertexID(i * 1000)
	}
	f.Add(full.AppendWire(nil))
	f.Add(append(valid.AppendWire(nil), valid.AppendWire(nil)...)) // two back to back
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})                          // N = 0: out of range
	f.Add([]byte{17, 0, 0, 0, 0, 0, 0, 0})                         // N > 16: out of range
	f.Add([]byte{5, 1, 2, 3, 4, 5, 6, 7})                          // header only, body missing
	f.Add([]byte("short"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var m gpsi
		rest, err := m.DecodeWire(data)
		if err != nil {
			return
		}
		consumed := len(data) - len(rest)
		want := gpsiWireHeader + 4*int(m.N)
		if consumed != want {
			t.Fatalf("consumed %d bytes, encoding of N=%d is %d", consumed, m.N, want)
		}
		if len(rest) > 0 && !bytes.Equal(rest, data[consumed:]) {
			t.Fatalf("rest is not the input's suffix")
		}
		re := m.AppendWire(nil)
		if !bytes.Equal(re, data[:consumed]) {
			t.Fatalf("decode/encode not canonical:\n in: %x\nout: %x", data[:consumed], re)
		}
		var m2 gpsi
		rest2, err := m2.DecodeWire(re)
		if err != nil {
			t.Fatalf("re-decoding own encoding: %v", err)
		}
		if len(rest2) != 0 {
			t.Fatalf("%d bytes left after re-decoding own encoding", len(rest2))
		}
		if m2 != m {
			t.Fatalf("round trip changed the value:\n in: %+v\nout: %+v", m, m2)
		}
	})
}

// groupedGpsiSeeds is the committed seed corpus of FuzzGroupedGpsiRoundTrip:
// valid group encodings of several pattern sizes plus malformed inputs.
func groupedGpsiSeeds() map[string][]byte {
	small := gpsi{N: 3, Next: 1, Expanded: 0b001}
	small.Map = [maxPatternVertices]graph.VertexID{5, 7, 9}
	for i := int(small.N); i < maxPatternVertices; i++ {
		small.Map[i] = unmapped
	}
	full := gpsi{N: maxPatternVertices, Next: 15, Expanded: 0xffff, Pending: 0xdeadbeef}
	for i := range full.Map {
		full.Map[i] = graph.VertexID(i * 1000)
	}
	partial := small
	partial.Map[2] = unmapped
	return map[string][]byte{
		"seed_valid_n3":      small.AppendGroupWire(nil),
		"seed_valid_n16":     full.AppendGroupWire(nil),
		"seed_partial_map":   partial.AppendGroupWire(nil),
		"seed_n_zero":        {0, 0, 0, 0, 0, 0, 0, 0},
		"seed_n_too_big":     {17, 0, 0, 0, 0, 0, 0, 0},
		"seed_wrong_length":  {3, 1, 2, 3, 4},
		"seed_ascii_garbage": []byte("definitely not an encoding"),
		"seed_empty":         {},
	}
}

// TestWriteGroupedGpsiFuzzCorpus regenerates the committed seed corpus under
// testdata/fuzz (with -update).
func TestWriteGroupedGpsiFuzzCorpus(t *testing.T) {
	if !*updateCorpus {
		t.Skip("run with -update to regenerate the committed fuzz corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzGroupedGpsiRoundTrip")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range groupedGpsiSeeds() {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzGroupedGpsiRoundTrip drives the grouping-friendly Gpsi codec with
// arbitrary bytes. Unlike the compressed frame around it, the group encoding
// of one Gpsi is canonical — exactly 8+4N bytes, no varints — so the
// invariants are strict:
//
//  1. DecodeGroupWire never panics and rejects anything that is not exactly
//     one encoding (wrong length, N out of range).
//  2. A successful full decode (shared = 0) re-encodes byte-identically, and
//     the value survives a trip through a compressed frame next to prefix-
//     sharing siblings — the patch-decode path (shared > 0) reconstructs the
//     same message the full decode does.
func FuzzGroupedGpsiRoundTrip(f *testing.F) {
	for _, data := range groupedGpsiSeeds() {
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var m gpsi
		if err := m.DecodeGroupWire(data, 0); err != nil {
			return
		}
		re := m.AppendGroupWire(nil)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical:\n in: %x\nout: %x", data, re)
		}
		// Ship m through a compressed frame beside prefix-sharing siblings so
		// the patch-decode path (shared > 0) runs, and require every copy to
		// come back identical.
		batch := make([]bsp.Envelope[gpsi], 4)
		for i := range batch {
			sib := m
			sib.Pending ^= uint32(i) // same map prefix, different trailer
			batch[i] = bsp.Envelope[gpsi]{Dest: graph.VertexID(i), Msg: sib}
		}
		buf := bsp.AppendCompressedFrame(nil, 1, batch)
		_, _, out, err := bsp.DecodeCompressedFrame[gpsi](buf[4:])
		if err != nil {
			t.Fatalf("compressed frame round trip: %v", err)
		}
		if len(out) != len(batch) {
			t.Fatalf("round trip changed count %d→%d", len(batch), len(out))
		}
		seen := map[uint32]bool{}
		for _, env := range out {
			want := m
			want.Pending = env.Msg.Pending
			if env.Msg != want {
				t.Fatalf("patch decode diverged:\n in: %+v\nout: %+v", want, env.Msg)
			}
			seen[env.Msg.Pending] = true
		}
		for i := range batch {
			if !seen[m.Pending^uint32(i)] {
				t.Fatalf("sibling %d lost in round trip", i)
			}
		}
	})
}
