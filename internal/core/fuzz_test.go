package core

import (
	"bytes"
	"testing"

	"psgl/internal/graph"
)

// FuzzGpsiDecode drives the Gpsi wire codec with arbitrary bytes.
// Invariants:
//
//  1. DecodeWire never panics and never over-reads: the returned rest is
//     exactly the unconsumed suffix of the input.
//  2. A successful decode re-encodes byte-identically to the consumed
//     prefix, and that encoding decodes back to the same value with nothing
//     left over — valid inputs round-trip.
func FuzzGpsiDecode(f *testing.F) {
	valid := gpsi{N: 3, Next: 1, Expanded: 0b001, Pending: 0}
	valid.Map = [maxPatternVertices]graph.VertexID{5, 7, 9}
	for i := int(valid.N); i < maxPatternVertices; i++ {
		valid.Map[i] = unmapped
	}
	f.Add(valid.AppendWire(nil))

	full := gpsi{N: maxPatternVertices, Next: 15, Expanded: 0xffff, Pending: 0xdeadbeef}
	for i := range full.Map {
		full.Map[i] = graph.VertexID(i * 1000)
	}
	f.Add(full.AppendWire(nil))
	f.Add(append(valid.AppendWire(nil), valid.AppendWire(nil)...)) // two back to back
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})                          // N = 0: out of range
	f.Add([]byte{17, 0, 0, 0, 0, 0, 0, 0})                         // N > 16: out of range
	f.Add([]byte{5, 1, 2, 3, 4, 5, 6, 7})                          // header only, body missing
	f.Add([]byte("short"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var m gpsi
		rest, err := m.DecodeWire(data)
		if err != nil {
			return
		}
		consumed := len(data) - len(rest)
		want := gpsiWireHeader + 4*int(m.N)
		if consumed != want {
			t.Fatalf("consumed %d bytes, encoding of N=%d is %d", consumed, m.N, want)
		}
		if len(rest) > 0 && !bytes.Equal(rest, data[consumed:]) {
			t.Fatalf("rest is not the input's suffix")
		}
		re := m.AppendWire(nil)
		if !bytes.Equal(re, data[:consumed]) {
			t.Fatalf("decode/encode not canonical:\n in: %x\nout: %x", data[:consumed], re)
		}
		var m2 gpsi
		rest2, err := m2.DecodeWire(re)
		if err != nil {
			t.Fatalf("re-decoding own encoding: %v", err)
		}
		if len(rest2) != 0 {
			t.Fatalf("%d bytes left after re-decoding own encoding", len(rest2))
		}
		if m2 != m {
			t.Fatalf("round trip changed the value:\n in: %+v\nout: %+v", m, m2)
		}
	})
}
