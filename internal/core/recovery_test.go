package core

// Engine-level fault-tolerance tests: a PSgL run whose message exchange
// drops and errors batches must — with retry and checkpoint recovery —
// produce exactly the same instance count as a clean run.

import (
	"context"
	"errors"
	"testing"
	"time"

	"psgl/internal/bsp"
	"psgl/internal/gen"
	"psgl/internal/pattern"
)

func TestFaultRecoveryMatchesCleanRun(t *testing.T) {
	// The PR's acceptance test: seeded drop+error faults, absorbed by retry
	// where possible and checkpoint restores otherwise, with the final count
	// identical to the clean run's.
	g := gen.ErdosRenyi(80, 500, 1)
	p := pattern.PG2()
	base := Options{Workers: 3, Seed: 1}
	clean, err := Run(g, p, base)
	if err != nil {
		t.Fatal(err)
	}

	faulty := base
	faulty.Exchange = bsp.NewFaultyExchangeFactory(nil, bsp.FaultConfig{
		Seed:      9,
		ErrorRate: 0.35,
		DropRate:  0.25,
		FromStep:  1,
	})
	faulty.Retry = bsp.RetryPolicy{MaxAttempts: 3, BaseBackoff: 100 * time.Microsecond, MaxBackoff: time.Millisecond}
	faulty.CheckpointEvery = 1
	faulty.CheckpointStore = bsp.NewMemCheckpointStore()
	faulty.MaxRecoveries = 100
	res, err := Run(g, p, faulty)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != clean.Count {
		t.Fatalf("faulty run counted %d, clean run %d", res.Count, clean.Count)
	}
	if res.Stats.Results != clean.Stats.Results {
		t.Fatalf("Results = %d, want %d", res.Stats.Results, clean.Stats.Results)
	}
}

func TestResumeAcrossRunsMatchesCleanRun(t *testing.T) {
	g := gen.ErdosRenyi(60, 300, 2)
	p := pattern.PG2()
	base := Options{Workers: 3, Seed: 2}
	clean, err := Run(g, p, base)
	if err != nil {
		t.Fatal(err)
	}
	// Exchanges happen after supersteps 0 .. S-2 (the last superstep
	// produces nothing); kill the last one so the failure lands as deep into
	// the run as possible.
	failStep := clean.Stats.Supersteps - 2
	if failStep < 1 {
		t.Fatalf("run too short to test resume: %d supersteps", clean.Stats.Supersteps)
	}

	store := bsp.NewMemCheckpointStore()
	crashed := base
	crashed.Exchange = bsp.NewFaultyExchangeFactory(nil, bsp.FaultConfig{
		Seed: 5, ErrorRate: 1, FromStep: failStep, MaxFaults: 1,
	})
	crashed.CheckpointEvery = 1
	crashed.CheckpointStore = store
	if _, err := Run(g, p, crashed); !errors.Is(err, bsp.ErrInjectedFault) {
		t.Fatalf("crashed run err = %v, want ErrInjectedFault", err)
	}

	resumed := base
	resumed.ResumeFrom = store
	res, err := Run(g, p, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != clean.Count {
		t.Fatalf("resumed run counted %d, clean run %d", res.Count, clean.Count)
	}
	if res.Stats.Supersteps != clean.Stats.Supersteps {
		t.Fatalf("resumed Supersteps = %d, want %d", res.Stats.Supersteps, clean.Stats.Supersteps)
	}
}

func TestRunContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := gen.ErdosRenyi(40, 150, 3)
	_, err := RunContext(ctx, g, pattern.Triangle(), Options{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCountsAgreeAcrossExchanges(t *testing.T) {
	// Property: local, TCP, and faulty-with-retry transports are
	// interchangeable — same graph, same pattern, same count.
	for seed := int64(0); seed < 3; seed++ {
		g := gen.ErdosRenyi(60, 300, seed)
		p := pattern.PG3()
		base := Options{Workers: 3, Seed: seed}
		clean, err := Run(g, p, base)
		if err != nil {
			t.Fatal(err)
		}
		exchanges := map[string]bsp.ExchangeFactory{
			"tcp": bsp.NewTCPExchangeFactory(),
			"faulty": bsp.NewFaultyExchangeFactory(nil, bsp.FaultConfig{
				Seed: seed, ErrorRate: 0.3, DropRate: 0.1, DelayRate: 0.2, MaxDelay: time.Millisecond,
			}),
		}
		for name, ex := range exchanges {
			opts := base
			opts.Exchange = ex
			opts.Retry = bsp.RetryPolicy{MaxAttempts: 20, BaseBackoff: 100 * time.Microsecond, MaxBackoff: time.Millisecond}
			res, err := Run(g, p, opts)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, name, err)
			}
			if res.Count != clean.Count {
				t.Errorf("seed %d: %s counted %d, local %d", seed, name, res.Count, clean.Count)
			}
		}
	}
}
