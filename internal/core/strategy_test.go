package core

import (
	"testing"

	"psgl/internal/gen"
	"psgl/internal/pattern"
	"psgl/internal/stats"
)

// loadImbalance runs PG2 with the given strategy on a skewed graph and
// returns the per-worker load-unit imbalance factor (max/mean), Figure 5's
// quantity of interest.
func loadImbalance(t *testing.T, strategy Strategy, alpha float64, workers int) float64 {
	t.Helper()
	g := gen.ChungLu(3000, 12000, 1.5, 42)
	res, err := Run(g, pattern.PG2(), Options{
		Workers:  workers,
		Strategy: strategy,
		Alpha:    alpha,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	loads := make([]float64, len(res.Stats.LoadUnits))
	copy(loads, res.Stats.LoadUnits)
	return stats.Summarize(loads).ImbalanceFactor
}

// TestWorkloadAwareBalancesBetterThanRandom reproduces the qualitative claim
// of Figures 3 and 5: on a skewed graph with a pattern that generates new
// Gpsis in middle iterations, the workload-aware strategy (α=0.5) achieves a
// visibly better balance than random distribution.
func TestWorkloadAwareBalancesBetterThanRandom(t *testing.T) {
	const workers = 8
	random := loadImbalance(t, StrategyRandom, 0, workers)
	wa := loadImbalance(t, StrategyWorkloadAware, 0.5, workers)
	t.Logf("imbalance: random=%.2f wa(0.5)=%.2f", random, wa)
	if wa > random {
		t.Errorf("WA-0.5 imbalance %.2f worse than random %.2f", wa, random)
	}
}

func TestAllStrategiesProduceFiniteLoads(t *testing.T) {
	for _, s := range []Strategy{StrategyRandom, StrategyRoulette, StrategyWorkloadAware} {
		im := loadImbalance(t, s, 0.5, 4)
		if im < 1 || im > 1000 {
			t.Errorf("%v: imbalance %.2f implausible", s, im)
		}
	}
}

func TestStrategyStringNames(t *testing.T) {
	cases := map[Strategy]string{
		StrategyRandom:        "Random",
		StrategyRoulette:      "Roulette",
		StrategyWorkloadAware: "WA",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("String() = %q, want %q", s.String(), want)
		}
	}
	if Strategy(99).String() == "" {
		t.Error("unknown strategy should still render")
	}
}

// TestRouletteAvoidsHighDegreeExpansion checks Heuristic 1: under the
// roulette strategy, expansions happen at lower-degree data vertices than
// under the "anti-roulette" (always pick the max-degree GRAY), measured by
// accumulated load units (which grow with the expanding vertex's degree).
func TestRouletteAvoidsHighDegreeExpansion(t *testing.T) {
	g := gen.ChungLu(2000, 8000, 1.6, 13)
	run := func(s Strategy) float64 {
		res, err := Run(g, pattern.PG2(), Options{Workers: 4, Strategy: s, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for _, l := range res.Stats.LoadUnits {
			total += l
		}
		return total
	}
	// Roulette prefers small-degree expansion; random is degree-blind. Both
	// count the same instances, so roulette should not do more total work.
	roulette, random := run(StrategyRoulette), run(StrategyRandom)
	t.Logf("total load: roulette=%.0f random=%.0f", roulette, random)
	if roulette > 1.3*random {
		t.Errorf("roulette total work %.0f far exceeds random %.0f", roulette, random)
	}
}

func TestExpandCostMatchesBinomial(t *testing.T) {
	g := gen.ErdosRenyi(50, 200, 1)
	e, err := newEngine(g, pattern.PG4(), NewOptions().normalized())
	if err != nil {
		t.Fatal(err)
	}
	m := gpsi{N: 4}
	for i := range m.Map {
		m.Map[i] = unmapped
	}
	var v int32 = 7
	m.Map[0] = v
	// GRAY vertex 0 of K4 has 3 WHITE neighbors.
	want := stats.Binomial(g.Degree(v), 3)
	if want < 1 {
		want = 1
	}
	if got := e.expandCost(&m, 0); got != want {
		t.Errorf("expandCost = %g, want %g", got, want)
	}
}

func TestXorshiftBasics(t *testing.T) {
	x := newXorshift(0) // zero seed must be replaced
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		seen[x.next()] = true
	}
	if len(seen) < 1000 {
		t.Errorf("xorshift produced %d distinct values of 1000", len(seen))
	}
	for i := 0; i < 1000; i++ {
		v := x.intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("intn out of range: %d", v)
		}
		f := x.float64v()
		if f < 0 || f >= 1 {
			t.Fatalf("float64v out of range: %g", f)
		}
	}
}
