package core

import (
	"testing"

	"psgl/internal/gen"
	"psgl/internal/pattern"
)

// TestBitsetAndMatchesMergePath proves the bitset AND candidate fast path is
// count-preserving: on a skewed graph with the hub threshold lowered so the
// path actually fires, every pattern must report the same instance count with
// the switch on and off.
func TestBitsetAndMatchesMergePath(t *testing.T) {
	g := gen.ChungLu(1200, 7000, 1.7, 23)
	for _, pname := range []string{"pg1", "pg2", "pg3", "pg4"} {
		p, err := pattern.ByName(pname)
		if err != nil {
			t.Fatal(err)
		}
		on := NewOptions()
		on.Seed = 3
		on.BitmapMinDegree = 16
		off := on
		off.DisableBitsetAnd = true

		resOn, err := Run(g, p, on)
		if err != nil {
			t.Fatalf("%s bitset on: %v", pname, err)
		}
		resOff, err := Run(g, p, off)
		if err != nil {
			t.Fatalf("%s bitset off: %v", pname, err)
		}
		if resOn.Count != resOff.Count {
			t.Fatalf("%s: bitset path found %d instances, merge path %d",
				pname, resOn.Count, resOff.Count)
		}
		if resOff.Stats.BitsetAndCandidates != 0 {
			t.Fatalf("%s: disabled run still took the bitset path %d times",
				pname, resOff.Stats.BitsetAndCandidates)
		}
		// Cliques (pg1, pg4) map every WHITE neighbor in one combine, so their
		// candidate sets never see a second mapped neighbor; the cycle-bearing
		// patterns must exercise the fast path on this graph.
		if (pname == "pg2" || pname == "pg3") && resOn.Stats.BitsetAndCandidates == 0 {
			t.Fatalf("%s: bitset fast path never fired (threshold too high?)", pname)
		}
	}
}

// TestBitsetAndDefaultThresholdSparse checks the default configuration on a
// sparse graph still answers correctly with the fast path enabled (it rarely
// fires there; the gate must be a no-op, not a wrong turn).
func TestBitsetAndDefaultThresholdSparse(t *testing.T) {
	g := gen.ChungLu(800, 2400, 2.5, 31)
	p, err := pattern.ByName("pg2")
	if err != nil {
		t.Fatal(err)
	}
	on := NewOptions()
	off := on
	off.DisableBitsetAnd = true
	resOn, err := Run(g, p, on)
	if err != nil {
		t.Fatal(err)
	}
	resOff, err := Run(g, p, off)
	if err != nil {
		t.Fatal(err)
	}
	if resOn.Count != resOff.Count {
		t.Fatalf("sparse default: bitset %d vs merge %d", resOn.Count, resOff.Count)
	}
}
