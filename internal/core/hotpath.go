package core

// Hot-path microbenchmarks, exported so bench_test.go and cmd/psgl-bench's
// `hotpath` report run the exact same measurements. Each benchmark drives an
// internal hot path directly — the expansion step through a detached
// bsp.Context, and the wire codec on gpsi batches — so regressions in
// allocation discipline or encoding cost show up without the noise of a full
// run.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"testing"
	"time"

	"psgl/internal/bsp"
	"psgl/internal/gen"
	"psgl/internal/graph"
	"psgl/internal/pattern"
)

// HotpathBenchmark is one named hot-path microbenchmark runnable with
// testing.Benchmark or b.Run.
type HotpathBenchmark struct {
	Name string
	Fn   func(b *testing.B)
}

// HotpathBenchmarks returns the engine's hot-path microbenchmarks: the
// steady-state expansion step, the gpsi wire-codec round trip, and the TCP
// exchange frame codec (wire vs the gob fallback) on a realistic batch.
func HotpathBenchmarks() []HotpathBenchmark {
	return []HotpathBenchmark{
		{"expand", benchmarkExpand},
		{"expand-sparse-merge", benchmarkExpandSparseMerge},
		{"expand-hub-bitset", benchmarkExpandHub(false)},
		{"expand-hub-merge", benchmarkExpandHub(true)},
		{"gpsi-wire-roundtrip", benchmarkGpsiWireRoundTrip},
		{"frame-wire-roundtrip", benchmarkFrameWire},
		{"frame-gob-roundtrip", benchmarkFrameGob},
		{"frame-flat-dense", benchmarkFrameDense(false)},
		{"frame-compressed-dense", benchmarkFrameDense(true)},
		{"e2e-strict-barrier", benchmarkStragglerExchange(false)},
		{"e2e-async-pipelined", benchmarkStragglerExchange(true)},
	}
}

// HotpathFrameBytes reports the encoded size of the same Gpsi batch under
// the wire codec and under gob — the bytes/op axis of the codec comparison.
func HotpathFrameBytes() (wire, gobBytes int, err error) {
	batch, err := hotpathBatch()
	if err != nil {
		return 0, 0, err
	}
	wireBuf := bsp.AppendWireFrame(nil, 1, batch)
	var buf bytes.Buffer
	type gobFrame struct {
		Step  int
		Batch []bsp.Envelope[gpsi]
	}
	if err := gob.NewEncoder(&buf).Encode(gobFrame{Step: 1, Batch: batch}); err != nil {
		return 0, 0, err
	}
	return len(wireBuf), buf.Len(), nil
}

// newHotpathHarness builds an engine over a skewed mid-size graph plus a
// detached context and a worker-0 inbox seeded by a real Init pass.
func newHotpathHarness(p *pattern.Pattern, strategy Strategy) (*engine, *bsp.Context[gpsi], []bsp.Envelope[gpsi], error) {
	return newHotpathHarnessOpts(p, func(o *Options) { o.Strategy = strategy })
}

// newHotpathHarnessOpts is newHotpathHarness with an options hook (the bitset
// fast-path benchmarks flip DisableBitsetAnd / BitmapMinDegree through it).
func newHotpathHarnessOpts(p *pattern.Pattern, mutate func(*Options)) (*engine, *bsp.Context[gpsi], []bsp.Envelope[gpsi], error) {
	g := gen.ChungLu(3000, 15000, 1.8, 17)
	opts := NewOptions()
	opts.Seed = 5
	if mutate != nil {
		mutate(&opts)
	}
	e, err := newEngine(g, p.BreakAutomorphisms(), opts.normalized())
	if err != nil {
		return nil, nil, nil, err
	}
	cfg := bsp.Config{
		Workers: e.opts.Workers,
		Owner:   func(v graph.VertexID) int { return e.part.Owner(v) },
	}
	ictx := bsp.NewBenchContext[gpsi](cfg, 0, 0)
	e.Init(ictx)
	inbox := append([]bsp.Envelope[gpsi](nil), ictx.Sends(0)...)
	if len(inbox) == 0 {
		return nil, nil, nil, fmt.Errorf("hotpath harness: Init seeded no messages for worker 0")
	}
	return e, bsp.NewBenchContext[gpsi](cfg, 0, 1), inbox, nil
}

func benchmarkExpand(b *testing.B) {
	e, ctx, inbox, err := newHotpathHarness(pattern.Triangle(), StrategyWorkloadAware)
	if err != nil {
		b.Fatal(err)
	}
	// Warm up once so scratch frames, counters, and send buffers reach their
	// steady-state capacity before measuring.
	for _, env := range inbox {
		e.Process(ctx, env)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.ResetSends()
		e.Process(ctx, inbox[i%len(inbox)])
	}
}

// benchmarkExpandSparseMerge is benchmarkExpand with the bitset AND fast path
// disabled. On the sparse default graph the default hub threshold keeps the
// fast path nearly silent, so this pair proves the switch costs nothing in
// the sparse regime (the gate is one nil map lookup per candidate set).
func benchmarkExpandSparseMerge(b *testing.B) {
	e, ctx, inbox, err := newHotpathHarnessOpts(pattern.Triangle(),
		func(o *Options) { o.DisableBitsetAnd = true })
	if err != nil {
		b.Fatal(err)
	}
	for _, env := range inbox {
		e.Process(ctx, env)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.ResetSends()
		e.Process(ctx, inbox[i%len(inbox)])
	}
}

// benchmarkExpandHub measures second-level diamond expansions — the regime
// where a WHITE vertex has two mapped neighbors, so candidate generation can
// intersect hub rows — with the bitset fast path on (merge=false) or off.
// BitmapMinDegree drops to 16 so the skewed test graph's hubs qualify.
func benchmarkExpandHub(disableBitset bool) func(b *testing.B) {
	return func(b *testing.B) {
		e, _, inbox, err := newHotpathHarnessOpts(pattern.Diamond(), func(o *Options) {
			o.BitmapMinDegree = 16
			o.DisableBitsetAnd = disableBitset
		})
		if err != nil {
			b.Fatal(err)
		}
		cfg := bsp.Config{
			Workers: e.opts.Workers,
			Owner:   func(v graph.VertexID) int { return e.part.Owner(v) },
		}
		// Drive step 1 on the Init inbox to produce the second-level Gpsis
		// (two vertices mapped, one pending WHITE with two mapped neighbors).
		step1 := bsp.NewBenchContext[gpsi](cfg, 0, 1)
		for _, env := range inbox {
			e.Process(step1, env)
		}
		inbox2 := append([]bsp.Envelope[gpsi](nil), step1.Sends(0)...)
		if len(inbox2) == 0 {
			b.Fatal("hub harness: no second-level messages for worker 0")
		}
		ctx := bsp.NewBenchContext[gpsi](cfg, 0, 2)
		for _, env := range inbox2 {
			e.Process(ctx, env)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx.ResetSends()
			e.Process(ctx, inbox2[i%len(inbox2)])
		}
	}
}

// The async-vs-barrier end-to-end pair: random walks over a skewed Chung–Lu
// graph under a rotating latency straggler. Each round, one worker (rotating
// with the round number) stalls briefly on every message it processes — a
// service-time hiccup in the GC-pause/noisy-neighbor family, not CPU work, so
// the comparison is meaningful even on a single-core machine. Strict BSP
// serializes the stalls at the barriers: every superstep ends with the whole
// fleet waiting out that round's straggler, and the wall clock integrates
// Σ_rounds (straggler stall × its message share). The pipelined async
// exchange lets the other workers race ahead into later rounds while the
// straggler drains, so each worker only pays for the rounds where it is the
// straggler — the Section 4.2 makespan argument, measured.
//
// Both modes walk identical trajectories (the neighbor choice is a hash of
// the walker's position, not of arrival order), so the benchmark doubles as
// a differential check: the walks counter must match exactly.

// stragglerMsg is one walker: its current vertex and its round (hop count).
type stragglerMsg struct {
	V     graph.VertexID
	Round int32
}

type stragglerProgram struct {
	g      *graph.Graph
	k      int
	rounds int32
	seeds  int // walkers started per worker
	stall  time.Duration
}

func (p *stragglerProgram) Init(ctx *bsp.Context[stragglerMsg]) {
	n := uint64(p.g.NumVertices())
	rng := uint64(ctx.Worker())*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
	for i := 0; i < p.seeds; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		v := graph.VertexID(rng % n)
		ctx.Send(v, stragglerMsg{V: v, Round: 0})
	}
}

func (p *stragglerProgram) Process(ctx *bsp.Context[stragglerMsg], env bsp.Envelope[stragglerMsg]) {
	m := env.Msg
	if m.Round >= p.rounds {
		ctx.AddCounter("walks", 1)
		return
	}
	if ctx.Worker() == int(m.Round)%p.k {
		time.Sleep(p.stall)
	}
	next := m.V
	if nbrs := p.g.Neighbors(m.V); len(nbrs) > 0 {
		next = nbrs[(int(m.V)*31+int(m.Round)*17)%len(nbrs)]
	}
	ctx.Send(next, stragglerMsg{V: next, Round: m.Round + 1})
}

func benchmarkStragglerExchange(async bool) func(b *testing.B) {
	return func(b *testing.B) {
		const (
			workers = 4
			rounds  = 8
			seeds   = 16
			stall   = 500 * time.Microsecond
		)
		g := gen.ChungLu(2000, 10000, 1.6, 17)
		prog := &stragglerProgram{g: g, k: workers, rounds: rounds, seeds: seeds, stall: stall}
		cfg := bsp.Config{
			Workers:       workers,
			Owner:         func(v graph.VertexID) int { return int(v) % workers },
			MaxSupersteps: rounds + 2,
			AsyncExchange: async,
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			stats, err := bsp.Run(cfg, prog)
			if err != nil {
				b.Fatal(err)
			}
			if got := stats.Counters["walks"]; got != workers*seeds {
				b.Fatalf("%d walks completed, want %d (modes must agree exactly)", got, workers*seeds)
			}
		}
	}
}

func benchmarkGpsiWireRoundTrip(b *testing.B) {
	m := gpsi{N: 4, Next: 2, Expanded: 0b0011, Pending: 0b101}
	for i := range m.Map {
		m.Map[i] = unmapped
	}
	m.Map[0], m.Map[1], m.Map[2] = 7, 9, 13
	buf := make([]byte, 0, 64)
	var out gpsi
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = m.AppendWire(buf[:0])
		if _, err := out.DecodeWire(buf); err != nil {
			b.Fatal(err)
		}
	}
	if out.Map != m.Map {
		b.Fatal("wire round trip mangled the mapping")
	}
}

// hotpathBatch builds a realistic exchange batch: the Gpsis a real Init pass
// would put on the wire.
func hotpathBatch() ([]bsp.Envelope[gpsi], error) {
	_, _, inbox, err := newHotpathHarness(pattern.PG2(), StrategyWorkloadAware)
	return inbox, err
}

// hotpathLevelBatch builds worker 0's per-destination exchange batch at
// superstep `depth` for pattern p: Init seeds level 0, then each level's
// worker-0 inbox is expanded to produce the next. Deeper batches carry more
// mapped vertices per Gpsi — the longer shared prefixes the compressed codec
// front-codes away.
func hotpathLevelBatch(p *pattern.Pattern, depth int) ([]bsp.Envelope[gpsi], error) {
	e, _, inbox, err := newHotpathHarness(p, StrategyWorkloadAware)
	if err != nil {
		return nil, err
	}
	cfg := bsp.Config{
		Workers: e.opts.Workers,
		Owner:   func(v graph.VertexID) int { return e.part.Owner(v) },
	}
	cur := inbox
	for step := 1; step <= depth; step++ {
		ctx := bsp.NewBenchContext[gpsi](cfg, 0, step)
		for _, env := range cur {
			e.Process(ctx, env)
		}
		cur = append([]bsp.Envelope[gpsi](nil), ctx.Sends(0)...)
		if len(cur) == 0 {
			return nil, fmt.Errorf("hotpath harness: no level-%d messages for worker 0 (%s)", step, p.Name())
		}
	}
	return cur, nil
}

// CompressedBytesMeasure compares the flat and prefix-compressed encodings
// of the same per-destination exchange batch — the bytes-on-wire axis of the
// compressed-frames acceptance (≥1.5x on a dense pattern, no sparse
// regression).
type CompressedBytesMeasure struct {
	Pattern         string  `json:"pattern"`
	Level           int     `json:"level"`
	Envelopes       int     `json:"envelopes"`
	FlatBytes       int     `json:"flat_bytes"`
	CompressedBytes int     `json:"compressed_bytes"`
	Ratio           float64 `json:"ratio"`
}

// HotpathCompressedBytes measures flat-vs-compressed frame sizes on the
// sparse Init batch (PG1) and on dense second/third-level batches (PG3,
// PG5) of the hot-path harness graph.
func HotpathCompressedBytes() ([]CompressedBytesMeasure, error) {
	cases := []struct {
		p     *pattern.Pattern
		level int
	}{
		{pattern.PG1(), 0},
		{pattern.PG3(), 2},
		{pattern.PG5(), 3},
	}
	var out []CompressedBytesMeasure
	for _, c := range cases {
		batch, err := hotpathLevelBatch(c.p, c.level)
		if err != nil {
			return nil, err
		}
		flat := len(bsp.AppendWireFrame(nil, 1, batch))
		comp := len(bsp.AppendCompressedFrame(nil, 1, batch))
		out = append(out, CompressedBytesMeasure{
			Pattern:         c.p.Name(),
			Level:           c.level,
			Envelopes:       len(batch),
			FlatBytes:       flat,
			CompressedBytes: comp,
			Ratio:           float64(flat) / float64(comp),
		})
	}
	return out, nil
}

// benchmarkFrameDense round-trips worker 0's dense second-level PG3 batch
// through the flat (compressed=false) or prefix-compressed (true) frame
// codec — the new hot-path pair the compressed-frames acceptance tracks.
func benchmarkFrameDense(compressed bool) func(b *testing.B) {
	return func(b *testing.B) {
		batch, err := hotpathLevelBatch(pattern.PG3(), 2)
		if err != nil {
			b.Fatal(err)
		}
		var buf []byte
		if compressed {
			buf = bsp.AppendCompressedFrame(nil, 1, batch)
		} else {
			buf = bsp.AppendWireFrame(nil, 1, batch)
		}
		b.SetBytes(int64(len(buf)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if compressed {
				buf = bsp.AppendCompressedFrame(buf[:0], 1, batch)
			} else {
				buf = bsp.AppendWireFrame(buf[:0], 1, batch)
			}
			_, _, out, err := bsp.DecodeFrame[gpsi](buf[4:])
			if err != nil || len(out) != len(batch) {
				b.Fatalf("decode: %d envelopes, err %v", len(out), err)
			}
		}
	}
}

func benchmarkFrameWire(b *testing.B) {
	batch, err := hotpathBatch()
	if err != nil {
		b.Fatal(err)
	}
	buf := bsp.AppendWireFrame(nil, 1, batch)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = bsp.AppendWireFrame(buf[:0], 1, batch)
		// [4:] skips the length prefix, as the exchange's reader does.
		if _, out, err := bsp.DecodeWireFrame[gpsi](buf[4:]); err != nil || len(out) != len(batch) {
			b.Fatalf("decode: %d envelopes, err %v", len(out), err)
		}
	}
}

func benchmarkFrameGob(b *testing.B) {
	batch, err := hotpathBatch()
	if err != nil {
		b.Fatal(err)
	}
	type gobFrame struct {
		Step  int
		Batch []bsp.Envelope[gpsi]
	}
	var size int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fresh encoder/decoder per frame, matching what a reconnect or a
		// non-streaming transport would pay; the steady-state stream case is
		// still dominated by reflective encoding.
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(gobFrame{Step: 1, Batch: batch}); err != nil {
			b.Fatal(err)
		}
		size = int64(buf.Len())
		var fr gobFrame
		if err := gob.NewDecoder(&buf).Decode(&fr); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(size)
}
