package core

// Hot-path microbenchmarks, exported so bench_test.go and cmd/psgl-bench's
// `hotpath` report run the exact same measurements. Each benchmark drives an
// internal hot path directly — the expansion step through a detached
// bsp.Context, and the wire codec on gpsi batches — so regressions in
// allocation discipline or encoding cost show up without the noise of a full
// run.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"testing"

	"psgl/internal/bsp"
	"psgl/internal/gen"
	"psgl/internal/graph"
	"psgl/internal/pattern"
)

// HotpathBenchmark is one named hot-path microbenchmark runnable with
// testing.Benchmark or b.Run.
type HotpathBenchmark struct {
	Name string
	Fn   func(b *testing.B)
}

// HotpathBenchmarks returns the engine's hot-path microbenchmarks: the
// steady-state expansion step, the gpsi wire-codec round trip, and the TCP
// exchange frame codec (wire vs the gob fallback) on a realistic batch.
func HotpathBenchmarks() []HotpathBenchmark {
	return []HotpathBenchmark{
		{"expand", benchmarkExpand},
		{"expand-sparse-merge", benchmarkExpandSparseMerge},
		{"expand-hub-bitset", benchmarkExpandHub(false)},
		{"expand-hub-merge", benchmarkExpandHub(true)},
		{"gpsi-wire-roundtrip", benchmarkGpsiWireRoundTrip},
		{"frame-wire-roundtrip", benchmarkFrameWire},
		{"frame-gob-roundtrip", benchmarkFrameGob},
	}
}

// HotpathFrameBytes reports the encoded size of the same Gpsi batch under
// the wire codec and under gob — the bytes/op axis of the codec comparison.
func HotpathFrameBytes() (wire, gobBytes int, err error) {
	batch, err := hotpathBatch()
	if err != nil {
		return 0, 0, err
	}
	wireBuf := bsp.AppendWireFrame(nil, 1, batch)
	var buf bytes.Buffer
	type gobFrame struct {
		Step  int
		Batch []bsp.Envelope[gpsi]
	}
	if err := gob.NewEncoder(&buf).Encode(gobFrame{Step: 1, Batch: batch}); err != nil {
		return 0, 0, err
	}
	return len(wireBuf), buf.Len(), nil
}

// newHotpathHarness builds an engine over a skewed mid-size graph plus a
// detached context and a worker-0 inbox seeded by a real Init pass.
func newHotpathHarness(p *pattern.Pattern, strategy Strategy) (*engine, *bsp.Context[gpsi], []bsp.Envelope[gpsi], error) {
	return newHotpathHarnessOpts(p, func(o *Options) { o.Strategy = strategy })
}

// newHotpathHarnessOpts is newHotpathHarness with an options hook (the bitset
// fast-path benchmarks flip DisableBitsetAnd / BitmapMinDegree through it).
func newHotpathHarnessOpts(p *pattern.Pattern, mutate func(*Options)) (*engine, *bsp.Context[gpsi], []bsp.Envelope[gpsi], error) {
	g := gen.ChungLu(3000, 15000, 1.8, 17)
	opts := NewOptions()
	opts.Seed = 5
	if mutate != nil {
		mutate(&opts)
	}
	e, err := newEngine(g, p.BreakAutomorphisms(), opts.normalized())
	if err != nil {
		return nil, nil, nil, err
	}
	cfg := bsp.Config{
		Workers: e.opts.Workers,
		Owner:   func(v graph.VertexID) int { return e.part.Owner(v) },
	}
	ictx := bsp.NewBenchContext[gpsi](cfg, 0, 0)
	e.Init(ictx)
	inbox := append([]bsp.Envelope[gpsi](nil), ictx.Sends(0)...)
	if len(inbox) == 0 {
		return nil, nil, nil, fmt.Errorf("hotpath harness: Init seeded no messages for worker 0")
	}
	return e, bsp.NewBenchContext[gpsi](cfg, 0, 1), inbox, nil
}

func benchmarkExpand(b *testing.B) {
	e, ctx, inbox, err := newHotpathHarness(pattern.Triangle(), StrategyWorkloadAware)
	if err != nil {
		b.Fatal(err)
	}
	// Warm up once so scratch frames, counters, and send buffers reach their
	// steady-state capacity before measuring.
	for _, env := range inbox {
		e.Process(ctx, env)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.ResetSends()
		e.Process(ctx, inbox[i%len(inbox)])
	}
}

// benchmarkExpandSparseMerge is benchmarkExpand with the bitset AND fast path
// disabled. On the sparse default graph the default hub threshold keeps the
// fast path nearly silent, so this pair proves the switch costs nothing in
// the sparse regime (the gate is one nil map lookup per candidate set).
func benchmarkExpandSparseMerge(b *testing.B) {
	e, ctx, inbox, err := newHotpathHarnessOpts(pattern.Triangle(),
		func(o *Options) { o.DisableBitsetAnd = true })
	if err != nil {
		b.Fatal(err)
	}
	for _, env := range inbox {
		e.Process(ctx, env)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.ResetSends()
		e.Process(ctx, inbox[i%len(inbox)])
	}
}

// benchmarkExpandHub measures second-level diamond expansions — the regime
// where a WHITE vertex has two mapped neighbors, so candidate generation can
// intersect hub rows — with the bitset fast path on (merge=false) or off.
// BitmapMinDegree drops to 16 so the skewed test graph's hubs qualify.
func benchmarkExpandHub(disableBitset bool) func(b *testing.B) {
	return func(b *testing.B) {
		e, _, inbox, err := newHotpathHarnessOpts(pattern.Diamond(), func(o *Options) {
			o.BitmapMinDegree = 16
			o.DisableBitsetAnd = disableBitset
		})
		if err != nil {
			b.Fatal(err)
		}
		cfg := bsp.Config{
			Workers: e.opts.Workers,
			Owner:   func(v graph.VertexID) int { return e.part.Owner(v) },
		}
		// Drive step 1 on the Init inbox to produce the second-level Gpsis
		// (two vertices mapped, one pending WHITE with two mapped neighbors).
		step1 := bsp.NewBenchContext[gpsi](cfg, 0, 1)
		for _, env := range inbox {
			e.Process(step1, env)
		}
		inbox2 := append([]bsp.Envelope[gpsi](nil), step1.Sends(0)...)
		if len(inbox2) == 0 {
			b.Fatal("hub harness: no second-level messages for worker 0")
		}
		ctx := bsp.NewBenchContext[gpsi](cfg, 0, 2)
		for _, env := range inbox2 {
			e.Process(ctx, env)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx.ResetSends()
			e.Process(ctx, inbox2[i%len(inbox2)])
		}
	}
}

func benchmarkGpsiWireRoundTrip(b *testing.B) {
	m := gpsi{N: 4, Next: 2, Expanded: 0b0011, Pending: 0b101}
	for i := range m.Map {
		m.Map[i] = unmapped
	}
	m.Map[0], m.Map[1], m.Map[2] = 7, 9, 13
	buf := make([]byte, 0, 64)
	var out gpsi
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = m.AppendWire(buf[:0])
		if _, err := out.DecodeWire(buf); err != nil {
			b.Fatal(err)
		}
	}
	if out.Map != m.Map {
		b.Fatal("wire round trip mangled the mapping")
	}
}

// hotpathBatch builds a realistic exchange batch: the Gpsis a real Init pass
// would put on the wire.
func hotpathBatch() ([]bsp.Envelope[gpsi], error) {
	_, _, inbox, err := newHotpathHarness(pattern.PG2(), StrategyWorkloadAware)
	return inbox, err
}

func benchmarkFrameWire(b *testing.B) {
	batch, err := hotpathBatch()
	if err != nil {
		b.Fatal(err)
	}
	buf := bsp.AppendWireFrame(nil, 1, batch)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = bsp.AppendWireFrame(buf[:0], 1, batch)
		// [4:] skips the length prefix, as the exchange's reader does.
		if _, out, err := bsp.DecodeWireFrame[gpsi](buf[4:]); err != nil || len(out) != len(batch) {
			b.Fatalf("decode: %d envelopes, err %v", len(out), err)
		}
	}
}

func benchmarkFrameGob(b *testing.B) {
	batch, err := hotpathBatch()
	if err != nil {
		b.Fatal(err)
	}
	type gobFrame struct {
		Step  int
		Batch []bsp.Envelope[gpsi]
	}
	var size int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fresh encoder/decoder per frame, matching what a reconnect or a
		// non-streaming transport would pay; the steady-state stream case is
		// still dominated by reflective encoding.
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(gobFrame{Step: 1, Batch: batch}); err != nil {
			b.Fatal(err)
		}
		size = int64(buf.Len())
		var fr gobFrame
		if err := gob.NewDecoder(&buf).Decode(&fr); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(size)
}
