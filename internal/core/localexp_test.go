package core

import (
	"errors"
	"testing"

	"psgl/internal/centralized"
	"psgl/internal/gen"
	"psgl/internal/pattern"
)

func TestLocalExpansionMatchesOracle(t *testing.T) {
	g := gen.ChungLu(300, 1200, 1.8, 51)
	for _, p := range []*pattern.Pattern{pattern.PG1(), pattern.PG2(), pattern.PG3(), pattern.PG4(), pattern.PG5()} {
		want := centralized.CountInstances(p, g)
		res, err := Run(g, p, Options{Workers: 3, LocalExpansion: true})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if res.Count != want {
			t.Errorf("%s: local-expansion count=%d oracle=%d", p.Name(), res.Count, want)
		}
	}
}

func TestLocalExpansionReducesTraffic(t *testing.T) {
	g := gen.ChungLu(800, 3200, 1.8, 53)
	sync, err := Run(g, pattern.PG2(), Options{Workers: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	async, err := Run(g, pattern.PG2(), Options{Workers: 4, Seed: 2, LocalExpansion: true})
	if err != nil {
		t.Fatal(err)
	}
	if async.Count != sync.Count {
		t.Fatalf("counts diverge: %d vs %d", async.Count, sync.Count)
	}
	if async.Stats.InlineExpansions == 0 {
		t.Error("no inline expansions recorded")
	}
	// Same created-Gpsi volume; strictly fewer crossed the wire.
	sentSync := sync.Stats.GpsiGenerated
	sentAsync := async.Stats.GpsiGenerated - async.Stats.InlineExpansions
	if sentAsync >= sentSync {
		t.Errorf("local expansion did not reduce messages: %d vs %d", sentAsync, sentSync)
	}
	if async.Stats.Supersteps > sync.Stats.Supersteps {
		t.Errorf("local expansion increased supersteps: %d vs %d",
			async.Stats.Supersteps, sync.Stats.Supersteps)
	}
}

func TestLocalExpansionSingleWorkerRunsOneExpansionStep(t *testing.T) {
	// With one worker everything is local: the whole tree unrolls inside
	// superstep 1.
	g := gen.ErdosRenyi(100, 500, 55)
	res, err := Run(g, pattern.PG4(), Options{Workers: 1, LocalExpansion: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Supersteps != 2 { // init + one expansion step
		t.Fatalf("supersteps = %d, want 2", res.Stats.Supersteps)
	}
	if want := centralized.CountInstances(pattern.PG4(), g); res.Count != want {
		t.Fatalf("count=%d want=%d", res.Count, want)
	}
}

func TestLocalExpansionRespectsBudget(t *testing.T) {
	g := gen.ChungLu(500, 2500, 1.7, 57)
	_, err := Run(g, pattern.PG2(), Options{Workers: 1, LocalExpansion: true, MaxIntermediate: 100})
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}
