package makespan

import (
	"math"
	"testing"
)

func TestEvaluateKnownInstance(t *testing.T) {
	inst := &Instance{
		Items:   3,
		Workers: 2,
		Cost: [][]float64{
			{2, 5},
			{4, 1},
			{3, 3},
		},
	}
	a := evaluate(inst, []int{0, 1, 0})
	if a.Makespan != 5 { // worker 0: 2+3=5, worker 1: 1
		t.Fatalf("makespan = %g, want 5", a.Makespan)
	}
	if a.Total != 6 {
		t.Fatalf("total = %g, want 6", a.Total)
	}
}

func TestGreedyRespectsEligibility(t *testing.T) {
	inf := math.Inf(1)
	inst := &Instance{
		Items:   4,
		Workers: 3,
		Cost: [][]float64{
			{1, inf, inf},
			{inf, 2, inf},
			{inf, inf, 3},
			{5, 5, inf},
		},
	}
	for _, alpha := range []float64{0, 0.5, 1} {
		a := Greedy(inst, alpha)
		want := []int{0, 1, 2}
		for i, j := range want {
			if a.Worker[i] != j {
				t.Errorf("alpha=%g: item %d on worker %d, want %d", alpha, i, a.Worker[i], j)
			}
		}
		if a.Worker[3] == 2 {
			t.Errorf("alpha=%g: item 3 assigned to ineligible worker", alpha)
		}
	}
}

func TestOptimalTinyInstance(t *testing.T) {
	inst := &Instance{
		Items:   4,
		Workers: 2,
		Cost: [][]float64{
			{3, 3}, {3, 3}, {2, 2}, {2, 2},
		},
	}
	opt := Optimal(inst)
	if opt.Makespan != 5 { // {3,2} on each worker
		t.Fatalf("OPT = %g, want 5", opt.Makespan)
	}
}

// TestTheorem3Bound empirically validates the K·OPT guarantee of the α=0.5
// rule on many random instances with brute-force optima.
func TestTheorem3Bound(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		inst := RandomInstance(7, 3, 20, seed)
		opt := Optimal(inst)
		if math.IsInf(opt.Makespan, 1) {
			continue
		}
		g := Greedy(inst, 0.5)
		if g.Makespan > float64(inst.Workers)*opt.Makespan+1e-9 {
			t.Errorf("seed=%d: greedy %.0f > K*OPT = %.0f", seed, g.Makespan, float64(inst.Workers)*opt.Makespan)
		}
	}
}

func TestLowerBoundBelowOptimal(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		inst := RandomInstance(6, 3, 15, seed)
		opt := Optimal(inst)
		if lb := LowerBound(inst); lb > opt.Makespan+1e-9 {
			t.Errorf("seed=%d: lower bound %.2f above OPT %.2f", seed, lb, opt.Makespan)
		}
	}
}

// TestAlphaHalfBeatsExtremesOnAverage reproduces the argument of Section
// 5.1.1: across many larger instances, α=0.5 should (on average) produce a
// makespan no worse than both α=0 (greedy on added work, imbalanced) and
// α=1 (balance-first, local optima).
func TestAlphaHalfBeatsExtremesOnAverage(t *testing.T) {
	var sum0, sumHalf, sum1, sumRand float64
	const trials = 30
	for seed := int64(0); seed < trials; seed++ {
		inst := RandomInstance(400, 8, 100, seed)
		sum0 += Greedy(inst, 0).Makespan
		sumHalf += Greedy(inst, 0.5).Makespan
		sum1 += Greedy(inst, 1).Makespan
		sumRand += RandomAssign(inst, seed).Makespan
	}
	t.Logf("avg makespan: alpha0=%.0f alpha0.5=%.0f alpha1=%.0f random=%.0f",
		sum0/trials, sumHalf/trials, sum1/trials, sumRand/trials)
	if sumHalf > 1.05*sum0 {
		t.Errorf("alpha=0.5 (%.0f) much worse than alpha=0 (%.0f)", sumHalf, sum0)
	}
	if sumHalf > 1.05*sum1 {
		t.Errorf("alpha=0.5 (%.0f) much worse than alpha=1 (%.0f)", sumHalf, sum1)
	}
	if sumHalf > sumRand {
		t.Errorf("alpha=0.5 (%.0f) worse than random (%.0f)", sumHalf, sumRand)
	}
}

func TestRandomAssignEligibleOnly(t *testing.T) {
	inst := RandomInstance(100, 5, 10, 3)
	a := RandomAssign(inst, 9)
	for i, j := range a.Worker {
		if math.IsInf(inst.Cost[i][j], 1) {
			t.Fatalf("item %d randomly assigned to ineligible worker %d", i, j)
		}
	}
}

func TestRandomInstanceShape(t *testing.T) {
	inst := RandomInstance(50, 4, 10, 1)
	if inst.Items != 50 || inst.Workers != 4 || len(inst.Cost) != 50 {
		t.Fatal("bad instance shape")
	}
	for i, row := range inst.Cost {
		eligible := 0
		for _, c := range row {
			if !math.IsInf(c, 1) {
				if c < 1 || c > 10 {
					t.Fatalf("item %d: cost %g out of [1,10]", i, c)
				}
				eligible++
			}
		}
		if eligible == 0 {
			t.Fatalf("item %d has no eligible worker", i)
		}
	}
}

func BenchmarkGreedyAlphaHalf(b *testing.B) {
	inst := RandomInstance(10000, 16, 100, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Greedy(inst, 0.5)
	}
}
