// Package makespan studies the partial subgraph instance distribution problem
// of Definition 1 in isolation. The paper reduces minimum makespan scheduling
// on unrelated machines to it (Theorem 2, NP-hardness) and proposes the
// online heuristic argmin_j {W_j^α + w_ij}; Theorem 3 proves the α = 0.5
// variant stays within K·OPT. This package provides the online strategies,
// a brute-force optimum for small instances, and lower bounds, so the
// theorem and the α trade-off can be validated empirically.
package makespan

import (
	"math"
	"math/rand"
)

// Instance is a distribution problem: Cost[i][j] is the cost of processing
// item i on worker j (the paper's w_ij; +Inf marks "worker j does not own any
// GRAY vertex of Gpsi i").
type Instance struct {
	Items   int
	Workers int
	Cost    [][]float64
}

// RandomInstance generates an instance where each item is processable on a
// random subset of workers (like a Gpsi whose GRAY vertices land on a few
// workers) with integer costs in [1, maxCost].
func RandomInstance(items, workers, maxCost int, seed int64) *Instance {
	rng := rand.New(rand.NewSource(seed))
	inst := &Instance{Items: items, Workers: workers}
	inst.Cost = make([][]float64, items)
	for i := range inst.Cost {
		row := make([]float64, workers)
		for j := range row {
			row[j] = math.Inf(1)
		}
		// Each item is eligible on 1..min(3, workers) workers.
		eligible := 1 + rng.Intn(minInt(3, workers))
		for c := 0; c < eligible; c++ {
			row[rng.Intn(workers)] = float64(1 + rng.Intn(maxCost))
		}
		inst.Cost[i] = row
	}
	return inst
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Assignment is a schedule: worker per item, plus the resulting makespan.
type Assignment struct {
	Worker   []int
	Makespan float64
	Total    float64
}

func evaluate(inst *Instance, worker []int) Assignment {
	loads := make([]float64, inst.Workers)
	total := 0.0
	for i, j := range worker {
		loads[j] += inst.Cost[i][j]
		total += inst.Cost[i][j]
	}
	mk := 0.0
	for _, l := range loads {
		if l > mk {
			mk = l
		}
	}
	return Assignment{Worker: worker, Makespan: mk, Total: total}
}

// Greedy runs the online heuristic of Section 5.1.1 with penalty exponent
// alpha: each item i (in arrival order) goes to argmin_j {W_j^α + w_ij}.
// α = 1 is the classical least-loaded rule; α = 0 greedily minimizes the
// added work; α = 0.5 is the paper's balance/greed compromise.
func Greedy(inst *Instance, alpha float64) Assignment {
	loads := make([]float64, inst.Workers)
	worker := make([]int, inst.Items)
	for i := 0; i < inst.Items; i++ {
		best, bestScore := -1, math.Inf(1)
		for j := 0; j < inst.Workers; j++ {
			w := inst.Cost[i][j]
			if math.IsInf(w, 1) {
				continue
			}
			score := math.Pow(loads[j], alpha) + w
			if score < bestScore {
				best, bestScore = j, score
			}
		}
		if best < 0 {
			best = 0 // unschedulable item; charge worker 0 (should not happen)
		}
		worker[i] = best
		loads[best] += inst.Cost[i][best]
	}
	return evaluate(inst, worker)
}

// RandomAssign sends each item to a uniformly random eligible worker —
// the baseline matching PSgL's random distribution strategy.
func RandomAssign(inst *Instance, seed int64) Assignment {
	rng := rand.New(rand.NewSource(seed))
	worker := make([]int, inst.Items)
	for i := 0; i < inst.Items; i++ {
		var eligible []int
		for j := 0; j < inst.Workers; j++ {
			if !math.IsInf(inst.Cost[i][j], 1) {
				eligible = append(eligible, j)
			}
		}
		if len(eligible) == 0 {
			worker[i] = 0
			continue
		}
		worker[i] = eligible[rng.Intn(len(eligible))]
	}
	return evaluate(inst, worker)
}

// Optimal computes the exact minimum makespan by exhaustive search. Only
// feasible for tiny instances (Workers^Items assignments).
func Optimal(inst *Instance) Assignment {
	worker := make([]int, inst.Items)
	best := Assignment{Makespan: math.Inf(1)}
	var rec func(i int)
	rec = func(i int) {
		if i == inst.Items {
			a := evaluate(inst, append([]int(nil), worker...))
			if a.Makespan < best.Makespan {
				best = a
			}
			return
		}
		for j := 0; j < inst.Workers; j++ {
			if math.IsInf(inst.Cost[i][j], 1) {
				continue
			}
			worker[i] = j
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

// LowerBound returns g(N)/K = (Σ_i min_j w_ij) / K ≤ OPT, the bound used in
// the proof of Theorem 3.
func LowerBound(inst *Instance) float64 {
	sum := 0.0
	for i := 0; i < inst.Items; i++ {
		m := math.Inf(1)
		for j := 0; j < inst.Workers; j++ {
			if inst.Cost[i][j] < m {
				m = inst.Cost[i][j]
			}
		}
		if !math.IsInf(m, 1) {
			sum += m
		}
	}
	return sum / float64(inst.Workers)
}
