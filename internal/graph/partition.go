package graph

// Partition maps vertices to workers. PSgL random-partitions the data graph
// (Section 5.1: "the data graph is simply random partitioned"); a seeded
// integer hash gives a deterministic pseudo-random assignment without storing
// a permutation.
type Partition struct {
	K    int
	seed uint64
}

// NewPartition creates a random partition of vertices over k workers.
func NewPartition(k int, seed int64) Partition {
	if k <= 0 {
		panic("graph: partition needs at least one worker")
	}
	return Partition{K: k, seed: uint64(seed)}
}

// Owner returns the worker that owns vertex v, in [0, K).
func (p Partition) Owner(v VertexID) int {
	// splitmix64 finalizer over (v, seed): cheap, well mixed, deterministic.
	x := uint64(uint32(v)) + 0x9e3779b97f4a7c15 + p.seed
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(p.K))
}

// OwnedBy returns the vertices of g owned by worker w, in ascending order.
func (p Partition) OwnedBy(g *Graph, w int) []VertexID {
	var out []VertexID
	for v := 0; v < g.NumVertices(); v++ {
		if p.Owner(VertexID(v)) == w {
			out = append(out, VertexID(v))
		}
	}
	return out
}
