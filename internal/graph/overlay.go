package graph

import "fmt"

// Overlay is a versioned mutable view over an immutable CSR base graph. The
// base stays frozen (queries in flight keep reading it safely); mutations
// land as batches of edge additions and removals tracked in small patch sets,
// and Snapshot materializes the current edge set back into a fresh immutable
// CSR when a consistent *Graph is needed. Each accepted batch advances an
// epoch counter, and the overlay maintains the order-independent edge
// fingerprint incrementally, so the invariant
//
//	ov.Fingerprint() == ov.Snapshot().EdgeFingerprint()
//
// holds after every batch — the serving layer's plan cache and worker-plane
// generation gating key on that fingerprint.
//
// The vertex set is fixed at construction: an overlay can rewire edges among
// the base's vertices but never grows |V|.
//
// An Overlay is not safe for concurrent use; callers serialize mutations and
// publish immutable Snapshot results to readers.
type Overlay struct {
	base    *Graph
	added   map[uint64]struct{} // edges present here but absent in base
	removed map[uint64]struct{} // edges present in base but deleted here
	epoch   uint64
	fp      uint64 // incremental edge fingerprint of the current edge set
	edges   int64  // current |E|
	snap    *Graph // cached Snapshot; nil when stale
	// lifetime counters, surfaced in /stats
	addedTotal   int64
	removedTotal int64
	noopTotal    int64
	compactions  int64
}

// Batch is one atomic group of edge mutations. Removals apply before
// additions, so an edge listed in both ends up present.
type Batch struct {
	Add    [][2]VertexID
	Remove [][2]VertexID
}

// BatchResult reports what a batch actually changed. Added/Removed list the
// effective mutations (normalized u < v, deduplicated, noops dropped) — the
// exact anchor sets a delta enumeration needs.
type BatchResult struct {
	Epoch   uint64 // epoch after the batch
	Added   [][2]VertexID
	Removed [][2]VertexID
	Noops   int // entries that did not change the edge set
}

// edgeKey packs a normalized undirected edge into one comparable word.
func edgeKey(u, v VertexID) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// mix64 is the splitmix64 finalizer: a cheap 64-bit permutation with good
// avalanche, so summing mixed edge keys gives an order-independent digest
// that single edge flips always change.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewOverlay starts an overlay over base with an empty patch set.
func NewOverlay(base *Graph) *Overlay {
	return &Overlay{
		base:    base,
		added:   make(map[uint64]struct{}),
		removed: make(map[uint64]struct{}),
		fp:      base.EdgeFingerprint(),
		edges:   base.NumEdges(),
		snap:    base,
	}
}

// NumVertices returns |V| (fixed at construction).
func (o *Overlay) NumVertices() int { return o.base.NumVertices() }

// NumEdges returns the current |E| including pending patches.
func (o *Overlay) NumEdges() int64 { return o.edges }

// Epoch returns the number of accepted batches so far.
func (o *Overlay) Epoch() uint64 { return o.epoch }

// Fingerprint returns the order-independent edge fingerprint of the current
// edge set, maintained incrementally across batches and compactions.
func (o *Overlay) Fingerprint() uint64 { return o.fp }

// PatchSize returns the number of pending patch entries (added + removed)
// not yet folded into the base CSR — the compaction trigger.
func (o *Overlay) PatchSize() int { return len(o.added) + len(o.removed) }

// Compactions returns how many times the patch set has been folded back
// into the base CSR.
func (o *Overlay) Compactions() int64 { return o.compactions }

// MutationStats returns lifetime counts of effective additions, effective
// removals, and noop entries across all accepted batches.
func (o *Overlay) MutationStats() (added, removed, noops int64) {
	return o.addedTotal, o.removedTotal, o.noopTotal
}

// HasEdge reports whether {u, v} is present in the current edge set.
func (o *Overlay) HasEdge(u, v VertexID) bool {
	k := edgeKey(u, v)
	if _, ok := o.added[k]; ok {
		return true
	}
	if _, ok := o.removed[k]; ok {
		return false
	}
	return o.base.HasEdge(u, v)
}

// validateEdge rejects self-loops and out-of-range endpoints. The vertex set
// is fixed, so referencing a vertex the base does not have is an error, not
// an implicit grow.
func (o *Overlay) validateEdge(kind string, e [2]VertexID) error {
	n := o.base.NumVertices()
	if int(e[0]) < 0 || int(e[0]) >= n || int(e[1]) < 0 || int(e[1]) >= n {
		return fmt.Errorf("graph: %s edge (%d,%d) out of range [0,%d)", kind, e[0], e[1], n)
	}
	if e[0] == e[1] {
		return fmt.Errorf("graph: %s edge (%d,%d) is a self-loop", kind, e[0], e[1])
	}
	return nil
}

// ApplyBatch applies one mutation batch atomically: the whole batch is
// validated first, and a validation error leaves the overlay untouched.
// Removals apply before additions. Entries that do not change the edge set
// (adding a present edge, removing an absent one, add+remove cancelling
// within the batch) are counted as noops. Every accepted batch — even an
// all-noop one — advances the epoch.
func (o *Overlay) ApplyBatch(b Batch) (BatchResult, error) {
	for _, e := range b.Remove {
		if err := o.validateEdge("remove", e); err != nil {
			return BatchResult{}, err
		}
	}
	for _, e := range b.Add {
		if err := o.validateEdge("add", e); err != nil {
			return BatchResult{}, err
		}
	}
	var res BatchResult
	for _, e := range b.Remove {
		u, v := e[0], e[1]
		if u > v {
			u, v = v, u
		}
		if !o.HasEdge(u, v) {
			res.Noops++
			continue
		}
		k := edgeKey(u, v)
		if _, ok := o.added[k]; ok {
			delete(o.added, k)
		} else {
			o.removed[k] = struct{}{}
		}
		o.fp -= mix64(k)
		o.edges--
		res.Removed = append(res.Removed, [2]VertexID{u, v})
	}
	for _, e := range b.Add {
		u, v := e[0], e[1]
		if u > v {
			u, v = v, u
		}
		if o.HasEdge(u, v) {
			res.Noops++
			continue
		}
		k := edgeKey(u, v)
		if _, ok := o.removed[k]; ok {
			delete(o.removed, k)
		} else {
			o.added[k] = struct{}{}
		}
		o.fp += mix64(k)
		o.edges++
		res.Added = append(res.Added, [2]VertexID{u, v})
	}
	if len(res.Added) > 0 || len(res.Removed) > 0 {
		o.snap = nil
	}
	o.epoch++
	o.addedTotal += int64(len(res.Added))
	o.removedTotal += int64(len(res.Removed))
	o.noopTotal += int64(res.Noops)
	res.Epoch = o.epoch
	return res, nil
}

// Snapshot materializes the current edge set as an immutable CSR graph. The
// result is cached until the next effective mutation, so repeated calls
// between batches are free. The snapshot shares no mutable state with the
// overlay.
func (o *Overlay) Snapshot() *Graph {
	if o.snap != nil {
		return o.snap
	}
	b := NewBuilder(o.base.NumVertices())
	o.base.Edges(func(u, v VertexID) bool {
		if _, gone := o.removed[edgeKey(u, v)]; !gone {
			b.AddEdge(u, v)
		}
		return true
	})
	for k := range o.added {
		b.AddEdge(VertexID(int32(k>>32)), VertexID(int32(uint32(k))))
	}
	o.snap = b.Build()
	return o.snap
}

// Compact folds the pending patch set into a fresh base CSR, emptying the
// patches. Epoch and fingerprint are unchanged — compaction rewrites the
// representation, not the edge set. Returns the new base.
func (o *Overlay) Compact() *Graph {
	s := o.Snapshot()
	o.base = s
	o.added = make(map[uint64]struct{})
	o.removed = make(map[uint64]struct{})
	o.compactions++
	return s
}

// Base returns the current immutable base CSR (pre-patch edge set, unless a
// compaction just folded the patches in).
func (o *Overlay) Base() *Graph { return o.base }
