package graph

import (
	"math/rand"
	"testing"
)

func skewedTestGraph(n int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	// A few hubs connected widely, plus random background edges.
	for h := 0; h < 4; h++ {
		for i := 0; i < n/2; i++ {
			b.AddEdge(VertexID(h), VertexID(rng.Intn(n)))
		}
	}
	for i := 0; i < 3*n; i++ {
		b.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)))
	}
	return b.Build()
}

func TestBitmapIndexMatchesHasEdge(t *testing.T) {
	g := skewedTestGraph(2000, 1)
	ix := NewBitmapIndex(g, 100)
	if ix.IndexedVertices() == 0 {
		t.Fatal("no hubs indexed; test graph not skewed enough")
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20000; trial++ {
		u := VertexID(rng.Intn(2000))
		v := VertexID(rng.Intn(2000))
		if ix.HasEdge(u, v) != g.HasEdge(u, v) {
			t.Fatalf("bitmap disagrees with CSR at (%d,%d)", u, v)
		}
	}
	// Every real edge answers true through the hub path too.
	g.Edges(func(u, v VertexID) bool {
		if !ix.HasEdge(u, v) || !ix.HasEdge(v, u) {
			t.Fatalf("edge (%d,%d) missing from bitmap index", u, v)
		}
		return true
	})
}

func TestBitmapIndexDefaultThreshold(t *testing.T) {
	g := skewedTestGraph(3000, 3)
	ix := NewBitmapIndex(g, 0)
	if ix.minDeg < 256 {
		t.Fatalf("default threshold %d below floor", ix.minDeg)
	}
	for v := 0; v < g.NumVertices(); v++ {
		_, indexed := ix.bits[VertexID(v)]
		if indexed != (g.Degree(VertexID(v)) >= ix.minDeg) {
			t.Fatalf("vertex %d (deg %d) indexing inconsistent with threshold %d",
				v, g.Degree(VertexID(v)), ix.minDeg)
		}
	}
	if ix.SizeBytes() != int64(ix.IndexedVertices())*int64((g.NumVertices()+63)/64)*8 {
		t.Fatal("SizeBytes arithmetic wrong")
	}
}

func TestBitmapIndexNoHubs(t *testing.T) {
	// Threshold above the max degree: pure fallback, still correct.
	g := FromEdges(5, [][2]VertexID{{0, 1}, {1, 2}, {2, 3}})
	ix := NewBitmapIndex(g, 100)
	if ix.IndexedVertices() != 0 {
		t.Fatal("unexpected hub")
	}
	if !ix.HasEdge(1, 2) || ix.HasEdge(0, 3) {
		t.Fatal("fallback path wrong")
	}
}

// setOf builds a bitset with the given bits over `words` words (0 = sized to
// the highest bit).
func setOf(words int, vs ...int) []uint64 {
	for _, v := range vs {
		if v/64+1 > words {
			words = v/64 + 1
		}
	}
	ws := make([]uint64, words)
	for _, v := range vs {
		ws[v/64] |= 1 << (uint(v) % 64)
	}
	return ws
}

func TestBitsetHelpersTableDriven(t *testing.T) {
	// A >64-word pair: 100 words = 6400 vertices, bits straddling word
	// boundaries and the far tail.
	bigA := setOf(100, 0, 63, 64, 65, 127, 128, 4000, 6399)
	bigB := setOf(100, 63, 65, 128, 4000, 6398)
	cases := []struct {
		name        string
		a, b        []uint64
		popA        int
		and, andNot int
		iterated    []VertexID // expected IterateSet(a)
	}{
		{"both-empty", nil, nil, 0, 0, 0, nil},
		{"empty-a", nil, setOf(1, 3), 0, 0, 0, nil},
		{"empty-b", setOf(1, 3, 5), nil, 2, 0, 2, []VertexID{3, 5}},
		{"zero-words", setOf(2), setOf(2), 0, 0, 0, nil},
		{"single-word", setOf(1, 0, 1, 63), setOf(1, 1, 2, 63), 3, 2, 1, []VertexID{0, 1, 63}},
		{"word-boundary", setOf(2, 63, 64), setOf(2, 64, 65), 2, 1, 1, []VertexID{63, 64}},
		{"length-mismatch", setOf(1, 5), setOf(4, 5, 200), 1, 1, 0, []VertexID{5}},
		{"length-mismatch-rev", setOf(4, 5, 200), setOf(1, 5), 2, 1, 1, []VertexID{5, 200}},
		{"big", bigA, bigB, 8, 4, 4,
			[]VertexID{0, 63, 64, 65, 127, 128, 4000, 6399}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := PopCount(tc.a); got != tc.popA {
				t.Errorf("PopCount(a) = %d, want %d", got, tc.popA)
			}
			if got := AndCount(tc.a, tc.b); got != tc.and {
				t.Errorf("AndCount = %d, want %d", got, tc.and)
			}
			if got := AndCount(tc.b, tc.a); got != tc.and {
				t.Errorf("AndCount reversed = %d, want %d (must be symmetric)", got, tc.and)
			}
			if got := AndNotCount(tc.a, tc.b); got != tc.andNot {
				t.Errorf("AndNotCount = %d, want %d", got, tc.andNot)
			}
			var iter []VertexID
			IterateSet(tc.a, func(v VertexID) bool {
				iter = append(iter, v)
				return true
			})
			if len(iter) != len(tc.iterated) {
				t.Fatalf("IterateSet visited %v, want %v", iter, tc.iterated)
			}
			for i := range iter {
				if iter[i] != tc.iterated[i] {
					t.Fatalf("IterateSet visited %v, want %v", iter, tc.iterated)
				}
			}
		})
	}
}

func TestIterateSetEarlyStop(t *testing.T) {
	ws := setOf(3, 1, 70, 140)
	var seen []VertexID
	IterateSet(ws, func(v VertexID) bool {
		seen = append(seen, v)
		return len(seen) < 2
	})
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 70 {
		t.Fatalf("early stop visited %v, want [1 70]", seen)
	}
}

func TestBitsetHelpersAgreeWithGraph(t *testing.T) {
	// On a real skewed graph the hub rows' popcount must equal the CSR degree
	// and AndCount must equal the merge-intersection size.
	g := skewedTestGraph(2000, 11)
	ix := NewBitmapIndex(g, 50)
	if ix.IndexedVertices() < 2 {
		t.Fatal("need at least two hubs")
	}
	var hubs []VertexID
	for v := 0; v < g.NumVertices(); v++ {
		if ix.Row(VertexID(v)) != nil {
			hubs = append(hubs, VertexID(v))
		}
	}
	for _, h := range hubs {
		if got := PopCount(ix.Row(h)); got != g.Degree(h) {
			t.Fatalf("hub %d: PopCount %d != degree %d", h, got, g.Degree(h))
		}
	}
	a, b := hubs[0], hubs[1]
	want := 0
	for _, u := range g.Neighbors(a) {
		if g.HasEdge(b, u) {
			want++
		}
	}
	if got := AndCount(ix.Row(a), ix.Row(b)); got != want {
		t.Fatalf("AndCount(%d,%d) = %d, want merge intersection %d", a, b, got, want)
	}
	if got := AndNotCount(ix.Row(a), ix.Row(b)); got != g.Degree(a)-want {
		t.Fatalf("AndNotCount = %d, want %d", got, g.Degree(a)-want)
	}
}

func BenchmarkHasEdgeHubCSR(b *testing.B) {
	g := skewedTestGraph(20000, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HasEdge(0, VertexID(i%20000)) // vertex 0 is a hub: binary search over a huge list
	}
}

func BenchmarkHasEdgeHubBitmap(b *testing.B) {
	g := skewedTestGraph(20000, 7)
	ix := NewBitmapIndex(g, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.HasEdge(0, VertexID(i%20000))
	}
}
