package graph

import (
	"math/rand"
	"testing"
)

func skewedTestGraph(n int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	// A few hubs connected widely, plus random background edges.
	for h := 0; h < 4; h++ {
		for i := 0; i < n/2; i++ {
			b.AddEdge(VertexID(h), VertexID(rng.Intn(n)))
		}
	}
	for i := 0; i < 3*n; i++ {
		b.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)))
	}
	return b.Build()
}

func TestBitmapIndexMatchesHasEdge(t *testing.T) {
	g := skewedTestGraph(2000, 1)
	ix := NewBitmapIndex(g, 100)
	if ix.IndexedVertices() == 0 {
		t.Fatal("no hubs indexed; test graph not skewed enough")
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20000; trial++ {
		u := VertexID(rng.Intn(2000))
		v := VertexID(rng.Intn(2000))
		if ix.HasEdge(u, v) != g.HasEdge(u, v) {
			t.Fatalf("bitmap disagrees with CSR at (%d,%d)", u, v)
		}
	}
	// Every real edge answers true through the hub path too.
	g.Edges(func(u, v VertexID) bool {
		if !ix.HasEdge(u, v) || !ix.HasEdge(v, u) {
			t.Fatalf("edge (%d,%d) missing from bitmap index", u, v)
		}
		return true
	})
}

func TestBitmapIndexDefaultThreshold(t *testing.T) {
	g := skewedTestGraph(3000, 3)
	ix := NewBitmapIndex(g, 0)
	if ix.minDeg < 256 {
		t.Fatalf("default threshold %d below floor", ix.minDeg)
	}
	for v := 0; v < g.NumVertices(); v++ {
		_, indexed := ix.bits[VertexID(v)]
		if indexed != (g.Degree(VertexID(v)) >= ix.minDeg) {
			t.Fatalf("vertex %d (deg %d) indexing inconsistent with threshold %d",
				v, g.Degree(VertexID(v)), ix.minDeg)
		}
	}
	if ix.SizeBytes() != int64(ix.IndexedVertices())*int64((g.NumVertices()+63)/64)*8 {
		t.Fatal("SizeBytes arithmetic wrong")
	}
}

func TestBitmapIndexNoHubs(t *testing.T) {
	// Threshold above the max degree: pure fallback, still correct.
	g := FromEdges(5, [][2]VertexID{{0, 1}, {1, 2}, {2, 3}})
	ix := NewBitmapIndex(g, 100)
	if ix.IndexedVertices() != 0 {
		t.Fatal("unexpected hub")
	}
	if !ix.HasEdge(1, 2) || ix.HasEdge(0, 3) {
		t.Fatal("fallback path wrong")
	}
}

func BenchmarkHasEdgeHubCSR(b *testing.B) {
	g := skewedTestGraph(20000, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HasEdge(0, VertexID(i%20000)) // vertex 0 is a hub: binary search over a huge list
	}
}

func BenchmarkHasEdgeHubBitmap(b *testing.B) {
	g := skewedTestGraph(20000, 7)
	ix := NewBitmapIndex(g, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.HasEdge(0, VertexID(i%20000))
	}
}
