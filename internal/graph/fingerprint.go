package graph

// Fingerprint returns a stable 64-bit digest of the graph's structure:
// FNV-1a over the CSR offsets and adjacency arrays. Because Build sorts and
// deduplicates adjacency lists, any construction order of the same edge set
// produces the same CSR and therefore the same fingerprint. The resident
// query service keys its plan cache on (fingerprint, canonical pattern) and
// reports the fingerprint in /stats so clients can detect which graph a
// server is holding.
func (g *Graph) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime64
			x >>= 8
		}
	}
	mix(uint64(len(g.offsets) - 1))
	for _, o := range g.offsets {
		mix(uint64(o))
	}
	for _, v := range g.adj {
		mix(uint64(uint32(v)))
	}
	return h
}

// EdgeFingerprint returns an order-independent 64-bit digest of the edge
// set: a seed derived from |V| plus the wrapping sum of mix64 over every
// normalized edge key. Unlike Fingerprint (a sequential FNV walk over the
// CSR arrays), this digest is a commutative sum, so an Overlay can maintain
// it incrementally — adding an edge adds its term, removing subtracts it —
// without rescanning the graph. Two graphs over the same vertex count have
// equal EdgeFingerprints iff they (almost surely) have the same edge set.
func (g *Graph) EdgeFingerprint() uint64 {
	fp := mix64(0x5851f42d4c957f2d ^ uint64(g.NumVertices()))
	g.Edges(func(u, v VertexID) bool {
		fp += mix64(edgeKey(u, v))
		return true
	})
	return fp
}
