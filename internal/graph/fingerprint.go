package graph

// Fingerprint returns a stable 64-bit digest of the graph's structure:
// FNV-1a over the CSR offsets and adjacency arrays. Because Build sorts and
// deduplicates adjacency lists, any construction order of the same edge set
// produces the same CSR and therefore the same fingerprint. The resident
// query service keys its plan cache on (fingerprint, canonical pattern) and
// reports the fingerprint in /stats so clients can detect which graph a
// server is holding.
func (g *Graph) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime64
			x >>= 8
		}
	}
	mix(uint64(len(g.offsets) - 1))
	for _, o := range g.offsets {
		mix(uint64(o))
	}
	for _, v := range g.adj {
		mix(uint64(uint32(v)))
	}
	return h
}
