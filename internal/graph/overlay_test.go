package graph

import (
	"math/rand"
	"testing"
)

// sameEdgeSet reports whether two graphs list exactly the same undirected
// edges.
func sameEdgeSet(a, b *Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	same := true
	a.Edges(func(u, v VertexID) bool {
		if !b.HasEdge(u, v) {
			same = false
			return false
		}
		return true
	})
	return same
}

func TestOverlayApplyBatchAndSnapshot(t *testing.T) {
	base := FromEdges(5, [][2]VertexID{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	ov := NewOverlay(base)
	if got := ov.Snapshot(); got != base {
		t.Fatalf("fresh overlay snapshot should be the base itself")
	}

	res, err := ov.ApplyBatch(Batch{
		Add:    [][2]VertexID{{0, 2}, {4, 0}},
		Remove: [][2]VertexID{{2, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 1 || ov.Epoch() != 1 {
		t.Fatalf("epoch = %d/%d, want 1", res.Epoch, ov.Epoch())
	}
	if len(res.Added) != 2 || len(res.Removed) != 1 || res.Noops != 0 {
		t.Fatalf("effective changes = %v/%v/%d", res.Added, res.Removed, res.Noops)
	}
	// Effective edges come back normalized u < v.
	if res.Added[1] != [2]VertexID{0, 4} || res.Removed[0] != [2]VertexID{1, 2} {
		t.Fatalf("normalization: added %v removed %v", res.Added, res.Removed)
	}
	if !ov.HasEdge(2, 0) || ov.HasEdge(1, 2) || !ov.HasEdge(0, 1) {
		t.Fatal("HasEdge does not reflect the patch")
	}
	want := FromEdges(5, [][2]VertexID{{0, 1}, {2, 3}, {3, 4}, {0, 2}, {0, 4}})
	if !sameEdgeSet(ov.Snapshot(), want) {
		t.Fatal("snapshot edge set mismatch")
	}
	if ov.NumEdges() != want.NumEdges() {
		t.Fatalf("NumEdges = %d, want %d", ov.NumEdges(), want.NumEdges())
	}
	if s1, s2 := ov.Snapshot(), ov.Snapshot(); s1 != s2 {
		t.Fatal("snapshot not cached between mutations")
	}
}

// TestOverlayFingerprintInvariant pins the contract the serving layer leans
// on: after every batch, the incrementally maintained fingerprint equals a
// from-scratch EdgeFingerprint of the materialized snapshot.
func TestOverlayFingerprintInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 40
	var edges [][2]VertexID
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Intn(4) == 0 {
				edges = append(edges, [2]VertexID{VertexID(u), VertexID(v)})
			}
		}
	}
	base := FromEdges(n, edges)
	ov := NewOverlay(base)
	if ov.Fingerprint() != base.EdgeFingerprint() {
		t.Fatal("fresh overlay fingerprint != base EdgeFingerprint")
	}
	for step := 0; step < 30; step++ {
		var b Batch
		for i := 0; i < 5; i++ {
			u := VertexID(rng.Intn(n))
			v := VertexID(rng.Intn(n))
			if u == v {
				continue
			}
			if rng.Intn(2) == 0 {
				b.Add = append(b.Add, [2]VertexID{u, v})
			} else {
				b.Remove = append(b.Remove, [2]VertexID{u, v})
			}
		}
		if _, err := ov.ApplyBatch(b); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		snap := ov.Snapshot()
		if ov.Fingerprint() != snap.EdgeFingerprint() {
			t.Fatalf("step %d: overlay fp %#x != snapshot fp %#x",
				step, ov.Fingerprint(), snap.EdgeFingerprint())
		}
		if ov.NumEdges() != snap.NumEdges() {
			t.Fatalf("step %d: overlay |E|=%d snapshot |E|=%d",
				step, ov.NumEdges(), snap.NumEdges())
		}
		if step == 15 {
			fp, ep := ov.Fingerprint(), ov.Epoch()
			ov.Compact()
			if ov.PatchSize() != 0 || ov.Fingerprint() != fp || ov.Epoch() != ep {
				t.Fatal("compaction must empty patches without touching fp/epoch")
			}
			if ov.Compactions() != 1 {
				t.Fatalf("compactions = %d, want 1", ov.Compactions())
			}
		}
	}
}

func TestOverlayNoopsAndCancellation(t *testing.T) {
	base := FromEdges(4, [][2]VertexID{{0, 1}, {1, 2}})
	ov := NewOverlay(base)
	fp0 := ov.Fingerprint()

	// Adding a present edge and removing an absent one are noops.
	res, err := ov.ApplyBatch(Batch{Add: [][2]VertexID{{1, 0}}, Remove: [][2]VertexID{{0, 3}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Added) != 0 || len(res.Removed) != 0 || res.Noops != 2 {
		t.Fatalf("want 2 noops, got %+v", res)
	}
	if res.Epoch != 1 {
		t.Fatalf("all-noop batch must still advance the epoch, got %d", res.Epoch)
	}
	if ov.Fingerprint() != fp0 {
		t.Fatal("noop batch changed the fingerprint")
	}

	// Remove+add of the same present edge in one batch: removal applies
	// first, the add restores it — both effective, edge set unchanged.
	res, err = ov.ApplyBatch(Batch{Add: [][2]VertexID{{0, 1}}, Remove: [][2]VertexID{{0, 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Added) != 1 || len(res.Removed) != 1 {
		t.Fatalf("want remove-then-add round trip, got %+v", res)
	}
	if !ov.HasEdge(0, 1) || ov.Fingerprint() != fp0 {
		t.Fatal("cancelling batch must leave edge set and fingerprint intact")
	}
	if ov.PatchSize() != 0 {
		t.Fatalf("cancelling batch left %d patch entries", ov.PatchSize())
	}

	added, removed, noops := ov.MutationStats()
	if added != 1 || removed != 1 || noops != 2 {
		t.Fatalf("lifetime stats = %d/%d/%d, want 1/1/2", added, removed, noops)
	}
}

func TestOverlayValidation(t *testing.T) {
	ov := NewOverlay(FromEdges(3, [][2]VertexID{{0, 1}}))
	cases := []Batch{
		{Add: [][2]VertexID{{0, 3}}},    // out of range
		{Add: [][2]VertexID{{-1, 1}}},   // negative
		{Add: [][2]VertexID{{2, 2}}},    // self-loop
		{Remove: [][2]VertexID{{5, 0}}}, // out of range remove
	}
	for i, b := range cases {
		if _, err := ov.ApplyBatch(b); err == nil {
			t.Fatalf("case %d: want validation error", i)
		}
	}
	if ov.Epoch() != 0 || ov.PatchSize() != 0 {
		t.Fatal("rejected batches must leave the overlay untouched")
	}

	// A mixed batch with one bad entry is rejected atomically.
	if _, err := ov.ApplyBatch(Batch{Add: [][2]VertexID{{0, 2}, {9, 9}}}); err == nil {
		t.Fatal("want atomic rejection")
	}
	if ov.HasEdge(0, 2) {
		t.Fatal("partial application after rejected batch")
	}
}

func TestEdgeFingerprintOrderIndependent(t *testing.T) {
	a := FromEdges(6, [][2]VertexID{{0, 1}, {2, 3}, {4, 5}, {1, 4}})
	b := FromEdges(6, [][2]VertexID{{4, 1}, {5, 4}, {1, 0}, {3, 2}})
	if a.EdgeFingerprint() != b.EdgeFingerprint() {
		t.Fatal("same edge set, different fingerprint")
	}
	c := FromEdges(6, [][2]VertexID{{0, 1}, {2, 3}, {4, 5}, {1, 5}})
	if a.EdgeFingerprint() == c.EdgeFingerprint() {
		t.Fatal("different edge set, same fingerprint")
	}
	d := FromEdges(7, [][2]VertexID{{0, 1}, {2, 3}, {4, 5}, {1, 4}})
	if a.EdgeFingerprint() == d.EdgeFingerprint() {
		t.Fatal("different |V|, same fingerprint")
	}
}

func TestIdentityOrdered(t *testing.T) {
	g := FromEdges(5, [][2]VertexID{{0, 4}, {4, 1}, {1, 3}, {3, 0}, {2, 4}})
	o := NewIdentityOrdered(g)
	for v := 0; v < 5; v++ {
		if o.Rank(VertexID(v)) != int32(v) {
			t.Fatalf("rank(%d) = %d", v, o.Rank(VertexID(v)))
		}
		var nb, ns int32
		for _, u := range g.Neighbors(VertexID(v)) {
			if u < VertexID(v) {
				nb++
			} else {
				ns++
			}
		}
		if o.NB(VertexID(v)) != nb || o.NS(VertexID(v)) != ns {
			t.Fatalf("nb/ns(%d) = %d/%d, want %d/%d",
				v, o.NB(VertexID(v)), o.NS(VertexID(v)), nb, ns)
		}
	}
	if !o.Less(1, 2) || o.Less(3, 3) || o.Less(4, 0) {
		t.Fatal("identity Less must compare vertex ids")
	}
}
