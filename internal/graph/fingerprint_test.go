package graph

import "testing"

func TestFingerprintStable(t *testing.T) {
	g1 := FromEdges(4, [][2]VertexID{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	g2 := FromEdges(4, [][2]VertexID{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if g1.Fingerprint() != g2.Fingerprint() {
		t.Fatal("identical graphs have different fingerprints")
	}
}

func TestFingerprintBuildOrderIndependent(t *testing.T) {
	// Reversed insertion order, duplicate edges, and swapped endpoints all
	// collapse to the same CSR, so the fingerprint must match.
	g1 := FromEdges(4, [][2]VertexID{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	g2 := FromEdges(4, [][2]VertexID{{0, 3}, {3, 2}, {2, 1}, {1, 0}, {1, 0}})
	if g1.Fingerprint() != g2.Fingerprint() {
		t.Fatal("same edge set built differently changed the fingerprint")
	}
}

func TestFingerprintSensitive(t *testing.T) {
	base := FromEdges(4, [][2]VertexID{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	cases := map[string]*Graph{
		"edge added":      FromEdges(4, [][2]VertexID{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}}),
		"edge removed":    FromEdges(4, [][2]VertexID{{0, 1}, {1, 2}, {2, 3}}),
		"edge moved":      FromEdges(4, [][2]VertexID{{0, 1}, {1, 2}, {2, 3}, {3, 1}}),
		"vertex appended": FromEdges(5, [][2]VertexID{{0, 1}, {1, 2}, {2, 3}, {3, 0}}),
	}
	for name, g := range cases {
		if g.Fingerprint() == base.Fingerprint() {
			t.Errorf("%s: fingerprint unchanged", name)
		}
	}
}

func TestFingerprintEmptyAndIsolated(t *testing.T) {
	// Isolated vertices carry no adjacency but do change the offsets array.
	if FromEdges(3, nil).Fingerprint() == FromEdges(4, nil).Fingerprint() {
		t.Fatal("vertex count not reflected in fingerprint")
	}
}
