package graph

// BitmapIndex accelerates edge-existence checks against high-degree
// vertices: Section 5.1.1 of the paper notes that the GRAY-verification cost
// (costg) "can be done efficiently by a bitmap index". Each vertex whose
// degree reaches the threshold gets a bitset over all vertices, turning
// HasEdge from a binary search over a (possibly huge) adjacency list into a
// single bit probe; low-degree vertices keep the CSR binary search, so the
// memory cost stays at O(#hubs × |V|/8) bytes.
type BitmapIndex struct {
	g      *Graph
	minDeg int
	bits   map[VertexID][]uint64
	words  int
}

// NewBitmapIndex builds bitsets for every vertex of g with degree >= minDeg.
// minDeg <= 0 picks a default that caps the index at roughly 4 bytes per
// edge: hubs with degree >= max(256, |V|/32).
func NewBitmapIndex(g *Graph, minDeg int) *BitmapIndex {
	if minDeg <= 0 {
		minDeg = g.NumVertices() / 32
		if minDeg < 256 {
			minDeg = 256
		}
	}
	ix := &BitmapIndex{
		g:      g,
		minDeg: minDeg,
		bits:   map[VertexID][]uint64{},
		words:  (g.NumVertices() + 63) / 64,
	}
	for v := 0; v < g.NumVertices(); v++ {
		vd := VertexID(v)
		if g.Degree(vd) < minDeg {
			continue
		}
		set := make([]uint64, ix.words)
		for _, u := range g.Neighbors(vd) {
			set[u/64] |= 1 << (uint(u) % 64)
		}
		ix.bits[vd] = set
	}
	return ix
}

// HasEdge reports whether {u, v} is an edge, probing a hub bitset when one
// endpoint has one and falling back to the CSR binary search otherwise.
func (ix *BitmapIndex) HasEdge(u, v VertexID) bool {
	if set, ok := ix.bits[u]; ok {
		return set[v/64]&(1<<(uint(v)%64)) != 0
	}
	if set, ok := ix.bits[v]; ok {
		return set[u/64]&(1<<(uint(u)%64)) != 0
	}
	return ix.g.HasEdge(u, v)
}

// IndexedVertices returns how many vertices carry a bitset.
func (ix *BitmapIndex) IndexedVertices() int { return len(ix.bits) }

// SizeBytes returns the memory footprint of the bitsets.
func (ix *BitmapIndex) SizeBytes() int64 {
	return int64(len(ix.bits)) * int64(ix.words) * 8
}
