package graph

import "math/bits"

// Word-bitset helpers shared by the BitmapIndex hub rows and the ESU motif
// engine's BitGraph (internal/esu): sets are []uint64 slices where bit i of
// word i/64 marks vertex i. All helpers tolerate length mismatches by
// treating the shorter operand as zero-padded, so callers can intersect a
// full row against a partially built set.

// PopCount returns the number of set bits in ws — the popcount-based degree
// of a bitset adjacency row.
func PopCount(ws []uint64) int {
	n := 0
	for _, w := range ws {
		n += bits.OnesCount64(w)
	}
	return n
}

// AndCount returns |a ∩ b| without materializing the intersection — the
// candidate-count probe of the bitset expansion fast path.
func AndCount(a, b []uint64) int {
	if len(b) < len(a) {
		a, b = b, a
	}
	n := 0
	for i, w := range a {
		n += bits.OnesCount64(w & b[i])
	}
	return n
}

// AndNotCount returns |a \ b| — the size of a's exclusive part, e.g. the
// exclusive-neighborhood cardinality N(w) \ N(sub) the ESU extension rule
// needs.
func AndNotCount(a, b []uint64) int {
	n := 0
	for i, w := range a {
		if i < len(b) {
			w &^= b[i]
		}
		n += bits.OnesCount64(w)
	}
	return n
}

// IterateSet calls fn for every set bit of ws in ascending order, stopping
// early when fn returns false. The per-word trailing-zeros loop touches only
// set bits, so sparse rows iterate in O(popcount) after the word scan.
func IterateSet(ws []uint64, fn func(v VertexID) bool) {
	for i, w := range ws {
		base := VertexID(i * 64)
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(base + VertexID(b)) {
				return
			}
			w &= w - 1
		}
	}
}

// BitmapIndex accelerates edge-existence checks against high-degree
// vertices: Section 5.1.1 of the paper notes that the GRAY-verification cost
// (costg) "can be done efficiently by a bitmap index". Each vertex whose
// degree reaches the threshold gets a bitset over all vertices, turning
// HasEdge from a binary search over a (possibly huge) adjacency list into a
// single bit probe; low-degree vertices keep the CSR binary search, so the
// memory cost stays at O(#hubs × |V|/8) bytes.
type BitmapIndex struct {
	g      *Graph
	minDeg int
	bits   map[VertexID][]uint64
	words  int
}

// NewBitmapIndex builds bitsets for every vertex of g with degree >= minDeg.
// minDeg <= 0 picks a default that caps the index at roughly 4 bytes per
// edge: hubs with degree >= max(256, |V|/32).
func NewBitmapIndex(g *Graph, minDeg int) *BitmapIndex {
	if minDeg <= 0 {
		minDeg = g.NumVertices() / 32
		if minDeg < 256 {
			minDeg = 256
		}
	}
	ix := &BitmapIndex{
		g:      g,
		minDeg: minDeg,
		bits:   map[VertexID][]uint64{},
		words:  (g.NumVertices() + 63) / 64,
	}
	for v := 0; v < g.NumVertices(); v++ {
		vd := VertexID(v)
		if g.Degree(vd) < minDeg {
			continue
		}
		set := make([]uint64, ix.words)
		for _, u := range g.Neighbors(vd) {
			set[u/64] |= 1 << (uint(u) % 64)
		}
		ix.bits[vd] = set
	}
	return ix
}

// HasEdge reports whether {u, v} is an edge, probing a hub bitset when one
// endpoint has one and falling back to the CSR binary search otherwise.
func (ix *BitmapIndex) HasEdge(u, v VertexID) bool {
	if set, ok := ix.bits[u]; ok {
		return set[v/64]&(1<<(uint(v)%64)) != 0
	}
	if set, ok := ix.bits[v]; ok {
		return set[u/64]&(1<<(uint(u)%64)) != 0
	}
	return ix.g.HasEdge(u, v)
}

// Row returns v's bitset adjacency row, or nil when v's degree is below the
// index threshold — the gate of the engine's bitset-AND candidate fast path
// (a nil row means "not a hub: take the merge path"). The returned slice is
// the index's internal storage and must not be modified.
func (ix *BitmapIndex) Row(v VertexID) []uint64 { return ix.bits[v] }

// MinDegree returns the hub threshold the index was built with.
func (ix *BitmapIndex) MinDegree() int { return ix.minDeg }

// IndexedVertices returns how many vertices carry a bitset.
func (ix *BitmapIndex) IndexedVertices() int { return len(ix.bits) }

// SizeBytes returns the memory footprint of the bitsets.
func (ix *BitmapIndex) SizeBytes() int64 {
	return int64(len(ix.bits)) * int64(ix.words) * 8
}
