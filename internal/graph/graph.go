// Package graph provides the data-graph substrate for PSgL: an immutable
// undirected graph in compressed sparse row (CSR) form, a builder, edge-list
// I/O, the degree-based vertex ordering from Section 3 of the paper (the
// "ordered graph" with its nb/ns neighbor split), and the random vertex
// partitioner used to spread the data graph across BSP workers.
//
// Vertices are dense int32 identifiers in [0, NumVertices). All graphs are
// simple: self-loops and duplicate edges are removed at build time, matching
// the paper's preprocessing ("adding reciprocal edge and eliminating loops").
package graph

import (
	"fmt"
	"sort"
)

// VertexID identifies a vertex of a data graph. Data graphs in the paper
// reach 42M vertices; int32 covers that while halving adjacency memory
// relative to int64.
type VertexID = int32

// Graph is an immutable undirected simple graph in CSR form. Neighbor lists
// are sorted ascending by vertex id, which makes HasEdge a binary search and
// set intersections linear.
type Graph struct {
	offsets []int64
	adj     []VertexID
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.offsets) - 1 }

// NumEdges returns |E|, counting each undirected edge once.
func (g *Graph) NumEdges() int64 { return int64(len(g.adj)) / 2 }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v VertexID) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted adjacency list of v. The returned slice
// aliases the graph's internal storage and must not be modified.
func (g *Graph) Neighbors(v VertexID) []VertexID {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether the undirected edge {u, v} is present.
func (g *Graph) HasEdge(u, v VertexID) bool {
	nu := g.Neighbors(u)
	i := sort.Search(len(nu), func(i int) bool { return nu[i] >= v })
	return i < len(nu) && nu[i] == v
}

// MaxDegree returns the largest vertex degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(VertexID(v)); d > max {
			max = d
		}
	}
	return max
}

// Edges calls fn once per undirected edge with u < v. It stops early if fn
// returns false.
func (g *Graph) Edges(fn func(u, v VertexID) bool) {
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.Neighbors(VertexID(u)) {
			if v > VertexID(u) {
				if !fn(VertexID(u), v) {
					return
				}
			}
		}
	}
}

// DegreeHistogram returns h where h[d] is the number of vertices of degree d.
func (g *Graph) DegreeHistogram() []int64 {
	h := make([]int64, g.MaxDegree()+1)
	for v := 0; v < g.NumVertices(); v++ {
		h[g.Degree(VertexID(v))]++
	}
	return h
}

// Builder accumulates edges and produces an immutable Graph. It tolerates
// duplicate edges, reversed duplicates, and self-loops; Build removes them.
type Builder struct {
	n    int
	srcs []VertexID
	dsts []VertexID
}

// NewBuilder creates a builder for a graph with n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n}
}

// AddEdge records the undirected edge {u, v}. Self-loops are ignored.
func (b *Builder) AddEdge(u, v VertexID) {
	if u == v {
		return
	}
	if int(u) < 0 || int(u) >= b.n || int(v) < 0 || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	b.srcs = append(b.srcs, u, v)
	b.dsts = append(b.dsts, v, u)
}

// NumPendingEdges returns the number of directed edge records added so far
// (2x the undirected count, before deduplication).
func (b *Builder) NumPendingEdges() int { return len(b.srcs) }

// Build produces the CSR graph. The builder can be reused afterwards, but
// shares no storage with the result.
func (b *Builder) Build() *Graph {
	deg := make([]int64, b.n+1)
	for _, u := range b.srcs {
		deg[u+1]++
	}
	offsets := make([]int64, b.n+1)
	for i := 1; i <= b.n; i++ {
		offsets[i] = offsets[i-1] + deg[i]
	}
	adj := make([]VertexID, offsets[b.n])
	cursor := make([]int64, b.n)
	copy(cursor, offsets[:b.n])
	for i, u := range b.srcs {
		adj[cursor[u]] = b.dsts[i]
		cursor[u]++
	}
	// Sort each adjacency list and drop duplicates in place.
	outOff := make([]int64, b.n+1)
	w := int64(0)
	for u := 0; u < b.n; u++ {
		lo, hi := offsets[u], offsets[u+1]
		list := adj[lo:hi]
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		outOff[u] = w
		var prev VertexID = -1
		for _, v := range list {
			if v != prev {
				adj[w] = v
				w++
				prev = v
			}
		}
	}
	outOff[b.n] = w
	return &Graph{offsets: outOff, adj: adj[:w:w]}
}

// FromEdges builds a graph with n vertices from an explicit edge list.
func FromEdges(n int, edges [][2]VertexID) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}
