package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

// square5 is the data graph of Figure 1 in the paper: vertices 1..6 mapped to
// 0..5 here.
func square5() *Graph {
	return FromEdges(6, [][2]VertexID{
		{0, 1}, {0, 4}, {0, 5}, {1, 2}, {1, 4}, {2, 3}, {2, 4}, {3, 4}, {4, 5},
	})
}

func TestBuilderBasic(t *testing.T) {
	g := square5()
	if got := g.NumVertices(); got != 6 {
		t.Fatalf("NumVertices = %d, want 6", got)
	}
	if got := g.NumEdges(); got != 9 {
		t.Fatalf("NumEdges = %d, want 9", got)
	}
	wantDeg := []int{3, 3, 3, 2, 5, 2}
	for v, want := range wantDeg {
		if got := g.Degree(VertexID(v)); got != want {
			t.Errorf("Degree(%d) = %d, want %d", v, got, want)
		}
	}
	if !g.HasEdge(4, 0) || !g.HasEdge(0, 4) {
		t.Error("HasEdge(4,0) should hold in both directions")
	}
	if g.HasEdge(0, 3) {
		t.Error("HasEdge(0,3) should be false")
	}
}

func TestBuilderDedupAndLoops(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // reversed duplicate
	b.AddEdge(0, 1) // exact duplicate
	b.AddEdge(2, 2) // self loop, dropped
	b.AddEdge(1, 2)
	g := b.Build()
	if got := g.NumEdges(); got != 2 {
		t.Fatalf("NumEdges = %d, want 2 after dedup", got)
	}
	if g.HasEdge(2, 2) {
		t.Error("self loop survived Build")
	}
	if got := g.Degree(1); got != 2 {
		t.Errorf("Degree(1) = %d, want 2", got)
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := square5()
	for v := 0; v < g.NumVertices(); v++ {
		nb := g.Neighbors(VertexID(v))
		if !sort.SliceIsSorted(nb, func(i, j int) bool { return nb[i] < nb[j] }) {
			t.Errorf("Neighbors(%d) = %v not sorted", v, nb)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.NumVertices() != 0 || g.NumEdges() != 0 || g.MaxDegree() != 0 {
		t.Fatalf("empty graph misbehaves: V=%d E=%d maxdeg=%d",
			g.NumVertices(), g.NumEdges(), g.MaxDegree())
	}
	g2 := NewBuilder(5).Build()
	if g2.NumVertices() != 5 || g2.NumEdges() != 0 {
		t.Fatalf("edgeless graph misbehaves")
	}
	if got := len(g2.Neighbors(3)); got != 0 {
		t.Fatalf("Neighbors on edgeless graph = %d entries", got)
	}
}

func TestEdgesIteration(t *testing.T) {
	g := square5()
	var got [][2]VertexID
	g.Edges(func(u, v VertexID) bool {
		got = append(got, [2]VertexID{u, v})
		return true
	})
	if int64(len(got)) != g.NumEdges() {
		t.Fatalf("Edges visited %d, want %d", len(got), g.NumEdges())
	}
	for _, e := range got {
		if e[0] >= e[1] {
			t.Errorf("edge %v not in u<v order", e)
		}
	}
	// Early stop.
	count := 0
	g.Edges(func(u, v VertexID) bool { count++; return count < 3 })
	if count != 3 {
		t.Errorf("early stop visited %d, want 3", count)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := square5()
	h := g.DegreeHistogram()
	want := []int64{0, 0, 2, 3, 0, 1}
	if !reflect.DeepEqual(h, want) {
		t.Fatalf("DegreeHistogram = %v, want %v", h, want)
	}
}

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range edge")
		}
	}()
	NewBuilder(2).AddEdge(0, 5)
}

func TestOrderedRanksArePermutation(t *testing.T) {
	g := square5()
	o := NewOrdered(g)
	seen := make([]bool, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		r := o.Rank(VertexID(v))
		if r < 0 || int(r) >= g.NumVertices() || seen[r] {
			t.Fatalf("rank(%d)=%d invalid or duplicated", v, r)
		}
		seen[r] = true
	}
}

func TestOrderedRespectsDegreeThenID(t *testing.T) {
	g := square5()
	o := NewOrdered(g)
	for u := 0; u < g.NumVertices(); u++ {
		for v := 0; v < g.NumVertices(); v++ {
			if u == v {
				continue
			}
			du, dv := g.Degree(VertexID(u)), g.Degree(VertexID(v))
			wantLess := du < dv || (du == dv && u < v)
			if got := o.Less(VertexID(u), VertexID(v)); got != wantLess {
				t.Errorf("Less(%d,%d) = %v, want %v", u, v, got, wantLess)
			}
		}
	}
}

func TestOrderedNbNsSumToDegree(t *testing.T) {
	g := square5()
	o := NewOrdered(g)
	for v := 0; v < g.NumVertices(); v++ {
		if int(o.NB(VertexID(v))+o.NS(VertexID(v))) != g.Degree(VertexID(v)) {
			t.Errorf("nb+ns != degree at %d", v)
		}
	}
	// Highest-ranked vertex has ns = 0; lowest-ranked has nb = 0.
	var hi, lo VertexID
	for v := 0; v < g.NumVertices(); v++ {
		if o.Rank(VertexID(v)) == int32(g.NumVertices()-1) {
			hi = VertexID(v)
		}
		if o.Rank(VertexID(v)) == 0 {
			lo = VertexID(v)
		}
	}
	if o.NS(hi) != 0 {
		t.Errorf("top vertex %d has ns=%d, want 0", hi, o.NS(hi))
	}
	if o.NB(lo) != 0 {
		t.Errorf("bottom vertex %d has nb=%d, want 0", lo, o.NB(lo))
	}
}

func TestOrderedNbNsProperty(t *testing.T) {
	// Sum of nb over all vertices equals |E| (each edge ranks one end below
	// the other exactly once); likewise for ns.
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		b := NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)))
		}
		g := b.Build()
		o := NewOrdered(g)
		var sumNb, sumNs int64
		for v := 0; v < n; v++ {
			sumNb += int64(o.NB(VertexID(v)))
			sumNs += int64(o.NS(VertexID(v)))
		}
		return sumNb == g.NumEdges() && sumNs == g.NumEdges()
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHasEdgeMatchesNeighborScan(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		b := NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			b.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)))
		}
		g := b.Build()
		for trial := 0; trial < 50; trial++ {
			u, v := VertexID(rng.Intn(n)), VertexID(rng.Intn(n))
			scan := false
			for _, w := range g.Neighbors(u) {
				if w == v {
					scan = true
					break
				}
			}
			if g.HasEdge(u, v) != scan {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := square5()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed shape: V %d->%d E %d->%d",
			g.NumVertices(), g2.NumVertices(), g.NumEdges(), g2.NumEdges())
	}
	// Vertex ids are first-seen compacted, so compare via degree multiset.
	h1, h2 := g.DegreeHistogram(), g2.DegreeHistogram()
	if !reflect.DeepEqual(h1, h2) {
		t.Fatalf("degree histograms differ: %v vs %v", h1, h2)
	}
}

func TestReadEdgeListComments(t *testing.T) {
	in := "# comment\n% konect comment\n\n10 20\n20 30\n10 20\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("got V=%d E=%d, want V=3 E=2", g.NumVertices(), g.NumEdges())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, in := range []string{"1\n", "a b\n", "1 b\n"} {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("ReadEdgeList(%q) succeeded, want error", in)
		}
	}
}

func TestPartitionCoversAllWorkers(t *testing.T) {
	p := NewPartition(8, 42)
	counts := make([]int, 8)
	for v := 0; v < 10000; v++ {
		w := p.Owner(VertexID(v))
		if w < 0 || w >= 8 {
			t.Fatalf("Owner(%d) = %d out of range", v, w)
		}
		counts[w]++
	}
	for w, c := range counts {
		if c < 1000 || c > 1500 {
			t.Errorf("worker %d owns %d of 10000 vertices; partition too skewed", w, c)
		}
	}
}

func TestPartitionDeterministic(t *testing.T) {
	p1 := NewPartition(4, 7)
	p2 := NewPartition(4, 7)
	p3 := NewPartition(4, 8)
	same, diff := true, false
	for v := 0; v < 1000; v++ {
		if p1.Owner(VertexID(v)) != p2.Owner(VertexID(v)) {
			same = false
		}
		if p1.Owner(VertexID(v)) != p3.Owner(VertexID(v)) {
			diff = true
		}
	}
	if !same {
		t.Error("same seed produced different assignments")
	}
	if !diff {
		t.Error("different seeds produced identical assignments")
	}
}

func TestPartitionOwnedBy(t *testing.T) {
	g := square5()
	p := NewPartition(3, 1)
	total := 0
	for w := 0; w < 3; w++ {
		owned := p.OwnedBy(g, w)
		total += len(owned)
		for _, v := range owned {
			if p.Owner(v) != w {
				t.Errorf("OwnedBy(%d) contains %d owned by %d", w, v, p.Owner(v))
			}
		}
	}
	if total != g.NumVertices() {
		t.Errorf("OwnedBy partitions cover %d vertices, want %d", total, g.NumVertices())
	}
}

func BenchmarkHasEdge(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 10000
	bld := NewBuilder(n)
	for i := 0; i < 20*n; i++ {
		bld.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)))
	}
	g := bld.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HasEdge(VertexID(i%n), VertexID((i*7)%n))
	}
}

func BenchmarkBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 10000
	type edge struct{ u, v VertexID }
	edges := make([]edge, 20*n)
	for i := range edges {
		edges[i] = edge{VertexID(rng.Intn(n)), VertexID(rng.Intn(n))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bld := NewBuilder(n)
		for _, e := range edges {
			bld.AddEdge(e.u, e.v)
		}
		bld.Build()
	}
}
