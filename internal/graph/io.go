package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadEdgeList parses the whitespace-separated edge-list format used by SNAP
// and KONECT dumps: one "u v" pair per line, '#' or '%' starting a comment
// line. Vertex ids may be sparse; they are compacted to a dense [0, n) range
// in first-seen order. The resulting graph is undirected and simple.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	ids := make(map[int64]VertexID)
	var edges [][2]VertexID
	intern := func(raw int64) VertexID {
		if v, ok := ids[raw]; ok {
			return v
		}
		v := VertexID(len(ids))
		ids[raw] = v
		return v
	}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: expected two vertex ids, got %q", line, text)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		edges = append(edges, [2]VertexID{intern(u), intern(v)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: %v", err)
	}
	return FromEdges(len(ids), edges), nil
}

// WriteEdgeList writes g in the edge-list format accepted by ReadEdgeList,
// one undirected edge per line with u < v.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# undirected graph: %d vertices, %d edges\n",
		g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	var werr error
	g.Edges(func(u, v VertexID) bool {
		if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
			werr = err
			return false
		}
		return true
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}
