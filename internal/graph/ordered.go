package graph

import "sort"

// Ordered wraps a graph with the partial order of Section 3: vertices are
// ranked first by degree, ties broken by vertex id. For a vertex v, nb(v)
// counts neighbors ranked below v and ns(v) counts neighbors ranked above.
// Property 1 of the paper: the nb distribution is more skewed than the raw
// degree distribution while ns is more balanced — the lever behind the
// deterministic initial-pattern-vertex rule for cycles and cliques.
type Ordered struct {
	G *Graph
	// rank[v] is the position of v in the degree order; a permutation of
	// [0, NumVertices).
	rank []int32
	nb   []int32
	ns   []int32
}

// NewOrdered computes the degree ordering of g.
func NewOrdered(g *Graph) *Ordered {
	n := g.NumVertices()
	byRank := make([]VertexID, n)
	for v := range byRank {
		byRank[v] = VertexID(v)
	}
	sort.Slice(byRank, func(i, j int) bool {
		du, dv := g.Degree(byRank[i]), g.Degree(byRank[j])
		if du != dv {
			return du < dv
		}
		return byRank[i] < byRank[j]
	})
	rank := make([]int32, n)
	for r, v := range byRank {
		rank[v] = int32(r)
	}
	nb := make([]int32, n)
	ns := make([]int32, n)
	for v := 0; v < n; v++ {
		rv := rank[v]
		for _, u := range g.Neighbors(VertexID(v)) {
			if rank[u] < rv {
				nb[v]++
			} else {
				ns[v]++
			}
		}
	}
	return &Ordered{G: g, rank: rank, nb: nb, ns: ns}
}

// NewIdentityOrdered wraps g with the trivial total order ranked by vertex
// id. Instance counts are invariant to the choice of total order, but the
// canonical representative of each automorphism class is not — and the
// degree order shifts as edges mutate. Delta maintenance therefore runs
// under the identity order, which is stable across mutations, so embeddings
// enumerated before and after a batch stay byte-comparable. It is also
// cheaper to build (no sort), which matters when every small update batch
// spins up fresh enumeration runs.
func NewIdentityOrdered(g *Graph) *Ordered {
	n := g.NumVertices()
	rank := make([]int32, n)
	nb := make([]int32, n)
	ns := make([]int32, n)
	for v := 0; v < n; v++ {
		rank[v] = int32(v)
		for _, u := range g.Neighbors(VertexID(v)) {
			if u < VertexID(v) {
				nb[v]++
			} else {
				ns[v]++
			}
		}
	}
	return &Ordered{G: g, rank: rank, nb: nb, ns: ns}
}

// Rank returns the order position of v (0 = lowest degree).
func (o *Ordered) Rank(v VertexID) int32 { return o.rank[v] }

// Less reports whether u precedes v in the degree order.
func (o *Ordered) Less(u, v VertexID) bool { return o.rank[u] < o.rank[v] }

// NB returns the number of neighbors of v ranked below v.
func (o *Ordered) NB(v VertexID) int32 { return o.nb[v] }

// NS returns the number of neighbors of v ranked above v.
func (o *Ordered) NS(v VertexID) int32 { return o.ns[v] }

// NBValues returns nb(v) for every vertex, for distribution analysis.
func (o *Ordered) NBValues() []int32 { return o.nb }

// NSValues returns ns(v) for every vertex, for distribution analysis.
func (o *Ordered) NSValues() []int32 { return o.ns }
