package delta

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"psgl/internal/bsp"
	"psgl/internal/centralized"
	"psgl/internal/core"
	"psgl/internal/gen"
	"psgl/internal/graph"
	"psgl/internal/pattern"
)

func embeddingKey(m []graph.VertexID) string {
	s := ""
	for i, v := range m {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprint(v)
	}
	return s
}

// fullEmbeddings enumerates g completely under the identity order — the
// reference the maintained standing set must stay byte-identical to.
func fullEmbeddings(t *testing.T, g *graph.Graph, p *pattern.Pattern) []string {
	t.Helper()
	res, err := core.Run(g, p, core.Options{Workers: 3, Seed: 1, Collect: true, IdentityOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(res.Instances))
	for _, m := range res.Instances {
		keys = append(keys, embeddingKey(m))
	}
	sort.Strings(keys)
	return keys
}

// randomBatch draws a mixed batch of adds (edges absent from g) and removes
// (edges present in g) and returns the mutated graph alongside the raw
// lists, which deliberately include noops and duplicates.
func randomBatch(g *graph.Graph, rng *rand.Rand, nAdd, nRemove int) (*graph.Graph, [][2]graph.VertexID, [][2]graph.VertexID) {
	ov := graph.NewOverlay(g)
	n := g.NumVertices()
	var adds, removes [][2]graph.VertexID
	for len(adds) < nAdd {
		u := graph.VertexID(rng.Intn(n))
		v := graph.VertexID(rng.Intn(n))
		if u == v {
			continue
		}
		adds = append(adds, [2]graph.VertexID{u, v})
	}
	// Sample removes from the present edges via reservoir over Edges.
	var present [][2]graph.VertexID
	g.Edges(func(u, v graph.VertexID) bool {
		present = append(present, [2]graph.VertexID{u, v})
		return true
	})
	for i := 0; i < nRemove && len(present) > 0; i++ {
		removes = append(removes, present[rng.Intn(len(present))])
	}
	// Noise: duplicate entries and noop adds of present edges.
	if len(present) > 0 {
		adds = append(adds, present[rng.Intn(len(present))])
	}
	if len(removes) > 0 {
		removes = append(removes, removes[0])
	}
	if _, err := ov.ApplyBatch(graph.Batch{Add: adds, Remove: removes}); err != nil {
		panic(err)
	}
	return ov.Snapshot(), adds, removes
}

// applyDelta patches the standing multiset: add every gained embedding,
// drop every lost one (which must be present).
func applyDelta(t *testing.T, standing []string, res *Result) []string {
	t.Helper()
	set := make(map[string]int, len(standing))
	for _, k := range standing {
		set[k]++
	}
	for _, m := range res.LostEmbeddings {
		k := embeddingKey(m)
		if set[k] == 0 {
			t.Fatalf("lost embedding %s was not in the standing set", k)
		}
		set[k]--
	}
	for _, m := range res.GainedEmbeddings {
		set[embeddingKey(m)]++
	}
	var out []string
	for k, c := range set {
		if c > 1 {
			t.Fatalf("embedding %s has multiplicity %d after patch", k, c)
		}
		if c == 1 {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// TestDeltaDifferentialOracle is the core correctness battery: random
// graphs × catalog patterns × random mixed batches, checking both the count
// identity count(G) + gained − lost == count(G′) against the centralized
// oracle and the byte-identity of the patched standing embedding set
// against a fresh full run on G′.
func TestDeltaDifferentialOracle(t *testing.T) {
	patterns := []*pattern.Pattern{
		pattern.PG1(), pattern.PG2(), pattern.PG3(), pattern.PG5(),
	}
	for _, seed := range []int64{3, 11} {
		g0 := gen.ChungLu(250, 900, 1.8, seed)
		rng := rand.New(rand.NewSource(seed * 7))
		g1, adds, removes := randomBatch(g0, rng, 10, 10)
		for _, p := range patterns {
			res, err := Enumerate(context.Background(), g0, g1, adds, removes, p,
				Options{Workers: 3, Seed: 1, Collect: true})
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, p.Name(), err)
			}
			before := centralized.CountInstances(p, g0)
			after := centralized.CountInstances(p, g1)
			if before+res.Gained-res.Lost != after {
				t.Fatalf("seed %d %s: %d + %d - %d != %d",
					seed, p.Name(), before, res.Gained, res.Lost, after)
			}
			standing := fullEmbeddings(t, g0, p)
			patched := applyDelta(t, standing, res)
			fresh := fullEmbeddings(t, g1, p)
			if len(patched) != len(fresh) {
				t.Fatalf("seed %d %s: patched standing set has %d embeddings, fresh run %d",
					seed, p.Name(), len(patched), len(fresh))
			}
			for i := range patched {
				if patched[i] != fresh[i] {
					t.Fatalf("seed %d %s: patched[%d] = %s, fresh = %s",
						seed, p.Name(), i, patched[i], fresh[i])
				}
			}
			if res.Runs != len(res.AddedEdges)+len(res.RemovedEdges) {
				t.Fatalf("runs = %d for %d+%d effective changes",
					res.Runs, len(res.AddedEdges), len(res.RemovedEdges))
			}
		}
	}
}

// TestDeltaModesBitIdentical pins the satellite requirement: gained/lost
// counts — and the embedding multisets — are identical across
// {strict, async} × {local, TCP}.
func TestDeltaModesBitIdentical(t *testing.T) {
	g0 := gen.ChungLu(200, 700, 1.8, 5)
	rng := rand.New(rand.NewSource(13))
	g1, adds, removes := randomBatch(g0, rng, 8, 8)
	p := pattern.PG3()
	type mode struct {
		name  string
		async bool
		tcp   bool
	}
	modes := []mode{
		{"strict-local", false, false},
		{"strict-tcp", false, true},
		{"async-local", true, false},
		{"async-tcp", true, true},
	}
	var want *Result
	var wantGained, wantLost []string
	for _, md := range modes {
		opts := Options{Workers: 3, Seed: 2, Collect: true, AsyncExchange: md.async}
		if md.tcp {
			opts.Exchange = bsp.NewTCPExchangeFactory()
		}
		res, err := Enumerate(context.Background(), g0, g1, adds, removes, p, opts)
		if err != nil {
			t.Fatalf("%s: %v", md.name, err)
		}
		gained := sortedKeys(res.GainedEmbeddings)
		lost := sortedKeys(res.LostEmbeddings)
		if want == nil {
			want, wantGained, wantLost = res, gained, lost
			continue
		}
		if res.Gained != want.Gained || res.Lost != want.Lost {
			t.Fatalf("%s: gained/lost %d/%d, want %d/%d",
				md.name, res.Gained, res.Lost, want.Gained, want.Lost)
		}
		if !equalStrings(gained, wantGained) || !equalStrings(lost, wantLost) {
			t.Fatalf("%s: embedding multiset differs from strict-local", md.name)
		}
	}
	if want.Gained == 0 && want.Lost == 0 {
		t.Fatal("degenerate batch: no delta to compare")
	}
}

// TestDeltaKillScheduleRecovery injects a seeded worker kill into the
// anchored runs and requires the recovered delta to be bit-identical to the
// clean one — the mid-update fault leg of the acceptance criteria.
func TestDeltaKillScheduleRecovery(t *testing.T) {
	g0 := gen.ChungLu(200, 700, 1.8, 9)
	rng := rand.New(rand.NewSource(21))
	g1, adds, removes := randomBatch(g0, rng, 6, 6)
	p := pattern.PG2()
	clean, err := Enumerate(context.Background(), g0, g1, adds, removes, p,
		Options{Workers: 3, Seed: 4, Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	retry := bsp.RetryPolicy{
		MaxAttempts: 3,
		BaseBackoff: 100 * time.Microsecond,
		MaxBackoff:  2 * time.Millisecond,
		JitterSeed:  0x5ca1ab1e,
	}
	// A dead worker fails every retry of its barrier; only the checkpoint
	// restore gets past it (same schedule shape as the chaos harness).
	var faults []bsp.StepFault
	for a := 0; a < retry.MaxAttempts; a++ {
		faults = append(faults, bsp.StepFault{Step: 1, Kind: bsp.StepFaultKill, Worker: 0})
	}
	chaos, err := Enumerate(context.Background(), g0, g1, adds, removes, p, Options{
		Workers:         3,
		Seed:            4,
		Collect:         true,
		Exchange:        bsp.NewScheduledFaultExchangeFactory(nil, faults),
		Retry:           retry,
		CheckpointEvery: 1,
		MaxRecoveries:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if chaos.Gained != clean.Gained || chaos.Lost != clean.Lost {
		t.Fatalf("recovered delta %d/%d != clean %d/%d",
			chaos.Gained, chaos.Lost, clean.Gained, clean.Lost)
	}
	if chaos.Recoveries == 0 {
		t.Fatal("kill schedule never forced a recovery")
	}
	if !equalStrings(sortedKeys(chaos.GainedEmbeddings), sortedKeys(clean.GainedEmbeddings)) ||
		!equalStrings(sortedKeys(chaos.LostEmbeddings), sortedKeys(clean.LostEmbeddings)) {
		t.Fatal("recovered embedding multiset differs from clean run")
	}
}

// TestDeltaEdgeCases: empty batches, pure-noop batches, cancelling entries,
// and validation failures.
func TestDeltaEdgeCases(t *testing.T) {
	g := graph.FromEdges(5, [][2]graph.VertexID{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}})
	p := pattern.Triangle()
	ctx := context.Background()

	res, err := Enumerate(ctx, g, g, nil, nil, p, Options{Workers: 2})
	if err != nil || res.Gained != 0 || res.Lost != 0 || res.Runs != 0 {
		t.Fatalf("empty batch: %+v, %v", res, err)
	}
	// Noop entries: adding a present edge / removing an absent one anchor
	// nothing.
	res, err = Enumerate(ctx, g, g,
		[][2]graph.VertexID{{0, 1}}, [][2]graph.VertexID{{0, 3}}, p, Options{Workers: 2})
	if err != nil || res.Runs != 0 {
		t.Fatalf("noop batch ran %d anchors, err %v", res.Runs, err)
	}
	// A real change: completing the second triangle {2,3,4}.
	ov := graph.NewOverlay(g)
	if _, err := ov.ApplyBatch(graph.Batch{Add: [][2]graph.VertexID{{2, 4}}}); err != nil {
		t.Fatal(err)
	}
	res, err = Enumerate(ctx, g, ov.Snapshot(), [][2]graph.VertexID{{2, 4}}, nil, p,
		Options{Workers: 2, Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Gained != 1 || res.Lost != 0 {
		t.Fatalf("gained %d lost %d, want 1/0", res.Gained, res.Lost)
	}
	// Validation: out-of-range and self-loop entries fail fast.
	if _, err := Enumerate(ctx, g, g, [][2]graph.VertexID{{0, 9}}, nil, p, Options{}); err == nil {
		t.Fatal("want out-of-range error")
	}
	if _, err := Enumerate(ctx, g, g, nil, [][2]graph.VertexID{{3, 3}}, p, Options{}); err == nil {
		t.Fatal("want self-loop error")
	}
	if _, err := Enumerate(ctx, g, nil, nil, nil, p, Options{}); err == nil {
		t.Fatal("want nil-graph error")
	}
	g6 := graph.FromEdges(6, [][2]graph.VertexID{{0, 1}})
	if _, err := Enumerate(ctx, g, g6, nil, nil, p, Options{}); err == nil {
		t.Fatal("want vertex-count error")
	}
}

func sortedKeys(ms [][]graph.VertexID) []string {
	out := make([]string, 0, len(ms))
	for _, m := range ms {
		out = append(out, embeddingKey(m))
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
