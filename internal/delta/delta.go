// Package delta implements DDSL-style incremental subgraph maintenance
// (arXiv:1810.05972): given a graph before and after a batch of edge
// mutations, it computes exactly the embeddings gained and lost — without
// re-enumerating the unchanged bulk of the graph — by anchoring the core
// PSgL expansion on the changed edges.
//
// The algebra is the standard one. Normalize the batch down to its effective
// changes (an edge added that was already present, or removed while absent,
// is a noop). An embedding of the pattern exists in G′ but not G iff its
// image uses at least one effectively added edge; it exists in G but not G′
// iff its image uses at least one effectively removed edge. So:
//
//	gained = embeddings of G′ anchored on added edges
//	lost   = embeddings of G  anchored on removed edges
//	count(G) + gained − lost = count(G′)
//
// Anchoring reuses internal/core's seeded enumeration: for changed edge
// {u, v}, every pattern edge is pinned onto (u, v) in both orientations (a
// seed per orientation). Injectivity guarantees an embedding maps at most
// one pattern edge onto any one data edge, so within one anchored run each
// matching embedding surfaces exactly once. Across the batch, an embedding
// using several changed edges is counted at its minimal changed edge only:
// run i carries an EmitFilter rejecting embeddings that use a changed edge
// with index < i.
//
// Runs execute under the identity vertex order (stable across mutations, so
// the canonical representative of an automorphism class never shifts between
// epochs — maintained embedding sets stay byte-comparable with fresh full
// runs), with the bloom edge index disabled (per-run index construction
// would dwarf the anchored work for small batches).
package delta

import (
	"context"
	"fmt"
	"time"

	"psgl/internal/bsp"
	"psgl/internal/core"
	"psgl/internal/graph"
	"psgl/internal/pattern"
)

// Options configures a delta enumeration. The zero value is valid: 4
// workers, workload-aware strategy, strict in-process exchange, counting
// only.
type Options struct {
	// Workers is the number of BSP workers per anchored run. 0 means 4.
	Workers int
	// Strategy is the Gpsi distribution strategy.
	Strategy core.Strategy
	// Seed drives partitioning and randomized strategies.
	Seed int64
	// Collect retains the gained/lost mappings in the result.
	Collect bool
	// OnGained/OnLost stream each gained/lost embedding's mapping as it is
	// found (same contract as core.Options.OnInstance: concurrent calls,
	// slice valid only during the call).
	OnGained func(mapping []graph.VertexID)
	OnLost   func(mapping []graph.VertexID)
	// PrePlanned declares that the pattern already carries its
	// symmetry-breaking orders (e.g. from a serve-layer plan cache), skipping
	// the per-call BreakAutomorphisms.
	PrePlanned bool
	// AsyncExchange, CompressFrames, and Exchange select the BSP substrate
	// mode per anchored run, exactly as in core.Options.
	AsyncExchange  bool
	CompressFrames bool
	Exchange       bsp.ExchangeFactory
	// Fault tolerance, applied to every anchored run (see core.Options).
	// Each run gets its own fresh in-memory checkpoint store — stores hold
	// one run's snapshots at a time, and a shared store could restore a
	// previous anchor's state into the wrong run.
	Retry           bsp.RetryPolicy
	CheckpointEvery int
	MaxRecoveries   int
}

// Result is the outcome of one delta enumeration.
type Result struct {
	// Gained/Lost count the embeddings that exist only after/only before the
	// batch.
	Gained int64
	Lost   int64
	// GainedEmbeddings/LostEmbeddings hold the mappings when Options.Collect
	// is set. Order across anchored runs is deterministic (changed edges in
	// batch order); order within a run is not — compare as multisets.
	GainedEmbeddings [][]graph.VertexID
	LostEmbeddings   [][]graph.VertexID
	// AddedEdges/RemovedEdges are the effective changes the enumeration
	// anchored on, normalized u < v, in batch order.
	AddedEdges   [][2]graph.VertexID
	RemovedEdges [][2]graph.VertexID
	// Runs is the number of anchored core runs executed (2 per changed edge
	// side is the worst case; exactly one run per effective changed edge).
	Runs int
	// GpsiGenerated and PrunedByFilter aggregate the runs' engine counters;
	// the filter counter is the cross-anchor dedup at work.
	GpsiGenerated  int64
	PrunedByFilter int64
	// Recoveries aggregates in-run checkpoint-restore recoveries.
	Recoveries int
	// WallTime is the elapsed time of the whole delta pass.
	WallTime time.Duration
}

// Enumerate computes the embeddings gained and lost between old and neu.
//
// The caller contract: neu's edge set must equal old's edge set plus adds
// minus removes (noop entries are fine and ignored; graph.Overlay's
// BatchResult provides exactly such sets). Edges outside the two lists that
// differ between the graphs are not looked at and silently corrupt the
// delta. Both graphs must share the vertex count.
func Enumerate(ctx context.Context, old, neu *graph.Graph, adds, removes [][2]graph.VertexID, p *pattern.Pattern, opts Options) (*Result, error) {
	if old == nil || neu == nil || p == nil {
		return nil, fmt.Errorf("delta: nil graph or pattern")
	}
	if old.NumVertices() != neu.NumVertices() {
		return nil, fmt.Errorf("delta: vertex counts differ (%d vs %d); overlays never grow |V|",
			old.NumVertices(), neu.NumVertices())
	}
	start := time.Now()
	if !opts.PrePlanned {
		p = p.BreakAutomorphisms()
	}
	res := &Result{}
	if p.NumEdges() == 0 {
		// Vertex-only patterns are invariant under edge mutations.
		res.WallTime = time.Since(start)
		return res, nil
	}
	var err error
	if res.AddedEdges, err = effectiveChanges("add", neu, old, adds); err != nil {
		return nil, err
	}
	if res.RemovedEdges, err = effectiveChanges("remove", old, neu, removes); err != nil {
		return nil, err
	}
	if err := enumerateSide(ctx, neu, res.AddedEdges, p, opts, opts.OnGained,
		&res.Gained, &res.GainedEmbeddings, res); err != nil {
		return nil, fmt.Errorf("delta: gained side: %w", err)
	}
	if err := enumerateSide(ctx, old, res.RemovedEdges, p, opts, opts.OnLost,
		&res.Lost, &res.LostEmbeddings, res); err != nil {
		return nil, fmt.Errorf("delta: lost side: %w", err)
	}
	res.WallTime = time.Since(start)
	return res, nil
}

// effectiveChanges validates, normalizes (u < v), deduplicates, and filters
// a change list down to the entries that actually distinguish the two
// graphs: present in `in`, absent in `notIn`.
func effectiveChanges(kind string, in, notIn *graph.Graph, edges [][2]graph.VertexID) ([][2]graph.VertexID, error) {
	n := in.NumVertices()
	seen := make(map[uint64]struct{}, len(edges))
	var out [][2]graph.VertexID
	for _, e := range edges {
		u, v := e[0], e[1]
		if int(u) < 0 || int(u) >= n || int(v) < 0 || int(v) >= n {
			return nil, fmt.Errorf("delta: %s edge (%d,%d) out of range [0,%d)", kind, u, v, n)
		}
		if u == v {
			return nil, fmt.Errorf("delta: %s edge (%d,%d) is a self-loop", kind, u, v)
		}
		if u > v {
			u, v = v, u
		}
		k := edgeKey(u, v)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		if in.HasEdge(u, v) && !notIn.HasEdge(u, v) {
			out = append(out, [2]graph.VertexID{u, v})
		}
	}
	return out, nil
}

func edgeKey(u, v graph.VertexID) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// anchorSeeds pins every pattern edge, in both orientations, onto the data
// edge (u, v): the seeds of one anchored run. Exactly one (pattern edge,
// orientation) pair matches any embedding that uses {u, v}, so the run finds
// each such embedding exactly once.
func anchorSeeds(pEdges [][2]int, u, v graph.VertexID) []core.Seed {
	seeds := make([]core.Seed, 0, 2*len(pEdges))
	for _, pe := range pEdges {
		seeds = append(seeds,
			core.Seed{PatternVertices: []int{pe[0], pe[1]}, DataVertices: []graph.VertexID{u, v}},
			core.Seed{PatternVertices: []int{pe[0], pe[1]}, DataVertices: []graph.VertexID{v, u}},
		)
	}
	return seeds
}

// enumerateSide runs one anchored enumeration per changed edge over g,
// accumulating counts, optional embeddings, and run stats into res.
func enumerateSide(ctx context.Context, g *graph.Graph, changed [][2]graph.VertexID,
	p *pattern.Pattern, opts Options, stream func([]graph.VertexID),
	count *int64, collected *[][]graph.VertexID, res *Result) error {
	if len(changed) == 0 {
		return nil
	}
	keys := make(map[uint64]int, len(changed))
	for i, ce := range changed {
		keys[edgeKey(ce[0], ce[1])] = i
	}
	pEdges := p.Edges()
	for i, ce := range changed {
		// Count each embedding at its minimal changed edge: run i drops any
		// embedding whose image also uses an earlier anchor.
		anchor := i
		filter := func(m []graph.VertexID) bool {
			for _, pe := range pEdges {
				if j, ok := keys[edgeKey(m[pe[0]], m[pe[1]])]; ok && j < anchor {
					return false
				}
			}
			return true
		}
		copts := core.Options{
			Workers:          opts.Workers,
			Strategy:         opts.Strategy,
			Seed:             opts.Seed,
			Collect:          opts.Collect,
			OnInstance:       stream,
			Seeds:            anchorSeeds(pEdges, ce[0], ce[1]),
			EmitFilter:       filter,
			PlannedPattern:   true,
			IdentityOrder:    true,
			DisableEdgeIndex: true,
			InitialVertex:    pEdges[0][0], // ignored by seeding; skips per-run plan selection
			AsyncExchange:    opts.AsyncExchange,
			CompressFrames:   opts.CompressFrames,
			Exchange:         opts.Exchange,
			Retry:            opts.Retry,
			CheckpointEvery:  opts.CheckpointEvery,
			MaxRecoveries:    opts.MaxRecoveries,
		}
		if copts.CheckpointEvery > 0 {
			copts.CheckpointStore = bsp.NewMemCheckpointStore()
		}
		r, err := core.RunContext(ctx, g, p, copts)
		if err != nil {
			return fmt.Errorf("anchor (%d,%d): %w", ce[0], ce[1], err)
		}
		*count += r.Count
		if opts.Collect {
			*collected = append(*collected, r.Instances...)
		}
		res.Runs++
		res.GpsiGenerated += r.Stats.GpsiGenerated
		res.PrunedByFilter += r.Stats.PrunedByFilter
		res.Recoveries += r.Stats.Recoveries
	}
	return nil
}
