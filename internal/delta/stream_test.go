package delta

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"psgl/internal/centralized"
	"psgl/internal/gen"
	"psgl/internal/graph"
	"psgl/internal/pattern"
	"psgl/internal/stream"
)

// TestStreamBridgeTriangles feeds the same mutation batches through exact
// delta maintenance and the wedge-sampling estimator: the maintained count
// must track the oracle bit-exactly at every epoch, while the estimator —
// the paper's accuracy criticism, now measurable live — only lands within a
// loose relative band. This is the satellite bridge between internal/delta
// and internal/stream.
func TestStreamBridgeTriangles(t *testing.T) {
	g0 := gen.ChungLu(3000, 18000, 2.0, 3)
	ov := graph.NewOverlay(g0)
	p := pattern.Triangle()
	rng := rand.New(rand.NewSource(17))

	maintained := centralized.CountTriangles(g0)
	prev := g0
	for epoch := 0; epoch < 4; epoch++ {
		var b graph.Batch
		for i := 0; i < 12; i++ {
			u := graph.VertexID(rng.Intn(ov.NumVertices()))
			v := graph.VertexID(rng.Intn(ov.NumVertices()))
			if u == v {
				continue
			}
			if ov.HasEdge(u, v) && rng.Intn(2) == 0 {
				b.Remove = append(b.Remove, [2]graph.VertexID{u, v})
			} else {
				b.Add = append(b.Add, [2]graph.VertexID{u, v})
			}
		}
		res, err := ov.ApplyBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		next := ov.Snapshot()
		d, err := Enumerate(context.Background(), prev, next, res.Added, res.Removed, p,
			Options{Workers: 3, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		maintained += d.Gained - d.Lost

		exact := centralized.CountTriangles(next)
		if maintained != exact {
			t.Fatalf("epoch %d: maintained count %d != exact %d", epoch, maintained, exact)
		}
		// The estimator is unbiased; average a few seeds at 20k samples and
		// require the same loose band the stream package pins.
		var sum float64
		const runs = 6
		for seed := int64(0); seed < runs; seed++ {
			est, err := stream.EstimateTriangles(next, 20000, seed)
			if err != nil {
				t.Fatal(err)
			}
			sum += est.Estimate
		}
		mean := sum / runs
		if exact > 100 {
			if rel := math.Abs(mean-float64(maintained)) / float64(maintained); rel > 0.3 {
				t.Fatalf("epoch %d: estimator mean %.0f vs maintained %d: off by %.0f%%",
					epoch, mean, maintained, 100*rel)
			}
		}
		prev = next
	}
}
