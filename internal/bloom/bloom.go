// Package bloom implements the light-weight edge index of Section 5.2.3: a
// bloom filter over the undirected edges of the data graph. Each worker keeps
// a copy (the paper notes the Twitter index costs only ~2GB on each node), so
// a Gpsi expansion can check the existence of an edge whose endpoints live on
// remote workers without communication. The filter is one-sided: a negative
// answer is exact (the edge definitely does not exist, the Gpsi can be pruned
// immediately), while a positive answer may be a false positive and must be
// re-verified exactly by a later expansion step.
package bloom

import (
	"math"

	"psgl/internal/graph"
)

// Filter is a standard double-hashing bloom filter specialized to edge keys.
type Filter struct {
	bits    []uint64
	nbits   uint64
	k       int
	entries int64
}

// New creates a filter sized for n entries at the given bits-per-entry
// budget. The optimal number of hash functions k = bits/entry * ln2 is used.
// bitsPerEntry <= 0 defaults to 10 (false-positive rate ≈ 1%).
func New(n int64, bitsPerEntry int) *Filter {
	if bitsPerEntry <= 0 {
		bitsPerEntry = 10
	}
	if n < 1 {
		n = 1
	}
	nbits := uint64(n) * uint64(bitsPerEntry)
	if nbits < 64 {
		nbits = 64
	}
	k := int(math.Round(float64(bitsPerEntry) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return &Filter{
		bits:  make([]uint64, (nbits+63)/64),
		nbits: nbits,
		k:     k,
	}
}

// edgeKey produces an order-independent 64-bit key for the undirected edge
// {u, v}.
func edgeKey(u, v graph.VertexID) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func (f *Filter) hashes(key uint64) (h1, h2 uint64) {
	h1 = mix(key)
	h2 = mix(key ^ 0x9e3779b97f4a7c15)
	if h2 == 0 {
		h2 = 0x9e3779b97f4a7c15
	}
	return h1, h2
}

// AddEdge inserts the undirected edge {u, v}.
func (f *Filter) AddEdge(u, v graph.VertexID) {
	h1, h2 := f.hashes(edgeKey(u, v))
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.nbits
		f.bits[pos/64] |= 1 << (pos % 64)
	}
	f.entries++
}

// MayHaveEdge reports whether {u, v} might be present. False means definitely
// absent; true may be a false positive.
func (f *Filter) MayHaveEdge(u, v graph.VertexID) bool {
	h1, h2 := f.hashes(edgeKey(u, v))
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.nbits
		if f.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// Entries returns the number of edges inserted.
func (f *Filter) Entries() int64 { return f.entries }

// SizeBytes returns the memory footprint of the bit array.
func (f *Filter) SizeBytes() int64 { return int64(len(f.bits)) * 8 }

// EstimatedFalsePositiveRate returns the analytic false-positive probability
// (1 - e^(-kn/m))^k for the current fill level.
func (f *Filter) EstimatedFalsePositiveRate() float64 {
	if f.entries == 0 {
		return 0
	}
	exp := -float64(f.k) * float64(f.entries) / float64(f.nbits)
	return math.Pow(1-math.Exp(exp), float64(f.k))
}

// EdgeIndex is the shared light-weight index PSgL workers consult during
// candidate generation (Algorithm 5, pruning rule 2).
type EdgeIndex struct {
	filter *Filter
}

// BuildEdgeIndex indexes every edge of g. Building is O(|E|).
func BuildEdgeIndex(g *graph.Graph, bitsPerEdge int) *EdgeIndex {
	f := New(g.NumEdges(), bitsPerEdge)
	g.Edges(func(u, v graph.VertexID) bool {
		f.AddEdge(u, v)
		return true
	})
	return &EdgeIndex{filter: f}
}

// MayHaveEdge reports whether the data graph may contain {u, v}. No false
// negatives: every real edge answers true.
func (ix *EdgeIndex) MayHaveEdge(u, v graph.VertexID) bool {
	return ix.filter.MayHaveEdge(u, v)
}

// SizeBytes returns the index footprint.
func (ix *EdgeIndex) SizeBytes() int64 { return ix.filter.SizeBytes() }

// FalsePositiveRate returns the analytic false-positive estimate.
func (ix *EdgeIndex) FalsePositiveRate() float64 {
	return ix.filter.EstimatedFalsePositiveRate()
}
