package bloom

import (
	"math/rand"
	"testing"
	"testing/quick"

	"psgl/internal/gen"
	"psgl/internal/graph"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(1000, 10)
	rng := rand.New(rand.NewSource(1))
	type edge struct{ u, v graph.VertexID }
	edges := make([]edge, 1000)
	for i := range edges {
		edges[i] = edge{graph.VertexID(rng.Intn(5000)), graph.VertexID(rng.Intn(5000))}
		f.AddEdge(edges[i].u, edges[i].v)
	}
	for _, e := range edges {
		if !f.MayHaveEdge(e.u, e.v) {
			t.Fatalf("false negative for edge (%d,%d)", e.u, e.v)
		}
		if !f.MayHaveEdge(e.v, e.u) {
			t.Fatalf("order-dependence: (%d,%d) present but (%d,%d) absent", e.u, e.v, e.v, e.u)
		}
	}
}

func TestFalsePositiveRateNearAnalytic(t *testing.T) {
	const n = 20000
	f := New(n, 10)
	rng := rand.New(rand.NewSource(2))
	present := make(map[uint64]bool, n)
	for len(present) < n {
		u, v := graph.VertexID(rng.Intn(100000)), graph.VertexID(rng.Intn(100000))
		if u == v {
			continue
		}
		key := edgeKey(u, v)
		if present[key] {
			continue
		}
		present[key] = true
		f.AddEdge(u, v)
	}
	trials, fps := 0, 0
	for trials < 100000 {
		u, v := graph.VertexID(rng.Intn(100000)), graph.VertexID(rng.Intn(100000))
		if u == v || present[edgeKey(u, v)] {
			continue
		}
		trials++
		if f.MayHaveEdge(u, v) {
			fps++
		}
	}
	got := float64(fps) / float64(trials)
	want := f.EstimatedFalsePositiveRate()
	if got > 3*want+0.005 {
		t.Fatalf("measured FP rate %.4f far above analytic %.4f", got, want)
	}
	if got > 0.05 {
		t.Fatalf("FP rate %.4f too high for 10 bits/entry", got)
	}
}

func TestBitsPerEntryTradeoff(t *testing.T) {
	// More bits per entry must not raise the false-positive estimate.
	load := func(bpe int) float64 {
		f := New(10000, bpe)
		for i := 0; i < 10000; i++ {
			f.AddEdge(graph.VertexID(i), graph.VertexID(i+77777))
		}
		return f.EstimatedFalsePositiveRate()
	}
	if load(4) <= load(16) {
		t.Fatal("FP estimate should shrink with more bits per entry")
	}
}

func TestDefaultsAndTinySizes(t *testing.T) {
	f := New(0, 0) // both clamped
	f.AddEdge(1, 2)
	if !f.MayHaveEdge(2, 1) {
		t.Fatal("tiny filter lost its only edge")
	}
	if f.SizeBytes() < 8 {
		t.Fatal("filter has no storage")
	}
	if f.Entries() != 1 {
		t.Fatalf("Entries = %d, want 1", f.Entries())
	}
	if New(100, 10).EstimatedFalsePositiveRate() != 0 {
		t.Fatal("empty filter should estimate 0 FP rate")
	}
}

func TestEdgeIndexCoversGraph(t *testing.T) {
	g := gen.ErdosRenyi(2000, 10000, 3)
	ix := BuildEdgeIndex(g, 10)
	missing := 0
	g.Edges(func(u, v graph.VertexID) bool {
		if !ix.MayHaveEdge(u, v) {
			missing++
		}
		return true
	})
	if missing > 0 {
		t.Fatalf("%d real edges answered negative", missing)
	}
	if ix.SizeBytes() <= 0 || ix.FalsePositiveRate() <= 0 {
		t.Fatal("index stats not populated")
	}
}

func TestEdgeIndexPrunesNonEdges(t *testing.T) {
	g := gen.ErdosRenyi(2000, 10000, 4)
	ix := BuildEdgeIndex(g, 12)
	rng := rand.New(rand.NewSource(5))
	pruned, trials := 0, 0
	for trials < 20000 {
		u := graph.VertexID(rng.Intn(2000))
		v := graph.VertexID(rng.Intn(2000))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		trials++
		if !ix.MayHaveEdge(u, v) {
			pruned++
		}
	}
	if float64(pruned)/float64(trials) < 0.95 {
		t.Fatalf("index pruned only %d/%d non-edges", pruned, trials)
	}
}

func TestEdgeKeySymmetric(t *testing.T) {
	if err := quick.Check(func(u, v int32) bool {
		if u < 0 {
			u = -u
		}
		if v < 0 {
			v = -v
		}
		return edgeKey(u, v) == edgeKey(v, u)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMayHaveEdge(b *testing.B) {
	g := gen.ErdosRenyi(10000, 100000, 1)
	ix := BuildEdgeIndex(g, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.MayHaveEdge(graph.VertexID(i%10000), graph.VertexID((i*31)%10000))
	}
}

func BenchmarkBuildEdgeIndex(b *testing.B) {
	g := gen.ErdosRenyi(10000, 100000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildEdgeIndex(g, 10)
	}
}
