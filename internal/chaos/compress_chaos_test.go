package chaos

// Chaos coverage for compressed frames (core.Options.CompressFrames): the
// grouped inboxes ride barrier snapshots as still-encoded frames, so kills,
// drops, partitions, and checkpoint corruption now stress the compressed
// save/restore path too. The invariant is unchanged — recovery must be
// invisible in the count — plus one stronger property: the logical
// compression counters themselves must come out exactly-once.

import (
	"context"
	"testing"

	"psgl/internal/bsp"
	"psgl/internal/core"
	"psgl/internal/gen"
	"psgl/internal/pattern"
)

// TestCompressedKillOneWorkerBitIdenticalLocal reruns the acceptance kill
// schedule with compressed frames: the restored snapshot carries grouped
// frames that are re-decoded on replay, and the count must stay
// bit-identical to the (compressed) clean run.
func TestCompressedKillOneWorkerBitIdenticalLocal(t *testing.T) {
	g := gen.ErdosRenyi(80, 500, 1)
	p := pattern.PG2()
	for seed := int64(1); seed <= 5; seed++ {
		sched := NewKillSchedule(seed, 3, 2)
		out, err := Run(context.Background(), Config{
			Graph:   g,
			Pattern: p,
			Opts:    core.Options{Workers: 3, Seed: 1, CompressFrames: true},
		}, sched)
		if err != nil {
			t.Fatalf("seed %d (%s): %v", seed, sched, err)
		}
		if !out.Identical {
			t.Fatalf("seed %d (%s): compressed chaos count %d != clean %d",
				seed, sched, out.ChaosCount, out.CleanCount)
		}
		if out.FaultsFired == 0 {
			t.Fatalf("seed %d (%s): schedule never fired", seed, sched)
		}
		if out.Recoveries == 0 && out.Restarts == 0 {
			t.Fatalf("seed %d (%s): kill fired but neither recovery nor restart recorded", seed, sched)
		}
	}
}

// TestCompressedKillScheduleBitIdenticalTCP: compressed frames over real
// loopback-TCP pipes under worker death — the wire format under test is the
// prefix-compressed one end to end, and recovery rebuilds the mesh.
func TestCompressedKillScheduleBitIdenticalTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp chaos in -short mode")
	}
	g := gen.ErdosRenyi(60, 300, 2)
	p := pattern.Triangle()
	for seed := int64(1); seed <= 3; seed++ {
		sched := NewKillSchedule(seed, 3, 2)
		out, err := Run(context.Background(), Config{
			Graph:    g,
			Pattern:  p,
			Opts:     core.Options{Workers: 3, Seed: 2, CompressFrames: true},
			Exchange: bsp.NewTCPExchangeFactory(),
		}, sched)
		if err != nil {
			t.Fatalf("seed %d (%s): %v", seed, sched, err)
		}
		if !out.Identical {
			t.Fatalf("seed %d (%s): compressed chaos count %d != clean %d",
				seed, sched, out.ChaosCount, out.CleanCount)
		}
	}
}

// TestCompressedMixedScheduleSurvives: a dense seeded schedule (kills, drops,
// delays, partitions) against compressed grouped exchanges still converges.
// PG3 on a skewed Chung–Lu graph keeps batches dense enough that compression
// and group expansion actually engage while the faults fire.
func TestCompressedMixedScheduleSurvives(t *testing.T) {
	g := gen.ChungLu(70, 300, 2.3, 3)
	p := pattern.PG3()
	sched := NewSchedule(42, 3, 4, 4)
	out, err := Run(context.Background(), Config{
		Graph:   g,
		Pattern: p,
		Opts:    core.Options{Workers: 3, Seed: 3, CompressFrames: true},
	}, sched)
	if err != nil {
		t.Fatalf("%s: %v", sched, err)
	}
	if !out.Identical {
		t.Fatalf("%s: compressed chaos count %d != clean %d", sched, out.ChaosCount, out.CleanCount)
	}
	if out.FaultsInjected != 4 {
		t.Fatalf("injected %d, want 4", out.FaultsInjected)
	}
}

// TestCompressedCorruptCheckpointIsDetectedNotSilent: a mangled snapshot now
// contains grouped frames, and the corrupted restore must still surface
// bsp.ErrCorruptCheckpoint (the CRC seal plus grouped-frame validation),
// force a whole-query restart, and end bit-identical — never silently decode
// garbage into Gpsis.
func TestCompressedCorruptCheckpointIsDetectedNotSilent(t *testing.T) {
	g := gen.ErdosRenyi(80, 500, 4)
	p := pattern.PG2()
	sched := Schedule{Seed: 7, Events: []Event{
		{Step: 1, Kind: CorruptCheckpoint},
		{Step: 2, Kind: Kill, Worker: 1},
	}}
	out, err := Run(context.Background(), Config{
		Graph:           g,
		Pattern:         p,
		Opts:            core.Options{Workers: 3, Seed: 4, CompressFrames: true},
		CheckpointEvery: 1,
	}, sched)
	if err != nil {
		t.Fatalf("%s: %v", sched, err)
	}
	if out.CorruptionsInjected != 1 {
		t.Fatalf("corruptions injected = %d, want 1", out.CorruptionsInjected)
	}
	if out.CorruptionsDetected != 1 {
		t.Fatalf("corruptions detected = %d, want 1 (corrupt restore must fail loudly)", out.CorruptionsDetected)
	}
	if out.Restarts == 0 {
		t.Fatal("corrupt checkpoint must force a whole-query restart")
	}
	if !out.Identical {
		t.Fatalf("%s: compressed chaos count %d != clean %d", sched, out.ChaosCount, out.CleanCount)
	}
}

// TestCompressedAsyncKillBitIdenticalLocal: compressed wire format on the
// pipelined async exchange under the kill schedule — frames are compressed
// per Send, termination is credit-based, and the count must match the clean
// compressed async run.
func TestCompressedAsyncKillBitIdenticalLocal(t *testing.T) {
	g := gen.ErdosRenyi(80, 500, 1)
	p := pattern.PG2()
	for seed := int64(1); seed <= 3; seed++ {
		sched := NewKillSchedule(seed, 3, 2)
		out, err := Run(context.Background(), Config{
			Graph:   g,
			Pattern: p,
			Opts:    core.Options{Workers: 3, Seed: 1, AsyncExchange: true, CompressFrames: true},
		}, sched)
		if err != nil {
			t.Fatalf("seed %d (%s): %v", seed, sched, err)
		}
		if !out.Identical {
			t.Fatalf("seed %d (%s): compressed async chaos count %d != clean %d",
				seed, sched, out.ChaosCount, out.CleanCount)
		}
	}
}
