// Package chaos is the deterministic chaos harness for the PSgL serving
// tier: it runs the same query twice — once clean, once under a seeded fault
// schedule (kill worker W at superstep S, drop or delay a barrier's frames,
// partition the exchange mesh, corrupt a checkpoint) — and verifies the two
// embedding counts are bit-identical. The harness is how the repo turns the
// paper's implicit reliance on Giraph's fault tolerance (Section 6 runs on
// Hadoop, where worker death is routine) into a testable property: recovery
// must be invisible in the answer, not just in the exit code.
//
// Everything is seeded. The same Schedule produces the same faults at the
// same barriers on every run, so a chaos failure reproduces with its seed.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"psgl/internal/bsp"
	"psgl/internal/core"
	"psgl/internal/graph"
	"psgl/internal/obs"
	"psgl/internal/pattern"
)

// EventKind enumerates what a scheduled chaos event does.
type EventKind uint8

const (
	// Kill simulates worker death mid-superstep: the barrier fails with
	// nothing delivered, the way Giraph's master sees a dead worker.
	Kill EventKind = iota + 1
	// Drop loses the barrier's whole frame batch; detected at the barrier.
	Drop
	// Delay holds the barrier's frames for Event.Delay, then delivers.
	Delay
	// Partition splits the exchange mesh; frames across the cut are
	// undeliverable and the barrier fails.
	Partition
	// CorruptCheckpoint flips a byte in the snapshot sealed at the barrier
	// closing superstep Event.Step, before it reaches the store. Pair it
	// with a Kill at Event.Step+1 so the next restore reads the mangled
	// snapshot: the corruption must then be *detected*
	// (bsp.ErrCorruptCheckpoint) — a silently-wrong count is the one
	// outcome chaos exists to rule out.
	CorruptCheckpoint
)

// String names the kind for reports and error text.
func (k EventKind) String() string {
	switch k {
	case Kill:
		return "kill"
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Partition:
		return "partition"
	case CorruptCheckpoint:
		return "corrupt-checkpoint"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one scheduled fault: at superstep Step, do Kind.
type Event struct {
	Step int
	Kind EventKind
	// Worker is the victim (Kill) or the partition boundary (Partition).
	Worker int
	// Delay is the injected latency for Delay events.
	Delay time.Duration
}

// Schedule is a reproducible fault plan. Seed both documents where the plan
// came from and seeds the chaos run's retry jitter, so the whole run is
// replayable from the schedule alone.
type Schedule struct {
	Seed   int64
	Events []Event
}

// String renders the schedule compactly for logs: "seed=7 kill@3(w1) drop@5".
func (s Schedule) String() string {
	out := fmt.Sprintf("seed=%d", s.Seed)
	for _, e := range s.Events {
		switch e.Kind {
		case Kill, Partition:
			out += fmt.Sprintf(" %s@%d(w%d)", e.Kind, e.Step, e.Worker)
		case Delay:
			out += fmt.Sprintf(" %s@%d(%v)", e.Kind, e.Step, e.Delay)
		default:
			out += fmt.Sprintf(" %s@%d", e.Kind, e.Step)
		}
	}
	return out
}

// splitmix64 is the schedule generator's PRNG — tiny, seedable, and decoupled
// from math/rand so schedules are stable across Go releases.
type splitmix64 struct{ s uint64 }

func (r *splitmix64) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

func (r *splitmix64) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// NewKillSchedule is the acceptance-criteria schedule: kill one worker at a
// seeded-random superstep. Steps land in [1, maxStep] so the kill always hits
// a barrier a real run reaches (superstep 0 is initialization).
func NewKillSchedule(seed int64, workers, maxStep int) Schedule {
	r := splitmix64{s: uint64(seed)}
	if maxStep < 1 {
		maxStep = 1
	}
	return Schedule{Seed: seed, Events: []Event{{
		Step:   1 + r.intn(maxStep),
		Kind:   Kill,
		Worker: r.intn(workers),
	}}}
}

// NewSchedule draws n seeded-random exchange faults (kill, drop, delay,
// partition — not checkpoint corruption, which needs deliberate pairing with
// a later fault to be observable; build those schedules explicitly).
func NewSchedule(seed int64, workers, maxStep, n int) Schedule {
	r := splitmix64{s: uint64(seed)}
	if maxStep < 1 {
		maxStep = 1
	}
	s := Schedule{Seed: seed}
	kinds := []EventKind{Kill, Kill, Drop, Delay, Partition}
	for i := 0; i < n; i++ {
		e := Event{
			Step:   1 + r.intn(maxStep),
			Kind:   kinds[r.intn(len(kinds))],
			Worker: r.intn(workers),
		}
		if e.Kind == Delay {
			e.Delay = time.Duration(1+r.intn(5)) * time.Millisecond
		}
		s.Events = append(s.Events, e)
	}
	return s
}

// Config describes the query under chaos and its recovery budget.
type Config struct {
	Graph   *graph.Graph
	Pattern *pattern.Pattern
	// Opts is the base engine configuration (workers, strategy, seed). Its
	// exchange/checkpoint/retry fields are overridden by the harness.
	Opts core.Options
	// Exchange is the transport under test (nil = the in-process exchange;
	// bsp.NewTCPExchangeFactory() exercises the wire path).
	Exchange bsp.ExchangeFactory
	// CheckpointEvery is the snapshot cadence for the chaos run. 0 means 1
	// (every barrier) so any kill step has a checkpoint to restore.
	CheckpointEvery int
	// MaxRecoveries bounds in-run checkpoint restores. 0 means
	// 4 + 2*len(events).
	MaxRecoveries int
	// MaxRestarts bounds whole-run re-admissions after an unrecoverable
	// failure (recovery budget exhausted, or a corrupt checkpoint detected
	// at restore). 0 means 2.
	MaxRestarts int
	// Observer, when non-nil, receives the chaos run's counters and trace.
	Observer *obs.Observer
}

// Outcome is the verdict of one chaos run.
type Outcome struct {
	Schedule string `json:"schedule"`
	// CleanCount and ChaosCount are the two embedding counts; Identical is
	// the property under test.
	CleanCount int64 `json:"clean_count"`
	ChaosCount int64 `json:"chaos_count"`
	Identical  bool  `json:"identical"`
	// FaultsInjected is the schedule size; FaultsFired is how many events
	// actually hit a barrier (an event past the last superstep never fires).
	FaultsInjected int `json:"faults_injected"`
	FaultsFired    int `json:"faults_fired"`
	// Recoveries counts in-run checkpoint restores across all attempts;
	// Retries counts exchange retry attempts; Restarts counts whole-run
	// re-admissions.
	Recoveries int64 `json:"recoveries"`
	Retries    int64 `json:"retries"`
	Restarts   int   `json:"restarts"`
	// CorruptionsInjected counts snapshots the harness mangled;
	// CorruptionsDetected counts restores that surfaced
	// bsp.ErrCorruptCheckpoint instead of silently restoring bad state.
	CorruptionsInjected int           `json:"corruptions_injected"`
	CorruptionsDetected int           `json:"corruptions_detected"`
	CleanWall           time.Duration `json:"clean_wall_ns"`
	ChaosWall           time.Duration `json:"chaos_wall_ns"`
}

// corrupter tracks which checkpoint steps still need corrupting; it is
// shared across store incarnations so each corruption fires exactly once
// even when a restart swaps in a fresh store.
type corrupter struct {
	mu        sync.Mutex
	steps     map[int]bool
	corrupted int
}

func newCorrupter(events []Event) *corrupter {
	c := &corrupter{steps: make(map[int]bool)}
	for _, e := range events {
		if e.Kind == CorruptCheckpoint {
			// The engine seals superstep S's barrier snapshot as step S+1.
			c.steps[e.Step+1] = true
		}
	}
	return c
}

func (c *corrupter) claim(step int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.steps[step] {
		return false
	}
	delete(c.steps, step)
	c.corrupted++
	return true
}

func (c *corrupter) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.corrupted
}

// corruptingStore flips one byte of the snapshot for claimed steps on its way
// into the inner store. The CRC seal inside the snapshot means a later Load
// must fail with bsp.ErrCorruptCheckpoint — never restore silently-wrong
// state.
type corruptingStore struct {
	inner bsp.CheckpointStore
	c     *corrupter
}

func (s *corruptingStore) Save(step int, data []byte) error {
	if s.c.claim(step) && len(data) > 0 {
		mangled := append([]byte(nil), data...)
		mangled[len(mangled)/2] ^= 0x40
		data = mangled
	}
	return s.inner.Save(step, data)
}

func (s *corruptingStore) Load() (int, []byte, error) { return s.inner.Load() }

// Run executes cfg's query clean, then under sched, and compares the counts.
// A chaos attempt that dies beyond its in-run recovery budget — or trips
// over a corrupted checkpoint — is re-admitted whole (fresh store, faults
// already fired stay fired) up to MaxRestarts times, mirroring how the
// serving tier re-admits a query whose worker died. The returned error is
// non-nil only when the harness itself cannot complete (the query never
// survives the schedule); a count mismatch is reported via
// Outcome.Identical, which callers must check.
func Run(ctx context.Context, cfg Config, sched Schedule) (*Outcome, error) {
	if cfg.Graph == nil || cfg.Pattern == nil {
		return nil, fmt.Errorf("chaos: nil graph or pattern")
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 1
	}
	if cfg.MaxRecoveries <= 0 {
		cfg.MaxRecoveries = 4 + 2*len(sched.Events)
	}
	if cfg.MaxRestarts <= 0 {
		cfg.MaxRestarts = 2
	}

	out := &Outcome{Schedule: sched.String(), FaultsInjected: len(sched.Events)}

	// Reference run: plain options, in-process exchange, no fault layer.
	cleanOpts := cfg.Opts
	cleanOpts.Exchange = nil
	cleanOpts.Observer = nil
	start := time.Now()
	clean, err := core.RunContext(ctx, cfg.Graph, cfg.Pattern, cleanOpts)
	out.CleanWall = time.Since(start)
	if err != nil {
		return nil, fmt.Errorf("chaos: clean run failed: %w", err)
	}
	out.CleanCount = clean.Count

	// Chaos run: scheduled faults on the exchange, corruption on the store,
	// seeded retry jitter so the whole run replays from the schedule.
	retry := bsp.RetryPolicy{
		MaxAttempts: 3,
		BaseBackoff: 100 * time.Microsecond,
		MaxBackoff:  2 * time.Millisecond,
		JitterSeed:  sched.Seed ^ 0x5ca1ab1e,
	}
	var stepFaults []bsp.StepFault
	for _, e := range sched.Events {
		var k bsp.StepFaultKind
		repeat := 1
		switch e.Kind {
		case Kill:
			// A dead worker fails every retry of the barrier — only a
			// checkpoint restore gets past it. A single fire would be
			// absorbed by retry, which is Drop's semantics, not death's.
			k, repeat = bsp.StepFaultKill, retry.MaxAttempts
		case Drop:
			k = bsp.StepFaultDrop
		case Delay:
			k = bsp.StepFaultDelay
		case Partition:
			k, repeat = bsp.StepFaultPartition, retry.MaxAttempts
		default:
			continue // corruption is injected at the store, not the exchange
		}
		for i := 0; i < repeat; i++ {
			stepFaults = append(stepFaults, bsp.StepFault{Step: e.Step, Kind: k, Worker: e.Worker, Delay: e.Delay})
		}
	}
	factory := bsp.NewScheduledFaultExchangeFactory(cfg.Exchange, stepFaults)
	corr := newCorrupter(sched.Events)

	o := cfg.Observer
	if o == nil {
		o = obs.New(nil)
	}

	chaosOpts := cfg.Opts
	chaosOpts.Exchange = factory
	chaosOpts.Observer = o
	chaosOpts.CheckpointEvery = cfg.CheckpointEvery
	chaosOpts.MaxRecoveries = cfg.MaxRecoveries
	chaosOpts.Retry = retry

	start = time.Now()
	var res *core.Result
	for attempt := 0; ; attempt++ {
		chaosOpts.CheckpointStore = &corruptingStore{inner: bsp.NewMemCheckpointStore(), c: corr}
		res, err = core.RunContext(ctx, cfg.Graph, cfg.Pattern, chaosOpts)
		if err == nil {
			break
		}
		if ctx.Err() != nil {
			return nil, fmt.Errorf("chaos: canceled: %w", err)
		}
		corrupt := errors.Is(err, bsp.ErrCorruptCheckpoint)
		if corrupt {
			out.CorruptionsDetected++
		}
		if !corrupt && !errors.Is(err, bsp.ErrInjectedFault) {
			return nil, fmt.Errorf("chaos: run failed outside the schedule: %w", err)
		}
		if attempt >= cfg.MaxRestarts {
			return nil, fmt.Errorf("chaos: query did not survive schedule %s after %d restarts: %w",
				sched, attempt, err)
		}
		out.Restarts++
		o.AddQueryRetry()
	}
	out.ChaosWall = time.Since(start)
	out.ChaosCount = res.Count
	out.Identical = out.ChaosCount == out.CleanCount
	out.FaultsFired = factory.Fired() + corr.count()
	out.CorruptionsInjected = corr.count()
	snap := o.Snapshot()
	out.Recoveries = snap.Recoveries
	out.Retries = snap.Retries
	return out, nil
}
