package chaos

import (
	"context"
	"strings"
	"testing"
	"time"

	"psgl/internal/bsp"
	"psgl/internal/core"
	"psgl/internal/gen"
	"psgl/internal/obs"
	"psgl/internal/pattern"
)

// TestKillOneWorkerBitIdenticalLocal is the ISSUE's acceptance schedule: a
// seeded schedule that kills one worker at a random superstep must complete
// with the embedding count bit-identical to the clean run — over several
// seeds, so the kill lands on different barriers.
func TestKillOneWorkerBitIdenticalLocal(t *testing.T) {
	g := gen.ErdosRenyi(80, 500, 1)
	p := pattern.PG2()
	// The query runs 4 supersteps; cap the kill step at 2 so every seed's
	// kill lands on a barrier the run actually reaches.
	for seed := int64(1); seed <= 5; seed++ {
		sched := NewKillSchedule(seed, 3, 2)
		out, err := Run(context.Background(), Config{
			Graph:   g,
			Pattern: p,
			Opts:    core.Options{Workers: 3, Seed: 1},
		}, sched)
		if err != nil {
			t.Fatalf("seed %d (%s): %v", seed, sched, err)
		}
		if !out.Identical {
			t.Fatalf("seed %d (%s): chaos count %d != clean %d",
				seed, sched, out.ChaosCount, out.CleanCount)
		}
		if out.FaultsFired == 0 {
			t.Fatalf("seed %d (%s): schedule never fired", seed, sched)
		}
		if out.Recoveries == 0 && out.Restarts == 0 {
			t.Fatalf("seed %d (%s): kill fired but neither recovery nor restart recorded", seed, sched)
		}
	}
}

// TestKillOneWorkerBitIdenticalTCP runs the same acceptance schedule over the
// loopback-TCP exchange: worker death severs real connections, recovery
// rebuilds the mesh, and the count must still match.
func TestKillOneWorkerBitIdenticalTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp chaos in -short mode")
	}
	g := gen.ErdosRenyi(60, 300, 2)
	p := pattern.Triangle()
	for seed := int64(1); seed <= 3; seed++ {
		sched := NewKillSchedule(seed, 3, 2)
		out, err := Run(context.Background(), Config{
			Graph:    g,
			Pattern:  p,
			Opts:     core.Options{Workers: 3, Seed: 2},
			Exchange: bsp.NewTCPExchangeFactory(),
		}, sched)
		if err != nil {
			t.Fatalf("seed %d (%s): %v", seed, sched, err)
		}
		if !out.Identical {
			t.Fatalf("seed %d (%s): chaos count %d != clean %d",
				seed, sched, out.ChaosCount, out.CleanCount)
		}
	}
}

// TestMixedScheduleSurvives: a denser seeded schedule (kills, drops, delays,
// partitions) still converges to the clean count.
func TestMixedScheduleSurvives(t *testing.T) {
	g := gen.ErdosRenyi(80, 500, 3)
	p := pattern.Triangle()
	sched := NewSchedule(42, 3, 4, 4)
	o := obs.New(nil)
	out, err := Run(context.Background(), Config{
		Graph:    g,
		Pattern:  p,
		Opts:     core.Options{Workers: 3, Seed: 3},
		Observer: o,
	}, sched)
	if err != nil {
		t.Fatalf("%s: %v", sched, err)
	}
	if !out.Identical {
		t.Fatalf("%s: chaos count %d != clean %d", sched, out.ChaosCount, out.CleanCount)
	}
	if out.FaultsInjected != 4 {
		t.Fatalf("injected %d, want 4", out.FaultsInjected)
	}
}

// TestCorruptCheckpointIsDetectedNotSilent: a corrupted snapshot paired with
// a later kill must surface bsp.ErrCorruptCheckpoint at restore time (the
// CRC seal), force a whole-query restart, and still end bit-identical —
// never a silently wrong count.
func TestCorruptCheckpointIsDetectedNotSilent(t *testing.T) {
	g := gen.ErdosRenyi(80, 500, 4)
	p := pattern.PG2()
	sched := Schedule{Seed: 7, Events: []Event{
		{Step: 1, Kind: CorruptCheckpoint},
		{Step: 2, Kind: Kill, Worker: 1},
	}}
	out, err := Run(context.Background(), Config{
		Graph:   g,
		Pattern: p,
		Opts:    core.Options{Workers: 3, Seed: 4},
		// Checkpoint every barrier so the step-1 snapshot exists and the
		// step-2 kill restores through it.
		CheckpointEvery: 1,
	}, sched)
	if err != nil {
		t.Fatalf("%s: %v", sched, err)
	}
	if out.CorruptionsInjected != 1 {
		t.Fatalf("corruptions injected = %d, want 1", out.CorruptionsInjected)
	}
	if out.CorruptionsDetected != 1 {
		t.Fatalf("corruptions detected = %d, want 1 (corrupt restore must fail loudly)", out.CorruptionsDetected)
	}
	if out.Restarts == 0 {
		t.Fatal("corrupt checkpoint must force a whole-query restart")
	}
	if !out.Identical {
		t.Fatalf("%s: chaos count %d != clean %d", sched, out.ChaosCount, out.CleanCount)
	}
}

// TestScheduleDeterminism: the same seed yields the same schedule; different
// seeds decorrelate.
func TestScheduleDeterminism(t *testing.T) {
	a := NewSchedule(9, 4, 6, 5)
	b := NewSchedule(9, 4, 6, 5)
	if a.String() != b.String() {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	c := NewSchedule(10, 4, 6, 5)
	if a.String() == c.String() {
		t.Fatalf("different seeds identical: %s", a)
	}
	k := NewKillSchedule(3, 4, 5)
	if len(k.Events) != 1 || k.Events[0].Kind != Kill {
		t.Fatalf("kill schedule %s", k)
	}
	if k.Events[0].Step < 1 || k.Events[0].Step > 5 {
		t.Fatalf("kill step %d out of [1,5]", k.Events[0].Step)
	}
	if !strings.Contains(k.String(), "kill@") {
		t.Fatalf("schedule string %q", k)
	}
}

// TestUnsurvivableScheduleFailsLoudly: a schedule that kills the same barrier
// more times than the whole recovery+restart budget must produce an error,
// not a wrong count.
func TestUnsurvivableScheduleFailsLoudly(t *testing.T) {
	g := gen.ErdosRenyi(40, 150, 5)
	p := pattern.Triangle()
	events := make([]Event, 0, 40)
	for i := 0; i < 40; i++ {
		events = append(events, Event{Step: 1, Kind: Kill, Worker: i % 2})
	}
	_, err := Run(context.Background(), Config{
		Graph:         g,
		Pattern:       p,
		Opts:          core.Options{Workers: 2, Seed: 5},
		MaxRecoveries: 2,
		MaxRestarts:   1,
	}, Schedule{Seed: 11, Events: events})
	if err == nil {
		t.Fatal("unsurvivable schedule must fail")
	}
	if !strings.Contains(err.Error(), "did not survive") {
		t.Fatalf("error %v", err)
	}
}

// TestDelayOnlyScheduleNeedsNoRecovery: pure delay faults slow barriers but
// never fail them; counts match with zero recoveries and zero restarts.
func TestDelayOnlyScheduleNeedsNoRecovery(t *testing.T) {
	g := gen.ErdosRenyi(60, 300, 6)
	p := pattern.Triangle()
	sched := Schedule{Seed: 13, Events: []Event{
		{Step: 1, Kind: Delay, Delay: 2 * time.Millisecond},
		{Step: 2, Kind: Delay, Delay: 2 * time.Millisecond},
	}}
	out, err := Run(context.Background(), Config{
		Graph:   g,
		Pattern: p,
		Opts:    core.Options{Workers: 3, Seed: 6},
	}, sched)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Identical {
		t.Fatalf("chaos count %d != clean %d", out.ChaosCount, out.CleanCount)
	}
	if out.Recoveries != 0 || out.Restarts != 0 {
		t.Fatalf("delay-only schedule recovered (%d) or restarted (%d)", out.Recoveries, out.Restarts)
	}
}

// TestAsyncKillOneWorkerBitIdenticalLocal reruns the acceptance kill
// schedule with the pipelined async exchange in both the clean and chaos
// legs: scheduled steps now name frame flush sequences instead of barriers,
// kills surface on the first Send carrying that seq, and recovery restores
// the latest quiescence checkpoint (or restarts from scratch if the kill
// beat the first snapshot). The count must stay bit-identical either way.
func TestAsyncKillOneWorkerBitIdenticalLocal(t *testing.T) {
	g := gen.ErdosRenyi(80, 500, 1)
	p := pattern.PG2()
	for seed := int64(1); seed <= 5; seed++ {
		sched := NewKillSchedule(seed, 3, 2)
		out, err := Run(context.Background(), Config{
			Graph:   g,
			Pattern: p,
			Opts:    core.Options{Workers: 3, Seed: 1, AsyncExchange: true},
		}, sched)
		if err != nil {
			t.Fatalf("seed %d (%s): %v", seed, sched, err)
		}
		if !out.Identical {
			t.Fatalf("seed %d (%s): async chaos count %d != clean %d",
				seed, sched, out.ChaosCount, out.CleanCount)
		}
		if out.FaultsFired == 0 {
			t.Fatalf("seed %d (%s): schedule never fired against frame seqs", seed, sched)
		}
		// Unlike strict mode, a fired kill need not force a recovery here:
		// the harness's repeated kill copies can be claimed by *different*
		// workers' first attempts and each absorbed by its own retry, so no
		// single worker exhausts its budget. Identical counts are the
		// invariant; the recovery path is pinned by the bsp-level tests.
	}
}

// TestAsyncKillScheduleBitIdenticalTCP: the same async kill schedule over
// real loopback-TCP pipes — a killed frame Send rides the pipelined
// transport, recovery tears down and rebuilds the mesh plus its reader
// goroutines, and the count must still match the clean async run.
func TestAsyncKillScheduleBitIdenticalTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp chaos in -short mode")
	}
	g := gen.ErdosRenyi(60, 300, 2)
	p := pattern.Triangle()
	for seed := int64(1); seed <= 3; seed++ {
		sched := NewKillSchedule(seed, 3, 2)
		out, err := Run(context.Background(), Config{
			Graph:    g,
			Pattern:  p,
			Opts:     core.Options{Workers: 3, Seed: 2, AsyncExchange: true},
			Exchange: bsp.NewTCPExchangeFactory(),
		}, sched)
		if err != nil {
			t.Fatalf("seed %d (%s): %v", seed, sched, err)
		}
		if !out.Identical {
			t.Fatalf("seed %d (%s): async chaos count %d != clean %d",
				seed, sched, out.ChaosCount, out.CleanCount)
		}
	}
}

// TestAsyncMixedScheduleSurvives: kills, drops, delays, and partitions
// against frame sequences of an async run still converge to the clean
// async count.
func TestAsyncMixedScheduleSurvives(t *testing.T) {
	g := gen.ErdosRenyi(80, 500, 3)
	p := pattern.Triangle()
	sched := NewSchedule(42, 3, 4, 4)
	out, err := Run(context.Background(), Config{
		Graph:   g,
		Pattern: p,
		Opts:    core.Options{Workers: 3, Seed: 3, AsyncExchange: true},
	}, sched)
	if err != nil {
		t.Fatalf("%s: %v", sched, err)
	}
	if !out.Identical {
		t.Fatalf("%s: async chaos count %d != clean %d", sched, out.ChaosCount, out.CleanCount)
	}
	if out.FaultsInjected != 4 {
		t.Fatalf("injected %d, want 4", out.FaultsInjected)
	}
}

// TestAsyncDelayOnlyScheduleNeedsNoRecovery: delayed frames merely stretch
// the pipeline — the credit detector waits them out, no retry fires, and
// neither recovery nor restart is recorded.
func TestAsyncDelayOnlyScheduleNeedsNoRecovery(t *testing.T) {
	g := gen.ErdosRenyi(60, 300, 6)
	p := pattern.Triangle()
	sched := Schedule{Seed: 13, Events: []Event{
		{Step: 1, Kind: Delay, Delay: 2 * time.Millisecond},
		{Step: 2, Kind: Delay, Delay: 2 * time.Millisecond},
	}}
	out, err := Run(context.Background(), Config{
		Graph:   g,
		Pattern: p,
		Opts:    core.Options{Workers: 3, Seed: 6, AsyncExchange: true},
	}, sched)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Identical {
		t.Fatalf("async chaos count %d != clean %d", out.ChaosCount, out.CleanCount)
	}
	if out.Recoveries != 0 || out.Restarts != 0 {
		t.Fatalf("delay-only async schedule recovered (%d) or restarted (%d)", out.Recoveries, out.Restarts)
	}
}
