// Package gen generates synthetic data graphs. The paper's experiments need
// two graph families (Section 3): power-law graphs, whose skewed degree
// distribution drives the gains of the workload-aware strategy and of the
// initial-pattern-vertex rule, and Erdős–Rényi random graphs, where those
// gains mostly vanish. Since the original SNAP/KONECT datasets cannot be
// shipped, internal/datasets uses these generators to build analogues with
// matching power-law exponents.
//
// All generators are deterministic for a given seed.
package gen

import (
	"math"
	"math/rand"
	"sort"

	"psgl/internal/graph"
)

// ErdosRenyi generates a G(n, m) random graph: m distinct undirected edges
// chosen uniformly at random. The result may have slightly fewer than m edges
// if n is small relative to m (duplicates are merged), but for sparse graphs
// the deficit is negligible.
func ErdosRenyi(n int, m int64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	if n < 2 {
		return b.Build()
	}
	for i := int64(0); i < m; i++ {
		u := graph.VertexID(rng.Intn(n))
		v := graph.VertexID(rng.Intn(n))
		for u == v {
			v = graph.VertexID(rng.Intn(n))
		}
		b.AddEdge(u, v)
	}
	return b.Build()
}

// ChungLu generates a power-law graph with n vertices, approximately m
// undirected edges, and degree exponent gamma (p(d) ∝ d^-γ) by sampling edge
// endpoints proportionally to per-vertex weights w_i ∝ (i+i0)^(-1/(γ-1)).
// Lower gamma yields heavier hubs. Weights are capped so a single hub cannot
// absorb more than maxHubFraction of all endpoint draws, which keeps γ→1
// graphs (WikiTalk-like) generable.
func ChungLu(n int, m int64, gamma float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	if n < 2 {
		return b.Build()
	}
	// Endpoint-share construction: half of the endpoint mass is spread
	// uniformly (populating the low-degree tail every real graph has), the
	// other half follows a power-law share curve z_i ∝ (i+1)^-τ with
	// τ = 1/(γ-1) (steeper τ = heavier hubs). A per-vertex cap bounds any
	// single hub at maxHubFraction of all draws — the finite-size cutoff
	// real γ<2 graphs exhibit — which keeps γ→1 requests generable.
	// maxHubFraction calibrates to real heavy-tailed graphs: WikiTalk's top
	// vertex touches ~0.5% of all edge endpoints; much above 1% a single
	// hub's expansion work dominates every parallel schedule and caps
	// scalability regardless of strategy.
	const (
		maxHubFraction = 0.01
		uniformShare   = 0.5
	)
	tau := 1.0 / (gamma - 1.0)
	if tau > 3 {
		tau = 3
	}
	if tau < 0.5 {
		tau = 0.5
	}
	var zsum float64
	for i := 0; i < n; i++ {
		zsum += math.Pow(float64(i+1), -tau)
	}
	weights := make([]float64, n)
	for i := range weights {
		s := uniformShare/float64(n) +
			(1-uniformShare)*math.Pow(float64(i+1), -tau)/zsum
		if s > maxHubFraction {
			s = maxHubFraction
		}
		weights[i] = s
	}
	// Cumulative sums for inverse-CDF sampling via binary search.
	cum := make([]float64, n)
	acc := 0.0
	for i, w := range weights {
		acc += w
		cum[i] = acc
	}
	draw := func() graph.VertexID {
		x := rng.Float64() * acc
		v := sort.SearchFloat64s(cum, x)
		if v >= n {
			v = n - 1
		}
		return graph.VertexID(v)
	}
	// Sample until m distinct edges (hub-to-hub pairs repeat often on skewed
	// weight curves), with an attempt cap so dense requests still terminate.
	seen := make(map[uint64]bool, m)
	attempts := int64(0)
	maxAttempts := 40 * m
	for int64(len(seen)) < m && attempts < maxAttempts {
		attempts++
		u, v := draw(), draw()
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := uint64(u)<<32 | uint64(uint32(v))
		if seen[key] {
			continue
		}
		seen[key] = true
		b.AddEdge(u, v)
	}
	return b.Build()
}

// BarabasiAlbert generates a preferential-attachment graph: each new vertex
// attaches k edges to existing vertices chosen proportionally to their
// current degree. Degree distribution follows a power law with γ ≈ 3.
func BarabasiAlbert(n, k int, seed int64) *graph.Graph {
	if k < 1 {
		k = 1
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	if n < 2 {
		return b.Build()
	}
	// endpoints holds one entry per edge endpoint; sampling uniformly from it
	// is sampling proportionally to degree.
	endpoints := make([]graph.VertexID, 0, 2*int(int64(n)*int64(k)))
	// Seed with a (k+1)-clique (or smaller if n is tiny).
	seedSize := k + 1
	if seedSize > n {
		seedSize = n
	}
	for i := 0; i < seedSize; i++ {
		for j := i + 1; j < seedSize; j++ {
			b.AddEdge(graph.VertexID(i), graph.VertexID(j))
			endpoints = append(endpoints, graph.VertexID(i), graph.VertexID(j))
		}
	}
	for v := seedSize; v < n; v++ {
		chosen := make(map[graph.VertexID]bool, k)
		for len(chosen) < k {
			t := endpoints[rng.Intn(len(endpoints))]
			if int(t) != v {
				chosen[t] = true
			}
		}
		for t := range chosen {
			b.AddEdge(graph.VertexID(v), t)
			endpoints = append(endpoints, graph.VertexID(v), t)
		}
	}
	return b.Build()
}

// RMAT generates a Kronecker-style R-MAT graph with 2^scale vertices and
// about m undirected edges, using quadrant probabilities (a, b, c, d) that
// must sum to 1. Classic parameters (0.57, 0.19, 0.19, 0.05) produce skewed,
// community-structured graphs similar to web/social networks (Twitter-like).
func RMAT(scale int, m int64, a, b, c, d float64, seed int64) *graph.Graph {
	if math.Abs(a+b+c+d-1) > 1e-9 {
		panic("gen: RMAT probabilities must sum to 1")
	}
	rng := rand.New(rand.NewSource(seed))
	n := 1 << scale
	bld := graph.NewBuilder(n)
	for i := int64(0); i < m; i++ {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: no bits set
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u != v {
			bld.AddEdge(graph.VertexID(u), graph.VertexID(v))
		}
	}
	return bld.Build()
}
