package gen

import (
	"math"
	"testing"

	"psgl/internal/graph"
	"psgl/internal/stats"
)

func degDist(g *graph.Graph) *stats.Distribution {
	return stats.FromHistogram(g.DegreeHistogram())
}

func TestErdosRenyiShape(t *testing.T) {
	g := ErdosRenyi(5000, 50000, 1)
	if g.NumVertices() != 5000 {
		t.Fatalf("V = %d, want 5000", g.NumVertices())
	}
	// Duplicate merging loses a bit; expect within 3%.
	if g.NumEdges() < 48500 || g.NumEdges() > 50000 {
		t.Fatalf("E = %d, want ~50000", g.NumEdges())
	}
	// Poisson-like: max degree should stay near the mean (20), far below hubs
	// of a power-law graph with the same density.
	if g.MaxDegree() > 60 {
		t.Errorf("ER max degree = %d, too skewed", g.MaxDegree())
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	g1 := ErdosRenyi(1000, 5000, 42)
	g2 := ErdosRenyi(1000, 5000, 42)
	g3 := ErdosRenyi(1000, 5000, 43)
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatal("same seed, different edge counts")
	}
	same := true
	for v := 0; v < 1000 && same; v++ {
		n1, n2 := g1.Neighbors(graph.VertexID(v)), g2.Neighbors(graph.VertexID(v))
		if len(n1) != len(n2) {
			same = false
			break
		}
		for i := range n1 {
			if n1[i] != n2[i] {
				same = false
				break
			}
		}
	}
	if !same {
		t.Error("same seed produced different graphs")
	}
	if g1.NumEdges() == g3.NumEdges() && g1.MaxDegree() == g3.MaxDegree() {
		// Extremely unlikely both match for a different seed.
		t.Log("warning: different seeds produced suspiciously similar graphs")
	}
}

func TestErdosRenyiTiny(t *testing.T) {
	if g := ErdosRenyi(0, 10, 1); g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatal("n=0 should be empty")
	}
	if g := ErdosRenyi(1, 10, 1); g.NumEdges() != 0 {
		t.Fatal("n=1 cannot have edges")
	}
}

func TestChungLuSkewed(t *testing.T) {
	g := ChungLu(20000, 100000, 1.8, 7)
	if g.NumVertices() != 20000 {
		t.Fatalf("V = %d", g.NumVertices())
	}
	if g.NumEdges() < 60000 {
		t.Fatalf("E = %d, too many merged duplicates", g.NumEdges())
	}
	avg := 2 * float64(g.NumEdges()) / float64(g.NumVertices())
	if g.MaxDegree() < int(10*avg) {
		t.Errorf("power-law graph should have hubs: max=%d avg=%.1f", g.MaxDegree(), avg)
	}
}

func TestChungLuGammaOrdering(t *testing.T) {
	// Lower requested gamma -> heavier tail -> lower fitted gamma. Fit the
	// hub tail only (well above the average degree) — the uniform body of
	// the mixture would otherwise dominate the MLE.
	fit := func(gamma float64) float64 {
		g := ChungLu(30000, 150000, gamma, 11)
		avg := int(2 * g.NumEdges() / int64(g.NumVertices()))
		got, err := degDist(g).PowerLawGamma(5 * avg)
		if err != nil {
			t.Fatalf("gamma=%g: %v", gamma, err)
		}
		return got
	}
	lo, hi := fit(1.5), fit(3.0)
	if lo >= hi {
		t.Fatalf("fitted gammas not ordered: γ(1.5 req)=%.2f >= γ(3.0 req)=%.2f", lo, hi)
	}
}

func TestChungLuExtremeGammaClamped(t *testing.T) {
	// γ near 1 must not hang or panic (weight cap takes over).
	g := ChungLu(5000, 25000, 1.0, 3)
	if g.NumVertices() != 5000 {
		t.Fatal("bad vertex count")
	}
	if g.NumEdges() == 0 {
		t.Fatal("no edges generated")
	}
}

func TestBarabasiAlbertShape(t *testing.T) {
	n, k := 10000, 5
	g := BarabasiAlbert(n, k, 9)
	if g.NumVertices() != n {
		t.Fatalf("V = %d", g.NumVertices())
	}
	// Each non-seed vertex adds k edges; seed clique adds C(k+1,2).
	wantE := int64((n-(k+1))*k + (k+1)*k/2)
	if g.NumEdges() > wantE || g.NumEdges() < wantE-int64(n)/100 {
		t.Fatalf("E = %d, want ~%d", g.NumEdges(), wantE)
	}
	// Min degree of non-seed vertices is k.
	below := 0
	for v := 0; v < n; v++ {
		if g.Degree(graph.VertexID(v)) < k {
			below++
		}
	}
	if below > 0 {
		t.Errorf("%d vertices below degree %d", below, k)
	}
	// BA is power law with gamma ~ 3.
	gamma, err := degDist(g).PowerLawGamma(k + 2)
	if err != nil {
		t.Fatal(err)
	}
	if gamma < 2.2 || gamma > 4.0 {
		t.Errorf("BA fitted gamma = %.2f, want ~3", gamma)
	}
}

func TestBarabasiAlbertTiny(t *testing.T) {
	g := BarabasiAlbert(3, 5, 1) // k larger than n
	if g.NumVertices() != 3 {
		t.Fatal("bad vertex count")
	}
	if g.NumEdges() != 3 { // falls back to a triangle seed
		t.Fatalf("E = %d, want 3", g.NumEdges())
	}
}

func TestRMATShape(t *testing.T) {
	g := RMAT(14, 100000, 0.57, 0.19, 0.19, 0.05, 5)
	if g.NumVertices() != 1<<14 {
		t.Fatalf("V = %d", g.NumVertices())
	}
	if g.NumEdges() < 50000 {
		t.Fatalf("E = %d, too few", g.NumEdges())
	}
	avg := 2 * float64(g.NumEdges()) / float64(g.NumVertices())
	if float64(g.MaxDegree()) < 8*avg {
		t.Errorf("RMAT should be skewed: max=%d avg=%.1f", g.MaxDegree(), avg)
	}
}

func TestRMATBadProbabilitiesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for probabilities not summing to 1")
		}
	}()
	RMAT(4, 10, 0.5, 0.5, 0.5, 0.5, 1)
}

func TestGeneratorsProduceSimpleGraphs(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"er":  ErdosRenyi(2000, 10000, 2),
		"cl":  ChungLu(2000, 10000, 2.0, 2),
		"ba":  BarabasiAlbert(2000, 4, 2),
		"rmt": RMAT(11, 10000, 0.57, 0.19, 0.19, 0.05, 2),
	}
	for name, g := range graphs {
		for v := 0; v < g.NumVertices(); v++ {
			nbs := g.Neighbors(graph.VertexID(v))
			for i, u := range nbs {
				if int(u) == v {
					t.Errorf("%s: self loop at %d", name, v)
				}
				if i > 0 && nbs[i-1] >= u {
					t.Errorf("%s: adjacency of %d not strictly sorted", name, v)
				}
			}
		}
	}
}

func TestERVsPowerLawSkewContrast(t *testing.T) {
	// Core premise of the paper's evaluation: same |V|,|E|, wildly different
	// skew. ImbalanceFactor(max/mean degree) must differ by an order of
	// magnitude.
	er := ErdosRenyi(20000, 100000, 13)
	cl := ChungLu(20000, 100000, 1.7, 13)
	ratio := func(g *graph.Graph) float64 {
		return float64(g.MaxDegree()) / (2 * float64(g.NumEdges()) / float64(g.NumVertices()))
	}
	if ratio(cl) < 5*ratio(er) {
		t.Errorf("skew contrast too weak: ER=%.1f CL=%.1f", ratio(er), ratio(cl))
	}
}

func BenchmarkChungLu(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ChungLu(50000, 250000, 1.8, int64(i))
	}
}

func BenchmarkErdosRenyi(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ErdosRenyi(50000, 250000, int64(i))
	}
}

var _ = math.Abs
