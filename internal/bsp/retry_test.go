package bsp

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestBackoffForDeterministicWithoutJitter: NoJitter reproduces the original
// doubling schedule, capped at MaxBackoff.
func TestBackoffForDeterministicWithoutJitter(t *testing.T) {
	p := RetryPolicy{BaseBackoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond, NoJitter: true}
	want := []time.Duration{
		1 * time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond,
		8 * time.Millisecond, 10 * time.Millisecond, 10 * time.Millisecond,
	}
	for i, w := range want {
		if got := backoffFor(p, nil, i+1); got != w {
			t.Fatalf("attempt %d: backoff %v, want %v", i+1, got, w)
		}
	}
}

// TestBackoffFullJitterBounds: every jittered draw stays within [0, cap]
// where cap follows the doubling schedule.
func TestBackoffFullJitterBounds(t *testing.T) {
	p := RetryPolicy{BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond}
	rng := newFaultRand(42)
	caps := []time.Duration{
		1 * time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond,
		8 * time.Millisecond, 8 * time.Millisecond,
	}
	sawNonzero := false
	for round := 0; round < 200; round++ {
		for i, cap := range caps {
			d := backoffFor(p, rng, i+1)
			if d < 0 || d > cap {
				t.Fatalf("attempt %d: jittered backoff %v outside [0, %v]", i+1, d, cap)
			}
			if d > 0 {
				sawNonzero = true
			}
		}
	}
	if !sawNonzero {
		t.Fatal("1000 jittered draws were all zero")
	}
}

// TestBackoffSeededJitterIsDeterministic: the same JitterSeed yields the same
// draw sequence — the mode fault-injection tests rely on.
func TestBackoffSeededJitterIsDeterministic(t *testing.T) {
	p := RetryPolicy{BaseBackoff: time.Millisecond, MaxBackoff: 16 * time.Millisecond}
	a, b := newFaultRand(7), newFaultRand(7)
	for i := 1; i <= 32; i++ {
		da, db := backoffFor(p, a, i), backoffFor(p, b, i)
		if da != db {
			t.Fatalf("attempt %d: seeded draws diverged (%v vs %v)", i, da, db)
		}
	}
}

// TestBackoffUnseededDrawsDecorrelate: two independently seeded streams must
// not produce identical jitter schedules (the thundering-herd fix).
func TestBackoffUnseededDrawsDecorrelate(t *testing.T) {
	p := RetryPolicy{BaseBackoff: time.Millisecond, MaxBackoff: 100 * time.Millisecond}
	a, b := newFaultRand(1), newFaultRand(2)
	same := 0
	const draws = 64
	for i := 1; i <= draws; i++ {
		if backoffFor(p, a, i) == backoffFor(p, b, i) {
			same++
		}
	}
	if same == draws {
		t.Fatal("two differently seeded jitter streams produced identical schedules")
	}
}

// TestConcurrentRetrySeedsDecorrelate: many retriers created as close to the
// same instant as the scheduler allows must all draw distinct seeds AND
// distinct backoff schedules. The pre-fix seeding (nano ^ counter<<20) handed
// same-tick callers seeds differing only in a narrow bit window, which the
// PRNG's single-multiply seeding did not disperse — their jitter correlated
// and the thundering herd full jitter exists to prevent came back.
func TestConcurrentRetrySeedsDecorrelate(t *testing.T) {
	const n = 256
	seeds := make([]int64, n)
	var start, wg sync.WaitGroup
	start.Add(1)
	for i := range seeds {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start.Wait() // maximize same-tick collisions
			seeds[i] = retrySeed()
		}(i)
	}
	start.Done()
	wg.Wait()

	seen := make(map[int64]bool, n)
	p := RetryPolicy{BaseBackoff: time.Millisecond, MaxBackoff: 100 * time.Millisecond}
	schedules := make(map[string]int, n)
	for _, s := range seeds {
		if seen[s] {
			t.Fatalf("two retriers drew the same seed %d", s)
		}
		seen[s] = true
		rng := newFaultRand(s)
		sig := ""
		for a := 1; a <= 4; a++ {
			sig += fmt.Sprintf("%d,", backoffFor(p, rng, a))
		}
		schedules[sig]++
	}
	for sig, c := range schedules {
		if c > 1 {
			t.Fatalf("%d concurrent retriers drew the identical backoff schedule [%s]", c, sig)
		}
	}
}

// TestWithRetryJitteredStillRetriesAndSucceeds: the jittered path preserves
// the retry contract end to end.
func TestWithRetryJitteredStillRetriesAndSucceeds(t *testing.T) {
	calls := 0
	err := withRetry(context.Background(),
		RetryPolicy{MaxAttempts: 5, BaseBackoff: 10 * time.Microsecond, MaxBackoff: 100 * time.Microsecond, JitterSeed: 3},
		func() error {
			calls++
			if calls < 4 {
				return errors.New("transient")
			}
			return nil
		})
	if err != nil {
		t.Fatalf("withRetry: %v", err)
	}
	if calls != 4 {
		t.Fatalf("op called %d times, want 4", calls)
	}
}
