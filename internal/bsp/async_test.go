package bsp

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"psgl/internal/graph"
	"psgl/internal/obs"
)

// --- credit/ack termination detector units ---

func TestCreditDetectorIdleButCreditOutstanding(t *testing.T) {
	// Every worker parked and idle, but a frame is still in flight: the run
	// must NOT be declared finished — the frame will wake its destination.
	det := newCreditDetector(3)
	for w := 0; w < 3; w++ {
		det.setIdle(w, true)
	}
	det.frameSent(1)
	if det.quiescent() {
		t.Fatal("quiescent with outstanding credit: the in-flight frame was forgotten")
	}
	det.enqueued(2)
	det.frameAcked(1)
	if det.quiescent() {
		t.Fatal("quiescent while the delivered frame's destination is not idle")
	}
	det.setIdle(2, true)
	if !det.quiescent() {
		t.Fatal("not quiescent after the frame was delivered and its destination drained")
	}
}

func TestCreditDetectorAckReordering(t *testing.T) {
	// Acks arrive in a different order than the sends (the TCP reader
	// goroutines have no cross-conn ordering). Per-sender credit balances
	// must still converge to zero, and quiescence must wait for the last ack.
	det := newCreditDetector(3)
	det.frameSent(0)
	det.frameSent(0)
	det.frameSent(2)
	for w := 0; w < 3; w++ {
		det.setIdle(w, true)
	}
	// Worker 2's frame (sent last) is acked first.
	det.enqueued(1)
	det.frameAcked(2)
	det.enqueued(1)
	det.frameAcked(0)
	det.setIdle(1, true)
	if det.quiescent() {
		t.Fatal("quiescent with one of worker 0's frames still outstanding")
	}
	det.enqueued(1)
	det.frameAcked(0)
	det.setIdle(1, true)
	if !det.quiescent() {
		t.Fatal("not quiescent after every ack arrived (reordered)")
	}
	if got := det.outstandingTotal(); got != 0 {
		t.Fatalf("outstandingTotal = %d after balanced acks, want 0", got)
	}
}

func TestCreditDetectorLateFrameAfterLocalQuiescence(t *testing.T) {
	// The nasty interleaving: everything looks idle, the scan starts, and a
	// frame lands mid-scan at a worker that processes it and re-idles before
	// the idle check reaches it. Credit is balanced, every idle flag reads
	// true — only the activity epoch betrays the late frame.
	det := newCreditDetector(2)
	det.setIdle(0, true)
	det.setIdle(1, true)
	injected := false
	det.onScan = func() {
		if !injected {
			injected = true
			det.enqueued(1)
			det.setIdle(1, true) // processed so fast it's idle again already
		}
	}
	if det.quiescent() {
		t.Fatal("late frame slipped past the verdict: activity epoch not honored")
	}
	if !det.quiescent() {
		t.Fatal("second scan (no new activity) should be quiescent")
	}
}

func newTestAttempt(t *testing.T, cfg *Config, prog Program[int], seeded bool) *asyncAttempt[int] {
	t.Helper()
	stats := &RunStats{
		WorkerTime:     make([]time.Duration, cfg.Workers),
		WorkerMessages: make([]int64, cfg.Workers),
		Counters:       map[string]int64{},
	}
	var abortPtr atomic.Pointer[error]
	return newAsyncAttempt[int](cfg, prog, stats, &abortPtr, nil, seeded, 100)
}

func TestAsyncAckAlwaysNudgesCoordinator(t *testing.T) {
	// Regression: ack() used to nudge the coordinator only when a checkpoint
	// was due or a pause was in progress. The final ack — the one that brings
	// outstanding credit to zero — may be the only event left to wake
	// coordinate() for its last quiescence scan, so it must always nudge.
	prog := &funcProgram[int]{
		init:    func(*Context[int]) {},
		process: func(*Context[int], Envelope[int]) {},
	}
	a := newTestAttempt(t, &Config{Workers: 2}, prog, true)
	a.det.frameSent(0)
	select {
	case <-a.nudge: // drain any pending nudge, as coordinate() would
	default:
	}
	a.ack(0)
	select {
	case <-a.nudge:
	default:
		t.Fatal("ack released the last credit without nudging the coordinator")
	}
}

// delayedAckTransport delivers frames synchronously but releases each ack
// from a separate goroutine only once the destination worker has drained its
// queue and parked idle again — the TCP-reader interleaving where the final
// ack lands after the destination's idle-nudge was already consumed.
type delayedAckTransport[M any] struct {
	h   asyncHooks[M]
	det *creditDetector
}

func (t delayedAckTransport[M]) Send(_ context.Context, src, dst, _ int, batch []Envelope[M]) error {
	t.h.deliver(dst, batch)
	go func() {
		for !t.det.idle[dst].Load() {
			time.Sleep(100 * time.Microsecond)
		}
		// Give the coordinator time to consume the idle-nudges and block on a
		// non-quiescent verdict (credit still outstanding) before the ack.
		time.Sleep(2 * time.Millisecond)
		t.h.ack(src)
	}()
	return nil
}

func (t delayedAckTransport[M]) Close() error { return nil }

func TestAsyncDelayedAckStillTerminates(t *testing.T) {
	// Regression for the lost-wakeup hang: every worker parks and nudges,
	// the coordinator scans (credit still outstanding) and blocks, and only
	// then does the transport ack the last frame. The run must still detect
	// quiescence instead of hanging forever on the nudge channel.
	prog := &funcProgram[int]{
		init: func(ctx *Context[int]) {
			if ctx.Worker() == 0 {
				ctx.Send(100, 1)
			}
		},
		process: func(*Context[int], Envelope[int]) {},
	}
	cfg := &Config{
		Workers: 2,
		Owner: func(v graph.VertexID) int {
			if v < 100 {
				return 0
			}
			return 1
		},
	}
	a := newTestAttempt(t, cfg, prog, false)
	a.transport = delayedAckTransport[int]{h: a.hooks(), det: a.det}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := a.runAttempt(ctx); err != nil {
		t.Fatalf("delayed-ack attempt did not terminate cleanly: %v", err)
	}
}

// --- async plane vs strict mode ---

func runEchoMode(t *testing.T, factory ExchangeFactory, async bool) *RunStats {
	t.Helper()
	prog, cfg := newEcho(100, 5, 3)
	cfg.Exchange = factory
	cfg.AsyncExchange = async
	stats, err := Run[int](cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

func TestAsyncEchoMatchesStrict(t *testing.T) {
	strict := runEchoMode(t, nil, false)
	async := runEchoMode(t, nil, true)
	if strict.Counters["delivered"] != async.Counters["delivered"] {
		t.Fatalf("delivered differ: strict=%d async=%d",
			strict.Counters["delivered"], async.Counters["delivered"])
	}
	if strict.MessagesTotal != async.MessagesTotal {
		t.Fatalf("message totals differ: strict=%d async=%d",
			strict.MessagesTotal, async.MessagesTotal)
	}
	if len(async.PerStepWorkerTime) != async.Supersteps {
		t.Fatalf("async epoch rows %d != Supersteps %d",
			len(async.PerStepWorkerTime), async.Supersteps)
	}
	var wm int64
	for _, m := range async.WorkerMessages {
		wm += m
	}
	if wm != async.MessagesTotal {
		t.Fatalf("async worker message sum %d != total %d", wm, async.MessagesTotal)
	}
}

func TestAsyncTCPEchoMatchesStrict(t *testing.T) {
	strict := runEchoMode(t, nil, false)
	async := runEchoMode(t, NewTCPExchangeFactory(), true)
	if strict.Counters["delivered"] != async.Counters["delivered"] {
		t.Fatalf("delivered differ: strict=%d asyncTCP=%d",
			strict.Counters["delivered"], async.Counters["delivered"])
	}
	if strict.MessagesTotal != async.MessagesTotal {
		t.Fatalf("message totals differ: strict=%d asyncTCP=%d",
			strict.MessagesTotal, async.MessagesTotal)
	}
}

func TestAsyncSmallFlushMatchesStrict(t *testing.T) {
	// Aggressive pipelining (flush every message) must not change counts.
	strict := runEchoMode(t, nil, false)
	prog, cfg := newEcho(100, 5, 3)
	cfg.AsyncExchange = true
	cfg.AsyncFlushEvery = 1
	async, err := Run[int](cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if strict.Counters["delivered"] != async.Counters["delivered"] {
		t.Fatalf("delivered differ: strict=%d async(flush=1)=%d",
			strict.Counters["delivered"], async.Counters["delivered"])
	}
}

func TestAsyncEmptyProgramTerminates(t *testing.T) {
	prog := &funcProgram[int]{
		init:    func(*Context[int]) {},
		process: func(*Context[int], Envelope[int]) {},
	}
	cfg := Config{Workers: 3, Owner: func(graph.VertexID) int { return 0 }, AsyncExchange: true}
	stats, err := Run[int](cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MessagesTotal != 0 {
		t.Fatalf("empty async program: msgs=%d", stats.MessagesTotal)
	}
}

func TestAsyncStructMessagesOverTCP(t *testing.T) {
	// Gob-mode frames must survive the pipelined TCP path intact too.
	var mu sync.Mutex
	var received []structMsg
	prog := &funcProgram[structMsg]{
		init: func(ctx *Context[structMsg]) {
			if ctx.Worker() == 0 {
				ctx.Send(5, structMsg{Mapping: []int32{1, -1, 3}, Next: 2, Mask: 0xdead})
			}
		},
		process: func(ctx *Context[structMsg], env Envelope[structMsg]) {
			mu.Lock()
			received = append(received, env.Msg)
			mu.Unlock()
		},
	}
	part := graph.NewPartition(2, 1)
	cfg := Config{
		Workers:       2,
		Owner:         func(v graph.VertexID) int { return part.Owner(v) },
		Exchange:      NewTCPExchangeFactory(),
		AsyncExchange: true,
	}
	if _, err := Run[structMsg](cfg, prog); err != nil {
		t.Fatal(err)
	}
	if len(received) != 1 {
		t.Fatalf("received %d messages, want 1", len(received))
	}
	got := received[0]
	if got.Next != 2 || got.Mask != 0xdead || len(got.Mapping) != 3 || got.Mapping[2] != 3 {
		t.Fatalf("struct mangled in async transit: %+v", got)
	}
}

// --- abort, cancellation, runaway ---

func TestAsyncAbortStopsRun(t *testing.T) {
	boom := errors.New("boom")
	prog := &funcProgram[int]{
		init: func(ctx *Context[int]) { ctx.Send(0, 1) },
		process: func(ctx *Context[int], env Envelope[int]) {
			ctx.Abort(boom)
			ctx.Send(0, 1) // keeps producing; abort must still win
		},
	}
	cfg := Config{Workers: 2, Owner: func(graph.VertexID) int { return 0 }, AsyncExchange: true}
	_, err := Run[int](cfg, prog)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
}

func TestAsyncCancellation(t *testing.T) {
	// A self-perpetuating program: cancellation is the only way out.
	prog := &funcProgram[int]{
		init: func(ctx *Context[int]) { ctx.Send(0, 1) },
		process: func(ctx *Context[int], env Envelope[int]) {
			ctx.Send(0, 1)
		},
	}
	cfg := Config{Workers: 2, Owner: func(graph.VertexID) int { return 0 }, AsyncExchange: true}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	done := make(chan error, 1)
	go func() {
		_, err := RunContext[int](ctx, cfg, prog)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled in the chain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("async run did not stop after cancellation")
	}
}

func TestAsyncRunawayFrameBound(t *testing.T) {
	// MaxSupersteps has no superstep to count in async mode; it degrades to a
	// per-worker flushed-frame bound that must still stop a ping-pong program.
	prog := &funcProgram[int]{
		init: func(ctx *Context[int]) { ctx.Send(0, 1) },
		process: func(ctx *Context[int], env Envelope[int]) {
			ctx.Send(0, 1)
		},
	}
	cfg := Config{
		Workers:         1,
		Owner:           func(graph.VertexID) int { return 0 },
		AsyncExchange:   true,
		AsyncFlushEvery: 1,
		MaxSupersteps:   1,
	}
	_, err := Run[int](cfg, prog)
	if err == nil {
		t.Fatal("runaway async program should hit the frame bound")
	}
	if !strings.Contains(err.Error(), "flushed frames") {
		t.Fatalf("err = %v, want the flushed-frame bound", err)
	}
}

// --- fault schedules, checkpoints, recovery ---

func TestAsyncScheduledDelayIsHarmless(t *testing.T) {
	strict := runEchoMode(t, nil, false)
	factory := NewScheduledFaultExchangeFactory(NewTCPExchangeFactory(), []StepFault{
		{Step: 2, Kind: StepFaultDelay, Delay: 5 * time.Millisecond},
		{Step: 3, Kind: StepFaultDelay, Delay: 5 * time.Millisecond},
	})
	async := runEchoMode(t, factory, true)
	if strict.Counters["delivered"] != async.Counters["delivered"] {
		t.Fatalf("delivered differ under delay: strict=%d async=%d",
			strict.Counters["delivered"], async.Counters["delivered"])
	}
}

func TestAsyncRecoveryFromScheduledKill(t *testing.T) {
	strict := runEchoMode(t, nil, false)
	// Two kills at the same frame seq exhaust the 2-attempt retry budget and
	// force a recovery (restore from a quiescence checkpoint, or restart from
	// scratch when none was taken yet); the third kill is absorbed by a retry
	// after recovery. Counts must come out exactly-once regardless.
	factory := NewScheduledFaultExchangeFactory(nil, []StepFault{
		{Step: 2, Kind: StepFaultKill, Worker: 1},
		{Step: 2, Kind: StepFaultKill, Worker: 1},
		{Step: 3, Kind: StepFaultDrop},
	})
	prog, cfg := newEcho(100, 5, 3)
	cfg.Exchange = factory
	cfg.AsyncExchange = true
	cfg.Retry = RetryPolicy{MaxAttempts: 2, BaseBackoff: 100 * time.Microsecond, MaxBackoff: time.Millisecond}
	cfg.CheckpointEvery = 1
	cfg.CheckpointStore = NewMemCheckpointStore()
	cfg.MaxRecoveries = 5
	async, err := Run[int](cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if factory.Fired() == 0 {
		t.Fatal("schedule never fired; the test exercised nothing")
	}
	if strict.Counters["delivered"] != async.Counters["delivered"] {
		t.Fatalf("delivered differ after recovery: strict=%d async=%d (recoveries=%d)",
			strict.Counters["delivered"], async.Counters["delivered"], async.Recoveries)
	}
}

func TestAsyncRecoveryExhaustionFails(t *testing.T) {
	// With no recovery budget, an exhausted retry must fail the run with the
	// injected fault in the chain — never silently drop the frame. Worker 0's
	// very first flush is remote, so it deterministically carries seq 1.
	factory := NewScheduledFaultExchangeFactory(nil, []StepFault{
		{Step: 1, Kind: StepFaultKill, Worker: 0},
	})
	prog := &funcProgram[int]{
		init: func(ctx *Context[int]) {
			if ctx.Worker() == 0 {
				for i := 0; i < 10; i++ {
					ctx.Send(graph.VertexID(100+i), 1)
				}
			}
		},
		process: func(*Context[int], Envelope[int]) {},
	}
	cfg := Config{
		Workers: 2,
		Owner: func(v graph.VertexID) int {
			if v < 100 {
				return 0
			}
			return 1
		},
		Exchange:      factory,
		AsyncExchange: true,
	}
	_, err := Run[int](cfg, prog)
	if err == nil {
		t.Fatal("lost frame with no recovery budget must fail the run")
	}
	if !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("err = %v, want ErrInjectedFault in the chain", err)
	}
}

func TestAsyncCheckpointAndResume(t *testing.T) {
	// A run checkpointed at quiescence points must be resumable by a fresh
	// run, and the resumed stats must equal a clean run's (exactly-once).
	strict := runEchoMode(t, nil, false)
	store := NewMemCheckpointStore()
	prog, cfg := newEcho(100, 5, 3)
	cfg.AsyncExchange = true
	cfg.AsyncFlushEvery = 8 // more frames, so quiescence checkpoints trigger
	cfg.CheckpointEvery = 1
	cfg.CheckpointStore = store
	first, err := Run[int](cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if first.Counters["delivered"] != strict.Counters["delivered"] {
		t.Fatalf("checkpointed async run drifted: %d vs %d",
			first.Counters["delivered"], strict.Counters["delivered"])
	}

	prog2, cfg2 := newEcho(100, 5, 3)
	cfg2.AsyncExchange = true
	cfg2.ResumeFrom = store
	resumed, err := Run[int](cfg2, prog2)
	if err != nil {
		t.Fatal(err)
	}
	// The final snapshot was taken at some quiescence point; resuming from it
	// replays only the tail, and the restored stats keep the prefix, so the
	// total must match a clean run exactly when the store holds a snapshot.
	if resumed.Counters["delivered"] != strict.Counters["delivered"] {
		t.Fatalf("resumed async run drifted: %d vs %d",
			resumed.Counters["delivered"], strict.Counters["delivered"])
	}
}

func TestAsyncObserverCounters(t *testing.T) {
	o := obs.New(nil)
	prog, cfg := newEcho(100, 5, 3)
	cfg.AsyncExchange = true
	cfg.Observer = o
	if _, err := Run[int](cfg, prog); err != nil {
		t.Fatal(err)
	}
	s := o.Snapshot()
	if s.CreditRounds == 0 {
		t.Fatal("async run recorded no credit rounds")
	}
	if s.FramesInFlightPeak < 0 {
		t.Fatalf("frames-in-flight peak negative: %d", s.FramesInFlightPeak)
	}
	if !s.Ended {
		t.Fatal("observer never saw RunEnded")
	}
	if s.Counters["delivered"] != 600 {
		t.Fatalf("observer logical counters = %v, want delivered=600", s.Counters)
	}
}
