package bsp

import "sync/atomic"

// NewBenchContext returns a detached Context for microbenchmarks and
// allocation-regression tests that call a Program's Init or Process directly,
// outside the superstep loop. Sends accumulate in per-worker buffers exactly
// as in a real superstep; ResetSends truncates them in place (keeping
// capacity) so steady-state iterations can be measured allocation-free.
//
// It is not wired to any exchange or barrier — production code has no use
// for it.
func NewBenchContext[M any](cfg Config, worker, step int) *Context[M] {
	var abort atomic.Pointer[error]
	return &Context[M]{
		worker:  worker,
		step:    step,
		cfg:     &cfg,
		out:     make([][]Envelope[M], cfg.Workers),
		local:   map[string]int64{},
		aborted: &abort,
	}
}

// ResetSends truncates the context's outgoing buffers in place, keeping
// their capacity, so a benchmark can reuse the context across iterations.
func (c *Context[M]) ResetSends() {
	for w := range c.out {
		c.out[w] = c.out[w][:0]
	}
	c.sent = 0
}

// SentCount reports how many messages have been sent through the context
// since the last ResetSends (for bench-harness sanity checks).
func (c *Context[M]) SentCount() int64 { return c.sent }

// Sends returns the messages currently buffered for worker w, so a bench
// harness can feed one phase's output into the next. The slice aliases the
// context's buffer: copy anything that must survive ResetSends.
func (c *Context[M]) Sends(w int) []Envelope[M] { return c.out[w] }
