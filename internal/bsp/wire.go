package bsp

// Compact wire codec for the TCP exchange. Reflective gob spends most of an
// exchange encoding type metadata and walking values; message types that
// implement WireMessage instead get a hand-rolled length-prefixed binary
// frame with pooled encode/decode buffers (Chen et al. observe the message
// plane dominates massive subgraph counting at scale — this is the repo's
// answer on a single machine). Types without WireMessage keep the gob path,
// and checkpoint snapshots always use gob.

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"psgl/internal/graph"
)

// WireMessage is the optional fast-path contract of the TCP exchange: a
// message type (via its pointer) that can append its encoding to a byte
// buffer and decode itself back in place. When the exchange's message type
// implements it, every inter-worker frame uses the compact binary codec
// below instead of gob; otherwise gob remains the transport encoding.
type WireMessage interface {
	// AppendWire appends the receiver's encoding to dst and returns the
	// extended buffer.
	AppendWire(dst []byte) []byte
	// DecodeWire overwrites the receiver from the front of src and returns
	// the remaining bytes.
	DecodeWire(src []byte) (rest []byte, err error)
}

// messageIsWire reports whether *M implements WireMessage, deciding the
// exchange's transport encoding at mesh-setup time.
func messageIsWire[M any]() bool {
	_, ok := any((*M)(nil)).(WireMessage)
	return ok
}

// Wire frame layout (little-endian):
//
//	uint32  payload length (bytes after this field)
//	uint32  step
//	uint32  envelope count
//	count × { int32 dest ; message bytes (WireMessage encoding) }
//
// The 4-byte length prefix makes the read side a ReadFull pair — no
// streaming decoder state survives between frames, so a rebuilt mesh after
// recovery starts from a clean slate.

const wireFrameHeader = 12 // length + step + count

// wireBufPool recycles frame buffers across Exchange calls so steady-state
// encode/decode performs no per-frame allocations.
var wireBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

func getWireBuf(n int) *[]byte {
	bp := wireBufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, 0, n)
	}
	*bp = (*bp)[:n]
	return bp
}

func putWireBuf(bp *[]byte) {
	*bp = (*bp)[:0]
	wireBufPool.Put(bp)
}

// AppendWireFrame encodes one superstep batch into buf (appended) with the
// length prefix patched in, ready for a single conn.Write. Exported for the
// hot-path microbenchmarks and for custom exchanges; M's pointer must
// implement WireMessage.
func AppendWireFrame[M any](buf []byte, step int, batch []Envelope[M]) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length, patched below
	buf = binary.LittleEndian.AppendUint32(buf, uint32(step))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(batch)))
	for i := range batch {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(batch[i].Dest))
		buf = any(&batch[i].Msg).(WireMessage).AppendWire(buf)
	}
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(buf)-start-4))
	return buf
}

// maxEagerFrame is the largest payload read into a pooled buffer in one
// shot. Larger (rare, or adversarial) lengths are read incrementally, so a
// lying prefix can only cost as much memory as bytes actually arrive.
const maxEagerFrame = 1 << 20

// readWireFrame reads one length-prefixed frame from r and decodes it,
// returning the total bytes consumed (prefix included). The length is
// validated before any allocation, so truncated, oversized, or garbage
// prefixes fail cleanly — FuzzFrameDecode drives this path directly.
func readWireFrame[M any](r io.Reader) (step int, batch []Envelope[M], frameBytes int, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, 0, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n < wireFrameHeader-4 || n > 1<<30 {
		return 0, nil, 0, fmt.Errorf("implausible frame length %d", n)
	}
	if n > maxEagerFrame {
		// ReadAll grows its buffer as data arrives instead of trusting n.
		buf, err := io.ReadAll(io.LimitReader(r, int64(n)))
		if err != nil {
			return 0, nil, 0, err
		}
		if len(buf) < n {
			return 0, nil, 0, io.ErrUnexpectedEOF
		}
		step, batch, err = DecodeWireFrame[M](buf)
		return step, batch, 4 + n, err
	}
	bp := getWireBuf(n)
	if _, err := io.ReadFull(r, *bp); err != nil {
		putWireBuf(bp)
		return 0, nil, 0, err
	}
	step, batch, err = DecodeWireFrame[M](*bp)
	putWireBuf(bp)
	return step, batch, 4 + n, err
}

// readFramePayload reads one length-prefixed frame payload from r into a
// freshly allocated buffer the caller may retain — the grouped receive path
// keeps compressed payloads encoded in the inbox. Length validation and the
// incremental read for oversized claims mirror readWireFrame.
func readFramePayload(r io.Reader) (payload []byte, frameBytes int, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n < wireFrameHeader-4 || n > 1<<30 {
		return nil, 0, fmt.Errorf("implausible frame length %d", n)
	}
	if n > maxEagerFrame {
		buf, err := io.ReadAll(io.LimitReader(r, int64(n)))
		if err != nil {
			return nil, 0, err
		}
		if len(buf) < n {
			return nil, 0, io.ErrUnexpectedEOF
		}
		return buf, 4 + n, nil
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, 0, err
	}
	return buf, 4 + n, nil
}

// readFrame reads one length-prefixed frame from r and decodes it in either
// format (flat or compressed, detected per frame). more reports a compressed
// continuation bit; callers outside the grouped barrier receive path treat it
// as a protocol error.
func readFrame[M any](r io.Reader) (step int, more bool, batch []Envelope[M], frameBytes int, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, false, nil, 0, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n < wireFrameHeader-4 || n > 1<<30 {
		return 0, false, nil, 0, fmt.Errorf("implausible frame length %d", n)
	}
	if n > maxEagerFrame {
		buf, err := io.ReadAll(io.LimitReader(r, int64(n)))
		if err != nil {
			return 0, false, nil, 0, err
		}
		if len(buf) < n {
			return 0, false, nil, 0, io.ErrUnexpectedEOF
		}
		step, more, batch, err = DecodeFrame[M](buf)
		return step, more, batch, 4 + n, err
	}
	bp := getWireBuf(n)
	if _, err := io.ReadFull(r, *bp); err != nil {
		putWireBuf(bp)
		return 0, false, nil, 0, err
	}
	step, more, batch, err = DecodeFrame[M](*bp)
	putWireBuf(bp)
	return step, more, batch, 4 + n, err
}

// DecodeWireFrame decodes a frame payload (everything after the length
// prefix) into a fresh envelope slice. Exported for the hot-path
// microbenchmarks and for custom exchanges.
func DecodeWireFrame[M any](payload []byte) (step int, batch []Envelope[M], err error) {
	if len(payload) < wireFrameHeader-4 {
		return 0, nil, fmt.Errorf("wire frame: truncated header (%d bytes)", len(payload))
	}
	step = int(binary.LittleEndian.Uint32(payload))
	count := int(binary.LittleEndian.Uint32(payload[4:]))
	rest := payload[8:]
	if count < 0 || count > len(rest) {
		return 0, nil, fmt.Errorf("wire frame: implausible envelope count %d for %d bytes", count, len(rest))
	}
	if count == 0 {
		if len(rest) != 0 {
			return 0, nil, fmt.Errorf("wire frame: %d trailing bytes", len(rest))
		}
		return step, nil, nil
	}
	batch = make([]Envelope[M], count)
	for i := 0; i < count; i++ {
		if len(rest) < 4 {
			return 0, nil, fmt.Errorf("wire frame: truncated envelope %d/%d", i, count)
		}
		batch[i].Dest = graph.VertexID(binary.LittleEndian.Uint32(rest))
		rest, err = any(&batch[i].Msg).(WireMessage).DecodeWire(rest[4:])
		if err != nil {
			return 0, nil, fmt.Errorf("wire frame: envelope %d/%d: %w", i, count, err)
		}
	}
	if len(rest) != 0 {
		return 0, nil, fmt.Errorf("wire frame: %d trailing bytes", len(rest))
	}
	return step, batch, nil
}
