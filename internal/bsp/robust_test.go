package bsp

// Tests for the fault-tolerance layer: abort short-circuiting, context
// cancellation, superstep deadlines, barrier checkpointing + resume,
// in-run checkpoint-restore recovery, exchange retry, deterministic fault
// injection, and the hardened TCP setup/frame deadlines.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"psgl/internal/graph"
)

// --- Abort short-circuit -------------------------------------------------

func TestAbortShortCircuitsInbox(t *testing.T) {
	// One worker, 100 queued messages, abort on the first: the remaining 99
	// must not be processed in that superstep.
	var processed atomic.Int64
	prog := &funcProgram[int]{
		init: func(ctx *Context[int]) {
			for i := 0; i < 100; i++ {
				ctx.Send(0, i)
			}
		},
		process: func(ctx *Context[int], env Envelope[int]) {
			processed.Add(1)
			ctx.Abort(errors.New("stop now"))
		},
	}
	cfg := Config{Workers: 1, Owner: func(graph.VertexID) int { return 0 }}
	stats, err := Run[int](cfg, prog)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if got := processed.Load(); got != 1 {
		t.Fatalf("processed %d messages after abort, want exactly 1", got)
	}
	if stats.WorkerMessages[0] != 1 {
		t.Fatalf("WorkerMessages[0] = %d, want 1 (only processed messages count)", stats.WorkerMessages[0])
	}
}

// --- Cancellation and deadlines ------------------------------------------

func TestRunContextCancellation(t *testing.T) {
	// An infinite program must stop promptly once the context expires.
	prog := &funcProgram[int]{
		init: func(ctx *Context[int]) {
			for v := 0; v < 1000; v++ {
				ctx.Send(graph.VertexID(v), 0)
			}
		},
		process: func(ctx *Context[int], env Envelope[int]) {
			ctx.Send(env.Dest, 0)
		},
	}
	part := graph.NewPartition(3, 1)
	cfg := Config{Workers: 3, Owner: func(v graph.VertexID) int { return part.Owner(v) }}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := RunContext[int](ctx, cfg, prog)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

func TestStepTimeoutFailsRunWithoutCheckpoints(t *testing.T) {
	// A superstep blowing its deadline fails the run when no checkpoint
	// recovery is configured.
	prog := &funcProgram[int]{
		init: func(ctx *Context[int]) {
			for i := 0; i < 2000; i++ {
				ctx.Send(0, i)
			}
		},
		process: func(ctx *Context[int], env Envelope[int]) {
			time.Sleep(time.Millisecond)
			ctx.Send(0, env.Msg)
		},
	}
	cfg := Config{
		Workers:     1,
		Owner:       func(graph.VertexID) int { return 0 },
		StepTimeout: 50 * time.Millisecond,
	}
	_, err := Run[int](cfg, prog)
	if err == nil {
		t.Fatal("slow superstep with StepTimeout should fail the run")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want a deadline error", err)
	}
}

// --- Checkpointing -------------------------------------------------------

func TestCheckpointCadence(t *testing.T) {
	store := NewMemCheckpointStore()
	prog, cfg := newEcho(100, 5, 4)
	cfg.CheckpointEvery = 2
	cfg.CheckpointStore = store
	stats, err := Run[int](cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	// 7 supersteps (0..6); exchanges after steps 0..5; snapshots at barriers
	// entering even steps 2, 4, 6.
	if stats.Supersteps != 7 {
		t.Fatalf("Supersteps = %d, want 7", stats.Supersteps)
	}
	if store.Saves() != 3 {
		t.Fatalf("saves = %d, want 3 (every 2nd of 6 barriers)", store.Saves())
	}
	if store.LatestStep() != 6 {
		t.Fatalf("latest checkpoint step = %d, want 6", store.LatestStep())
	}
	if stats.Counters["delivered"] != 600 {
		t.Fatalf("delivered = %d, want 600 (checkpointing must not change results)", stats.Counters["delivered"])
	}
}

func TestCheckpointStoreRoundTrip(t *testing.T) {
	stores := map[string]CheckpointStore{
		"mem": NewMemCheckpointStore(),
	}
	fileStore, err := NewFileCheckpointStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	stores["file"] = fileStore
	for name, store := range stores {
		if _, _, err := store.Load(); !errors.Is(err, ErrNoCheckpoint) {
			t.Errorf("%s: empty Load err = %v, want ErrNoCheckpoint", name, err)
		}
		if err := store.Save(3, []byte("alpha")); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := store.Save(5, []byte("beta")); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		step, data, err := store.Load()
		if err != nil || step != 5 || string(data) != "beta" {
			t.Errorf("%s: Load = (%d, %q, %v), want (5, beta, nil)", name, step, data, err)
		}
	}
}

func TestFileCheckpointStorePersistsAndPrunes(t *testing.T) {
	dir := t.TempDir()
	store, err := NewFileCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save(1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := store.Save(2, []byte("two")); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d files after pruning, want 1", len(entries))
	}
	// A fresh store over the same directory sees the latest snapshot.
	reopened, err := NewFileCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	step, data, err := reopened.Load()
	if err != nil || step != 2 || string(data) != "two" {
		t.Fatalf("reopened Load = (%d, %q, %v), want (2, two, nil)", step, data, err)
	}
}

func TestResumeFromCheckpointMatchesCleanRun(t *testing.T) {
	clean := func() *RunStats {
		prog, cfg := newEcho(60, 6, 3)
		stats, err := Run[int](cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}()

	// Failed run: a one-shot injected fault kills the exchange at step 3,
	// after the barrier entering step 3 was checkpointed.
	store := NewMemCheckpointStore()
	prog, cfg := newEcho(60, 6, 3)
	cfg.Exchange = NewFaultyExchangeFactory(nil, FaultConfig{Seed: 1, ErrorRate: 1, FromStep: 3, MaxFaults: 1})
	cfg.CheckpointEvery = 1
	cfg.CheckpointStore = store
	_, err := Run[int](cfg, prog)
	if !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("faulty run err = %v, want ErrInjectedFault", err)
	}
	if store.LatestStep() != 3 {
		t.Fatalf("latest checkpoint = %d, want 3", store.LatestStep())
	}

	// Resumed run: fresh program + clean exchange, state restored from the
	// last barrier. Totals must match the clean run exactly.
	prog2, cfg2 := newEcho(60, 6, 3)
	cfg2.ResumeFrom = store
	resumed, err := Run[int](cfg2, prog2)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Supersteps != clean.Supersteps {
		t.Errorf("Supersteps = %d, want %d", resumed.Supersteps, clean.Supersteps)
	}
	if resumed.MessagesTotal != clean.MessagesTotal {
		t.Errorf("MessagesTotal = %d, want %d", resumed.MessagesTotal, clean.MessagesTotal)
	}
	if resumed.Counters["delivered"] != clean.Counters["delivered"] {
		t.Errorf("delivered = %d, want %d", resumed.Counters["delivered"], clean.Counters["delivered"])
	}
	if !reflect.DeepEqual(resumed.PerStepMessages, clean.PerStepMessages) {
		t.Errorf("PerStepMessages = %v, want %v", resumed.PerStepMessages, clean.PerStepMessages)
	}
}

func TestResumeFromEmptyStoreStartsFresh(t *testing.T) {
	prog, cfg := newEcho(50, 3, 2)
	cfg.ResumeFrom = NewMemCheckpointStore()
	stats, err := Run[int](cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Counters["delivered"] != 200 {
		t.Fatalf("delivered = %d, want 200", stats.Counters["delivered"])
	}
}

func TestResumeRejectsWorkerMismatch(t *testing.T) {
	store := NewMemCheckpointStore()
	prog, cfg := newEcho(60, 6, 3)
	cfg.CheckpointEvery = 1
	cfg.CheckpointStore = store
	if _, err := Run[int](cfg, prog); err != nil {
		t.Fatal(err)
	}
	prog2, cfg2 := newEcho(60, 6, 2) // different worker count
	cfg2.ResumeFrom = store
	if _, err := Run[int](cfg2, prog2); err == nil {
		t.Fatal("resume with mismatched worker count should fail")
	}
}

// --- In-run recovery and retry -------------------------------------------

func TestInRunRecoveryDeterministicFaults(t *testing.T) {
	clean := func() *RunStats {
		prog, cfg := newEcho(60, 5, 3)
		stats, err := Run[int](cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}()

	// Exactly 3 injected faults at step 1; each one triggers a checkpoint
	// restore, and the 4th attempt goes through.
	store := NewMemCheckpointStore()
	prog, cfg := newEcho(60, 5, 3)
	cfg.Exchange = NewFaultyExchangeFactory(nil, FaultConfig{Seed: 2, ErrorRate: 1, FromStep: 1, MaxFaults: 3})
	cfg.CheckpointEvery = 1
	cfg.CheckpointStore = store
	cfg.MaxRecoveries = 10
	stats, err := Run[int](cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Recoveries != 3 {
		t.Errorf("Recoveries = %d, want 3", stats.Recoveries)
	}
	if stats.Counters["delivered"] != clean.Counters["delivered"] {
		t.Errorf("delivered = %d, want %d", stats.Counters["delivered"], clean.Counters["delivered"])
	}
	if stats.MessagesTotal != clean.MessagesTotal {
		t.Errorf("MessagesTotal = %d, want %d", stats.MessagesTotal, clean.MessagesTotal)
	}
	if !reflect.DeepEqual(stats.PerStepMessages, clean.PerStepMessages) {
		t.Errorf("PerStepMessages = %v, want %v", stats.PerStepMessages, clean.PerStepMessages)
	}
}

func TestInRunRecoveryStochasticFaults(t *testing.T) {
	clean := func() *RunStats {
		prog, cfg := newEcho(80, 6, 4)
		stats, err := Run[int](cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}()

	// Unlimited seeded faults (errors + drops) recovered by restore alone:
	// the schedule is deterministic, so this either always passes or never.
	store := NewMemCheckpointStore()
	prog, cfg := newEcho(80, 6, 4)
	cfg.Exchange = NewFaultyExchangeFactory(nil, FaultConfig{Seed: 7, ErrorRate: 0.3, DropRate: 0.2, FromStep: 1})
	cfg.CheckpointEvery = 1
	cfg.CheckpointStore = store
	cfg.MaxRecoveries = 200
	stats, err := Run[int](cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Counters["delivered"] != clean.Counters["delivered"] {
		t.Errorf("delivered = %d, want %d", stats.Counters["delivered"], clean.Counters["delivered"])
	}
}

func TestRetryRecoversTransientFaults(t *testing.T) {
	clean := func() *RunStats {
		prog, cfg := newEcho(60, 5, 3)
		stats, err := Run[int](cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}()

	prog, cfg := newEcho(60, 5, 3)
	cfg.Exchange = NewFaultyExchangeFactory(nil, FaultConfig{Seed: 3, ErrorRate: 0.4, DropRate: 0.1})
	cfg.Retry = RetryPolicy{MaxAttempts: 12, BaseBackoff: 100 * time.Microsecond, MaxBackoff: time.Millisecond}
	stats, err := Run[int](cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Recoveries != 0 {
		t.Errorf("Recoveries = %d, want 0 (retry alone must absorb the faults)", stats.Recoveries)
	}
	if stats.Counters["delivered"] != clean.Counters["delivered"] {
		t.Errorf("delivered = %d, want %d", stats.Counters["delivered"], clean.Counters["delivered"])
	}
	if !reflect.DeepEqual(stats.PerStepMessages, clean.PerStepMessages) {
		t.Errorf("PerStepMessages = %v, want %v", stats.PerStepMessages, clean.PerStepMessages)
	}
}

func TestFaultScheduleIsDeterministic(t *testing.T) {
	fc := FaultConfig{Seed: 99, ErrorRate: 0.3, DropRate: 0.2}
	schedule := func() []bool {
		ex, err := newExchangeFromFactory[int](context.Background(), NewFaultyExchangeFactory(nil, fc), 2, nil, false)
		if err != nil {
			t.Fatal(err)
		}
		defer ex.Close()
		empty := [][][]Envelope[int]{
			{nil, nil},
			{nil, nil},
		}
		var out []bool
		for step := 0; step < 50; step++ {
			_, err := ex.Exchange(context.Background(), step, empty)
			out = append(out, err != nil)
		}
		return out
	}
	a, b := schedule(), schedule()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fault schedules differ:\n%v\n%v", a, b)
	}
	faults := 0
	for _, f := range a {
		if f {
			faults++
		}
	}
	if faults == 0 || faults == 50 {
		t.Fatalf("degenerate fault schedule: %d/50 faults", faults)
	}
}

// --- Hardened TCP setup --------------------------------------------------

func TestTCPSetupFailedDialDoesNotDeadlock(t *testing.T) {
	// Regression: a failed dial used to leave the Accept goroutine waiting
	// forever for the full mesh, deadlocking setup. It must now fail fast —
	// well before the (generous) setup deadline.
	testDialHook = func(src, dst int, addr string, timeout time.Duration) (net.Conn, error) {
		if src == 1 && dst == 0 {
			return nil, fmt.Errorf("injected dial failure")
		}
		return net.DialTimeout("tcp", addr, timeout)
	}
	defer func() { testDialHook = nil }()

	start := time.Now()
	_, err := newExchangeFromFactory[int](context.Background(),
		NewTCPExchangeFactoryWithConfig(TCPConfig{SetupTimeout: 60 * time.Second}), 3, nil, false)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("setup with a failed dial should error")
	}
	if want := "dial 1->0"; !containsStr(err.Error(), want) {
		t.Fatalf("err = %v, want the root-cause dial error (%q)", err, want)
	}
	if elapsed > 20*time.Second {
		t.Fatalf("setup took %v; a failed dial must fail fast, not wait for the deadline", elapsed)
	}
}

func TestTCPSetupTimesOutOnSilentPeer(t *testing.T) {
	// One pair dials a black hole (a listener that never reaches the
	// exchange), so one mesh connection never arrives: the Accept loop must
	// give up at the setup deadline instead of blocking forever.
	decoy, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer decoy.Close()
	testDialHook = func(src, dst int, addr string, timeout time.Duration) (net.Conn, error) {
		if src == 0 && dst == 1 {
			return net.DialTimeout("tcp", decoy.Addr().String(), timeout)
		}
		return net.DialTimeout("tcp", addr, timeout)
	}
	defer func() { testDialHook = nil }()

	start := time.Now()
	_, err = newExchangeFromFactory[int](context.Background(),
		NewTCPExchangeFactoryWithConfig(TCPConfig{SetupTimeout: 2 * time.Second}), 2, nil, false)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("setup with a silent peer should time out")
	}
	if elapsed > 30*time.Second {
		t.Fatalf("setup took %v, want ~the 2s deadline", elapsed)
	}
}

// pastDeadlineCtx reports an already-expired deadline without being Done,
// forcing the frame-deadline plumbing (not the early ctx.Err check) to trip.
type pastDeadlineCtx struct{ context.Context }

func (pastDeadlineCtx) Deadline() (time.Time, bool) {
	return time.Now().Add(-time.Second), true
}

func TestTCPExchangeHonorsContextDeadlineOnFrames(t *testing.T) {
	ex, err := newExchangeFromFactory[int](context.Background(), NewTCPExchangeFactory(), 2, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	outAll := [][][]Envelope[int]{
		{nil, {{Dest: 1, Msg: 42}}},
		{{{Dest: 0, Msg: 24}}, nil},
	}
	_, err = ex.Exchange(pastDeadlineCtx{context.Background()}, 0, outAll)
	if err == nil {
		t.Fatal("exchange with an expired frame deadline should error")
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want os.ErrDeadlineExceeded", err)
	}
}

// --- Exchange equivalence property ---------------------------------------

func TestExchangeEquivalenceProperty(t *testing.T) {
	// Local, TCP, and faulty-with-retry exchanges must deliver identical
	// merged inboxes for random workloads.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 4; trial++ {
		k := 2 + rng.Intn(3)
		outAll := make([][][]Envelope[int], k)
		for src := 0; src < k; src++ {
			outAll[src] = make([][]Envelope[int], k)
			for dst := 0; dst < k; dst++ {
				n := rng.Intn(8)
				for i := 0; i < n; i++ {
					outAll[src][dst] = append(outAll[src][dst],
						Envelope[int]{Dest: graph.VertexID(rng.Intn(100)), Msg: rng.Int()})
				}
			}
		}
		factories := []struct {
			name string
			f    ExchangeFactory
		}{
			{"local", nil},
			{"tcp", NewTCPExchangeFactory()},
			{"faulty", NewFaultyExchangeFactory(nil, FaultConfig{
				Seed: int64(trial), ErrorRate: 0.4, DropRate: 0.1,
				DelayRate: 0.2, MaxDelay: time.Millisecond,
			})},
		}
		var want [][]Envelope[int]
		for _, fc := range factories {
			ex, err := newExchangeFromFactory[int](context.Background(), fc.f, k, nil, false)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, fc.name, err)
			}
			var got [][]Envelope[int]
			err = withRetry(context.Background(), RetryPolicy{MaxAttempts: 40, BaseBackoff: time.Microsecond}, func() error {
				r, err := ex.Exchange(context.Background(), 1, outAll)
				if err == nil {
					got = r
				}
				return err
			})
			ex.Close()
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, fc.name, err)
			}
			got = normalizeInboxes(got)
			if fc.name == "local" {
				want = got
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("trial %d: %s inboxes differ from local:\n%v\n%v", trial, fc.name, got, want)
			}
		}
	}
}

// normalizeInboxes maps nil inboxes to empty ones so DeepEqual compares
// content, not nil-ness.
func normalizeInboxes(in [][]Envelope[int]) [][]Envelope[int] {
	out := make([][]Envelope[int], len(in))
	for i, box := range in {
		if box == nil {
			box = []Envelope[int]{}
		}
		out[i] = box
	}
	return out
}

func containsStr(haystack, needle string) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}
