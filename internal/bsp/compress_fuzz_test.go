package bsp

// Fuzz battery for the compressed frame codec, mirroring FuzzFrameDecode's
// role for the flat codec. The compressed format is not byte-canonical —
// arbitrary valid inputs may carry non-maximal shared lengths — so the
// round-trip invariant is semantic: decode, re-encode, re-decode, and require
// the two decodes to agree as envelope multisets.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// compressedFrameSeeds are the committed seed corpus of
// FuzzCompressedFrameDecode: valid frames in both codec paths, a chunked
// continuation frame, a flat frame, and malformed inputs.
func compressedFrameSeeds() map[string][]byte {
	frames, _ := compressBatch(7, groupTestBatch(40), 16)
	return map[string][]byte{
		"seed_group_batch":    AppendCompressedFrame(nil, 1, groupTestBatch(8))[4:],
		"seed_fallback_batch": AppendCompressedFrame(nil, 3, wireTestBatch(5))[4:],
		"seed_empty_batch":    AppendCompressedFrame(nil, 2, []Envelope[groupMsg]{})[4:],
		"seed_continuation":   frames[0],
		"seed_flat_frame":     AppendWireFrame(nil, 1, wireTestBatch(2))[4:],
		"seed_all_ones":       {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		"seed_ascii_garbage":  []byte("not a frame at all, just prose"),
		"seed_empty":          {},
	}
}

// TestWriteCompressedFuzzCorpus regenerates the committed seed corpus under
// testdata/fuzz (with -update): the same seeds the fuzz target registers,
// persisted in go-fuzz corpus format so plain `go test` replays them too.
func TestWriteCompressedFuzzCorpus(t *testing.T) {
	if !*updateGolden {
		t.Skip("run with -update to regenerate the committed fuzz corpus")
	}
	writeFuzzCorpus(t, "FuzzCompressedFrameDecode", compressedFrameSeeds())
}

func writeFuzzCorpus(t *testing.T, target string, seeds map[string][]byte) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", target)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzCompressedFrameDecode drives the compressed-frame decoder (both the
// GroupWireMessage patch path and the WireMessage fallback) with arbitrary
// payloads. Invariants:
//
//  1. DecodeCompressedFrame never panics, whatever the input claims about
//     counts, varints, shared prefixes, or suffix lengths.
//  2. A successfully decoded payload re-encodes (canonically, via the sorted
//     encoder) and re-decodes to the same step and the same envelope
//     multiset — decode ∘ encode ∘ decode = decode.
//  3. The frame reader path agrees: readFramePayload + DecodeFrame on the
//     length-prefixed form accepts exactly what the payload decoder accepts.
func FuzzCompressedFrameDecode(f *testing.F) {
	for _, data := range compressedFrameSeeds() {
		f.Add(data)
	}

	f.Fuzz(func(t *testing.T, payload []byte) {
		// Patch-decode path.
		step, more, batch, err := DecodeCompressedFrame[groupMsg](payload)
		if err == nil {
			re := AppendCompressedFrame(nil, step, batch)
			if more {
				// Re-encoding loses the continuation bit by design; patch it
				// back so the step words compare equal.
				re[4+3] |= byte(continuationFlag >> 24)
			}
			step2, more2, batch2, err2 := DecodeCompressedFrame[groupMsg](re[4:])
			if err2 != nil {
				t.Fatalf("re-decoding own encoding: %v", err2)
			}
			if step2 != step || more2 != more {
				t.Fatalf("round trip changed header: step %d→%d more %v→%v", step, step2, more, more2)
			}
			a, b := envKeys(batch), envKeys(batch2)
			if len(a) != len(b) {
				t.Fatalf("round trip changed envelope count %d→%d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("round trip changed envelope multiset at %d:\n in: %s\nout: %s", i, a[i], b[i])
				}
			}
		}

		// Fallback path must be panic-free on the same input (wireMsg has a
		// variable-length tail, so its validation branches differ).
		_, _, _, _ = DecodeCompressedFrame[wireMsg](payload)

		// Length-prefixed reader path: the incremental reader plus the
		// auto-detecting decoder must agree with the direct payload decode.
		// (Payloads below the 8-byte header are rejected at the prefix.)
		if len(payload) < wireFrameHeader-4 {
			return
		}
		framed := append(binary.LittleEndian.AppendUint32(nil, uint32(len(payload))), payload...)
		rp, n, rerr := readFramePayload(bytes.NewReader(framed))
		if rerr != nil {
			t.Fatalf("readFramePayload rejected a well-framed payload: %v", rerr)
		}
		if n != len(framed) || !bytes.Equal(rp, payload) {
			t.Fatalf("readFramePayload consumed %d of %d bytes", n, len(framed))
		}
		_, _, _, derr := DecodeFrame[groupMsg](rp)
		if (derr == nil) != (err == nil) && framePayloadIsCompressed(payload) {
			t.Fatalf("DecodeFrame and DecodeCompressedFrame disagree: %v vs %v", derr, err)
		}
	})
}
