package bsp

import (
	"errors"
	"sync"
	"testing"
	"time"

	"psgl/internal/obs"
)

// fakeClock is a manually advanced clock for deterministic liveness tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func testRegistry(t *testing.T, o *obs.Observer) (*Registry, *fakeClock) {
	t.Helper()
	clock := newFakeClock()
	r := NewRegistry(RegistryConfig{
		HeartbeatInterval: 100 * time.Millisecond,
		MissLimit:         3,
		Clock:             clock.Now,
		Observer:          o,
	})
	return r, clock
}

func TestRegistryJoinHeartbeatLeave(t *testing.T) {
	r, clock := testRegistry(t, nil)
	gen, err := r.Join("w1", "127.0.0.1:9001", 0xabc)
	if err != nil {
		t.Fatal(err)
	}
	if gen == 0 {
		t.Fatal("generation must be nonzero")
	}
	if n := r.NumAlive(); n != 1 {
		t.Fatalf("alive = %d, want 1", n)
	}
	clock.Advance(50 * time.Millisecond)
	if err := r.Heartbeat("w1", gen); err != nil {
		t.Fatal(err)
	}
	if err := r.Leave("w1", gen); err != nil {
		t.Fatal(err)
	}
	if n := r.NumAlive(); n != 0 {
		t.Fatalf("alive after leave = %d, want 0", n)
	}
	if err := r.Heartbeat("w1", gen); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("heartbeat after leave: %v, want ErrUnknownWorker", err)
	}
}

func TestRegistryMissedBeatsEvict(t *testing.T) {
	o := obs.New(nil)
	var evicted []WorkerInfo
	clock := newFakeClock()
	r := NewRegistry(RegistryConfig{
		HeartbeatInterval: 100 * time.Millisecond,
		MissLimit:         3,
		Clock:             clock.Now,
		Observer:          o,
		OnEvict:           func(w WorkerInfo) { evicted = append(evicted, w) },
	})
	gen, _ := r.Join("w1", "a:1", 1)
	gen2, _ := r.Join("w2", "a:2", 1)

	// w2 keeps beating; w1 goes silent.
	for i := 1; i <= 2; i++ {
		clock.Advance(100 * time.Millisecond)
		if err := r.Heartbeat("w2", gen2); err != nil {
			t.Fatal(err)
		}
		if ev := r.Sweep(); len(ev) != 0 {
			t.Fatalf("sweep %d evicted early: %v", i, ev)
		}
	}
	w, _ := r.Lookup("w1")
	if w.Misses != 2 {
		t.Fatalf("w1 misses = %d, want 2", w.Misses)
	}
	clock.Advance(100 * time.Millisecond)
	r.Heartbeat("w2", gen2)
	ev := r.Sweep()
	if len(ev) != 1 || ev[0].ID != "w1" {
		t.Fatalf("third sweep evicted %v, want w1", ev)
	}
	if len(evicted) != 1 || evicted[0].ID != "w1" {
		t.Fatalf("OnEvict saw %v, want w1", evicted)
	}
	if n := r.NumAlive(); n != 1 {
		t.Fatalf("alive = %d, want 1 (w2)", n)
	}
	// The corpse's generation is dead: beats and response validation fail.
	if err := r.Heartbeat("w1", gen); !errors.Is(err, ErrEvicted) {
		t.Fatalf("evicted heartbeat: %v, want ErrEvicted", err)
	}
	if err := r.ValidateGeneration("w1", gen); err == nil {
		t.Fatal("ValidateGeneration accepted an evicted incarnation")
	}

	snap := o.Snapshot()
	if snap.Evictions != 1 {
		t.Fatalf("obs evictions = %d, want 1", snap.Evictions)
	}
	if snap.HeartbeatMisses < 3 {
		t.Fatalf("obs heartbeat misses = %d, want >= 3", snap.HeartbeatMisses)
	}
	st := r.Stats()
	if st.Evictions != 1 || st.HeartbeatMisses < 3 || st.Alive != 1 {
		t.Fatalf("registry stats %+v", st)
	}
}

func TestRegistryRejoinBumpsGenerationAndRetiresOld(t *testing.T) {
	r, clock := testRegistry(t, nil)
	gen1, _ := r.Join("w1", "a:1", 7)
	// Worker dies silently, gets evicted.
	clock.Advance(time.Second)
	if ev := r.Sweep(); len(ev) != 1 {
		t.Fatalf("evicted %v, want 1", ev)
	}
	// Restarted incarnation rejoins: strictly larger generation, alive again.
	gen2, err := r.Join("w1", "a:1", 7)
	if err != nil {
		t.Fatal(err)
	}
	if gen2 <= gen1 {
		t.Fatalf("rejoin generation %d not > %d", gen2, gen1)
	}
	if n := r.NumAlive(); n != 1 {
		t.Fatalf("alive = %d, want 1", n)
	}
	// The old incarnation can't beat, leave, or validate.
	if err := r.Heartbeat("w1", gen1); !errors.Is(err, ErrStaleGeneration) {
		t.Fatalf("stale heartbeat: %v, want ErrStaleGeneration", err)
	}
	if err := r.Leave("w1", gen1); !errors.Is(err, ErrStaleGeneration) {
		t.Fatalf("stale leave: %v, want ErrStaleGeneration", err)
	}
	if err := r.ValidateGeneration("w1", gen1); !errors.Is(err, ErrStaleGeneration) {
		t.Fatalf("stale validate: %v, want ErrStaleGeneration", err)
	}
	// The new one works.
	if err := r.Heartbeat("w1", gen2); err != nil {
		t.Fatal(err)
	}
	if err := r.ValidateGeneration("w1", gen2); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Rejoins != 1 || st.StaleOps != 3 {
		t.Fatalf("stats %+v, want 1 rejoin and 3 stale ops", st)
	}
}

func TestRegistryBeatResetsMisses(t *testing.T) {
	r, clock := testRegistry(t, nil)
	gen, _ := r.Join("w1", "a:1", 0)
	clock.Advance(250 * time.Millisecond) // 2 intervals overdue
	r.Sweep()
	w, _ := r.Lookup("w1")
	if w.Misses != 2 {
		t.Fatalf("misses = %d, want 2", w.Misses)
	}
	if err := r.Heartbeat("w1", gen); err != nil {
		t.Fatal(err)
	}
	w, _ = r.Lookup("w1")
	if w.Misses != 0 {
		t.Fatalf("misses after beat = %d, want 0", w.Misses)
	}
	// Another 2 overdue intervals still don't evict (the limit is 3
	// consecutive).
	clock.Advance(250 * time.Millisecond)
	if ev := r.Sweep(); len(ev) != 0 {
		t.Fatalf("evicted %v after a reset", ev)
	}
}

func TestRegistryEpochAndMembers(t *testing.T) {
	r, clock := testRegistry(t, nil)
	e0 := r.Epoch()
	g1, _ := r.Join("b", "a:2", 0)
	g2, _ := r.Join("a", "a:1", 0)
	if r.Epoch() == e0 {
		t.Fatal("epoch did not advance on join")
	}
	mem := r.Members()
	if len(mem) != 2 || mem[0].ID != "a" || mem[1].ID != "b" {
		t.Fatalf("members %v, want [a b] sorted", mem)
	}
	alive := r.Alive()
	if len(alive) != 2 || alive[0].ID != "a" {
		t.Fatalf("alive %v", alive)
	}
	e1 := r.Epoch()
	if err := r.Leave("a", g2); err != nil {
		t.Fatal(err)
	}
	if r.Epoch() == e1 {
		t.Fatal("epoch did not advance on leave")
	}
	e2 := r.Epoch()
	clock.Advance(time.Hour)
	r.Sweep()
	if r.Epoch() == e2 {
		t.Fatal("epoch did not advance on eviction")
	}
	_ = g1
	if err := r.Heartbeat("zzz", 1); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("unknown heartbeat: %v", err)
	}
	if _, err := r.Join("", "x", 0); err == nil {
		t.Fatal("empty id join accepted")
	}
}
