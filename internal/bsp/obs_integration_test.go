package bsp

// Acceptance test for the observability layer under fault injection: the
// trace of a failing-and-recovering run must tell the full story (checkpoint
// saves, the recovery decision, the restore), while the logical counters
// stay bit-for-bit identical to a clean run of the same program.

import (
	"reflect"
	"testing"

	"psgl/internal/obs"
)

func eventTypes(events []obs.Event) map[obs.EventType]int {
	counts := map[obs.EventType]int{}
	for _, e := range events {
		counts[e.Type]++
	}
	return counts
}

func TestObserverTraceOfFaultInjectedRun(t *testing.T) {
	runEcho := func(cfg func(*Config)) (*RunStats, *obs.Observer, *obs.Ring) {
		ring := obs.NewRing(4096)
		o := obs.New(ring)
		prog, c := newEcho(60, 5, 3)
		c.Observer = o
		if cfg != nil {
			cfg(&c)
		}
		stats, err := Run[int](c, prog)
		if err != nil {
			t.Fatal(err)
		}
		return stats, o, ring
	}

	cleanStats, cleanObs, _ := runEcho(nil)

	// Three injected faults at step 1, each recovered by restoring the
	// barrier checkpoint; the 4th attempt goes through.
	faultyStats, faultyObs, ring := runEcho(func(c *Config) {
		c.Exchange = NewFaultyExchangeFactory(nil, FaultConfig{Seed: 2, ErrorRate: 1, FromStep: 1, MaxFaults: 3})
		c.CheckpointEvery = 1
		c.CheckpointStore = NewMemCheckpointStore()
		c.MaxRecoveries = 10
	})
	if faultyStats.Recoveries != 3 {
		t.Fatalf("Recoveries = %d, want 3", faultyStats.Recoveries)
	}

	events := ring.Events()
	if len(events) == 0 {
		t.Fatal("empty trace")
	}
	if events[0].Type != obs.EventRunStart {
		t.Errorf("first event = %v, want run_start", events[0].Type)
	}
	if last := events[len(events)-1]; last.Type != obs.EventRunEnd {
		t.Errorf("last event = %v, want run_end", last.Type)
	}
	counts := eventTypes(events)
	if counts[obs.EventCheckpointSave] == 0 {
		t.Error("trace has no checkpoint_save event")
	}
	if counts[obs.EventRecovery] != 3 {
		t.Errorf("trace has %d recovery events, want 3", counts[obs.EventRecovery])
	}
	if counts[obs.EventCheckpointRestore] != 3 {
		t.Errorf("trace has %d checkpoint_restore events, want 3", counts[obs.EventCheckpointRestore])
	}
	for _, e := range events {
		if e.Type == obs.EventRecovery && e.Err == "" {
			t.Error("recovery event carries no cause")
		}
	}

	// The logical view must not drift under failure: a recovered run reports
	// the same engine counters and message totals as a clean one.
	if !reflect.DeepEqual(faultyObs.Counters(), cleanObs.Counters()) {
		t.Errorf("counters diverge:\nfaulty: %v\nclean:  %v", faultyObs.Counters(), cleanObs.Counters())
	}
	fs, cs := faultyObs.Snapshot(), cleanObs.Snapshot()
	if fs.MessagesTotal != cs.MessagesTotal {
		t.Errorf("MessagesTotal = %d, clean run has %d", fs.MessagesTotal, cs.MessagesTotal)
	}
	if fs.Supersteps != cs.Supersteps {
		t.Errorf("Supersteps = %d, clean run has %d", fs.Supersteps, cs.Supersteps)
	}
	if faultyStats.MessagesTotal != cleanStats.MessagesTotal {
		t.Errorf("stats MessagesTotal = %d, clean run has %d", faultyStats.MessagesTotal, cleanStats.MessagesTotal)
	}
	if fs.Restores != 3 || fs.Recoveries != 3 {
		t.Errorf("physical counters: restores=%d recoveries=%d, want 3/3", fs.Restores, fs.Recoveries)
	}
}

func TestObserverResumeTrace(t *testing.T) {
	// Fail a run after its first checkpoint, then resume it under a fresh
	// observer: the resumed trace opens with run_start preceded by a resume
	// record, and the logical counters match a clean end-to-end run.
	clean := func() *obs.Observer {
		o := obs.New(nil)
		prog, cfg := newEcho(60, 6, 3)
		cfg.Observer = o
		if _, err := Run[int](cfg, prog); err != nil {
			t.Fatal(err)
		}
		return o
	}()

	store := NewMemCheckpointStore()
	prog, cfg := newEcho(60, 6, 3)
	cfg.Exchange = NewFaultyExchangeFactory(nil, FaultConfig{Seed: 1, ErrorRate: 1, FromStep: 3, MaxFaults: 1})
	cfg.CheckpointEvery = 1
	cfg.CheckpointStore = store
	if _, err := Run[int](cfg, prog); err == nil {
		t.Fatal("fault-injected run succeeded")
	}

	ring := obs.NewRing(1024)
	resumedObs := obs.New(ring)
	prog2, cfg2 := newEcho(60, 6, 3)
	cfg2.ResumeFrom = store
	cfg2.Observer = resumedObs
	if _, err := Run[int](cfg2, prog2); err != nil {
		t.Fatal(err)
	}

	events := ring.Events()
	counts := eventTypes(events)
	if counts[obs.EventResume] != 1 {
		t.Fatalf("trace has %d resume events, want 1", counts[obs.EventResume])
	}
	if !reflect.DeepEqual(resumedObs.Counters(), clean.Counters()) {
		t.Errorf("counters diverge:\nresumed: %v\nclean:   %v", resumedObs.Counters(), clean.Counters())
	}
	if rs, cs := resumedObs.Snapshot(), clean.Snapshot(); rs.MessagesTotal != cs.MessagesTotal || rs.Supersteps != cs.Supersteps {
		t.Errorf("logical totals diverge: resumed %d/%d, clean %d/%d",
			rs.Supersteps, rs.MessagesTotal, cs.Supersteps, cs.MessagesTotal)
	}
}
