// Package bsp is a hand-rolled Bulk Synchronous Parallel engine in the style
// of Pregel/Giraph, the substrate the paper implements PSgL on (Section 6).
// K workers each own a random partition of the data vertices; computation
// proceeds in supersteps separated by barriers; all communication is message
// passing addressed to data vertices, routed to the owning worker.
//
// Two message exchanges are provided: the default in-process exchange, and a
// TCP exchange (tcp.go) that round-trips every inter-worker batch through
// gob encoding and the loopback network stack, for distributed-execution
// realism on a single machine.
//
// The engine records the metrics the paper's cost model is built on
// (Equation 3): per-superstep, per-worker compute time and message counts,
// from which a simulated makespan Σ_s max_k L_ks is derived. That simulated
// makespan is what the scalability experiment (Figure 8) reports, so worker
// counts larger than the physical core count behave like real workers.
package bsp

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"psgl/internal/graph"
)

// Envelope is one message addressed to a data vertex.
type Envelope[M any] struct {
	Dest graph.VertexID
	Msg  M
}

// Program is the worker-centric computation the engine runs. Init runs once
// per worker in superstep 0 and seeds the first messages (PSgL's
// initialization phase). Process handles one delivered message in every later
// superstep (PSgL's expansion phase). Both may send new messages through the
// Context. Implementations must be safe for concurrent execution across
// workers; the engine never calls the same worker concurrently.
type Program[M any] interface {
	Init(ctx *Context[M])
	Process(ctx *Context[M], env Envelope[M])
}

// Config parameterizes a run.
type Config struct {
	// Workers is the number of BSP workers K (>= 1).
	Workers int
	// Owner maps a data vertex to the worker that owns it.
	Owner func(graph.VertexID) int
	// MaxSupersteps aborts runaway computations. 0 means 1 << 20.
	MaxSupersteps int
	// Exchange overrides the in-process message exchange (e.g. NewTCPExchange).
	// Nil uses the in-process exchange.
	Exchange ExchangeFactory
}

// ErrAborted wraps the error passed to Context.Abort.
var ErrAborted = errors.New("bsp: computation aborted")

// Context is the per-worker, per-superstep API surface available to a
// Program. It is not safe to retain across supersteps.
type Context[M any] struct {
	worker  int
	step    int
	cfg     *Config
	out     [][]Envelope[M] // out[w] = messages destined to worker w
	sent    int64
	local   map[string]int64
	aborted *atomic.Pointer[error]
}

// Worker returns this worker's id in [0, Workers).
func (c *Context[M]) Worker() int { return c.worker }

// Step returns the current superstep (0 = initialization).
func (c *Context[M]) Step() int { return c.step }

// Send routes msg to the worker owning dest, for delivery next superstep.
func (c *Context[M]) Send(dest graph.VertexID, msg M) {
	w := c.cfg.Owner(dest)
	c.out[w] = append(c.out[w], Envelope[M]{Dest: dest, Msg: msg})
	c.sent++
}

// AddCounter accumulates a named global counter; counters from all workers
// are merged at each barrier and reported in RunStats.
func (c *Context[M]) AddCounter(name string, delta int64) {
	c.local[name] += delta
}

// Abort stops the computation after the current superstep. The first error
// wins; Run returns it wrapped in ErrAborted.
func (c *Context[M]) Abort(err error) {
	if err == nil {
		err = errors.New("abort with nil error")
	}
	c.aborted.CompareAndSwap(nil, &err)
}

// RunStats reports what happened during a run.
type RunStats struct {
	Supersteps      int
	MessagesTotal   int64
	PerStepMessages []int64
	// WorkerTime[w] is worker w's total compute time across all supersteps
	// (Figure 5 reports exactly this per-worker series).
	WorkerTime []time.Duration
	// WorkerMessages[w] counts messages processed by worker w.
	WorkerMessages []int64
	// PerStepWorkerTime[s][w] is worker w's compute time in superstep s.
	PerStepWorkerTime [][]time.Duration
	Counters          map[string]int64
}

// SimulatedMakespan is the cost model of Equation 3: the sum over supersteps
// of the slowest worker's compute time. It is the engine's runtime metric
// when the worker count exceeds the physical core count.
func (s *RunStats) SimulatedMakespan() time.Duration {
	var total time.Duration
	for _, stepTimes := range s.PerStepWorkerTime {
		var max time.Duration
		for _, t := range stepTimes {
			if t > max {
				max = t
			}
		}
		total += max
	}
	return total
}

// Run executes prog to completion: superstep 0 calls Init on every worker;
// each later superstep delivers the previous step's messages; the run ends
// when a superstep produces no messages, or when a worker aborts.
func Run[M any](cfg Config, prog Program[M]) (*RunStats, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("bsp: need >= 1 worker, have %d", cfg.Workers)
	}
	if cfg.Owner == nil {
		return nil, fmt.Errorf("bsp: Owner function is required")
	}
	maxSteps := cfg.MaxSupersteps
	if maxSteps <= 0 {
		maxSteps = 1 << 20
	}
	var exchange Exchange[M]
	if cfg.Exchange != nil {
		ex, err := newExchangeFromFactory[M](cfg.Exchange, cfg.Workers)
		if err != nil {
			return nil, err
		}
		exchange = ex
	} else {
		exchange = localExchange[M]{}
	}
	defer exchange.Close()

	k := cfg.Workers
	stats := &RunStats{
		WorkerTime:     make([]time.Duration, k),
		WorkerMessages: make([]int64, k),
		Counters:       map[string]int64{},
	}
	var abortPtr atomic.Pointer[error]
	inboxes := make([][]Envelope[M], k)

	runStep := func(step int) (outAll [][][]Envelope[M], produced int64) {
		outAll = make([][][]Envelope[M], k)
		stepTimes := make([]time.Duration, k)
		counterSets := make([]map[string]int64, k)
		var wg sync.WaitGroup
		var producedAtomic atomic.Int64
		for w := 0; w < k; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ctx := &Context[M]{
					worker:  w,
					step:    step,
					cfg:     &cfg,
					out:     make([][]Envelope[M], k),
					local:   map[string]int64{},
					aborted: &abortPtr,
				}
				start := time.Now()
				if step == 0 {
					prog.Init(ctx)
				} else {
					for _, env := range inboxes[w] {
						prog.Process(ctx, env)
					}
				}
				stepTimes[w] = time.Since(start)
				outAll[w] = ctx.out
				counterSets[w] = ctx.local
				producedAtomic.Add(ctx.sent)
				stats.WorkerMessages[w] += int64(len(inboxes[w]))
			}(w)
		}
		wg.Wait()
		for w := 0; w < k; w++ {
			stats.WorkerTime[w] += stepTimes[w]
			for name, v := range counterSets[w] {
				stats.Counters[name] += v
			}
		}
		stats.PerStepWorkerTime = append(stats.PerStepWorkerTime, stepTimes)
		return outAll, producedAtomic.Load()
	}

	for step := 0; ; step++ {
		if step > maxSteps {
			return stats, fmt.Errorf("bsp: exceeded %d supersteps", maxSteps)
		}
		outAll, produced := runStep(step)
		stats.Supersteps = step + 1
		stats.PerStepMessages = append(stats.PerStepMessages, produced)
		stats.MessagesTotal += produced
		if errp := abortPtr.Load(); errp != nil {
			return stats, fmt.Errorf("%w: %v", ErrAborted, *errp)
		}
		if produced == 0 {
			return stats, nil
		}
		next, err := exchange.Exchange(step, outAll)
		if err != nil {
			return stats, fmt.Errorf("bsp: exchange failed at step %d: %w", step, err)
		}
		inboxes = next
	}
}

// Exchange moves each superstep's outgoing buffers to the destination
// workers' inboxes. outAll[src][dst] holds src's messages for dst; the result
// res[dst] is the concatenation over all sources.
type Exchange[M any] interface {
	Exchange(step int, outAll [][][]Envelope[M]) ([][]Envelope[M], error)
	Close() error
}

// ExchangeFactory builds an exchange for a given worker count without
// exposing the message type parameter in Config. Implementations are
// provided by this package (NewTCPExchangeFactory); the zero value of
// Config uses the in-process exchange.
type ExchangeFactory interface {
	kind() string
}

type localExchange[M any] struct{}

func (localExchange[M]) Exchange(_ int, outAll [][][]Envelope[M]) ([][]Envelope[M], error) {
	k := len(outAll)
	res := make([][]Envelope[M], k)
	for dst := 0; dst < k; dst++ {
		total := 0
		for src := 0; src < k; src++ {
			total += len(outAll[src][dst])
		}
		buf := make([]Envelope[M], 0, total)
		for src := 0; src < k; src++ {
			buf = append(buf, outAll[src][dst]...)
		}
		res[dst] = buf
	}
	return res, nil
}

func (localExchange[M]) Close() error { return nil }
