// Package bsp is a hand-rolled Bulk Synchronous Parallel engine in the style
// of Pregel/Giraph, the substrate the paper implements PSgL on (Section 6).
// K workers each own a random partition of the data vertices; computation
// proceeds in supersteps separated by barriers; all communication is message
// passing addressed to data vertices, routed to the owning worker.
//
// Two message exchanges are provided: the default in-process exchange, and a
// TCP exchange (tcp.go) that round-trips every inter-worker batch through
// gob encoding and the loopback network stack, for distributed-execution
// realism on a single machine. A fault-injection wrapper (faults.go) makes
// either exchange drop, delay, or error batches deterministically, for
// recovery testing.
//
// Fault tolerance mirrors the Giraph substrate the paper ran on: barriers
// are the recovery points. The engine can snapshot its state (next inboxes
// plus merged stats) into a CheckpointStore every N supersteps
// (checkpoint.go), retry failed exchanges with bounded exponential backoff
// (retry.go), rebuild the exchange and restore the latest checkpoint when a
// superstep fails, and resume an entirely new run from a persisted
// checkpoint (Config.ResumeFrom).
//
// The engine records the metrics the paper's cost model is built on
// (Equation 3): per-superstep, per-worker compute time and message counts,
// from which a simulated makespan Σ_s max_k L_ks is derived. That simulated
// makespan is what the scalability experiment (Figure 8) reports, so worker
// counts larger than the physical core count behave like real workers.
package bsp

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"psgl/internal/graph"
	"psgl/internal/obs"
)

// Envelope is one message addressed to a data vertex.
type Envelope[M any] struct {
	Dest graph.VertexID
	Msg  M
}

// Program is the worker-centric computation the engine runs. Init runs once
// per worker in superstep 0 and seeds the first messages (PSgL's
// initialization phase). Process handles one delivered message in every later
// superstep (PSgL's expansion phase). Both may send new messages through the
// Context. Implementations must be safe for concurrent execution across
// workers; the engine never calls the same worker concurrently.
type Program[M any] interface {
	Init(ctx *Context[M])
	Process(ctx *Context[M], env Envelope[M])
}

// Config parameterizes a run.
type Config struct {
	// Workers is the number of BSP workers K (>= 1).
	Workers int
	// Owner maps a data vertex to the worker that owns it.
	Owner func(graph.VertexID) int
	// MaxSupersteps aborts runaway computations: at most MaxSupersteps
	// supersteps (including the initialization step) are executed. 0 means
	// 1 << 20.
	MaxSupersteps int
	// Exchange overrides the in-process message exchange (e.g.
	// NewTCPExchangeFactory, NewFaultyExchangeFactory). Nil uses the
	// in-process exchange.
	Exchange ExchangeFactory
	// StepTimeout bounds each superstep (compute plus exchange). A superstep
	// exceeding it fails like an exchange error: it is eligible for
	// checkpoint recovery, otherwise it fails the run. 0 means no deadline.
	StepTimeout time.Duration
	// Retry wraps every Exchange call in bounded exponential backoff. The
	// zero value performs a single attempt.
	Retry RetryPolicy
	// CheckpointEvery > 0 snapshots the run state (next inboxes plus merged
	// stats) into CheckpointStore at every Nth barrier.
	CheckpointEvery int
	// CheckpointStore receives barrier snapshots; required when
	// CheckpointEvery > 0, and the source of in-run recovery restores.
	CheckpointStore CheckpointStore
	// ResumeFrom, when non-nil, loads the latest snapshot from the store and
	// resumes the run from that barrier instead of starting at Init. An
	// empty store falls back to a fresh start.
	ResumeFrom CheckpointStore
	// MaxRecoveries is how many times a failed superstep (exchange error,
	// exhausted retries, or step deadline) may be recovered in-run by
	// rebuilding the exchange from its factory and restoring the latest
	// checkpoint (or restarting from scratch when no checkpoint exists yet).
	// 0 disables in-run recovery.
	MaxRecoveries int
	// AsyncExchange replaces the barriered superstep loop with the pipelined
	// async message plane (async.go): workers flush fixed-size frame batches
	// as they are produced, receivers expand frames as they arrive, and the
	// barrier degrades to a credit/ack termination detector. Final counts are
	// bit-identical to strict mode for programs whose results are independent
	// of message-processing order (the engine's are; the differential suites
	// pin it). StepTimeout does not apply (there are no steps to bound);
	// MaxSupersteps is approximated as a per-worker flushed-frame bound; and
	// checkpoints are taken at induced quiescence points instead of barriers.
	AsyncExchange bool
	// AsyncFlushEvery is the async plane's frame granularity: a worker
	// flushes a destination batch once it holds this many messages. Smaller
	// values pipeline more aggressively at higher framing overhead. 0 means
	// 256. Ignored in strict mode.
	AsyncFlushEvery int
	// CompressFrames front codes message batches (compress.go): batches are
	// sorted by encoding and shipped as shared-prefix + suffix deltas, and in
	// strict mode the per-worker inbox keeps them encoded until the run loop
	// decodes them one bounded chunk at a time — trading barrier CPU for
	// bytes on the wire and peak RSS. Requires *M to implement WireMessage
	// (silently ignored otherwise); in async mode it compresses the wire but
	// inboxes stay expanded (frames are consumed as they arrive); with the
	// in-process async exchange there are no frames at all, so it is a no-op.
	CompressFrames bool
	// Observer receives the run's metrics and trace events (superstep
	// timings, exchange volume, transport frames and bytes, checkpoint and
	// recovery events). Nil disables observation entirely; every hook is a
	// nil-receiver no-op, and no hook runs per message, so the compute hot
	// path is unaffected either way.
	Observer *obs.Observer
}

// ErrAborted wraps the error passed to Context.Abort.
var ErrAborted = errors.New("bsp: computation aborted")

// Snapshotter is an optional Program extension for programs carrying state
// outside the BSP inboxes — accumulators, RNG streams, local heuristic
// views. When the Program implements it, that state rides along every
// barrier snapshot and is restored (or reset, on a restart from scratch)
// together with the engine's own state, so program-side metrics stay
// exactly-once across retries, recoveries, and resumes instead of
// double-counting replayed supersteps.
//
// Both methods are only called between supersteps (at barriers), never
// concurrently with Init or Process.
type Snapshotter interface {
	// SnapshotState returns an opaque encoding of the program's barrier
	// state.
	SnapshotState() ([]byte, error)
	// RestoreState replaces the program's state with a previously
	// snapshot one. nil data means "reset to the initial state" (a restart
	// from scratch, or a resume from a snapshot predating the program's
	// state format).
	RestoreState(data []byte) error
}

// Context is the per-worker, per-superstep API surface available to a
// Program. It is not safe to retain across supersteps.
type Context[M any] struct {
	worker  int
	step    int
	cfg     *Config
	out     [][]Envelope[M] // out[w] = messages destined to worker w
	sent    int64
	local   map[string]int64
	aborted *atomic.Pointer[error]
}

// Worker returns this worker's id in [0, Workers).
func (c *Context[M]) Worker() int { return c.worker }

// Step returns the current superstep (0 = initialization).
func (c *Context[M]) Step() int { return c.step }

// Send routes msg to the worker owning dest, for delivery next superstep.
func (c *Context[M]) Send(dest graph.VertexID, msg M) {
	w := c.cfg.Owner(dest)
	c.out[w] = append(c.out[w], Envelope[M]{Dest: dest, Msg: msg})
	c.sent++
}

// AddCounter accumulates a named global counter; counters from all workers
// are merged at each barrier and reported in RunStats.
func (c *Context[M]) AddCounter(name string, delta int64) {
	c.local[name] += delta
}

// Abort stops the computation: every worker short-circuits the remainder of
// its inbox for the current superstep, and the run ends at the barrier. The
// first error wins; Run returns it wrapped in ErrAborted.
func (c *Context[M]) Abort(err error) {
	if err == nil {
		err = errors.New("abort with nil error")
	}
	c.aborted.CompareAndSwap(nil, &err)
}

// RunStats reports what happened during a run.
type RunStats struct {
	Supersteps      int
	MessagesTotal   int64
	PerStepMessages []int64
	// WorkerTime[w] is worker w's total compute time across all supersteps
	// (Figure 5 reports exactly this per-worker series).
	WorkerTime []time.Duration
	// WorkerMessages[w] counts messages processed by worker w.
	WorkerMessages []int64
	// PerStepWorkerTime[s][w] is worker w's compute time in superstep s.
	PerStepWorkerTime [][]time.Duration
	Counters          map[string]int64
	// Recoveries counts in-run checkpoint-restore recoveries (not retries).
	Recoveries int
}

// SimulatedMakespan is the cost model of Equation 3: the sum over supersteps
// of the slowest worker's compute time. It is the engine's runtime metric
// when the worker count exceeds the physical core count.
func (s *RunStats) SimulatedMakespan() time.Duration {
	var total time.Duration
	for _, stepTimes := range s.PerStepWorkerTime {
		var max time.Duration
		for _, t := range stepTimes {
			if t > max {
				max = t
			}
		}
		total += max
	}
	return total
}

// Run executes prog to completion: superstep 0 calls Init on every worker;
// each later superstep delivers the previous step's messages; the run ends
// when a superstep produces no messages, or when a worker aborts.
func Run[M any](cfg Config, prog Program[M]) (*RunStats, error) {
	return RunContext[M](context.Background(), cfg, prog)
}

// RunContext is Run with cancellation: the run stops at the next barrier (or
// message boundary within a superstep) once ctx is done, and ctx deadlines
// bound the exchange's network operations. Config.StepTimeout additionally
// derives a per-superstep deadline from ctx.
func RunContext[M any](ctx context.Context, cfg Config, prog Program[M]) (rstats *RunStats, rerr error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("bsp: need >= 1 worker, have %d", cfg.Workers)
	}
	if cfg.Owner == nil {
		return nil, fmt.Errorf("bsp: Owner function is required")
	}
	if cfg.CheckpointEvery > 0 && cfg.CheckpointStore == nil {
		return nil, fmt.Errorf("bsp: CheckpointEvery set without a CheckpointStore")
	}
	if cfg.MaxRecoveries > 0 && cfg.CheckpointStore == nil {
		return nil, fmt.Errorf("bsp: MaxRecoveries set without a CheckpointStore")
	}
	maxSteps := cfg.MaxSupersteps
	if maxSteps <= 0 {
		maxSteps = 1 << 20
	}
	if cfg.AsyncExchange {
		return runAsync[M](ctx, cfg, prog, maxSteps)
	}
	// Compression needs the binary codec; types without WireMessage keep the
	// flat gob path regardless of the flag.
	compress := cfg.CompressFrames && messageIsWire[M]()
	buildExchange := func() (Exchange[M], error) {
		return newExchangeFromFactory[M](ctx, cfg.Exchange, cfg.Workers, cfg.Observer, compress)
	}
	exchange, err := buildExchange()
	if err != nil {
		return nil, err
	}
	defer func() { exchange.Close() }()

	k := cfg.Workers
	newStats := func() *RunStats {
		return &RunStats{
			WorkerTime:     make([]time.Duration, k),
			WorkerMessages: make([]int64, k),
			Counters:       map[string]int64{},
		}
	}
	stats := newStats()
	var abortPtr atomic.Pointer[error]
	inboxes := make([]Inbox[M], k)
	startStep := 0
	snapper, _ := any(prog).(Snapshotter)
	gprog, _ := any(prog).(GroupProgram[M])

	restore := func(snap *snapshot[M]) error {
		if len(snap.Stats.WorkerTime) != k || len(snap.Stats.WorkerMessages) != k {
			return fmt.Errorf("bsp: snapshot has %d workers, config has %d",
				len(snap.Stats.WorkerTime), k)
		}
		recoveries := stats.Recoveries
		*stats = snap.Stats
		stats.Recoveries = recoveries
		if stats.Counters == nil {
			stats.Counters = map[string]int64{}
		}
		inboxes = snap.inboxRows(k)
		if snapper != nil {
			// Roll the program's own state (load accumulators, RNGs, …)
			// back to the same barrier, keeping it exactly-once too.
			if err := snapper.RestoreState(snap.Prog); err != nil {
				return fmt.Errorf("bsp: restoring program state: %w", err)
			}
		}
		return nil
	}

	if cfg.ResumeFrom != nil {
		resumeStart := time.Now()
		snap, err := loadSnapshot[M](cfg.ResumeFrom)
		switch {
		case errors.Is(err, ErrNoCheckpoint):
			// Empty store: fresh start.
		case err != nil:
			return nil, fmt.Errorf("bsp: resume: %w", err)
		default:
			if err := restore(snap); err != nil {
				return nil, fmt.Errorf("bsp: resume: %w", err)
			}
			startStep = snap.Step
			cfg.Observer.Resumed(startStep, time.Since(resumeStart))
		}
	}

	cfg.Observer.RunStarted(k, startStep)
	defer func() {
		// The logical end state comes from RunStats, which rolls back with
		// barrier snapshots — exactly-once regardless of replays.
		if rstats != nil {
			cfg.Observer.RunEnded(rstats.Supersteps, rstats.MessagesTotal, rstats.Counters,
				rstats.WorkerTime, rstats.WorkerMessages, rerr)
		}
	}()

	runStep := func(stepCtx context.Context, step int) (outAll [][][]Envelope[M], produced int64) {
		outAll = make([][][]Envelope[M], k)
		stepTimes := make([]time.Duration, k)
		counterSets := make([]map[string]int64, k)
		var wg sync.WaitGroup
		var producedAtomic, processedAtomic atomic.Int64
		done := stepCtx.Done()
		for w := 0; w < k; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ctx := &Context[M]{
					worker:  w,
					step:    step,
					cfg:     &cfg,
					out:     make([][]Envelope[M], k),
					local:   map[string]int64{},
					aborted: &abortPtr,
				}
				start := time.Now()
				processed := int64(0)
				if step == 0 {
					prog.Init(ctx)
				} else {
					processed = deliverInbox(ctx, prog, gprog, &inboxes[w], &abortPtr, done)
				}
				stepTimes[w] = time.Since(start)
				outAll[w] = ctx.out
				counterSets[w] = ctx.local
				producedAtomic.Add(ctx.sent)
				processedAtomic.Add(processed)
				stats.WorkerMessages[w] += processed
			}(w)
		}
		wg.Wait()
		for w := 0; w < k; w++ {
			stats.WorkerTime[w] += stepTimes[w]
			for name, v := range counterSets[w] {
				stats.Counters[name] += v
			}
		}
		stats.PerStepWorkerTime = append(stats.PerStepWorkerTime, stepTimes)
		cfg.Observer.StepComputed(step, stepTimes, processedAtomic.Load(), producedAtomic.Load())
		return outAll, producedAtomic.Load()
	}

	// recoverRun handles a failed superstep: rebuild the exchange from its
	// factory (for TCP this is the reconnect) and restore the latest
	// checkpoint — or restart from scratch when none exists yet. It returns
	// the superstep to resume from, or the error that fails the run.
	recoverRun := func(step int, cause error) (int, error) {
		if ctx.Err() != nil || cfg.CheckpointStore == nil || stats.Recoveries >= cfg.MaxRecoveries {
			return 0, cause
		}
		stats.Recoveries++
		cfg.Observer.RecoveryStarted(step, cause)
		exchange.Close()
		next, err := buildExchange()
		if err != nil {
			return 0, fmt.Errorf("rebuilding exchange after step %d: %v (original failure: %w)", step, err, cause)
		}
		exchange = next
		restoreStart := time.Now()
		snap, err := loadSnapshot[M](cfg.CheckpointStore)
		switch {
		case errors.Is(err, ErrNoCheckpoint):
			// No barrier snapshot yet: restart from scratch, resetting
			// program-side state with the engine's.
			recoveries := stats.Recoveries
			stats = newStats()
			stats.Recoveries = recoveries
			inboxes = make([]Inbox[M], k)
			if snapper != nil {
				if err := snapper.RestoreState(nil); err != nil {
					return 0, fmt.Errorf("resetting program state after step %d: %v (original failure: %w)", step, err, cause)
				}
			}
			cfg.Observer.RestartedFromScratch(step)
			return 0, nil
		case err != nil:
			return 0, fmt.Errorf("loading checkpoint after step %d: %w (original failure: %w)", step, err, cause)
		default:
			if err := restore(snap); err != nil {
				return 0, err
			}
			cfg.Observer.CheckpointRestored(snap.Step, time.Since(restoreStart))
			return snap.Step, nil
		}
	}

	for step := startStep; ; step++ {
		if err := ctx.Err(); err != nil {
			return stats, fmt.Errorf("bsp: run canceled at step %d: %w", step, err)
		}
		if step >= maxSteps {
			return stats, fmt.Errorf("bsp: exceeded %d supersteps", maxSteps)
		}
		stepCtx, cancel := ctx, func() {}
		if cfg.StepTimeout > 0 {
			stepCtx, cancel = context.WithTimeout(ctx, cfg.StepTimeout)
		}
		cfg.Observer.StepStarted(step)
		outAll, produced := runStep(stepCtx, step)
		stats.Supersteps = step + 1
		stats.PerStepMessages = append(stats.PerStepMessages, produced)
		stats.MessagesTotal += produced
		if errp := abortPtr.Load(); errp != nil {
			cancel()
			cfg.Observer.Aborted(step, *errp)
			return stats, fmt.Errorf("%w: %v", ErrAborted, *errp)
		}
		if err := stepCtx.Err(); err != nil {
			cancel()
			resume, rerr := recoverRun(step, fmt.Errorf("superstep %d interrupted: %w", step, err))
			if rerr != nil {
				return stats, fmt.Errorf("bsp: %w", rerr)
			}
			step = resume - 1
			continue
		}
		if produced == 0 {
			cancel()
			return stats, nil
		}
		var next []Inbox[M]
		exStart := time.Now()
		attempt := 0
		exErr := withRetry(stepCtx, cfg.Retry, func() error {
			attempt++
			var n []Inbox[M]
			var err error
			if compress {
				n, err = exchangeGrouped(stepCtx, exchange, step, outAll)
			} else {
				var flat [][]Envelope[M]
				flat, err = exchange.Exchange(stepCtx, step, outAll)
				if err == nil {
					n = flatInboxes(flat)
				}
			}
			if err == nil {
				next = n
				return nil
			}
			cfg.Observer.ExchangeFailed(step, attempt, err)
			return err
		})
		cancel()
		if exErr == nil {
			cfg.Observer.ExchangeDone(step, time.Since(exStart), produced)
		}
		if exErr != nil {
			resume, rerr := recoverRun(step, fmt.Errorf("exchange failed at step %d: %w", step, exErr))
			if rerr != nil {
				return stats, fmt.Errorf("bsp: %w", rerr)
			}
			step = resume - 1
			continue
		}
		inboxes = next
		if cfg.CheckpointEvery > 0 && (step+1)%cfg.CheckpointEvery == 0 {
			ckStart := time.Now()
			nbytes, err := saveSnapshot[M](cfg.CheckpointStore, step+1, inboxes, stats, snapper)
			if err != nil {
				return stats, fmt.Errorf("bsp: checkpoint at step %d: %w", step+1, err)
			}
			cfg.Observer.CheckpointSaved(step+1, nbytes, time.Since(ckStart))
		}
	}
}

// Exchange moves each superstep's outgoing buffers to the destination
// workers' inboxes. outAll[src][dst] holds src's messages for dst; the result
// res[dst] is the concatenation over all sources. Implementations must either
// deliver the full barrier or return an error having delivered nothing
// observable — Run retries and recovers at that granularity.
type Exchange[M any] interface {
	Exchange(ctx context.Context, step int, outAll [][][]Envelope[M]) ([][]Envelope[M], error)
	Close() error
}

// ExchangeFactory builds an exchange for a given worker count without
// exposing the message type parameter in Config. Implementations are
// provided by this package (NewTCPExchangeFactory, NewFaultyExchangeFactory);
// the zero value of Config uses the in-process exchange.
type ExchangeFactory interface {
	kind() string
}

type localExchange[M any] struct{}

func (localExchange[M]) Exchange(_ context.Context, _ int, outAll [][][]Envelope[M]) ([][]Envelope[M], error) {
	k := len(outAll)
	res := make([][]Envelope[M], k)
	for dst := 0; dst < k; dst++ {
		total := 0
		for src := 0; src < k; src++ {
			total += len(outAll[src][dst])
		}
		buf := make([]Envelope[M], 0, total)
		for src := 0; src < k; src++ {
			buf = append(buf, outAll[src][dst]...)
		}
		res[dst] = buf
	}
	return res, nil
}

func (localExchange[M]) Close() error { return nil }
