package bsp

// Error-path coverage for checkpoint integrity: a damaged snapshot must
// surface ErrCorruptCheckpoint from the resume path — never a panic, never a
// silent partial restore — regardless of how the file was damaged.

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSealOpenSnapshotRoundTrip(t *testing.T) {
	payload := []byte("gob bytes stand-in")
	sealed := sealSnapshot(payload)
	if len(sealed) != checkpointHeaderLen+len(payload) {
		t.Fatalf("sealed length %d, want %d", len(sealed), checkpointHeaderLen+len(payload))
	}
	got, err := openSnapshot(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload round trip: %q != %q", got, payload)
	}
}

// checkpointedRunDir runs an echo program with a file-backed store and
// returns the directory plus the single snapshot file inside it.
func checkpointedRunDir(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	store, err := NewFileCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	prog, cfg := newEcho(60, 5, 3)
	cfg.CheckpointEvery = 1
	cfg.CheckpointStore = store
	if _, err := Run[int](cfg, prog); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var file string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), checkpointSuffix) {
			file = filepath.Join(dir, e.Name())
		}
	}
	if file == "" {
		t.Fatal("no snapshot file written")
	}
	return dir, file
}

func TestResumeFromCorruptCheckpoint(t *testing.T) {
	corruptions := []struct {
		name    string
		corrupt func(t *testing.T, data []byte) []byte
	}{
		{"truncated below header", func(t *testing.T, data []byte) []byte {
			return data[:checkpointHeaderLen-3]
		}},
		{"truncated payload", func(t *testing.T, data []byte) []byte {
			return data[:len(data)-7]
		}},
		{"single bit flip", func(t *testing.T, data []byte) []byte {
			out := append([]byte(nil), data...)
			out[len(out)/2] ^= 0x10
			return out
		}},
		{"bad magic", func(t *testing.T, data []byte) []byte {
			out := append([]byte(nil), data...)
			out[0] = 'X'
			return out
		}},
		{"valid checksum over damaged gob", func(t *testing.T, data []byte) []byte {
			// Reseal a truncated payload with a freshly computed CRC: the
			// checksum passes, so only the gob decoder can catch this one.
			payload, err := openSnapshot(data)
			if err != nil {
				t.Fatal(err)
			}
			return sealSnapshot(payload[:len(payload)-5])
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir, file := checkpointedRunDir(t)
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(file, tc.corrupt(t, data), 0o644); err != nil {
				t.Fatal(err)
			}

			store, err := NewFileCheckpointStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			prog, cfg := newEcho(60, 5, 3)
			cfg.ResumeFrom = store
			_, err = Run[int](cfg, prog)
			if err == nil {
				t.Fatal("resume from a corrupt checkpoint succeeded")
			}
			if !errors.Is(err, ErrCorruptCheckpoint) {
				t.Fatalf("err = %v, want ErrCorruptCheckpoint", err)
			}
			if errors.Is(err, ErrNoCheckpoint) {
				t.Fatalf("err = %v must not read as an empty store", err)
			}
		})
	}
}

func TestOpenSnapshotRejectsEmpty(t *testing.T) {
	if _, err := openSnapshot(nil); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("err = %v, want ErrCorruptCheckpoint", err)
	}
}
