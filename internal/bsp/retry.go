package bsp

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// RetryPolicy bounds exponential backoff around per-superstep Exchange
// calls. Exchanges are barrier-atomic (deliver everything or error having
// delivered nothing observable), so a failed call is safe to re-issue with
// the same outgoing buffers.
//
// Backoff sleeps use full jitter by default: each sleep is drawn uniformly
// from [0, cap] where cap doubles per attempt from BaseBackoff up to
// MaxBackoff. Without jitter, N workers that lost the same peer retry in
// lockstep and thundering-herd the survivor at exactly the same instants;
// the uniform draw decorrelates them (the AWS "full jitter" scheme). Set
// JitterSeed for a deterministic draw sequence (fault-injection tests), or
// NoJitter to recover the pre-jitter deterministic schedule.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts, first try included.
	// 0 and 1 both mean a single attempt (no retry).
	MaxAttempts int
	// BaseBackoff is the backoff cap before the first retry, doubled after
	// each failure. 0 means 1ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the per-retry backoff cap. 0 means 100ms.
	MaxBackoff time.Duration
	// JitterSeed seeds the full-jitter draws so a fault schedule replays
	// bit-identically. 0 draws a fresh seed per withRetry call, so
	// concurrent retry loops across workers decorrelate.
	JitterSeed int64
	// NoJitter disables jitter entirely: every retry sleeps the full
	// deterministic cap (the pre-jitter behavior; tests asserting exact
	// backoff schedules use this).
	NoJitter bool
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 1
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 100 * time.Millisecond
	}
	return p
}

// retrySeedCounter decorrelates unseeded retry loops: each withRetry call
// mixes a fresh counter value with the wall clock, so two workers starting
// their retry loops in the same nanosecond still draw different jitter.
var retrySeedCounter atomic.Int64

// retrySeed derives the per-call seed for unseeded jitter. The clock and the
// counter are mixed through a splitmix64-style avalanche finalizer so every
// counter increment flips about half the seed bits. The previous scheme,
// `nano ^ (counter << 20)`, left same-tick callers with seeds differing only
// in a narrow bit window — newFaultRand's single multiply did not disperse
// that, so concurrent retriers drew correlated backoff sequences and
// thundering-herded the peer that full jitter exists to protect.
func retrySeed() int64 {
	z := uint64(time.Now().UnixNano()) + uint64(retrySeedCounter.Add(1))*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// backoffFor returns the sleep before the retry following `attempt` (1-based
// failed attempts so far): the deterministic cap under NoJitter, otherwise a
// uniform draw in [0, cap].
func backoffFor(p RetryPolicy, rng *faultRand, attempt int) time.Duration {
	cap := p.BaseBackoff
	for i := 1; i < attempt; i++ {
		cap *= 2
		if cap >= p.MaxBackoff {
			cap = p.MaxBackoff
			break
		}
	}
	if cap > p.MaxBackoff {
		cap = p.MaxBackoff
	}
	if p.NoJitter {
		return cap
	}
	return time.Duration(rng.float64v() * float64(cap))
}

// withRetry runs op up to p.MaxAttempts times with full-jitter exponential
// backoff, stopping early when ctx is done.
func withRetry(ctx context.Context, p RetryPolicy, op func() error) error {
	p = p.withDefaults()
	var rng *faultRand
	if !p.NoJitter {
		seed := p.JitterSeed
		if seed == 0 {
			seed = retrySeed()
		}
		rng = newFaultRand(seed)
	}
	var err error
	for attempt := 1; ; attempt++ {
		err = op()
		if err == nil {
			return nil
		}
		if attempt >= p.MaxAttempts || ctx.Err() != nil {
			if attempt > 1 {
				return fmt.Errorf("after %d attempts: %w", attempt, err)
			}
			return err
		}
		timer := time.NewTimer(backoffFor(p, rng, attempt))
		select {
		case <-ctx.Done():
			timer.Stop()
			return fmt.Errorf("canceled while backing off after attempt %d: %w", attempt, err)
		case <-timer.C:
		}
	}
}
