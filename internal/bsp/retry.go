package bsp

import (
	"context"
	"fmt"
	"time"
)

// RetryPolicy bounds exponential backoff around per-superstep Exchange
// calls. Exchanges are barrier-atomic (deliver everything or error having
// delivered nothing observable), so a failed call is safe to re-issue with
// the same outgoing buffers.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts, first try included.
	// 0 and 1 both mean a single attempt (no retry).
	MaxAttempts int
	// BaseBackoff is the sleep before the first retry, doubled after each
	// failure. 0 means 1ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the per-retry sleep. 0 means 100ms.
	MaxBackoff time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 1
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 100 * time.Millisecond
	}
	return p
}

// withRetry runs op up to p.MaxAttempts times with exponential backoff,
// stopping early when ctx is done.
func withRetry(ctx context.Context, p RetryPolicy, op func() error) error {
	p = p.withDefaults()
	backoff := p.BaseBackoff
	var err error
	for attempt := 1; ; attempt++ {
		err = op()
		if err == nil {
			return nil
		}
		if attempt >= p.MaxAttempts || ctx.Err() != nil {
			if attempt > 1 {
				return fmt.Errorf("after %d attempts: %w", attempt, err)
			}
			return err
		}
		timer := time.NewTimer(backoff)
		select {
		case <-ctx.Done():
			timer.Stop()
			return fmt.Errorf("canceled while backing off after attempt %d: %w", attempt, err)
		case <-timer.C:
		}
		backoff *= 2
		if backoff > p.MaxBackoff {
			backoff = p.MaxBackoff
		}
	}
}
