package bsp

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"psgl/internal/obs"
)

// tcpAsyncTransport runs the loopback TCP mesh in pipelined mode: instead of
// the strict barrier's matched send/recv rounds, each off-diagonal (dst, src)
// conn gets a persistent reader goroutine that delivers frames into the
// destination's queue the moment they arrive — and only then releases the
// sender's credit. Frames reuse the strict mode's codecs (length-prefixed
// wire frames for WireMessage types, gob otherwise), with the flush sequence
// number riding in the step field; frame/byte accounting flows through the
// same mesh helpers, so the observer's physical counters stay comparable
// across modes.
//
// Each conn is written by exactly one worker goroutine (worker w flushes
// only frames with src == w) and read by exactly one reader goroutine, so no
// per-conn locking is needed.
type tcpAsyncTransport[M any] struct {
	mesh   *tcpExchange[M]
	cfg    TCPConfig
	h      asyncHooks[M]
	closed atomic.Bool
	wg     sync.WaitGroup
}

func newTCPAsyncTransport[M any](ctx context.Context, workers int, cfg TCPConfig, o *obs.Observer, h asyncHooks[M], compress bool) (asyncTransport[M], error) {
	mesh, err := newTCPMesh[M](ctx, workers, cfg, o, compress)
	if err != nil {
		return nil, err
	}
	t := &tcpAsyncTransport[M]{mesh: mesh, cfg: cfg, h: h}
	for dst := 0; dst < workers; dst++ {
		for src := 0; src < workers; src++ {
			if src == dst {
				continue
			}
			t.wg.Add(1)
			go t.readLoop(dst, src)
		}
	}
	return t, nil
}

// readLoop drains one (dst, src) conn for the transport's lifetime. Reads
// block indefinitely (zero deadline): a quiet conn is normal in async mode,
// and teardown unblocks the read by closing the conn. Errors on a live
// transport are fatal to the attempt — the peer's credit cannot be released
// without the frame, so the coordinator must recover, not wait.
func (t *tcpAsyncTransport[M]) readLoop(dst, src int) {
	defer t.wg.Done()
	for {
		_, batch, err := t.mesh.recvFrameAt(dst, src, time.Time{})
		if err != nil {
			if !t.closed.Load() {
				t.h.fatal(fmt.Errorf("bsp: async exchange recv %d<-%d: %w", dst, src, err))
			}
			return
		}
		t.h.deliver(dst, batch)
		t.h.ack(src)
	}
}

func (t *tcpAsyncTransport[M]) Send(ctx context.Context, src, dst, seq int, batch []Envelope[M]) error {
	if t.closed.Load() {
		return net.ErrClosed
	}
	deadline := time.Now().Add(t.cfg.FrameTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	return t.mesh.sendFrameAt(src, dst, seq, batch, deadline)
}

func (t *tcpAsyncTransport[M]) Close() error {
	t.closed.Store(true)
	err := t.mesh.Close()
	t.wg.Wait()
	return err
}
