package bsp

// Prefix-compressed wire frames. Gpsis that share a mapped-vertex prefix are
// shipped redundantly by the flat codec (wire.go); "Fast and Robust
// Distributed Subgraph Enumeration" (arXiv:1901.07747) attacks exactly this
// with compressed intermediate results. The compressed frame is a front-coded
// trie walk: messages are sorted by their group encoding, and each envelope
// carries only the byte count it shares with its predecessor plus the
// differing suffix. Decoding is the inverse walk, one message at a time over
// a single scratch buffer, so a frame never materializes more than one full
// encoding at once.
//
// Compressed frame layout (little-endian):
//
//	uint32  payload length (bytes after this field)
//	uint32  flags|step     bit 31 = compressed, bit 30 = continuation,
//	                       bits 0..29 = step
//	uint32  envelope count
//	count × {
//	    varint  dest delta (zigzag, vs previous envelope's dest)
//	    uvarint shared     (bytes shared with previous group encoding; the
//	                        first envelope's shared is always 0)
//	    uvarint suffix length
//	    suffix bytes
//	}
//
// Bit 31 versions the format in place: flat frames keep a plain step word
// (Run's step counter and the async plane's frame ordinals never reach 2^30
// in practice), so a receiver distinguishes the two per frame with no
// negotiation, and a sender is free to fall back to the flat codec whenever
// compression would not pay (see compressMinBatch).
//
// Bit 30 lets the strict barrier split one logical batch into bounded chunks
// — the receiver keeps each chunk encoded until the run loop decodes it
// lazily, which is what bounds peak RSS. The async plane never sets it: its
// credit/ack termination detector counts exactly one ack per transport send,
// so an async send is always exactly one frame.

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"psgl/internal/graph"
)

// GroupWireMessage is the optional grouping contract of compressed frames: a
// message type (via its pointer) that offers a second, grouping-friendly
// encoding with its most-shared fields first, plus a patch decode. When *M
// does not implement it, compressed frames fall back to the WireMessage
// encoding and a full decode per message — still correct, just with less
// prefix to share.
type GroupWireMessage interface {
	// AppendGroupWire appends the grouping-friendly encoding to dst and
	// returns the extended buffer. It must be decodable by DecodeGroupWire
	// given the exact encoding slice.
	AppendGroupWire(dst []byte) []byte
	// DecodeGroupWire overwrites the receiver from src, which holds one
	// complete group encoding and nothing else. When shared > 0 the receiver
	// has been pre-seeded with the previously decoded message whose encoding
	// equals src[:shared], so implementations may skip re-parsing the shared
	// prefix. Implementations must not leave the receiver aliasing memory
	// owned by other messages.
	DecodeGroupWire(src []byte, shared int) error
}

// messageIsGroupWire reports whether *M implements GroupWireMessage.
func messageIsGroupWire[M any]() bool {
	_, ok := any((*M)(nil)).(GroupWireMessage)
	return ok
}

const (
	// compressedFrameFlag marks a frame's step word as the compressed format.
	compressedFrameFlag = 1 << 31
	// continuationFlag marks a strict-mode chunk with more chunks following
	// for the same (src, dst) barrier batch.
	continuationFlag = 1 << 30
	// compressedStepMask extracts the step from a compressed step word.
	compressedStepMask = continuationFlag - 1

	// compressMinBatch is the smallest batch worth front coding; below it the
	// varint overhead beats the sharing and the sender emits a flat frame.
	compressMinBatch = 4
	// compressedChunk bounds the envelopes per strict-mode chunk, which in
	// turn bounds the run loop's lazy-decode scratch (the peak-RSS lever).
	compressedChunk = 512
)

// groupEnc is the pooled encoder scratch: every message's group encoding laid
// end to end, plus the sort permutation that turns the batch into maximal
// prefix runs.
type groupEnc struct {
	msgs  []byte
	offs  []int
	order []int
}

var groupEncPool = sync.Pool{New: func() any { return new(groupEnc) }}

func (ge *groupEnc) enc(i int) []byte { return ge.msgs[ge.offs[i]:ge.offs[i+1]] }

// appendGroupEncoding appends m's group encoding (or its flat WireMessage
// encoding when *M is not a GroupWireMessage).
func appendGroupEncoding[M any](dst []byte, m *M) []byte {
	if gm, ok := any(m).(GroupWireMessage); ok {
		return gm.AppendGroupWire(dst)
	}
	return any(m).(WireMessage).AppendWire(dst)
}

// newGroupEnc encodes every message in batch and computes the emission order:
// sorted by encoding bytes (ties by dest), which both maximizes shared
// prefixes and makes the frame a deterministic function of the batch
// multiset. raw is the flat-equivalent frame size — what the same batch would
// have cost uncompressed — for the compression-ratio counters.
func newGroupEnc[M any](batch []Envelope[M]) (ge *groupEnc, raw int) {
	ge = groupEncPool.Get().(*groupEnc)
	ge.msgs = ge.msgs[:0]
	ge.offs = ge.offs[:0]
	ge.order = ge.order[:0]
	for i := range batch {
		ge.offs = append(ge.offs, len(ge.msgs))
		ge.msgs = appendGroupEncoding(ge.msgs, &batch[i].Msg)
		ge.order = append(ge.order, i)
	}
	ge.offs = append(ge.offs, len(ge.msgs))
	sort.Slice(ge.order, func(a, b int) bool {
		ia, ib := ge.order[a], ge.order[b]
		if c := bytes.Compare(ge.enc(ia), ge.enc(ib)); c != 0 {
			return c < 0
		}
		return batch[ia].Dest < batch[ib].Dest
	})
	return ge, wireFrameHeader + 4*len(batch) + len(ge.msgs)
}

func putGroupEnc(ge *groupEnc) { groupEncPool.Put(ge) }

func commonPrefixLen(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// appendOneCompressedFrame emits envelopes order[lo:hi] as one compressed
// frame (length prefix included), front coded against each other.
func appendOneCompressedFrame[M any](buf []byte, step int, ge *groupEnc, batch []Envelope[M], lo, hi int, more bool) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length, patched below
	word := uint32(step)&compressedStepMask | compressedFrameFlag
	if more {
		word |= continuationFlag
	}
	buf = binary.LittleEndian.AppendUint32(buf, word)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(hi-lo))
	var prev []byte
	prevDest := int64(0)
	for i := lo; i < hi; i++ {
		idx := ge.order[i]
		e := ge.enc(idx)
		shared := 0
		if i > lo {
			shared = commonPrefixLen(prev, e)
		}
		d := int64(batch[idx].Dest)
		buf = binary.AppendVarint(buf, d-prevDest)
		prevDest = d
		buf = binary.AppendUvarint(buf, uint64(shared))
		buf = binary.AppendUvarint(buf, uint64(len(e)-shared))
		buf = append(buf, e[shared:]...)
		prev = e
	}
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(buf)-start-4))
	return buf
}

// appendCompressedFrames encodes batch as compressed frames appended to buf.
// chunk <= 0 emits a single frame (the async plane's one-frame-per-send
// contract); otherwise the batch is split into chunks of at most chunk
// envelopes, all but the last carrying the continuation bit. raw is the
// flat-equivalent byte size of the batch.
func appendCompressedFrames[M any](buf []byte, step int, batch []Envelope[M], chunk int) (out []byte, raw int) {
	ge, raw := newGroupEnc(batch)
	defer putGroupEnc(ge)
	if chunk <= 0 || chunk > len(batch) {
		chunk = len(batch)
	}
	lo := 0
	for {
		hi := lo + chunk
		more := hi < len(batch)
		if !more {
			hi = len(batch)
		}
		buf = appendOneCompressedFrame(buf, step, ge, batch, lo, hi, more)
		if !more {
			return buf, raw
		}
		lo = hi
	}
}

// AppendCompressedFrame encodes batch as a single compressed frame appended
// to buf, length prefix included. Exported for the hot-path microbenchmarks
// and golden fixtures; *M must implement WireMessage.
func AppendCompressedFrame[M any](buf []byte, step int, batch []Envelope[M]) []byte {
	out, _ := appendCompressedFrames(buf, step, batch, 0)
	return out
}

// compressBatch encodes batch into separately allocated compressed frame
// payloads (length prefix stripped), each of at most chunk envelopes — the
// form the grouped inbox retains until the run loop decodes it.
func compressBatch[M any](step int, batch []Envelope[M], chunk int) (frames [][]byte, raw int) {
	ge, raw := newGroupEnc(batch)
	defer putGroupEnc(ge)
	if chunk <= 0 || chunk > len(batch) {
		chunk = len(batch)
	}
	lo := 0
	for {
		hi := lo + chunk
		more := hi < len(batch)
		if !more {
			hi = len(batch)
		}
		f := appendOneCompressedFrame(nil, step, ge, batch, lo, hi, more)
		frames = append(frames, f[4:])
		if !more {
			return frames, raw
		}
		lo = hi
	}
}

// DecodeCompressedFrame decodes a compressed frame payload (everything after
// the length prefix) into a fresh envelope slice, in the encoder's sorted
// order. more reports the continuation bit. Exported for the hot-path
// microbenchmarks and golden fixtures.
func DecodeCompressedFrame[M any](payload []byte) (step int, more bool, batch []Envelope[M], err error) {
	step, more, batch, _, err = decodeCompressedFrame[M](payload)
	return step, more, batch, err
}

// decodeCompressedFrame is DecodeCompressedFrame plus the flat-equivalent
// byte size of the decoded batch, for the compression-ratio counters.
func decodeCompressedFrame[M any](payload []byte) (step int, more bool, batch []Envelope[M], raw int, err error) {
	if len(payload) < wireFrameHeader-4 {
		return 0, false, nil, 0, fmt.Errorf("compressed frame: truncated header (%d bytes)", len(payload))
	}
	word := binary.LittleEndian.Uint32(payload)
	if word&compressedFrameFlag == 0 {
		return 0, false, nil, 0, fmt.Errorf("compressed frame: flag bit unset in step word %#x", word)
	}
	more = word&continuationFlag != 0
	step = int(word & compressedStepMask)
	count := int(binary.LittleEndian.Uint32(payload[4:]))
	rest := payload[8:]
	if count < 0 || count > len(rest) {
		return 0, false, nil, 0, fmt.Errorf("compressed frame: implausible envelope count %d for %d bytes", count, len(rest))
	}
	raw = wireFrameHeader
	if count == 0 {
		if len(rest) != 0 {
			return 0, false, nil, 0, fmt.Errorf("compressed frame: %d trailing bytes", len(rest))
		}
		return step, more, nil, raw, nil
	}
	isGroup := messageIsGroupWire[M]()
	bp := wireBufPool.Get().(*[]byte)
	cur := (*bp)[:0]
	defer func() {
		*bp = cur[:0]
		wireBufPool.Put(bp)
	}()
	batch = make([]Envelope[M], count)
	prevDest := int64(0)
	for i := 0; i < count; i++ {
		dd, n := binary.Varint(rest)
		if n <= 0 {
			return 0, false, nil, 0, fmt.Errorf("compressed frame: envelope %d/%d: bad dest delta", i, count)
		}
		rest = rest[n:]
		sh, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, false, nil, 0, fmt.Errorf("compressed frame: envelope %d/%d: bad shared length", i, count)
		}
		rest = rest[n:]
		sl, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, false, nil, 0, fmt.Errorf("compressed frame: envelope %d/%d: bad suffix length", i, count)
		}
		rest = rest[n:]
		if sh > uint64(len(cur)) {
			return 0, false, nil, 0, fmt.Errorf("compressed frame: envelope %d/%d: shared %d exceeds previous encoding (%d bytes)", i, count, sh, len(cur))
		}
		if sl > uint64(len(rest)) {
			return 0, false, nil, 0, fmt.Errorf("compressed frame: envelope %d/%d: truncated suffix (%d claimed, %d left)", i, count, sl, len(rest))
		}
		shared := int(sh)
		cur = append(cur[:shared], rest[:sl]...)
		rest = rest[sl:]
		prevDest += dd
		dest := graph.VertexID(prevDest)
		if int64(dest) != prevDest {
			return 0, false, nil, 0, fmt.Errorf("compressed frame: envelope %d/%d: dest %d out of range", i, count, prevDest)
		}
		batch[i].Dest = dest
		if isGroup {
			if shared > 0 {
				// Seed the patch decode with the previous message: fields
				// fully inside the shared prefix need no re-parse.
				batch[i].Msg = batch[i-1].Msg
			}
			if err := any(&batch[i].Msg).(GroupWireMessage).DecodeGroupWire(cur, shared); err != nil {
				return 0, false, nil, 0, fmt.Errorf("compressed frame: envelope %d/%d: %w", i, count, err)
			}
		} else {
			tail, err := any(&batch[i].Msg).(WireMessage).DecodeWire(cur)
			if err != nil {
				return 0, false, nil, 0, fmt.Errorf("compressed frame: envelope %d/%d: %w", i, count, err)
			}
			if len(tail) != 0 {
				return 0, false, nil, 0, fmt.Errorf("compressed frame: envelope %d/%d: %d undecoded encoding bytes", i, count, len(tail))
			}
		}
		raw += 4 + len(cur)
	}
	if len(rest) != 0 {
		return 0, false, nil, 0, fmt.Errorf("compressed frame: %d trailing bytes", len(rest))
	}
	return step, more, batch, raw, nil
}

// framePayloadIsCompressed reports whether a frame payload carries the
// compressed format, by its step-word flag bit.
func framePayloadIsCompressed(payload []byte) bool {
	return len(payload) >= 4 && binary.LittleEndian.Uint32(payload)&compressedFrameFlag != 0
}

// DecodeFrame decodes a frame payload in either format, detected per frame
// from the step word's flag bit. more is always false for flat frames.
func DecodeFrame[M any](payload []byte) (step int, more bool, batch []Envelope[M], err error) {
	if framePayloadIsCompressed(payload) {
		return DecodeCompressedFrame[M](payload)
	}
	step, batch, err = DecodeWireFrame[M](payload)
	return step, false, batch, err
}

// Inbox is one worker's delivered messages for a superstep: flat envelopes
// plus — in compressed mode — still-encoded compressed frame payloads that
// the run loop decodes lazily, one bounded chunk at a time, so a dense
// superstep's inbox costs its compressed size rather than its expanded size.
type Inbox[M any] struct {
	Envs   []Envelope[M]
	Frames [][]byte
}

// flatInboxes wraps plain per-worker envelope slices as Inboxes.
func flatInboxes[M any](rows [][]Envelope[M]) []Inbox[M] {
	res := make([]Inbox[M], len(rows))
	for i, envs := range rows {
		res[i].Envs = envs
	}
	return res
}

// deliverInbox drives one worker's superstep over a grouped inbox: flat
// envelopes first, then each compressed frame decoded lazily — one bounded
// chunk at a time, through a pooled scratch — and delivered whole to a
// GroupProgram (per message otherwise). The compressed_* counters it feeds
// are logical: they ride RunStats, which rolls back with barrier snapshots,
// so they stay bit-identical across clean, recovered, and resumed strict
// runs. Returns the number of messages processed.
func deliverInbox[M any](ctx *Context[M], prog Program[M], gprog GroupProgram[M], ib *Inbox[M], abortPtr *atomic.Pointer[error], done <-chan struct{}) int64 {
	processed := int64(0)
	for i, env := range ib.Envs {
		// An abort (or cancellation) short-circuits the rest of this
		// worker's inbox instead of draining it.
		if abortPtr.Load() != nil {
			return processed
		}
		if i&255 == 0 {
			select {
			case <-done:
				return processed
			default:
			}
		}
		prog.Process(ctx, env)
		processed++
	}
	for _, fp := range ib.Frames {
		if abortPtr.Load() != nil {
			return processed
		}
		select {
		case <-done:
			return processed
		default:
		}
		_, _, batch, raw, err := decodeCompressedFrame[M](fp)
		if err != nil {
			// Frames come from our own encoder or a CRC-verified snapshot;
			// one that fails to decode is unrecoverable state damage.
			ctx.Abort(fmt.Errorf("corrupt compressed inbox frame: %w", err))
			return processed
		}
		ctx.AddCounter("compressed_frames", 1)
		ctx.AddCounter("compressed_wire_bytes", int64(4+len(fp)))
		ctx.AddCounter("compressed_raw_bytes", int64(raw))
		if gprog != nil {
			gprog.ProcessGroup(ctx, batch)
			processed += int64(len(batch))
			continue
		}
		for _, env := range batch {
			if abortPtr.Load() != nil {
				return processed
			}
			prog.Process(ctx, env)
			processed++
		}
	}
	return processed
}

// GroupProgram is an optional Program extension for compressed mode: each
// decoded compressed frame is delivered whole, in the encoder's prefix-sorted
// order, so the program can share expansion work across runs of messages with
// a common prefix (the engine's group expansion). Programs without it get the
// usual per-message Process calls. Results must not depend on the grouping —
// only on the delivered multiset — which the differential suites pin.
type GroupProgram[M any] interface {
	Program[M]
	ProcessGroup(ctx *Context[M], batch []Envelope[M])
}

// groupedExchange is the optional exchange extension compressed mode runs on:
// like Exchange, but the result keeps compressed batches encoded.
type groupedExchange[M any] interface {
	ExchangeGrouped(ctx context.Context, step int, outAll [][][]Envelope[M]) ([]Inbox[M], error)
}

// exchangeGrouped dispatches a grouped barrier to ex, falling back to the
// flat Exchange (wrapped envelope-only Inboxes) for exchanges that don't
// support grouping. Fault-injection wrappers forward through this helper, so
// arbitrary wrapper nesting reaches a grouped inner exchange.
func exchangeGrouped[M any](ctx context.Context, ex Exchange[M], step int, outAll [][][]Envelope[M]) ([]Inbox[M], error) {
	if g, ok := ex.(groupedExchange[M]); ok {
		return g.ExchangeGrouped(ctx, step, outAll)
	}
	flat, err := ex.Exchange(ctx, step, outAll)
	if err != nil {
		return nil, err
	}
	return flatInboxes(flat), nil
}

// compressedLocalExchange is the in-process exchange of compressed mode: each
// (src, dst) batch of at least compressMinBatch envelopes is front coded into
// bounded chunks that stay encoded in the inbox (trading barrier CPU for peak
// RSS); smaller batches pass through flat.
type compressedLocalExchange[M any] struct{}

func (compressedLocalExchange[M]) Exchange(ctx context.Context, step int, outAll [][][]Envelope[M]) ([][]Envelope[M], error) {
	return localExchange[M]{}.Exchange(ctx, step, outAll)
}

func (compressedLocalExchange[M]) ExchangeGrouped(_ context.Context, step int, outAll [][][]Envelope[M]) ([]Inbox[M], error) {
	k := len(outAll)
	res := make([]Inbox[M], k)
	var wg sync.WaitGroup
	for dst := 0; dst < k; dst++ {
		wg.Add(1)
		go func(dst int) {
			defer wg.Done()
			for src := 0; src < k; src++ {
				batch := outAll[src][dst]
				if len(batch) == 0 {
					continue
				}
				if len(batch) < compressMinBatch {
					res[dst].Envs = append(res[dst].Envs, batch...)
					continue
				}
				frames, _ := compressBatch(step, batch, compressedChunk)
				res[dst].Frames = append(res[dst].Frames, frames...)
			}
		}(dst)
	}
	wg.Wait()
	return res, nil
}

func (compressedLocalExchange[M]) Close() error { return nil }
