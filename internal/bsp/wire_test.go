package bsp

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"sync"
	"testing"

	"psgl/internal/graph"
)

// wireMsg is a Gpsi-shaped test message implementing WireMessage: fixed
// header fields plus a variable-length tail.
type wireMsg struct {
	A    int32
	B    uint16
	Tail []int32
}

func (m *wireMsg) AppendWire(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(m.A))
	dst = binary.LittleEndian.AppendUint16(dst, m.B)
	dst = append(dst, byte(len(m.Tail)))
	for _, v := range m.Tail {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
	}
	return dst
}

func (m *wireMsg) DecodeWire(src []byte) ([]byte, error) {
	if len(src) < 7 {
		return nil, fmt.Errorf("wireMsg: truncated header")
	}
	m.A = int32(binary.LittleEndian.Uint32(src))
	m.B = binary.LittleEndian.Uint16(src[4:])
	n := int(src[6])
	src = src[7:]
	if len(src) < 4*n {
		return nil, fmt.Errorf("wireMsg: truncated tail")
	}
	m.Tail = m.Tail[:0]
	for i := 0; i < n; i++ {
		m.Tail = append(m.Tail, int32(binary.LittleEndian.Uint32(src[4*i:])))
	}
	return src[4*n:], nil
}

func wireTestBatch(n int) []Envelope[wireMsg] {
	batch := make([]Envelope[wireMsg], n)
	for i := range batch {
		m := wireMsg{A: int32(i) - 3, B: uint16(i * 7)}
		for j := 0; j < i%5; j++ {
			m.Tail = append(m.Tail, int32(i*10+j))
		}
		batch[i] = Envelope[wireMsg]{Dest: graph.VertexID(i * 13), Msg: m}
	}
	return batch
}

func TestMessageIsWire(t *testing.T) {
	if !messageIsWire[wireMsg]() {
		t.Error("messageIsWire[wireMsg] = false, want true")
	}
	if messageIsWire[int]() {
		t.Error("messageIsWire[int] = true, want false")
	}
	if messageIsWire[structMsg]() {
		t.Error("messageIsWire[structMsg] = true, want false")
	}
}

func TestWireFrameRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 17} {
		batch := wireTestBatch(n)
		buf := AppendWireFrame(nil, 4, batch)
		if got := int(binary.LittleEndian.Uint32(buf)); got != len(buf)-4 {
			t.Fatalf("n=%d: length prefix %d, want %d", n, got, len(buf)-4)
		}
		step, out, err := DecodeWireFrame[wireMsg](buf[4:])
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if step != 4 {
			t.Fatalf("n=%d: step = %d, want 4", n, step)
		}
		if len(out) != n {
			t.Fatalf("n=%d: decoded %d envelopes", n, len(out))
		}
		for i := range out {
			if out[i].Dest != batch[i].Dest || out[i].Msg.A != batch[i].Msg.A ||
				out[i].Msg.B != batch[i].Msg.B || len(out[i].Msg.Tail) != len(batch[i].Msg.Tail) {
				t.Fatalf("n=%d: envelope %d mangled: got %+v want %+v", n, i, out[i], batch[i])
			}
			for j := range out[i].Msg.Tail {
				if out[i].Msg.Tail[j] != batch[i].Msg.Tail[j] {
					t.Fatalf("n=%d: envelope %d tail[%d] = %d, want %d",
						n, i, j, out[i].Msg.Tail[j], batch[i].Msg.Tail[j])
				}
			}
		}
	}
}

func TestWireFrameDecodeErrors(t *testing.T) {
	buf := AppendWireFrame(nil, 1, wireTestBatch(3))
	payload := buf[4:]
	cases := map[string][]byte{
		"truncated header":   payload[:6],
		"truncated envelope": payload[:len(payload)-3],
		"trailing bytes":     append(append([]byte(nil), payload...), 0xff),
	}
	// An implausible count: header claims more envelopes than bytes remain.
	bad := append([]byte(nil), payload...)
	binary.LittleEndian.PutUint32(bad[4:], 1<<28)
	cases["implausible count"] = bad

	for name, p := range cases {
		if _, _, err := DecodeWireFrame[wireMsg](p); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
}

func TestTCPExchangeWireMessages(t *testing.T) {
	// End-to-end over the real TCP mesh: wireMsg implements WireMessage, so
	// this run exercises the compact codec path, not gob.
	const msgs = 40
	var mu sync.Mutex
	var received []wireMsg
	prog := &funcProgram[wireMsg]{
		init: func(ctx *Context[wireMsg]) {
			if ctx.Worker() == 0 {
				for i := 0; i < msgs; i++ {
					ctx.Send(graph.VertexID(i), wireMsg{A: int32(i), B: 7, Tail: []int32{int32(-i), 99}})
				}
			}
		},
		process: func(ctx *Context[wireMsg], env Envelope[wireMsg]) {
			mu.Lock()
			received = append(received, env.Msg)
			mu.Unlock()
		},
	}
	part := graph.NewPartition(3, 1)
	cfg := Config{
		Workers:  3,
		Owner:    func(v graph.VertexID) int { return part.Owner(v) },
		Exchange: NewTCPExchangeFactory(),
	}
	if _, err := Run[wireMsg](cfg, prog); err != nil {
		t.Fatal(err)
	}
	if len(received) != msgs {
		t.Fatalf("received %d messages, want %d", len(received), msgs)
	}
	seen := map[int32]bool{}
	for _, m := range received {
		if m.B != 7 || len(m.Tail) != 2 || m.Tail[0] != -m.A || m.Tail[1] != 99 {
			t.Fatalf("message mangled in transit: %+v", m)
		}
		seen[m.A] = true
	}
	if len(seen) != msgs {
		t.Fatalf("saw %d distinct messages, want %d", len(seen), msgs)
	}
}

func TestWireFrameSmallerThanGob(t *testing.T) {
	batch := wireTestBatch(64)
	wire := AppendWireFrame(nil, 1, batch)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(frame[wireMsg]{Step: 1, Batch: batch}); err != nil {
		t.Fatal(err)
	}
	if len(wire) >= buf.Len() {
		t.Errorf("wire frame %dB is not smaller than gob frame %dB", len(wire), buf.Len())
	}
	t.Logf("64-envelope frame: wire %dB, gob %dB", len(wire), buf.Len())
}

func BenchmarkWireFrameEncode(b *testing.B) {
	batch := wireTestBatch(256)
	buf := AppendWireFrame(nil, 1, batch)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendWireFrame(buf[:0], 1, batch)
	}
}

func BenchmarkWireFrameDecode(b *testing.B) {
	batch := wireTestBatch(256)
	buf := AppendWireFrame(nil, 1, batch)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeWireFrame[wireMsg](buf[4:]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGobFrameEncode(b *testing.B) {
	batch := wireTestBatch(256)
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := gob.NewEncoder(&buf).Encode(frame[wireMsg]{Step: 1, Batch: batch}); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

func BenchmarkGobFrameDecode(b *testing.B) {
	batch := wireTestBatch(256)
	var enc bytes.Buffer
	if err := gob.NewEncoder(&enc).Encode(frame[wireMsg]{Step: 1, Batch: batch}); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(enc.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var fr frame[wireMsg]
		if err := gob.NewDecoder(bytes.NewReader(enc.Bytes())).Decode(&fr); err != nil {
			b.Fatal(err)
		}
	}
}
