package bsp

import (
	"context"
	"net"
	"runtime"
	"testing"
	"time"

	"psgl/internal/obs"
)

// waitGoroutinesBack polls until the goroutine count drops back to at most
// base (plus slack for runtime noise), failing the test otherwise.
func waitGoroutinesBack(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d now vs %d at baseline\n%s",
		runtime.NumGoroutine(), base, buf[:n])
}

// TestTCPSetupCancelStopsAcceptLoopWithoutLeaks: cancelling the run context
// mid-setup (one mesh connection black-holed, so setup can never complete)
// must abort the Accept loop promptly — well before the setup deadline —
// count a setup abort in obs, and leave no goroutine behind.
func TestTCPSetupCancelStopsAcceptLoopWithoutLeaks(t *testing.T) {
	// A decoy listener that never participates in the handshake, so the
	// mesh stays one connection short forever.
	decoy, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer decoy.Close()
	testDialHook = func(src, dst int, addr string, timeout time.Duration) (net.Conn, error) {
		if src == 0 && dst == 1 {
			return net.DialTimeout("tcp", decoy.Addr().String(), timeout)
		}
		return net.DialTimeout("tcp", addr, timeout)
	}
	defer func() { testDialHook = nil }()

	base := runtime.NumGoroutine()
	o := obs.New(nil)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()

	start := time.Now()
	_, err = newExchangeFromFactory[int](ctx,
		NewTCPExchangeFactoryWithConfig(TCPConfig{SetupTimeout: 60 * time.Second}), 3, o, false)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("canceled setup should error")
	}
	if ctx.Err() == nil {
		t.Fatal("test bug: context not canceled")
	}
	if elapsed > 20*time.Second {
		t.Fatalf("setup took %v after cancel; must tear down promptly, not wait out the 60s deadline", elapsed)
	}
	if got := o.Snapshot().SetupAborts; got != 1 {
		t.Fatalf("setup_aborts = %d, want 1", got)
	}
	waitGoroutinesBack(t, base)
}

// TestTCPSetupPreCanceledContextFailsFast: a context already canceled before
// setup starts must fail immediately without opening a listener.
func TestTCPSetupPreCanceledContextFailsFast(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	base := runtime.NumGoroutine()
	start := time.Now()
	_, err := newExchangeFromFactory[int](ctx, NewTCPExchangeFactory(), 4, nil, false)
	if err == nil {
		t.Fatal("pre-canceled setup should error")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("pre-canceled setup took %v", elapsed)
	}
	waitGoroutinesBack(t, base)
}

// TestTCPSetupCompletesThenRunLeavesNoGoroutines: the happy path — a full
// mesh setup followed by Close must also return to the goroutine baseline
// (the watchdog itself must not leak).
func TestTCPSetupCompletesThenRunLeavesNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	ex, err := newExchangeFromFactory[int](context.Background(), NewTCPExchangeFactory(), 3, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	outAll := make([][][]Envelope[int], 3)
	for i := range outAll {
		outAll[i] = make([][]Envelope[int], 3)
		for j := range outAll[i] {
			if i != j {
				outAll[i][j] = []Envelope[int]{{Dest: 0, Msg: i*10 + j}}
			}
		}
	}
	if _, err := ex.Exchange(context.Background(), 0, outAll); err != nil {
		t.Fatal(err)
	}
	ex.Close()
	waitGoroutinesBack(t, base)
}
