package bsp

// Async message plane — the "kill the barrier" mode. Strict BSP (bsp.go)
// leaves every worker idle at each barrier while the slowest peer finishes
// expanding; Chen et al. (pipelined adaptive-group communication) and Ren et
// al. (shipping partial instances eagerly) both observe that overlapping
// expansion with communication is the dominant remaining speed lever. With
// Config.AsyncExchange set, workers flush fixed-size frame batches as they
// are produced and receivers start expanding frames the moment they arrive;
// the global barrier degrades to a credit/ack termination detector: each
// worker tracks frames sent vs frames acked, and the run completes when all
// workers are idle with zero outstanding credit.
//
// Correctness rests on two properties the strict engine already pins with
// tests: every message is processed exactly once (queues are drained, frames
// are acked only after enqueue), and the program's final counts are
// independent of processing order (the strategy-invariance suite proves the
// engine's backtracking enumeration reaches each embedding exactly once
// regardless of expansion order). Async mode therefore produces bit-identical
// embedding counts to strict mode; the differential suites assert exactly
// that across local and TCP transports.
//
// Fault tolerance moves from barriers to quiescence points: when a
// checkpoint is due the coordinator pauses the plane (workers flush partial
// batches and park, in-flight credit drains to zero), snapshots the queues
// plus merged stats plus program state with the same sealed snapshot format
// as strict mode, and resumes. A failed frame send (after the retry budget)
// tears the attempt down and restores the latest snapshot — or restarts from
// scratch — bounded by MaxRecoveries, mirroring the strict recovery path.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// defaultAsyncFlushEvery is the frame granularity of the async plane: a
// worker flushes a destination batch once it holds this many messages (and
// flushes all partial batches before going idle).
const defaultAsyncFlushEvery = 256

// asyncFramesPerStep converts MaxSupersteps into the async runaway bound:
// a worker may flush at most MaxSupersteps×asyncFramesPerStep frames. Async
// mode has no superstep to count, so the bound is necessarily coarser; it
// exists to turn a ping-pong program into an error instead of a hang.
const asyncFramesPerStep = 256

// creditDetector is the termination detector that replaces the barrier.
// Soundness depends on strict event ordering, enforced by the attempt:
//
//	sender:    outstanding[src]++ happens BEFORE transport.Send
//	deliverer: enqueue → idle[dst]=false → activity++ (all under the
//	           destination's queue lock), and only THEN ack (outstanding--)
//
// so a frame is always covered by either outstanding credit (in flight) or a
// non-idle destination (enqueued). quiescent() reads the activity epoch twice
// around its scan; any delivery racing the scan bumps the epoch and voids the
// verdict.
type creditDetector struct {
	outstanding []atomic.Int64 // per-worker frames sent and not yet enqueued remotely
	inFlight    atomic.Int64   // global gauge feeding the frames-in-flight peak counter
	idle        []atomic.Bool  // worker parked with an empty queue and nothing buffered
	activity    atomic.Uint64  // bumped on every enqueue; double-read by quiescent
	// onScan, when non-nil, runs between the first epoch read and the scan —
	// a test seam for racing a late frame against the verdict.
	onScan func()
}

func newCreditDetector(k int) *creditDetector {
	return &creditDetector{
		outstanding: make([]atomic.Int64, k),
		idle:        make([]atomic.Bool, k),
	}
}

// frameSent charges one credit to src and returns the global in-flight count
// after the send, for the peak gauge.
func (d *creditDetector) frameSent(src int) int64 {
	d.outstanding[src].Add(1)
	return d.inFlight.Add(1)
}

// frameAcked releases src's credit once the frame is enqueued at its
// destination.
func (d *creditDetector) frameAcked(src int) {
	d.outstanding[src].Add(-1)
	d.inFlight.Add(-1)
}

// enqueued records a frame landing in dst's queue. Callers must hold dst's
// queue lock, so the idle flag can never read true while the queue is
// non-empty.
func (d *creditDetector) enqueued(dst int) {
	d.idle[dst].Store(false)
	d.activity.Add(1)
}

func (d *creditDetector) setIdle(w int, v bool) { d.idle[w].Store(v) }

func (d *creditDetector) outstandingTotal() int64 {
	var total int64
	for i := range d.outstanding {
		total += d.outstanding[i].Load()
	}
	return total
}

// quiescent reports global termination: every worker idle and zero credit
// outstanding, with the activity epoch unchanged across the scan.
func (d *creditDetector) quiescent() bool {
	e1 := d.activity.Load()
	if d.onScan != nil {
		d.onScan()
	}
	for i := range d.outstanding {
		if d.outstanding[i].Load() != 0 {
			return false
		}
	}
	for i := range d.idle {
		if !d.idle[i].Load() {
			return false
		}
	}
	return d.activity.Load() == e1
}

// asyncTransport moves one flushed frame from src to dst. Send is
// synchronous with respect to batch: implementations must finish reading the
// slice before returning, so the caller can reuse the buffer. seq is the
// sender's flush sequence number — the async analogue of the superstep for
// fault schedules and retry accounting. Delivery and acknowledgement happen
// through the hooks the transport was built with, possibly after Send
// returns (the TCP transport acks from its reader goroutines).
type asyncTransport[M any] interface {
	Send(ctx context.Context, src, dst, seq int, batch []Envelope[M]) error
	Close() error
}

// asyncHooks are the attempt-side callbacks a transport delivers through.
type asyncHooks[M any] struct {
	deliver func(dst int, batch []Envelope[M])
	ack     func(src int)
	fatal   func(err error)
}

// newAsyncTransport mirrors newExchangeFromFactory for the async plane: nil
// is the in-process transport, tcpFactory builds the loopback mesh with
// per-conn reader goroutines, and the fault factories wrap any inner
// transport while sharing the same schedule state as their strict
// counterparts (keyed by frame seq instead of superstep).
func newAsyncTransport[M any](ctx context.Context, f ExchangeFactory, workers int, cfg *Config, h asyncHooks[M]) (asyncTransport[M], error) {
	switch ff := f.(type) {
	case nil:
		return localAsyncTransport[M]{h: h}, nil
	case tcpFactory:
		compress := cfg.CompressFrames && messageIsWire[M]()
		return newTCPAsyncTransport[M](ctx, workers, ff.cfg.withDefaults(), cfg.Observer, h, compress)
	case faultyFactory:
		inner, err := newAsyncTransport[M](ctx, ff.inner, workers, cfg, h)
		if err != nil {
			return nil, err
		}
		return &faultyAsyncTransport[M]{inner: inner, fc: ff.fc, state: ff.state}, nil
	case *ScheduledFaultFactory:
		inner, err := newAsyncTransport[M](ctx, ff.inner, workers, cfg, h)
		if err != nil {
			return nil, err
		}
		return &scheduledAsyncTransport[M]{inner: inner, state: ff.state}, nil
	default:
		return nil, fmt.Errorf("bsp: unknown exchange factory %q", f.kind())
	}
}

// localAsyncTransport delivers in-process: enqueue, then ack, synchronously.
type localAsyncTransport[M any] struct{ h asyncHooks[M] }

func (t localAsyncTransport[M]) Send(_ context.Context, src, dst, _ int, batch []Envelope[M]) error {
	t.h.deliver(dst, batch)
	t.h.ack(src)
	return nil
}

func (t localAsyncTransport[M]) Close() error { return nil }

// faultyAsyncTransport applies the probabilistic injector to each frame,
// drawing from the same shared stream as the strict wrapper so a factory's
// fault budget spans both modes and survives transport rebuilds.
type faultyAsyncTransport[M any] struct {
	inner asyncTransport[M]
	fc    FaultConfig
	state *faultyState
}

func (f *faultyAsyncTransport[M]) Send(ctx context.Context, src, dst, seq int, batch []Envelope[M]) error {
	fault, delay := f.state.draw(f.fc, seq)
	if fault != nil {
		return fault
	}
	if delay > 0 {
		timer := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		case <-timer.C:
		}
	}
	return f.inner.Send(ctx, src, dst, seq, batch)
}

func (f *faultyAsyncTransport[M]) Close() error { return f.inner.Close() }

// scheduledAsyncTransport fires step-targeted faults against frame sequence
// numbers: a StepFault scheduled at step S claims the first Send carrying
// seq S, exactly once, sharing the fired bookkeeping with the strict wrapper
// so rebuilt transports continue the schedule.
type scheduledAsyncTransport[M any] struct {
	inner asyncTransport[M]
	state *scheduleState
}

func (s *scheduledAsyncTransport[M]) Send(ctx context.Context, src, dst, seq int, batch []Envelope[M]) error {
	if f, ok := s.state.next(seq); ok {
		if err := asyncScheduledFaultError(f, seq); err != nil {
			return err
		}
		if f.Kind == StepFaultDelay {
			timer := time.NewTimer(f.Delay)
			select {
			case <-ctx.Done():
				timer.Stop()
				return ctx.Err()
			case <-timer.C:
			}
		}
	}
	return s.inner.Send(ctx, src, dst, seq, batch)
}

func (s *scheduledAsyncTransport[M]) Close() error { return s.inner.Close() }

// asyncWorker is one worker's queue and delta accumulators. Everything here
// is guarded by mu; the deltas are merged into RunStats (and reset) at
// quiescence epochs so checkpoint rollback keeps them exactly-once.
type asyncWorker[M any] struct {
	id   int
	mu   sync.Mutex
	cond *sync.Cond

	queue  []Envelope[M]
	paused bool

	// flushSeq counts every frame this worker flushed, self-deliveries
	// included — the runaway bound. sendSeq numbers only the frames that hit
	// the transport: the fault-schedule and retry-accounting axis, so a
	// StepFault at step S targets the worker's S-th *wire* frame and
	// schedules written against low steps fire regardless of how many
	// self-flushes preceded them. Both are touched only by the worker's own
	// goroutine. flushSeq is int64 so the runaway bound comparison stays
	// exact on 32-bit platforms.
	flushSeq int64
	sendSeq  int

	procTime  time.Duration
	processed int64
	produced  int64
	counters  map[string]int64
}

// asyncAttempt is one incarnation of the async plane: fresh queues, fresh
// detector, fresh transport. Recovery discards the whole attempt and builds
// a new one from the latest snapshot, so late deliveries from a dying
// transport can only touch the dead attempt's queues.
type asyncAttempt[M any] struct {
	cfg        *Config
	prog       Program[M]
	snapper    Snapshotter
	k          int
	flushEvery int
	maxFrames  int64
	seeded     bool

	stats    *RunStats
	abortPtr *atomic.Pointer[error]
	det      *creditDetector
	workers  []*asyncWorker[M]

	transport asyncTransport[M]
	runCtx    context.Context
	done      <-chan struct{}

	nudge chan struct{}
	fatal chan error
	halt  atomic.Bool
	pause atomic.Bool
	wg    sync.WaitGroup

	// epochNum is the logical "step" workers stamp on their contexts: 0 is
	// Init, and each checkpoint pause opens a new epoch. Per-epoch stat rows
	// keep SimulatedMakespan meaningful (one row per quiescence interval).
	epochNum    atomic.Int64
	ackedFrames atomic.Int64
	lastCkAck   int64 // coordinator-only
}

func newAsyncAttempt[M any](cfg *Config, prog Program[M], stats *RunStats, abortPtr *atomic.Pointer[error], queues [][]Envelope[M], seeded bool, maxSteps int) *asyncAttempt[M] {
	k := cfg.Workers
	fe := cfg.AsyncFlushEvery
	if fe <= 0 {
		fe = defaultAsyncFlushEvery
	}
	// Clamp and multiply in int64: the untyped 1<<40 constant (and the
	// product) would overflow int on 32-bit platforms.
	maxFrames := int64(maxSteps)
	if maxFrames > 1<<40 {
		maxFrames = 1 << 40
	}
	maxFrames *= asyncFramesPerStep
	snapper, _ := any(prog).(Snapshotter)
	a := &asyncAttempt[M]{
		cfg:        cfg,
		prog:       prog,
		snapper:    snapper,
		k:          k,
		flushEvery: fe,
		maxFrames:  maxFrames,
		seeded:     seeded,
		stats:      stats,
		abortPtr:   abortPtr,
		det:        newCreditDetector(k),
		workers:    make([]*asyncWorker[M], k),
		nudge:      make(chan struct{}, 1),
		fatal:      make(chan error, 8),
	}
	a.epochNum.Store(int64(stats.Supersteps) + 1)
	for w := 0; w < k; w++ {
		wk := &asyncWorker[M]{id: w, counters: map[string]int64{}}
		wk.cond = sync.NewCond(&wk.mu)
		if queues != nil && w < len(queues) {
			wk.queue = append([]Envelope[M](nil), queues[w]...)
		}
		a.workers[w] = wk
	}
	return a
}

func (a *asyncAttempt[M]) hooks() asyncHooks[M] {
	return asyncHooks[M]{deliver: a.deliver, ack: a.ack, fatal: a.fatalErr}
}

// deliver appends a received frame to dst's queue. Ordering is load-bearing:
// append, clear the idle flag, and bump the activity epoch all under the
// queue lock, so the detector can never observe an idle worker with a
// non-empty queue.
func (a *asyncAttempt[M]) deliver(dst int, batch []Envelope[M]) {
	if a.halt.Load() {
		// The attempt is tearing down; the frame is covered by the snapshot
		// (or full restart) the recovery path restores from.
		return
	}
	wk := a.workers[dst]
	wk.mu.Lock()
	busy := !a.det.idle[dst].Load() && len(wk.queue) > 0
	wk.queue = append(wk.queue, batch...)
	a.det.enqueued(dst)
	wk.cond.Signal()
	wk.mu.Unlock()
	if busy {
		// The destination was already working through a backlog when this
		// frame landed: expansion is overlapping communication.
		a.cfg.Observer.AddEarlyExpansion()
	}
}

// ack releases src's credit once a frame it sent has been enqueued at its
// destination. Transports must call it strictly after deliver for the same
// frame — that ordering is what makes zero outstanding credit mean "every
// sent frame is in a queue". The nudge is unconditional: over the TCP
// transport acks arrive from reader goroutines, so the final ack — the one
// that brings outstanding credit to zero — can land after the destination
// worker's idle-nudge was already consumed, and without a fresh nudge here
// the coordinator would block on the nudge channel with the plane fully
// quiescent.
func (a *asyncAttempt[M]) ack(src int) {
	a.det.frameAcked(src)
	a.ackedFrames.Add(1)
	a.nudgeCoordinator()
}

func (a *asyncAttempt[M]) ckEvery() int {
	if a.cfg.CheckpointEvery <= 0 {
		return 0
	}
	return a.cfg.CheckpointEvery * a.k
}

func (a *asyncAttempt[M]) nudgeCoordinator() {
	select {
	case a.nudge <- struct{}{}:
	default:
	}
}

func (a *asyncAttempt[M]) fatalErr(err error) {
	select {
	case a.fatal <- err:
	default:
	}
}

func (a *asyncAttempt[M]) buildTransport(ctx context.Context) error {
	t, err := newAsyncTransport[M](ctx, a.cfg.Exchange, a.k, a.cfg, a.hooks())
	if err != nil {
		return err
	}
	a.transport = t
	return nil
}

// runAttempt drives one attempt to a terminal condition: quiescence (nil),
// abort, cancellation, or a fatal transport error (recoverable by the outer
// loop). Workers are always joined and the transport closed before it
// returns, and the final delta merge keeps RunStats consistent either way.
func (a *asyncAttempt[M]) runAttempt(ctx context.Context) error {
	a.runCtx = ctx
	a.done = ctx.Done()
	for w := 0; w < a.k; w++ {
		a.wg.Add(1)
		go a.workerLoop(w)
	}
	err := a.coordinate(ctx)
	a.haltAll()
	a.wg.Wait()
	a.transport.Close()
	a.mergeDeltas()
	return err
}

func (a *asyncAttempt[M]) coordinate(ctx context.Context) error {
	for {
		if p := a.abortPtr.Load(); p != nil {
			a.cfg.Observer.Aborted(int(a.epochNum.Load()), *p)
			return fmt.Errorf("%w: %v", ErrAborted, *p)
		}
		a.cfg.Observer.AddCreditRound()
		if a.det.quiescent() {
			return nil
		}
		if ck := a.ckEvery(); ck > 0 && a.ackedFrames.Load()-a.lastCkAck >= int64(ck) {
			if err := a.checkpointPause(ctx); err != nil {
				return err
			}
			continue
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("bsp: run canceled at step %d: %w", int(a.epochNum.Load()), ctx.Err())
		case err := <-a.fatal:
			return err
		case <-a.nudge:
		}
	}
}

// checkpointPause quiesces the plane and snapshots it: workers flush partial
// batches and park, in-flight credit drains to zero, the queues plus merged
// stats plus program state are sealed into the checkpoint store, and the
// plane resumes. This is the async analogue of the strict barrier snapshot —
// an induced quiescence point instead of a superstep boundary.
func (a *asyncAttempt[M]) checkpointPause(ctx context.Context) error {
	a.pause.Store(true)
	a.broadcastAll()
	for !(a.allPaused() && a.det.outstandingTotal() == 0) {
		if a.abortPtr.Load() != nil {
			// Resume and let the coordinator turn the abort into ErrAborted.
			a.resumeAll()
			return nil
		}
		select {
		case <-ctx.Done():
			a.resumeAll()
			return fmt.Errorf("bsp: run canceled at step %d: %w", int(a.epochNum.Load()), ctx.Err())
		case err := <-a.fatal:
			a.resumeAll()
			return err
		case <-a.nudge:
		}
	}
	a.mergeDeltas()
	inboxes := make([][]Envelope[M], a.k)
	for w, wk := range a.workers {
		wk.mu.Lock()
		inboxes[w] = append([]Envelope[M](nil), wk.queue...)
		wk.mu.Unlock()
	}
	ckStart := time.Now()
	nbytes, err := saveSnapshot[M](a.cfg.CheckpointStore, a.stats.Supersteps, flatInboxes(inboxes), a.stats, a.snapper)
	if err != nil {
		a.resumeAll()
		return fmt.Errorf("bsp: checkpoint at quiescence point %d: %w", a.stats.Supersteps, err)
	}
	a.cfg.Observer.CheckpointSaved(a.stats.Supersteps, nbytes, time.Since(ckStart))
	a.lastCkAck = a.ackedFrames.Load()
	a.epochNum.Add(1)
	a.resumeAll()
	return nil
}

func (a *asyncAttempt[M]) allPaused() bool {
	for _, wk := range a.workers {
		wk.mu.Lock()
		p := wk.paused
		wk.mu.Unlock()
		if !p {
			return false
		}
	}
	return true
}

func (a *asyncAttempt[M]) broadcastAll() {
	for _, wk := range a.workers {
		wk.mu.Lock()
		wk.cond.Broadcast()
		wk.mu.Unlock()
	}
}

func (a *asyncAttempt[M]) haltAll() {
	a.halt.Store(true)
	a.broadcastAll()
}

func (a *asyncAttempt[M]) resumeAll() {
	a.pause.Store(false)
	a.broadcastAll()
}

// mergeDeltas folds every worker's accumulated deltas into RunStats as one
// epoch row and resets them. Called at checkpoint pauses (workers parked)
// and at attempt teardown (workers joined); both give the coordinator the
// lock-ordered visibility it needs.
func (a *asyncAttempt[M]) mergeDeltas() {
	row := make([]time.Duration, a.k)
	var produced, processed int64
	dirty := false
	for w, wk := range a.workers {
		wk.mu.Lock()
		row[w] = wk.procTime
		if wk.procTime != 0 || wk.processed != 0 || wk.produced != 0 || len(wk.counters) > 0 {
			dirty = true
		}
		a.stats.WorkerTime[w] += wk.procTime
		a.stats.WorkerMessages[w] += wk.processed
		produced += wk.produced
		processed += wk.processed
		for name, v := range wk.counters {
			a.stats.Counters[name] += v
			delete(wk.counters, name)
		}
		wk.procTime, wk.processed, wk.produced = 0, 0, 0
		wk.mu.Unlock()
	}
	if !dirty {
		return
	}
	epoch := int(a.epochNum.Load())
	a.stats.PerStepWorkerTime = append(a.stats.PerStepWorkerTime, row)
	a.stats.PerStepMessages = append(a.stats.PerStepMessages, produced)
	a.stats.MessagesTotal += produced
	a.stats.Supersteps++
	a.cfg.Observer.StepComputed(epoch, row, processed, produced)
}

// noteBurst moves the context's per-burst tallies into the worker's guarded
// deltas.
func (a *asyncAttempt[M]) noteBurst(wk *asyncWorker[M], wctx *Context[M], dt time.Duration, processed int64) {
	wk.mu.Lock()
	wk.procTime += dt
	wk.processed += processed
	wk.produced += wctx.sent
	for name, v := range wctx.local {
		wk.counters[name] += v
		delete(wctx.local, name)
	}
	wk.mu.Unlock()
	wctx.sent = 0
}

func outDirty[M any](wctx *Context[M]) bool {
	for _, b := range wctx.out {
		if len(b) > 0 {
			return true
		}
	}
	return false
}

// parkUntilHalt parks a worker that can make no further progress (abort,
// cancellation, or a fatal flush) until the coordinator tears the attempt
// down, so its deltas stay mergeable.
func (a *asyncAttempt[M]) parkUntilHalt(wk *asyncWorker[M]) {
	wk.mu.Lock()
	for !a.halt.Load() {
		wk.cond.Wait()
	}
	wk.mu.Unlock()
}

// bumpSeq advances the worker's flush sequence and enforces the runaway
// bound.
func (a *asyncAttempt[M]) bumpSeq(wk *asyncWorker[M]) bool {
	wk.flushSeq++
	if wk.flushSeq > a.maxFrames {
		a.fatalErr(fmt.Errorf("bsp: worker %d exceeded %d flushed frames (runaway async program; raise MaxSupersteps)", wk.id, a.maxFrames))
		return false
	}
	return true
}

// flushOut ships the context's buffered batches: the self batch straight
// into the worker's own queue (no transport, no credit — the worker re-checks
// its queue before idling), remote batches through the transport under the
// retry policy, each charged to the credit ledger before the send. With
// all=false only batches that reached flushEvery go out; all=true drains
// everything (pre-idle, pre-pause, post-Init).
func (a *asyncAttempt[M]) flushOut(wk *asyncWorker[M], wctx *Context[M], all bool) bool {
	w := wk.id
	if len(wctx.out[w]) > 0 && (all || len(wctx.out[w]) >= a.flushEvery) {
		if !a.bumpSeq(wk) {
			return false
		}
		wk.mu.Lock()
		wk.queue = append(wk.queue, wctx.out[w]...)
		wk.mu.Unlock()
		wctx.out[w] = wctx.out[w][:0]
	}
	for dst := 0; dst < a.k; dst++ {
		if dst == w || len(wctx.out[dst]) == 0 {
			continue
		}
		if !all && len(wctx.out[dst]) < a.flushEvery {
			continue
		}
		if !a.bumpSeq(wk) {
			return false
		}
		wk.sendSeq++
		seq := wk.sendSeq
		cur := a.det.frameSent(w)
		a.cfg.Observer.ObserveFramesInFlight(cur)
		attempt := 0
		err := withRetry(a.runCtx, a.cfg.Retry, func() error {
			attempt++
			serr := a.transport.Send(a.runCtx, w, dst, seq, wctx.out[dst])
			if serr != nil {
				a.cfg.Observer.ExchangeFailed(seq, attempt, serr)
			}
			return serr
		})
		if err != nil {
			// Leave the credit outstanding: the lost frame must poison
			// quiescence so the coordinator can only exit through the fatal
			// channel, never through a false "all delivered" verdict.
			a.fatalErr(fmt.Errorf("bsp: async exchange: frame %d->%d seq %d: %w", w, dst, seq, err))
			return false
		}
		wctx.out[dst] = wctx.out[dst][:0]
	}
	return true
}

// workerLoop is one worker's life: seed (Init) unless restored, then drain
// the queue in bursts, flushing frames as they fill and expanding frames from
// peers as they arrive — no barrier anywhere.
func (a *asyncAttempt[M]) workerLoop(w int) {
	defer a.wg.Done()
	wk := a.workers[w]
	wctx := &Context[M]{
		worker:  w,
		step:    0,
		cfg:     a.cfg,
		out:     make([][]Envelope[M], a.k),
		local:   map[string]int64{},
		aborted: a.abortPtr,
	}
	if !a.seeded {
		start := time.Now()
		a.prog.Init(wctx)
		a.noteBurst(wk, wctx, time.Since(start), 0)
		if !a.flushOut(wk, wctx, true) {
			a.parkUntilHalt(wk)
			return
		}
	}
	var burst []Envelope[M]
	for {
		wk.mu.Lock()
		for len(wk.queue) == 0 && !a.halt.Load() && !a.pause.Load() && a.abortPtr.Load() == nil {
			if outDirty(wctx) {
				wk.mu.Unlock()
				if !a.flushOut(wk, wctx, true) {
					a.parkUntilHalt(wk)
					return
				}
				wk.mu.Lock()
				continue
			}
			a.det.setIdle(w, true)
			a.nudgeCoordinator()
			wk.cond.Wait()
		}
		switch {
		case a.halt.Load():
			wk.mu.Unlock()
			return
		case a.abortPtr.Load() != nil:
			wk.mu.Unlock()
			a.nudgeCoordinator()
			a.parkUntilHalt(wk)
			return
		case a.pause.Load():
			wk.mu.Unlock()
			if !a.flushOut(wk, wctx, true) {
				a.parkUntilHalt(wk)
				return
			}
			wk.mu.Lock()
			if a.pause.Load() && !a.halt.Load() {
				wk.paused = true
				a.nudgeCoordinator()
				for a.pause.Load() && !a.halt.Load() {
					wk.cond.Wait()
				}
				wk.paused = false
			}
			wk.mu.Unlock()
			continue
		}
		burst, wk.queue = wk.queue, burst[:0]
		wk.mu.Unlock()

		wctx.step = int(a.epochNum.Load())
		start := time.Now()
		var processed int64
		lastFlushSent := wctx.sent
		canceled := false
	burstLoop:
		for i := range burst {
			if a.abortPtr.Load() != nil || a.halt.Load() {
				break
			}
			if i&255 == 0 {
				select {
				case <-a.done:
					canceled = true
					break burstLoop
				default:
				}
			}
			a.prog.Process(wctx, burst[i])
			processed++
			if wctx.sent-lastFlushSent >= int64(a.flushEvery) {
				if !a.flushOut(wk, wctx, false) {
					a.noteBurst(wk, wctx, time.Since(start), processed)
					a.parkUntilHalt(wk)
					return
				}
				lastFlushSent = wctx.sent
			}
		}
		a.noteBurst(wk, wctx, time.Since(start), processed)
		if canceled {
			a.nudgeCoordinator()
			a.parkUntilHalt(wk)
			return
		}
	}
}

// runAsync is the async-mode body of RunContext: it owns the
// attempt/recover loop the way the strict path owns its superstep loop.
func runAsync[M any](ctx context.Context, cfg Config, prog Program[M], maxSteps int) (rstats *RunStats, rerr error) {
	k := cfg.Workers
	newStats := func() *RunStats {
		return &RunStats{
			WorkerTime:     make([]time.Duration, k),
			WorkerMessages: make([]int64, k),
			Counters:       map[string]int64{},
		}
	}
	stats := newStats()
	snapper, _ := any(prog).(Snapshotter)
	var abortPtr atomic.Pointer[error]
	var queues [][]Envelope[M]
	seeded := false
	startStep := 0

	restore := func(snap *snapshot[M]) error {
		if len(snap.Stats.WorkerTime) != k || len(snap.Stats.WorkerMessages) != k {
			return fmt.Errorf("bsp: snapshot has %d workers, config has %d",
				len(snap.Stats.WorkerTime), k)
		}
		recoveries := stats.Recoveries
		*stats = snap.Stats
		stats.Recoveries = recoveries
		if stats.Counters == nil {
			stats.Counters = map[string]int64{}
		}
		// A strict compressed run's snapshot keeps its inboxes grouped;
		// rehydrate them into the async plane's flat queue form.
		rows, err := snap.flatRows(k)
		if err != nil {
			return err
		}
		queues = rows
		if snapper != nil {
			if err := snapper.RestoreState(snap.Prog); err != nil {
				return fmt.Errorf("bsp: restoring program state: %w", err)
			}
		}
		return nil
	}

	if cfg.ResumeFrom != nil {
		resumeStart := time.Now()
		snap, err := loadSnapshot[M](cfg.ResumeFrom)
		switch {
		case errors.Is(err, ErrNoCheckpoint):
			// Empty store: fresh start.
		case err != nil:
			return nil, fmt.Errorf("bsp: resume: %w", err)
		default:
			if err := restore(snap); err != nil {
				return nil, fmt.Errorf("bsp: resume: %w", err)
			}
			seeded = true
			startStep = snap.Step
			cfg.Observer.Resumed(startStep, time.Since(resumeStart))
		}
	}

	cfg.Observer.RunStarted(k, startStep)
	defer func() {
		if rstats != nil {
			cfg.Observer.RunEnded(rstats.Supersteps, rstats.MessagesTotal, rstats.Counters,
				rstats.WorkerTime, rstats.WorkerMessages, rerr)
		}
	}()

	for {
		a := newAsyncAttempt[M](&cfg, prog, stats, &abortPtr, queues, seeded, maxSteps)
		if err := a.buildTransport(ctx); err != nil {
			return stats, fmt.Errorf("bsp: async exchange setup: %w", err)
		}
		err := a.runAttempt(ctx)
		if err == nil {
			return stats, nil
		}
		if errors.Is(err, ErrAborted) {
			return stats, err
		}
		if ctx.Err() != nil || cfg.CheckpointStore == nil || stats.Recoveries >= cfg.MaxRecoveries {
			return stats, err
		}
		stats.Recoveries++
		cfg.Observer.RecoveryStarted(stats.Supersteps, err)
		restoreStart := time.Now()
		snap, lerr := loadSnapshot[M](cfg.CheckpointStore)
		switch {
		case errors.Is(lerr, ErrNoCheckpoint):
			// No quiescence snapshot yet: restart from scratch, resetting
			// program-side state with the engine's.
			recoveries := stats.Recoveries
			stats = newStats()
			stats.Recoveries = recoveries
			queues, seeded = nil, false
			if snapper != nil {
				if serr := snapper.RestoreState(nil); serr != nil {
					return stats, fmt.Errorf("bsp: resetting program state: %v (original failure: %w)", serr, err)
				}
			}
			cfg.Observer.RestartedFromScratch(stats.Supersteps)
		case lerr != nil:
			return stats, fmt.Errorf("bsp: loading checkpoint: %v (original failure: %w)", lerr, err)
		default:
			if rerr := restore(snap); rerr != nil {
				return stats, rerr
			}
			seeded = true
			cfg.Observer.CheckpointRestored(snap.Step, time.Since(restoreStart))
		}
	}
}
