package bsp

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"psgl/internal/graph"
)

// echoProgram floods: Init seeds one message per owned vertex carrying a TTL;
// Process re-sends with TTL-1 until it reaches zero, counting deliveries.
type echoProgram struct {
	vertices int
	ttl      int
	part     graph.Partition
	mu       sync.Mutex
	seen     map[graph.VertexID]int
}

func (p *echoProgram) Init(ctx *Context[int]) {
	for v := 0; v < p.vertices; v++ {
		if p.part.Owner(graph.VertexID(v)) == ctx.Worker() {
			ctx.Send(graph.VertexID(v), p.ttl)
		}
	}
}

func (p *echoProgram) Process(ctx *Context[int], env Envelope[int]) {
	ctx.AddCounter("delivered", 1)
	p.mu.Lock()
	p.seen[env.Dest]++
	p.mu.Unlock()
	if env.Msg > 0 {
		ctx.Send((env.Dest+1)%graph.VertexID(p.vertices), env.Msg-1)
	}
}

func newEcho(vertices, ttl, workers int) (*echoProgram, Config) {
	part := graph.NewPartition(workers, 7)
	prog := &echoProgram{vertices: vertices, ttl: ttl, part: part, seen: map[graph.VertexID]int{}}
	cfg := Config{Workers: workers, Owner: func(v graph.VertexID) int { return part.Owner(v) }}
	return prog, cfg
}

func TestRunDeliversAllMessages(t *testing.T) {
	prog, cfg := newEcho(100, 5, 4)
	stats, err := Run[int](cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	// Each of 100 chains delivers ttl+1 = 6 messages.
	if stats.Counters["delivered"] != 600 {
		t.Fatalf("delivered = %d, want 600", stats.Counters["delivered"])
	}
	if stats.MessagesTotal != 600 {
		t.Fatalf("MessagesTotal = %d, want 600", stats.MessagesTotal)
	}
	// Init + 5 forwarding supersteps + final empty-producing superstep.
	if stats.Supersteps != 7 {
		t.Fatalf("Supersteps = %d, want 7", stats.Supersteps)
	}
}

func TestRunRoutesToOwner(t *testing.T) {
	// Process must only see messages whose Dest the worker owns.
	workers := 5
	part := graph.NewPartition(workers, 3)
	var mu sync.Mutex
	misrouted := 0
	prog := &funcProgram[int]{
		init: func(ctx *Context[int]) {
			if ctx.Worker() == 0 {
				for v := 0; v < 200; v++ {
					ctx.Send(graph.VertexID(v), 0)
				}
			}
		},
		process: func(ctx *Context[int], env Envelope[int]) {
			if part.Owner(env.Dest) != ctx.Worker() {
				mu.Lock()
				misrouted++
				mu.Unlock()
			}
		},
	}
	cfg := Config{Workers: workers, Owner: func(v graph.VertexID) int { return part.Owner(v) }}
	if _, err := Run[int](cfg, prog); err != nil {
		t.Fatal(err)
	}
	if misrouted != 0 {
		t.Fatalf("%d messages misrouted", misrouted)
	}
}

type funcProgram[M any] struct {
	init    func(*Context[M])
	process func(*Context[M], Envelope[M])
}

func (p *funcProgram[M]) Init(ctx *Context[M]) { p.init(ctx) }
func (p *funcProgram[M]) Process(ctx *Context[M], env Envelope[M]) {
	p.process(ctx, env)
}

func TestRunEmptyProgramTerminates(t *testing.T) {
	prog := &funcProgram[int]{
		init:    func(*Context[int]) {},
		process: func(*Context[int], Envelope[int]) {},
	}
	cfg := Config{Workers: 3, Owner: func(graph.VertexID) int { return 0 }}
	stats, err := Run[int](cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Supersteps != 1 || stats.MessagesTotal != 0 {
		t.Fatalf("empty program: steps=%d msgs=%d", stats.Supersteps, stats.MessagesTotal)
	}
}

func TestAbortStopsRun(t *testing.T) {
	boom := errors.New("boom")
	prog := &funcProgram[int]{
		init: func(ctx *Context[int]) { ctx.Send(0, 1) },
		process: func(ctx *Context[int], env Envelope[int]) {
			ctx.Abort(boom)
			ctx.Send(0, 1) // keeps producing; abort must still win
		},
	}
	cfg := Config{Workers: 2, Owner: func(graph.VertexID) int { return 0 }}
	_, err := Run[int](cfg, prog)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
}

func TestMaxSuperstepsGuard(t *testing.T) {
	// An infinite program must run exactly MaxSupersteps supersteps — not
	// MaxSupersteps+1 (the historical off-by-one).
	var calls atomic.Int64
	prog := &funcProgram[int]{
		init: func(ctx *Context[int]) { ctx.Send(0, 1) },
		process: func(ctx *Context[int], env Envelope[int]) {
			calls.Add(1)
			ctx.Send(0, 1)
		},
	}
	cfg := Config{Workers: 1, Owner: func(graph.VertexID) int { return 0 }, MaxSupersteps: 10}
	stats, err := Run[int](cfg, prog)
	if err == nil {
		t.Fatal("infinite program should hit the superstep guard")
	}
	if stats.Supersteps != 10 {
		t.Fatalf("Supersteps = %d, want exactly 10", stats.Supersteps)
	}
	// Superstep 0 is Init; supersteps 1..9 each process one message.
	if calls.Load() != 9 {
		t.Fatalf("Process calls = %d, want exactly 9", calls.Load())
	}
}

func TestConfigValidation(t *testing.T) {
	prog := &funcProgram[int]{init: func(*Context[int]) {}, process: func(*Context[int], Envelope[int]) {}}
	if _, err := Run[int](Config{Workers: 0, Owner: func(graph.VertexID) int { return 0 }}, prog); err == nil {
		t.Error("Workers=0 accepted")
	}
	if _, err := Run[int](Config{Workers: 1}, prog); err == nil {
		t.Error("nil Owner accepted")
	}
}

func TestStatsShape(t *testing.T) {
	prog, cfg := newEcho(50, 3, 4)
	stats, err := Run[int](cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.WorkerTime) != 4 || len(stats.WorkerMessages) != 4 {
		t.Fatal("per-worker stats wrong length")
	}
	if len(stats.PerStepWorkerTime) != stats.Supersteps {
		t.Fatalf("PerStepWorkerTime has %d steps, want %d", len(stats.PerStepWorkerTime), stats.Supersteps)
	}
	var total int64
	for _, m := range stats.WorkerMessages {
		total += m
	}
	if total != stats.MessagesTotal {
		t.Fatalf("worker message sum %d != total %d", total, stats.MessagesTotal)
	}
	if stats.SimulatedMakespan() < 0 {
		t.Fatal("negative makespan")
	}
	if len(stats.PerStepMessages) != stats.Supersteps {
		t.Fatal("PerStepMessages length mismatch")
	}
}

func TestSimulatedMakespanIsSumOfStepMaxima(t *testing.T) {
	stats := &RunStats{
		PerStepWorkerTime: [][]time.Duration{
			{3 * time.Millisecond, 7 * time.Millisecond},
			{10 * time.Millisecond, 1 * time.Millisecond},
		},
	}
	if got := stats.SimulatedMakespan(); got != 17*time.Millisecond {
		t.Fatalf("SimulatedMakespan = %v, want 17ms", got)
	}
}

func TestTCPExchangeMatchesLocal(t *testing.T) {
	runWith := func(factory ExchangeFactory) *RunStats {
		prog, cfg := newEcho(60, 4, 3)
		cfg.Exchange = factory
		stats, err := Run[int](cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	local := runWith(nil)
	tcp := runWith(NewTCPExchangeFactory())
	if local.MessagesTotal != tcp.MessagesTotal {
		t.Fatalf("message totals differ: local=%d tcp=%d", local.MessagesTotal, tcp.MessagesTotal)
	}
	if local.Supersteps != tcp.Supersteps {
		t.Fatalf("supersteps differ: local=%d tcp=%d", local.Supersteps, tcp.Supersteps)
	}
	if local.Counters["delivered"] != tcp.Counters["delivered"] {
		t.Fatalf("delivered differ: local=%d tcp=%d",
			local.Counters["delivered"], tcp.Counters["delivered"])
	}
}

func TestTCPExchangeSingleWorker(t *testing.T) {
	prog, cfg := newEcho(20, 2, 1)
	cfg.Exchange = NewTCPExchangeFactory()
	stats, err := Run[int](cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Counters["delivered"] != 60 {
		t.Fatalf("delivered = %d, want 60", stats.Counters["delivered"])
	}
}

type structMsg struct {
	Mapping []int32
	Next    int8
	Mask    uint32
}

func TestTCPExchangeStructMessages(t *testing.T) {
	// Gpsi-shaped struct messages must survive the gob round trip intact.
	var mu sync.Mutex
	var received []structMsg
	prog := &funcProgram[structMsg]{
		init: func(ctx *Context[structMsg]) {
			if ctx.Worker() == 0 {
				ctx.Send(5, structMsg{Mapping: []int32{1, -1, 3}, Next: 2, Mask: 0xdead})
			}
		},
		process: func(ctx *Context[structMsg], env Envelope[structMsg]) {
			mu.Lock()
			received = append(received, env.Msg)
			mu.Unlock()
		},
	}
	part := graph.NewPartition(2, 1)
	cfg := Config{
		Workers:  2,
		Owner:    func(v graph.VertexID) int { return part.Owner(v) },
		Exchange: NewTCPExchangeFactory(),
	}
	if _, err := Run[structMsg](cfg, prog); err != nil {
		t.Fatal(err)
	}
	if len(received) != 1 {
		t.Fatalf("received %d messages, want 1", len(received))
	}
	got := received[0]
	if got.Next != 2 || got.Mask != 0xdead || len(got.Mapping) != 3 || got.Mapping[2] != 3 {
		t.Fatalf("struct mangled in transit: %+v", got)
	}
}

func BenchmarkLocalExchange(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prog, cfg := newEcho(500, 3, 4)
		if _, err := Run[int](cfg, prog); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTCPExchange(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prog, cfg := newEcho(500, 3, 4)
		cfg.Exchange = NewTCPExchangeFactory()
		if _, err := Run[int](cfg, prog); err != nil {
			b.Fatal(err)
		}
	}
}
