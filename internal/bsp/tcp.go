package bsp

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"psgl/internal/obs"
)

// TCPConfig tunes the hardened loopback TCP exchange. The zero value gets
// conservative defaults; every timeout exists so that a partial failure
// surfaces as an error instead of a hang.
type TCPConfig struct {
	// DialTimeout bounds each mesh dial. 0 means 5s.
	DialTimeout time.Duration
	// SetupTimeout bounds the whole K×K mesh setup — accepts plus
	// handshakes. A failed dial additionally closes the listener so setup
	// fails fast rather than waiting the timeout out. 0 means 15s.
	SetupTimeout time.Duration
	// FrameTimeout is the per-frame read/write deadline during Exchange; a
	// context with an earlier deadline wins. 0 means 30s.
	FrameTimeout time.Duration
}

func (c TCPConfig) withDefaults() TCPConfig {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.SetupTimeout <= 0 {
		c.SetupTimeout = 15 * time.Second
	}
	if c.FrameTimeout <= 0 {
		c.FrameTimeout = 30 * time.Second
	}
	return c
}

// NewTCPExchangeFactory returns an ExchangeFactory that routes every
// inter-worker message batch through real loopback TCP connections — the
// closest single-machine analogue of the cluster deployment the paper ran
// on. Messages between a worker and itself skip the network, mirroring how
// Giraph delivers local messages in memory.
//
// Message types whose pointer implements WireMessage (the engine's Gpsi
// does) travel as compact length-prefixed binary frames with pooled
// buffers; any other type must be gob-encodable (exported fields) and uses
// gob streams. Setup, the handshakes, and every frame are bounded by
// TCPConfig deadlines (defaults here); a mesh failure therefore surfaces as
// an error at the barrier, where Run's retry and checkpoint-restore
// machinery can recover it.
func NewTCPExchangeFactory() ExchangeFactory { return tcpFactory{} }

// NewTCPExchangeFactoryWithConfig is NewTCPExchangeFactory with explicit
// timeouts.
func NewTCPExchangeFactoryWithConfig(cfg TCPConfig) ExchangeFactory {
	return tcpFactory{cfg: cfg}
}

type tcpFactory struct{ cfg TCPConfig }

func (tcpFactory) kind() string { return "tcp" }

func newExchangeFromFactory[M any](ctx context.Context, f ExchangeFactory, workers int, o *obs.Observer, compress bool) (Exchange[M], error) {
	switch ff := f.(type) {
	case nil:
		if compress && messageIsWire[M]() {
			return compressedLocalExchange[M]{}, nil
		}
		return localExchange[M]{}, nil
	case tcpFactory:
		return newTCPExchange[M](ctx, workers, ff.cfg.withDefaults(), o, compress)
	case faultyFactory:
		inner, err := newExchangeFromFactory[M](ctx, ff.inner, workers, o, compress)
		if err != nil {
			return nil, err
		}
		return newFaultyExchange[M](inner, ff.fc, ff.state), nil
	case *ScheduledFaultFactory:
		inner, err := newExchangeFromFactory[M](ctx, ff.inner, workers, o, compress)
		if err != nil {
			return nil, err
		}
		return newScheduledExchange[M](inner, ff.state), nil
	default:
		return nil, fmt.Errorf("bsp: unknown exchange factory %q", f.kind())
	}
}

// frame is the gob-mode wire unit: one superstep's batch from one worker to
// another. Wire-mode frames are encoded by hand in wire.go instead.
type frame[M any] struct {
	Step  int
	Batch []Envelope[M]
}

type tcpExchange[M any] struct {
	workers  int
	cfg      TCPConfig
	wire     bool // *M implements WireMessage: binary frames instead of gob
	compress bool // front code wire frames (requires wire)
	obs      *obs.Observer
	listener net.Listener
	// enc[src][dst] / dec[dst][src] wrap the K×K mesh in gob mode (nil on
	// the diagonal and in wire mode); in wire mode brIn[dst][src] buffers
	// the inbound side. connOut/connIn hold the conns so Exchange can arm
	// per-frame deadlines on them.
	enc     [][]*gob.Encoder
	dec     [][]*gob.Decoder
	brIn    [][]*bufio.Reader
	connOut [][]net.Conn
	connIn  [][]net.Conn
	// frameDeadline is the deadline of the Exchange call in flight; Run
	// issues at most one Exchange at a time, so a plain field suffices.
	frameDeadline time.Time
}

// testDialHook, when non-nil, replaces the mesh dialer. Tests use it to
// inject dial failures and black-hole peers.
var testDialHook func(src, dst int, addr string, timeout time.Duration) (net.Conn, error)

func dialPair(ctx context.Context, src, dst int, addr string, timeout time.Duration) (net.Conn, error) {
	if testDialHook != nil {
		return testDialHook(src, dst, addr, timeout)
	}
	d := net.Dialer{Timeout: timeout}
	return d.DialContext(ctx, "tcp", addr)
}

// The handshake identifying an ordered pair is 8 raw little-endian bytes
// (src, dst as int32). Raw rather than gob so the server reads exactly the
// handshake and nothing more — a gob decoder's internal buffering could
// swallow the front of the first wire-mode frame.
func appendHandshake(dst []byte, src, dstW int) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(src))
	return binary.LittleEndian.AppendUint32(dst, uint32(dstW))
}

func newTCPExchange[M any](ctx context.Context, workers int, cfg TCPConfig, o *obs.Observer, compress bool) (Exchange[M], error) {
	return newTCPMesh[M](ctx, workers, cfg, o, compress)
}

// newTCPMesh builds the K×K loopback connection mesh both TCP modes run on:
// the strict barriered Exchange drives it frame-by-frame per superstep, and
// the async transport (tcpasync.go) attaches persistent reader goroutines to
// the same conns.
func newTCPMesh[M any](ctx context.Context, workers int, cfg TCPConfig, o *obs.Observer, compress bool) (*tcpExchange[M], error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("bsp: tcp exchange setup canceled: %w", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("bsp: tcp exchange listen: %w", err)
	}
	wire := messageIsWire[M]()
	ex := &tcpExchange[M]{workers: workers, cfg: cfg, wire: wire, compress: compress && wire, obs: o, listener: ln}
	ex.enc = make([][]*gob.Encoder, workers)
	ex.dec = make([][]*gob.Decoder, workers)
	ex.brIn = make([][]*bufio.Reader, workers)
	ex.connOut = make([][]net.Conn, workers)
	ex.connIn = make([][]net.Conn, workers)
	for i := 0; i < workers; i++ {
		ex.enc[i] = make([]*gob.Encoder, workers)
		ex.dec[i] = make([]*gob.Decoder, workers)
		ex.brIn[i] = make([]*bufio.Reader, workers)
		ex.connOut[i] = make([]net.Conn, workers)
		ex.connIn[i] = make([]net.Conn, workers)
	}

	deadline := time.Now().Add(cfg.SetupTimeout)
	if tl, ok := ln.(*net.TCPListener); ok {
		// Accept can never block past the setup deadline.
		tl.SetDeadline(deadline)
	}

	nPairs := workers*workers - workers
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []error
	)
	// fail records the error and closes the listener, so the Accept loop
	// unblocks immediately instead of waiting forever for connections that
	// will never arrive (the pre-hardening deadlock).
	fail := func(err error) {
		mu.Lock()
		errs = append(errs, err)
		mu.Unlock()
		ln.Close()
	}

	// Watchdog: a context cancellation mid-setup closes the listener, so the
	// Accept loop below exits promptly (net.ErrClosed) instead of serving out
	// the setup deadline and leaking until then. setupDone stops the watchdog
	// itself once setup resolves either way.
	setupDone := make(chan struct{})
	defer close(setupDone)
	go func() {
		select {
		case <-ctx.Done():
			o.AddSetupAbort()
			ln.Close()
		case <-setupDone:
		}
	}()

	// Server side: accept one connection per ordered pair, identify it by
	// the handshake, and keep its reader on the destination side.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < nPairs; i++ {
			conn, err := ln.Accept()
			if err != nil {
				fail(fmt.Errorf("accept: %w", err))
				return
			}
			conn.SetReadDeadline(deadline)
			var hs [8]byte
			if _, err := io.ReadFull(conn, hs[:]); err != nil {
				conn.Close()
				fail(fmt.Errorf("handshake decode: %w", err))
				return
			}
			src := int(int32(binary.LittleEndian.Uint32(hs[:4])))
			dst := int(int32(binary.LittleEndian.Uint32(hs[4:])))
			if src < 0 || src >= workers || dst < 0 || dst >= workers || src == dst {
				conn.Close()
				fail(fmt.Errorf("handshake names invalid pair %d->%d", src, dst))
				return
			}
			conn.SetReadDeadline(time.Time{})
			mu.Lock()
			dup := ex.connIn[dst][src] != nil
			if !dup {
				ex.connIn[dst][src] = conn
				if ex.wire {
					ex.brIn[dst][src] = bufio.NewReaderSize(conn, 64<<10)
				} else if ex.obs != nil {
					// Gob frames have no length prefix, so byte accounting
					// happens below the decoder.
					ex.dec[dst][src] = gob.NewDecoder(countingReader{conn, ex.obs})
				} else {
					ex.dec[dst][src] = gob.NewDecoder(conn)
				}
			}
			mu.Unlock()
			if dup {
				conn.Close()
				fail(fmt.Errorf("duplicate handshake for pair %d->%d", src, dst))
				return
			}
		}
	}()

	// Client side: dial one connection per ordered (src, dst) pair.
	addr := ln.Addr().String()
	for src := 0; src < workers; src++ {
		for dst := 0; dst < workers; dst++ {
			if src == dst {
				continue
			}
			wg.Add(1)
			go func(src, dst int) {
				defer wg.Done()
				conn, err := dialPair(ctx, src, dst, addr, cfg.DialTimeout)
				if err != nil {
					fail(fmt.Errorf("dial %d->%d: %w", src, dst, err))
					return
				}
				conn.SetWriteDeadline(deadline)
				if _, err := conn.Write(appendHandshake(nil, src, dst)); err != nil {
					conn.Close()
					fail(fmt.Errorf("handshake encode %d->%d: %w", src, dst, err))
					return
				}
				conn.SetWriteDeadline(time.Time{})
				mu.Lock()
				ex.connOut[src][dst] = conn
				if !ex.wire {
					if ex.obs != nil {
						ex.enc[src][dst] = gob.NewEncoder(countingWriter{conn, ex.obs})
					} else {
						ex.enc[src][dst] = gob.NewEncoder(conn)
					}
				}
				mu.Unlock()
			}(src, dst)
		}
	}
	wg.Wait()
	if cerr := ctx.Err(); cerr != nil {
		// The watchdog tore setup down: report the cancellation, not the
		// net.ErrClosed noise it caused.
		ex.Close()
		return nil, fmt.Errorf("bsp: tcp exchange setup canceled: %w", cerr)
	}
	mu.Lock()
	err = firstSetupError(errs)
	mu.Unlock()
	if err == nil {
		// Belt and braces: every off-diagonal endpoint must be wired.
		for src := 0; src < workers && err == nil; src++ {
			for dst := 0; dst < workers; dst++ {
				if src != dst && (ex.connOut[src][dst] == nil || ex.connIn[dst][src] == nil) {
					err = fmt.Errorf("mesh incomplete: pair %d->%d never connected", src, dst)
					break
				}
			}
		}
	}
	if err != nil {
		ex.Close()
		return nil, fmt.Errorf("bsp: tcp exchange setup: %w", err)
	}
	return ex, nil
}

// firstSetupError picks the root cause: a listener closed by fail() makes
// the Accept loop report net.ErrClosed too, which would otherwise mask the
// dial or handshake error that triggered the shutdown.
func firstSetupError(errs []error) error {
	if len(errs) == 0 {
		return nil
	}
	for _, err := range errs {
		if !errors.Is(err, net.ErrClosed) {
			return err
		}
	}
	return errs[0]
}

// countingWriter / countingReader feed the observer's raw byte counters on
// the gob path, where frames carry no length prefix to count from.
type countingWriter struct {
	w io.Writer
	o *obs.Observer
}

func (cw countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.o.AddBytesSent(int64(n))
	return n, err
}

type countingReader struct {
	r io.Reader
	o *obs.Observer
}

func (cr countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.o.AddBytesRecv(int64(n))
	return n, err
}

// sendFrame writes one batch to the (src, dst) conn in the exchange's mode.
func (ex *tcpExchange[M]) sendFrame(src, dst, step int, batch []Envelope[M]) error {
	return ex.sendFrameAt(src, dst, step, batch, ex.frameDeadline)
}

// sendFrameAt is sendFrame with an explicit write deadline, for callers that
// don't run under the barrier's shared frameDeadline (the async transport
// arms a fresh deadline per frame). In wire mode the whole frame is staged
// in a pooled buffer and written with a single syscall.
func (ex *tcpExchange[M]) sendFrameAt(src, dst, step int, batch []Envelope[M], deadline time.Time) error {
	ex.connOut[src][dst].SetWriteDeadline(deadline)
	if !ex.wire {
		if err := ex.enc[src][dst].Encode(frame[M]{Step: step, Batch: batch}); err != nil {
			return err
		}
		ex.obs.AddFrameSent(false, 0) // bytes counted by countingWriter
		return nil
	}
	bp := getWireBuf(0)
	raw := 0
	if ex.compress && len(batch) >= compressMinBatch {
		// One compressed frame per send — never chunked here, because the
		// async credit detector counts exactly one ack per transport send.
		*bp, raw = appendCompressedFrames(*bp, step, batch, 0)
	} else {
		*bp = AppendWireFrame(*bp, step, batch)
	}
	n := len(*bp)
	_, err := ex.connOut[src][dst].Write(*bp)
	putWireBuf(bp)
	if err == nil {
		ex.obs.AddFrameSent(true, int64(n))
		if raw > 0 {
			ex.obs.AddCompressedFrame(int64(n), int64(raw))
		}
	}
	return err
}

// recvFrame reads one batch from the (dst, src) conn in the exchange's mode.
func (ex *tcpExchange[M]) recvFrame(dst, src int) (int, []Envelope[M], error) {
	return ex.recvFrameAt(dst, src, ex.frameDeadline)
}

// recvFrameAt is recvFrame with an explicit read deadline; the async
// transport's reader loops pass the zero time (block until a frame arrives
// or the conn is closed).
func (ex *tcpExchange[M]) recvFrameAt(dst, src int, deadline time.Time) (int, []Envelope[M], error) {
	ex.connIn[dst][src].SetReadDeadline(deadline)
	if !ex.wire {
		var fr frame[M]
		if err := ex.dec[dst][src].Decode(&fr); err != nil {
			return 0, nil, err
		}
		ex.obs.AddFrameRecv(false, 0) // bytes counted by countingReader
		return fr.Step, fr.Batch, nil
	}
	step, more, batch, n, err := readFrame[M](ex.brIn[dst][src])
	if err == nil && more {
		// Continuation chunks only travel inside the grouped barrier path.
		return 0, nil, fmt.Errorf("unexpected continuation frame")
	}
	if err == nil {
		ex.obs.AddFrameRecv(true, int64(n))
	}
	return step, batch, err
}

func (ex *tcpExchange[M]) Exchange(ctx context.Context, step int, outAll [][][]Envelope[M]) ([][]Envelope[M], error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	k := ex.workers
	deadline := time.Now().Add(ex.cfg.FrameTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	ex.frameDeadline = deadline
	res := make([][]Envelope[M], k)
	errs := make(chan error, 2*k)
	var wg sync.WaitGroup

	// Senders: each worker writes its K-1 remote batches.
	for src := 0; src < k; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for dst := 0; dst < k; dst++ {
				if dst == src {
					continue
				}
				if err := ex.sendFrame(src, dst, step, outAll[src][dst]); err != nil {
					errs <- fmt.Errorf("send %d->%d: %w", src, dst, err)
					return
				}
			}
		}(src)
	}
	// Receivers: each worker reads K-1 remote batches and splices its own
	// local batch in at its source position, so the merged inbox order is
	// byte-identical to the in-process exchange's.
	for dst := 0; dst < k; dst++ {
		wg.Add(1)
		go func(dst int) {
			defer wg.Done()
			var buf []Envelope[M]
			for src := 0; src < k; src++ {
				if src == dst {
					buf = append(buf, outAll[dst][dst]...)
					continue
				}
				frStep, batch, err := ex.recvFrame(dst, src)
				if err != nil {
					errs <- fmt.Errorf("recv %d<-%d: %w", dst, src, err)
					return
				}
				if frStep != step {
					errs <- fmt.Errorf("recv %d<-%d: step skew %d != %d", dst, src, frStep, step)
					return
				}
				buf = append(buf, batch...)
			}
			res[dst] = buf
		}(dst)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	return res, nil
}

// sendGroupedFrames writes one barrier batch as front-coded chunks (flat when
// the batch is too small to pay for itself), staged in a pooled buffer and
// written with a single syscall.
func (ex *tcpExchange[M]) sendGroupedFrames(src, dst, step int, batch []Envelope[M]) error {
	ex.connOut[src][dst].SetWriteDeadline(ex.frameDeadline)
	bp := getWireBuf(0)
	raw := 0
	if len(batch) >= compressMinBatch {
		*bp, raw = appendCompressedFrames(*bp, step, batch, compressedChunk)
	} else {
		*bp = AppendWireFrame(*bp, step, batch)
	}
	n := len(*bp)
	_, err := ex.connOut[src][dst].Write(*bp)
	putWireBuf(bp)
	if err == nil {
		ex.obs.AddFrameSent(true, int64(n))
		if raw > 0 {
			ex.obs.AddCompressedFrame(int64(n), int64(raw))
		}
	}
	return err
}

// recvGroupedFrames reads one barrier batch into ib: compressed chunks are
// retained encoded (the run loop decodes them lazily), a flat fallback frame
// is decoded in place. The continuation bit drives the chunk loop.
func (ex *tcpExchange[M]) recvGroupedFrames(dst, src, step int, ib *Inbox[M]) error {
	for {
		ex.connIn[dst][src].SetReadDeadline(ex.frameDeadline)
		payload, n, err := readFramePayload(ex.brIn[dst][src])
		if err != nil {
			return err
		}
		ex.obs.AddFrameRecv(true, int64(n))
		if !framePayloadIsCompressed(payload) {
			frStep, batch, err := DecodeWireFrame[M](payload)
			if err != nil {
				return err
			}
			if frStep != step {
				return fmt.Errorf("step skew %d != %d", frStep, step)
			}
			ib.Envs = append(ib.Envs, batch...)
			return nil
		}
		word := binary.LittleEndian.Uint32(payload)
		if frStep := int(word & compressedStepMask); frStep != step&compressedStepMask {
			return fmt.Errorf("step skew %d != %d", frStep, step)
		}
		ib.Frames = append(ib.Frames, payload)
		if word&continuationFlag == 0 {
			return nil
		}
	}
}

// ExchangeGrouped is the compressed-mode barrier: batches travel front coded
// and land in the inbox still encoded. Local (src == dst) batches skip the
// network but are front coded all the same, so the inbox's peak-RSS bound
// holds regardless of where a message came from.
func (ex *tcpExchange[M]) ExchangeGrouped(ctx context.Context, step int, outAll [][][]Envelope[M]) ([]Inbox[M], error) {
	if !ex.compress {
		flat, err := ex.Exchange(ctx, step, outAll)
		if err != nil {
			return nil, err
		}
		return flatInboxes(flat), nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	k := ex.workers
	deadline := time.Now().Add(ex.cfg.FrameTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	ex.frameDeadline = deadline
	res := make([]Inbox[M], k)
	errs := make(chan error, 2*k)
	var wg sync.WaitGroup

	for src := 0; src < k; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for dst := 0; dst < k; dst++ {
				if dst == src {
					continue
				}
				if err := ex.sendGroupedFrames(src, dst, step, outAll[src][dst]); err != nil {
					errs <- fmt.Errorf("send %d->%d: %w", src, dst, err)
					return
				}
			}
		}(src)
	}
	// Receivers splice the local batch in at its source position, keeping the
	// merged inbox order identical to the in-process grouped exchange's.
	for dst := 0; dst < k; dst++ {
		wg.Add(1)
		go func(dst int) {
			defer wg.Done()
			for src := 0; src < k; src++ {
				if src == dst {
					batch := outAll[dst][dst]
					if len(batch) == 0 {
						continue
					}
					if len(batch) < compressMinBatch {
						res[dst].Envs = append(res[dst].Envs, batch...)
						continue
					}
					frames, _ := compressBatch(step, batch, compressedChunk)
					res[dst].Frames = append(res[dst].Frames, frames...)
					continue
				}
				if err := ex.recvGroupedFrames(dst, src, step, &res[dst]); err != nil {
					errs <- fmt.Errorf("recv %d<-%d: %w", dst, src, err)
					return
				}
			}
		}(dst)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	return res, nil
}

func (ex *tcpExchange[M]) Close() error {
	for _, row := range ex.connOut {
		for _, c := range row {
			if c != nil {
				c.Close()
			}
		}
	}
	for _, row := range ex.connIn {
		for _, c := range row {
			if c != nil {
				c.Close()
			}
		}
	}
	if ex.listener != nil {
		return ex.listener.Close()
	}
	return nil
}
