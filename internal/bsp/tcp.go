package bsp

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// TCPConfig tunes the hardened loopback TCP exchange. The zero value gets
// conservative defaults; every timeout exists so that a partial failure
// surfaces as an error instead of a hang.
type TCPConfig struct {
	// DialTimeout bounds each mesh dial. 0 means 5s.
	DialTimeout time.Duration
	// SetupTimeout bounds the whole K×K mesh setup — accepts plus
	// handshakes. A failed dial additionally closes the listener so setup
	// fails fast rather than waiting the timeout out. 0 means 15s.
	SetupTimeout time.Duration
	// FrameTimeout is the per-frame read/write deadline during Exchange; a
	// context with an earlier deadline wins. 0 means 30s.
	FrameTimeout time.Duration
}

func (c TCPConfig) withDefaults() TCPConfig {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.SetupTimeout <= 0 {
		c.SetupTimeout = 15 * time.Second
	}
	if c.FrameTimeout <= 0 {
		c.FrameTimeout = 30 * time.Second
	}
	return c
}

// NewTCPExchangeFactory returns an ExchangeFactory that routes every
// inter-worker message batch through real loopback TCP connections with gob
// encoding — the closest single-machine analogue of the cluster deployment
// the paper ran on. Messages between a worker and itself skip the network,
// mirroring how Giraph delivers local messages in memory.
//
// The message type M must be gob-encodable (exported fields). Setup, the
// handshakes, and every frame are bounded by TCPConfig deadlines (defaults
// here); a mesh failure therefore surfaces as an error at the barrier,
// where Run's retry and checkpoint-restore machinery can recover it.
func NewTCPExchangeFactory() ExchangeFactory { return tcpFactory{} }

// NewTCPExchangeFactoryWithConfig is NewTCPExchangeFactory with explicit
// timeouts.
func NewTCPExchangeFactoryWithConfig(cfg TCPConfig) ExchangeFactory {
	return tcpFactory{cfg: cfg}
}

type tcpFactory struct{ cfg TCPConfig }

func (tcpFactory) kind() string { return "tcp" }

func newExchangeFromFactory[M any](f ExchangeFactory, workers int) (Exchange[M], error) {
	switch ff := f.(type) {
	case nil:
		return localExchange[M]{}, nil
	case tcpFactory:
		return newTCPExchange[M](workers, ff.cfg.withDefaults())
	case faultyFactory:
		inner, err := newExchangeFromFactory[M](ff.inner, workers)
		if err != nil {
			return nil, err
		}
		return newFaultyExchange[M](inner, ff.fc, ff.state), nil
	default:
		return nil, fmt.Errorf("bsp: unknown exchange factory %q", f.kind())
	}
}

// frame is the wire unit: one superstep's batch from one worker to another.
type frame[M any] struct {
	Step  int
	Batch []Envelope[M]
}

type tcpExchange[M any] struct {
	workers  int
	cfg      TCPConfig
	listener net.Listener
	// enc[src][dst] / dec[dst][src] wrap the K×K mesh (nil on the diagonal).
	// connOut/connIn hold the matching conns so Exchange can arm per-frame
	// deadlines on them.
	enc     [][]*gob.Encoder
	dec     [][]*gob.Decoder
	connOut [][]net.Conn
	connIn  [][]net.Conn
}

// testDialHook, when non-nil, replaces the mesh dialer. Tests use it to
// inject dial failures and black-hole peers.
var testDialHook func(src, dst int, addr string, timeout time.Duration) (net.Conn, error)

func dialPair(src, dst int, addr string, timeout time.Duration) (net.Conn, error) {
	if testDialHook != nil {
		return testDialHook(src, dst, addr, timeout)
	}
	return net.DialTimeout("tcp", addr, timeout)
}

func newTCPExchange[M any](workers int, cfg TCPConfig) (Exchange[M], error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("bsp: tcp exchange listen: %w", err)
	}
	ex := &tcpExchange[M]{workers: workers, cfg: cfg, listener: ln}
	ex.enc = make([][]*gob.Encoder, workers)
	ex.dec = make([][]*gob.Decoder, workers)
	ex.connOut = make([][]net.Conn, workers)
	ex.connIn = make([][]net.Conn, workers)
	for i := 0; i < workers; i++ {
		ex.enc[i] = make([]*gob.Encoder, workers)
		ex.dec[i] = make([]*gob.Decoder, workers)
		ex.connOut[i] = make([]net.Conn, workers)
		ex.connIn[i] = make([]net.Conn, workers)
	}

	deadline := time.Now().Add(cfg.SetupTimeout)
	if tl, ok := ln.(*net.TCPListener); ok {
		// Accept can never block past the setup deadline.
		tl.SetDeadline(deadline)
	}

	type handshake struct{ Src, Dst int }
	nPairs := workers*workers - workers
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []error
	)
	// fail records the error and closes the listener, so the Accept loop
	// unblocks immediately instead of waiting forever for connections that
	// will never arrive (the pre-hardening deadlock).
	fail := func(err error) {
		mu.Lock()
		errs = append(errs, err)
		mu.Unlock()
		ln.Close()
	}

	// Server side: accept one connection per ordered pair, identify it by
	// the handshake, and keep its decoder on the destination side.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < nPairs; i++ {
			conn, err := ln.Accept()
			if err != nil {
				fail(fmt.Errorf("accept: %w", err))
				return
			}
			conn.SetReadDeadline(deadline)
			dec := gob.NewDecoder(conn)
			var hs handshake
			if err := dec.Decode(&hs); err != nil {
				conn.Close()
				fail(fmt.Errorf("handshake decode: %w", err))
				return
			}
			if hs.Src < 0 || hs.Src >= workers || hs.Dst < 0 || hs.Dst >= workers || hs.Src == hs.Dst {
				conn.Close()
				fail(fmt.Errorf("handshake names invalid pair %d->%d", hs.Src, hs.Dst))
				return
			}
			conn.SetReadDeadline(time.Time{})
			mu.Lock()
			dup := ex.dec[hs.Dst][hs.Src] != nil
			if !dup {
				ex.dec[hs.Dst][hs.Src] = dec
				ex.connIn[hs.Dst][hs.Src] = conn
			}
			mu.Unlock()
			if dup {
				conn.Close()
				fail(fmt.Errorf("duplicate handshake for pair %d->%d", hs.Src, hs.Dst))
				return
			}
		}
	}()

	// Client side: dial one connection per ordered (src, dst) pair.
	addr := ln.Addr().String()
	for src := 0; src < workers; src++ {
		for dst := 0; dst < workers; dst++ {
			if src == dst {
				continue
			}
			wg.Add(1)
			go func(src, dst int) {
				defer wg.Done()
				conn, err := dialPair(src, dst, addr, cfg.DialTimeout)
				if err != nil {
					fail(fmt.Errorf("dial %d->%d: %w", src, dst, err))
					return
				}
				conn.SetWriteDeadline(deadline)
				enc := gob.NewEncoder(conn)
				if err := enc.Encode(handshake{Src: src, Dst: dst}); err != nil {
					conn.Close()
					fail(fmt.Errorf("handshake encode %d->%d: %w", src, dst, err))
					return
				}
				conn.SetWriteDeadline(time.Time{})
				mu.Lock()
				ex.enc[src][dst] = enc
				ex.connOut[src][dst] = conn
				mu.Unlock()
			}(src, dst)
		}
	}
	wg.Wait()
	mu.Lock()
	err = firstSetupError(errs)
	mu.Unlock()
	if err == nil {
		// Belt and braces: every off-diagonal endpoint must be wired.
		for src := 0; src < workers && err == nil; src++ {
			for dst := 0; dst < workers; dst++ {
				if src != dst && (ex.enc[src][dst] == nil || ex.dec[dst][src] == nil) {
					err = fmt.Errorf("mesh incomplete: pair %d->%d never connected", src, dst)
					break
				}
			}
		}
	}
	if err != nil {
		ex.Close()
		return nil, fmt.Errorf("bsp: tcp exchange setup: %w", err)
	}
	return ex, nil
}

// firstSetupError picks the root cause: a listener closed by fail() makes
// the Accept loop report net.ErrClosed too, which would otherwise mask the
// dial or handshake error that triggered the shutdown.
func firstSetupError(errs []error) error {
	if len(errs) == 0 {
		return nil
	}
	for _, err := range errs {
		if !errors.Is(err, net.ErrClosed) {
			return err
		}
	}
	return errs[0]
}

func (ex *tcpExchange[M]) Exchange(ctx context.Context, step int, outAll [][][]Envelope[M]) ([][]Envelope[M], error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	k := ex.workers
	deadline := time.Now().Add(ex.cfg.FrameTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	res := make([][]Envelope[M], k)
	errs := make(chan error, 2*k)
	var wg sync.WaitGroup

	// Senders: each worker writes its K-1 remote batches.
	for src := 0; src < k; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for dst := 0; dst < k; dst++ {
				if dst == src {
					continue
				}
				ex.connOut[src][dst].SetWriteDeadline(deadline)
				if err := ex.enc[src][dst].Encode(frame[M]{Step: step, Batch: outAll[src][dst]}); err != nil {
					errs <- fmt.Errorf("send %d->%d: %w", src, dst, err)
					return
				}
			}
		}(src)
	}
	// Receivers: each worker reads K-1 remote batches and splices its own
	// local batch in at its source position, so the merged inbox order is
	// byte-identical to the in-process exchange's.
	for dst := 0; dst < k; dst++ {
		wg.Add(1)
		go func(dst int) {
			defer wg.Done()
			var buf []Envelope[M]
			for src := 0; src < k; src++ {
				if src == dst {
					buf = append(buf, outAll[dst][dst]...)
					continue
				}
				ex.connIn[dst][src].SetReadDeadline(deadline)
				var fr frame[M]
				if err := ex.dec[dst][src].Decode(&fr); err != nil {
					errs <- fmt.Errorf("recv %d<-%d: %w", dst, src, err)
					return
				}
				if fr.Step != step {
					errs <- fmt.Errorf("recv %d<-%d: step skew %d != %d", dst, src, fr.Step, step)
					return
				}
				buf = append(buf, fr.Batch...)
			}
			res[dst] = buf
		}(dst)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	return res, nil
}

func (ex *tcpExchange[M]) Close() error {
	for _, row := range ex.connOut {
		for _, c := range row {
			if c != nil {
				c.Close()
			}
		}
	}
	for _, row := range ex.connIn {
		for _, c := range row {
			if c != nil {
				c.Close()
			}
		}
	}
	if ex.listener != nil {
		return ex.listener.Close()
	}
	return nil
}
