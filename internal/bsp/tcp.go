package bsp

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
)

// NewTCPExchangeFactory returns an ExchangeFactory that routes every
// inter-worker message batch through real loopback TCP connections with gob
// encoding — the closest single-machine analogue of the cluster deployment
// the paper ran on. Messages between a worker and itself skip the network,
// mirroring how Giraph delivers local messages in memory.
//
// The message type M must be gob-encodable (exported fields).
func NewTCPExchangeFactory() ExchangeFactory { return tcpFactory{} }

type tcpFactory struct{}

func (tcpFactory) kind() string { return "tcp" }

func newExchangeFromFactory[M any](f ExchangeFactory, workers int) (Exchange[M], error) {
	switch f.(type) {
	case tcpFactory:
		return newTCPExchange[M](workers)
	default:
		return nil, fmt.Errorf("bsp: unknown exchange factory %q", f.kind())
	}
}

// frame is the wire unit: one superstep's batch from one worker to another.
type frame[M any] struct {
	Step  int
	Batch []Envelope[M]
}

type tcpExchange[M any] struct {
	workers  int
	listener net.Listener
	// enc[src][dst] / dec[dst][src] wrap the K×K mesh (nil on the diagonal).
	enc   [][]*gob.Encoder
	dec   [][]*gob.Decoder
	conns []net.Conn
}

func newTCPExchange[M any](workers int) (Exchange[M], error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("bsp: tcp exchange listen: %w", err)
	}
	ex := &tcpExchange[M]{workers: workers, listener: ln}
	ex.enc = make([][]*gob.Encoder, workers)
	ex.dec = make([][]*gob.Decoder, workers)
	for i := 0; i < workers; i++ {
		ex.enc[i] = make([]*gob.Encoder, workers)
		ex.dec[i] = make([]*gob.Decoder, workers)
	}

	type handshake struct{ Src, Dst int }
	nPairs := workers*workers - workers
	errs := make(chan error, 2*nPairs)
	var wg sync.WaitGroup
	var mu sync.Mutex

	// Server side: accept one connection per ordered pair, identify it by
	// the handshake, and keep its decoder on the destination side.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < nPairs; i++ {
			conn, err := ln.Accept()
			if err != nil {
				errs <- err
				return
			}
			dec := gob.NewDecoder(conn)
			var hs handshake
			if err := dec.Decode(&hs); err != nil {
				errs <- fmt.Errorf("handshake decode: %w", err)
				return
			}
			mu.Lock()
			ex.dec[hs.Dst][hs.Src] = dec
			ex.conns = append(ex.conns, conn)
			mu.Unlock()
		}
	}()

	// Client side: dial one connection per ordered (src, dst) pair.
	addr := ln.Addr().String()
	for src := 0; src < workers; src++ {
		for dst := 0; dst < workers; dst++ {
			if src == dst {
				continue
			}
			wg.Add(1)
			go func(src, dst int) {
				defer wg.Done()
				conn, err := net.Dial("tcp", addr)
				if err != nil {
					errs <- err
					return
				}
				enc := gob.NewEncoder(conn)
				if err := enc.Encode(handshake{Src: src, Dst: dst}); err != nil {
					errs <- fmt.Errorf("handshake encode: %w", err)
					return
				}
				mu.Lock()
				ex.enc[src][dst] = enc
				ex.conns = append(ex.conns, conn)
				mu.Unlock()
			}(src, dst)
		}
	}
	wg.Wait()
	select {
	case err := <-errs:
		ex.Close()
		return nil, fmt.Errorf("bsp: tcp exchange setup: %w", err)
	default:
	}
	return ex, nil
}

func (ex *tcpExchange[M]) Exchange(step int, outAll [][][]Envelope[M]) ([][]Envelope[M], error) {
	k := ex.workers
	res := make([][]Envelope[M], k)
	errs := make(chan error, 2*k)
	var wg sync.WaitGroup

	// Senders: each worker writes its K-1 remote batches.
	for src := 0; src < k; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for dst := 0; dst < k; dst++ {
				if dst == src {
					continue
				}
				if err := ex.enc[src][dst].Encode(frame[M]{Step: step, Batch: outAll[src][dst]}); err != nil {
					errs <- fmt.Errorf("send %d->%d: %w", src, dst, err)
					return
				}
			}
		}(src)
	}
	// Receivers: each worker reads K-1 remote batches and merges its own
	// local batch directly.
	for dst := 0; dst < k; dst++ {
		wg.Add(1)
		go func(dst int) {
			defer wg.Done()
			buf := append([]Envelope[M](nil), outAll[dst][dst]...)
			for src := 0; src < k; src++ {
				if src == dst {
					continue
				}
				var fr frame[M]
				if err := ex.dec[dst][src].Decode(&fr); err != nil {
					errs <- fmt.Errorf("recv %d<-%d: %w", dst, src, err)
					return
				}
				if fr.Step != step {
					errs <- fmt.Errorf("recv %d<-%d: step skew %d != %d", dst, src, fr.Step, step)
					return
				}
				buf = append(buf, fr.Batch...)
			}
			res[dst] = buf
		}(dst)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	return res, nil
}

func (ex *tcpExchange[M]) Close() error {
	for _, c := range ex.conns {
		c.Close()
	}
	if ex.listener != nil {
		return ex.listener.Close()
	}
	return nil
}
