package bsp

// Unit battery for the prefix-compressed frame codec: round trips through
// both the GroupWireMessage patch path and the generic WireMessage fallback,
// chunking/continuation, malformed-input rejection, the grouped local and TCP
// exchanges (strict and async), and grouped checkpoint snapshots. The
// differential suites that pin compressed counts against the flat oracle live
// in internal/core, next to the engine.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"psgl/internal/graph"
	"psgl/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden compressed-frame fixtures")

// groupMsg is a fixed-layout test message implementing both WireMessage and
// GroupWireMessage: Key is the heavily shared field and leads the group
// layout, Seq/Flag are the volatile trailer. 13 bytes, canonical.
type groupMsg struct {
	Key  [8]byte
	Seq  uint32
	Flag uint8
}

func (m *groupMsg) AppendWire(dst []byte) []byte {
	dst = append(dst, m.Key[:]...)
	dst = binary.LittleEndian.AppendUint32(dst, m.Seq)
	return append(dst, m.Flag)
}

func (m *groupMsg) DecodeWire(src []byte) ([]byte, error) {
	if len(src) < 13 {
		return nil, fmt.Errorf("groupMsg: truncated (%d bytes)", len(src))
	}
	copy(m.Key[:], src)
	m.Seq = binary.LittleEndian.Uint32(src[8:])
	m.Flag = src[12]
	return src[13:], nil
}

func (m *groupMsg) AppendGroupWire(dst []byte) []byte { return m.AppendWire(dst) }

func (m *groupMsg) DecodeGroupWire(src []byte, shared int) error {
	if len(src) != 13 {
		return fmt.Errorf("groupMsg group wire: %d bytes, want 13", len(src))
	}
	// Key bytes inside the shared prefix are inherited from the seed.
	i0 := shared
	if i0 > 8 {
		i0 = 8
	}
	copy(m.Key[i0:], src[i0:8])
	m.Seq = binary.LittleEndian.Uint32(src[8:])
	m.Flag = src[12]
	return nil
}

// groupTestBatch builds a batch with heavy key-prefix sharing: runs of 16
// messages differ only in their trailing key bytes and trailers.
func groupTestBatch(n int) []Envelope[groupMsg] {
	batch := make([]Envelope[groupMsg], n)
	for i := range batch {
		var m groupMsg
		copy(m.Key[:], []byte{0xA1, 0xB2, 0xC3, 0xD4, 0xE5, 0xF6, byte(i / 16), byte(i % 4)})
		m.Seq = uint32(i * 31)
		m.Flag = byte(i % 3)
		batch[i] = Envelope[groupMsg]{Dest: graph.VertexID(i % 7), Msg: m}
	}
	return batch
}

// envKeys renders a batch as a sorted multiset of dest|encoding strings, so
// tests can compare deliveries regardless of the codec's sort order.
func envKeys[M any](batch []Envelope[M]) []string {
	keys := make([]string, len(batch))
	for i := range batch {
		keys[i] = fmt.Sprintf("%d|%x", batch[i].Dest, appendGroupEncoding(nil, &batch[i].Msg))
	}
	sort.Strings(keys)
	return keys
}

func sameMultiset[M any](t *testing.T, got, want []Envelope[M]) {
	t.Helper()
	g, w := envKeys(got), envKeys(want)
	if len(g) != len(w) {
		t.Fatalf("got %d envelopes, want %d", len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("envelope multiset differs at %d:\n got %s\nwant %s", i, g[i], w[i])
		}
	}
}

func TestMessageIsGroupWire(t *testing.T) {
	if !messageIsGroupWire[groupMsg]() {
		t.Error("messageIsGroupWire[groupMsg] = false, want true")
	}
	if messageIsGroupWire[wireMsg]() {
		t.Error("messageIsGroupWire[wireMsg] = true, want false")
	}
	if messageIsGroupWire[int]() {
		t.Error("messageIsGroupWire[int] = true, want false")
	}
}

func TestCompressedFrameRoundTripGroup(t *testing.T) {
	batch := groupTestBatch(64)
	buf := AppendCompressedFrame(nil, 9, batch)
	if got := int(binary.LittleEndian.Uint32(buf)); got != len(buf)-4 {
		t.Fatalf("length prefix %d, want %d", got, len(buf)-4)
	}
	if !framePayloadIsCompressed(buf[4:]) {
		t.Fatal("compressed frame not detected as compressed")
	}
	step, more, out, err := DecodeCompressedFrame[groupMsg](buf[4:])
	if err != nil {
		t.Fatal(err)
	}
	if step != 9 || more {
		t.Fatalf("step=%d more=%v, want 9 false", step, more)
	}
	sameMultiset(t, out, batch)

	flat := AppendWireFrame(nil, 9, batch)
	if len(buf) >= len(flat) {
		t.Errorf("compressed frame %dB is not smaller than flat %dB on a prefix-sharing batch", len(buf), len(flat))
	}
	t.Logf("64-envelope prefix-sharing batch: compressed %dB, flat %dB", len(buf), len(flat))
}

func TestCompressedFrameRoundTripFallback(t *testing.T) {
	// wireMsg is a WireMessage but not a GroupWireMessage: the frame front
	// codes the flat encodings and decodes each message in full.
	batch := wireTestBatch(32)
	buf := AppendCompressedFrame(nil, 3, batch)
	step, more, out, err := DecodeCompressedFrame[wireMsg](buf[4:])
	if err != nil {
		t.Fatal(err)
	}
	if step != 3 || more {
		t.Fatalf("step=%d more=%v, want 3 false", step, more)
	}
	sameMultiset(t, out, batch)
}

func TestCompressedFrameEmptyBatch(t *testing.T) {
	buf := AppendCompressedFrame(nil, 2, []Envelope[groupMsg]{})
	step, more, out, err := DecodeCompressedFrame[groupMsg](buf[4:])
	if err != nil {
		t.Fatal(err)
	}
	if step != 2 || more || len(out) != 0 {
		t.Fatalf("step=%d more=%v len=%d, want 2 false 0", step, more, len(out))
	}
}

func TestCompressedChunkingContinuation(t *testing.T) {
	batch := groupTestBatch(1200)
	frames, raw := compressBatch(7, batch, 512)
	if len(frames) != 3 {
		t.Fatalf("1200 envelopes at chunk 512: %d frames, want 3", len(frames))
	}
	if wantRaw := wireFrameHeader + 17*len(batch); raw != wantRaw {
		t.Fatalf("raw = %d, want %d", raw, wantRaw)
	}
	var all []Envelope[groupMsg]
	for i, fp := range frames {
		step, more, out, err := DecodeCompressedFrame[groupMsg](fp)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if step != 7 {
			t.Fatalf("frame %d: step %d, want 7", i, step)
		}
		if wantMore := i < len(frames)-1; more != wantMore {
			t.Fatalf("frame %d: more=%v, want %v", i, more, wantMore)
		}
		if len(out) > 512 {
			t.Fatalf("frame %d: %d envelopes exceed the chunk bound", i, len(out))
		}
		all = append(all, out...)
	}
	sameMultiset(t, all, batch)
}

func TestCompressedFrameDeterministic(t *testing.T) {
	// The frame must be a deterministic function of the batch multiset: the
	// same envelopes in a different order encode byte-identically.
	batch := groupTestBatch(48)
	perm := append([]Envelope[groupMsg](nil), batch...)
	for i := range perm {
		j := (i * 31) % len(perm)
		perm[i], perm[j] = perm[j], perm[i]
	}
	a := AppendCompressedFrame(nil, 1, batch)
	b := AppendCompressedFrame(nil, 1, perm)
	if !bytes.Equal(a, b) {
		t.Fatal("compressed frame depends on batch order, not just the multiset")
	}
}

func TestCompressedFrameDecodeErrors(t *testing.T) {
	valid := AppendCompressedFrame(nil, 5, groupTestBatch(8))[4:]

	flagless := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(flagless, 5) // clear bit 31

	badCount := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(badCount[4:], 1<<28)

	badShared := append([]byte(nil), valid...)
	// First envelope's shared must be 0; force it to a huge varint by
	// rewriting the byte after its dest delta varint. Envelope area starts at
	// 8; dest delta of envelope 0 is a single varint byte here.
	badShared[9] = 0xff
	badShared = badShared[:10] // and truncate so the uvarint is unterminated

	cases := map[string][]byte{
		"truncated header": valid[:6],
		"flag bit unset":   flagless,
		"bad count":        badCount,
		"bad shared":       badShared,
		"truncated body":   valid[:len(valid)-5],
		"trailing bytes":   append(append([]byte(nil), valid...), 0x00),
		"empty":            {},
	}
	for name, p := range cases {
		if _, _, _, err := DecodeCompressedFrame[groupMsg](p); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}

	// Fallback path: an encoding with undecoded tail bytes must be rejected.
	padded := []Envelope[wireMsg]{{Dest: 1, Msg: wireMsg{A: 1}}, {Dest: 2, Msg: wireMsg{A: 2}}}
	buf := AppendCompressedFrame(nil, 1, padded)[4:]
	// Grow every suffix by a byte: re-encode by hand with one byte appended.
	grown := appendOneCompressedFrameWithPad(padded)
	if _, _, _, err := DecodeCompressedFrame[wireMsg](grown); err == nil {
		t.Error("padded encodings: decode succeeded, want undecoded-bytes error")
	}
	_ = buf
}

// appendOneCompressedFrameWithPad builds a compressed frame whose per-message
// encodings carry one trailing pad byte each — valid framing, invalid message
// encodings — to exercise the fallback decoder's full-consumption check.
func appendOneCompressedFrameWithPad(batch []Envelope[wireMsg]) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, uint32(1)|compressedFrameFlag)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(batch)))
	prevDest := int64(0)
	for i := range batch {
		enc := batch[i].Msg.AppendWire(nil)
		enc = append(enc, 0xEE) // pad
		d := int64(batch[i].Dest)
		buf = binary.AppendVarint(buf, d-prevDest)
		prevDest = d
		buf = binary.AppendUvarint(buf, 0)
		buf = binary.AppendUvarint(buf, uint64(len(enc)))
		buf = append(buf, enc...)
	}
	return buf
}

func TestDecodeFrameAutoDetect(t *testing.T) {
	batch := groupTestBatch(16)
	flat := AppendWireFrame(nil, 4, batch)
	comp := AppendCompressedFrame(nil, 4, batch)

	step, more, out, err := DecodeFrame[groupMsg](flat[4:])
	if err != nil || step != 4 || more {
		t.Fatalf("flat: step=%d more=%v err=%v", step, more, err)
	}
	sameMultiset(t, out, batch)

	step, more, out, err = DecodeFrame[groupMsg](comp[4:])
	if err != nil || step != 4 || more {
		t.Fatalf("compressed: step=%d more=%v err=%v", step, more, err)
	}
	sameMultiset(t, out, batch)
}

func TestCompressedLocalExchangeGrouped(t *testing.T) {
	// Small (src,dst) batches pass through flat; batches at or above
	// compressMinBatch stay encoded as frames.
	k := 2
	outAll := make([][][]Envelope[groupMsg], k)
	for src := range outAll {
		outAll[src] = make([][]Envelope[groupMsg], k)
	}
	big := groupTestBatch(600)
	for i := range big {
		big[i].Dest = 0
	}
	small := groupTestBatch(compressMinBatch - 1)
	for i := range small {
		small[i].Dest = 1
	}
	outAll[1][0] = big
	outAll[0][1] = small

	inboxes, err := compressedLocalExchange[groupMsg]{}.ExchangeGrouped(nil, 3, outAll)
	if err != nil {
		t.Fatal(err)
	}
	if len(inboxes[0].Envs) != 0 || len(inboxes[0].Frames) != 2 {
		t.Fatalf("big batch: %d envs, %d frames; want 0 envs, 2 chunked frames",
			len(inboxes[0].Envs), len(inboxes[0].Frames))
	}
	if len(inboxes[1].Envs) != compressMinBatch-1 || len(inboxes[1].Frames) != 0 {
		t.Fatalf("small batch: %d envs, %d frames; want %d envs, 0 frames",
			len(inboxes[1].Envs), len(inboxes[1].Frames), compressMinBatch-1)
	}
	var decoded []Envelope[groupMsg]
	for _, fp := range inboxes[0].Frames {
		_, _, out, err := DecodeCompressedFrame[groupMsg](fp)
		if err != nil {
			t.Fatal(err)
		}
		decoded = append(decoded, out...)
	}
	sameMultiset(t, decoded, big)
}

// fanProgram sprays messages with shared prefixes for several supersteps and
// records everything it receives — the delivered multiset is the oracle for
// compressed-vs-flat comparisons.
type fanProgram struct {
	mu       sync.Mutex
	received []Envelope[groupMsg]
	rounds   int
}

func (p *fanProgram) Init(ctx *Context[groupMsg]) {
	if ctx.Worker() != 0 {
		return
	}
	for i := 0; i < 300; i++ {
		var m groupMsg
		copy(m.Key[:], []byte{9, 9, 9, 9, byte(i / 64), byte(i / 8), byte(i), 0})
		m.Seq = uint32(i)
		ctx.Send(graph.VertexID(i%97), m)
	}
}

func (p *fanProgram) Process(ctx *Context[groupMsg], env Envelope[groupMsg]) {
	p.mu.Lock()
	p.received = append(p.received, env)
	p.mu.Unlock()
	ctx.AddCounter("delivered", 1)
	if int(env.Msg.Flag) < p.rounds {
		m := env.Msg
		m.Flag++
		m.Seq += 1000
		ctx.Send(graph.VertexID((int(env.Dest)+13)%97), m)
	}
}

func runFan(t *testing.T, compress, async bool, factory ExchangeFactory) ([]Envelope[groupMsg], *RunStats) {
	t.Helper()
	prog := &fanProgram{rounds: 2}
	part := graph.NewPartition(3, 5)
	cfg := Config{
		Workers:        3,
		Owner:          func(v graph.VertexID) int { return part.Owner(v) },
		Exchange:       factory,
		AsyncExchange:  async,
		CompressFrames: compress,
	}
	stats, err := Run[groupMsg](cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	return prog.received, stats
}

func TestCompressedRunMatchesFlat(t *testing.T) {
	factories := map[string]func() ExchangeFactory{
		"local": func() ExchangeFactory { return nil },
		"tcp":   func() ExchangeFactory { return NewTCPExchangeFactory() },
	}
	for name, mk := range factories {
		for _, async := range []bool{false, true} {
			mode := fmt.Sprintf("%s/async=%v", name, async)
			t.Run(mode, func(t *testing.T) {
				flatEnvs, flatStats := runFan(t, false, async, mk())
				compEnvs, compStats := runFan(t, true, async, mk())
				sameMultiset(t, compEnvs, flatEnvs)
				if compStats.Counters["delivered"] != flatStats.Counters["delivered"] {
					t.Fatalf("delivered: compressed %d, flat %d",
						compStats.Counters["delivered"], flatStats.Counters["delivered"])
				}
				if name == "local" && !async {
					if compStats.Counters["compressed_frames"] == 0 {
						t.Fatal("strict local compressed run decoded no compressed frames")
					}
					wire := compStats.Counters["compressed_wire_bytes"]
					raw := compStats.Counters["compressed_raw_bytes"]
					if wire == 0 || raw <= wire {
						t.Fatalf("compression ratio not superunitary: wire=%d raw=%d", wire, raw)
					}
				}
			})
		}
	}
}

func TestCompressedTCPObserverCounters(t *testing.T) {
	o := obs.New(obs.NewRing(64))
	prog := &fanProgram{rounds: 2}
	part := graph.NewPartition(3, 5)
	cfg := Config{
		Workers:        3,
		Owner:          func(v graph.VertexID) int { return part.Owner(v) },
		Exchange:       NewTCPExchangeFactory(),
		CompressFrames: true,
		Observer:       o,
	}
	if _, err := Run[groupMsg](cfg, prog); err != nil {
		t.Fatal(err)
	}
	s := o.Snapshot()
	if s.CompressedFrames == 0 {
		t.Fatal("observer saw no compressed frame trains over TCP")
	}
	if s.CompressedBytes == 0 || s.CompressedRawBytes <= s.CompressedBytes {
		t.Fatalf("observer compression ratio not superunitary: wire=%d raw=%d",
			s.CompressedBytes, s.CompressedRawBytes)
	}
}

func TestGroupedSnapshotRoundTrip(t *testing.T) {
	store := NewMemCheckpointStore()
	big := groupTestBatch(700)
	frames, _ := compressBatch(4, big, compressedChunk)
	small := groupTestBatch(2)
	inboxes := []Inbox[groupMsg]{
		{Envs: small, Frames: frames},
		{},
	}
	stats := &RunStats{Counters: map[string]int64{"x": 1}}
	if _, err := saveSnapshot(store, 4, inboxes, stats, nil); err != nil {
		t.Fatal(err)
	}
	snap, err := loadSnapshot[groupMsg](store)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Step != 4 {
		t.Fatalf("step = %d, want 4", snap.Step)
	}
	rows := snap.inboxRows(2)
	if len(rows[0].Frames) != len(frames) {
		t.Fatalf("grouped restore kept %d frames, want %d", len(rows[0].Frames), len(frames))
	}
	sameMultiset(t, rows[0].Envs, small)

	flat, err := snap.flatRows(2)
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]Envelope[groupMsg](nil), small...), big...)
	sameMultiset(t, flat[0], want)
	if len(flat[1]) != 0 {
		t.Fatalf("worker 1 restored %d envelopes, want 0", len(flat[1]))
	}
}

func TestCorruptGroupedSnapshot(t *testing.T) {
	// A snapshot whose grouped frames are internally inconsistent must fail
	// the resume path with ErrCorruptCheckpoint — the CRC seal is intact, so
	// this exercises the frame-level validation, not the checksum.
	store := NewMemCheckpointStore()
	inboxes := []Inbox[groupMsg]{{Frames: [][]byte{{0xde, 0xad, 0xbe, 0xef}}}}
	stats := &RunStats{Counters: map[string]int64{}}
	if _, err := saveSnapshot(store, 2, inboxes, stats, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := loadSnapshot[groupMsg](store); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("loadSnapshot error = %v, want ErrCorruptCheckpoint", err)
	}
}

func TestCompressedGoldenFrames(t *testing.T) {
	// Committed golden wire frames pin the format across refactors: an
	// encoder change that alters bytes on the wire must be deliberate
	// (regenerate with -update) and visible in review.
	cases := []struct {
		name string
		enc  func() []byte
	}{
		{"compressed_group_v1.golden", func() []byte {
			return AppendCompressedFrame(nil, 9, groupTestBatch(24))
		}},
		{"compressed_fallback_v1.golden", func() []byte {
			return AppendCompressedFrame(nil, 3, wireTestBatch(10))
		}},
		{"compressed_chunked_v1.golden", func() []byte {
			out, _ := appendCompressedFrames(nil, 5, groupTestBatch(40), 16)
			return out
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join("testdata", tc.name)
			got := tc.enc()
			if *updateGolden {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("encoding drifted from golden %s (%dB vs %dB); if intentional, regenerate with -update",
					tc.name, len(got), len(want))
			}
		})
	}
}

func TestCompressedGoldenDecodes(t *testing.T) {
	// The committed group-codec golden must decode to exactly the batch that
	// produced it — guarding the decoder half independently of the encoder.
	want := groupTestBatch(24)
	data, err := os.ReadFile(filepath.Join("testdata", "compressed_group_v1.golden"))
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	step, more, out, err := DecodeCompressedFrame[groupMsg](data[4:])
	if err != nil {
		t.Fatal(err)
	}
	if step != 9 || more {
		t.Fatalf("step=%d more=%v, want 9 false", step, more)
	}
	sameMultiset(t, out, want)
}

func BenchmarkCompressedFrameEncode(b *testing.B) {
	batch := groupTestBatch(256)
	buf := AppendCompressedFrame(nil, 1, batch)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendCompressedFrame(buf[:0], 1, batch)
	}
}

func BenchmarkCompressedFrameDecode(b *testing.B) {
	batch := groupTestBatch(256)
	buf := AppendCompressedFrame(nil, 1, batch)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := DecodeCompressedFrame[groupMsg](buf[4:]); err != nil {
			b.Fatal(err)
		}
	}
}
