package bsp

import (
	"errors"
	"sync/atomic"
	"testing"

	"psgl/internal/graph"
)

func TestAbortDuringInit(t *testing.T) {
	boom := errors.New("init failure")
	prog := &funcProgram[int]{
		init:    func(ctx *Context[int]) { ctx.Abort(boom) },
		process: func(*Context[int], Envelope[int]) {},
	}
	cfg := Config{Workers: 2, Owner: func(graph.VertexID) int { return 0 }}
	_, err := Run[int](cfg, prog)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
}

func TestAbortNilErrorStillAborts(t *testing.T) {
	prog := &funcProgram[int]{
		init:    func(ctx *Context[int]) { ctx.Abort(nil) },
		process: func(*Context[int], Envelope[int]) {},
	}
	cfg := Config{Workers: 1, Owner: func(graph.VertexID) int { return 0 }}
	if _, err := Run[int](cfg, prog); !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
}

func TestCountersMergeAcrossWorkersAndSteps(t *testing.T) {
	prog := &funcProgram[int]{
		init: func(ctx *Context[int]) {
			ctx.AddCounter("init", 1)
			if ctx.Worker() == 0 {
				for v := 0; v < 30; v++ {
					ctx.Send(graph.VertexID(v), 2)
				}
			}
		},
		process: func(ctx *Context[int], env Envelope[int]) {
			ctx.AddCounter("seen", int64(env.Msg))
			if env.Msg > 1 {
				ctx.Send(env.Dest, env.Msg-1)
			}
		},
	}
	part := graph.NewPartition(3, 5)
	cfg := Config{Workers: 3, Owner: func(v graph.VertexID) int { return part.Owner(v) }}
	stats, err := Run[int](cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Counters["init"] != 3 {
		t.Errorf("init counter = %d, want 3 (one per worker)", stats.Counters["init"])
	}
	if stats.Counters["seen"] != 30*(2+1) {
		t.Errorf("seen counter = %d, want 90", stats.Counters["seen"])
	}
}

func TestLargeFanoutDelivery(t *testing.T) {
	// One worker floods 50k messages across 8 workers in one superstep; all
	// must be delivered exactly once.
	const n = 50000
	var delivered atomic.Int64
	part := graph.NewPartition(8, 2)
	prog := &funcProgram[int]{
		init: func(ctx *Context[int]) {
			if ctx.Worker() == 0 {
				for v := 0; v < n; v++ {
					ctx.Send(graph.VertexID(v%1000), v)
				}
			}
		},
		process: func(ctx *Context[int], env Envelope[int]) {
			delivered.Add(1)
		},
	}
	cfg := Config{Workers: 8, Owner: func(v graph.VertexID) int { return part.Owner(v) }}
	stats, err := Run[int](cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if delivered.Load() != n || stats.MessagesTotal != n {
		t.Fatalf("delivered=%d total=%d want %d", delivered.Load(), stats.MessagesTotal, n)
	}
}

func TestStepVisibleInContext(t *testing.T) {
	var maxStep atomic.Int64
	prog := &funcProgram[int]{
		init: func(ctx *Context[int]) {
			if ctx.Step() != 0 {
				t.Errorf("Init at step %d", ctx.Step())
			}
			if ctx.Worker() == 0 {
				ctx.Send(0, 3)
			}
		},
		process: func(ctx *Context[int], env Envelope[int]) {
			if int64(ctx.Step()) > maxStep.Load() {
				maxStep.Store(int64(ctx.Step()))
			}
			if env.Msg > 1 {
				ctx.Send(0, env.Msg-1)
			}
		},
	}
	cfg := Config{Workers: 2, Owner: func(graph.VertexID) int { return 0 }}
	if _, err := Run[int](cfg, prog); err != nil {
		t.Fatal(err)
	}
	if maxStep.Load() != 3 {
		t.Fatalf("max observed step = %d, want 3", maxStep.Load())
	}
}

func TestTCPExchangeEmptyBatches(t *testing.T) {
	// Workers that send nothing must still exchange cleanly (empty frames).
	prog := &funcProgram[int]{
		init: func(ctx *Context[int]) {
			if ctx.Worker() == 0 {
				ctx.Send(0, 1) // only worker 0 sends, only to itself
			}
		},
		process: func(*Context[int], Envelope[int]) {},
	}
	cfg := Config{
		Workers:  4,
		Owner:    func(graph.VertexID) int { return 0 },
		Exchange: NewTCPExchangeFactory(),
	}
	stats, err := Run[int](cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MessagesTotal != 1 {
		t.Fatalf("MessagesTotal = %d, want 1", stats.MessagesTotal)
	}
}
