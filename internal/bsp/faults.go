package bsp

// Fault injection. Distributed subgraph listing treats failure tolerance as
// a first-class requirement (Ren et al., "Fast and Robust Distributed
// Subgraph Enumeration"; DDSL); to prove our recovery machinery actually
// recovers, this file wraps any exchange in a deterministic fault injector.
// Faults fire before the inner exchange touches the batch, so a failed
// barrier delivers nothing observable — exactly the contract Run's retry and
// checkpoint-restore paths recover from. A run with injected faults plus
// retry/recovery must therefore produce byte-identical counts to a clean
// run, and the recovery tests assert exactly that.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrInjectedFault marks every error produced by the fault injector, so
// tests and callers can tell injected failures from real ones.
var ErrInjectedFault = errors.New("bsp: injected fault")

// FaultConfig parameterizes the injector. All draws come from a PRNG seeded
// with Seed, so a given config produces the same fault schedule on every
// run. Rates are probabilities in [0, 1] and are evaluated in order
// error → drop → delay on a single draw per Exchange call.
type FaultConfig struct {
	// Seed drives the deterministic fault schedule.
	Seed int64
	// ErrorRate is the probability an Exchange call fails with an injected
	// transport error before anything is delivered.
	ErrorRate float64
	// DropRate is the probability the whole barrier batch is dropped. The
	// loss is detected at the barrier (as Giraph detects worker failure at
	// barriers) and surfaces as an error with nothing delivered.
	DropRate float64
	// DelayRate is the probability the call is delayed by a uniform random
	// duration in [0, MaxDelay] without failing.
	DelayRate float64
	// MaxDelay bounds injected delays; 0 disables delays.
	MaxDelay time.Duration
	// FromStep suppresses faults for supersteps below it, letting runs make
	// checkpointable progress before failures start.
	FromStep int
	// MaxFaults caps the number of injected errors plus drops (0 = no cap).
	MaxFaults int
}

// NewFaultyExchangeFactory wraps inner (nil = the in-process exchange) in a
// deterministic fault injector. The fault state — the PRNG stream and the
// fault count — lives in the factory, not the exchange, so an exchange
// rebuilt during checkpoint recovery continues the fault schedule where it
// left off instead of deterministically replaying the same fault forever.
func NewFaultyExchangeFactory(inner ExchangeFactory, fc FaultConfig) ExchangeFactory {
	return faultyFactory{inner: inner, fc: fc, state: &faultyState{rng: newFaultRand(fc.Seed)}}
}

type faultyFactory struct {
	inner ExchangeFactory
	fc    FaultConfig
	state *faultyState
}

func (faultyFactory) kind() string { return "faulty" }

// faultyState is shared by every exchange built from one factory; the mutex
// makes the draw-and-count step atomic (Run calls Exchange serially, but the
// injector is also usable standalone).
type faultyState struct {
	mu     sync.Mutex
	rng    *faultRand
	faults int
}

func newFaultyExchange[M any](inner Exchange[M], fc FaultConfig, state *faultyState) Exchange[M] {
	return &faultyExchange[M]{inner: inner, fc: fc, state: state}
}

type faultyExchange[M any] struct {
	inner Exchange[M]
	fc    FaultConfig
	state *faultyState
}

// draw advances the shared fault stream once and decides one call's fate: a
// non-nil error (injected fault) or a delay to sleep before delivering. The
// strict wrapper draws per barrier Exchange; the async wrapper draws per
// frame Send with the sender's wire-frame sequence as step — both share this state
// so a factory's fault budget and PRNG stream span exchange rebuilds and
// execution modes alike.
func (st *faultyState) draw(fc FaultConfig, step int) (error, time.Duration) {
	st.mu.Lock()
	defer st.mu.Unlock()
	r := st.rng.float64v()
	if step < fc.FromStep {
		return nil, 0
	}
	canFault := fc.MaxFaults == 0 || st.faults < fc.MaxFaults
	switch {
	case canFault && r < fc.ErrorRate:
		st.faults++
		return fmt.Errorf("%w: transport error at step %d (fault #%d)", ErrInjectedFault, step, st.faults), 0
	case canFault && r < fc.ErrorRate+fc.DropRate:
		st.faults++
		return fmt.Errorf("%w: batch dropped at step %d, detected before delivery (fault #%d)", ErrInjectedFault, step, st.faults), 0
	case r < fc.ErrorRate+fc.DropRate+fc.DelayRate && fc.MaxDelay > 0:
		return nil, time.Duration(st.rng.float64v() * float64(fc.MaxDelay))
	}
	return nil, 0
}

func (f *faultyExchange[M]) Exchange(ctx context.Context, step int, outAll [][][]Envelope[M]) ([][]Envelope[M], error) {
	fault, delay := f.state.draw(f.fc, step)
	if fault != nil {
		return nil, fault
	}
	if delay > 0 {
		timer := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		case <-timer.C:
		}
	}
	return f.inner.Exchange(ctx, step, outAll)
}

// ExchangeGrouped forwards a grouped barrier with the same per-call fault
// draw as Exchange, so compressed mode sees the identical fault schedule.
func (f *faultyExchange[M]) ExchangeGrouped(ctx context.Context, step int, outAll [][][]Envelope[M]) ([]Inbox[M], error) {
	fault, delay := f.state.draw(f.fc, step)
	if fault != nil {
		return nil, fault
	}
	if delay > 0 {
		timer := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		case <-timer.C:
		}
	}
	return exchangeGrouped(ctx, f.inner, step, outAll)
}

func (f *faultyExchange[M]) Close() error { return f.inner.Close() }

// faultRand is a tiny xorshift PRNG: deterministic, dependency-free, and
// independent of math/rand's global state.
type faultRand struct{ state uint64 }

func newFaultRand(seed int64) *faultRand {
	s := uint64(seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	return &faultRand{state: s}
}

func (r *faultRand) next() uint64 {
	s := r.state
	s ^= s << 13
	s ^= s >> 7
	s ^= s << 17
	r.state = s
	return s
}

func (r *faultRand) float64v() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}
