package bsp

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzFrameDecode drives the length-prefixed frame reader with arbitrary
// byte streams: truncated headers, lying length prefixes, oversize lengths,
// and garbage payloads. Invariants:
//
//  1. readWireFrame never panics and never reads past the frame its prefix
//     declares (no over-read into the next frame's bytes).
//  2. A successfully decoded frame re-encodes byte-identically to the bytes
//     consumed — the codec is canonical, so decode ∘ encode = id on the
//     valid subset of inputs (this is the round-trip half of the property).
func FuzzFrameDecode(f *testing.F) {
	f.Add(AppendWireFrame(nil, 1, wireTestBatch(2)))
	f.Add(AppendWireFrame(nil, 0, []Envelope[wireMsg]{}))
	f.Add(append(AppendWireFrame(nil, 7, wireTestBatch(5)), "trailing garbage"...))
	f.Add([]byte{0x0c, 0, 0, 0, 1, 0}) // prefix claims 12 bytes, 2 present
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})
	f.Add([]byte("hello world, this is not a frame"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		step, batch, consumed, err := readWireFrame[wireMsg](r)
		if err != nil {
			return // rejecting malformed input is the expected outcome
		}
		if consumed < wireFrameHeader || consumed > len(data) {
			t.Fatalf("consumed %d bytes of %d", consumed, len(data))
		}
		if declared := int(binary.LittleEndian.Uint32(data)); consumed != 4+declared {
			t.Fatalf("consumed %d bytes, prefix declares %d", consumed, 4+declared)
		}
		if remaining := r.Len(); remaining != len(data)-consumed {
			t.Fatalf("reader advanced %d bytes, frame is %d", len(data)-remaining, consumed)
		}
		re := AppendWireFrame(nil, step, batch)
		if !bytes.Equal(re, data[:consumed]) {
			t.Fatalf("decode/encode not canonical:\n in: %x\nout: %x", data[:consumed], re)
		}
	})
}
