package bsp

// Barrier checkpointing. The paper inherits fault tolerance from its
// Pregel/Giraph substrate (Section 6): long multi-superstep enumerations
// survive worker failures via snapshots aligned with superstep barriers. A
// barrier is the only point where the global state collapses to "the next
// supersteps's inboxes plus the merged run stats", so that pair is exactly
// what a snapshot holds: restoring it and re-entering the superstep loop is
// equivalent to never having failed, up to replayed side effects inside
// Program implementations.

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrNoCheckpoint reports that a store holds no snapshot yet.
var ErrNoCheckpoint = errors.New("bsp: no checkpoint available")

// ErrCorruptCheckpoint reports that a stored snapshot failed integrity
// verification — wrong magic, checksum mismatch (truncation, bit rot), or an
// undecodable payload. It surfaces wrapped from Config.ResumeFrom and in-run
// recovery, so callers can distinguish "the checkpoint is damaged" from "the
// store is empty" (ErrNoCheckpoint) with errors.Is.
var ErrCorruptCheckpoint = errors.New("bsp: corrupt checkpoint")

// Snapshot file layout: an 8-byte magic, a CRC-32 (IEEE) of the payload, then
// the gob-encoded snapshot. Gob alone cannot detect most single-bit flips —
// it would happily decode damaged inboxes — so the checksum is what turns
// silent corruption into ErrCorruptCheckpoint.
const checkpointMagic = "PSGLCKP1"

const checkpointHeaderLen = len(checkpointMagic) + 4

// sealSnapshot prepends the magic + checksum header to a gob payload.
func sealSnapshot(payload []byte) []byte {
	out := make([]byte, 0, checkpointHeaderLen+len(payload))
	out = append(out, checkpointMagic...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

// openSnapshot verifies and strips the header, returning the gob payload.
func openSnapshot(data []byte) ([]byte, error) {
	if len(data) < checkpointHeaderLen {
		return nil, fmt.Errorf("%w: %d bytes, below the %d-byte header", ErrCorruptCheckpoint, len(data), checkpointHeaderLen)
	}
	if string(data[:len(checkpointMagic)]) != checkpointMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorruptCheckpoint, data[:len(checkpointMagic)])
	}
	want := binary.LittleEndian.Uint32(data[len(checkpointMagic):])
	payload := data[checkpointHeaderLen:]
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (stored %08x, computed %08x)", ErrCorruptCheckpoint, want, got)
	}
	return payload, nil
}

// CheckpointStore persists encoded barrier snapshots. Save replaces the
// store's notion of "latest" with the given step; Load returns the latest
// snapshot or ErrNoCheckpoint. Implementations must be safe for use by one
// run at a time; MemCheckpointStore and FileCheckpointStore are additionally
// safe for concurrent use.
type CheckpointStore interface {
	Save(step int, data []byte) error
	Load() (step int, data []byte, err error)
}

// snapshot is the unit of checkpointing: the state of a run at the barrier
// entering superstep Step. Prog is the opaque Snapshotter state of programs
// that carry accumulators outside the inboxes (nil otherwise). Frames[w]
// holds worker w's still-encoded compressed frame payloads (compressed mode
// only — snapshots of grouped queues stay grouped, so a checkpoint of a
// dense superstep costs its compressed size); pre-compression snapshots
// simply decode with Frames nil.
type snapshot[M any] struct {
	Step    int
	Inboxes [][]Envelope[M]
	Stats   RunStats
	Prog    []byte
	Frames  [][][]byte
}

// inboxRows converts the snapshot's persisted form back into the run loop's
// grouped inboxes.
func (snap *snapshot[M]) inboxRows(k int) []Inbox[M] {
	rows := make([]Inbox[M], k)
	for w := range rows {
		if w < len(snap.Inboxes) {
			rows[w].Envs = snap.Inboxes[w]
		}
		if w < len(snap.Frames) {
			rows[w].Frames = snap.Frames[w]
		}
	}
	return rows
}

// flatRows decodes the snapshot into plain per-worker envelope slices — the
// async plane's queue form. A grouped frame that fails to decode surfaces as
// ErrCorruptCheckpoint.
func (snap *snapshot[M]) flatRows(k int) ([][]Envelope[M], error) {
	rows := make([][]Envelope[M], k)
	for w := range rows {
		if w < len(snap.Inboxes) {
			rows[w] = snap.Inboxes[w]
		}
		if w >= len(snap.Frames) {
			continue
		}
		for i, fp := range snap.Frames[w] {
			_, _, batch, err := DecodeCompressedFrame[M](fp)
			if err != nil {
				return nil, fmt.Errorf("%w: grouped inbox frame %d for worker %d: %v", ErrCorruptCheckpoint, i, w, err)
			}
			rows[w] = append(rows[w], batch...)
		}
	}
	return rows, nil
}

// saveSnapshot encodes, seals, and stores the barrier state, returning the
// number of bytes written to the store.
func saveSnapshot[M any](store CheckpointStore, step int, inboxes []Inbox[M], stats *RunStats, snapper Snapshotter) (int, error) {
	var buf bytes.Buffer
	snap := snapshot[M]{Step: step, Stats: *stats}
	snap.Inboxes = make([][]Envelope[M], len(inboxes))
	for w := range inboxes {
		snap.Inboxes[w] = inboxes[w].Envs
		if len(inboxes[w].Frames) > 0 {
			if snap.Frames == nil {
				snap.Frames = make([][][]byte, len(inboxes))
			}
			snap.Frames[w] = inboxes[w].Frames
		}
	}
	if snapper != nil {
		prog, err := snapper.SnapshotState()
		if err != nil {
			return 0, fmt.Errorf("snapshot program state: %w", err)
		}
		snap.Prog = prog
	}
	if err := gob.NewEncoder(&buf).Encode(&snap); err != nil {
		return 0, fmt.Errorf("encode snapshot: %w", err)
	}
	sealed := sealSnapshot(buf.Bytes())
	if err := store.Save(step, sealed); err != nil {
		return 0, err
	}
	return len(sealed), nil
}

func loadSnapshot[M any](store CheckpointStore) (*snapshot[M], error) {
	step, data, err := store.Load()
	if err != nil {
		return nil, err
	}
	payload, err := openSnapshot(data)
	if err != nil {
		return nil, fmt.Errorf("snapshot for step %d: %w", step, err)
	}
	var snap snapshot[M]
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("%w: decode snapshot for step %d: %v", ErrCorruptCheckpoint, step, err)
	}
	// Gob omits zero-valued fields; re-materialize what restore expects.
	if snap.Stats.Counters == nil {
		snap.Stats.Counters = map[string]int64{}
	}
	// The CRC seal catches store-level damage; this catches a snapshot whose
	// grouped frames are internally inconsistent (they would otherwise only
	// fail deep inside a superstep, after the restore "succeeded").
	for w := range snap.Frames {
		for i, fp := range snap.Frames[w] {
			if _, _, _, err := DecodeCompressedFrame[M](fp); err != nil {
				return nil, fmt.Errorf("%w: snapshot for step %d: grouped inbox frame %d for worker %d: %v",
					ErrCorruptCheckpoint, step, i, w, err)
			}
		}
	}
	return &snap, nil
}

// MemCheckpointStore keeps the latest snapshot in memory — the default for
// single-process runs and tests.
type MemCheckpointStore struct {
	mu    sync.Mutex
	step  int
	data  []byte
	saves int
}

// NewMemCheckpointStore returns an empty in-memory store.
func NewMemCheckpointStore() *MemCheckpointStore { return &MemCheckpointStore{} }

// Save retains a copy of data as the latest snapshot.
func (s *MemCheckpointStore) Save(step int, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.step = step
	s.data = append([]byte(nil), data...)
	s.saves++
	return nil
}

// Load returns the latest snapshot or ErrNoCheckpoint.
func (s *MemCheckpointStore) Load() (int, []byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.data == nil {
		return 0, nil, ErrNoCheckpoint
	}
	return s.step, append([]byte(nil), s.data...), nil
}

// Saves reports how many snapshots have been written (for cadence tests).
func (s *MemCheckpointStore) Saves() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.saves
}

// LatestStep reports the step of the latest snapshot (0 when empty).
func (s *MemCheckpointStore) LatestStep() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.step
}

// FileCheckpointStore persists snapshots as files in a directory, surviving
// the process — the store to pair with Config.ResumeFrom across runs. Writes
// go through a temp file plus rename, so a crash mid-save never corrupts the
// latest snapshot; older snapshots are pruned after each successful save.
type FileCheckpointStore struct {
	dir string
	mu  sync.Mutex
}

const checkpointSuffix = ".ckpt"

// NewFileCheckpointStore opens (creating if needed) a directory-backed store.
func NewFileCheckpointStore(dir string) (*FileCheckpointStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("bsp: checkpoint dir: %w", err)
	}
	return &FileCheckpointStore{dir: dir}, nil
}

func (s *FileCheckpointStore) path(step int) string {
	return filepath.Join(s.dir, fmt.Sprintf("step-%012d%s", step, checkpointSuffix))
}

// Save atomically writes the snapshot for step and prunes older ones.
func (s *FileCheckpointStore) Save(step int, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp, err := os.CreateTemp(s.dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("bsp: checkpoint save: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("bsp: checkpoint save: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("bsp: checkpoint save: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(step)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("bsp: checkpoint save: %w", err)
	}
	steps, err := s.listSteps()
	if err != nil {
		return nil // pruning is best-effort
	}
	for _, old := range steps {
		if old != step {
			os.Remove(s.path(old))
		}
	}
	return nil
}

// Load returns the snapshot with the highest step, or ErrNoCheckpoint.
func (s *FileCheckpointStore) Load() (int, []byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	steps, err := s.listSteps()
	if err != nil {
		return 0, nil, fmt.Errorf("bsp: checkpoint load: %w", err)
	}
	if len(steps) == 0 {
		return 0, nil, ErrNoCheckpoint
	}
	latest := steps[len(steps)-1]
	data, err := os.ReadFile(s.path(latest))
	if err != nil {
		return 0, nil, fmt.Errorf("bsp: checkpoint load: %w", err)
	}
	return latest, data, nil
}

func (s *FileCheckpointStore) listSteps() ([]int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var steps []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "step-") || !strings.HasSuffix(name, checkpointSuffix) {
			continue
		}
		var step int
		if _, err := fmt.Sscanf(name, "step-%d"+checkpointSuffix, &step); err != nil {
			continue
		}
		steps = append(steps, step)
	}
	sort.Ints(steps)
	return steps, nil
}
