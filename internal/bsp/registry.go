package bsp

// Worker registry: the control plane of the remote worker tier. The paper's
// deployment substrate (Giraph on Hadoop, Section 6) assumes a master that
// tracks worker liveness through heartbeats and treats a missed-beat worker
// as dead; robustness-focused successors (Ren et al., "Fast and Robust
// Distributed Subgraph Enumeration") make the same machinery the deciding
// factor at scale. This file is that machinery, engine-agnostic: membership
// (join/leave), liveness (heartbeats with missed-beat eviction), and
// generation numbers so a worker that dies and rejoins cannot ack frames or
// answer queries attributed to its previous incarnation.
//
// The registry is deliberately passive about time: it never starts its own
// goroutine. Liveness advances when the owner calls Sweep — from a ticker in
// production (internal/serve's coordinator), or explicitly with an injected
// clock in tests, so eviction timing is deterministic under test.

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"psgl/internal/obs"
)

// Registry errors, distinguishable with errors.Is so transport layers can
// map them to protocol responses (the serving tier maps ErrStaleGeneration
// and ErrEvicted to "rejoin", ErrUnknownWorker to "join first").
var (
	// ErrUnknownWorker reports an operation naming a worker that never
	// joined (or was garbage-collected after leaving).
	ErrUnknownWorker = errors.New("bsp: unknown worker")
	// ErrStaleGeneration reports an operation carrying a generation number
	// older than the worker's current incarnation — a frame, heartbeat, or
	// response from a predecessor that died and was replaced.
	ErrStaleGeneration = errors.New("bsp: stale worker generation")
	// ErrEvicted reports a heartbeat from a worker the registry already
	// evicted for missing its beat limit; the worker must rejoin (and will
	// be issued a fresh generation).
	ErrEvicted = errors.New("bsp: worker evicted; rejoin required")
)

// WorkerState is a registry member's liveness state.
type WorkerState uint8

const (
	// StateAlive: joined and beating within the miss limit.
	StateAlive WorkerState = iota + 1
	// StateEvicted: missed MissLimit consecutive heartbeat intervals; its
	// generation is dead and any frame or response carrying it is stale.
	StateEvicted
	// StateLeft: departed gracefully via Leave.
	StateLeft
)

// String names the state for /workers listings and logs.
func (s WorkerState) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateEvicted:
		return "evicted"
	case StateLeft:
		return "left"
	default:
		return fmt.Sprintf("WorkerState(%d)", uint8(s))
	}
}

// WorkerInfo is a point-in-time copy of one registry member.
type WorkerInfo struct {
	// ID is the worker's stable name (survives restarts; the generation
	// distinguishes incarnations).
	ID string
	// Addr is where the worker's execution endpoint listens.
	Addr string
	// Gen is the incarnation number, unique across the registry's lifetime
	// and strictly increasing across rejoins of the same ID.
	Gen uint64
	// Fingerprint is the worker's resident graph fingerprint, checked at
	// join so a worker serving a different graph can never answer queries.
	Fingerprint uint64
	// State is the liveness state.
	State WorkerState
	// LastBeat is the time of the most recent join or heartbeat.
	LastBeat time.Time
	// Joined is the time of this incarnation's join.
	Joined time.Time
	// Misses counts consecutive overdue heartbeat intervals observed by
	// Sweep since the last beat (resets on every beat).
	Misses int
}

// RegistryConfig tunes liveness. The zero value gets defaults.
type RegistryConfig struct {
	// HeartbeatInterval is how often workers are expected to beat. 0 means
	// 500ms.
	HeartbeatInterval time.Duration
	// MissLimit is how many consecutive intervals a worker may miss before
	// Sweep evicts it. 0 means 3.
	MissLimit int
	// Clock overrides time.Now for deterministic tests.
	Clock func() time.Time
	// OnEvict, when non-nil, is called (outside the registry lock) for each
	// worker Sweep evicts — the coordinator's hook for canceling in-flight
	// dispatches to the corpse.
	OnEvict func(WorkerInfo)
	// Observer receives heartbeat-miss and eviction counters. Nil disables.
	Observer *obs.Observer
}

func (c RegistryConfig) withDefaults() RegistryConfig {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 500 * time.Millisecond
	}
	if c.MissLimit <= 0 {
		c.MissLimit = 3
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Registry tracks the remote worker set. Safe for concurrent use.
type Registry struct {
	cfg RegistryConfig

	mu      sync.Mutex
	nextGen uint64
	workers map[string]*workerEntry
	// epoch increments on every membership change (join, leave, eviction) so
	// pollers can cheaply detect "something changed".
	epoch uint64

	// Monotonic counters for /stats.
	joins     int64
	rejoins   int64
	leaves    int64
	evictions int64
	staleOps  int64
	missTotal int64
}

type workerEntry struct {
	info WorkerInfo
}

// NewRegistry builds an empty registry.
func NewRegistry(cfg RegistryConfig) *Registry {
	return &Registry{cfg: cfg.withDefaults(), workers: make(map[string]*workerEntry)}
}

// HeartbeatInterval reports the configured beat interval (workers learn it
// from the join response).
func (r *Registry) HeartbeatInterval() time.Duration { return r.cfg.HeartbeatInterval }

// MissLimit reports the configured eviction threshold.
func (r *Registry) MissLimit() int { return r.cfg.MissLimit }

// Join registers a worker (or a new incarnation of one) and returns its
// generation number. Rejoining an existing ID — alive, evicted, or left —
// always issues a strictly larger generation, retiring the old incarnation:
// any frame, heartbeat, or response still carrying the old generation fails
// with ErrStaleGeneration from then on.
func (r *Registry) Join(id, addr string, fingerprint uint64) (uint64, error) {
	if id == "" {
		return 0, fmt.Errorf("bsp: registry join: empty worker id")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.cfg.Clock()
	r.nextGen++
	gen := r.nextGen
	if _, rejoin := r.workers[id]; rejoin {
		r.rejoins++
	} else {
		r.joins++
	}
	r.workers[id] = &workerEntry{info: WorkerInfo{
		ID: id, Addr: addr, Gen: gen, Fingerprint: fingerprint,
		State: StateAlive, LastBeat: now, Joined: now,
	}}
	r.epoch++
	return gen, nil
}

// Heartbeat records a beat from worker id's incarnation gen. A beat from a
// stale generation or an evicted worker is rejected — the caller must
// rejoin.
func (r *Registry) Heartbeat(id string, gen uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownWorker, id)
	}
	if gen != w.info.Gen {
		r.staleOps++
		return fmt.Errorf("%w: %q gen %d, current %d", ErrStaleGeneration, id, gen, w.info.Gen)
	}
	switch w.info.State {
	case StateEvicted:
		return fmt.Errorf("%w: %q", ErrEvicted, id)
	case StateLeft:
		return fmt.Errorf("%w: %q left", ErrUnknownWorker, id)
	}
	w.info.LastBeat = r.cfg.Clock()
	w.info.Misses = 0
	return nil
}

// Leave gracefully retires worker id's incarnation gen.
func (r *Registry) Leave(id string, gen uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownWorker, id)
	}
	if gen != w.info.Gen {
		r.staleOps++
		return fmt.Errorf("%w: %q gen %d, current %d", ErrStaleGeneration, id, gen, w.info.Gen)
	}
	if w.info.State == StateAlive {
		r.leaves++
		r.epoch++
	}
	w.info.State = StateLeft
	return nil
}

// ValidateGeneration checks that gen is worker id's current, live
// incarnation — the coordinator calls this before trusting a query response,
// so a restarted worker can never ack work dispatched to its predecessor.
func (r *Registry) ValidateGeneration(id string, gen uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownWorker, id)
	}
	if gen != w.info.Gen {
		r.staleOps++
		return fmt.Errorf("%w: %q gen %d, current %d", ErrStaleGeneration, id, gen, w.info.Gen)
	}
	if w.info.State != StateAlive {
		return fmt.Errorf("%w: %q", ErrEvicted, id)
	}
	return nil
}

// Sweep advances liveness: workers whose last beat is more than one interval
// old accrue misses; a worker at or past MissLimit missed intervals is
// evicted. Returns the workers evicted by this sweep (OnEvict also fires for
// each, outside the lock). Call it periodically — every interval is natural.
func (r *Registry) Sweep() []WorkerInfo {
	r.mu.Lock()
	now := r.cfg.Clock()
	var evicted []WorkerInfo
	for _, w := range r.workers {
		if w.info.State != StateAlive {
			continue
		}
		overdue := int(now.Sub(w.info.LastBeat) / r.cfg.HeartbeatInterval)
		if overdue <= 0 {
			continue
		}
		if delta := overdue - w.info.Misses; delta > 0 {
			r.missTotal += int64(delta)
			r.cfg.Observer.AddHeartbeatMiss(int64(delta))
		}
		w.info.Misses = overdue
		if overdue >= r.cfg.MissLimit {
			w.info.State = StateEvicted
			r.evictions++
			r.epoch++
			r.cfg.Observer.AddEviction()
			evicted = append(evicted, w.info)
		}
	}
	onEvict := r.cfg.OnEvict
	r.mu.Unlock()
	if onEvict != nil {
		for _, w := range evicted {
			onEvict(w)
		}
	}
	return evicted
}

// EvictAll force-evicts every alive worker. The coordinator calls it when
// the resident graph mutates: a worker still serving the previous epoch's
// graph can never answer queries over the new one, so its incarnation is
// retired exactly as in a liveness eviction — subsequent heartbeats fail
// with ErrEvicted (driving the worker's rejoin loop, which re-checks the
// graph fingerprint at join), and in-flight replies fail generation
// validation. Returns the evicted workers; OnEvict also fires for each,
// outside the lock.
func (r *Registry) EvictAll() []WorkerInfo {
	r.mu.Lock()
	var evicted []WorkerInfo
	for _, w := range r.workers {
		if w.info.State != StateAlive {
			continue
		}
		w.info.State = StateEvicted
		r.evictions++
		r.epoch++
		r.cfg.Observer.AddEviction()
		evicted = append(evicted, w.info)
	}
	onEvict := r.cfg.OnEvict
	r.mu.Unlock()
	if onEvict != nil {
		for _, w := range evicted {
			onEvict(w)
		}
	}
	return evicted
}

// Alive returns the live worker set, ordered by ID for deterministic
// dispatch.
func (r *Registry) Alive() []WorkerInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []WorkerInfo
	for _, w := range r.workers {
		if w.info.State == StateAlive {
			out = append(out, w.info)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NumAlive reports the live worker count (the quorum input).
func (r *Registry) NumAlive() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, w := range r.workers {
		if w.info.State == StateAlive {
			n++
		}
	}
	return n
}

// Lookup returns a copy of worker id's current record.
func (r *Registry) Lookup(id string) (WorkerInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[id]
	if !ok {
		return WorkerInfo{}, false
	}
	return w.info, true
}

// Members returns every registry record (all states), ordered by ID.
func (r *Registry) Members() []WorkerInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]WorkerInfo, 0, len(r.workers))
	for _, w := range r.workers {
		out = append(out, w.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Epoch returns the membership epoch: it increments on every join, leave,
// and eviction.
func (r *Registry) Epoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// RegistryStats is the registry's monotonic counter snapshot for /stats.
type RegistryStats struct {
	Joins           int64  `json:"joins"`
	Rejoins         int64  `json:"rejoins"`
	Leaves          int64  `json:"leaves"`
	Evictions       int64  `json:"evictions"`
	StaleOps        int64  `json:"stale_generation_ops"`
	HeartbeatMisses int64  `json:"heartbeat_misses"`
	Alive           int    `json:"alive"`
	Epoch           uint64 `json:"epoch"`
}

// Stats snapshots the registry's counters.
func (r *Registry) Stats() RegistryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	alive := 0
	for _, w := range r.workers {
		if w.info.State == StateAlive {
			alive++
		}
	}
	return RegistryStats{
		Joins:           r.joins,
		Rejoins:         r.rejoins,
		Leaves:          r.leaves,
		Evictions:       r.evictions,
		StaleOps:        r.staleOps,
		HeartbeatMisses: r.missTotal,
		Alive:           alive,
		Epoch:           r.epoch,
	}
}
