package bsp

// Step-targeted fault schedules. The probabilistic injector (faults.go)
// answers "does recovery work under random failure rates"; the chaos harness
// (internal/chaos) needs the sharper question "does recovery work when
// worker W dies exactly at superstep S" — deterministic, named events at
// named barriers. A scheduled fault fires exactly once: the schedule state
// lives in the factory, so an exchange rebuilt during checkpoint recovery
// sees the remaining schedule instead of deterministically replaying the
// same fault forever.

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// StepFaultKind enumerates what a scheduled fault does to its barrier.
type StepFaultKind uint8

const (
	// StepFaultKill simulates worker death mid-superstep: the barrier's
	// exchange fails with nothing delivered (Giraph detects worker failure
	// exactly this way — at the barrier).
	StepFaultKill StepFaultKind = iota + 1
	// StepFaultDrop drops the whole barrier batch; the loss surfaces as an
	// error at the barrier with nothing delivered.
	StepFaultDrop
	// StepFaultDelay delays the barrier's frames by Delay, then delivers.
	StepFaultDelay
	// StepFaultPartition simulates a mesh partition: frames between the two
	// halves are undeliverable, failing the barrier with nothing delivered.
	StepFaultPartition
)

// String names the kind for error text and chaos reports.
func (k StepFaultKind) String() string {
	switch k {
	case StepFaultKill:
		return "kill"
	case StepFaultDrop:
		return "drop"
	case StepFaultDelay:
		return "delay"
	case StepFaultPartition:
		return "partition"
	default:
		return fmt.Sprintf("StepFaultKind(%d)", uint8(k))
	}
}

// StepFault is one scheduled event: at superstep Step, do Kind. Worker names
// the victim (kill) or the partition boundary (workers < Worker on one side)
// — it shapes the error text so logs and tests can tell schedules apart.
//
// In async mode there is no superstep: Step is matched against per-worker
// wire-frame sequence numbers instead (each worker numbers the frames it
// sends over the transport from 1), and the first Send carrying that seq
// claims the fault. A StepFault at step S therefore fires on whichever
// worker first flushes its S-th wire frame, exactly once.
type StepFault struct {
	Step   int
	Kind   StepFaultKind
	Worker int
	// Delay is the injected latency for StepFaultDelay.
	Delay time.Duration
}

// NewScheduledFaultExchangeFactory wraps inner (nil = the in-process
// exchange) so each scheduled fault fires exactly once when its superstep's
// Exchange runs. Faults sharing a step fire on successive Exchange calls for
// that step (first call fires the first unfired one, and so on), so a
// schedule can e.g. kill the same barrier twice to exhaust a retry budget.
func NewScheduledFaultExchangeFactory(inner ExchangeFactory, faults []StepFault) *ScheduledFaultFactory {
	return &ScheduledFaultFactory{inner: inner, state: &scheduleState{
		faults: append([]StepFault(nil), faults...),
		fired:  make([]bool, len(faults)),
	}}
}

// ScheduledFaultFactory is an ExchangeFactory injecting a deterministic fault
// schedule; Fired reports harness progress.
type ScheduledFaultFactory struct {
	inner ExchangeFactory
	state *scheduleState
}

func (*ScheduledFaultFactory) kind() string { return "scheduled" }

// Fired reports how many scheduled faults have fired so far.
func (f *ScheduledFaultFactory) Fired() int { return f.state.Fired() }

// scheduleState is shared by every exchange built from one factory, so the
// fire-once bookkeeping survives exchange rebuilds during recovery.
type scheduleState struct {
	mu     sync.Mutex
	faults []StepFault
	fired  []bool
}

// next claims the first unfired fault for step, or ok=false.
func (s *scheduleState) next(step int) (StepFault, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, f := range s.faults {
		if !s.fired[i] && f.Step == step {
			s.fired[i] = true
			return f, true
		}
	}
	return StepFault{}, false
}

// Fired reports how many scheduled faults have fired so far.
func (s *scheduleState) Fired() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, f := range s.fired {
		if f {
			n++
		}
	}
	return n
}

func newScheduledExchange[M any](inner Exchange[M], state *scheduleState) Exchange[M] {
	return &scheduledExchange[M]{inner: inner, state: state}
}

type scheduledExchange[M any] struct {
	inner Exchange[M]
	state *scheduleState
}

// scheduledFaultError renders the failing fault kinds (kill, drop,
// partition) into the strict-mode error text (step = superstep); delay
// returns nil and the caller sleeps. The async wrapper uses
// asyncScheduledFaultError instead — same kinds, frame-seq wording.
func scheduledFaultError(f StepFault, step int) error {
	switch f.Kind {
	case StepFaultKill:
		return fmt.Errorf("%w: worker %d killed at superstep %d", ErrInjectedFault, f.Worker, step)
	case StepFaultDrop:
		return fmt.Errorf("%w: batch dropped at superstep %d, detected at barrier", ErrInjectedFault, step)
	case StepFaultPartition:
		return fmt.Errorf("%w: mesh partitioned at worker %d boundary, superstep %d", ErrInjectedFault, f.Worker, step)
	}
	return nil
}

// asyncScheduledFaultError is the async-plane renderer for the same fault
// kinds. Async mode has no supersteps or barriers; schedules key on
// per-worker wire-frame ordinals (see StepFault), so the text names the
// frame seq to keep logs honest about what actually fired.
func asyncScheduledFaultError(f StepFault, seq int) error {
	switch f.Kind {
	case StepFaultKill:
		return fmt.Errorf("%w: worker %d killed at frame seq %d", ErrInjectedFault, f.Worker, seq)
	case StepFaultDrop:
		return fmt.Errorf("%w: frame dropped at seq %d", ErrInjectedFault, seq)
	case StepFaultPartition:
		return fmt.Errorf("%w: mesh partitioned at worker %d boundary, frame seq %d", ErrInjectedFault, f.Worker, seq)
	}
	return nil
}

func (s *scheduledExchange[M]) Exchange(ctx context.Context, step int, outAll [][][]Envelope[M]) ([][]Envelope[M], error) {
	if f, ok := s.state.next(step); ok {
		if err := scheduledFaultError(f, step); err != nil {
			return nil, err
		}
		if f.Kind == StepFaultDelay {
			timer := time.NewTimer(f.Delay)
			select {
			case <-ctx.Done():
				timer.Stop()
				return nil, ctx.Err()
			case <-timer.C:
			}
		}
	}
	return s.inner.Exchange(ctx, step, outAll)
}

// ExchangeGrouped forwards a grouped barrier with the same fire-once fault
// schedule as Exchange, so compressed mode sees identical scheduled events.
func (s *scheduledExchange[M]) ExchangeGrouped(ctx context.Context, step int, outAll [][][]Envelope[M]) ([]Inbox[M], error) {
	if f, ok := s.state.next(step); ok {
		if err := scheduledFaultError(f, step); err != nil {
			return nil, err
		}
		if f.Kind == StepFaultDelay {
			timer := time.NewTimer(f.Delay)
			select {
			case <-ctx.Done():
				timer.Stop()
				return nil, ctx.Err()
			case <-timer.C:
			}
		}
	}
	return exchangeGrouped(ctx, s.inner, step, outAll)
}

func (s *scheduledExchange[M]) Close() error { return s.inner.Close() }
