// Package mr is a miniature in-process MapReduce runtime: parallel map tasks,
// a hash shuffle into R reducers, parallel reduce tasks, and counters. The
// paper's baselines (Afrati's one-round multiway join and SGIA-MR's iterative
// edge join) are defined purely in terms of these primitives, so this runtime
// is the substrate they run on in this reproduction. The per-reducer load
// statistics it reports expose the shuffle skew — the "curse of the last
// reducer" — that Section 7.5 blames for the baselines' variance.
package mr

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"
)

// ErrShuffleBudget reports that a job exceeded its MaxShufflePairs budget —
// the reproduction's analogue of a MapReduce job dying from intermediate
// data blowup.
var ErrShuffleBudget = errors.New("mr: shuffle budget exceeded")

// Job describes one MapReduce round over inputs of type I with int64 keys
// and values of type V, producing outputs of type O.
//
// Keys are int64 because every key in this repository is a vertex id, an
// encoded vertex pair, or an encoded bucket tuple; a fixed key type keeps
// the shuffle allocation-free.
type Job[I, V, O any] struct {
	// Name labels the job in stats.
	Name string
	// Map processes one input record and emits key/value pairs.
	Map func(input I, emit func(key int64, value V))
	// Reduce processes one key group and emits outputs.
	Reduce func(key int64, values []V, emit func(O))
	// Reducers is R (>= 1). 0 means 8.
	Reducers int
	// Parallelism bounds concurrent map/reduce tasks. 0 means GOMAXPROCS.
	Parallelism int
	// MaxShufflePairs aborts the job with ErrShuffleBudget when the shuffle
	// would hold more pairs. 0 means unlimited.
	MaxShufflePairs int64
}

// Stats reports one round's behavior.
type Stats struct {
	Name         string
	Inputs       int64
	ShufflePairs int64
	Outputs      int64
	// ReducerPairs[r] is the number of pairs shuffled into reducer r; the
	// max/mean ratio is the skew metric.
	ReducerPairs []int64
	MapTime      time.Duration
	ReduceTime   time.Duration
}

// MaxReducerLoad returns the heaviest reducer's pair count.
func (s *Stats) MaxReducerLoad() int64 {
	var max int64
	for _, c := range s.ReducerPairs {
		if c > max {
			max = c
		}
	}
	return max
}

// Skew returns max/mean reducer load (1 = perfectly balanced).
func (s *Stats) Skew() float64 {
	if s.ShufflePairs == 0 || len(s.ReducerPairs) == 0 {
		return 1
	}
	mean := float64(s.ShufflePairs) / float64(len(s.ReducerPairs))
	return float64(s.MaxReducerLoad()) / mean
}

type pair[V any] struct {
	key   int64
	value V
}

// Run executes the job over inputs and returns the collected outputs.
func Run[I, V, O any](job Job[I, V, O], inputs []I) ([]O, *Stats, error) {
	r := job.Reducers
	if r <= 0 {
		r = 8
	}
	par := job.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if job.Map == nil || job.Reduce == nil {
		return nil, nil, fmt.Errorf("mr: job %q needs Map and Reduce", job.Name)
	}
	stats := &Stats{Name: job.Name, Inputs: int64(len(inputs)), ReducerPairs: make([]int64, r)}

	// Map phase: each task fills per-reducer buckets.
	mapStart := time.Now()
	chunks := par
	if chunks > len(inputs) {
		chunks = len(inputs)
	}
	if chunks == 0 {
		chunks = 1
	}
	buckets := make([][][]pair[V], chunks)
	var wg sync.WaitGroup
	for c := 0; c < chunks; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			local := make([][]pair[V], r)
			lo := len(inputs) * c / chunks
			hi := len(inputs) * (c + 1) / chunks
			emit := func(key int64, value V) {
				red := int(uint64(mix64(uint64(key))) % uint64(r))
				local[red] = append(local[red], pair[V]{key: key, value: value})
			}
			for _, in := range inputs[lo:hi] {
				job.Map(in, emit)
			}
			buckets[c] = local
		}(c)
	}
	wg.Wait()
	stats.MapTime = time.Since(mapStart)

	for _, local := range buckets {
		for red, ps := range local {
			stats.ReducerPairs[red] += int64(len(ps))
			stats.ShufflePairs += int64(len(ps))
		}
	}
	if job.MaxShufflePairs > 0 && stats.ShufflePairs > job.MaxShufflePairs {
		return nil, stats, fmt.Errorf("%w: %d pairs > budget %d (job %q)",
			ErrShuffleBudget, stats.ShufflePairs, job.MaxShufflePairs, job.Name)
	}

	// Reduce phase: group by key within each reducer, then reduce groups.
	reduceStart := time.Now()
	outs := make([][]O, r)
	sem := make(chan struct{}, par)
	for red := 0; red < r; red++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(red int) {
			defer func() { <-sem; wg.Done() }()
			var ps []pair[V]
			for _, local := range buckets {
				ps = append(ps, local[red]...)
			}
			sort.SliceStable(ps, func(i, j int) bool { return ps[i].key < ps[j].key })
			var out []O
			emit := func(o O) { out = append(out, o) }
			for i := 0; i < len(ps); {
				j := i
				for j < len(ps) && ps[j].key == ps[i].key {
					j++
				}
				values := make([]V, 0, j-i)
				for _, p := range ps[i:j] {
					values = append(values, p.value)
				}
				job.Reduce(ps[i].key, values, emit)
				i = j
			}
			outs[red] = out
		}(red)
	}
	wg.Wait()
	stats.ReduceTime = time.Since(reduceStart)

	var result []O
	for _, out := range outs {
		result = append(result, out...)
	}
	stats.Outputs = int64(len(result))
	return result, stats, nil
}

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
