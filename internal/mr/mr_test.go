package mr

import (
	"errors"
	"sort"
	"strings"
	"testing"
)

func TestWordCount(t *testing.T) {
	lines := []string{"a b a", "b c", "a"}
	job := Job[string, int64, [2]int64]{
		Name: "wordcount",
		Map: func(line string, emit func(int64, int64)) {
			for _, w := range strings.Fields(line) {
				emit(int64(w[0]), 1)
			}
		},
		Reduce: func(key int64, values []int64, emit func([2]int64)) {
			var sum int64
			for _, v := range values {
				sum += v
			}
			emit([2]int64{key, sum})
		},
		Reducers: 4,
	}
	out, stats, err := Run(job, lines)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64]int64{}
	for _, kv := range out {
		got[kv[0]] = kv[1]
	}
	if got['a'] != 3 || got['b'] != 2 || got['c'] != 1 {
		t.Fatalf("counts = %v", got)
	}
	if stats.ShufflePairs != 6 || stats.Outputs != 3 || stats.Inputs != 3 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestKeyGroupingIsComplete(t *testing.T) {
	// Every value emitted under a key must arrive in exactly one Reduce call.
	n := 10000
	inputs := make([]int, n)
	for i := range inputs {
		inputs[i] = i
	}
	job := Job[int, int64, int64]{
		Map: func(i int, emit func(int64, int64)) {
			emit(int64(i%97), int64(i))
		},
		Reduce: func(key int64, values []int64, emit func(int64)) {
			emit(int64(len(values)))
		},
		Reducers: 7,
	}
	out, _, err := Run(job, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 97 {
		t.Fatalf("got %d key groups, want 97", len(out))
	}
	var total int64
	for _, c := range out {
		total += c
	}
	if total != int64(n) {
		t.Fatalf("grouped %d values, want %d", total, n)
	}
}

func TestEmptyInputs(t *testing.T) {
	job := Job[int, int64, int64]{
		Map:    func(int, func(int64, int64)) {},
		Reduce: func(int64, []int64, func(int64)) {},
	}
	out, stats, err := Run(job, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 || stats.ShufflePairs != 0 {
		t.Fatal("empty job should produce nothing")
	}
}

func TestShuffleBudget(t *testing.T) {
	inputs := make([]int, 1000)
	job := Job[int, int64, int64]{
		Map:             func(i int, emit func(int64, int64)) { emit(1, 1); emit(2, 1) },
		Reduce:          func(k int64, vs []int64, emit func(int64)) { emit(k) },
		MaxShufflePairs: 500,
	}
	_, stats, err := Run(job, inputs)
	if !errors.Is(err, ErrShuffleBudget) {
		t.Fatalf("err = %v, want ErrShuffleBudget", err)
	}
	if stats == nil || stats.ShufflePairs != 2000 {
		t.Fatalf("budget stats missing: %+v", stats)
	}
}

func TestMissingFunctions(t *testing.T) {
	if _, _, err := Run(Job[int, int64, int64]{}, []int{1}); err == nil {
		t.Fatal("job without Map/Reduce accepted")
	}
}

func TestSkewMetric(t *testing.T) {
	// All pairs under one key land on one reducer: skew = R.
	inputs := make([]int, 800)
	job := Job[int, int64, int64]{
		Map:      func(i int, emit func(int64, int64)) { emit(42, 1) },
		Reduce:   func(k int64, vs []int64, emit func(int64)) { emit(int64(len(vs))) },
		Reducers: 8,
	}
	_, stats, err := Run(job, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Skew() != 8 {
		t.Fatalf("skew = %g, want 8", stats.Skew())
	}
	if stats.MaxReducerLoad() != 800 {
		t.Fatalf("max load = %d, want 800", stats.MaxReducerLoad())
	}
}

func TestReduceSeesSortedDistinctKeys(t *testing.T) {
	inputs := []int{5, 3, 5, 1, 3, 5}
	var mu sortedRecorder
	job := Job[int, int64, int64]{
		Map: func(i int, emit func(int64, int64)) { emit(int64(i), 1) },
		Reduce: func(k int64, vs []int64, emit func(int64)) {
			mu.record(k, len(vs))
		},
		Reducers: 1,
	}
	if _, _, err := Run(job, inputs); err != nil {
		t.Fatal(err)
	}
	if len(mu.keys) != 3 {
		t.Fatalf("reduce called %d times, want 3", len(mu.keys))
	}
	if !sort.SliceIsSorted(mu.keys, func(i, j int) bool { return mu.keys[i] < mu.keys[j] }) {
		t.Fatalf("keys not sorted within reducer: %v", mu.keys)
	}
	if mu.counts[sortIndex(mu.keys, 5)] != 3 {
		t.Fatalf("key 5 group size wrong: keys=%v counts=%v", mu.keys, mu.counts)
	}
}

type sortedRecorder struct {
	keys   []int64
	counts []int
}

func (r *sortedRecorder) record(k int64, n int) {
	r.keys = append(r.keys, k)
	r.counts = append(r.counts, n)
}

func sortIndex(keys []int64, k int64) int {
	for i, x := range keys {
		if x == k {
			return i
		}
	}
	return -1
}

func BenchmarkShuffle(b *testing.B) {
	inputs := make([]int, 100000)
	for i := range inputs {
		inputs[i] = i
	}
	job := Job[int, int64, int64]{
		Map:      func(i int, emit func(int64, int64)) { emit(int64(i%1000), int64(i)) },
		Reduce:   func(k int64, vs []int64, emit func(int64)) { emit(int64(len(vs))) },
		Reducers: 16,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Run(job, inputs); err != nil {
			b.Fatal(err)
		}
	}
}
