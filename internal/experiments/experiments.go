// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 7) on the synthetic dataset analogues. Each function
// returns a formatted text report with the same rows/series the paper plots;
// EXPERIMENTS.md records the measured output against the paper's claims.
//
// Two runtime metrics appear:
//   - wall: physical elapsed time; used when comparing different systems
//     (Figures 3, 7; Tables 3, 4), all of which parallelize on this machine.
//   - makespan: the Equation 3 cost Σ_s max_k L_ks from per-worker compute
//     times; used when the simulated worker count exceeds the physical core
//     count (Figures 5, 8).
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"psgl/internal/afrati"
	"psgl/internal/core"
	"psgl/internal/datasets"
	"psgl/internal/graph"
	"psgl/internal/graphchi"
	"psgl/internal/obs"
	"psgl/internal/onehop"
	"psgl/internal/pattern"
	"psgl/internal/sgia"
	"psgl/internal/stats"
)

// workers is the standard worker count for cross-system experiments.
const workers = 8

type report struct {
	sb strings.Builder
	tw *tabwriter.Writer
}

func newReport(title string) *report {
	r := &report{}
	fmt.Fprintf(&r.sb, "== %s ==\n", title)
	r.tw = tabwriter.NewWriter(&r.sb, 2, 4, 2, ' ', 0)
	return r
}

func (r *report) row(cells ...string) {
	fmt.Fprintln(r.tw, strings.Join(cells, "\t"))
}

func (r *report) rowf(format string, args ...any) {
	fmt.Fprintf(r.tw, format+"\n", args...)
}

func (r *report) note(format string, args ...any) {
	r.tw.Flush()
	fmt.Fprintf(&r.sb, format+"\n", args...)
}

func (r *report) String() string {
	r.tw.Flush()
	return r.sb.String()
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
}

// Observer, when non-nil, is attached to every PSgL engine run an experiment
// performs — the plumbing behind psgl-bench's -trace and -pprof-addr flags.
var Observer *obs.Observer

// obsOpts attaches the package Observer unless the options carry their own.
func obsOpts(opts core.Options) core.Options {
	if opts.Observer == nil {
		opts.Observer = Observer
	}
	return opts
}

func runPSgL(g *graph.Graph, p *pattern.Pattern, opts core.Options) *core.Result {
	res, err := core.Run(g, p, obsOpts(opts))
	if err != nil {
		panic(fmt.Sprintf("experiments: psgl %s: %v", p.Name(), err))
	}
	return res
}

// Figure3 compares the five distribution strategies (Random, Roulette, WA-1,
// WA-0, WA-0.5) on the four panels of Figure 3: PG2 on webgoogle, wikitalk,
// uspatent and PG4 on livejournal. The paper's finding: WA-0.5 wins clearly
// on skewed graphs when middle iterations generate new Gpsis (PG2), is less
// dominant on the mildly skewed uspatent, and all strategies tie for the
// clique PG4 (only the first iteration generates Gpsis).
func Figure3() string {
	r := newReport("Figure 3: distribution strategies (Eq.3 load makespan, lower is better)")
	panels := []struct {
		graph string
		pat   *pattern.Pattern
	}{
		{"webgoogle", pattern.PG2()},
		{"wikitalk", pattern.PG2()},
		{"uspatent", pattern.PG2()},
		{"livejournal", pattern.PG4()},
	}
	r.row("panel", "Random", "Roulette", "(WA,1)", "(WA,0)", "(WA,0.5)", "count")
	for _, panel := range panels {
		g := datasets.MustLoad(panel.graph)
		cells := []string{fmt.Sprintf("%s on %s", panel.pat.Name(), panel.graph)}
		var count int64
		for _, cfg := range strategyConfigs() {
			opts := cfg.opts
			opts.Workers = workers
			res := runPSgL(g, panel.pat, opts)
			count = res.Count
			cells = append(cells, fmt.Sprintf("%.3g", res.Stats.LoadMakespan))
		}
		cells = append(cells, fmt.Sprintf("%d", count))
		r.row(cells...)
	}
	return r.String()
}

type strategyConfig struct {
	name string
	opts core.Options
}

func strategyConfigs() []strategyConfig {
	return []strategyConfig{
		{"Random", core.Options{Strategy: core.StrategyRandom}},
		{"Roulette", core.Options{Strategy: core.StrategyRoulette}},
		{"(WA,1)", core.Options{Strategy: core.StrategyWorkloadAware, Alpha: 1}},
		{"(WA,0)", core.Options{Strategy: core.StrategyWorkloadAware, Alpha: 0.001}},
		{"(WA,0.5)", core.Options{Strategy: core.StrategyWorkloadAware, Alpha: 0.5}},
	}
}

// Figure5 reports each worker's accumulated compute time for PG2 on wikitalk
// under every strategy — the paper's per-worker balance plot. WA-0.5 should
// both balance the workers and minimize the slowest one.
func Figure5() string {
	r := newReport("Figure 5: per-worker load units, PG2 on wikitalk (52 workers)")
	g := datasets.MustLoad("wikitalk")
	const k = 52
	r.row("strategy", "min", "p50", "max", "imbalance(max/mean)", "load makespan")
	for _, cfg := range strategyConfigs() {
		opts := cfg.opts
		opts.Workers = k
		res := runPSgL(g, pattern.PG2(), opts)
		s := stats.Summarize(res.Stats.LoadUnits)
		r.rowf("%s\t%.3g\t%.3g\t%.3g\t%.2f\t%.3g",
			cfg.name, s.Min, s.P50, s.Max, s.ImbalanceFactor, res.Stats.LoadMakespan)
	}
	return r.String()
}

// Figure6 measures the influence of the initial pattern vertex: for each
// panel, every initial vertex's runtime is normalized to the best one. The
// paper's finding: gaps of 4x-285x on power-law graphs, ~1x on the random
// graph.
func Figure6() string {
	r := newReport("Figure 6: runtime ratio per initial pattern vertex (best = 1.0)")
	panels := []struct {
		graph string
		pats  []*pattern.Pattern
	}{
		{"livejournal", []*pattern.Pattern{pattern.PG1(), pattern.PG4()}},
		{"wikitalk", []*pattern.Pattern{pattern.PG2(), pattern.PG4()}},
		{"webgoogle", []*pattern.Pattern{pattern.PG1(), pattern.PG4()}},
		{"randgraph", []*pattern.Pattern{pattern.PG1(), pattern.PG2()}},
	}
	r.row("panel", "v1", "v2", "v3", "v4", "auto-pick")
	for _, panel := range panels {
		g := datasets.MustLoad(panel.graph)
		for _, p := range panel.pats {
			times := make([]float64, p.N())
			best := 0.0
			for v := 0; v < p.N(); v++ {
				opts := core.Options{Workers: workers, InitialVertex: v}
				res := runPSgL(g, p, opts)
				times[v] = float64(res.Stats.SimulatedMakespan.Microseconds())
				if best == 0 || times[v] < best {
					best = times[v]
				}
			}
			auto := runPSgL(g, p, core.Options{Workers: workers, InitialVertex: -1})
			cells := []string{fmt.Sprintf("%s on %s", p.Name(), panel.graph)}
			for v := 0; v < 4; v++ {
				if v < p.N() {
					cells = append(cells, fmt.Sprintf("%.1f", times[v]/best))
				} else {
					cells = append(cells, "-")
				}
			}
			cells = append(cells, fmt.Sprintf("v%d", auto.Stats.InitialVertex+1))
			r.row(cells...)
		}
	}
	return r.String()
}

// Table2 measures the light-weight edge index's pruning ratio: the number of
// generated Gpsis with and without the index (plus an OOM row reproduced via
// a deliberately bounded intermediate budget, as in the paper's PG4 run).
func Table2() string {
	r := newReport("Table 2: pruning ratio of the edge index (Gpsi#)")
	// Budgets model per-node memory (≈0.5GB of in-flight Gpsis): ample for
	// the rows the paper reports numbers for, exceeded by the PG4 run whose
	// w/o-index configuration OOMed in the paper too.
	rows := []struct {
		graph   string
		pat     *pattern.Pattern
		initial int
		budget  int64 // for the w/o-index run
	}{
		{"livejournal", pattern.PG1(), 0, 20_000_000},
		{"livejournal", pattern.PG4(), 0, 20_000_000},
		{"wikitalk", pattern.PG4(), 0, 20_000_000},
		{"uspatent", pattern.PG5(), 0, 20_000_000},
		{"uspatent", pattern.PG5(), 2, 20_000_000},
	}
	r.row("graph", "pattern(init)", "Gpsi# w/ index", "Gpsi# w/o index", "pruning ratio")
	for _, row := range rows {
		g := datasets.MustLoad(row.graph)
		with := runPSgL(g, row.pat, core.Options{Workers: workers, InitialVertex: row.initial})
		withoutOpts := core.Options{
			Workers:          workers,
			InitialVertex:    row.initial,
			DisableEdgeIndex: true,
			MaxIntermediate:  row.budget,
		}
		res, err := core.Run(g, row.pat, obsOpts(withoutOpts))
		var withoutCell, ratioCell string
		if err != nil {
			withoutCell, ratioCell = "OOM", "unknown"
		} else {
			withoutCell = fmt.Sprintf("%.3g", float64(res.Stats.GpsiGenerated))
			ratio := 1 - float64(with.Stats.GpsiGenerated)/float64(res.Stats.GpsiGenerated)
			ratioCell = fmt.Sprintf("%.2f%%", 100*ratio)
		}
		r.rowf("%s\t%s(v%d)\t%.3g\t%s\t%s",
			row.graph, row.pat.Name(), row.initial+1,
			float64(with.Stats.GpsiGenerated), withoutCell, ratioCell)
	}
	return r.String()
}

// Figure7 compares PSgL with the two MapReduce baselines on PG1-PG4 across
// four graphs; each system's wall time is normalized to PSgL's ("runtime
// ratio"). The paper's finding: PSgL wins broadly (up to ~90% gains), and the
// two baselines surpass each other interleaved across datasets.
func Figure7() string {
	r := newReport("Figure 7: runtime ratio vs PSgL (wall time; PSgL = 1.0)")
	graphs := []string{"livejournal", "wikitalk", "webgoogle", "uspatent"}
	pats := []*pattern.Pattern{pattern.PG1(), pattern.PG2(), pattern.PG3(), pattern.PG4()}
	// Baselines get a shuffle budget (the paper likewise cut MapReduce cells
	// that did not finish within four hours); "DNF" marks a budget abort.
	const baselineBudget = 30_000_000
	r.row("pattern", "graph", "PSgL", "Afrati", "SGIA-MR", "count")
	for _, p := range pats {
		for _, name := range graphs {
			g := datasets.MustLoad(name)
			ps := runPSgL(g, p, core.Options{Workers: workers})
			base := ps.Stats.WallTime.Seconds()
			af, err := afrati.Run(g, p, afrati.Options{Buckets: 6, MaxShufflePairs: baselineBudget})
			afCell := "DNF"
			if err == nil {
				if af.Count != ps.Count {
					afCell = fmt.Sprintf("MISMATCH(%d)", af.Count)
				} else {
					afCell = fmt.Sprintf("%.1f", af.Stats.WallTime.Seconds()/base)
				}
			}
			sg, err := sgia.Run(g, p, sgia.Options{MaxIntermediate: baselineBudget})
			sgCell := "DNF"
			if err == nil {
				if sg.Count != ps.Count {
					sgCell = fmt.Sprintf("MISMATCH(%d)", sg.Count)
				} else {
					sgCell = fmt.Sprintf("%.1f", sg.Stats.WallTime.Seconds()/base)
				}
			}
			r.rowf("%s\t%s\t1.0 (%s)\t%s\t%s\t%d",
				p.Name(), name, ms(ps.Stats.WallTime), afCell, sgCell, ps.Count)
		}
	}
	return r.String()
}

// Table3 reproduces the triangle-listing comparison on the two largest
// graphs: Afrati (MapReduce), the PowerGraph stand-in (one-hop engine), the
// GraphChi stand-in (centralized single-thread), and PSgL. Paper's shape:
// PowerGraph < PSgL < GraphChi ≪ Afrati.
func Table3() string {
	r := newReport("Table 3: triangle listing on large graphs (wall time)")
	r.row("graph", "Afrati", "PowerGraph~", "GraphChi~", "PSgL", "triangles")
	for _, name := range []string{"twitter", "wikipedia"} {
		g := datasets.MustLoad(name)
		ps := runPSgL(g, pattern.PG1(), core.Options{Workers: workers})

		afStart := time.Now()
		af, err := afrati.Run(g, pattern.PG1(), afrati.Options{Buckets: 6})
		afT := time.Since(afStart)
		afCell := "fail"
		if err == nil && af.Count == ps.Count {
			afCell = ms(afT)
		}

		oh, err := onehop.Run(g, pattern.PG1(), onehop.Options{Workers: workers})
		ohCell := "fail"
		if err == nil && oh.Count == ps.Count {
			ohCell = ms(oh.Stats.WallTime)
		}

		gc, err := graphchi.CountTriangles(g, graphchi.Options{Shards: 8})
		gcCell := "fail"
		if err == nil {
			if gc.Triangles != ps.Count {
				gcCell = fmt.Sprintf("MISMATCH(%d)", gc.Triangles)
			} else {
				gcCell = ms(gc.Stats.BuildTime + gc.Stats.ComputeTime)
			}
		}

		r.rowf("%s\t%s\t%s\t%s\t%s\t%d", name, afCell, ohCell, gcCell, ms(ps.Stats.WallTime), ps.Count)
	}
	return r.String()
}

// Table4 reproduces the general-pattern comparison against the one-hop
// fixed-order engine, including traversal-order sensitivity and OOM rows
// (via bounded intermediate budgets). Paper's shape: the one-hop engine wins
// on PG2, degrades or OOMs on PG3 (bad order), PG4 and PG5; PSgL is robust
// throughout.
func Table4() string {
	r := newReport("Table 4: general patterns vs the one-hop engine (wall time)")
	type rowSpec struct {
		graph  string
		pat    *pattern.Pattern
		order  []int
		budget int64
	}
	// Budgets model per-node memory: enough for the well-ordered easy
	// patterns, exceeded by the blowup cases (the paper's OOM rows). The
	// paper runs PG5 on webgoogle; our webgoogle analogue is denser than
	// the original relative to its size and its house count explodes past
	// single-machine memory, so the PG5 row uses the uspatent analogue
	// (recorded in EXPERIMENTS.md).
	const nodeBudget = 16_000_000
	rows := []rowSpec{
		{"wikitalk", pattern.PG2(), []int{0, 1, 2, 3}, nodeBudget},
		{"wikitalk", pattern.PG3(), []int{1, 2, 3, 0}, nodeBudget},
		{"wikitalk", pattern.PG3(), []int{0, 1, 2, 3}, nodeBudget},
		{"wikitalk", pattern.PG4(), []int{0, 1, 2, 3}, nodeBudget},
		{"livejournal", pattern.PG4(), []int{0, 1, 2, 3}, nodeBudget},
		{"uspatent", pattern.PG5(), []int{0, 1, 4, 2, 3}, nodeBudget},
	}
	r.row("graph", "pattern", "order", "Afrati", "PowerGraph~", "PSgL", "count")
	for _, row := range rows {
		g := datasets.MustLoad(row.graph)
		ps, psErr := core.Run(g, row.pat, obsOpts(core.Options{Workers: workers, MaxIntermediate: 30_000_000}))
		psCell := "OOM"
		var count int64 = -1
		if psErr == nil {
			psCell = ms(ps.Stats.WallTime)
			count = ps.Count
		}

		orderCell := orderString(row.order)
		oh, err := onehop.Run(g, row.pat, onehop.Options{
			Workers:         workers,
			Order:           row.order,
			MaxIntermediate: row.budget,
		})
		ohCell := "OOM"
		if err == nil {
			if count >= 0 && oh.Count != count {
				ohCell = fmt.Sprintf("MISMATCH(%d)", oh.Count)
			} else {
				ohCell = ms(oh.Stats.WallTime)
			}
		}

		af, err := afrati.Run(g, row.pat, afrati.Options{Buckets: 6, MaxShufflePairs: 30_000_000})
		afCell := "OOM"
		if err == nil {
			if count >= 0 && af.Count != count {
				afCell = fmt.Sprintf("MISMATCH(%d)", af.Count)
			} else {
				afCell = ms(af.Stats.WallTime)
			}
		}

		r.rowf("%s\t%s\t%s\t%s\t%s\t%s\t%d",
			row.graph, row.pat.Name(), orderCell, afCell, ohCell, psCell, count)
	}
	return r.String()
}

func orderString(order []int) string {
	parts := make([]string, len(order))
	for i, v := range order {
		parts[i] = fmt.Sprintf("%d", v+1)
	}
	return strings.Join(parts, "->")
}

// Figure8 sweeps the worker count for PG2 on wikitalk and reports the
// simulated makespan next to the ideal (1/K) curve — the paper's near-linear
// scalability plot.
func Figure8() string {
	r := newReport("Figure 8: scalability with worker count, PG2 on wikitalk (Eq.3 load makespan)")
	g := datasets.MustLoad("wikitalk")
	counts := []int{1, 2, 5, 10, 20, 40, 80}
	r.row("workers", "load makespan", "ideal", "speedup", "count")
	var base float64
	for _, k := range counts {
		res := runPSgL(g, pattern.PG2(), core.Options{Workers: k})
		mkspan := res.Stats.LoadMakespan
		if k == counts[0] {
			base = mkspan
		}
		r.rowf("%d\t%.3g\t%.3g\t%.2fx\t%d",
			k, mkspan, base/float64(k), base/mkspan, res.Count)
	}
	return r.String()
}

// Property1 verifies the nb/ns polarization of Section 3: after degree
// ordering, the nb distribution is more skewed (smaller fitted γ) and the
// ns distribution more balanced (larger fitted γ) than the raw degrees.
func Property1() string {
	r := newReport("Property 1: nb/ns distributions after degree ordering (webgoogle)")
	g := datasets.MustLoad("webgoogle")
	o := graph.NewOrdered(g)
	deg := make([]int32, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		deg[v] = int32(g.Degree(graph.VertexID(v)))
	}
	// All three series are fitted at the same dmin (twice the mean degree)
	// so the exponents are comparable; the balanced ns series has almost no
	// tail above that threshold — which is the point — so its dmin clamps to
	// half its own maximum.
	degDist := stats.NewDistribution(deg)
	commonDmin := int(2 * degDist.Mean())
	if commonDmin < 6 {
		commonDmin = 6
	}
	fit := func(name string, xs []int32) {
		d := stats.NewDistribution(xs)
		dmin := commonDmin
		if dmin > d.Max()/2 {
			dmin = d.Max() / 2
		}
		gamma, err := d.PowerLawGamma(dmin)
		if err != nil {
			r.rowf("%s\tmax=%d\tmean=%.1f\tγ=fit-failed (%v)", name, d.Max(), d.Mean(), err)
			return
		}
		r.rowf("%s\tmax=%d\tmean=%.1f\tγ=%.2f (dmin=%d)", name, d.Max(), d.Mean(), gamma, dmin)
	}
	r.row("series", "max", "mean", "gamma")
	fit("degree", deg)
	fit("nb", o.NBValues())
	fit("ns", o.NSValues())
	r.note("paper (WebGoogle): degree γ=1.66 → nb γ=1.54 (more skewed), ns γ=3.97 (more balanced)")
	return r.String()
}

// Datasets prints Table 1: the paper's datasets next to this reproduction's
// synthetic analogues.
func Datasets() string {
	r := newReport("Table 1: datasets (paper original vs synthetic analogue)")
	r.row("name", "paper |V|", "paper |E|", "analogue |V|", "analogue |E|", "max deg", "fitted tail γ")
	for _, name := range datasets.Names() {
		spec, _ := datasets.Get(name)
		g := datasets.MustLoad(name)
		d := stats.FromHistogram(g.DegreeHistogram())
		avg := int(d.Mean())
		if avg < 1 {
			avg = 1
		}
		gammaCell := "-"
		if gamma, err := d.PowerLawGamma(5 * avg); err == nil {
			gammaCell = fmt.Sprintf("%.2f", gamma)
		}
		r.rowf("%s\t%s\t%s\t%d\t%d\t%d\t%s",
			name, spec.PaperVertices, spec.PaperEdges,
			g.NumVertices(), g.NumEdges(), g.MaxDegree(), gammaCell)
	}
	return r.String()
}

// All runs every experiment in paper order.
func All() string {
	var sb strings.Builder
	for _, fn := range []func() string{
		Datasets, Property1, Figure3, Figure5, Figure6, Table2, Figure7, Table3, Table4, Figure8, Makespan,
	} {
		sb.WriteString(fn())
		sb.WriteString("\n")
	}
	return sb.String()
}

// ByName resolves an experiment by CLI name.
func ByName(name string) (func() string, error) {
	m := map[string]func() string{
		"datasets":  Datasets,
		"property1": Property1,
		"fig3":      Figure3,
		"fig5":      Figure5,
		"fig6":      Figure6,
		"table2":    Table2,
		"fig7":      Figure7,
		"table3":    Table3,
		"table4":    Table4,
		"fig8":      Figure8,
		"makespan":  Makespan,
		"hotpath":   Hotpath,
		"serve":     Serve,
		"chaos":     Chaos,
		"census":    Census,
		"update":    Update,
		"all":       All,
	}
	fn, ok := m[name]
	if !ok {
		names := make([]string, 0, len(m))
		for k := range m {
			names = append(names, k)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, names)
	}
	return fn, nil
}
