package experiments

// Hotpath runs the engine's hot-path microbenchmarks (steady-state expansion
// and the exchange frame codec, wire vs gob) via testing.Benchmark and
// reports ns/op, B/op, and allocs/op — the regression axes the PR-level
// acceptance tracks. HotpathJSON emits the same numbers machine-readably for
// the committed BENCH_hotpath.json baseline.

import (
	"encoding/json"
	"fmt"
	"testing"

	"psgl/internal/core"
)

// HotpathResult is one microbenchmark's measurement in the JSON baseline.
type HotpathResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
}

// HotpathReport is the full machine-readable hot-path baseline.
type HotpathReport struct {
	Benchmarks []HotpathResult `json:"benchmarks"`
	// FrameWireBytes and FrameGobBytes are the encoded sizes of the same
	// exchange batch under the two codecs.
	FrameWireBytes int `json:"frame_wire_bytes"`
	FrameGobBytes  int `json:"frame_gob_bytes"`
	// CompressedFrames compares flat vs prefix-compressed encodings of the
	// same per-destination batch, per pattern and exchange depth: the
	// bytes-on-wire acceptance axis of Options.CompressFrames.
	CompressedFrames []core.CompressedBytesMeasure `json:"compressed_frames"`
}

func runHotpath() (*HotpathReport, error) {
	rep := &HotpathReport{}
	for _, hb := range core.HotpathBenchmarks() {
		r := testing.Benchmark(hb.Fn)
		res := HotpathResult{
			Name:        hb.Name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if v, ok := r.Extra["MB/s"]; ok {
			res.MBPerSec = v
		} else if r.Bytes > 0 && r.T > 0 {
			res.MBPerSec = float64(r.Bytes) * float64(r.N) / 1e6 / r.T.Seconds()
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
	}
	wire, gob, err := core.HotpathFrameBytes()
	if err != nil {
		return nil, err
	}
	rep.FrameWireBytes = wire
	rep.FrameGobBytes = gob
	cb, err := core.HotpathCompressedBytes()
	if err != nil {
		return nil, err
	}
	rep.CompressedFrames = cb
	return rep, nil
}

// Hotpath returns the text report of the hot-path microbenchmarks.
func Hotpath() string {
	rep, err := runHotpath()
	if err != nil {
		panic(fmt.Sprintf("experiments: hotpath: %v", err))
	}
	r := newReport("Hot path: expansion + exchange codec")
	r.row("bench", "ns/op", "B/op", "allocs/op", "MB/s")
	for _, b := range rep.Benchmarks {
		mb := "-"
		if b.MBPerSec > 0 {
			mb = fmt.Sprintf("%.0f", b.MBPerSec)
		}
		r.rowf("%s\t%.0f\t%d\t%d\t%s", b.Name, b.NsPerOp, b.BytesPerOp, b.AllocsPerOp, mb)
	}
	r.note("same batch encoded: wire %dB vs gob %dB (%.0f%% of gob)",
		rep.FrameWireBytes, rep.FrameGobBytes,
		100*float64(rep.FrameWireBytes)/float64(rep.FrameGobBytes))
	for _, c := range rep.CompressedFrames {
		r.note("compressed frames %s level %d: %d envelopes, flat %dB vs compressed %dB (%.2fx)",
			c.Pattern, c.Level, c.Envelopes, c.FlatBytes, c.CompressedBytes, c.Ratio)
	}
	return r.String()
}

// HotpathJSON returns the hot-path baseline as indented JSON, the content of
// the committed BENCH_hotpath.json.
func HotpathJSON() ([]byte, error) {
	rep, err := runHotpath()
	if err != nil {
		return nil, err
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
