package experiments

// Serve benchmarks the resident query service (internal/serve): queries per
// second and latency percentiles for count-only queries over HTTP at
// increasing client concurrency, on the Chung–Lu analogue with PG1 and PG3.
// This is the serving-mode counterpart of the batch experiments: the graph
// is loaded once, the plan cache is warm after the first query per pattern,
// and each query still runs the full PSgL engine.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"psgl/internal/gen"
	"psgl/internal/serve"
)

// ServeResult is one (pattern, concurrency) cell of the serving benchmark.
type ServeResult struct {
	Pattern     string  `json:"pattern"`
	Concurrency int     `json:"concurrency"`
	Queries     int     `json:"queries"`
	QPS         float64 `json:"qps"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
}

// ServeReport is the machine-readable serving baseline (BENCH_serve.json).
type ServeReport struct {
	Graph          string        `json:"graph"`
	WorkersPerRun  int           `json:"workers_per_run"`
	MaxInFlight    int           `json:"max_inflight"`
	Cells          []ServeResult `json:"cells"`
	PlanCacheHits  int64         `json:"plan_cache_hits"`
	PlanCacheMiss  int64         `json:"plan_cache_misses"`
	QueriesServed  int64         `json:"queries_served"`
	QueriesDropped int64         `json:"queries_rejected"`
}

const (
	serveGraphSpec   = "chunglu:2000:8000:1.8"
	serveQueriesCell = 64
	serveMaxInFlight = 8
	serveWorkers     = 2
)

var serveConcurrencies = []int{1, 8, 64}

func runServe() (*ServeReport, error) {
	g := gen.ChungLu(2000, 8000, 1.8, 7)
	srv, err := serve.New(g, serve.Config{
		Workers:     serveWorkers,
		MaxInFlight: serveMaxInFlight,
		MaxQueue:    4096, // the benchmark measures latency under load, not rejection
	})
	if err != nil {
		return nil, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	rep := &ServeReport{
		Graph:         serveGraphSpec,
		WorkersPerRun: serveWorkers,
		MaxInFlight:   serveMaxInFlight,
	}
	for _, pat := range []string{"pg1", "pg3"} {
		url := ts.URL + "/query?count_only=1&pattern=" + pat
		// One warm-up query builds the plan-cache entry so every measured
		// query exercises the steady state.
		if err := serveOneQuery(client, url); err != nil {
			return nil, fmt.Errorf("warm-up %s: %w", pat, err)
		}
		for _, conc := range serveConcurrencies {
			cell, err := serveCell(client, url, pat, conc)
			if err != nil {
				return nil, err
			}
			rep.Cells = append(rep.Cells, *cell)
		}
	}
	st := srv.Stats()
	rep.PlanCacheHits = st.Plans.Hits
	rep.PlanCacheMiss = st.Plans.Misses
	rep.QueriesServed = st.Queries.Completed
	rep.QueriesDropped = st.Queries.Rejected
	return rep, nil
}

func serveOneQuery(client *http.Client, url string) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	var body struct {
		Count int64 `json:"count"`
	}
	return json.NewDecoder(resp.Body).Decode(&body)
}

func serveCell(client *http.Client, url, pat string, conc int) (*ServeResult, error) {
	latencies := make([]time.Duration, serveQueriesCell)
	jobs := make(chan int)
	errs := make(chan error, conc)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				qStart := time.Now()
				if err := serveOneQuery(client, url); err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
				latencies[i] = time.Since(qStart)
			}
		}()
	}
	for i := 0; i < serveQueriesCell; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return nil, fmt.Errorf("serve bench %s@%d: %w", pat, conc, err)
	default:
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p := func(q float64) float64 {
		idx := int(q * float64(len(latencies)))
		if idx >= len(latencies) {
			idx = len(latencies) - 1
		}
		return float64(latencies[idx].Microseconds()) / 1000
	}
	return &ServeResult{
		Pattern:     pat,
		Concurrency: conc,
		Queries:     serveQueriesCell,
		QPS:         float64(serveQueriesCell) / elapsed.Seconds(),
		P50Ms:       p(0.50),
		P99Ms:       p(0.99),
	}, nil
}

// Serve returns the text report of the serving benchmark.
func Serve() string {
	rep, err := runServe()
	if err != nil {
		panic(fmt.Sprintf("experiments: serve: %v", err))
	}
	r := newReport("Resident query service: qps and latency by client concurrency")
	r.row("pattern", "clients", "queries", "qps", "p50", "p99")
	for _, c := range rep.Cells {
		r.rowf("%s\t%d\t%d\t%.0f\t%.1fms\t%.1fms", c.Pattern, c.Concurrency, c.Queries, c.QPS, c.P50Ms, c.P99Ms)
	}
	r.note("graph %s; %d engine workers/query, %d queries in flight max; plan cache: %d hits, %d misses",
		rep.Graph, rep.WorkersPerRun, rep.MaxInFlight, rep.PlanCacheHits, rep.PlanCacheMiss)
	return r.String()
}

// ServeJSON returns the serving baseline as indented JSON, the content of the
// committed BENCH_serve.json.
func ServeJSON() ([]byte, error) {
	rep, err := runServe()
	if err != nil {
		return nil, err
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
