package experiments

// Chaos runs the deterministic fault harness (internal/chaos) as a bench
// verb: seeded kill/mixed schedules over both the in-process and the
// loopback-TCP exchange, each verified bit-identical against a clean run of
// the same query. This is the robustness counterpart of the performance
// experiments — the number that matters is exact_runs == runs; the recovery
// and retry counters say how hard the engine had to work to get there.

import (
	"context"
	"encoding/json"
	"fmt"

	"psgl/internal/bsp"
	"psgl/internal/chaos"
	"psgl/internal/core"
	"psgl/internal/gen"
	"psgl/internal/pattern"
)

// ChaosResult is one (transport, schedule) cell of the chaos report.
type ChaosResult struct {
	Transport           string `json:"transport"`
	Schedule            string `json:"schedule"`
	Identical           bool   `json:"identical"`
	CleanCount          int64  `json:"clean_count"`
	ChaosCount          int64  `json:"chaos_count"`
	FaultsFired         int    `json:"faults_fired"`
	Recoveries          int64  `json:"recoveries"`
	Retries             int64  `json:"retries"`
	Restarts            int    `json:"restarts"`
	CorruptionsDetected int    `json:"corruptions_detected"`
}

// ChaosReport is the machine-readable chaos baseline (BENCH_chaos.json).
type ChaosReport struct {
	Graph      string        `json:"graph"`
	Pattern    string        `json:"pattern"`
	Workers    int           `json:"workers"`
	Runs       int           `json:"runs"`
	ExactRuns  int           `json:"exact_runs"`
	Recoveries int64         `json:"recoveries"`
	Retries    int64         `json:"retries"`
	Restarts   int           `json:"restarts"`
	Cells      []ChaosResult `json:"cells"`
}

const (
	chaosGraphSpec = "er:80:500 seed 1"
	chaosWorkers   = 3
	// chaosMaxStep caps fault steps at a barrier the query actually
	// reaches (PG2 over this graph runs 4 supersteps; the last barrier
	// exchanges nothing).
	chaosMaxStep = 2
	chaosSeeds   = 3
)

func runChaos() (*ChaosReport, error) {
	g := gen.ErdosRenyi(80, 500, 1)
	p := pattern.PG2()
	rep := &ChaosReport{
		Graph:   chaosGraphSpec,
		Pattern: "pg2",
		Workers: chaosWorkers,
	}

	type plan struct {
		transport string
		sched     chaos.Schedule
	}
	var plans []plan
	for seed := int64(1); seed <= chaosSeeds; seed++ {
		plans = append(plans,
			plan{"local", chaos.NewKillSchedule(seed, chaosWorkers, chaosMaxStep)},
			plan{"tcp", chaos.NewKillSchedule(seed, chaosWorkers, chaosMaxStep)},
		)
	}
	// One mixed schedule (kills, drops, delays, partitions) and one
	// corruption pair per transport on a fixed seed.
	for _, tr := range []string{"local", "tcp"} {
		plans = append(plans,
			plan{tr, chaos.NewSchedule(7, chaosWorkers, chaosMaxStep, 3)},
			plan{tr, chaos.Schedule{Seed: 11, Events: []chaos.Event{
				{Step: 1, Kind: chaos.CorruptCheckpoint},
				{Step: 2, Kind: chaos.Kill, Worker: 1},
			}}},
		)
	}

	for _, pl := range plans {
		cfg := chaos.Config{
			Graph:   g,
			Pattern: p,
			Opts:    core.Options{Workers: chaosWorkers, Seed: 1},
		}
		if pl.transport == "tcp" {
			cfg.Exchange = bsp.NewTCPExchangeFactory()
		}
		out, err := chaos.Run(context.Background(), cfg, pl.sched)
		if err != nil {
			return nil, fmt.Errorf("chaos %s %s: %w", pl.transport, pl.sched, err)
		}
		rep.Runs++
		if out.Identical {
			rep.ExactRuns++
		}
		rep.Recoveries += out.Recoveries
		rep.Retries += out.Retries
		rep.Restarts += out.Restarts
		rep.Cells = append(rep.Cells, ChaosResult{
			Transport:           pl.transport,
			Schedule:            pl.sched.String(),
			Identical:           out.Identical,
			CleanCount:          out.CleanCount,
			ChaosCount:          out.ChaosCount,
			FaultsFired:         out.FaultsFired,
			Recoveries:          out.Recoveries,
			Retries:             out.Retries,
			Restarts:            out.Restarts,
			CorruptionsDetected: out.CorruptionsDetected,
		})
	}
	return rep, nil
}

// Chaos returns the text report of the chaos harness.
func Chaos() string {
	rep, err := runChaos()
	if err != nil {
		panic(fmt.Sprintf("experiments: chaos: %v", err))
	}
	r := newReport("Chaos harness: seeded faults, exactness verified against clean runs")
	r.row("transport", "schedule", "exact", "fired", "recov", "retries", "restarts")
	for _, c := range rep.Cells {
		r.rowf("%s\t%s\t%v\t%d\t%d\t%d\t%d",
			c.Transport, c.Schedule, c.Identical, c.FaultsFired, c.Recoveries, c.Retries, c.Restarts)
	}
	r.note("graph %s, pattern %s, %d workers; %d/%d runs bit-identical; %d recoveries, %d retries, %d restarts total",
		rep.Graph, rep.Pattern, rep.Workers, rep.ExactRuns, rep.Runs, rep.Recoveries, rep.Retries, rep.Restarts)
	return r.String()
}

// ChaosJSON returns the chaos baseline as indented JSON, the content of the
// committed BENCH_chaos.json.
func ChaosJSON() ([]byte, error) {
	rep, err := runChaos()
	if err != nil {
		return nil, err
	}
	if rep.ExactRuns != rep.Runs {
		return nil, fmt.Errorf("experiments: chaos: only %d/%d runs bit-identical", rep.ExactRuns, rep.Runs)
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
