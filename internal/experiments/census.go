package experiments

// Census benchmarks the second engine (internal/esu): a full k-motif census
// at k=3 and k=4 over two power-law graphs, once with a single worker and a
// cold canonical-form memo cache, then with every core and the now-warm
// cache — the throughput and cache-amortization axes the PR-level acceptance
// tracks. CensusJSON emits the same numbers machine-readably for the
// committed BENCH_census.json baseline.

import (
	"encoding/json"
	"fmt"
	"runtime"

	"psgl/internal/esu"
	"psgl/internal/gen"
	"psgl/internal/graph"
)

// CensusRun is one (graph, k, workers) census measurement in the baseline.
type CensusRun struct {
	Graph   string `json:"graph"`
	K       int    `json:"k"`
	Workers int    `json:"workers"`
	// Subgraphs is the total connected k-subgraph count (identical across
	// worker configurations of the same graph and k — asserted at run time).
	Subgraphs int64 `json:"subgraphs"`
	// Classes is the number of motif isomorphism classes found.
	Classes int `json:"classes"`
	// MotifsPerSec is the enumeration throughput: subgraphs classified per
	// second of wall time.
	MotifsPerSec float64 `json:"motifs_per_sec"`
	// CanonHitRate is the canonical-form memo cache hit fraction. The cache
	// is shared across the worker configurations of one (graph, k) pair, so
	// the first run reports the cold rate and later runs the warm (≈1.0) one.
	CanonHitRate float64 `json:"canon_hit_rate"`
	WallMS       float64 `json:"wall_ms"`
}

// CensusReport is the full machine-readable census baseline.
type CensusReport struct {
	Runs []CensusRun `json:"runs"`
}

// censusGraphs returns the power-law data graphs the census benchmark sweeps:
// one in the skewed regime the paper's web/communication analogues occupy and
// one mildly skewed (citation-like), both sized so a k=4 census finishes in
// seconds on one core.
func censusGraphs() []struct {
	name string
	g    *graph.Graph
} {
	return []struct {
		name string
		g    *graph.Graph
	}{
		{"chunglu-skewed", gen.ChungLu(2000, 6000, 1.8, 41)},
		{"chunglu-mild", gen.ChungLu(3000, 9000, 2.5, 43)},
	}
}

func runCensus() (*CensusReport, error) {
	rep := &CensusReport{}
	for _, gr := range censusGraphs() {
		for k := 3; k <= 4; k++ {
			cache := esu.NewCanonCache(k)
			var first int64 = -1
			for _, workers := range workerSweep() {
				res, err := esu.Count(gr.g, k, esu.Options{
					Workers:  workers,
					Cache:    cache,
					Observer: Observer,
				})
				if err != nil {
					return nil, fmt.Errorf("census %s k=%d workers=%d: %w", gr.name, k, workers, err)
				}
				if first < 0 {
					first = res.Subgraphs
				} else if res.Subgraphs != first {
					return nil, fmt.Errorf("census %s k=%d: workers=%d counted %d subgraphs, first run counted %d",
						gr.name, k, workers, res.Subgraphs, first)
				}
				rep.Runs = append(rep.Runs, CensusRun{
					Graph:        gr.name,
					K:            k,
					Workers:      workers,
					Subgraphs:    res.Subgraphs,
					Classes:      len(res.Classes),
					MotifsPerSec: float64(res.Subgraphs) / res.Wall.Seconds(),
					CanonHitRate: res.CacheHitRate(),
					WallMS:       float64(res.Wall.Microseconds()) / 1000,
				})
			}
		}
	}
	return rep, nil
}

// workerSweep returns the census worker configurations: single-threaded, then
// every core. On a single-core machine the second run still measures the
// warm-cache regime.
func workerSweep() []int {
	if n := runtime.NumCPU(); n > 1 {
		return []int{1, n}
	}
	return []int{1, 1}
}

// Census returns the text report of the motif-census benchmark.
func Census() string {
	rep, err := runCensus()
	if err != nil {
		panic(fmt.Sprintf("experiments: census: %v", err))
	}
	r := newReport("Motif census: ESU engine throughput and cache amortization")
	r.row("graph", "k", "workers", "subgraphs", "classes", "motifs/s", "canon hit rate", "wall")
	for _, run := range rep.Runs {
		r.rowf("%s\t%d\t%d\t%d\t%d\t%.3g\t%.4f\t%.1fms",
			run.Graph, run.K, run.Workers, run.Subgraphs, run.Classes,
			run.MotifsPerSec, run.CanonHitRate, run.WallMS)
	}
	r.note("each (graph, k) pair shares one canonical-form memo cache: the first row is the cold rate, the second the warm one")
	return r.String()
}

// CensusJSON returns the census baseline as indented JSON, the content of the
// committed BENCH_census.json.
func CensusJSON() ([]byte, error) {
	rep, err := runCensus()
	if err != nil {
		return nil, err
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
