package experiments

import (
	"psgl/internal/makespan"
)

// Makespan studies the partial-subgraph-instance distribution problem of
// Definition 1 in isolation (Theorems 2 and 3): the online strategies against
// the brute-force optimum on small instances, and against each other plus
// the g(N)/K lower bound on large ones. It is the controlled companion to
// Figures 3 and 5, free of graph effects.
func Makespan() string {
	r := newReport("Distribution problem in isolation (Definition 1, Theorem 3)")

	// Small instances: exact OPT is computable; verify the K·OPT bound and
	// report how close each strategy lands.
	const smallTrials = 40
	var optSum, g0, gHalf, g1, rnd float64
	worstRatio := 0.0
	for seed := int64(0); seed < smallTrials; seed++ {
		inst := makespan.RandomInstance(8, 3, 20, seed)
		opt := makespan.Optimal(inst)
		optSum += opt.Makespan
		h := makespan.Greedy(inst, 0.5)
		g0 += makespan.Greedy(inst, 0.001).Makespan
		gHalf += h.Makespan
		g1 += makespan.Greedy(inst, 1).Makespan
		rnd += makespan.RandomAssign(inst, seed).Makespan
		if ratio := h.Makespan / opt.Makespan; ratio > worstRatio {
			worstRatio = ratio
		}
	}
	r.row("setting", "mean makespan", "vs OPT")
	r.rowf("OPT (brute force)\t%.1f\t1.00", optSum/smallTrials)
	r.rowf("greedy α=0.5\t%.1f\t%.2f", gHalf/smallTrials, gHalf/optSum)
	r.rowf("greedy α~0\t%.1f\t%.2f", g0/smallTrials, g0/optSum)
	r.rowf("greedy α=1\t%.1f\t%.2f", g1/smallTrials, g1/optSum)
	r.rowf("random\t%.1f\t%.2f", rnd/smallTrials, rnd/optSum)
	r.note("8 items × 3 workers × %d instances; worst α=0.5 ratio %.2f (Theorem 3 bound: K=3)",
		smallTrials, worstRatio)

	// Large instances: OPT is intractable; compare against the lower bound.
	const largeTrials = 20
	var lb, l0, lHalf, l1, lRnd float64
	for seed := int64(0); seed < largeTrials; seed++ {
		inst := makespan.RandomInstance(2000, 16, 100, seed)
		lb += makespan.LowerBound(inst)
		l0 += makespan.Greedy(inst, 0.001).Makespan
		lHalf += makespan.Greedy(inst, 0.5).Makespan
		l1 += makespan.Greedy(inst, 1).Makespan
		lRnd += makespan.RandomAssign(inst, seed).Makespan
	}
	r.row("", "", "")
	r.row("setting", "mean makespan", "vs lower bound")
	r.rowf("lower bound g(N)/K\t%.0f\t1.00", lb/largeTrials)
	r.rowf("greedy α=0.5\t%.0f\t%.2f", lHalf/largeTrials, lHalf/lb)
	r.rowf("greedy α~0\t%.0f\t%.2f", l0/largeTrials, l0/lb)
	r.rowf("greedy α=1\t%.0f\t%.2f", l1/largeTrials, l1/lb)
	r.rowf("random\t%.0f\t%.2f", lRnd/largeTrials, lRnd/lb)
	r.note("2000 items × 16 workers × %d instances", largeTrials)
	return r.String()
}
