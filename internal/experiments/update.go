package experiments

// Update benchmarks the dynamic-graph path (internal/graph.Overlay +
// internal/delta): a stream of small edge batches is applied to a resident
// power-law graph, and each batch's embedding delta is computed two ways —
// the anchored delta enumerator (what POST /update runs) and a full
// re-enumeration of the mutated graph (what a static server would have to
// do). Every batch is verified with the maintenance identity
// count(before) + gained - lost == count(after) against the full rerun, so
// the speedup column is a comparison of two provably identical answers.
// UpdateJSON emits the same numbers machine-readably for the committed
// BENCH_update.json baseline.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"time"

	"psgl/internal/core"
	"psgl/internal/delta"
	"psgl/internal/gen"
	"psgl/internal/graph"
	"psgl/internal/pattern"
)

// UpdateRun is one mutation batch's measurement.
type UpdateRun struct {
	Batch        int     `json:"batch"`
	EdgesAdded   int     `json:"edges_added"`
	EdgesRemoved int     `json:"edges_removed"`
	Gained       int64   `json:"gained"`
	Lost         int64   `json:"lost"`
	Count        int64   `json:"count"` // embeddings after the batch
	DeltaMS      float64 `json:"delta_ms"`
	FullMS       float64 `json:"full_ms"`
}

// UpdateReport is the full machine-readable dynamic-graph baseline.
type UpdateReport struct {
	Graph      string `json:"graph"`
	Pattern    string `json:"pattern"`
	Batches    int    `json:"batches"`
	BatchEdges int    `json:"batch_edges"`
	// UpdatesPerSec is the sustained mutation throughput of the delta path:
	// batches applied and maintained per second of wall time (overlay apply +
	// snapshot + delta enumeration).
	UpdatesPerSec float64 `json:"updates_per_sec"`
	DeltaTotalMS  float64 `json:"delta_total_ms"`
	FullTotalMS   float64 `json:"full_total_ms"`
	// Speedup is FullTotalMS / DeltaTotalMS — how much cheaper maintaining
	// the embedding set is than recomputing it per batch.
	Speedup float64     `json:"speedup"`
	Runs    []UpdateRun `json:"runs"`
}

// updateBatch draws one small mixed batch: half random candidate additions
// (vertex pairs that may or may not exist) and half removals of edges present
// in the current graph, so the delta path exercises both sides every batch.
func updateBatch(rng *rand.Rand, g *graph.Graph, size int) graph.Batch {
	var b graph.Batch
	n := g.NumVertices()
	for len(b.Add) < (size+1)/2 {
		u := graph.VertexID(rng.Intn(n))
		v := graph.VertexID(rng.Intn(n))
		if u == v {
			continue
		}
		b.Add = append(b.Add, [2]graph.VertexID{u, v})
	}
	for len(b.Remove) < size/2 {
		u := graph.VertexID(rng.Intn(n))
		if g.Degree(u) == 0 {
			continue
		}
		nbrs := g.Neighbors(u)
		b.Remove = append(b.Remove, [2]graph.VertexID{u, nbrs[rng.Intn(len(nbrs))]})
	}
	return b
}

func runUpdate() (*UpdateReport, error) {
	const (
		batches    = 8
		batchEdges = 4
		workers    = 4
	)
	g := gen.ChungLu(4000, 16000, 1.8, 47)
	p := pattern.PG3()
	rep := &UpdateReport{
		Graph:      "chunglu:4000:16000:1.8",
		Pattern:    "pg3 (diamond)",
		Batches:    batches,
		BatchEdges: batchEdges,
	}

	base, err := core.Run(g, p, core.Options{Workers: workers, Observer: Observer})
	if err != nil {
		return nil, fmt.Errorf("update: baseline run: %w", err)
	}
	count := base.Count

	rng := rand.New(rand.NewSource(47))
	ov := graph.NewOverlay(g)
	old := g
	ctx := context.Background()
	for i := 0; i < batches; i++ {
		batch := updateBatch(rng, old, batchEdges)

		deltaStart := time.Now()
		res, err := ov.ApplyBatch(batch)
		if err != nil {
			return nil, fmt.Errorf("update: batch %d: %w", i, err)
		}
		neu := ov.Snapshot()
		d, err := delta.Enumerate(ctx, old, neu, res.Added, res.Removed, p, delta.Options{
			Workers: workers,
		})
		if err != nil {
			return nil, fmt.Errorf("update: batch %d delta: %w", i, err)
		}
		deltaMS := float64(time.Since(deltaStart).Microseconds()) / 1000

		fullStart := time.Now()
		full, err := core.Run(neu, p, core.Options{Workers: workers, Observer: Observer})
		if err != nil {
			return nil, fmt.Errorf("update: batch %d full rerun: %w", i, err)
		}
		fullMS := float64(time.Since(fullStart).Microseconds()) / 1000

		if count+d.Gained-d.Lost != full.Count {
			return nil, fmt.Errorf("update: batch %d: maintenance identity broken: %d + %d - %d != %d",
				i, count, d.Gained, d.Lost, full.Count)
		}
		count = full.Count
		old = neu
		rep.Runs = append(rep.Runs, UpdateRun{
			Batch:        i,
			EdgesAdded:   len(res.Added),
			EdgesRemoved: len(res.Removed),
			Gained:       d.Gained,
			Lost:         d.Lost,
			Count:        count,
			DeltaMS:      deltaMS,
			FullMS:       fullMS,
		})
		rep.DeltaTotalMS += deltaMS
		rep.FullTotalMS += fullMS
	}
	if rep.DeltaTotalMS > 0 {
		rep.UpdatesPerSec = float64(batches) / (rep.DeltaTotalMS / 1000)
		rep.Speedup = rep.FullTotalMS / rep.DeltaTotalMS
	}
	return rep, nil
}

// Update returns the text report of the dynamic-graph benchmark.
func Update() string {
	rep, err := runUpdate()
	if err != nil {
		panic(fmt.Sprintf("experiments: update: %v", err))
	}
	r := newReport("Dynamic graphs: delta maintenance vs full re-enumeration")
	r.row("batch", "+edges", "-edges", "gained", "lost", "count", "delta", "full rerun")
	for _, run := range rep.Runs {
		r.rowf("%d\t%d\t%d\t%d\t%d\t%d\t%.1fms\t%.1fms",
			run.Batch, run.EdgesAdded, run.EdgesRemoved, run.Gained, run.Lost,
			run.Count, run.DeltaMS, run.FullMS)
	}
	r.note("%s, %s: %.1f updates/s maintained; delta %.1fx cheaper than re-enumerating (%.0fms vs %.0fms total); every batch verified count(before)+gained-lost == count(after)",
		rep.Graph, rep.Pattern, rep.UpdatesPerSec, rep.Speedup, rep.DeltaTotalMS, rep.FullTotalMS)
	return r.String()
}

// UpdateJSON returns the dynamic-graph baseline as indented JSON, the content
// of the committed BENCH_update.json.
func UpdateJSON() ([]byte, error) {
	rep, err := runUpdate()
	if err != nil {
		return nil, err
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
