package experiments

import (
	"strings"
	"testing"
)

// The heavyweight experiments are exercised by bench_test.go at the module
// root; here we cover the report plumbing and the cheap experiments so a
// plain `go test ./...` still validates this package.

func TestByName(t *testing.T) {
	for _, name := range []string{"datasets", "property1", "fig3", "fig5", "fig6", "table2", "fig7", "table3", "table4", "fig8", "makespan", "hotpath", "serve", "chaos", "census", "update", "all"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("fig99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestDatasetsReport(t *testing.T) {
	out := Datasets()
	for _, want := range []string{"Table 1", "wikitalk", "twitter", "randgraph", "paper |V|"} {
		if !strings.Contains(out, want) {
			t.Errorf("datasets report missing %q:\n%s", want, out)
		}
	}
}

func TestProperty1Report(t *testing.T) {
	out := Property1()
	if !strings.Contains(out, "nb") || !strings.Contains(out, "ns") {
		t.Fatalf("property1 report incomplete:\n%s", out)
	}
	// The report must carry fitted gammas, not fit failures.
	if strings.Contains(out, "fit-failed") {
		t.Errorf("property1 contains a failed fit:\n%s", out)
	}
}

func TestFigure8Report(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	out := Figure8()
	if !strings.Contains(out, "workers") || !strings.Contains(out, "80") {
		t.Fatalf("figure8 report incomplete:\n%s", out)
	}
	// All rows must report the same instance count.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var counts []string
	for _, line := range lines[2:] {
		fields := strings.Fields(line)
		if len(fields) == 5 {
			counts = append(counts, fields[4])
		}
	}
	if len(counts) < 5 {
		t.Fatalf("too few data rows:\n%s", out)
	}
	for _, c := range counts {
		if c != counts[0] {
			t.Fatalf("worker sweep changed the instance count:\n%s", out)
		}
	}
}

func TestMakespanReport(t *testing.T) {
	out := Makespan()
	for _, want := range []string{"OPT (brute force)", "α=0.5", "lower bound", "random"} {
		if !strings.Contains(out, want) {
			t.Errorf("makespan report missing %q:\n%s", want, out)
		}
	}
}

// TestChaosReport runs the full chaos experiment: every seeded schedule —
// kills, the mixed schedule, and the corruption pair, over both exchanges —
// must come back bit-identical, and the kills must have actually forced
// recovery work (a chaos report with zero recoveries tested nothing).
func TestChaosReport(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos experiment in -short mode")
	}
	rep, err := runChaos()
	if err != nil {
		t.Fatal(err)
	}
	if rep.ExactRuns != rep.Runs {
		t.Fatalf("only %d/%d runs bit-identical: %+v", rep.ExactRuns, rep.Runs, rep.Cells)
	}
	if rep.Recoveries == 0 && rep.Restarts == 0 {
		t.Fatalf("no recovery work across %d runs; faults never bit", rep.Runs)
	}
	transports := map[string]bool{}
	corruptionsDetected := 0
	for _, c := range rep.Cells {
		transports[c.Transport] = true
		corruptionsDetected += c.CorruptionsDetected
	}
	if !transports["local"] || !transports["tcp"] {
		t.Fatalf("missing a transport: %v", transports)
	}
	if corruptionsDetected == 0 {
		t.Fatal("corruption schedule ran but no corruption was detected")
	}
}

func TestUpdateReport(t *testing.T) {
	if testing.Short() {
		t.Skip("update experiment in -short mode")
	}
	rep, err := runUpdate()
	if err != nil {
		t.Fatal(err) // runUpdate verifies the maintenance identity per batch
	}
	if len(rep.Runs) != rep.Batches {
		t.Fatalf("%d runs recorded, want %d", len(rep.Runs), rep.Batches)
	}
	var effective int
	for _, run := range rep.Runs {
		effective += run.EdgesAdded + run.EdgesRemoved
	}
	if effective == 0 {
		t.Fatal("no batch had an effective mutation; the benchmark measured nothing")
	}
	if rep.Speedup < 1 {
		t.Fatalf("delta path slower than full re-enumeration: speedup %.2f", rep.Speedup)
	}
	if rep.UpdatesPerSec <= 0 {
		t.Fatalf("updates/sec %.2f", rep.UpdatesPerSec)
	}
}

func TestReportFormatting(t *testing.T) {
	r := newReport("title")
	r.row("a", "b")
	r.rowf("%d\t%d", 1, 2)
	r.note("note %d", 3)
	out := r.String()
	for _, want := range []string{"== title ==", "a", "note 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
