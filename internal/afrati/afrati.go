// Package afrati reimplements the baseline of Afrati, Fotakis & Ullman,
// "Enumerating subgraph instances using map-reduce" (ICDE 2013), which the
// paper compares against throughout Section 7: a single MapReduce round that
// solves subgraph listing as one multiway join.
//
// Scheme: data vertices are hashed into b buckets. There is one reducer per
// size-k multiset over the b buckets (k = |Vp|). The map phase replicates
// every data edge to every reducer whose multiset contains both endpoint
// buckets — the join's input sharing — and each reducer enumerates instances
// in its local edge set, keeping exactly those whose vertex-bucket multiset
// equals the reducer's own id, so every instance is produced exactly once.
//
// The cost profile is the one the paper criticizes: heavy edge replication
// (each edge is copied C(b+k-3, k-2) times) and reducer skew when hub
// buckets concentrate edges ("the curse of the last reducer").
package afrati

import (
	"fmt"
	"sort"
	"time"

	"psgl/internal/centralized"
	"psgl/internal/graph"
	"psgl/internal/mr"
	"psgl/internal/pattern"
)

// Options configures a run.
type Options struct {
	// Buckets is b, the hash-share count per pattern vertex. 0 means 6.
	Buckets int
	// Parallelism bounds concurrent map/reduce tasks. 0 means GOMAXPROCS.
	Parallelism int
	// MaxShufflePairs aborts with mr.ErrShuffleBudget when edge replication
	// exceeds the budget (the OOM analogue).
	MaxShufflePairs int64
	// Seed drives the vertex-bucket hash.
	Seed int64
}

// Stats reports the run's cost profile.
type Stats struct {
	Reducers        int
	ReplicatedEdges int64 // shuffle pairs: total edge copies
	ReplicationRate float64
	MaxReducerLoad  int64
	Skew            float64
	WallTime        time.Duration
}

// Result is the outcome of a run.
type Result struct {
	Count int64
	Stats Stats
}

// Run counts the instances of p in g with the one-round multiway join.
func Run(g *graph.Graph, p *pattern.Pattern, opts Options) (*Result, error) {
	if g == nil || p == nil {
		return nil, fmt.Errorf("afrati: nil graph or pattern")
	}
	b := opts.Buckets
	if b <= 0 {
		b = 6
	}
	k := p.N()
	if k < 2 {
		return nil, fmt.Errorf("afrati: pattern needs >= 2 vertices")
	}
	p = p.BreakAutomorphisms()

	start := time.Now()
	seed := uint64(opts.Seed)
	bucketOf := func(v graph.VertexID) int {
		x := uint64(uint32(v)) + 0x9e3779b97f4a7c15 + seed
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		return int(x % uint64(b))
	}

	// Enumerate all size-k multisets over [0, b) once; their index is the
	// reducer id.
	multisets := enumerateMultisets(b, k)
	msIndex := map[string]int64{}
	for i, ms := range multisets {
		msIndex[msKey(ms)] = int64(i)
	}

	type edge struct{ U, V graph.VertexID }
	var edges []edge
	g.Edges(func(u, v graph.VertexID) bool {
		edges = append(edges, edge{u, v})
		return true
	})

	job := mr.Job[edge, edge, int64]{
		Name: "afrati-" + p.Name(),
		Map: func(e edge, emit func(int64, edge)) {
			bu, bv := bucketOf(e.U), bucketOf(e.V)
			// Complete the multiset {bu, bv} with every size-(k-2) multiset.
			base := []int{bu, bv}
			forEachCompletion(b, k-2, func(rest []int) {
				ms := append(append([]int(nil), base...), rest...)
				sort.Ints(ms)
				emit(msIndex[msKey(ms)], e)
			})
		},
		Reduce: func(key int64, values []edge, emit func(int64)) {
			ms := multisets[key]
			// Build the local subgraph with compacted vertex ids.
			ids := map[graph.VertexID]graph.VertexID{}
			back := []graph.VertexID{}
			intern := func(v graph.VertexID) graph.VertexID {
				if x, ok := ids[v]; ok {
					return x
				}
				x := graph.VertexID(len(ids))
				ids[v] = x
				back = append(back, v)
				return x
			}
			bld := graph.NewBuilder(2 * len(values))
			for _, e := range values {
				bld.AddEdge(intern(e.U), intern(e.V))
			}
			local := bld.Build()
			want := msKey(ms)
			var count int64
			centralized.ListInstances(p, local, func(m []graph.VertexID) bool {
				bs := make([]int, len(m))
				for i, lv := range m {
					bs[i] = bucketOf(back[lv])
				}
				sort.Ints(bs)
				if msKey(bs) == want {
					count++
				}
				return true
			})
			if count > 0 {
				emit(count)
			}
		},
		Reducers:        len(multisets),
		Parallelism:     opts.Parallelism,
		MaxShufflePairs: opts.MaxShufflePairs,
	}

	// Exactly-once counting: the bucket-multiset filter confines each
	// instance to a single reducer, and within that reducer the pattern's
	// symmetry-breaking constraints admit exactly one automorphic image
	// under the reducer's local vertex ranking (the Grochow–Kellis guarantee
	// holds for any strict total order on the data vertices, local or
	// global). The local degree filter cannot lose instances either: every
	// edge of an instance reaches the reducer, so an instance vertex's local
	// degree is at least its pattern degree.
	counts, stats, err := mr.Run(job, edges)
	if err != nil {
		return nil, err
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	res := &Result{Count: total}
	res.Stats = Stats{
		Reducers:        len(multisets),
		ReplicatedEdges: stats.ShufflePairs,
		MaxReducerLoad:  stats.MaxReducerLoad(),
		Skew:            stats.Skew(),
		WallTime:        time.Since(start),
	}
	if len(edges) > 0 {
		res.Stats.ReplicationRate = float64(stats.ShufflePairs) / float64(len(edges))
	}
	return res, nil
}

func msKey(ms []int) string {
	b := make([]byte, len(ms))
	for i, x := range ms {
		b[i] = byte(x)
	}
	return string(b)
}

// enumerateMultisets lists all non-decreasing size-k tuples over [0, b).
func enumerateMultisets(b, k int) [][]int {
	var out [][]int
	cur := make([]int, k)
	var rec func(pos, min int)
	rec = func(pos, min int) {
		if pos == k {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for x := min; x < b; x++ {
			cur[pos] = x
			rec(pos+1, x)
		}
	}
	rec(0, 0)
	return out
}

// forEachCompletion enumerates all non-decreasing size-k tuples over [0, b)
// and passes each to fn (fn's slice is reused).
func forEachCompletion(b, k int, fn func([]int)) {
	if k == 0 {
		fn(nil)
		return
	}
	cur := make([]int, k)
	var rec func(pos, min int)
	rec = func(pos, min int) {
		if pos == k {
			fn(cur)
			return
		}
		for x := min; x < b; x++ {
			cur[pos] = x
			rec(pos+1, x)
		}
	}
	rec(0, 0)
}
