package afrati

import (
	"errors"
	"testing"

	"psgl/internal/centralized"
	"psgl/internal/gen"
	"psgl/internal/graph"
	"psgl/internal/mr"
	"psgl/internal/pattern"
)

func TestMatchesOracle(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := gen.ErdosRenyi(120, 700, seed)
		for _, p := range []*pattern.Pattern{pattern.PG1(), pattern.PG2(), pattern.PG3(), pattern.PG4()} {
			want := centralized.CountInstances(p, g)
			res, err := Run(g, p, Options{Buckets: 4, Seed: seed})
			if err != nil {
				t.Fatalf("%s seed=%d: %v", p.Name(), seed, err)
			}
			if res.Count != want {
				t.Errorf("%s seed=%d: afrati=%d oracle=%d", p.Name(), seed, res.Count, want)
			}
		}
	}
}

func TestMatchesOracleSkewedGraph(t *testing.T) {
	g := gen.ChungLu(400, 1600, 1.7, 2)
	for _, p := range []*pattern.Pattern{pattern.PG1(), pattern.PG2()} {
		want := centralized.CountInstances(p, g)
		res, err := Run(g, p, Options{Buckets: 5})
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != want {
			t.Errorf("%s: afrati=%d oracle=%d", p.Name(), res.Count, want)
		}
	}
}

func TestBucketCountInvariance(t *testing.T) {
	g := gen.ErdosRenyi(150, 900, 7)
	want := centralized.CountInstances(pattern.PG1(), g)
	for _, b := range []int{2, 3, 6, 9} {
		res, err := Run(g, pattern.PG1(), Options{Buckets: b})
		if err != nil {
			t.Fatalf("b=%d: %v", b, err)
		}
		if res.Count != want {
			t.Errorf("b=%d: count=%d want=%d", b, res.Count, want)
		}
	}
}

func TestReplicationGrowsWithBuckets(t *testing.T) {
	// The defining cost of the one-round join: each edge is shipped to
	// C(b+k-3, k-2) reducers, so replication grows with b for k >= 3.
	g := gen.ErdosRenyi(100, 500, 1)
	small, err := Run(g, pattern.PG2(), Options{Buckets: 3})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(g, pattern.PG2(), Options{Buckets: 7})
	if err != nil {
		t.Fatal(err)
	}
	if big.Stats.ReplicatedEdges <= small.Stats.ReplicatedEdges {
		t.Errorf("replication did not grow: b=3 -> %d, b=7 -> %d",
			small.Stats.ReplicatedEdges, big.Stats.ReplicatedEdges)
	}
	// For PG2 (k=4), every edge is replicated C(b+1, 2) times exactly.
	wantRate := float64((3 + 1) * 3 / 2)
	if small.Stats.ReplicationRate != wantRate {
		t.Errorf("b=3 replication rate = %.1f, want %.1f", small.Stats.ReplicationRate, wantRate)
	}
}

func TestSkewHigherOnPowerLawGraph(t *testing.T) {
	// "The curse of the last reducer": hub buckets concentrate edge copies.
	er := gen.ErdosRenyi(2000, 10000, 3)
	pl := gen.ChungLu(2000, 10000, 1.5, 3)
	resER, err := Run(er, pattern.PG1(), Options{Buckets: 6})
	if err != nil {
		t.Fatal(err)
	}
	resPL, err := Run(pl, pattern.PG1(), Options{Buckets: 6})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("reducer skew: ER=%.2f powerlaw=%.2f", resER.Stats.Skew, resPL.Stats.Skew)
	if resPL.Stats.Skew <= resER.Stats.Skew {
		t.Errorf("power-law graph should skew reducers more: ER=%.2f PL=%.2f",
			resER.Stats.Skew, resPL.Stats.Skew)
	}
}

func TestShuffleBudgetOOM(t *testing.T) {
	g := gen.ErdosRenyi(500, 3000, 5)
	_, err := Run(g, pattern.PG4(), Options{Buckets: 8, MaxShufflePairs: 1000})
	if !errors.Is(err, mr.ErrShuffleBudget) {
		t.Fatalf("err = %v, want ErrShuffleBudget", err)
	}
}

func TestInvalidInputs(t *testing.T) {
	g := gen.ErdosRenyi(10, 20, 1)
	if _, err := Run(nil, pattern.PG1(), Options{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := Run(g, nil, Options{}); err == nil {
		t.Error("nil pattern accepted")
	}
	if _, err := Run(g, pattern.MustNew("v", 1, nil), Options{}); err == nil {
		t.Error("single-vertex pattern accepted")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(10).Build()
	res, err := Run(g, pattern.PG1(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 0 {
		t.Fatalf("count on edgeless graph = %d", res.Count)
	}
}

func TestMultisetEnumeration(t *testing.T) {
	// C(b+k-1, k) multisets: b=4, k=3 -> C(6,3) = 20.
	ms := enumerateMultisets(4, 3)
	if len(ms) != 20 {
		t.Fatalf("got %d multisets, want 20", len(ms))
	}
	seen := map[string]bool{}
	for _, m := range ms {
		for i := 1; i < len(m); i++ {
			if m[i-1] > m[i] {
				t.Fatalf("multiset %v not sorted", m)
			}
		}
		if seen[msKey(m)] {
			t.Fatalf("duplicate multiset %v", m)
		}
		seen[msKey(m)] = true
	}
}

func BenchmarkAfratiTriangle(b *testing.B) {
	g := gen.ChungLu(3000, 15000, 1.8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, pattern.PG1(), Options{Buckets: 6}); err != nil {
			b.Fatal(err)
		}
	}
}
