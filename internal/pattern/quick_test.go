package pattern

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomConnected builds a random connected pattern with 3..7 vertices from
// a seed: a random spanning tree plus random extra edges.
func randomConnected(seed int64) *Pattern {
	rng := rand.New(rand.NewSource(seed))
	n := 3 + rng.Intn(5)
	var edges [][2]int
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{rng.Intn(i), i})
	}
	extra := rng.Intn(n)
	for i := 0; i < extra; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			edges = append(edges, [2]int{a, b})
		}
	}
	return MustNew("rand", n, edges)
}

func TestQuickOrdersAlwaysAcyclic(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		b := randomConnected(seed).BreakAutomorphisms()
		return b.OrdersAcyclic()
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBreakingPreservesStructure(t *testing.T) {
	// Breaking must not change the underlying graph.
	if err := quick.Check(func(seed int64) bool {
		p := randomConnected(seed)
		b := p.BreakAutomorphisms()
		if p.N() != b.N() || p.NumEdges() != b.NumEdges() {
			return false
		}
		for a := 0; a < p.N(); a++ {
			for c := 0; c < p.N(); c++ {
				if p.HasEdge(a, c) != b.HasEdge(a, c) {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickExactlyOneAutomorphismSurvives(t *testing.T) {
	// The core exactness property as a quick check: exactly one automorphism
	// of the broken pattern is compatible with its own constraint DAG.
	if err := quick.Check(func(seed int64) bool {
		b := randomConnected(seed).BreakAutomorphisms()
		n := b.N()
		survivors := 0
		for _, sigma := range b.Automorphisms() {
			ok := true
			for a := 0; a < n && ok; a++ {
				for c := 0; c < n && ok; c++ {
					if b.MustPrecede(a, c) && b.MustPrecede(sigma[c], sigma[a]) {
						ok = false
					}
				}
			}
			if ok {
				survivors++
			}
		}
		return survivors == 1
	}, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMVCBounds(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		p := randomConnected(seed)
		mvc := p.MinVertexCoverSize()
		if mvc < 1 || mvc > p.N()-1 {
			return false // a connected pattern needs >= 1, never all vertices
		}
		// Matching lower bound: a greedy matching's size is <= MVC.
		matched := make([]bool, p.N())
		matching := 0
		for _, e := range p.Edges() {
			if !matched[e[0]] && !matched[e[1]] {
				matched[e[0]], matched[e[1]] = true, true
				matching++
			}
		}
		return mvc >= matching
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLowestRankVertexIsSource(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		b := randomConnected(seed).BreakAutomorphisms()
		lo := b.LowestRankVertex()
		for u := 0; u < b.N(); u++ {
			if b.MustPrecede(u, lo) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
