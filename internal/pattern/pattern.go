// Package pattern provides the pattern-graph toolkit of PSgL: small
// unlabeled connected graphs, enumeration of their automorphisms, the
// automorphism-breaking procedure of Section 5.2.1 (which assigns a partial
// order over pattern vertices so every subgraph instance is found exactly
// once), the minimum vertex cover bound of Theorem 1, and the pattern graphs
// PG1–PG5 used throughout the paper's evaluation.
package pattern

import (
	"fmt"
	"sort"
	"strings"
)

// Order is one partial-order constraint produced by automorphism breaking:
// the data vertex mapped to pattern vertex A must precede the data vertex
// mapped to pattern vertex B in the ordered data graph (Section 3).
type Order struct {
	A, B int
}

// Pattern is an immutable small connected undirected graph with an optional
// symmetry-breaking partial order. Vertices are 0..N()-1. (The paper numbers
// pattern vertices from 1; figures translate accordingly.)
type Pattern struct {
	name   string
	n      int
	adj    [][]int
	mat    []bool
	orders []Order
	// less[a*n+b] reports constraint a<b, including transitive closure.
	less []bool
	// labels, when non-nil, carries one vertex label (labels.go); nil means
	// the unlabeled subgraph-listing case.
	labels []int
}

// New builds a pattern from an edge list. It returns an error if the pattern
// is empty, has out-of-range or self-loop edges, or is disconnected —
// subgraph listing is defined on connected patterns.
func New(name string, n int, edges [][2]int) (*Pattern, error) {
	if n < 1 {
		return nil, fmt.Errorf("pattern %q: need at least one vertex", name)
	}
	p := &Pattern{name: name, n: n, adj: make([][]int, n), mat: make([]bool, n*n)}
	for _, e := range edges {
		a, b := e[0], e[1]
		if a < 0 || a >= n || b < 0 || b >= n {
			return nil, fmt.Errorf("pattern %q: edge (%d,%d) out of range [0,%d)", name, a, b, n)
		}
		if a == b {
			return nil, fmt.Errorf("pattern %q: self loop at %d", name, a)
		}
		if p.mat[a*n+b] {
			continue
		}
		p.mat[a*n+b] = true
		p.mat[b*n+a] = true
		p.adj[a] = append(p.adj[a], b)
		p.adj[b] = append(p.adj[b], a)
	}
	for v := range p.adj {
		sort.Ints(p.adj[v])
	}
	if !p.connected() {
		return nil, fmt.Errorf("pattern %q: not connected", name)
	}
	p.less = make([]bool, n*n)
	return p, nil
}

// MustNew is New for static pattern literals.
func MustNew(name string, n int, edges [][2]int) *Pattern {
	p, err := New(name, n, edges)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *Pattern) connected() bool {
	if p.n == 1 {
		return true
	}
	seen := make([]bool, p.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range p.adj[v] {
			if !seen[u] {
				seen[u] = true
				count++
				stack = append(stack, u)
			}
		}
	}
	return count == p.n
}

// Name returns the pattern's display name.
func (p *Pattern) Name() string { return p.name }

// N returns the number of pattern vertices |Vp|.
func (p *Pattern) N() int { return p.n }

// NumEdges returns |Ep|.
func (p *Pattern) NumEdges() int {
	total := 0
	for _, nb := range p.adj {
		total += len(nb)
	}
	return total / 2
}

// Degree returns the degree of pattern vertex v.
func (p *Pattern) Degree(v int) int { return len(p.adj[v]) }

// Neighbors returns the sorted neighbor list of v (shared storage; do not
// modify).
func (p *Pattern) Neighbors(v int) []int { return p.adj[v] }

// HasEdge reports adjacency of a and b.
func (p *Pattern) HasEdge(a, b int) bool { return p.mat[a*p.n+b] }

// Edges returns all edges with a < b in lexicographic order.
func (p *Pattern) Edges() [][2]int {
	var out [][2]int
	for a := 0; a < p.n; a++ {
		for _, b := range p.adj[a] {
			if b > a {
				out = append(out, [2]int{a, b})
			}
		}
	}
	return out
}

// StripOrders returns a copy of p with every symmetry-breaking constraint
// removed, preserving name, edges, and labels. It is the inverse of
// BreakAutomorphisms for the engine's ablation path, and lets callers
// holding a planned (order-carrying) pattern rebuild the raw one without
// replaying the New/WithLabels construction dance. A pattern with no orders
// is returned as-is.
func (p *Pattern) StripOrders() *Pattern {
	if len(p.orders) == 0 {
		return p
	}
	q := p.clone()
	q.orders = nil
	q.computeLess()
	return q
}

// Orders returns the symmetry-breaking constraints (empty before
// BreakAutomorphisms or for asymmetric patterns).
func (p *Pattern) Orders() []Order {
	out := make([]Order, len(p.orders))
	copy(out, p.orders)
	return out
}

// MustPrecede reports whether the symmetry-breaking order (transitively)
// requires map(a) < map(b) in the ordered data graph.
func (p *Pattern) MustPrecede(a, b int) bool { return p.less[a*p.n+b] }

// String renders the pattern as name(n=…, edges, orders).
func (p *Pattern) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s(n=%d", p.name, p.n)
	sb.WriteString(", edges=")
	for i, e := range p.Edges() {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d-%d", e[0], e[1])
	}
	if len(p.orders) > 0 {
		sb.WriteString(", orders=")
		for i, o := range p.orders {
			if i > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%d<%d", o.A, o.B)
		}
	}
	sb.WriteByte(')')
	return sb.String()
}

// Automorphisms enumerates every permutation σ of the vertices with
// (u,v) ∈ Ep ⇔ (σ(u),σ(v)) ∈ Ep, by backtracking with degree pruning.
// The identity is always included. Intended for small patterns (n ≤ ~10).
func (p *Pattern) Automorphisms() [][]int {
	out, _ := p.AutomorphismsBounded(0)
	return out
}

// AutomorphismsBounded is Automorphisms with an enumeration cap: once more
// than max automorphisms are found the search stops and ok is false (max <= 0
// means unbounded). The DSL parser uses it to reject attacker-supplied
// patterns whose factorially large symmetry groups would otherwise hang the
// planner.
func (p *Pattern) AutomorphismsBounded(max int) (auts [][]int, ok bool) {
	perm := make([]int, p.n)
	used := make([]bool, p.n)
	for i := range perm {
		perm[i] = -1
	}
	var out [][]int
	overflow := false
	var rec func(v int)
	rec = func(v int) {
		if overflow {
			return
		}
		if v == p.n {
			if max > 0 && len(out) == max {
				overflow = true
				return
			}
			cp := make([]int, p.n)
			copy(cp, perm)
			out = append(out, cp)
			return
		}
		for img := 0; img < p.n; img++ {
			if used[img] || len(p.adj[img]) != len(p.adj[v]) {
				continue
			}
			if p.labels != nil && p.labels[img] != p.labels[v] {
				continue // automorphisms must preserve labels
			}
			ok := true
			for u := 0; u < v; u++ {
				if p.mat[v*p.n+u] != p.mat[img*p.n+perm[u]] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			perm[v] = img
			used[img] = true
			rec(v + 1)
			used[img] = false
			perm[v] = -1
		}
	}
	rec(0)
	return out, !overflow
}

// NumAutomorphisms returns |Aut(Gp)|; without symmetry breaking every
// subgraph instance would be reported this many times.
func (p *Pattern) NumAutomorphisms() int { return len(p.Automorphisms()) }

// BreakAutomorphisms returns a copy of p carrying a symmetry-breaking partial
// order computed by the iterative procedure of Section 5.2.1: while the
// automorphism group is nontrivial, pick an equivalent vertex group (orbit) —
// preferring groups of higher degree, Heuristic 2 — pin its smallest member
// below the rest of the orbit, and restrict the group to the stabilizer of
// that member. The resulting constraint set admits exactly one automorphic
// image per subgraph instance (the Grochow–Kellis guarantee).
func (p *Pattern) BreakAutomorphisms() *Pattern {
	q := p.clone()
	q.orders = nil
	group := q.Automorphisms()
	for len(group) > 1 {
		orbits := orbitsOf(q.n, group)
		// Heuristic 2: among non-singleton orbits, prefer vertices with
		// higher degree; tie-break by larger orbit, then smallest member.
		best := -1
		for i, orb := range orbits {
			if len(orb) < 2 {
				continue
			}
			if best == -1 || betterOrbit(q, orb, orbits[best]) {
				best = i
			}
		}
		if best == -1 {
			break // nontrivial group with only singleton orbits: impossible
		}
		orb := orbits[best]
		pin := orb[0] // orbits are sorted; pin the smallest member
		for _, u := range orb[1:] {
			q.orders = append(q.orders, Order{A: pin, B: u})
		}
		// Stabilizer of the pinned vertex.
		var stab [][]int
		for _, sigma := range group {
			if sigma[pin] == pin {
				stab = append(stab, sigma)
			}
		}
		group = stab
	}
	q.computeLess()
	return q
}

func betterOrbit(p *Pattern, a, b []int) bool {
	da, db := p.Degree(a[0]), p.Degree(b[0])
	if da != db {
		return da > db
	}
	if len(a) != len(b) {
		return len(a) > len(b)
	}
	return a[0] < b[0]
}

func orbitsOf(n int, group [][]int) [][]int {
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, sigma := range group {
		for v, img := range sigma {
			a, b := find(v), find(img)
			if a != b {
				parent[a] = b
			}
		}
	}
	buckets := map[int][]int{}
	for v := 0; v < n; v++ {
		r := find(v)
		buckets[r] = append(buckets[r], v)
	}
	var out [][]int
	for _, orb := range buckets {
		sort.Ints(orb)
		out = append(out, orb)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

func (p *Pattern) clone() *Pattern {
	q := &Pattern{name: p.name, n: p.n, adj: make([][]int, p.n)}
	for v := range p.adj {
		q.adj[v] = append([]int(nil), p.adj[v]...)
	}
	q.mat = append([]bool(nil), p.mat...)
	q.orders = append([]Order(nil), p.orders...)
	q.less = make([]bool, p.n*p.n)
	copy(q.less, p.less)
	if p.labels != nil {
		q.labels = append([]int(nil), p.labels...)
	}
	return q
}

// computeLess fills the transitive closure of the order constraints
// (Floyd–Warshall over the tiny constraint DAG).
func (p *Pattern) computeLess() {
	n := p.n
	p.less = make([]bool, n*n)
	for _, o := range p.orders {
		p.less[o.A*n+o.B] = true
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !p.less[i*n+k] {
				continue
			}
			for j := 0; j < n; j++ {
				if p.less[k*n+j] {
					p.less[i*n+j] = true
				}
			}
		}
	}
}

// OrdersAcyclic reports whether the constraint set is a strict partial order
// (no vertex transitively precedes itself).
func (p *Pattern) OrdersAcyclic() bool {
	for v := 0; v < p.n; v++ {
		if p.less[v*p.n+v] {
			return false
		}
	}
	return true
}

// MinVertexCoverSize computes |MVC| by exhaustive subset search; Theorem 1
// bounds the superstep count S of a level-synchronous run by
// |MVC| ≤ S ≤ |Vp|-1.
func (p *Pattern) MinVertexCoverSize() int {
	edges := p.Edges()
	for size := 0; size <= p.n; size++ {
		if coverExists(p.n, edges, size) {
			return size
		}
	}
	return p.n
}

func coverExists(n int, edges [][2]int, size int) bool {
	var rec func(start, left int, inCover []bool) bool
	covered := func(inCover []bool) bool {
		for _, e := range edges {
			if !inCover[e[0]] && !inCover[e[1]] {
				return false
			}
		}
		return true
	}
	rec = func(start, left int, inCover []bool) bool {
		if covered(inCover) {
			return true
		}
		if left == 0 {
			return false
		}
		for v := start; v < n; v++ {
			inCover[v] = true
			if rec(v+1, left-1, inCover) {
				return true
			}
			inCover[v] = false
		}
		return false
	}
	return rec(0, size, make([]bool, n))
}

// IsClique reports whether the pattern is a complete graph.
func (p *Pattern) IsClique() bool {
	return p.NumEdges() == p.n*(p.n-1)/2
}

// IsCycle reports whether the pattern is a simple cycle of length >= 3.
func (p *Pattern) IsCycle() bool {
	if p.n < 3 || p.NumEdges() != p.n {
		return false
	}
	for v := 0; v < p.n; v++ {
		if len(p.adj[v]) != 2 {
			return false
		}
	}
	return true
}

// LowestRankVertex returns the vertex that the partial order places at the
// bottom: the unique vertex constrained (transitively) below the most others,
// with no constraint above it. For cycles and cliques after automorphism
// breaking this is the deterministic "best initial pattern vertex" of
// Theorem 5. Returns 0 when no constraints exist.
func (p *Pattern) LowestRankVertex() int {
	best, bestBelow := 0, -1
	for v := 0; v < p.n; v++ {
		hasAbove := false
		below := 0
		for u := 0; u < p.n; u++ {
			if p.less[u*p.n+v] {
				hasAbove = true
			}
			if p.less[v*p.n+u] {
				below++
			}
		}
		if hasAbove {
			continue
		}
		if below > bestBelow {
			best, bestBelow = v, below
		}
	}
	return best
}
