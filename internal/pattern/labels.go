package pattern

import "fmt"

// Label support: the paper positions subgraph listing as the special case of
// subgraph matching in which every vertex carries the same attribute
// (Section 2). This file supplies the general case as an extension: a
// pattern may carry one integer label per vertex, automorphisms are then
// required to preserve labels, and the engines restrict candidate data
// vertices to matching labels.

// WithLabels returns a copy of p carrying one label per pattern vertex.
// Symmetry breaking on the result only identifies label-preserving
// automorphisms, so a labeled pattern usually needs fewer (or no) order
// constraints.
func (p *Pattern) WithLabels(labels []int) (*Pattern, error) {
	if len(labels) != p.n {
		return nil, fmt.Errorf("pattern %q: %d labels for %d vertices", p.name, len(labels), p.n)
	}
	q := p.clone()
	q.labels = append([]int(nil), labels...)
	q.orders = nil
	q.less = make([]bool, q.n*q.n)
	return q, nil
}

// Labeled reports whether the pattern carries vertex labels.
func (p *Pattern) Labeled() bool { return p.labels != nil }

// Label returns vertex v's label, or 0 for unlabeled patterns.
func (p *Pattern) Label(v int) int {
	if p.labels == nil {
		return 0
	}
	return p.labels[v]
}
