package pattern

import "fmt"

// The pattern graphs of Figure 4, with automorphisms already broken. PG1–PG4
// are unambiguous from the paper (triangle, square, diamond, 4-clique); the
// extracted text garbles PG5's drawing, so we use the 5-vertex house graph
// (square with a triangular roof) and record that choice in DESIGN.md.

// PG1 returns the triangle (3-cycle), the pattern of Table 3's triangle
// listing experiments.
func PG1() *Pattern { return Triangle() }

// PG2 returns the square (4-cycle) of Figure 1.
func PG2() *Pattern { return Square() }

// PG3 returns the diamond: a 4-cycle with one chord.
func PG3() *Pattern { return Diamond() }

// PG4 returns the 4-clique.
func PG4() *Pattern { return Clique(4) }

// PG5 returns the 5-vertex house graph.
func PG5() *Pattern { return House() }

// Triangle returns K3 with symmetry broken.
func Triangle() *Pattern { return Clique(3) }

// Square returns C4 with symmetry broken.
func Square() *Pattern { return Cycle(4) }

// Diamond returns the 4-cycle 0-1-2-3 plus the chord (1,3), symmetry broken.
func Diamond() *Pattern {
	p := MustNew("diamond", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {1, 3}})
	return p.BreakAutomorphisms()
}

// House returns the house graph: square 0-1-2-3 with roof apex 4 on edge
// (1,2), symmetry broken.
func House() *Pattern {
	p := MustNew("house", 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {1, 4}, {2, 4}})
	return p.BreakAutomorphisms()
}

// Cycle returns the k-cycle (k >= 3) with symmetry broken.
func Cycle(k int) *Pattern {
	if k < 3 {
		panic(fmt.Sprintf("pattern: cycle length %d < 3", k))
	}
	edges := make([][2]int, k)
	for i := 0; i < k; i++ {
		edges[i] = [2]int{i, (i + 1) % k}
	}
	p := MustNew(fmt.Sprintf("cycle%d", k), k, edges)
	return p.BreakAutomorphisms()
}

// Clique returns K_k (k >= 2) with symmetry broken.
func Clique(k int) *Pattern {
	if k < 2 {
		panic(fmt.Sprintf("pattern: clique size %d < 2", k))
	}
	var edges [][2]int
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	name := fmt.Sprintf("clique%d", k)
	if k == 3 {
		name = "triangle"
	}
	p := MustNew(name, k, edges)
	return p.BreakAutomorphisms()
}

// Path returns the simple path with k vertices (k-1 edges), symmetry broken.
func Path(k int) *Pattern {
	if k < 2 {
		panic(fmt.Sprintf("pattern: path size %d < 2", k))
	}
	edges := make([][2]int, k-1)
	for i := 0; i < k-1; i++ {
		edges[i] = [2]int{i, i + 1}
	}
	p := MustNew(fmt.Sprintf("path%d", k), k, edges)
	return p.BreakAutomorphisms()
}

// Star returns the star with k leaves (vertex 0 is the center), symmetry
// broken.
func Star(k int) *Pattern {
	if k < 1 {
		panic(fmt.Sprintf("pattern: star needs at least 1 leaf"))
	}
	edges := make([][2]int, k)
	for i := 0; i < k; i++ {
		edges[i] = [2]int{0, i + 1}
	}
	p := MustNew(fmt.Sprintf("star%d", k), k+1, edges)
	return p.BreakAutomorphisms()
}

// ByName resolves the catalog names used by the CLI and the bench harness:
// pg1..pg5, triangle, square, diamond, house, cycleN, cliqueN, pathN, starN.
func ByName(name string) (*Pattern, error) {
	switch name {
	case "pg1", "triangle":
		return PG1(), nil
	case "pg2", "square":
		return PG2(), nil
	case "pg3", "diamond":
		return PG3(), nil
	case "pg4":
		return PG4(), nil
	case "pg5", "house":
		return PG5(), nil
	}
	var k int
	for _, fam := range []struct {
		prefix string
		make   func(int) *Pattern
		min    int
	}{
		{"cycle", Cycle, 3},
		{"clique", Clique, 2},
		{"path", Path, 2},
		{"star", Star, 1},
	} {
		if n, err := fmt.Sscanf(name, fam.prefix+"%d", &k); n == 1 && err == nil {
			if k < fam.min || k > 8 {
				return nil, fmt.Errorf("pattern: %s size %d out of supported range [%d,8]", fam.prefix, k, fam.min)
			}
			return fam.make(k), nil
		}
	}
	return nil, fmt.Errorf("pattern: unknown pattern %q", name)
}
