package pattern

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseCatalogAndGenerators(t *testing.T) {
	cases := []struct {
		in         string
		n, edges   int
		equivalent string // spelling that must share the canonical key
	}{
		{"pg1", 3, 3, "triangle"},
		{"triangle", 3, 3, "clique(3)"},
		{"cycle(3)", 3, 3, "clique(3)"},
		{"pg2", 4, 4, "cycle(4)"},
		{"square", 4, 4, "edges(0-1,1-2,2-3,3-0)"},
		{"cycle(4)", 4, 4, "edges(0-2,2-1,1-3,3-0)"}, // renumbered C4
		{"pg3", 4, 5, "diamond"},
		{"pg4", 4, 6, "clique(4)"},
		{"pg5", 5, 6, "house"},
		{"path(4)", 4, 3, "edges(2-0,0-1,1-3)"},
		{"star(3)", 4, 3, "edges(3-0,3-1,3-2)"},
		{"path(3)", 3, 2, "star(2)"}, // isomorphic: the 3-vertex path is the 2-leaf star
		{"Cycle( 5 )", 5, 5, "cycle(5)"},
		{"edges(0-1,1-2,2-0)", 3, 3, "pg1"},
	}
	for _, tc := range cases {
		p, err := Parse(tc.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.in, err)
		}
		if p.N() != tc.n || p.NumEdges() != tc.edges {
			t.Fatalf("Parse(%q) = %d vertices %d edges, want %d/%d", tc.in, p.N(), p.NumEdges(), tc.n, tc.edges)
		}
		q, err := Parse(tc.equivalent)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.equivalent, err)
		}
		if p.CanonicalKey() != q.CanonicalKey() {
			t.Fatalf("CanonicalKey(%q) = %q != CanonicalKey(%q) = %q",
				tc.in, p.CanonicalKey(), tc.equivalent, q.CanonicalKey())
		}
	}
}

func TestCanonicalKeySeparatesNonIsomorphic(t *testing.T) {
	specs := []string{"pg1", "pg2", "pg3", "pg4", "pg5", "path(4)", "star(3)", "cycle(5)", "clique(5)"}
	seen := map[string]string{}
	for _, s := range specs {
		p, err := Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		key := p.CanonicalKey()
		if prev, ok := seen[key]; ok {
			t.Fatalf("patterns %q and %q collide on canonical key %q", prev, s, key)
		}
		seen[key] = s
	}
}

func TestParseRejections(t *testing.T) {
	tooMany := make([]string, 0, MaxEdges+1)
	for i := 0; i <= MaxEdges; i++ {
		// A multigraph spelling: 33 edge tokens on a path (duplicates count
		// against the parse-time cap before dedup).
		tooMany = append(tooMany, fmt.Sprintf("%d-%d", i%15, i%15+1))
	}
	cases := []struct {
		name, in, wantMsg string
	}{
		{"empty", "", "empty"},
		{"self loop", "edges(0-1,1-1)", "self loop"},
		{"disconnected", "edges(0-1,2-3)", "not connected"},
		{"vertex 16 exceeds cap", "edges(0-1,1-16)", "16-vertex cap"},
		{"huge vertex id", "edges(0-1000)", "16-vertex cap"},
		{"negative vertex", "edges(0-1,1--2)", "bad edge"},
		{"bad edge token", "edges(0:1)", "bad edge"},
		{"no edges", "edges()", "at least one edge"},
		{"too many edges", "edges(" + strings.Join(tooMany, ",") + ")", "edge cap"},
		{"cycle too small", "cycle(2)", "out of supported range"},
		{"cycle too big", "cycle(17)", "out of supported range"},
		{"clique over edge cap", "clique(9)", "out of supported range"},
		{"star too symmetric", "star(9)", "out of supported range"},
		{"non-integer arg", "cycle(x)", "one integer argument"},
		{"unknown form", "wheel(5)", "unknown form"},
		{"unknown name", "pg99", "unknown pattern"},
		{"missing paren", "cycle(4", "closing parenthesis"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if p, err := Parse(tc.in); err == nil {
				t.Fatalf("Parse(%q) = %v, want error", tc.in, p)
			} else if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Fatalf("Parse(%q) error %q, want it to contain %q", tc.in, err, tc.wantMsg)
			}
		})
	}
}

func TestParseRejectsTooSymmetric(t *testing.T) {
	// K(2,12): 14 vertices, 24 edges — within the size caps, but its
	// automorphism group has 2*12! elements; the parser must refuse rather
	// than let BreakAutomorphisms enumerate it.
	var edges []string
	for leaf := 2; leaf < 14; leaf++ {
		edges = append(edges, fmt.Sprintf("0-%d,1-%d", leaf, leaf))
	}
	in := "edges(" + strings.Join(edges, ",") + ")"
	_, err := Parse(in)
	if err == nil || !strings.Contains(err.Error(), "too symmetric") {
		t.Fatalf("Parse(K(2,12)) err = %v, want 'too symmetric'", err)
	}
}

// TestQuickDSLRoundTrip: for random connected patterns, rendering to the DSL
// and parsing back preserves the structure exactly (and therefore the
// canonical key).
func TestQuickDSLRoundTrip(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		p := randomConnected(seed)
		q, err := Parse(p.DSL())
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if q.N() != p.N() || q.NumEdges() != p.NumEdges() {
			return false
		}
		for a := 0; a < p.N(); a++ {
			for b := 0; b < p.N(); b++ {
				if p.HasEdge(a, b) != q.HasEdge(a, b) {
					return false
				}
			}
		}
		return q.CanonicalKey() == p.CanonicalKey()
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCanonicalKeyRelabelInvariant: the canonical key is invariant under
// random vertex relabelings — the property the plan cache relies on.
func TestQuickCanonicalKeyRelabelInvariant(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		p := randomConnected(seed)
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		relab := rng.Perm(p.N())
		var edges [][2]int
		for _, e := range p.Edges() {
			edges = append(edges, [2]int{relab[e[0]], relab[e[1]]})
		}
		q := MustNew("relab", p.N(), edges)
		return q.CanonicalKey() == p.CanonicalKey()
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripCatalog(t *testing.T) {
	pats := []*Pattern{PG1(), PG2(), PG3(), PG4(), PG5()}
	for k := 3; k <= 8; k++ {
		pats = append(pats, Cycle(k))
	}
	for k := 2; k <= 8; k++ {
		pats = append(pats, Clique(k))
	}
	for _, p := range pats {
		q, err := Parse(p.DSL())
		if err != nil {
			t.Fatalf("%s: Parse(%q): %v", p.Name(), p.DSL(), err)
		}
		if q.DSL() != p.DSL() {
			t.Fatalf("%s: round trip %q -> %q", p.Name(), p.DSL(), q.DSL())
		}
		if q.CanonicalKey() != p.CanonicalKey() {
			t.Fatalf("%s: canonical key changed across round trip", p.Name())
		}
	}
}

func TestAutomorphismsBounded(t *testing.T) {
	p := Star(5) // 5! = 120 automorphisms
	if auts, ok := p.AutomorphismsBounded(0); !ok || len(auts) != 120 {
		t.Fatalf("unbounded: %d automorphisms ok=%v, want 120/true", len(auts), ok)
	}
	if auts, ok := p.AutomorphismsBounded(200); !ok || len(auts) != 120 {
		t.Fatalf("loose bound: %d automorphisms ok=%v, want 120/true", len(auts), ok)
	}
	if _, ok := p.AutomorphismsBounded(100); ok {
		t.Fatal("bound 100 not reported as exceeded for 120 automorphisms")
	}
}

func TestParseCensus(t *testing.T) {
	for _, tc := range []struct {
		src string
		k   int
	}{
		{"census(2)", 2},
		{"census(3)", 3},
		{"CENSUS( 5 )", 5},
		{" census (4) ", 4},
	} {
		k, ok, err := ParseCensus(tc.src)
		if !ok || err != nil || k != tc.k {
			t.Fatalf("ParseCensus(%q) = (%d, %v, %v), want (%d, true, nil)", tc.src, k, ok, err, tc.k)
		}
	}
	// Not census expressions at all: ok=false, no error, Parse handles them.
	for _, src := range []string{"triangle", "cycle(4)", "edges(0-1)", ""} {
		if _, ok, err := ParseCensus(src); ok || err != nil {
			t.Fatalf("ParseCensus(%q) = (ok=%v, err=%v), want not-census", src, ok, err)
		}
	}
	// Census expressions with bad arguments: ok=true plus an error.
	for _, src := range []string{"census(1)", "census(6)", "census(x)", "census(3", "census()"} {
		if _, ok, err := ParseCensus(src); !ok || err == nil {
			t.Fatalf("ParseCensus(%q) = (ok=%v, err=%v), want census-but-invalid", src, ok, err)
		}
	}
}
