package pattern

// The pattern DSL of the resident query service: a compact text form for
// pattern graphs that clients send over HTTP and CLIs accept on the command
// line, plus a spelling-independent canonical key that the server's plan
// cache uses so `cycle(4)`, `square`, and `edges(0-1,1-2,2-3,3-0)` all share
// one cached plan.
//
// Grammar (case-insensitive, whitespace ignored):
//
//	query    := pattern | census
//	pattern  := name | generator | explicit
//	name     := "pg1".."pg5" | "triangle" | "square" | "diamond" | "house"
//	generator:= ("cycle"|"clique"|"path"|"star") "(" int ")"
//	explicit := "edges" "(" edge ("," edge)* ")"
//	edge     := int "-" int
//	census   := "census" "(" int ")"
//
// census(k) is not a pattern: it selects the ESU motif-census engine (count
// every connected k-vertex subgraph shape) instead of listing one pattern.
// Callers that accept both forms try ParseCensus first, then Parse.
//
// Explicit patterns number vertices 0..n-1 with n inferred as the largest
// endpoint plus one. All patterns must be connected, simple (no self-loops),
// and small enough for the engine: at most MaxVertices vertices (the fixed
// [16]int32 Gpsi map) and MaxEdges edges (the 32-bit pending-edge mask).

import (
	"fmt"
	"strconv"
	"strings"
)

const (
	// MaxVertices is the largest pattern the engine's fixed-size Gpsi value
	// supports (core.maxPatternVertices); the DSL rejects anything bigger at
	// parse time instead of at run time.
	MaxVertices = 16
	// MaxEdges is the engine's pattern-edge cap (the Pending bitmask width).
	MaxEdges = 32
	// maxAutomorphismGuard bounds the automorphism groups the planner will
	// enumerate. Highly symmetric explicit patterns (e.g. complete bipartite
	// graphs near the vertex cap) have factorially large groups; a resident
	// server must reject them at parse time rather than hang in
	// BreakAutomorphisms on an attacker-supplied pattern.
	maxAutomorphismGuard = 100_000
)

const (
	// MinCensusK and MaxCensusK bound the census(k) verb. They mirror
	// esu.MinK/esu.MaxK (asserted equal by the esu tests); the DSL keeps its
	// own copy so the parser does not depend on the engine package.
	MinCensusK = 2
	MaxCensusK = 5
)

// ParseCensus recognizes the census verb: "census(k)". ok reports whether s
// is a census expression at all — when false, callers should Parse s as a
// pattern; when true, err still flags a malformed or out-of-range k.
func ParseCensus(s string) (k int, ok bool, err error) {
	src := strings.ToLower(strings.Join(strings.Fields(s), ""))
	body, found := strings.CutPrefix(src, "census(")
	if !found {
		return 0, false, nil
	}
	body, found = strings.CutSuffix(body, ")")
	if !found {
		return 0, true, fmt.Errorf("pattern: %q: missing closing parenthesis", s)
	}
	k, convErr := strconv.Atoi(body)
	if convErr != nil {
		return 0, true, fmt.Errorf("pattern: %q: census wants one integer argument", s)
	}
	if k < MinCensusK || k > MaxCensusK {
		return 0, true, fmt.Errorf("pattern: census(%d) out of supported range [%d,%d]", k, MinCensusK, MaxCensusK)
	}
	return k, true, nil
}

// Parse parses the pattern DSL. Accepted spellings: the catalog names
// (pg1..pg5, triangle, square, diamond, house, and legacy cycleN/cliqueN/
// pathN/starN), the parameterized generators cycle(k), clique(k), path(k),
// star(k), and explicit edge lists edges(0-1,1-2,2-0). The returned pattern
// carries no symmetry-breaking order; callers plan it with
// BreakAutomorphisms (List/Count do so automatically).
func Parse(s string) (*Pattern, error) {
	src := strings.ToLower(strings.Join(strings.Fields(s), ""))
	if src == "" {
		return nil, fmt.Errorf("pattern: empty pattern expression")
	}
	open := strings.IndexByte(src, '(')
	if open < 0 {
		return ByName(src)
	}
	if !strings.HasSuffix(src, ")") {
		return nil, fmt.Errorf("pattern: %q: missing closing parenthesis", s)
	}
	head, body := src[:open], src[open+1:len(src)-1]
	switch head {
	case "cycle", "clique", "path", "star":
		k, err := strconv.Atoi(body)
		if err != nil {
			return nil, fmt.Errorf("pattern: %q: %s wants one integer argument", s, head)
		}
		return makeGenerator(head, k)
	case "edges":
		return parseEdges(s, body)
	}
	return nil, fmt.Errorf("pattern: %q: unknown form %q (want cycle(k), clique(k), path(k), star(k), edges(a-b,...), or a catalog name)", s, head)
}

// makeGenerator builds a parameterized family member with the engine's size
// caps enforced before the (potentially factorial) symmetry analysis runs.
func makeGenerator(fam string, k int) (*Pattern, error) {
	switch fam {
	case "cycle":
		if k < 3 || k > MaxVertices {
			return nil, fmt.Errorf("pattern: cycle(%d) out of supported range [3,%d]", k, MaxVertices)
		}
		return Cycle(k), nil
	case "clique":
		// clique(9) already has 36 > MaxEdges edges; the edge cap is the
		// binding constraint for cliques.
		if k < 2 || k*(k-1)/2 > MaxEdges {
			return nil, fmt.Errorf("pattern: clique(%d) out of supported range [2,8] (%d edges exceed the engine's %d-edge cap)", k, k*(k-1)/2, MaxEdges)
		}
		return Clique(k), nil
	case "path":
		if k < 2 || k > MaxVertices {
			return nil, fmt.Errorf("pattern: path(%d) out of supported range [2,%d]", k, MaxVertices)
		}
		return Path(k), nil
	case "star":
		// star(k) has k! leaf automorphisms; 8 leaves (40320) is the largest
		// group the planner enumerates in negligible time.
		if k < 1 || k > 8 {
			return nil, fmt.Errorf("pattern: star(%d) out of supported range [1,8]", k)
		}
		return Star(k), nil
	}
	return nil, fmt.Errorf("pattern: unknown generator %q", fam)
}

func parseEdges(src, body string) (*Pattern, error) {
	if body == "" {
		return nil, fmt.Errorf("pattern: %q: edges() needs at least one edge", src)
	}
	var edges [][2]int
	n := 0
	for _, tok := range strings.Split(body, ",") {
		a, b, ok := strings.Cut(tok, "-")
		if !ok {
			return nil, fmt.Errorf("pattern: %q: bad edge %q (want A-B)", src, tok)
		}
		u, err1 := strconv.Atoi(a)
		v, err2 := strconv.Atoi(b)
		if err1 != nil || err2 != nil || u < 0 || v < 0 {
			return nil, fmt.Errorf("pattern: %q: bad edge %q (want nonnegative integers A-B)", src, tok)
		}
		if u >= MaxVertices || v >= MaxVertices {
			return nil, fmt.Errorf("pattern: %q: vertex %d exceeds the engine's %d-vertex cap", src, max(u, v), MaxVertices)
		}
		edges = append(edges, [2]int{u, v})
		if u >= n {
			n = u + 1
		}
		if v >= n {
			n = v + 1
		}
	}
	if len(edges) > MaxEdges {
		return nil, fmt.Errorf("pattern: %q: %d edges exceed the engine's %d-edge cap", src, len(edges), MaxEdges)
	}
	p, err := New(fmt.Sprintf("edges%d", n), n, edges)
	if err != nil {
		return nil, err
	}
	if _, ok := p.AutomorphismsBounded(maxAutomorphismGuard); !ok {
		return nil, fmt.Errorf("pattern: %q: more than %d automorphisms; too symmetric to plan", src, maxAutomorphismGuard)
	}
	return p, nil
}

// DSL renders p in the explicit-edges form Parse accepts, e.g.
// "edges(0-1,0-2,1-2)" — a lossless round trip of the pattern's structure
// (the symmetry-breaking order is derived state and is not serialized).
func (p *Pattern) DSL() string {
	var sb strings.Builder
	sb.WriteString("edges(")
	for i, e := range p.Edges() {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d-%d", e[0], e[1])
	}
	sb.WriteByte(')')
	return sb.String()
}

// CanonicalKey returns a cache key that identifies the pattern's structure
// independent of its spelling. For patterns of up to 8 vertices the key is a
// canonical form computed over all vertex permutations, so any two isomorphic
// patterns — cycle(4), square, a re-numbered edges(...) — share one key.
// Larger patterns fall back to their normalized edge list (spelling-dependent
// numbering, but still stable across equal spellings). Labeled patterns
// append their label vector so label variants never collide.
func (p *Pattern) CanonicalKey() string {
	var key string
	if p.n <= 8 {
		key = fmt.Sprintf("c%d:%07x", p.n, p.canonicalBits())
	} else {
		key = "raw" + p.DSL()
	}
	if p.labels != nil {
		var sb strings.Builder
		sb.WriteString(key)
		sb.WriteString(";labels=")
		for i, l := range p.labels {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", l)
		}
		return sb.String()
	}
	return key
}

// canonicalBits computes the minimum upper-triangle adjacency encoding of p
// over every vertex permutation — the classic (exponential, but tiny-n)
// canonical form. For n <= 8 this is at most 8! = 40320 permutations of a
// 28-bit code.
func (p *Pattern) canonicalBits() uint64 {
	n := p.n
	perm := make([]int, n)
	used := make([]bool, n)
	best := ^uint64(0)
	var rec func(depth int)
	rec = func(depth int) {
		if depth == n {
			var bits uint64
			k := 0
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if p.mat[perm[i]*n+perm[j]] {
						bits |= 1 << uint(k)
					}
					k++
				}
			}
			if bits < best {
				best = bits
			}
			return
		}
		for v := 0; v < n; v++ {
			if used[v] {
				continue
			}
			used[v] = true
			perm[depth] = v
			rec(depth + 1)
			used[v] = false
		}
	}
	rec(0)
	return best
}
