package pattern

import (
	"math/rand"
	"testing"

	"psgl/internal/graph"
)

func TestNewValidation(t *testing.T) {
	if _, err := New("empty", 0, nil); err == nil {
		t.Error("empty pattern accepted")
	}
	if _, err := New("loop", 2, [][2]int{{0, 0}}); err == nil {
		t.Error("self loop accepted")
	}
	if _, err := New("range", 2, [][2]int{{0, 5}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := New("disc", 4, [][2]int{{0, 1}, {2, 3}}); err == nil {
		t.Error("disconnected pattern accepted")
	}
	if _, err := New("dup", 3, [][2]int{{0, 1}, {1, 0}, {1, 2}}); err != nil {
		t.Errorf("duplicate edge should be merged, got %v", err)
	}
}

func TestBasicAccessors(t *testing.T) {
	p := MustNew("tri", 3, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	if p.N() != 3 || p.NumEdges() != 3 {
		t.Fatalf("N=%d E=%d", p.N(), p.NumEdges())
	}
	for v := 0; v < 3; v++ {
		if p.Degree(v) != 2 {
			t.Errorf("Degree(%d)=%d", v, p.Degree(v))
		}
	}
	if !p.HasEdge(0, 2) || p.HasEdge(0, 0) {
		t.Error("HasEdge wrong")
	}
	if got := len(p.Edges()); got != 3 {
		t.Errorf("Edges() has %d entries", got)
	}
}

func TestAutomorphismCounts(t *testing.T) {
	cases := []struct {
		p    *Pattern
		want int
	}{
		{MustNew("k3", 3, [][2]int{{0, 1}, {1, 2}, {2, 0}}), 6},
		{MustNew("c4", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}), 8},
		{MustNew("k4", 4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}), 24},
		{MustNew("p3", 3, [][2]int{{0, 1}, {1, 2}}), 2},
		{MustNew("diamond", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {1, 3}}), 4},
		{MustNew("house", 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {1, 4}, {2, 4}}), 2},
		{MustNew("star3", 4, [][2]int{{0, 1}, {0, 2}, {0, 3}}), 6},
		{MustNew("c5", 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}), 10},
	}
	for _, c := range cases {
		if got := c.p.NumAutomorphisms(); got != c.want {
			t.Errorf("%s: |Aut| = %d, want %d", c.p.Name(), got, c.want)
		}
	}
}

func TestAutomorphismsAreValid(t *testing.T) {
	p := MustNew("c4", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	for _, sigma := range p.Automorphisms() {
		seen := make([]bool, 4)
		for _, img := range sigma {
			if seen[img] {
				t.Fatalf("%v is not a permutation", sigma)
			}
			seen[img] = true
		}
		for a := 0; a < 4; a++ {
			for b := 0; b < 4; b++ {
				if p.HasEdge(a, b) != p.HasEdge(sigma[a], sigma[b]) {
					t.Fatalf("%v does not preserve adjacency", sigma)
				}
			}
		}
	}
}

// countEmbeddings brute-forces the number of injective edge-preserving maps
// from p into g, optionally honoring p's partial order under g's degree
// ranking. With respectOrders=false the count equals
// (#subgraph instances) × |Aut(p)|.
func countEmbeddings(p *Pattern, g *graph.Graph, respectOrders bool) int64 {
	o := graph.NewOrdered(g)
	n, nd := p.N(), g.NumVertices()
	mapping := make([]int32, n)
	used := make([]bool, nd)
	var count int64
	var rec func(v int)
	rec = func(v int) {
		if v == n {
			count++
			return
		}
		for d := 0; d < nd; d++ {
			if used[d] {
				continue
			}
			ok := true
			for u := 0; u < v && ok; u++ {
				if p.HasEdge(v, u) && !g.HasEdge(graph.VertexID(d), mapping[u]) {
					ok = false
				}
				if respectOrders && ok {
					if p.MustPrecede(v, u) && !o.Less(graph.VertexID(d), mapping[u]) {
						ok = false
					}
					if p.MustPrecede(u, v) && !o.Less(mapping[u], graph.VertexID(d)) {
						ok = false
					}
				}
			}
			if !ok {
				continue
			}
			mapping[v] = int32(d)
			used[d] = true
			rec(v + 1)
			used[d] = false
		}
	}
	rec(0)
	return count
}

func randomGraph(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)))
	}
	return b.Build()
}

// TestBreakingIsExact is the load-bearing test of this package: after
// BreakAutomorphisms, the order-constrained embedding count must equal the
// unconstrained count divided by |Aut| — i.e., exactly one representative per
// subgraph instance survives, never zero, never two.
func TestBreakingIsExact(t *testing.T) {
	patterns := []*Pattern{
		MustNew("k3", 3, [][2]int{{0, 1}, {1, 2}, {2, 0}}),
		MustNew("c4", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}),
		MustNew("k4", 4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}),
		MustNew("diamond", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {1, 3}}),
		MustNew("house", 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {1, 4}, {2, 4}}),
		MustNew("p4", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}}),
		MustNew("star3", 4, [][2]int{{0, 1}, {0, 2}, {0, 3}}),
		MustNew("c5", 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}),
		MustNew("bowtie", 5, [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 2}}),
	}
	for seed := int64(0); seed < 6; seed++ {
		g := randomGraph(9, 18, seed)
		for _, p := range patterns {
			aut := int64(p.NumAutomorphisms())
			raw := countEmbeddings(p, g, false)
			if raw%aut != 0 {
				t.Fatalf("%s seed=%d: raw count %d not divisible by |Aut|=%d", p.Name(), seed, raw, aut)
			}
			broken := p.BreakAutomorphisms()
			got := countEmbeddings(broken, g, true)
			if got != raw/aut {
				t.Errorf("%s seed=%d: broken count %d, want %d (raw=%d aut=%d)",
					p.Name(), seed, got, raw/aut, raw, aut)
			}
		}
	}
}

func TestBreakingConstraintsIffSymmetric(t *testing.T) {
	// BreakAutomorphisms must emit constraints exactly when the group is
	// nontrivial, and afterwards the constrained automorphism count (those
	// permutations consistent with the order DAG) must be 1.
	sawAsymmetric, sawSymmetric := false, false
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(3)
		var edges [][2]int
		for i := 1; i < n; i++ { // random spanning tree keeps it connected
			edges = append(edges, [2]int{rng.Intn(i), i})
		}
		for i := 0; i < n/2; i++ {
			edges = append(edges, [2]int{rng.Intn(n), rng.Intn(n)})
		}
		p, err := New("rand", n, filterLoops(edges))
		if err != nil {
			continue
		}
		aut := p.NumAutomorphisms()
		b := p.BreakAutomorphisms()
		if aut == 1 {
			sawAsymmetric = true
			if len(b.Orders()) != 0 {
				t.Errorf("seed=%d: asymmetric pattern got constraints %v", seed, b.Orders())
			}
		} else {
			sawSymmetric = true
			if len(b.Orders()) == 0 {
				t.Errorf("seed=%d: |Aut|=%d but no constraints emitted", seed, aut)
			}
		}
		// Surviving automorphisms: σ compatible with the order constraints
		// (σ maps every constrained pair to a constrained pair in the same
		// direction). Exactly the identity must survive.
		survivors := 0
		for _, sigma := range b.Automorphisms() {
			ok := true
			for a := 0; a < n && ok; a++ {
				for c := 0; c < n && ok; c++ {
					if b.MustPrecede(a, c) && b.MustPrecede(sigma[c], sigma[a]) {
						ok = false
					}
				}
			}
			if ok {
				survivors++
			}
		}
		if survivors != 1 {
			t.Errorf("seed=%d: %d automorphisms survive the order constraints, want 1", seed, survivors)
		}
	}
	if !sawAsymmetric || !sawSymmetric {
		t.Logf("coverage note: asymmetric=%v symmetric=%v", sawAsymmetric, sawSymmetric)
	}
}

func filterLoops(edges [][2]int) [][2]int {
	var out [][2]int
	for _, e := range edges {
		if e[0] != e[1] {
			out = append(out, e)
		}
	}
	return out
}

func TestOrdersAcyclic(t *testing.T) {
	for _, p := range []*Pattern{PG1(), PG2(), PG3(), PG4(), PG5(), Cycle(5), Clique(5), Path(4), Star(4)} {
		if !p.OrdersAcyclic() {
			t.Errorf("%s: constraint set has a cycle: %v", p.Name(), p.Orders())
		}
	}
}

func TestMustPrecedeTransitive(t *testing.T) {
	p := Clique(4) // total order v0 < v1 < v2 < v3 (up to naming)
	lo := p.LowestRankVertex()
	count := 0
	for u := 0; u < 4; u++ {
		if u != lo && p.MustPrecede(lo, u) {
			count++
		}
	}
	if count != 3 {
		t.Errorf("lowest-rank vertex of K4 precedes %d others, want 3", count)
	}
}

func TestCatalogShapes(t *testing.T) {
	cases := []struct {
		p      *Pattern
		n, e   int
		clique bool
		cycle  bool
	}{
		{PG1(), 3, 3, true, true},
		{PG2(), 4, 4, false, true},
		{PG3(), 4, 5, false, false},
		{PG4(), 4, 6, true, false},
		{PG5(), 5, 6, false, false},
		{Path(4), 4, 3, false, false},
		{Star(3), 4, 3, false, false},
		{Cycle(6), 6, 6, false, true},
		{Clique(5), 5, 10, true, false},
	}
	for _, c := range cases {
		if c.p.N() != c.n || c.p.NumEdges() != c.e {
			t.Errorf("%s: n=%d e=%d, want n=%d e=%d", c.p.Name(), c.p.N(), c.p.NumEdges(), c.n, c.e)
		}
		if c.p.IsClique() != c.clique {
			t.Errorf("%s: IsClique=%v", c.p.Name(), c.p.IsClique())
		}
		if c.p.IsCycle() != c.cycle {
			t.Errorf("%s: IsCycle=%v", c.p.Name(), c.p.IsCycle())
		}
	}
}

func TestMinVertexCover(t *testing.T) {
	cases := []struct {
		p    *Pattern
		want int
	}{
		{PG1(), 2}, {PG2(), 2}, {PG3(), 2}, {PG4(), 3}, {PG5(), 3},
		{Path(4), 2}, {Star(5), 1}, {Cycle(5), 3}, {Cycle(6), 3}, {Clique(5), 4},
	}
	for _, c := range cases {
		if got := c.p.MinVertexCoverSize(); got != c.want {
			t.Errorf("%s: MVC = %d, want %d", c.p.Name(), got, c.want)
		}
	}
}

func TestLowestRankVertexIsMinimal(t *testing.T) {
	for _, p := range []*Pattern{PG1(), PG2(), PG4(), Cycle(5), Clique(5)} {
		lo := p.LowestRankVertex()
		for u := 0; u < p.N(); u++ {
			if p.MustPrecede(u, lo) {
				t.Errorf("%s: vertex %d precedes the lowest-rank vertex %d", p.Name(), u, lo)
			}
		}
		// For cycles and cliques the first broken orbit covers all vertices,
		// so the pinned vertex precedes every other vertex.
		for u := 0; u < p.N(); u++ {
			if u != lo && !p.MustPrecede(lo, u) {
				t.Errorf("%s: lowest-rank vertex %d does not precede %d", p.Name(), lo, u)
			}
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"pg1", "pg2", "pg3", "pg4", "pg5", "triangle", "square", "diamond", "house", "cycle5", "clique5", "path4", "star3"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	for _, name := range []string{"pg6", "cycle2", "clique99", "blah"} {
		if _, err := ByName(name); err == nil {
			t.Errorf("ByName(%q) should fail", name)
		}
	}
}

func TestStringRendering(t *testing.T) {
	s := PG2().String()
	if s == "" || len(s) < 10 {
		t.Errorf("String too short: %q", s)
	}
}

func TestHeuristic2PrefersHighDegreeOrbit(t *testing.T) {
	// Diamond: deg-3 orbit {1,3} and deg-2 orbit {0,2}. The first constraint
	// must pin within the high-degree orbit.
	p := MustNew("diamond", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {1, 3}})
	b := p.BreakAutomorphisms()
	orders := b.Orders()
	if len(orders) == 0 {
		t.Fatal("no constraints produced")
	}
	first := orders[0]
	if p.Degree(first.A) != 3 {
		t.Errorf("first constraint %v should involve the degree-3 orbit", first)
	}
}

func TestStripOrders(t *testing.T) {
	p := Triangle().BreakAutomorphisms()
	if len(p.Orders()) == 0 {
		t.Fatal("broken triangle should carry orders")
	}
	s := p.StripOrders()
	if len(s.Orders()) != 0 {
		t.Fatalf("StripOrders left %v", s.Orders())
	}
	for a := 0; a < s.N(); a++ {
		for b := 0; b < s.N(); b++ {
			if s.MustPrecede(a, b) {
				t.Fatalf("residual MustPrecede(%d,%d)", a, b)
			}
		}
	}
	if s.N() != p.N() || s.NumEdges() != p.NumEdges() || s.Name() != p.Name() {
		t.Fatal("StripOrders changed the structure")
	}
	if len(p.Orders()) == 0 {
		t.Fatal("StripOrders mutated the receiver")
	}
	// Order-free patterns come back as-is; labels survive the strip.
	asym := MustNew("path3", 3, [][2]int{{0, 1}, {1, 2}})
	if asym.StripOrders() != asym {
		t.Fatal("order-free pattern should be returned unchanged")
	}
	lp, err := Triangle().WithLabels([]int{1, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	ls := lp.BreakAutomorphisms().StripOrders()
	if !ls.Labeled() || ls.Label(1) != 2 {
		t.Fatal("StripOrders dropped labels")
	}
}

func BenchmarkAutomorphisms(b *testing.B) {
	p := MustNew("k6", 6, func() [][2]int {
		var e [][2]int
		for i := 0; i < 6; i++ {
			for j := i + 1; j < 6; j++ {
				e = append(e, [2]int{i, j})
			}
		}
		return e
	}())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Automorphisms()
	}
}

func BenchmarkBreakAutomorphisms(b *testing.B) {
	p := MustNew("c6", 6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.BreakAutomorphisms()
	}
}
