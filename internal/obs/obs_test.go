package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestNilObserverIsSafe(t *testing.T) {
	var o *Observer
	o.RunStarted(4, 0)
	o.Resumed(2, time.Millisecond)
	o.StepStarted(0)
	o.StepComputed(0, []time.Duration{time.Millisecond}, 1, 2)
	o.ExchangeDone(0, time.Millisecond, 2)
	o.ExchangeFailed(0, 1, errors.New("x"))
	o.CheckpointSaved(0, 128, time.Millisecond)
	o.CheckpointRestored(0, time.Millisecond)
	o.RecoveryStarted(1, errors.New("x"))
	o.RestartedFromScratch(1)
	o.Aborted(1, errors.New("x"))
	o.RunEnded(3, 10, map[string]int64{"a": 1}, nil, nil, nil)
	o.RecordWorkerLoads([]float64{1, 2})
	o.AddFrameSent(true, 10)
	o.AddFrameRecv(false, 10)
	o.AddBytesSent(1)
	o.AddBytesRecv(1)
	if got := o.Steps(); got != nil {
		t.Fatalf("nil observer Steps = %v", got)
	}
	if got := o.Counters(); got != nil {
		t.Fatalf("nil observer Counters = %v", got)
	}
	if s := o.Snapshot(); s.Events != 0 {
		t.Fatalf("nil observer Snapshot = %+v", s)
	}
	o.WriteReport(io.Discard)
}

func TestRingOrderAndWraparound(t *testing.T) {
	r := NewRing(4)
	o := New(r)
	for step := 0; step < 6; step++ {
		o.StepStarted(step)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		wantStep := i + 2 // steps 2..5 survive
		if ev.Type != EventStepStart || ev.Step != wantStep {
			t.Fatalf("event %d = %+v, want step_start step=%d", i, ev, wantStep)
		}
		if i > 0 && evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("events out of order: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}

	// Under capacity: all retained, in order.
	r2 := NewRing(10)
	o2 := New(r2)
	o2.StepStarted(0)
	o2.StepStarted(1)
	if evs := r2.Events(); len(evs) != 2 || evs[0].Step != 0 || evs[1].Step != 1 {
		t.Fatalf("partial ring events = %+v", evs)
	}
}

func TestObserverLifecycle(t *testing.T) {
	r := NewRing(64)
	o := New(r)
	o.RunStarted(2, 0)
	o.StepStarted(0)
	o.StepComputed(0, []time.Duration{2 * time.Millisecond, 5 * time.Millisecond}, 3, 7)
	o.ExchangeDone(0, time.Millisecond, 7)
	o.CheckpointSaved(0, 256, time.Millisecond)
	o.RunEnded(1, 7, map[string]int64{"gpsi_generated": 7}, []time.Duration{time.Millisecond, time.Millisecond}, []int64{3, 4}, nil)
	o.RecordWorkerLoads([]float64{1.5, 2.5})

	steps := o.Steps()
	if len(steps) != 1 {
		t.Fatalf("steps = %+v", steps)
	}
	st := steps[0]
	if st.Compute != 5*time.Millisecond || st.Processed != 3 || st.Produced != 7 || st.Exchange != time.Millisecond {
		t.Fatalf("step metrics = %+v", st)
	}
	if got := o.Counters()["gpsi_generated"]; got != 7 {
		t.Fatalf("counters[gpsi_generated] = %d", got)
	}

	s := o.Snapshot()
	if !s.Ended || s.Supersteps != 1 || s.MessagesTotal != 7 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.CheckpointSaves != 1 || s.CheckpointBytes != 256 {
		t.Fatalf("checkpoint counters = %+v", s)
	}
	if len(s.WorkerLoads) != 2 || s.WorkerLoads[1] != 2.5 {
		t.Fatalf("worker loads = %v", s.WorkerLoads)
	}

	var wantSeq uint64
	for _, ev := range r.Events() {
		wantSeq++
		if ev.Seq != wantSeq {
			t.Fatalf("seq gap: got %d want %d", ev.Seq, wantSeq)
		}
	}
	if wantSeq != 6 {
		t.Fatalf("emitted %d events, want 6", wantSeq)
	}

	var buf bytes.Buffer
	o.WriteReport(&buf)
	out := buf.String()
	for _, want := range []string{"1 supersteps", "checkpoints: 1 saves", "gpsi_generated=7", "w1=2.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestFrameCounters(t *testing.T) {
	o := New(nil)
	o.AddFrameSent(true, 100)
	o.AddFrameSent(false, 50)
	o.AddFrameRecv(true, 100)
	o.AddFrameRecv(false, 50)
	o.AddBytesSent(7)
	o.AddBytesRecv(9)
	s := o.Snapshot()
	if s.WireFramesSent != 1 || s.GobFramesSent != 1 || s.WireFramesRecv != 1 || s.GobFramesRecv != 1 {
		t.Fatalf("frame counters = %+v", s)
	}
	if s.BytesSent != 157 || s.BytesRecv != 159 {
		t.Fatalf("byte counters = %+v", s)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	o := New(sink)
	o.RunStarted(2, 0)
	o.StepStarted(0)
	o.ExchangeFailed(0, 1, errors.New("boom"))
	o.RunEnded(1, 5, nil, nil, nil, nil)
	if err := sink.Err(); err != nil {
		t.Fatalf("sink error: %v", err)
	}

	// Every line is a standalone JSON object.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), buf.String())
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
	}

	evs, err := DecodeJSONL(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(evs) != 4 {
		t.Fatalf("decoded %d events, want 4", len(evs))
	}
	wantTypes := []EventType{EventRunStart, EventStepStart, EventRetry, EventRunEnd}
	for i, ev := range evs {
		if ev.Type != wantTypes[i] {
			t.Fatalf("event %d type = %v, want %v", i, ev.Type, wantTypes[i])
		}
	}
	if evs[2].Attempt != 1 || evs[2].Err != "boom" {
		t.Fatalf("retry event = %+v", evs[2])
	}
	if evs[3].Messages != 5 {
		t.Fatalf("run_end event = %+v", evs[3])
	}
}

func TestEventTypeNames(t *testing.T) {
	for tp := EventRunStart; tp <= EventRunEnd; tp++ {
		name := tp.String()
		if name == "unknown" || name == "" {
			t.Fatalf("event type %d has no name", tp)
		}
		if typeByName(name) != tp {
			t.Fatalf("typeByName(%q) = %v, want %v", name, typeByName(name), tp)
		}
	}
	if EventType(0).String() != "unknown" || EventType(200).String() != "unknown" {
		t.Fatal("out-of-range event types must stringify as unknown")
	}
}

func TestNopSinkAndNilObserverAllocFree(t *testing.T) {
	o := New(NopSink{})
	if allocs := testing.AllocsPerRun(100, func() {
		o.AddFrameSent(true, 64)
		o.AddFrameRecv(true, 64)
		o.StepStarted(1)
	}); allocs != 0 {
		t.Fatalf("NopSink observer hot calls allocate %v/op", allocs)
	}
	var nilObs *Observer
	if allocs := testing.AllocsPerRun(100, func() {
		nilObs.AddFrameSent(true, 64)
		nilObs.StepStarted(1)
		nilObs.ExchangeDone(1, time.Millisecond, 3)
	}); allocs != 0 {
		t.Fatalf("nil observer calls allocate %v/op", allocs)
	}
}

func TestDebugServer(t *testing.T) {
	o := New(nil)
	o.RunStarted(1, 0)
	o.RunEnded(2, 9, map[string]int64{"k": 3}, nil, nil, nil)
	PublishExpvar("psgl_test", o)
	// Rebinding the same name must not panic.
	PublishExpvar("psgl_test", o)

	addr, err := ServeDebug("127.0.0.1:0", o)
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	for _, path := range []string{"/debug/vars", "/debug/obs", "/debug/pprof/"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if path == "/debug/obs" {
			var s Snapshot
			if err := json.Unmarshal(body, &s); err != nil {
				t.Fatalf("obs snapshot not JSON: %v\n%s", err, body)
			}
			if !s.Ended || s.MessagesTotal != 9 || s.Counters["k"] != 3 {
				t.Fatalf("obs snapshot = %+v", s)
			}
		}
	}
}
