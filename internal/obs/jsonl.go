package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// jsonEvent is the wire form of an Event: snake_case names, zero fields
// omitted, the event type as its string name.
type jsonEvent struct {
	Seq      uint64  `json:"seq"`
	ElapsedS float64 `json:"elapsed_s"`
	Type     string  `json:"type"`
	Step     int     `json:"step"`
	DurS     float64 `json:"dur_s,omitempty"`
	Messages int64   `json:"messages,omitempty"`
	Bytes    int64   `json:"bytes,omitempty"`
	Attempt  int     `json:"attempt,omitempty"`
	Err      string  `json:"err,omitempty"`
	Tag      string  `json:"tag,omitempty"`
}

// JSONL is a sink writing one JSON object per line to an io.Writer — the
// trace-file format behind `psgl-bench … -trace out.jsonl`. Emit is safe for
// concurrent use; encoding errors are remembered and surfaced by Err.
type JSONL struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONL returns a JSONL sink writing to w. The caller owns w's lifetime
// (close the file after the run; JSONL does not buffer).
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Emit implements Sink.
func (j *JSONL) Emit(ev Event) {
	rec := jsonEvent{
		Seq:      ev.Seq,
		ElapsedS: ev.Elapsed.Seconds(),
		Type:     ev.Type.String(),
		Step:     ev.Step,
		DurS:     ev.Dur.Seconds(),
		Messages: ev.Messages,
		Bytes:    ev.Bytes,
		Attempt:  ev.Attempt,
		Err:      ev.Err,
		Tag:      ev.Tag,
	}
	j.mu.Lock()
	if err := j.enc.Encode(rec); err != nil && j.err == nil {
		j.err = err
	}
	j.mu.Unlock()
}

// Err returns the first write or encode error, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// DecodeJSONL parses a JSONL trace back into events — the inverse of the
// JSONL sink, for tests and trace tooling. Durations are recovered at
// nanosecond granularity from the fractional-second fields.
func DecodeJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for dec.More() {
		var rec jsonEvent
		if err := dec.Decode(&rec); err != nil {
			return out, err
		}
		out = append(out, Event{
			Seq:      rec.Seq,
			Elapsed:  time.Duration(rec.ElapsedS * float64(time.Second)),
			Type:     typeByName(rec.Type),
			Step:     rec.Step,
			Dur:      time.Duration(rec.DurS * float64(time.Second)),
			Messages: rec.Messages,
			Bytes:    rec.Bytes,
			Attempt:  rec.Attempt,
			Err:      rec.Err,
			Tag:      rec.Tag,
		})
	}
	return out, nil
}

func typeByName(name string) EventType {
	for t, n := range eventNames {
		if n == name {
			return t
		}
	}
	return 0
}
