package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

var (
	expvarMu        sync.Mutex
	expvarPublished = map[string]*Observer{}
)

// PublishExpvar registers the Observer's snapshot under `name` in the
// process-wide expvar registry (served at /debug/vars). Publishing the same
// name again rebinds it to o instead of panicking, so tests and repeated CLI
// runs in one process are safe.
func PublishExpvar(name string, o *Observer) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if _, ok := expvarPublished[name]; !ok {
		n := name
		expvar.Publish(n, expvar.Func(func() any {
			expvarMu.Lock()
			cur := expvarPublished[n]
			expvarMu.Unlock()
			return cur.Snapshot()
		}))
	}
	expvarPublished[name] = o
}

// Handler returns the debug mux: expvar at /debug/vars, the pprof suite at
// /debug/pprof/*, and the Observer's JSON snapshot at /debug/obs. A private
// mux keeps the profiling endpoints off http.DefaultServeMux.
func Handler(o *Observer) *http.ServeMux {
	return HandlerProvider(func() *Observer { return o })
}

// HandlerProvider is Handler with a late-bound Observer: each /debug/obs
// request snapshots whatever Observer get returns at that moment. Long-lived
// processes that observe many short runs — the query service creates one
// Observer per query — point get at the most recent one so a single debug
// mux follows them all. get returning nil yields an empty snapshot.
func HandlerProvider(get func() *Observer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, _ *http.Request) {
		o := get()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		type tagged struct {
			Tag string `json:"tag,omitempty"`
			Snapshot
		}
		enc.Encode(tagged{Tag: o.Tag(), Snapshot: o.Snapshot()})
	})
	return mux
}

// ServeDebug starts the debug server on addr (e.g. "localhost:6060") in a
// background goroutine and returns the bound address — useful with ":0".
// The server lives for the rest of the process; CLIs call this once. The
// observer is also published as the expvar "psgl", so /debug/vars carries
// the snapshot alongside the runtime's own variables.
func ServeDebug(addr string, o *Observer) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	PublishExpvar("psgl", o)
	srv := &http.Server{Handler: Handler(o)}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}
