package obs

import (
	"bytes"
	"testing"
)

func TestTagStampedAndRoundTripsJSONL(t *testing.T) {
	var buf bytes.Buffer
	o := New(NewJSONL(&buf))
	o.SetTag("q17")
	if o.Tag() != "q17" {
		t.Fatalf("Tag() = %q, want q17", o.Tag())
	}
	o.RunStarted(2, 0)
	o.RunEnded(1, 0, nil, nil, nil, nil)
	events, err := DecodeJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("%d events, want 2", len(events))
	}
	for _, ev := range events {
		if ev.Tag != "q17" {
			t.Fatalf("event %v tag %q, want q17", ev.Type, ev.Tag)
		}
	}
}

func TestUntaggedEventsOmitTag(t *testing.T) {
	var buf bytes.Buffer
	o := New(NewJSONL(&buf))
	o.RunStarted(1, 0)
	if bytes.Contains(buf.Bytes(), []byte(`"tag"`)) {
		t.Fatalf("untagged event serialized a tag field: %s", buf.String())
	}
}

func TestNilObserverTagSafe(t *testing.T) {
	var o *Observer
	o.SetTag("x") // must not panic
	if o.Tag() != "" {
		t.Fatal("nil observer has a tag")
	}
}
