// Package obs is the observability layer of the BSP/PSgL stack: a
// zero-dependency (stdlib-only) metrics and trace-event subsystem threaded
// through bsp → core → psgl → the CLIs.
//
// Distributed subgraph systems live or die by visibility into per-round
// communication and intermediate-result volume (Chen et al.'s pipelined
// communication analysis and Ren et al.'s robustness instrumentation both
// hinge on per-round signals); this package provides exactly those signals
// without touching the per-message hot path:
//
//   - Counters: per-worker and per-superstep aggregates — messages processed
//     and produced, wire bytes and frames (compact codec vs gob fallback),
//     checkpoint encode/restore durations, retries, recoveries. All counter
//     updates are atomic adds at barrier or frame granularity; nothing runs
//     per message.
//   - Trace: an ordered stream of structured events (superstep start/end,
//     exchange, retry, checkpoint save/restore, recovery, restart, abort,
//     run end) emitted to a pluggable Sink — NopSink (default), Ring (tests),
//     JSONL (files, `psgl-bench -trace`).
//   - Endpoints: an expvar + net/http/pprof debug server (http.go) and a
//     human-readable end-of-run report (report.go).
//
// A nil *Observer is valid everywhere and disables the layer entirely: every
// hook is a nil-receiver no-op, so the engine's steady-state expansion
// remains allocation-free per message (pinned by the AllocsPerRun tests).
//
// Counters fall into two exactness classes under retry/recovery/resume (the
// DESIGN.md §9 matrix): *logical* counters mirrored from the engine's
// RunStats (Counters, worker loads) roll back with barrier snapshots and are
// exactly-once — a recovered run reports them bit-identical to a clean run —
// while *physical* counters (wire bytes, frames, retries, restores) count
// what actually happened on the hardware, replays included, and are
// monotonic.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// EventType enumerates the trace points of a BSP run.
type EventType uint8

const (
	// EventRunStart opens a run's trace; Step is the starting superstep
	// (non-zero when resuming from a checkpoint).
	EventRunStart EventType = iota + 1
	// EventResume records a cross-run resume from a persisted checkpoint.
	EventResume
	// EventStepStart opens superstep Step.
	EventStepStart
	// EventStepEnd closes superstep Step's compute phase: Dur is the slowest
	// worker's compute time, Messages the number of messages produced.
	EventStepEnd
	// EventExchange records a completed message exchange (the barrier's
	// communication phase): Dur is the exchange wall time.
	EventExchange
	// EventRetry records one failed exchange attempt (Attempt, Err); the
	// retry policy decides whether another attempt follows.
	EventRetry
	// EventCheckpointSave records a barrier snapshot: Bytes encoded, Dur to
	// encode and store.
	EventCheckpointSave
	// EventCheckpointRestore records an in-run checkpoint restore; Step is
	// the superstep the run rolled back to.
	EventCheckpointRestore
	// EventRecovery records the decision to recover a failed superstep
	// (Err is the cause); an EventCheckpointRestore or EventRestart follows.
	EventRecovery
	// EventRestart records a recovery with no checkpoint available: the run
	// restarts from superstep 0 with reset state.
	EventRestart
	// EventAbort records a Program-initiated abort (Err).
	EventAbort
	// EventRunEnd closes the trace: Dur is the run's wall time, Messages the
	// total message count, Err the run error if any.
	EventRunEnd
)

var eventNames = map[EventType]string{
	EventRunStart:          "run_start",
	EventResume:            "resume",
	EventStepStart:         "step_start",
	EventStepEnd:           "step_end",
	EventExchange:          "exchange",
	EventRetry:             "retry",
	EventCheckpointSave:    "checkpoint_save",
	EventCheckpointRestore: "checkpoint_restore",
	EventRecovery:          "recovery",
	EventRestart:           "restart",
	EventAbort:             "abort",
	EventRunEnd:            "run_end",
}

// String returns the snake_case event name used in JSONL traces.
func (t EventType) String() string {
	if s, ok := eventNames[t]; ok {
		return s
	}
	return "unknown"
}

// Event is one structured trace record. Seq orders events totally within an
// Observer; unused numeric fields are zero.
type Event struct {
	// Seq is the 1-based emission order within the Observer.
	Seq uint64
	// Elapsed is the time since the Observer was created.
	Elapsed time.Duration
	// Type discriminates the record.
	Type EventType
	// Step is the superstep the event belongs to (-1 when not applicable).
	Step int
	// Dur is the duration of the traced operation, when timed.
	Dur time.Duration
	// Messages counts messages for step/exchange/run events.
	Messages int64
	// Bytes sizes checkpoint saves.
	Bytes int64
	// Attempt is the 1-based exchange attempt for retry events.
	Attempt int
	// Err carries the error text for failure events.
	Err string
	// Tag identifies the run this event belongs to when many observers share
	// one sink — the query service stamps per-query trace IDs here. Empty
	// for untagged (single-run) observers.
	Tag string
}

// Sink receives trace events. Emit is called from the BSP run loop (one
// goroutine) and must not retain the Event's address; implementations used
// across workers must be safe for concurrent use.
type Sink interface {
	Emit(Event)
}

// NopSink discards every event. It is the default sink: with it, emitting is
// a few nanoseconds and allocation-free, so tracing can stay attached in
// production runs.
type NopSink struct{}

// Emit implements Sink by doing nothing.
func (NopSink) Emit(Event) {}

// Ring is a fixed-capacity in-memory sink retaining the most recent events —
// the sink for tests and post-mortem inspection.
type Ring struct {
	mu     sync.Mutex
	events []Event
	next   int
	filled bool
}

// NewRing returns a ring sink retaining the last n events (n >= 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{events: make([]Event, n)}
}

// Emit implements Sink.
func (r *Ring) Emit(ev Event) {
	r.mu.Lock()
	r.events[r.next] = ev
	r.next++
	if r.next == len(r.events) {
		r.next = 0
		r.filled = true
	}
	r.mu.Unlock()
}

// Events returns the retained events in emission order.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.filled {
		return append([]Event(nil), r.events[:r.next]...)
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// StepMetrics is the record of one executed superstep (replayed supersteps
// appear once per execution, so the slice is a physical log, not a logical
// one).
type StepMetrics struct {
	// Step is the superstep number.
	Step int
	// Compute is the slowest worker's compute time (the barrier wait).
	Compute time.Duration
	// WorkerCompute is each worker's compute time.
	WorkerCompute []time.Duration
	// Processed is the number of messages delivered to Programs this step.
	Processed int64
	// Produced is the number of messages the step emitted.
	Produced int64
	// Exchange is the wall time of the step's message exchange.
	Exchange time.Duration
}

// Observer collects a run's metrics and forwards its trace events to a Sink.
// One Observer observes one run at a time (the engine serializes its hook
// calls at barriers); the frame/byte counters are safe for the exchange's
// concurrent sender/receiver goroutines. A nil *Observer is a valid no-op.
type Observer struct {
	sink  Sink
	start time.Time
	seq   atomic.Uint64
	// tag is stamped into every emitted event (SetTag; set before the run
	// starts, read by the emit path).
	tag string

	// Physical transport counters (monotonic; replays included).
	wireFramesSent atomic.Int64
	wireFramesRecv atomic.Int64
	gobFramesSent  atomic.Int64
	gobFramesRecv  atomic.Int64
	bytesSent      atomic.Int64
	bytesRecv      atomic.Int64

	// Physical compression counters: exact bytes written for front-coded
	// frame trains vs what the same batches would have cost flat. Monotonic
	// (replays included); the logical exactly-once mirror lives in the
	// engine's compressed_* RunStats counters.
	compressedFrames   atomic.Int64
	compressedBytes    atomic.Int64
	compressedRawBytes atomic.Int64

	// Physical fault-layer counters.
	retries         atomic.Int64
	checkpointSaves atomic.Int64
	checkpointBytes atomic.Int64
	checkpointNanos atomic.Int64
	restores        atomic.Int64
	restoreNanos    atomic.Int64
	restarts        atomic.Int64
	recoveries      atomic.Int64
	aborts          atomic.Int64
	setupAborts     atomic.Int64

	// Worker-plane counters (registry liveness plus serving-tier retry; fed
	// by internal/serve's coordinator and the registry sweeper).
	heartbeatMisses atomic.Int64
	evictions       atomic.Int64
	queryRetries    atomic.Int64
	hedgedQueries   atomic.Int64

	// Census-engine counters (fed by internal/esu at end of run: workers
	// accumulate locally and flush once, so nothing here is per-subgraph).
	censusSubgraphs atomic.Int64
	canonHits       atomic.Int64
	canonMisses     atomic.Int64

	// Mutation-plane counters (fed by the serving tier's /update path: one
	// AddMutation per accepted batch, one AddDelta per standing-query delta
	// enumeration).
	mutationBatches atomic.Int64
	mutationEdges   atomic.Int64
	deltaGained     atomic.Int64
	deltaLost       atomic.Int64

	// Async-exchange counters (fed by the pipelined message plane at frame
	// and termination-scan granularity — never per message).
	creditRounds      atomic.Int64
	earlyExpansions   atomic.Int64
	framesInFlightMax atomic.Int64

	mu    sync.Mutex
	steps []StepMetrics
	// Logical end-of-run state, mirrored from the engine at RunEnded (these
	// roll back with barrier snapshots inside the engine, so they are
	// exactly-once).
	finalCounters  map[string]int64
	supersteps     int
	messagesTotal  int64
	workerTime     []time.Duration
	workerMessages []int64
	workerLoads    []float64
	runErr         string
	ended          bool
}

// New returns an Observer emitting to sink; a nil sink means NopSink.
func New(sink Sink) *Observer {
	if sink == nil {
		sink = NopSink{}
	}
	return &Observer{sink: sink, start: time.Now()}
}

// SetTag sets the run identifier stamped into every event this Observer
// emits — e.g. a per-query trace ID when a server funnels many short runs
// into one shared sink. Call it before the observed run starts; it is not
// synchronized against in-flight emits.
func (o *Observer) SetTag(tag string) {
	if o == nil {
		return
	}
	o.tag = tag
}

// Tag returns the identifier set by SetTag.
func (o *Observer) Tag() string {
	if o == nil {
		return ""
	}
	return o.tag
}

// emit stamps and forwards one event.
func (o *Observer) emit(ev Event) {
	ev.Seq = o.seq.Add(1)
	ev.Elapsed = time.Since(o.start)
	ev.Tag = o.tag
	o.sink.Emit(ev)
}

// RunStarted opens the trace. startStep is non-zero when resuming.
func (o *Observer) RunStarted(workers, startStep int) {
	if o == nil {
		return
	}
	o.emit(Event{Type: EventRunStart, Step: startStep, Messages: int64(workers)})
}

// Resumed records a cross-run resume from a persisted checkpoint.
func (o *Observer) Resumed(step int, d time.Duration) {
	if o == nil {
		return
	}
	o.restores.Add(1)
	o.restoreNanos.Add(int64(d))
	o.emit(Event{Type: EventResume, Step: step, Dur: d})
}

// StepStarted opens superstep step.
func (o *Observer) StepStarted(step int) {
	if o == nil {
		return
	}
	o.emit(Event{Type: EventStepStart, Step: step})
}

// StepComputed closes superstep step's compute phase: per-worker compute
// times, messages delivered (processed) and emitted (produced).
func (o *Observer) StepComputed(step int, workerTimes []time.Duration, processed, produced int64) {
	if o == nil {
		return
	}
	var slowest time.Duration
	for _, t := range workerTimes {
		if t > slowest {
			slowest = t
		}
	}
	o.mu.Lock()
	o.steps = append(o.steps, StepMetrics{
		Step:          step,
		Compute:       slowest,
		WorkerCompute: append([]time.Duration(nil), workerTimes...),
		Processed:     processed,
		Produced:      produced,
	})
	o.mu.Unlock()
	o.emit(Event{Type: EventStepEnd, Step: step, Dur: slowest, Messages: produced})
}

// ExchangeDone records a completed message exchange for step.
func (o *Observer) ExchangeDone(step int, d time.Duration, messages int64) {
	if o == nil {
		return
	}
	o.mu.Lock()
	if n := len(o.steps); n > 0 && o.steps[n-1].Step == step {
		o.steps[n-1].Exchange = d
	}
	o.mu.Unlock()
	o.emit(Event{Type: EventExchange, Step: step, Dur: d, Messages: messages})
}

// ExchangeFailed records one failed exchange attempt.
func (o *Observer) ExchangeFailed(step, attempt int, err error) {
	if o == nil {
		return
	}
	o.retries.Add(1)
	o.emit(Event{Type: EventRetry, Step: step, Attempt: attempt, Err: errText(err)})
}

// CheckpointSaved records a barrier snapshot of `bytes` bytes taking d.
func (o *Observer) CheckpointSaved(step, bytes int, d time.Duration) {
	if o == nil {
		return
	}
	o.checkpointSaves.Add(1)
	o.checkpointBytes.Add(int64(bytes))
	o.checkpointNanos.Add(int64(d))
	o.emit(Event{Type: EventCheckpointSave, Step: step, Bytes: int64(bytes), Dur: d})
}

// CheckpointRestored records an in-run restore back to step.
func (o *Observer) CheckpointRestored(step int, d time.Duration) {
	if o == nil {
		return
	}
	o.restores.Add(1)
	o.restoreNanos.Add(int64(d))
	o.emit(Event{Type: EventCheckpointRestore, Step: step, Dur: d})
}

// RecoveryStarted records the decision to recover failed superstep step.
func (o *Observer) RecoveryStarted(step int, cause error) {
	if o == nil {
		return
	}
	o.recoveries.Add(1)
	o.emit(Event{Type: EventRecovery, Step: step, Err: errText(cause)})
}

// RestartedFromScratch records a recovery that found no checkpoint.
func (o *Observer) RestartedFromScratch(step int) {
	if o == nil {
		return
	}
	o.restarts.Add(1)
	o.emit(Event{Type: EventRestart, Step: step})
}

// Aborted records a Program-initiated abort at step.
func (o *Observer) Aborted(step int, err error) {
	if o == nil {
		return
	}
	o.aborts.Add(1)
	o.emit(Event{Type: EventAbort, Step: step, Err: errText(err)})
}

// RunEnded closes the trace and captures the run's logical end state:
// the merged counters, per-worker times and message counts. These come from
// the engine's RunStats, which rolls back with barrier snapshots, so they
// are exactly-once — a recovered or resumed run reports the same values as
// a clean run.
func (o *Observer) RunEnded(supersteps int, messagesTotal int64, counters map[string]int64,
	workerTime []time.Duration, workerMessages []int64, err error) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.supersteps = supersteps
	o.messagesTotal = messagesTotal
	o.finalCounters = make(map[string]int64, len(counters))
	for k, v := range counters {
		o.finalCounters[k] = v
	}
	o.workerTime = append([]time.Duration(nil), workerTime...)
	o.workerMessages = append([]int64(nil), workerMessages...)
	o.runErr = errText(err)
	o.ended = true
	o.mu.Unlock()
	o.emit(Event{Type: EventRunEnd, Step: supersteps - 1, Messages: messagesTotal, Err: errText(err)})
}

// RecordWorkerLoads captures the engine's per-worker cost-model load units
// (exactly-once: the engine's load accumulators ride barrier snapshots).
func (o *Observer) RecordWorkerLoads(loads []float64) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.workerLoads = append([]float64(nil), loads...)
	o.mu.Unlock()
}

// AddFrameSent counts one outbound transport frame of `bytes` bytes; wire
// distinguishes the compact codec from the gob fallback. Safe for concurrent
// use (called from the exchange's sender goroutines).
func (o *Observer) AddFrameSent(wire bool, bytes int64) {
	if o == nil {
		return
	}
	if wire {
		o.wireFramesSent.Add(1)
	} else {
		o.gobFramesSent.Add(1)
	}
	o.bytesSent.Add(bytes)
}

// AddFrameRecv counts one inbound transport frame of `bytes` bytes.
func (o *Observer) AddFrameRecv(wire bool, bytes int64) {
	if o == nil {
		return
	}
	if wire {
		o.wireFramesRecv.Add(1)
	} else {
		o.gobFramesRecv.Add(1)
	}
	o.bytesRecv.Add(bytes)
}

// AddCompressedFrame counts one front-coded send: the bytes the frame train
// actually put on the wire and the flat-equivalent bytes the same batch would
// have cost. Their ratio is the exact wire-level compression ratio.
func (o *Observer) AddCompressedFrame(wireBytes, rawBytes int64) {
	if o == nil {
		return
	}
	o.compressedFrames.Add(1)
	o.compressedBytes.Add(wireBytes)
	o.compressedRawBytes.Add(rawBytes)
}

// AddBytesSent counts raw outbound bytes (the gob path's counting writers).
func (o *Observer) AddBytesSent(n int64) {
	if o == nil {
		return
	}
	o.bytesSent.Add(n)
}

// AddBytesRecv counts raw inbound bytes (the gob path's counting readers).
func (o *Observer) AddBytesRecv(n int64) {
	if o == nil {
		return
	}
	o.bytesRecv.Add(n)
}

// AddSetupAbort counts a transport setup (TCP mesh accept/dial) torn down
// early by context cancellation instead of completing or timing out.
func (o *Observer) AddSetupAbort() {
	if o == nil {
		return
	}
	o.setupAborts.Add(1)
}

// AddHeartbeatMiss counts one overdue worker heartbeat interval observed by
// the registry sweeper (a worker can miss several intervals before the miss
// limit evicts it).
func (o *Observer) AddHeartbeatMiss(n int64) {
	if o == nil {
		return
	}
	o.heartbeatMisses.Add(n)
}

// AddEviction counts one worker evicted from the registry for missing its
// heartbeat miss limit.
func (o *Observer) AddEviction() {
	if o == nil {
		return
	}
	o.evictions.Add(1)
}

// AddQueryRetry counts one query re-dispatched or re-admitted after a worker
// failure (the serving tier's retry, distinct from the engine's per-barrier
// exchange retries).
func (o *Observer) AddQueryRetry() {
	if o == nil {
		return
	}
	o.queryRetries.Add(1)
}

// AddHedgedQuery counts one speculative hedge dispatch launched because the
// primary worker had not answered within the hedge delay.
func (o *Observer) AddHedgedQuery() {
	if o == nil {
		return
	}
	o.hedgedQueries.Add(1)
}

// AddCensus records one completed motif census: subgraphs enumerated and the
// canonical-form memo cache's hit/miss totals. Called once per run with the
// workers' summed local counters — never from the enumeration hot path.
func (o *Observer) AddCensus(subgraphs, canonHits, canonMisses int64) {
	if o == nil {
		return
	}
	o.censusSubgraphs.Add(subgraphs)
	o.canonHits.Add(canonHits)
	o.canonMisses.Add(canonMisses)
}

// AddMutation records one accepted graph-mutation batch and its effective
// edge-change count (noops excluded). Called once per batch by the serving
// tier's update path — never per edge.
func (o *Observer) AddMutation(effectiveEdges int64) {
	if o == nil {
		return
	}
	o.mutationBatches.Add(1)
	o.mutationEdges.Add(effectiveEdges)
}

// AddDelta records one standing query's delta-enumeration outcome for a
// mutation epoch: embeddings gained and lost relative to the previous epoch.
func (o *Observer) AddDelta(gained, lost int64) {
	if o == nil {
		return
	}
	o.deltaGained.Add(gained)
	o.deltaLost.Add(lost)
}

// AddCreditRound counts one termination-detector scan by the async plane's
// coordinator (each scan checks outstanding credit and worker idleness; the
// round count is the async analogue of the barrier count).
func (o *Observer) AddCreditRound() {
	if o == nil {
		return
	}
	o.creditRounds.Add(1)
}

// AddEarlyExpansion counts one frame delivered to a worker that was already
// expanding a backlog — the async plane's pipelining win, where expansion
// overlaps communication instead of waiting at a barrier.
func (o *Observer) AddEarlyExpansion() {
	if o == nil {
		return
	}
	o.earlyExpansions.Add(1)
}

// ObserveFramesInFlight folds one observation of the async plane's
// outstanding-frame gauge into its high-water mark. Safe for concurrent use
// (called from every worker's flush path).
func (o *Observer) ObserveFramesInFlight(cur int64) {
	if o == nil {
		return
	}
	for {
		peak := o.framesInFlightMax.Load()
		if cur <= peak || o.framesInFlightMax.CompareAndSwap(peak, cur) {
			return
		}
	}
}

// Steps returns the physical superstep log (replays appear once per
// execution).
func (o *Observer) Steps() []StepMetrics {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]StepMetrics(nil), o.steps...)
}

// Counters returns the final merged engine counters captured at RunEnded
// (the exactly-once class), or nil before the run ends.
func (o *Observer) Counters() map[string]int64 {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make(map[string]int64, len(o.finalCounters))
	for k, v := range o.finalCounters {
		out[k] = v
	}
	return out
}

func errText(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
