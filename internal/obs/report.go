package obs

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"
)

// Snapshot is a point-in-time copy of every counter the Observer holds, in a
// plain JSON-marshalable form. It backs the expvar endpoint, the debug
// server's /debug/obs page, and the end-of-run report.
type Snapshot struct {
	// Trace.
	Events int64 `json:"events"`

	// Physical transport counters (monotonic; replays included).
	WireFramesSent int64 `json:"wire_frames_sent"`
	WireFramesRecv int64 `json:"wire_frames_recv"`
	GobFramesSent  int64 `json:"gob_frames_sent"`
	GobFramesRecv  int64 `json:"gob_frames_recv"`
	BytesSent      int64 `json:"bytes_sent"`
	BytesRecv      int64 `json:"bytes_recv"`

	// Physical compression counters (monotonic; replays included). The ratio
	// CompressedRawBytes/CompressedBytes is the exact wire-level compression
	// ratio over every front-coded frame train sent.
	CompressedFrames   int64 `json:"compressed_frames"`
	CompressedBytes    int64 `json:"compressed_bytes"`
	CompressedRawBytes int64 `json:"compressed_raw_bytes"`

	// Physical fault-layer counters (monotonic).
	Retries            int64         `json:"retries"`
	CheckpointSaves    int64         `json:"checkpoint_saves"`
	CheckpointBytes    int64         `json:"checkpoint_bytes"`
	CheckpointSaveTime time.Duration `json:"checkpoint_save_ns"`
	Restores           int64         `json:"restores"`
	RestoreTime        time.Duration `json:"restore_ns"`
	Restarts           int64         `json:"restarts"`
	Recoveries         int64         `json:"recoveries"`
	Aborts             int64         `json:"aborts"`
	SetupAborts        int64         `json:"setup_aborts"`

	// Worker-plane counters (monotonic; fed by the serving tier's registry
	// sweeper and query dispatcher).
	HeartbeatMisses int64 `json:"heartbeat_misses"`
	Evictions       int64 `json:"evictions"`
	QueryRetries    int64 `json:"query_retries"`
	HedgedQueries   int64 `json:"hedged_queries"`

	// Census-engine counters (monotonic; fed once per census run).
	CensusSubgraphs int64 `json:"census_subgraphs"`
	CanonHits       int64 `json:"canon_hits"`
	CanonMisses     int64 `json:"canon_misses"`

	// Mutation-plane counters (monotonic; fed by the serving tier's /update
	// path, once per batch / per standing-query delta).
	MutationBatches int64 `json:"mutation_batches"`
	MutationEdges   int64 `json:"mutation_edges"`
	DeltaGained     int64 `json:"delta_gained"`
	DeltaLost       int64 `json:"delta_lost"`

	// Async-exchange counters (monotonic; fed by the pipelined message
	// plane's coordinator and flush paths).
	CreditRounds       int64 `json:"credit_rounds"`
	EarlyExpansions    int64 `json:"early_expansions"`
	FramesInFlightPeak int64 `json:"frames_in_flight_peak"`

	// Logical end-of-run state (exactly-once; zero until RunEnded).
	Ended          bool             `json:"ended"`
	Supersteps     int              `json:"supersteps"`
	MessagesTotal  int64            `json:"messages_total"`
	Counters       map[string]int64 `json:"counters,omitempty"`
	WorkerTime     []time.Duration  `json:"worker_time_ns,omitempty"`
	WorkerMessages []int64          `json:"worker_messages,omitempty"`
	WorkerLoads    []float64        `json:"worker_loads,omitempty"`
	RunErr         string           `json:"run_err,omitempty"`

	// Physical superstep log.
	Steps []StepMetrics `json:"steps,omitempty"`
}

// Snapshot copies the Observer's current state. Safe to call at any time,
// including mid-run from the debug server.
func (o *Observer) Snapshot() Snapshot {
	if o == nil {
		return Snapshot{}
	}
	s := Snapshot{
		Events:             int64(o.seq.Load()),
		WireFramesSent:     o.wireFramesSent.Load(),
		WireFramesRecv:     o.wireFramesRecv.Load(),
		GobFramesSent:      o.gobFramesSent.Load(),
		GobFramesRecv:      o.gobFramesRecv.Load(),
		BytesSent:          o.bytesSent.Load(),
		BytesRecv:          o.bytesRecv.Load(),
		CompressedFrames:   o.compressedFrames.Load(),
		CompressedBytes:    o.compressedBytes.Load(),
		CompressedRawBytes: o.compressedRawBytes.Load(),
		Retries:            o.retries.Load(),
		CheckpointSaves:    o.checkpointSaves.Load(),
		CheckpointBytes:    o.checkpointBytes.Load(),
		CheckpointSaveTime: time.Duration(o.checkpointNanos.Load()),
		Restores:           o.restores.Load(),
		RestoreTime:        time.Duration(o.restoreNanos.Load()),
		Restarts:           o.restarts.Load(),
		Recoveries:         o.recoveries.Load(),
		Aborts:             o.aborts.Load(),
		SetupAborts:        o.setupAborts.Load(),
		HeartbeatMisses:    o.heartbeatMisses.Load(),
		Evictions:          o.evictions.Load(),
		QueryRetries:       o.queryRetries.Load(),
		HedgedQueries:      o.hedgedQueries.Load(),
		CensusSubgraphs:    o.censusSubgraphs.Load(),
		CanonHits:          o.canonHits.Load(),
		CanonMisses:        o.canonMisses.Load(),
		MutationBatches:    o.mutationBatches.Load(),
		MutationEdges:      o.mutationEdges.Load(),
		DeltaGained:        o.deltaGained.Load(),
		DeltaLost:          o.deltaLost.Load(),
		CreditRounds:       o.creditRounds.Load(),
		EarlyExpansions:    o.earlyExpansions.Load(),
		FramesInFlightPeak: o.framesInFlightMax.Load(),
	}
	o.mu.Lock()
	s.Ended = o.ended
	s.Supersteps = o.supersteps
	s.MessagesTotal = o.messagesTotal
	if len(o.finalCounters) > 0 {
		s.Counters = make(map[string]int64, len(o.finalCounters))
		for k, v := range o.finalCounters {
			s.Counters[k] = v
		}
	}
	s.WorkerTime = append([]time.Duration(nil), o.workerTime...)
	s.WorkerMessages = append([]int64(nil), o.workerMessages...)
	s.WorkerLoads = append([]float64(nil), o.workerLoads...)
	s.RunErr = o.runErr
	s.Steps = append([]StepMetrics(nil), o.steps...)
	o.mu.Unlock()
	return s
}

// WriteReport renders the human-readable end-of-run report: a per-superstep
// time/volume table, the transport totals, and the fault-layer summary. It
// is what `psgl -trace` and `psgl-bench -trace` print to stderr.
func (o *Observer) WriteReport(w io.Writer) {
	if o == nil {
		return
	}
	s := o.Snapshot()
	fmt.Fprintf(w, "== observability report ==\n")
	if s.Ended {
		status := "ok"
		if s.RunErr != "" {
			status = s.RunErr
		}
		fmt.Fprintf(w, "run: %d supersteps, %d messages, status: %s\n",
			s.Supersteps, s.MessagesTotal, status)
	}

	if len(s.Steps) > 0 {
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "step\tcompute\texchange\tprocessed\tproduced")
		for _, st := range s.Steps {
			fmt.Fprintf(tw, "%d\t%v\t%v\t%d\t%d\n",
				st.Step, st.Compute.Round(time.Microsecond),
				st.Exchange.Round(time.Microsecond), st.Processed, st.Produced)
		}
		tw.Flush()
	}

	if s.BytesSent+s.BytesRecv+s.WireFramesSent+s.GobFramesSent > 0 {
		fmt.Fprintf(w, "transport: sent %d B / recv %d B; frames sent wire=%d gob=%d, recv wire=%d gob=%d\n",
			s.BytesSent, s.BytesRecv, s.WireFramesSent, s.GobFramesSent,
			s.WireFramesRecv, s.GobFramesRecv)
	}
	if s.CompressedFrames > 0 {
		ratio := 0.0
		if s.CompressedBytes > 0 {
			ratio = float64(s.CompressedRawBytes) / float64(s.CompressedBytes)
		}
		fmt.Fprintf(w, "compression: %d frame trains, %d B wire vs %d B flat (%.2fx)\n",
			s.CompressedFrames, s.CompressedBytes, s.CompressedRawBytes, ratio)
	}
	if s.CheckpointSaves > 0 {
		fmt.Fprintf(w, "checkpoints: %d saves, %d B total, %v encode+store\n",
			s.CheckpointSaves, s.CheckpointBytes, s.CheckpointSaveTime.Round(time.Microsecond))
	}
	if s.Retries+s.Restores+s.Restarts+s.Recoveries+s.Aborts+s.SetupAborts > 0 {
		fmt.Fprintf(w, "faults: %d retries, %d recoveries (%d restores in %v, %d restarts), %d aborts, %d setup aborts\n",
			s.Retries, s.Recoveries, s.Restores, s.RestoreTime.Round(time.Microsecond),
			s.Restarts, s.Aborts, s.SetupAborts)
	}
	if s.HeartbeatMisses+s.Evictions+s.QueryRetries+s.HedgedQueries > 0 {
		fmt.Fprintf(w, "worker plane: %d heartbeat misses, %d evictions, %d query retries, %d hedged dispatches\n",
			s.HeartbeatMisses, s.Evictions, s.QueryRetries, s.HedgedQueries)
	}
	if s.CreditRounds > 0 {
		fmt.Fprintf(w, "async exchange: %d credit rounds, %d early expansions, %d frames in flight at peak\n",
			s.CreditRounds, s.EarlyExpansions, s.FramesInFlightPeak)
	}
	if s.MutationBatches > 0 {
		fmt.Fprintf(w, "mutations: %d batches, %d effective edges; deltas: %d gained, %d lost\n",
			s.MutationBatches, s.MutationEdges, s.DeltaGained, s.DeltaLost)
	}
	if s.CensusSubgraphs+s.CanonHits+s.CanonMisses > 0 {
		lookups := s.CanonHits + s.CanonMisses
		rate := 0.0
		if lookups > 0 {
			rate = float64(s.CanonHits) / float64(lookups)
		}
		fmt.Fprintf(w, "census: %d subgraphs, canon cache %d/%d hits (%.4f hit rate)\n",
			s.CensusSubgraphs, s.CanonHits, lookups, rate)
	}

	if len(s.Counters) > 0 {
		names := make([]string, 0, len(s.Counters))
		for k := range s.Counters {
			names = append(names, k)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "counters:")
		for _, k := range names {
			fmt.Fprintf(w, " %s=%d", k, s.Counters[k])
		}
		fmt.Fprintln(w)
	}
	if len(s.WorkerLoads) > 0 {
		fmt.Fprintf(w, "worker loads:")
		for wk, l := range s.WorkerLoads {
			fmt.Fprintf(w, " w%d=%.3g", wk, l)
		}
		fmt.Fprintln(w)
	}
}
