// Package graphchi is the GraphChi stand-in of Table 3: a single-machine
// *out-of-core* triangle lister in the spirit of Kyrola, Blelloch & Guestrin
// (OSDI 2012). The graph's adjacency is sharded to disk by vertex interval;
// computation streams shard pairs through a bounded memory window instead of
// holding the graph in RAM. That is the property the paper's comparison is
// about — GraphChi trades repeated sequential disk passes for a tiny memory
// footprint, so a parallel in-memory engine like PSgL beats it even on one
// graph that would fit in RAM, and the gap grows with the graph.
//
// The algorithm: vertices are renamed into degree order (the same ordering
// PSgL uses); shard p holds the ascending "higher-rank" adjacency of the
// vertices in interval p. Each triangle {a < b < c} (by rank) is counted at
// its lowest vertex a by intersecting higher(a) with higher(b). The driver
// loads interval pairs (i, j) — the window — and intersects across them, so
// peak memory is two shards, not the graph.
package graphchi

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"psgl/internal/graph"
)

// Options configures a run.
type Options struct {
	// Shards is the number of vertex intervals P. 0 means 8.
	Shards int
	// Dir is the scratch directory for shard files. "" means a fresh
	// temporary directory, removed when the run ends.
	Dir string
}

// Stats reports the out-of-core cost profile.
type Stats struct {
	Shards        int
	BytesWritten  int64
	BytesRead     int64
	ShardLoads    int // how many shard (re-)loads the window performed
	BuildTime     time.Duration
	ComputeTime   time.Duration
	PeakWindowMiB float64
}

// Result is the outcome of a run.
type Result struct {
	Triangles int64
	Stats     Stats
}

// CountTriangles counts the triangles of g with the sharded out-of-core
// pipeline.
func CountTriangles(g *graph.Graph, opts Options) (*Result, error) {
	if g == nil {
		return nil, fmt.Errorf("graphchi: nil graph")
	}
	p := opts.Shards
	if p <= 0 {
		p = 8
	}
	dir := opts.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "graphchi-shards-")
		if err != nil {
			return nil, fmt.Errorf("graphchi: %v", err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	res := &Result{Stats: Stats{Shards: p}}

	buildStart := time.Now()
	sh, err := buildShards(g, p, dir)
	if err != nil {
		return nil, err
	}
	res.Stats.BytesWritten = sh.bytesWritten
	res.Stats.BuildTime = time.Since(buildStart)

	computeStart := time.Now()
	count, err := sh.countTriangles(res)
	if err != nil {
		return nil, err
	}
	res.Triangles = count
	res.Stats.ComputeTime = time.Since(computeStart)
	return res, nil
}

// shards holds the on-disk layout: per interval, a file of (vertex, deg,
// higher-neighbors...) records in rank order.
type shards struct {
	p            int
	n            int
	dir          string
	bounds       []int32 // bounds[i]..bounds[i+1] is interval i (rank space)
	rankOf       []int32 // rankOf[v] = rank
	byRank       []graph.VertexID
	bytesWritten int64
}

func intervalOf(bounds []int32, rank int32) int {
	for i := 0; i+1 < len(bounds); i++ {
		if rank < bounds[i+1] {
			return i
		}
	}
	return len(bounds) - 2
}

func shardPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d.bin", i))
}

func buildShards(g *graph.Graph, p int, dir string) (*shards, error) {
	ord := graph.NewOrdered(g)
	n := g.NumVertices()
	sh := &shards{p: p, n: n, dir: dir}
	sh.rankOf = make([]int32, n)
	sh.byRank = make([]graph.VertexID, n)
	for v := 0; v < n; v++ {
		r := ord.Rank(graph.VertexID(v))
		sh.rankOf[v] = r
		sh.byRank[r] = graph.VertexID(v)
	}
	sh.bounds = make([]int32, p+1)
	for i := 0; i <= p; i++ {
		sh.bounds[i] = int32(n * i / p)
	}

	// One pass per shard: stream the vertices of the interval in rank order
	// and write their higher-rank adjacency (as ranks, ascending).
	for i := 0; i < p; i++ {
		f, err := os.Create(shardPath(dir, i))
		if err != nil {
			return nil, fmt.Errorf("graphchi: %v", err)
		}
		w := bufio.NewWriter(f)
		cw := &countingWriter{w: w}
		for r := sh.bounds[i]; r < sh.bounds[i+1]; r++ {
			v := sh.byRank[r]
			var higher []int32
			for _, u := range g.Neighbors(v) {
				if ur := sh.rankOf[u]; ur > r {
					higher = append(higher, ur)
				}
			}
			// Ranks of neighbors are not sorted by rank; sort ascending.
			sortInt32(higher)
			if err := writeRecord(cw, r, higher); err != nil {
				f.Close()
				return nil, err
			}
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		sh.bytesWritten += cw.n
	}
	return sh, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(b []byte) (int, error) {
	n, err := c.w.Write(b)
	c.n += int64(n)
	return n, err
}

func writeRecord(w io.Writer, rank int32, higher []int32) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(rank))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(higher)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, 4*len(higher))
	for i, x := range higher {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(x))
	}
	_, err := w.Write(buf)
	return err
}

// window is one shard loaded in memory: higher-rank adjacency by rank.
type window struct {
	lo, hi int32
	adj    map[int32][]int32
	bytes  int64
}

func (sh *shards) load(i int) (*window, error) {
	f, err := os.Open(shardPath(sh.dir, i))
	if err != nil {
		return nil, fmt.Errorf("graphchi: %v", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	w := &window{lo: sh.bounds[i], hi: sh.bounds[i+1], adj: map[int32][]int32{}}
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("graphchi: shard %d: %v", i, err)
		}
		rank := int32(binary.LittleEndian.Uint32(hdr[0:4]))
		cnt := int(binary.LittleEndian.Uint32(hdr[4:8]))
		buf := make([]byte, 4*cnt)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("graphchi: shard %d: %v", i, err)
		}
		higher := make([]int32, cnt)
		for k := range higher {
			higher[k] = int32(binary.LittleEndian.Uint32(buf[4*k:]))
		}
		w.adj[rank] = higher
		w.bytes += int64(8 + 4*cnt)
	}
	return w, nil
}

// countTriangles runs the interval-pair sweep: for ordered triangle
// (a < b < c), a lives in interval i and b in interval j >= i; with shards i
// and j in the window, |higher(a) ∩ higher(b)| contributions are counted by
// merge-intersection.
func (sh *shards) countTriangles(res *Result) (int64, error) {
	var total int64
	for i := 0; i < sh.p; i++ {
		wi, err := sh.load(i)
		if err != nil {
			return 0, err
		}
		res.Stats.ShardLoads++
		res.Stats.BytesRead += wi.bytes
		for j := i; j < sh.p; j++ {
			wj := wi
			if j != i {
				wj, err = sh.load(j)
				if err != nil {
					return 0, err
				}
				res.Stats.ShardLoads++
				res.Stats.BytesRead += wj.bytes
			}
			if mib := float64(wi.bytes+wj.bytes) / (1 << 20); mib > res.Stats.PeakWindowMiB {
				res.Stats.PeakWindowMiB = mib
			}
			for a, higherA := range wi.adj {
				_ = a
				for _, b := range higherA {
					if b < wj.lo || b >= wj.hi {
						continue
					}
					total += intersectCount(higherA, wj.adj[b])
				}
			}
		}
	}
	return total, nil
}

// intersectCount merges two ascending rank lists.
func intersectCount(a, b []int32) int64 {
	var count int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			count++
			i++
			j++
		}
	}
	return count
}

func sortInt32(xs []int32) {
	// Insertion sort: adjacency lists are short on average; avoids the
	// sort.Slice allocation in the shard-build hot loop.
	for i := 1; i < len(xs); i++ {
		x := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > x {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = x
	}
}
